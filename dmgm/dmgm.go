// Package dmgm (distributed-memory graph matching and coloring) is the
// public API of this repository — a Go reproduction of Çatalyürek, Dobrian,
// Gebremedhin, Halappanavar and Pothen, "Distributed-Memory Parallel
// Algorithms for Matching and Coloring" (IPDPS Workshops, 2011).
//
// The package re-exports the graph substrate and offers one-call entry
// points for the four algorithm families:
//
//   - Match / MatchParallel — the ½-approximate edge-weighted matching by
//     locally dominant edges, sequential and distributed (REQUEST /
//     SUCCEEDED / FAILED message protocol with aggressive bundling).
//   - MatchExactBipartite — the exact maximum-weight bipartite reference.
//   - Color / ColorParallel — greedy distance-1 coloring, sequential over
//     the ColPack orderings, and the distributed speculative/iterative
//     framework with FIAB / FIAC / neighbor-customized communication.
//
// The distributed entry points run every rank as a goroutine over the
// in-process message-passing runtime (internal/mpi), this repository's
// substitute for MPI; see DESIGN.md for the substitution inventory. Lower
// level control (building per-rank shares, running inside your own world,
// collecting traffic statistics) is available through the internal packages
// for in-module code, and mirrors what the examples under examples/ do.
package dmgm

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/order"
	"repro/internal/partition"
)

// Graph types.
type (
	// Graph is a weighted undirected CSR graph.
	Graph = graph.Graph
	// Vertex indexes a vertex.
	Vertex = graph.Vertex
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// Bipartite is a bipartite graph (matrix view).
	Bipartite = graph.Bipartite
	// Entry is a sparse-matrix nonzero.
	Entry = graph.Entry
	// Partition maps vertices to processors.
	Partition = partition.Partition
	// Mates is a matching.
	Mates = matching.Mates
	// Colors is a vertex coloring.
	Colors = coloring.Colors
	// Ordering names a greedy-coloring vertex ordering.
	Ordering = order.Ordering
)

// None marks an absent vertex (e.g. an unmatched mate).
const None = graph.None

// Re-exported constructors and generators.
var (
	// NewGraph assembles a graph from an undirected edge list.
	NewGraph = func(n int, edges []Edge) (*Graph, error) {
		return graph.BuildUndirected(n, edges, graph.DedupeFirst)
	}
	// NewGraphSummed assembles a graph, summing the weights of parallel
	// edges — the convention used by multilevel coarsening.
	NewGraphSummed = func(n int, edges []Edge) (*Graph, error) {
		return graph.BuildUndirected(n, edges, graph.DedupeSum)
	}
	// NewBipartite assembles a bipartite graph from matrix entries.
	NewBipartite = func(nrows, ncols int, entries []Entry) (*Bipartite, error) {
		return graph.BuildBipartite(nrows, ncols, entries, graph.DedupeMax)
	}
	// ReadGraphFile / WriteGraphFile use the text (default) or binary
	// (".bin") formats.
	ReadGraphFile  = graph.ReadFile
	WriteGraphFile = graph.WriteFile

	// Grid2D generates the paper's five-point grid model problem.
	Grid2D = gen.Grid2D
	// Circuit generates a circuit-simulation-like graph (G3_circuit
	// stand-in).
	Circuit = gen.Circuit
	// CircuitBipartite is its bipartite (matrix) form.
	CircuitBipartite = gen.CircuitBipartite
	// ErdosRenyi, RMAT, Geometric, RandomBipartite generate irregular
	// families.
	ErdosRenyi      = gen.ErdosRenyi
	RMAT            = gen.RMAT
	Geometric       = gen.Geometric
	RandomBipartite = gen.RandomBipartite

	// PartitionBlock1D, PartitionGrid2D, PartitionBFS, PartitionRandom and
	// PartitionMultilevel distribute vertices over processors.
	PartitionBlock1D = partition.Block1D
	PartitionGrid2D  = partition.Grid2D
	PartitionBFS     = partition.BFS
	PartitionRandom  = partition.Random
)

// PartitionMultilevel computes a METIS-like multilevel k-way partition.
// refine=false selects the unrefined (ParMETIS-quality) variant.
func PartitionMultilevel(g *Graph, p int, refine bool, seed uint64) (*Partition, error) {
	return partition.Multilevel(g, p, partition.MultilevelOptions{Seed: seed, NoRefine: !refine})
}

// Vertex ordering names for Color.
const (
	OrderNatural         = order.Natural
	OrderRandom          = order.Random
	OrderLargestFirst    = order.LargestFirst
	OrderSmallestLast    = order.SmallestLast
	OrderIncidenceDegree = order.IncidenceDegree
)

// Match computes the sequential locally-dominant ½-approximate matching.
func Match(g *Graph) Mates { return matching.LocallyDominant(g) }

// MatchGreedy computes the sorted-edge greedy matching (same result, global
// sort — the baseline the paper's local algorithm replaces).
func MatchGreedy(g *Graph) Mates { return matching.Greedy(g) }

// MatchExactBipartite computes the exact maximum-weight bipartite matching
// (the Table 1.1 quality reference).
func MatchExactBipartite(b *Bipartite) (Mates, error) { return matching.ExactBipartite(b) }

// MatchSharedMemory computes the same matching as Match with the
// shared-memory suitor algorithm on the given number of worker goroutines —
// the single-node building block of the paper's hybrid (Section 6) outlook.
func MatchSharedMemory(g *Graph, workers int) Mates { return matching.Suitor(g, workers) }

// BMatching is a degree-constrained matching (vertex v may have up to B[v]
// partners).
type BMatching = matching.BMatching

// UniformB builds a constant capacity vector.
var UniformB = matching.UniformB

// MatchB computes the greedy ½-approximate b-matching.
func MatchB(g *Graph, b []int) (*BMatching, error) { return matching.GreedyB(g, b) }

// MatchBParallel distributes g by part and runs the round-synchronized
// distributed b-suitor; the result equals MatchB(g, b) for any partition.
func MatchBParallel(g *Graph, part *Partition, b []int, deadline time.Duration) (*BMatching, error) {
	if err := part.Validate(g); err != nil {
		return nil, err
	}
	if len(b) != g.NumVertices() {
		return nil, fmt.Errorf("dmgm: %d capacities for %d vertices", len(b), g.NumVertices())
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		return nil, err
	}
	localB := make([][]int, part.P)
	for rank, d := range shares {
		lb := make([]int, d.NLocal)
		for v := 0; v < d.NLocal; v++ {
			lb[v] = b[d.GlobalOf(int32(v))]
		}
		localB[rank] = lb
	}
	if deadline == 0 {
		deadline = 10 * time.Minute
	}
	results := make([]*matching.BParallelResult, part.P)
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := matching.BParallel(c, shares[c.Rank()], localB[c.Rank()], matching.BParallelOptions{})
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	}, mpi.WithDeadline(deadline))
	if err != nil {
		return nil, err
	}
	return matching.GatherB(shares, results, localB)
}

// Color greedily colors g in the given vertex ordering.
func Color(g *Graph, o Ordering, seed uint64) (Colors, error) {
	return coloring.Greedy(g, o, seed)
}

// ColorSharedMemory colors g with the speculative iterative scheme on
// shared-memory worker goroutines.
func ColorSharedMemory(g *Graph, workers int, seed uint64) Colors {
	return coloring.SharedMemory(g, workers, seed)
}

// ColorDistance2 computes a distance-2 coloring (the variant consumed by
// sparse-derivative compression).
func ColorDistance2(g *Graph, o Ordering, seed uint64) (Colors, error) {
	return coloring.GreedyDistance2(g, o, seed)
}

// VerifyColoringDistance2 checks a distance-2 coloring.
func VerifyColoringDistance2(g *Graph, c Colors) error {
	return coloring.VerifyDistance2(g, c)
}

// ColoringBounds returns simple lower/upper bounds on the chromatic number.
func ColoringBounds(g *Graph) (lower, upper int) { return coloring.Bounds(g) }

// MatchParallelOptions configures MatchParallel.
type MatchParallelOptions struct {
	// BundleBytes caps the message-aggregation buffers (0 = 64 KiB; set to
	// 17, one record, to disable the paper's bundling).
	BundleBytes int
	// Deadline aborts a wedged run (0 = 10 minutes).
	Deadline time.Duration
}

// MatchParallelResult reports a distributed matching run.
type MatchParallelResult struct {
	Mates  Mates
	Weight float64
	// OuterIterations is the maximum outer-loop count over ranks.
	OuterIterations int64
	// Messages and Bytes total the runtime traffic.
	Messages, Bytes int64
}

// MatchParallel distributes g by part, runs the asynchronous distributed
// matching with one goroutine rank per part, and gathers the global result.
// The matching is identical to Match(g) for any partition.
func MatchParallel(g *Graph, part *Partition, opt MatchParallelOptions) (*MatchParallelResult, error) {
	if opt.Deadline == 0 {
		opt.Deadline = 10 * time.Minute
	}
	w, err := mpi.NewWorld(part.P, mpi.WithDeadline(opt.Deadline))
	if err != nil {
		return nil, err
	}
	return MatchParallelWorld(w, g, part, opt)
}

// MatchParallelWorld runs the distributed matching over an existing world,
// which may span multiple processes through a remote transport (see
// mpi.WithTransport). Every process must call it with the same graph and
// partition; the global result is assembled through collectives, so it is
// returned on the process hosting rank 0 and is nil (with a nil error) on
// every other process.
func MatchParallelWorld(w *mpi.World, g *Graph, part *Partition, opt MatchParallelOptions) (*MatchParallelResult, error) {
	if err := part.Validate(g); err != nil {
		return nil, err
	}
	if w.Size() != part.P {
		return nil, fmt.Errorf("dmgm: world of %d ranks for a %d-way partition", w.Size(), part.P)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		return nil, err
	}
	var out *MatchParallelResult
	err = w.Run(func(c *mpi.Comm) error {
		res, err := matching.Parallel(c, shares[c.Rank()], matching.ParallelOptions{
			MaxBundleBytes: opt.BundleBytes,
		})
		if err != nil {
			return err
		}
		weight := c.AllreduceFloat64(res.LocalWeight, mpi.OpSum)
		iters := c.AllreduceInt64(res.OuterIterations, mpi.OpMax)
		snap := c.StatsSnapshot() // collectives are uncounted, so this is final
		msgs := c.AllreduceInt64(snap.SentMsgs, mpi.OpSum)
		bytes := c.AllreduceInt64(snap.SentBytes, mpi.OpSum)
		parts := c.Allgather(encodeInt64s(res.MateGlobal))
		if c.Rank() != 0 {
			return nil
		}
		results := make([]*matching.ParallelResult, w.Size())
		for r, p := range parts {
			results[r] = &matching.ParallelResult{MateGlobal: decodeInt64s(p)}
		}
		mates, err := matching.Gather(shares, results)
		if err != nil {
			return err
		}
		out = &MatchParallelResult{
			Mates:           mates,
			Weight:          weight,
			OuterIterations: iters,
			Messages:        msgs,
			Bytes:           bytes,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func encodeInt64s(xs []int64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

func decodeInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeInt32s(xs []int32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func decodeInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Coloring communication modes (Section 4.2).
const (
	CommNeighbors     = coloring.CommNeighbors
	CommCustomizedAll = coloring.CommCustomizedAll
	CommBroadcast     = coloring.CommBroadcast
)

// ColorParallelOptions configures ColorParallel; the zero value selects the
// paper's preferred configuration (superstep 1000, neighbor-customized
// communication, first fit, randomized conflict resolution).
type ColorParallelOptions struct {
	SuperstepSize int
	CommMode      coloring.CommMode
	Strategy      coloring.Strategy
	Order         coloring.VertexOrder
	Conflict      coloring.ConflictPolicy
	Seed          uint64
	Deadline      time.Duration
	// Threads > 1 selects the hybrid mode: each rank colors its interior
	// with this many worker goroutines (Section 6's MPI+OpenMP analogue).
	Threads int
}

// ColorParallelResult reports a distributed coloring run.
type ColorParallelResult struct {
	Colors    Colors
	NumColors int
	Rounds    int
	Conflicts int64
	// Messages and Bytes total the runtime traffic.
	Messages, Bytes int64
}

// ColorParallel distributes g by part and runs the speculative iterative
// distance-1 coloring with one goroutine rank per part.
func ColorParallel(g *Graph, part *Partition, opt ColorParallelOptions) (*ColorParallelResult, error) {
	if opt.Deadline == 0 {
		opt.Deadline = 10 * time.Minute
	}
	w, err := mpi.NewWorld(part.P, mpi.WithDeadline(opt.Deadline))
	if err != nil {
		return nil, err
	}
	return ColorParallelWorld(w, g, part, opt)
}

// ColorParallelWorld runs the speculative distance-1 coloring over an
// existing world, which may span multiple processes through a remote
// transport. Every process must call it with the same graph and partition;
// the global result is returned on the process hosting rank 0 and is nil
// (with a nil error) elsewhere.
func ColorParallelWorld(w *mpi.World, g *Graph, part *Partition, opt ColorParallelOptions) (*ColorParallelResult, error) {
	return colorParallelOver(w, g, part, opt, false)
}

// ColorParallelDistance2World is ColorParallelWorld for the distance-2
// variant.
func ColorParallelDistance2World(w *mpi.World, g *Graph, part *Partition, opt ColorParallelOptions) (*ColorParallelResult, error) {
	return colorParallelOver(w, g, part, opt, true)
}

// colorParallelOver is the shared driver for both coloring variants: run the
// per-rank algorithm, then assemble the global result through collectives so
// the code path is identical for in-process and wire-transport worlds.
func colorParallelOver(w *mpi.World, g *Graph, part *Partition, opt ColorParallelOptions, distance2 bool) (*ColorParallelResult, error) {
	if err := part.Validate(g); err != nil {
		return nil, err
	}
	if w.Size() != part.P {
		return nil, fmt.Errorf("dmgm: world of %d ranks for a %d-way partition", w.Size(), part.P)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		return nil, err
	}
	var out *ColorParallelResult
	err = w.Run(func(c *mpi.Comm) error {
		var res *coloring.ParallelResult
		var err error
		if distance2 {
			res, err = coloring.ParallelDistance2(c, shares[c.Rank()], coloring.ParallelOptions{
				SuperstepSize: opt.SuperstepSize,
				Conflict:      opt.Conflict,
				Seed:          opt.Seed,
			})
		} else {
			res, err = coloring.Parallel(c, shares[c.Rank()], coloring.ParallelOptions{
				SuperstepSize: opt.SuperstepSize,
				CommMode:      opt.CommMode,
				Strategy:      opt.Strategy,
				Order:         opt.Order,
				Conflict:      opt.Conflict,
				Seed:          opt.Seed,
				Threads:       opt.Threads,
			})
		}
		if err != nil {
			return err
		}
		conflicts := c.AllreduceInt64(res.Conflicts, mpi.OpSum)
		snap := c.StatsSnapshot() // collectives are uncounted, so this is final
		msgs := c.AllreduceInt64(snap.SentMsgs, mpi.OpSum)
		bytes := c.AllreduceInt64(snap.SentBytes, mpi.OpSum)
		parts := c.Allgather(encodeInt32s(res.Colors))
		if c.Rank() != 0 {
			return nil
		}
		results := make([]*coloring.ParallelResult, w.Size())
		for r, p := range parts {
			results[r] = &coloring.ParallelResult{Colors: decodeInt32s(p)}
		}
		colors, err := coloring.Gather(shares, results)
		if err != nil {
			return err
		}
		out = &ColorParallelResult{
			Colors:    colors,
			NumColors: res.NumColors, // identical on every rank
			Rounds:    res.Rounds,
			Conflicts: conflicts,
			Messages:  msgs,
			Bytes:     bytes,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ColorParallelDistance2 distributes g by part and runs the speculative
// distance-2 coloring (one-layer ghosts, middle-vertex conflict detection,
// forbidden-color notices). The paper's Jacobian motivation consumes exactly
// this variant.
func ColorParallelDistance2(g *Graph, part *Partition, opt ColorParallelOptions) (*ColorParallelResult, error) {
	if opt.Deadline == 0 {
		opt.Deadline = 10 * time.Minute
	}
	w, err := mpi.NewWorld(part.P, mpi.WithDeadline(opt.Deadline))
	if err != nil {
		return nil, err
	}
	return ColorParallelDistance2World(w, g, part, opt)
}

// VerifyMatching checks validity and maximality of a matching on g.
func VerifyMatching(g *Graph, m Mates) error { return m.VerifyMaximal(g) }

// VerifyColoring checks that c is a proper complete coloring of g.
func VerifyColoring(g *Graph, c Colors) error { return c.Verify(g) }

// Version identifies the library.
const Version = "1.0.0"

// String renders a short banner.
func String() string {
	return fmt.Sprintf("dmgm %s — distributed-memory matching & coloring (IPDPS-W 2011 reproduction)", Version)
}
