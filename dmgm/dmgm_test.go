package dmgm

import (
	"strings"
	"testing"
)

func TestEndToEndMatching(t *testing.T) {
	g, err := Grid2D(16, 16, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := Match(g)
	if err := VerifyMatching(g, seq); err != nil {
		t.Fatal(err)
	}
	part, err := PartitionGrid2D(16, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MatchParallel(g, part, MatchParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMatching(g, res.Mates); err != nil {
		t.Fatal(err)
	}
	// The matchings are identical edge sets; the per-rank weight sum may
	// differ from the sequential sum in the last ulp (summation order).
	for v := range seq {
		if res.Mates[v] != seq[v] {
			t.Fatalf("vertex %d: parallel mate %d, sequential %d", v, res.Mates[v], seq[v])
		}
	}
	if got, want := res.Weight, seq.Weight(g); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("parallel weight %g, sequential %g", got, want)
	}
	if res.Messages == 0 {
		t.Error("no messages recorded for a 4-rank run")
	}
}

func TestEndToEndColoring(t *testing.T) {
	g, err := Circuit(30, 30, 0.45, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Color(g, OrderSmallestLast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, seq); err != nil {
		t.Fatal(err)
	}
	part, err := PartitionMultilevel(g, 4, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorParallel(g, part, ColorParallelOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	lo, hi := ColoringBounds(g)
	if res.NumColors < lo || res.NumColors > hi {
		t.Fatalf("parallel colors %d outside bounds [%d,%d]", res.NumColors, lo, hi)
	}
	if res.Rounds < 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestExactBipartiteFacade(t *testing.T) {
	b, err := RandomBipartite(20, 20, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := MatchExactBipartite(b)
	if err != nil {
		t.Fatal(err)
	}
	approx := Match(b.Graph)
	if approx.Weight(b.Graph) > exact.Weight(b.Graph)+1e-9 {
		t.Fatal("approximation exceeds optimum")
	}
	if MatchGreedy(b.Graph).Weight(b.Graph) != approx.Weight(b.Graph) {
		t.Fatal("greedy and locally-dominant weights differ")
	}
}

func TestFacadeRejectsBadPartition(t *testing.T) {
	g, err := Grid2D(4, 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Partition{P: 2, Part: []int32{0}}
	if _, err := MatchParallel(g, bad, MatchParallelOptions{}); err == nil {
		t.Error("MatchParallel accepted bad partition")
	}
	if _, err := ColorParallel(g, bad, ColorParallelOptions{}); err == nil {
		t.Error("ColorParallel accepted bad partition")
	}
}

func TestBanner(t *testing.T) {
	if !strings.Contains(String(), Version) {
		t.Fatal("banner missing version")
	}
}

func TestBMatchingFacade(t *testing.T) {
	g, err := Grid2D(14, 14, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	b := UniformB(g.NumVertices(), 2)
	seq, err := MatchB(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	part, err := PartitionGrid2D(14, 14, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MatchBParallel(g, part, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if par.Weight(g) != seq.Weight(g) {
		t.Fatalf("parallel b-matching weight %g, sequential %g", par.Weight(g), seq.Weight(g))
	}
}

func TestDistance2Facade(t *testing.T) {
	g, err := Circuit(16, 16, 0.45, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ColorDistance2(g, OrderNatural, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoringDistance2(g, seq); err != nil {
		t.Fatal(err)
	}
	part, err := PartitionBFS(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorParallelDistance2(g, part, ColorParallelOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoringDistance2(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	// Distance-2 needs at least as many colors as distance-1.
	d1, err := Color(g, OrderNatural, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors < d1.NumColors() {
		t.Fatalf("distance-2 used %d colors, distance-1 %d", res.NumColors, d1.NumColors())
	}
}

func TestSharedMemoryFacades(t *testing.T) {
	g, err := Grid2D(20, 20, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := MatchSharedMemory(g, 4)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Weight(g) != Match(g).Weight(g) {
		t.Fatal("suitor facade weight differs from sequential")
	}
	c := ColorSharedMemory(g, 4, 9)
	if err := VerifyColoring(g, c); err != nil {
		t.Fatal(err)
	}
}
