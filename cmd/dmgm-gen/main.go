// Command dmgm-gen generates synthetic graphs in this repository's formats:
// the paper's five-point grids, circuit-simulation stand-ins, and the
// irregular families used by the quality studies.
//
// Usage:
//
//	dmgm-gen -kind grid -k1 1000 -k2 1000 -weighted -o grid.bin
//	dmgm-gen -kind circuit -k1 200 -k2 200 -taps 0.45 -o circuit.g
//	dmgm-gen -kind rmat -scale 16 -edgefactor 8 -o rmat.bin
//	dmgm-gen -kind er -n 100000 -m 400000 -o er.g
//	dmgm-gen -kind er -n 100000 -m 400000 -format dmgb -o er.g
//	dmgm-gen -kind geometric -n 50000 -radius 0.01 -o geo.g
//
// The output format follows the extension (.dmgb streaming binary, .bin
// legacy binary, text otherwise); -format overrides it. DMGB is the format
// the chunked upload path of dmgm-serve is built around — its header
// carries the graph fingerprint, so repeat uploads short-circuit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		kind       = flag.String("kind", "grid", "grid | grid9 | grid3d | circuit | er | rmat | geometric")
		k1         = flag.Int("k1", 100, "grid rows / circuit die rows")
		k2         = flag.Int("k2", 100, "grid cols / circuit die cols")
		k3         = flag.Int("k3", 10, "grid3d depth")
		n          = flag.Int("n", 10000, "vertex count (er, geometric)")
		m          = flag.Int64("m", 40000, "edge draws (er)")
		scale      = flag.Int("scale", 12, "rmat scale (n = 2^scale)")
		edgeFactor = flag.Int("edgefactor", 8, "rmat edges per vertex")
		radius     = flag.Float64("radius", 0.02, "geometric connection radius")
		taps       = flag.Float64("taps", 0.45, "circuit taps per node")
		weighted   = flag.Bool("weighted", true, "assign random edge weights")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("o", "", "output path (.dmgb = streaming binary, .bin = legacy binary); required")
		format     = flag.String("format", "", "output format: text | bin | dmgb (default: by extension)")
		stats      = flag.Bool("stats", true, "print summary statistics")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dmgm-gen: -o output path is required")
		os.Exit(2)
	}

	var (
		g   *graph.Graph
		err error
	)
	switch *kind {
	case "grid":
		g, err = gen.Grid2D(*k1, *k2, *weighted, *seed)
	case "grid9":
		g, err = gen.Grid2D9Point(*k1, *k2, *weighted, *seed)
	case "grid3d":
		g, err = gen.Grid3D(*k1, *k2, *k3, *weighted, *seed)
	case "circuit":
		g, err = gen.Circuit(*k1, *k2, *taps, *weighted, *seed)
	case "er":
		g, err = gen.ErdosRenyi(*n, *m, *weighted, *seed)
	case "rmat":
		g, err = gen.RMAT(*scale, *edgeFactor, *weighted, *seed)
	case "geometric":
		g, err = gen.Geometric(*n, *radius, *weighted, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-gen: %v\n", err)
		os.Exit(1)
	}
	if err := writeOut(*out, *format, g); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-gen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("%s: %s\n", *out, graph.Summarize(g))
	}
}

// writeOut writes g to path in the selected format; an empty format defers
// to the extension routing of graph.WriteFile.
func writeOut(path, format string, g *graph.Graph) error {
	var write func(io.Writer, *graph.Graph) error
	switch format {
	case "":
		return graph.WriteFile(path, g)
	case "text":
		write = graph.WriteText
	case "bin":
		write = graph.WriteBinary
	case "dmgb":
		write = graph.WriteDMGB
	default:
		return fmt.Errorf("unknown format %q: want text | bin | dmgb", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
