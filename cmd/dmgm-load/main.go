// Command dmgm-load drives a dmgm-serve daemon with concurrent matching
// and coloring jobs and reports throughput and client-side latency
// percentiles. It is the service's load generator and smoke harness: CI
// starts a daemon, points dmgm-load at it, and asserts zero failures plus
// a warm result cache.
//
// Usage:
//
//	dmgm-load -addr 127.0.0.1:8321 -in graph.txt -algo both -n 32 -c 8
//	dmgm-load -addr 127.0.0.1:8321 -in graph.bin -algo match -require-cached
//	dmgm-load -addr 127.0.0.1:8321 -in graph.txt -json > load.json
//	dmgm-load -addr 127.0.0.1:8321 -in big.dmgb -upload -upload-chunk 262144
//	dmgm-load -addr 127.0.0.1:8321 -in g.txt -upload -restart-check state.json   # record, then kill+restart the daemon, then run again to verify
//
// With -upload the graph ships once through the resumable chunked upload
// API (DMGB encoding, docs/PROTOCOL.md §7) and every job references it by
// graph_ref — the streaming-ingest path. -upload-fault n injects a
// simulated transport fault every n-th chunk to exercise per-chunk retry;
// upload throughput and retry counts are reported alongside job latency.
// Without -upload the graph is sent inline as text with every request.
//
// Jobs cycle through -distinct seeds, so any run with -n greater than
// -distinct resubmits identical requests and exercises the result cache.
// Shed submissions (429/503) are retried with the server's Retry-After
// hint; a job only counts as failed when its retries are exhausted or the
// request itself is rejected. Exit status is non-zero on any failure, and
// on a cold cache under -require-cached.
//
// -tenant accounts every request to a named tenant (docs/PROTOCOL.md §8);
// two dmgm-load processes with different tenants reproduce the fairness
// demo in the README. After the run the generator scrapes its own tenant's
// reject counter: -forbid-tenant-rejects fails if it is non-zero (the
// well-behaved tenant must never be shed), -require-tenant-rejects fails
// if it is zero (the saturating tenant must have hit its quota).
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "dmgm-serve address")
		in       = flag.String("in", "", "graph file (text or .bin); sent inline with every job")
		algo     = flag.String("algo", "both", "job mix: match | color | both")
		n        = flag.Int("n", 32, "jobs per algorithm")
		c        = flag.Int("c", 8, "concurrent submitters")
		ranks    = flag.Int("p", 4, "ranks per job")
		seed     = flag.Uint64("seed", 1, "base seed")
		distinct = flag.Int("distinct", 4, "distinct seeds cycled across jobs; n beyond it repeats requests and hits the cache")
		part     = flag.String("partition", "multilevel", "partitioner: multilevel | bfs | block | random")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-job client deadline")
		retries  = flag.Int("retry", 8, "max retries per job on 429/503 backpressure")
		wait     = flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up")
		requireC = flag.Bool("require-cached", false, "fail unless the server reports cache hits > 0 after the run")
		jsonOut  = flag.Bool("json", false, "print the summary as JSON")
		upload   = flag.Bool("upload", false, "upload the graph once (chunked DMGB) and submit jobs by graph_ref")
		upChunk  = flag.Int64("upload-chunk", 0, "upload chunk size in bytes (0: server default)")
		upFault  = flag.Int("upload-fault", 0, "inject a simulated fault every n-th chunk (0 disables)")
		compare  = flag.Bool("compare-inline", false, "with -upload: fail unless a by-ref job answers byte-identically to the same job sent inline")
		restartC = flag.String("restart-check", "", "crash/restart conformance state file (docs/PROTOCOL.md §7): with -upload and no existing file, records graph_ref + result digests after the upload; when the file exists, verifies the recorded ref still resolves with byte-identical results and a 1-chunk re-upload, then exits")
		tenant   = flag.String("tenant", "", "tenant to account requests to (X-DMGM-Tenant header; empty = server default tenant)")
		reqTenR  = flag.Bool("require-tenant-rejects", false, "fail unless this tenant's server-side reject counter is non-zero after the run")
		forbTenR = flag.Bool("forbid-tenant-rejects", false, "fail if this tenant's server-side reject counter is non-zero after the run")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmgm-load: -in graph file is required")
		os.Exit(2)
	}
	var algos []string
	switch *algo {
	case "match":
		algos = []string{service.AlgoMatch}
	case "color":
		algos = []string{service.AlgoColor}
	case "both":
		algos = []string{service.AlgoMatch, service.AlgoColor}
	default:
		fmt.Fprintf(os.Stderr, "dmgm-load: unknown -algo %q: want match | color | both\n", *algo)
		os.Exit(2)
	}
	if *distinct < 1 {
		*distinct = 1
	}

	// Load the graph once and ship it inline as text with every request —
	// the daemon needs no filesystem access and a .bin input works the same.
	g, err := graph.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-load: %v\n", err)
		os.Exit(1)
	}
	var gtext strings.Builder
	if err := graph.WriteText(&gtext, g); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-load: %v\n", err)
		os.Exit(1)
	}

	cl := client.New(*addr)
	cl.Tenant = *tenant
	ctx := context.Background()
	if err := cl.WaitReady(ctx, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-load: %v\n", err)
		os.Exit(1)
	}

	// -restart-check verify mode: the state file exists, so this is the
	// post-restart half of the crash/restart smoke. The recorded graph_ref
	// must resolve on the restarted daemon without any upload having
	// happened in this process — the graph comes off the daemon's disk.
	if *restartC != "" {
		if b, err := os.ReadFile(*restartC); err == nil {
			verifyRestartState(ctx, cl, g, b, *timeout)
			return
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: %v\n", err)
			os.Exit(1)
		}
		if !*upload {
			fmt.Fprintln(os.Stderr, "dmgm-load: -restart-check record mode requires -upload (the ref under test comes from the chunked upload)")
			os.Exit(2)
		}
	}

	// With -upload, ship the graph once through the chunked upload API and
	// reference it by fingerprint from every job.
	var graphRef string
	var upStats *client.UploadStats
	if *upload {
		uctx, cancel := context.WithTimeout(ctx, *timeout)
		ref, st, err := cl.UploadGraph(uctx, g, client.UploadOptions{
			ChunkBytes: *upChunk,
			FaultEvery: *upFault,
		})
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-load: upload: %v\n", err)
			os.Exit(1)
		}
		graphRef, upStats = ref, st
		mbps := float64(st.BytesSent) / (1 << 20) / st.Elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "dmgm-load: uploaded %s: %d chunks (%d retried), %.1f MiB in %.2fs (%.1f MiB/s)%s\n",
			ref[:12], st.ChunksSent, st.ChunksRetried, float64(st.BytesSent)/(1<<20),
			st.Elapsed.Seconds(), mbps, map[bool]string{true: " [short-circuit]", false: ""}[st.ShortCircuit])
		if *compare {
			// One job each way, identical parameters, cache bypassed: the
			// result text must be byte-identical across the two graph paths.
			// Superstep >= n so every coloring round is a single superstep:
			// with smaller supersteps the speculative colors depend on message
			// arrival timing and two identical jobs can legitimately disagree.
			for _, a := range algos {
				base := service.Request{Algorithm: a, Ranks: *ranks, Partition: *part, Seed: *seed,
					Superstep: g.NumVertices(), NoCache: true}
				byRef, inline := base, base
				byRef.GraphRef = ref
				inline.Graph = gtext.String()
				cctx, cancel := context.WithTimeout(ctx, *timeout)
				r1, err1 := cl.Submit(cctx, &byRef)
				r2, err2 := cl.Submit(cctx, &inline)
				cancel()
				if err1 != nil || err2 != nil {
					fmt.Fprintf(os.Stderr, "dmgm-load: -compare-inline %s: by-ref %v, inline %v\n", a, err1, err2)
					os.Exit(1)
				}
				if r1.Result != r2.Result || r1.Fingerprint != r2.Fingerprint {
					fmt.Fprintf(os.Stderr, "dmgm-load: -compare-inline %s: uploaded-graph result differs from inline\n", a)
					os.Exit(1)
				}
			}
			fmt.Fprintln(os.Stderr, "dmgm-load: -compare-inline: by-ref results byte-identical to inline")
		}
		if *restartC != "" {
			recordRestartState(ctx, cl, g, *restartC, graphRef, algos, *ranks, *part, *seed, *timeout)
		}
	}

	// Build the full job list up front, then let -c submitters drain it.
	type jobSpec struct {
		algo string
		seed uint64
	}
	var specs []jobSpec
	for _, a := range algos {
		for i := 0; i < *n; i++ {
			specs = append(specs, jobSpec{algo: a, seed: *seed + uint64(i%*distinct)})
		}
	}

	// Each success keeps its job and trace ids alongside the latency, so the
	// summary can name the traces of the slowest requests — the ids to feed
	// GET /v1/jobs/{id}/trace or dmgm-trace -job while the server's trace
	// ring is still warm.
	type sample struct {
		Latency time.Duration
		Millis  float64 `json:"ms"`
		Algo    string  `json:"algorithm"`
		JobID   string  `json:"job_id"`
		TraceID string  `json:"trace_id"`
		Cached  bool    `json:"cached"`
	}
	var (
		mu       sync.Mutex
		samples  []sample
		cached   int
		failures []string
		attempts atomic.Int64
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				spec := specs[i]
				req := &service.Request{
					Algorithm: spec.algo,
					Ranks:     *ranks,
					Partition: *part,
					Seed:      spec.seed,
				}
				if graphRef != "" {
					req.GraphRef = graphRef
				} else {
					req.Graph = gtext.String()
				}
				jctx, cancel := context.WithTimeout(ctx, *timeout)
				t0 := time.Now()
				resp, att, err := cl.SubmitRetry(jctx, req, *retries)
				lat := time.Since(t0)
				cancel()
				attempts.Add(int64(att))
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Sprintf("%s seed=%d: %v", spec.algo, spec.seed, err))
				} else {
					samples = append(samples, sample{
						Latency: lat,
						Millis:  float64(lat) / float64(time.Millisecond),
						Algo:    spec.algo,
						JobID:   resp.JobID,
						TraceID: resp.TraceID,
						Cached:  resp.Cached,
					})
					if resp.Cached {
						cached++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Server-side counters close the loop: client-observed "cached" answers
	// and the daemon's own hit counter should both be non-zero on repeats.
	var serverHits, serverRejects, partHits, storeHits, tenantRejects int64
	scrapeTenant := *tenant
	if scrapeTenant == "" {
		scrapeTenant = service.DefaultTenant
	}
	if m, err := cl.Metrics(ctx); err == nil {
		serverHits = m.Counters["service.cache_hits"]
		serverRejects = m.Counters["service.jobs_rejected"]
		partHits = m.Counters["service.partition_cache_hits"]
		storeHits = m.Counters["ingest.store_hits"]
		tenantRejects = m.Counters["service.tenant."+scrapeTenant+".rejected"]
	} else {
		fmt.Fprintf(os.Stderr, "dmgm-load: metrics scrape: %v\n", err)
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i].Latency < samples[j].Latency })
	pct := func(p float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)-1))
		return samples[i].Latency
	}
	// The p99 tail by name: the slowest ~1% of successful jobs (at least
	// one), slowest first, each with the trace id to pull its span tree.
	var slowest []sample
	if len(samples) > 0 {
		k := len(samples) / 100
		if k < 1 {
			k = 1
		}
		for i := len(samples) - 1; i >= len(samples)-k; i-- {
			slowest = append(slowest, samples[i])
		}
	}
	summary := struct {
		Jobs          int      `json:"jobs"`
		OK            int      `json:"ok"`
		Failed        int      `json:"failed"`
		Cached        int      `json:"cached"`
		ServerHits    int64    `json:"server_cache_hits"`
		ServerRejects int64    `json:"server_rejects"`
		Tenant        string   `json:"tenant,omitempty"`
		TenantRejects int64    `json:"tenant_rejects"`
		PartHits      int64    `json:"server_partition_cache_hits"`
		StoreHits     int64    `json:"server_store_hits"`
		Attempts      int64    `json:"attempts"`
		UploadChunks  int      `json:"upload_chunks,omitempty"`
		UploadRetried int      `json:"upload_chunks_retried,omitempty"`
		UploadBytes   int64    `json:"upload_bytes,omitempty"`
		UploadSeconds float64  `json:"upload_seconds,omitempty"`
		ShortCircuit  bool     `json:"upload_short_circuit,omitempty"`
		Seconds       float64  `json:"seconds"`
		JobsPerSec    float64  `json:"jobs_per_sec"`
		P50Millis     float64  `json:"p50_ms"`
		P90Millis     float64  `json:"p90_ms"`
		P99Millis     float64  `json:"p99_ms"`
		MaxMillis     float64  `json:"max_ms"`
		Slowest       []sample `json:"slowest,omitempty"`
	}{
		Jobs:          len(specs),
		OK:            len(samples),
		Failed:        len(failures),
		Cached:        cached,
		ServerHits:    serverHits,
		ServerRejects: serverRejects,
		Tenant:        scrapeTenant,
		TenantRejects: tenantRejects,
		PartHits:      partHits,
		StoreHits:     storeHits,
		Attempts:      attempts.Load(),
		Seconds:       elapsed.Seconds(),
		P50Millis:     float64(pct(0.50)) / float64(time.Millisecond),
		P90Millis:     float64(pct(0.90)) / float64(time.Millisecond),
		P99Millis:     float64(pct(0.99)) / float64(time.Millisecond),
		MaxMillis:     float64(pct(1.0)) / float64(time.Millisecond),
		Slowest:       slowest,
	}
	if elapsed > 0 {
		summary.JobsPerSec = float64(len(samples)) / elapsed.Seconds()
	}
	if upStats != nil {
		summary.UploadChunks = upStats.ChunksSent
		summary.UploadRetried = upStats.ChunksRetried
		summary.UploadBytes = upStats.BytesSent
		summary.UploadSeconds = upStats.Elapsed.Seconds()
		summary.ShortCircuit = upStats.ShortCircuit
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(summary) //nolint:errcheck // stdout
	} else {
		fmt.Printf("jobs %d  ok %d  failed %d  cached %d (server hits %d, rejects %d, partition hits %d, store hits %d)  attempts %d\n",
			summary.Jobs, summary.OK, summary.Failed, summary.Cached, serverHits, serverRejects, partHits, storeHits, summary.Attempts)
		fmt.Printf("tenant %s  rejects %d\n", scrapeTenant, tenantRejects)
		fmt.Printf("elapsed %.2fs  throughput %.1f jobs/s\n", summary.Seconds, summary.JobsPerSec)
		fmt.Printf("latency p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
			summary.P50Millis, summary.P90Millis, summary.P99Millis, summary.MaxMillis)
		for _, s := range slowest {
			fmt.Printf("slowest %s %.1fms  job %s  trace %s%s\n",
				s.Algo, s.Millis, s.JobID, s.TraceID, map[bool]string{true: "  (cached)", false: ""}[s.Cached])
		}
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "dmgm-load: failed: %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	if *requireC && serverHits == 0 {
		fmt.Fprintln(os.Stderr, "dmgm-load: -require-cached: server reports zero cache hits")
		os.Exit(1)
	}
	if *reqTenR && tenantRejects == 0 {
		fmt.Fprintf(os.Stderr, "dmgm-load: -require-tenant-rejects: tenant %s saw zero rejects (expected backpressure)\n", scrapeTenant)
		os.Exit(1)
	}
	if *forbTenR && tenantRejects > 0 {
		fmt.Fprintf(os.Stderr, "dmgm-load: -forbid-tenant-rejects: tenant %s saw %d rejects (expected none)\n", scrapeTenant, tenantRejects)
		os.Exit(1)
	}
}

// restartState is the -restart-check handoff between the pre-kill and
// post-restart halves of the crash/restart smoke: the graph_ref the first
// daemon handed out, the deterministic job parameters, and the SHA-256 of
// each algorithm's result text.
type restartState struct {
	GraphRef  string            `json:"graph_ref"`
	Ranks     int               `json:"ranks"`
	Partition string            `json:"partition"`
	Seed      uint64            `json:"seed"`
	Superstep int               `json:"superstep"`
	Digests   map[string]string `json:"result_sha256"`
}

// restartRequest shapes the deterministic by-ref job both halves run: cache
// bypassed, and Superstep >= n so coloring is timing-independent (same
// reasoning as -compare-inline).
func (st *restartState) request(algo string) *service.Request {
	return &service.Request{Algorithm: algo, GraphRef: st.GraphRef, Ranks: st.Ranks,
		Partition: st.Partition, Seed: st.Seed, Superstep: st.Superstep, NoCache: true}
}

func resultDigest(resp *service.Response) string {
	sum := sha256.Sum256([]byte(resp.Result))
	return hex.EncodeToString(sum[:])
}

// recordRestartState runs one deterministic job per algorithm against the
// just-uploaded ref and writes the state file the verify half will read
// after the daemon is killed and restarted.
func recordRestartState(ctx context.Context, cl *client.Client, g *graph.Graph,
	path, ref string, algos []string, ranks int, part string, seed uint64, timeout time.Duration) {
	st := restartState{GraphRef: ref, Ranks: ranks, Partition: part, Seed: seed,
		Superstep: g.NumVertices(), Digests: make(map[string]string)}
	for _, a := range algos {
		jctx, cancel := context.WithTimeout(ctx, timeout)
		resp, err := cl.Submit(jctx, st.request(a))
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check record %s: %v\n", a, err)
			os.Exit(1)
		}
		st.Digests[a] = resultDigest(resp)
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err == nil {
		err = os.WriteFile(path, b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check record: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: recorded ref %s and %d result digest(s) to %s\n",
		ref[:12], len(st.Digests), path)
}

// verifyRestartState is the post-restart check: the recorded ref must
// resolve (off the daemon's store directory — nothing was uploaded in this
// process), every result must match its recorded digest byte for byte, and
// re-uploading the graph must short-circuit after a single chunk.
func verifyRestartState(ctx context.Context, cl *client.Client, g *graph.Graph,
	raw []byte, timeout time.Duration) {
	var st restartState
	if err := json.Unmarshal(raw, &st); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: bad state file: %v\n", err)
		os.Exit(1)
	}
	if st.GraphRef == "" || len(st.Digests) == 0 {
		fmt.Fprintln(os.Stderr, "dmgm-load: -restart-check: state file carries no ref or digests")
		os.Exit(1)
	}
	for a, want := range st.Digests {
		jctx, cancel := context.WithTimeout(ctx, timeout)
		resp, err := cl.Submit(jctx, st.request(a))
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: recorded graph_ref %s did not survive the restart (%s): %v\n",
				st.GraphRef[:12], a, err)
			os.Exit(1)
		}
		if got := resultDigest(resp); got != want {
			fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: %s result diverges across restart: digest %s, recorded %s\n",
				a, got[:12], want[:12])
			os.Exit(1)
		}
	}
	uctx, cancel := context.WithTimeout(ctx, timeout)
	ref, up, err := cl.UploadGraph(uctx, g, client.UploadOptions{})
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: re-upload: %v\n", err)
		os.Exit(1)
	}
	if ref != st.GraphRef || !up.ShortCircuit || up.ChunksSent != 1 {
		fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: re-upload moved payload: ref %s short_circuit=%v chunks=%d, want the recorded ref in a 1-chunk short circuit\n",
			ref[:12], up.ShortCircuit, up.ChunksSent)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dmgm-load: -restart-check: ref %s survived the restart — %d result(s) byte-identical, re-upload short-circuited after 1 chunk\n",
		st.GraphRef[:12], len(st.Digests))
}
