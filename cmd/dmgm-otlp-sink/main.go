// Command dmgm-otlp-sink is a minimal in-memory OTLP/HTTP collector for CI
// and local debugging: it accepts the proto3-JSON trace and metrics pushes
// the runtimes and dmgm-serve emit (-otlp flag), counts what arrived, and
// answers a plain-text summary — enough for a smoke test to assert "the
// service span and the runtime spans landed in one trace" without a real
// collector in the container.
//
// Usage:
//
//	dmgm-otlp-sink -addr 127.0.0.1:4318
//	dmgm-serve -addr :8321 -otlp http://127.0.0.1:4318 ...
//	curl -s 127.0.0.1:4318/summary
//
// The summary lists one line per trace id — span count and the sorted,
// "|"-joined distinct span names — then a metric data-point total:
//
//	trace 0af7651916cd43dd8448eb211c80319c spans=12 names=mpi.run|serve.admit|serve.job|...
//	metric_points 84
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
)

// otlpTraces mirrors just enough of the OTLP trace request to count spans;
// unknown fields (resources, attributes) are ignored by encoding/json.
type otlpTraces struct {
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []struct {
				TraceID string `json:"traceId"`
				Name    string `json:"name"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

// otlpMetrics counts data points across every metric shape the exporter
// emits (sums, gauges, histograms).
type otlpMetrics struct {
	ResourceMetrics []struct {
		ScopeMetrics []struct {
			Metrics []struct {
				Sum       *struct{ DataPoints []json.RawMessage } `json:"sum"`
				Gauge     *struct{ DataPoints []json.RawMessage } `json:"gauge"`
				Histogram *struct{ DataPoints []json.RawMessage } `json:"histogram"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

type sink struct {
	mu           sync.Mutex
	spanNames    map[string]map[string]int // trace id -> span name -> count
	metricPoints int
	pushes       int
}

func (s *sink) handleTraces(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req otlpTraces
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.pushes++
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				m := s.spanNames[sp.TraceID]
				if m == nil {
					m = map[string]int{}
					s.spanNames[sp.TraceID] = m
				}
				m[sp.Name]++
			}
		}
	}
	s.mu.Unlock()
	w.Write([]byte("{}")) //nolint:errcheck // best-effort ack
}

func (s *sink) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req otlpMetrics
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	points := 0
	for _, rm := range req.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				for _, dp := range []*struct{ DataPoints []json.RawMessage }{m.Sum, m.Gauge, m.Histogram} {
					if dp != nil {
						points += len(dp.DataPoints)
					}
				}
			}
		}
	}
	s.mu.Lock()
	s.pushes++
	s.metricPoints += points
	s.mu.Unlock()
	w.Write([]byte("{}")) //nolint:errcheck // best-effort ack
}

func (s *sink) handleSummary(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	ids := make([]string, 0, len(s.spanNames))
	for id := range s.spanNames {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		names := s.spanNames[id]
		total := 0
		keys := make([]string, 0, len(names))
		for name, n := range names {
			keys = append(keys, name)
			total += n
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "trace %s spans=%d names=%s\n", id, total, strings.Join(keys, "|"))
	}
	fmt.Fprintf(&b, "metric_points %d\n", s.metricPoints)
	fmt.Fprintf(&b, "pushes %d\n", s.pushes)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck // summary is advisory
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4318", "listen address (OTLP/HTTP default port is 4318)")
	flag.Parse()
	s := &sink{spanNames: map[string]map[string]int{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", s.handleTraces)
	mux.HandleFunc("POST /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /summary", s.handleSummary)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-otlp-sink: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dmgm-otlp-sink: listening on http://%s (POST /v1/traces /v1/metrics, GET /summary)\n", ln.Addr())
	if err := http.Serve(ln, mux); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-otlp-sink: %v\n", err)
		os.Exit(1)
	}
}
