// Command dmgm-part partitions a graph file over p processors and reports
// the quality metrics that govern the paper's experiments (edge cut, balance,
// boundary fraction).
//
// Usage:
//
//	dmgm-part -in graph.bin -p 64 -method multilevel
//	dmgm-part -in graph.g -p 1024 -method multilevel -norefine   # ParMETIS-like
//	dmgm-part -in graph.g -p 16 -method bfs -o parts.txt   # reusable via dmgm-match/-color -partfile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph path (required)")
		p        = flag.Int("p", 16, "number of parts")
		method   = flag.String("method", "multilevel", "multilevel | bfs | block | random")
		noRefine = flag.Bool("norefine", false, "disable multilevel refinement (ParMETIS-like quality)")
		seed     = flag.Uint64("seed", 1, "seed")
		out      = flag.String("o", "", "optional output: one part id per line")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmgm-part: -in is required")
		os.Exit(2)
	}
	g, err := graph.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-part: %v\n", err)
		os.Exit(1)
	}
	var part *partition.Partition
	switch *method {
	case "multilevel":
		part, err = partition.Multilevel(g, *p, partition.MultilevelOptions{Seed: *seed, NoRefine: *noRefine})
	case "bfs":
		part, err = partition.BFS(g, *p, *seed)
	case "block":
		part, err = partition.Block1D(g, *p)
	case "random":
		part, err = partition.Random(g, *p, *seed)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-part: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(partition.Measure(g, part))
	if *out != "" {
		if err := partition.WriteFile(*out, part); err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-part: %v\n", err)
			os.Exit(1)
		}
	}
}
