// Watch mode: poll the -http /snapshot endpoints of a running dmgm-match /
// dmgm-color job and render a refreshing per-rank, per-tag-family traffic and
// imbalance dashboard in the terminal. Multiple endpoints (one per -launch
// worker) are merged into a single whole-job view each frame.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// watch polls urls every interval and redraws the dashboard. iters bounds the
// number of frames (0 = until the endpoints disappear, i.e. the run exits).
// Returns the process exit code.
func watch(urls []string, interval time.Duration, iters int, clear bool) int {
	// prevSent remembers each rank's sent-bytes total from the previous frame
	// so the dashboard can show instantaneous send rates.
	prevSent := map[int]int64{}
	var prevNanos int64
	connected := false
	for frame := 0; iters <= 0 || frame < iters; frame++ {
		if frame > 0 {
			time.Sleep(interval)
		}
		merged, errs := pollAll(urls)
		if merged == nil {
			if connected {
				// The endpoints answered before and are gone now: the run
				// finished and the workers exited. A clean end, not an error.
				fmt.Println("endpoints gone — run finished")
				return 0
			}
			fmt.Fprintf(os.Stderr, "waiting for %s ...\n", strings.Join(urls, " "))
			continue
		}
		connected = true
		if clear {
			fmt.Print("\x1b[H\x1b[2J") // home + clear: redraw in place
		}
		renderFrame(merged, urls, errs, frame, prevSent, prevNanos)
		prevNanos = merged.CapturedUnixNanos
		for _, r := range merged.Ranks {
			prevSent[r.Rank] = r.SentBytes
		}
	}
	return 0
}

// pollAll fetches and merges every endpoint's snapshot. Returns nil when no
// endpoint answered, plus the per-endpoint errors for the status line.
func pollAll(urls []string) (*obs.LiveSnapshot, []error) {
	var merged *obs.LiveSnapshot
	errs := make([]error, len(urls))
	for i, u := range urls {
		s, err := obs.FetchLive(u)
		if err != nil {
			errs[i] = err
			continue
		}
		if merged == nil {
			merged = s
		} else {
			merged.Merge(s)
		}
	}
	return merged, errs
}

func renderFrame(s *obs.LiveSnapshot, urls []string, errs []error, frame int, prevSent map[int]int64, prevNanos int64) {
	var down int
	for _, e := range errs {
		if e != nil {
			down++
		}
	}
	t := time.Unix(0, s.CapturedUnixNanos)
	fmt.Printf("dmgm live — world %d, %d/%d endpoints, frame %d, %s\n\n",
		s.WorldSize, len(urls)-down, len(urls), frame, t.Format("15:04:05"))

	// Per-rank traffic with instantaneous send rate (delta since last frame).
	elapsed := float64(s.CapturedUnixNanos-prevNanos) / 1e9
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "rank\tsent msgs\tsent bytes\trecv msgs\trecv bytes\tsend rate\t")
	var tot obs.RankTraffic
	var maxSent int64
	for _, r := range s.Ranks {
		rate := "-"
		if prev, ok := prevSent[r.Rank]; ok && elapsed > 0 {
			rate = fmtBytes(int64(float64(r.SentBytes-prev)/elapsed)) + "/s"
		}
		fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%s\t%s\t\n",
			r.Rank, r.SentMsgs, fmtBytes(r.SentBytes), r.RecvMsgs, fmtBytes(r.RecvBytes), rate)
		tot.SentMsgs += r.SentMsgs
		tot.SentBytes += r.SentBytes
		tot.RecvMsgs += r.RecvMsgs
		tot.RecvBytes += r.RecvBytes
		if r.SentBytes > maxSent {
			maxSent = r.SentBytes
		}
	}
	fmt.Fprintf(w, "total\t%d\t%s\t%d\t%s\t\t\n",
		tot.SentMsgs, fmtBytes(tot.SentBytes), tot.RecvMsgs, fmtBytes(tot.RecvBytes))
	w.Flush()
	if n := len(s.Ranks); n > 0 && tot.SentBytes > 0 {
		avg := float64(tot.SentBytes) / float64(n)
		fmt.Printf("imbalance (sent bytes, max/avg over polled ranks): %.2fx\n", float64(maxSent)/avg)
	}

	// Per-tag-family breakdown, summed across the polled ranks. The "runtime"
	// family meters the reserved-tag collectives that the aggregates above
	// exclude, so its bytes appear only here.
	fams := map[string]*obs.FamilyTraffic{}
	for _, r := range s.Ranks {
		for _, f := range r.Families {
			ft := fams[f.Family]
			if ft == nil {
				ft = &obs.FamilyTraffic{Family: f.Family}
				fams[f.Family] = ft
			}
			ft.SentMsgs += f.SentMsgs
			ft.SentBytes += f.SentBytes
			ft.RecvMsgs += f.RecvMsgs
			ft.RecvBytes += f.RecvBytes
		}
	}
	if len(fams) > 0 {
		names := make([]string, 0, len(fams))
		var allSent int64
		for name, f := range fams {
			names = append(names, name)
			allSent += f.SentBytes
		}
		sort.Strings(names)
		fmt.Println()
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "family\tsent msgs\tsent bytes\trecv msgs\trecv bytes\tshare\t")
		for _, name := range names {
			f := fams[name]
			share := "-"
			if allSent > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(f.SentBytes)/float64(allSent))
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%s\t%s\t\n",
				f.Family, f.SentMsgs, fmtBytes(f.SentBytes), f.RecvMsgs, fmtBytes(f.RecvBytes), share)
		}
		w.Flush()
	}
	if down > 0 {
		fmt.Println()
		for i, e := range errs {
			if e != nil {
				fmt.Printf("endpoint %s: %v\n", urls[i], e)
			}
		}
	}
}
