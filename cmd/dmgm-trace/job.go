package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/service"
)

// jobTrace renders the span tree a dmgm-serve daemon retained for one slow
// or failed job (GET /v1/jobs/{id}/trace, docs/PROTOCOL.md §9). The argument
// is either that URL (anything with "://") or a file holding the same JSON —
// curl the endpoint once and inspect offline. Exit status mirrors success.
func jobTrace(arg string) int {
	var body []byte
	if strings.Contains(arg, "://") {
		resp, err := http.Get(arg) //nolint:noctx // one-shot CLI fetch
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-trace: %v\n", err)
			return 1
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-trace: %v\n", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "dmgm-trace: %s: %d %s: %s\n", arg, resp.StatusCode,
				http.StatusText(resp.StatusCode), strings.TrimSpace(string(body)))
			if resp.StatusCode == http.StatusNotFound {
				fmt.Fprintln(os.Stderr, "dmgm-trace: (trace not retained: only slow and failed jobs are kept, in a bounded ring — see -trace-slow-ms / -trace-ring on dmgm-serve)")
			}
			return 1
		}
	} else {
		var err error
		body, err = os.ReadFile(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-trace: %v\n", err)
			return 1
		}
	}
	var jt service.JobTrace
	if err := json.Unmarshal(body, &jt); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-trace: decoding job trace: %v\n", err)
		return 1
	}
	printJobTrace(&jt)
	return 0
}

func printJobTrace(jt *service.JobTrace) {
	fmt.Printf("job %s  trace %s\n", jt.JobID, jt.TraceID)
	fmt.Printf("tenant %s  algorithm %s  ranks %d  status %d  cache %s\n",
		jt.Tenant, jt.Algorithm, jt.Ranks, jt.Status, orDash(jt.Cache))
	if jt.Error != "" {
		fmt.Printf("error: %s\n", jt.Error)
	}
	fmt.Printf("queue wait %.1fms  run %.1fms  total %.1fms\n\n",
		jt.QueueWaitMillis, jt.RunMillis, jt.TotalMillis)

	// Index children under their parents; spans whose parent is outside the
	// retained set (the caller's inbound span, or a trimmed runtime parent)
	// render as roots. Children sort by start time, ties by span id.
	children := map[string][]int{}
	ids := map[string]bool{}
	for _, s := range jt.Spans {
		ids[s.SpanID] = true
	}
	var roots []int
	for i, s := range jt.Spans {
		if s.ParentSpanID != "" && ids[s.ParentSpanID] {
			children[s.ParentSpanID] = append(children[s.ParentSpanID], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := jt.Spans[idx[a]], jt.Spans[idx[b]]
			if sa.StartUnixNano != sb.StartUnixNano {
				return sa.StartUnixNano < sb.StartUnixNano
			}
			return sa.SpanID < sb.SpanID
		})
	}
	byStart(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := jt.Spans[i]
		dur := time.Duration(s.DurNanos)
		extra := ""
		if s.N != 0 {
			extra += fmt.Sprintf("  n=%d", s.N)
		}
		if s.Msgs != 0 || s.Bytes != 0 {
			extra += fmt.Sprintf("  msgs=%d bytes=%d", s.Msgs, s.Bytes)
		}
		fmt.Printf("%s%s  %s  [%s %s]%s\n",
			strings.Repeat("  ", depth), s.Name, fmtDur(dur), spanRankLabel(s.Rank), s.SpanID, extra)
		kids := children[s.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func spanRankLabel(rank int) string {
	if rank < 0 {
		return "service"
	}
	return fmt.Sprintf("rank %d", rank)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
