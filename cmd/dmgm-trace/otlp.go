package main

import (
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// otlpPush converts a recorded trace file to OTLP and posts it to the
// collector at endpoint — the post-mortem counterpart of the runtimes'
// -otlp flag. The run id defaults to the trace's file name so re-pushing
// the same file lands on the same trace id.
func otlpPush(tf *obs.TraceFile, path, endpoint, runID string) int {
	if runID == "" {
		runID = "dmgm-file-" + filepath.Base(path)
	}
	spans := obs.SpansOfEvents(tf.Events)
	if len(spans) == 0 && tf.Metrics == nil {
		fmt.Fprintln(os.Stderr, "dmgm-trace: trace has no spans or metrics to convert")
		return 1
	}
	worldSize := 0
	for _, s := range spans {
		if s.Rank >= worldSize {
			worldSize = s.Rank + 1
		}
	}
	exp := obs.NewOTLPExporter(endpoint, obs.OTLPOptions{
		Identity: obs.OTLPIdentity{RunID: runID, WorldSize: worldSize},
	})
	exp.ExportSpans(spans, 0)
	if tf.Metrics != nil {
		var startNanos int64
		for _, s := range spans {
			if startNanos == 0 || s.Start < startNanos {
				startNanos = s.Start
			}
		}
		exp.ExportMetrics(tf.Metrics, startNanos)
	}
	err := exp.Close(30 * time.Second)
	if err != nil || exp.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "dmgm-trace: otlp push to %s: exported %d items, dropped %d (%v)\n",
			endpoint, exp.Exported(), exp.Dropped(), err)
		return 1
	}
	fmt.Printf("pushed %d spans and %d metric points to %s as run %q\n",
		len(spans), exp.Exported()-int64(len(spans)), endpoint, runID)
	return 0
}

// replay feeds the recorded per-phase durations and traffic into the α–β–γ
// performance model and prints per-phase predicted-vs-observed error.
func replay(tf *obs.TraceFile) int {
	ranks, err := obs.ReplayFromTrace(tf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-trace: %v\n", err)
		return 1
	}
	rep, err := perfmodel.Replay(perfmodel.BlueGeneP(), ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-trace: %v\n", err)
		return 1
	}
	m := rep.Machine
	fmt.Printf("== model replay (%d ranks, %s) ==\n", len(ranks), m.Name)
	fmt.Printf("calibrated: γv=%.3gs γe=%.3gs α=%.3gs β=%.3gs σ=%.3gs\n",
		m.GammaVertex, m.GammaEdge, m.Alpha, m.Beta, m.Sync)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tobserved\tpredicted\terror")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "%s\t%s\t%s\t%+.1f%%\n",
			p.Name, fmtUS(p.ObservedSeconds*1e6), fmtUS(p.PredictedSeconds*1e6), p.ErrorPct)
	}
	fmt.Fprintf(w, "makespan\t%s\t%s\t%+.1f%%\n",
		fmtUS(rep.ObservedMakespan*1e6), fmtUS(rep.PredictedMakespan*1e6), rep.MakespanErrorPct)
	w.Flush()
	return 0
}
