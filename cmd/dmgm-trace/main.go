// Command dmgm-trace summarizes a trace written by the -trace flag of
// dmgm-match / dmgm-color: per-rank timelines, per-phase time and traffic
// breakdowns, and a load-imbalance / critical-path summary — the terminal
// companion to loading the same file in chrome://tracing or Perfetto.
//
// Usage:
//
//	dmgm-trace out.json
//	dmgm-trace -details out.json      # include inner-loop (detail) spans
//	dmgm-trace -metrics-only out.json # just the embedded registry
//
// With -watch it becomes a live dashboard instead: point it at the -http
// endpoint(s) of a running dmgm-match / dmgm-color job and it polls /snapshot
// and redraws a per-rank, per-tag-family traffic and imbalance view until the
// run exits.
//
//	dmgm-trace -watch localhost:7070
//	dmgm-trace -watch -interval 500ms localhost:7070 localhost:7071
//
// With -otlp-convert it pushes a recorded trace to an OTLP/HTTP collector
// (Jaeger, an otel-collector, ...) post-mortem — the offline counterpart of
// the runtimes' -otlp flag. With -replay it feeds the recorded per-phase
// durations and traffic into the α–β–γ performance model and reports how
// well the model explains each phase.
//
//	dmgm-trace -otlp-convert http://localhost:4318 out.json
//	dmgm-trace -replay out.json
//
// With -job it renders the span tree a dmgm-serve daemon retained for one
// slow or failed job (docs/PROTOCOL.md §9) as an indented tree — service
// spans (admit, queue wait, partition, run, cache deposit) with the
// distributed run's per-rank phases nested under them:
//
//	dmgm-trace -job http://localhost:8321/v1/jobs/job-000042/trace
//	dmgm-trace -job saved-trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

func main() {
	details := flag.Bool("details", false, "include nested detail spans (inner loops, supersteps) in the timelines")
	metricsOnly := flag.Bool("metrics-only", false, "print only the embedded metrics registry")
	watchMode := flag.Bool("watch", false, "poll live -http endpoint(s) instead of reading a trace file; args are host:port or URLs, one per worker")
	interval := flag.Duration("interval", time.Second, "poll interval for -watch")
	watchIters := flag.Int("watch-iters", 0, "stop -watch after this many frames (0 = until the endpoints disappear)")
	noClear := flag.Bool("no-clear", false, "do not clear the terminal between -watch frames (append frames instead)")
	otlpConvert := flag.String("otlp-convert", "", "push the trace file to this OTLP/HTTP collector endpoint instead of printing a report")
	otlpRun := flag.String("otlp-run", "", "run id for -otlp-convert (default: derived from the trace file name)")
	replayMode := flag.Bool("replay", false, "feed the recorded phases into the performance model and report predicted-vs-observed error")
	jobMode := flag.Bool("job", false, "render a dmgm-serve job trace (GET /v1/jobs/{id}/trace); arg is that URL or a file of its JSON")
	flag.Parse()
	if *jobMode {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: dmgm-trace -job <http://host:port/v1/jobs/ID/trace | trace.json>")
			os.Exit(2)
		}
		os.Exit(jobTrace(flag.Arg(0)))
	}
	if *watchMode {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: dmgm-trace -watch [-interval 1s] <host:port|url> ...")
			os.Exit(2)
		}
		os.Exit(watch(flag.Args(), *interval, *watchIters, !*noClear))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dmgm-trace [-details] [-metrics-only] [-replay] [-otlp-convert <endpoint>] <trace.json|trace.jsonl>")
		os.Exit(2)
	}
	tf, err := obs.ReadTraceFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-trace: %v\n", err)
		os.Exit(1)
	}
	if *otlpConvert != "" {
		os.Exit(otlpPush(tf, flag.Arg(0), *otlpConvert, *otlpRun))
	}
	if *replayMode {
		os.Exit(replay(tf))
	}
	if !*metricsOnly {
		report(tf, *details)
	}
	if tf.Metrics != nil {
		printMetrics(tf.Metrics)
	}
}

// agg accumulates one (rank, span-name) row.
type agg struct {
	count       int64
	durUS       float64 // microseconds
	msgs, bytes int64
	detail      bool
}

func report(tf *obs.TraceFile, details bool) {
	// rank -> name -> aggregate; only complete "X" spans count, and metadata /
	// counter events are skipped.
	perRank := map[int]map[string]*agg{}
	var ranks []int
	var dropped int64
	for _, e := range tf.Events {
		if e.Ph == "C" && e.Name == "obs.spans_dropped" {
			dropped += e.ArgInt("dropped")
			continue
		}
		if e.Ph != "X" {
			continue
		}
		m := perRank[e.PID]
		if m == nil {
			m = map[string]*agg{}
			perRank[e.PID] = m
			ranks = append(ranks, e.PID)
		}
		a := m[e.Name]
		if a == nil {
			a = &agg{detail: e.Cat == "detail"}
			m[e.Name] = a
		}
		a.count++
		a.durUS += e.Dur
		a.msgs += e.ArgInt("msgs")
		a.bytes += e.ArgInt("bytes")
	}
	if len(ranks) == 0 {
		fmt.Println("no spans in trace")
		return
	}
	sort.Ints(ranks) // DriverPID sorts last, after the real ranks

	fmt.Println("== per-rank timelines ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tspan\tcount\ttotal\tmean\tmsgs\tbytes")
	for _, r := range ranks {
		m := perRank[r]
		for _, name := range sortedNames(m) {
			a := m[name]
			if a.detail && !details {
				continue
			}
			label := name
			if a.detail {
				label += " (detail)"
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%d\t%s\n",
				rankLabel(r), label, a.count, fmtUS(a.durUS), fmtUS(a.durUS/float64(a.count)), a.msgs, fmtBytes(a.bytes))
		}
	}
	w.Flush()
	if dropped > 0 {
		fmt.Printf("(%d spans dropped by ring wraparound; raise -trace-spans)\n", dropped)
	}

	// Per-phase breakdown: top-level phases only, aggregated across worker
	// ranks (the driver's phases are sequential and excluded from imbalance).
	type phaseRow struct {
		totalUS, maxUS float64
		maxRank        int
		msgs, bytes    int64
		nRanks         int
	}
	phases := map[string]*phaseRow{}
	for _, r := range ranks {
		if r == obs.DriverPID {
			continue
		}
		for name, a := range perRank[r] {
			if a.detail {
				continue
			}
			p := phases[name]
			if p == nil {
				p = &phaseRow{maxRank: -1}
				phases[name] = p
			}
			p.totalUS += a.durUS
			p.msgs += a.msgs
			p.bytes += a.bytes
			p.nRanks++
			if a.durUS > p.maxUS {
				p.maxUS, p.maxRank = a.durUS, r
			}
		}
	}
	if len(phases) == 0 {
		return
	}
	fmt.Println("\n== per-phase breakdown (across ranks) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tranks\ttotal\tmax(rank)\timbalance\tmsgs\tbytes")
	var critUS float64
	for _, name := range obs.SortedKeys(phases) {
		p := phases[name]
		avg := p.totalUS / float64(p.nRanks)
		imb := 1.0
		if avg > 0 {
			imb = p.maxUS / avg
		}
		critUS += p.maxUS
		fmt.Fprintf(w, "%s\t%d\t%s\t%s(r%d)\t%.2fx\t%d\t%s\n",
			name, p.nRanks, fmtUS(p.totalUS), fmtUS(p.maxUS), p.maxRank, imb, p.msgs, fmtBytes(p.bytes))
	}
	w.Flush()
	// The critical path sums each phase's straggler: what a bulk-synchronous
	// schedule of these phases would cost. Imbalance is max/avg per phase.
	fmt.Printf("\ncritical path (sum of per-phase maxima): %s\n", fmtUS(critUS))
}

func printMetrics(m *obs.MetricsSnapshot) {
	if len(m.Counters) > 0 || len(m.Gauges) > 0 {
		fmt.Println("\n== metrics ==")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, k := range obs.SortedKeys(m.Counters) {
			fmt.Fprintf(w, "%s\t%d\n", k, m.Counters[k])
		}
		for _, k := range obs.SortedKeys(m.Gauges) {
			fmt.Fprintf(w, "%s\t%d (gauge)\n", k, m.Gauges[k])
		}
		w.Flush()
	}
	printFamilyTable(m)
	if len(m.PerRank) > 0 {
		fmt.Println("\n== per-rank counters ==")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, k := range obs.SortedKeys(m.PerRank) {
			vals := m.PerRank[k]
			var sum int64
			for _, v := range vals {
				sum += v
			}
			fmt.Fprintf(w, "%s\ttotal %d\t%v\n", k, sum, vals)
		}
		w.Flush()
	}
	if len(m.Histograms) > 0 {
		fmt.Println("\n== histograms ==")
		for _, k := range obs.SortedKeys(m.Histograms) {
			h := m.Histograms[k]
			fmt.Printf("%s: n=%d sum=%d", k, h.Count, h.Sum)
			if h.Count > 0 {
				fmt.Printf(" mean=%.1f", float64(h.Sum)/float64(h.Count))
			}
			fmt.Println()
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Printf("  <= %d: %d\n", h.Bounds[i], c)
				} else {
					fmt.Printf("  > %d: %d\n", h.Bounds[len(h.Bounds)-1], c)
				}
			}
		}
	}
}

// printFamilyTable condenses the mpi.{sent,recv}_{msgs,bytes}.<family>
// per-rank vecs into one traffic row per tag family (summed across ranks).
// The "runtime" family meters the reserved-tag collectives that the plain
// mpi.sent_* aggregates exclude (see docs/PROTOCOL.md).
func printFamilyTable(m *obs.MetricsSnapshot) {
	type famRow struct{ sentMsgs, sentBytes, recvMsgs, recvBytes int64 }
	fams := map[string]*famRow{}
	sum := func(vals []int64) int64 {
		var s int64
		for _, v := range vals {
			s += v
		}
		return s
	}
	for key, vals := range m.PerRank {
		var kind string
		var fam string
		for _, pre := range []string{"mpi.sent_msgs.", "mpi.sent_bytes.", "mpi.recv_msgs.", "mpi.recv_bytes."} {
			if len(key) > len(pre) && key[:len(pre)] == pre {
				kind, fam = pre, key[len(pre):]
				break
			}
		}
		if kind == "" {
			continue
		}
		f := fams[fam]
		if f == nil {
			f = &famRow{}
			fams[fam] = f
		}
		switch kind {
		case "mpi.sent_msgs.":
			f.sentMsgs += sum(vals)
		case "mpi.sent_bytes.":
			f.sentBytes += sum(vals)
		case "mpi.recv_msgs.":
			f.recvMsgs += sum(vals)
		case "mpi.recv_bytes.":
			f.recvBytes += sum(vals)
		}
	}
	if len(fams) == 0 {
		return
	}
	fmt.Println("\n== per-tag-family traffic ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "family\tsent msgs\tsent bytes\trecv msgs\trecv bytes")
	for _, fam := range obs.SortedKeys(fams) {
		f := fams[fam]
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%s\n", fam, f.sentMsgs, fmtBytes(f.sentBytes), f.recvMsgs, fmtBytes(f.recvBytes))
	}
	w.Flush()
}

func sortedNames(m map[string]*agg) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func rankLabel(pid int) string {
	if pid == obs.DriverPID {
		return "driver"
	}
	return fmt.Sprintf("%d", pid)
}

func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
