// Command dmgm-verify independently checks results produced by dmgm-match
// and dmgm-color (or any tool emitting the same text formats) against a
// graph: matching validity/maximality and weight, coloring properness
// (distance-1 or distance-2) and color count against the chromatic bounds.
//
// Usage:
//
//	dmgm-verify -graph g.bin -matching m.txt
//	dmgm-verify -graph g.bin -coloring c.txt
//	dmgm-verify -graph g.bin -coloring c.txt -distance2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/matching"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (required)")
		matchPath = flag.String("matching", "", "matching file to verify")
		colorPath = flag.String("coloring", "", "coloring file to verify")
		distance2 = flag.Bool("distance2", false, "verify the coloring at distance 2")
	)
	flag.Parse()
	if *graphPath == "" || (*matchPath == "" && *colorPath == "") {
		fmt.Fprintln(os.Stderr, "dmgm-verify: need -graph and one of -matching / -coloring")
		os.Exit(2)
	}
	g, err := graph.ReadFile(*graphPath)
	if err != nil {
		fail(err)
	}
	if err := g.Validate(); err != nil {
		fail(fmt.Errorf("graph invalid: %w", err))
	}
	fmt.Printf("graph: %s\n", graph.Summarize(g))

	if *matchPath != "" {
		m, err := matching.ReadMatesFile(*matchPath)
		if err != nil {
			fail(err)
		}
		if err := m.Verify(g); err != nil {
			fail(err)
		}
		maximal := "maximal"
		if err := m.VerifyMaximal(g); err != nil {
			maximal = "NOT maximal"
		}
		fmt.Printf("matching: VALID, %s, weight %.4f, cardinality %d\n",
			maximal, m.Weight(g), m.Cardinality())
	}
	if *colorPath != "" {
		c, err := coloring.ReadColorsFile(*colorPath)
		if err != nil {
			fail(err)
		}
		if *distance2 {
			if err := coloring.VerifyDistance2(g, c); err != nil {
				fail(err)
			}
		} else if err := c.Verify(g); err != nil {
			fail(err)
		}
		lo, hi := coloring.Bounds(g)
		kind := "distance-1"
		if *distance2 {
			kind = "distance-2"
		}
		fmt.Printf("coloring: VALID %s, %d colors (distance-1 bounds [%d, %d])\n",
			kind, c.NumColors(), lo, hi)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dmgm-verify: FAILED: %v\n", err)
	os.Exit(1)
}
