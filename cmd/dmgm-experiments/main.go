// Command dmgm-experiments regenerates the paper's evaluation: Table 1.1,
// Table 5.1, and Figures 5.1–5.4 (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the recorded outcomes).
//
// Usage:
//
//	dmgm-experiments                     # everything, default scale
//	dmgm-experiments -run fig5.2         # one experiment
//	dmgm-experiments -quick              # shrunken instances (seconds)
//	dmgm-experiments -csv results.csv    # also emit CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expt"
)

func main() {
	var (
		run     = flag.String("run", "all", "all | table1.1 | table1.1sweep | table5.1 | fig5.1 | fig5.2 | fig5.3 | fig5.4 | ablations | traffic")
		quick   = flag.Bool("quick", false, "shrunken instances for a fast pass")
		seed    = flag.Uint64("seed", 0, "seed (0 = default)")
		csvPath = flag.String("csv", "", "also write tables as CSV to this file")

		weakSub    = flag.Int("weak-subgrid", 0, "per-rank subgrid side for fig5.1 (0 = default)")
		strongGrid = flag.Int("strong-grid", 0, "grid side for fig5.2 (0 = default)")
		circuit    = flag.Int("circuit-side", 0, "circuit die side for fig5.3/5.4 (0 = default)")
	)
	flag.Parse()

	o := expt.Options{
		Out:         os.Stdout,
		Quick:       *quick,
		Seed:        *seed,
		WeakSubgrid: *weakSub,
		StrongGrid:  *strongGrid,
		CircuitSide: *circuit,
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		o.CSV = f
	}

	var err error
	switch *run {
	case "all":
		err = expt.RunAll(o)
	case "table1.1":
		_, err = expt.Table11(o)
	case "table1.1sweep":
		_, err = expt.Table11WeightSweep(o)
	case "table5.1":
		err = expt.Table51(o)
	case "fig5.1":
		_, _, err = expt.Fig51(o)
	case "fig5.2":
		_, _, err = expt.Fig52(o)
	case "fig5.3":
		_, err = expt.Fig53(o)
	case "fig5.4":
		_, err = expt.Fig54(o)
	case "ablations":
		err = expt.Ablations(o)
	case "traffic":
		err = expt.Traffic(o)
	default:
		err = fmt.Errorf("unknown experiment %q", *run)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-experiments: %v\n", err)
		os.Exit(1)
	}
}
