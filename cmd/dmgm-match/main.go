// Command dmgm-match computes edge-weighted matchings: sequential locally
// dominant (default), sorted greedy, or the distributed algorithm with a
// chosen rank count, and reports weight, cardinality and traffic.
//
// Usage:
//
//	dmgm-match -in graph.bin                      # sequential ½-approx
//	dmgm-match -in graph.bin -p 16                # distributed over 16 ranks
//	dmgm-match -in graph.bin -p 16 -nobundle      # ablate message bundling
//	dmgm-match -in graph.bin -algo greedy
//	dmgm-match -in graph.bin -p 4 -launch         # 4 local processes over TCP
//	dmgm-match -in graph.bin -p 4 -transport tcp -rank 2 -registry host:9000
//	dmgm-match -in graph.bin -p 4 -launch -trace out.json   # Chrome trace
//	dmgm-match -in graph.bin -p 4 -json                     # machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/launch"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/partition"

	"repro/dmgm"
)

// summary is the -json result record, one object on stdout.
type summary struct {
	Algorithm       string  `json:"algorithm"`
	Ranks           int     `json:"ranks"`
	Weight          float64 `json:"weight"`
	Cardinality     int     `json:"cardinality"`
	OuterIterations int64   `json:"outer_iterations,omitempty"`
	Messages        int64   `json:"messages"`
	Bytes           int64   `json:"bytes"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
}

func main() {
	tf := launch.RegisterFlags()
	of := obs.RegisterFlags()
	var (
		in       = flag.String("in", "", "input graph path (required)")
		algo     = flag.String("algo", "localdom", "localdom | greedy")
		p        = flag.Int("p", 1, "ranks for the distributed run (1 = sequential)")
		method   = flag.String("partition", "multilevel", "partitioner for p > 1: multilevel | bfs | block | random")
		partFile = flag.String("partfile", "", "load the partition from a file written by dmgm-part (overrides -partition and -p)")
		noBundle = flag.Bool("nobundle", false, "disable message bundling (ablation)")
		seed     = flag.Uint64("seed", 1, "seed")
		outPath  = flag.String("o", "", "write the matching to this file (verifiable with dmgm-verify)")
		jsonOut  = flag.Bool("json", false, "print the result summary as one JSON object on stdout (progress goes to stderr)")
	)
	flag.Parse()
	// With -json, stdout carries exactly one JSON object; narration moves to
	// stderr so `dmgm-match -json | jq` just works.
	info := infoPrinter(*jsonOut)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmgm-match: -in is required")
		os.Exit(2)
	}
	if tf.Launch {
		if *p <= 1 {
			fmt.Fprintln(os.Stderr, "dmgm-match: -launch needs -p > 1")
			os.Exit(2)
		}
		if of.OTLP != "" {
			// Resolve the run id before spawning workers: they inherit it via
			// the environment, so every shard exports into one OTLP trace.
			of.RunID()
		}
		code := launch.Local(*p, "launch")
		if err := of.Merge(*p); err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	if tf.Remote() && *p <= 1 {
		fmt.Fprintln(os.Stderr, "dmgm-match: -transport tcp needs -p > 1")
		os.Exit(2)
	}
	if of.Pprof != "" {
		addr, err := obs.ServePprof(of.PprofAddr(tf.Rank, tf.Remote()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}
	readStart := time.Now()
	g, err := graph.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	info("input: %s\n", graph.Summarize(g))

	if *p <= 1 && *partFile == "" {
		start := time.Now()
		var m matching.Mates
		switch *algo {
		case "localdom":
			m = matching.LocallyDominant(g)
		case "greedy":
			m = matching.Greedy(g)
		default:
			fmt.Fprintf(os.Stderr, "dmgm-match: unknown algo %q\n", *algo)
			os.Exit(2)
		}
		elapsed := time.Since(start)
		if err := m.VerifyMaximal(g); err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-match: result verification failed: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			printJSON(summary{
				Algorithm: "sequential-" + *algo, Ranks: 1,
				Weight: m.Weight(g), Cardinality: m.Cardinality(),
				ElapsedSeconds: elapsed.Seconds(),
			})
		} else {
			fmt.Printf("algorithm: sequential %s\nweight: %.4f\ncardinality: %d\ntime: %v\n",
				*algo, m.Weight(g), m.Cardinality(), elapsed)
		}
		writeMates(*outPath, m)
		return
	}

	partStart := time.Now()
	var part *partition.Partition
	if *partFile != "" {
		part, err = partition.ReadFile(*partFile)
		if err == nil {
			err = part.Validate(g)
		}
		if err == nil {
			*p = part.P
		}
	} else {
		switch *method {
		case "multilevel":
			part, err = partition.Multilevel(g, *p, partition.MultilevelOptions{Seed: *seed})
		case "bfs":
			part, err = partition.BFS(g, *p, *seed)
		case "block":
			part, err = partition.Block1D(g, *p)
		case "random":
			part, err = partition.Random(g, *p, *seed)
		default:
			err = fmt.Errorf("unknown partitioner %q", *method)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	info("partition: %s\n", partition.Measure(g, part))

	obsr := of.NewObserver(part.P)
	// The observer is sized by the partition, so the driver-side phases that
	// preceded it are recorded retroactively.
	obsr.Driver().Observe("driver.read_graph", readStart, int64(g.NumVertices()))
	obsr.Driver().Observe("driver.partition", partStart, int64(part.P))

	opt := dmgm.MatchParallelOptions{}
	if *noBundle {
		opt.BundleBytes = 17 // one protocol record per message
	}
	w, err := tf.World(part.P, mpi.WithDeadline(10*time.Minute), mpi.WithObserver(obsr))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	if of.HTTP != "" {
		addr, err := obs.ServeLive(of.HTTPAddr(tf.Rank, tf.Remote()), w.LiveSnapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "live: http://%s/snapshot (watch with: dmgm-trace -watch %s)\n", addr, addr)
	}
	start := time.Now()
	res, err := dmgm.MatchParallelWorld(w, g, part, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if werr := of.Write(obsr, w.LocalRanks(), tf.Rank, tf.Remote()); werr != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", werr)
		os.Exit(1)
	}
	if oerr := of.ExportOTLP(obsr, w.LocalRanks(), part.P); oerr != nil {
		// Export is best-effort: warn, never fail the run.
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", oerr)
	}
	if res == nil {
		// A tcp worker that does not host rank 0: the gathered result lives
		// on rank 0's process, this one just reports completion.
		info("rank %d: done in %v\n", tf.Rank, elapsed)
		return
	}
	if err := res.Mates.VerifyMaximal(g); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: result verification failed: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		printJSON(summary{
			Algorithm: "distributed-localdom", Ranks: *p,
			Weight: res.Weight, Cardinality: res.Mates.Cardinality(),
			OuterIterations: res.OuterIterations,
			Messages:        res.Messages, Bytes: res.Bytes,
			ElapsedSeconds: elapsed.Seconds(),
		})
	} else {
		fmt.Printf("algorithm: distributed locally-dominant, %d ranks (bundling %v)\n", *p, !*noBundle)
		fmt.Printf("weight: %.4f\ncardinality: %d\nouter iterations: %d\nmessages: %d (%d bytes)\nhost wall: %v\n",
			res.Weight, res.Mates.Cardinality(), res.OuterIterations, res.Messages, res.Bytes, elapsed)
	}
	writeMates(*outPath, res.Mates)
}

// infoPrinter routes narration to stdout normally, stderr under -json.
func infoPrinter(jsonOut bool) func(format string, args ...any) {
	w := os.Stdout
	if jsonOut {
		w = os.Stderr
	}
	return func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
}

// writeMates saves the matching when an output path was given.
func writeMates(path string, m matching.Mates) {
	if path == "" {
		return
	}
	if err := matching.WriteMatesFile(path, m); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
}
