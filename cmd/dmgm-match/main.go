// Command dmgm-match computes edge-weighted matchings: sequential locally
// dominant (default), sorted greedy, or the distributed algorithm with a
// chosen rank count, and reports weight, cardinality and traffic.
//
// Usage:
//
//	dmgm-match -in graph.bin                      # sequential ½-approx
//	dmgm-match -in graph.bin -p 16                # distributed over 16 ranks
//	dmgm-match -in graph.bin -p 16 -nobundle      # ablate message bundling
//	dmgm-match -in graph.bin -algo greedy
//	dmgm-match -in graph.bin -p 4 -launch         # 4 local processes over TCP
//	dmgm-match -in graph.bin -p 4 -transport tcp -rank 2 -registry host:9000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/launch"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/partition"

	"repro/dmgm"
)

func main() {
	tf := launch.RegisterFlags()
	var (
		in       = flag.String("in", "", "input graph path (required)")
		algo     = flag.String("algo", "localdom", "localdom | greedy")
		p        = flag.Int("p", 1, "ranks for the distributed run (1 = sequential)")
		method   = flag.String("partition", "multilevel", "partitioner for p > 1: multilevel | bfs | block | random")
		partFile = flag.String("partfile", "", "load the partition from a file written by dmgm-part (overrides -partition and -p)")
		noBundle = flag.Bool("nobundle", false, "disable message bundling (ablation)")
		seed     = flag.Uint64("seed", 1, "seed")
		outPath  = flag.String("o", "", "write the matching to this file (verifiable with dmgm-verify)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmgm-match: -in is required")
		os.Exit(2)
	}
	if tf.Launch {
		if *p <= 1 {
			fmt.Fprintln(os.Stderr, "dmgm-match: -launch needs -p > 1")
			os.Exit(2)
		}
		os.Exit(launch.Local(*p, "launch"))
	}
	if tf.Remote() && *p <= 1 {
		fmt.Fprintln(os.Stderr, "dmgm-match: -transport tcp needs -p > 1")
		os.Exit(2)
	}
	g, err := graph.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("input: %s\n", graph.Summarize(g))

	if *p <= 1 && *partFile == "" {
		start := time.Now()
		var m matching.Mates
		switch *algo {
		case "localdom":
			m = matching.LocallyDominant(g)
		case "greedy":
			m = matching.Greedy(g)
		default:
			fmt.Fprintf(os.Stderr, "dmgm-match: unknown algo %q\n", *algo)
			os.Exit(2)
		}
		elapsed := time.Since(start)
		if err := m.VerifyMaximal(g); err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-match: result verification failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("algorithm: sequential %s\nweight: %.4f\ncardinality: %d\ntime: %v\n",
			*algo, m.Weight(g), m.Cardinality(), elapsed)
		writeMates(*outPath, m)
		return
	}

	var part *partition.Partition
	if *partFile != "" {
		part, err = partition.ReadFile(*partFile)
		if err == nil {
			err = part.Validate(g)
		}
		if err == nil {
			*p = part.P
		}
	} else {
		switch *method {
		case "multilevel":
			part, err = partition.Multilevel(g, *p, partition.MultilevelOptions{Seed: *seed})
		case "bfs":
			part, err = partition.BFS(g, *p, *seed)
		case "block":
			part, err = partition.Block1D(g, *p)
		case "random":
			part, err = partition.Random(g, *p, *seed)
		default:
			err = fmt.Errorf("unknown partitioner %q", *method)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("partition: %s\n", partition.Measure(g, part))

	opt := dmgm.MatchParallelOptions{}
	if *noBundle {
		opt.BundleBytes = 17 // one protocol record per message
	}
	w, err := tf.World(part.P, mpi.WithDeadline(10*time.Minute))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := dmgm.MatchParallelWorld(w, g, part, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if res == nil {
		// A tcp worker that does not host rank 0: the gathered result lives
		// on rank 0's process, this one just reports completion.
		fmt.Printf("rank %d: done in %v\n", tf.Rank, elapsed)
		return
	}
	if err := res.Mates.VerifyMaximal(g); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: result verification failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("algorithm: distributed locally-dominant, %d ranks (bundling %v)\n", *p, !*noBundle)
	fmt.Printf("weight: %.4f\ncardinality: %d\nouter iterations: %d\nmessages: %d (%d bytes)\nhost wall: %v\n",
		res.Weight, res.Mates.Cardinality(), res.OuterIterations, res.Messages, res.Bytes, elapsed)
	writeMates(*outPath, res.Mates)
}

// writeMates saves the matching when an output path was given.
func writeMates(path string, m matching.Mates) {
	if path == "" {
		return
	}
	if err := matching.WriteMatesFile(path, m); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-match: %v\n", err)
		os.Exit(1)
	}
}
