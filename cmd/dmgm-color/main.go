// Command dmgm-color computes distance-1 vertex colorings: sequential greedy
// over any ordering, the distributed speculative framework (FIAB / FIAC /
// neighbor-customized), or the Jones–Plassmann baseline.
//
// Usage:
//
//	dmgm-color -in graph.bin -order smallest-last
//	dmgm-color -in graph.bin -p 16 -superstep 1000 -comm neighbors
//	dmgm-color -in graph.bin -p 16 -algo jp
//	dmgm-color -in graph.bin -p 4 -launch        # 4 local processes over TCP
//	dmgm-color -in graph.bin -p 4 -transport tcp -rank 2 -registry host:9000
//	dmgm-color -in graph.bin -p 4 -launch -trace out.json   # Chrome trace
//	dmgm-color -in graph.bin -p 4 -json                     # machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/graph"
	"repro/internal/launch"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/partition"

	"repro/dmgm"
)

// summary is the -json result record, one object on stdout.
type summary struct {
	Algorithm      string  `json:"algorithm"`
	Ranks          int     `json:"ranks"`
	Colors         int     `json:"colors"`
	Rounds         int     `json:"rounds,omitempty"`
	Conflicts      int64   `json:"conflicts,omitempty"`
	Messages       int64   `json:"messages"`
	Bytes          int64   `json:"bytes"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

func main() {
	tf := launch.RegisterFlags()
	of := obs.RegisterFlags()
	var (
		in        = flag.String("in", "", "input graph path (required)")
		ordName   = flag.String("order", "natural", "sequential ordering: natural | random | largest-first | smallest-last | incidence-degree | saturation-degree")
		p         = flag.Int("p", 1, "ranks for the distributed run (1 = sequential)")
		algo      = flag.String("algo", "speculative", "speculative | jp (distributed only)")
		method    = flag.String("partition", "multilevel", "partitioner: multilevel | bfs | block | random")
		noRefine  = flag.Bool("norefine", false, "unrefined multilevel (ParMETIS-like)")
		superstep = flag.Int("superstep", 1000, "superstep size s")
		comm      = flag.String("comm", "neighbors", "neighbors | customized-all | broadcast")
		seed      = flag.Uint64("seed", 1, "seed")
		outPath   = flag.String("o", "", "write the coloring to this file (verifiable with dmgm-verify)")
		distance2 = flag.Bool("distance2", false, "compute a distance-2 coloring (sequential or distributed)")
		jsonOut   = flag.Bool("json", false, "print the result summary as one JSON object on stdout (progress goes to stderr)")
	)
	flag.Parse()
	// With -json, stdout carries exactly one JSON object; narration moves to
	// stderr so `dmgm-color -json | jq` just works.
	info := infoPrinter(*jsonOut)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmgm-color: -in is required")
		os.Exit(2)
	}
	if (tf.Remote() || tf.Launch) && *algo == "jp" {
		fmt.Fprintln(os.Stderr, "dmgm-color: -algo jp runs in-process only (no -transport tcp)")
		os.Exit(2)
	}
	if tf.Launch {
		if *p <= 1 {
			fmt.Fprintln(os.Stderr, "dmgm-color: -launch needs -p > 1")
			os.Exit(2)
		}
		if of.OTLP != "" {
			// Resolve the run id before spawning workers: they inherit it via
			// the environment, so every shard exports into one OTLP trace.
			of.RunID()
		}
		code := launch.Local(*p, "launch")
		if err := of.Merge(*p); err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	if tf.Remote() && *p <= 1 {
		fmt.Fprintln(os.Stderr, "dmgm-color: -transport tcp needs -p > 1")
		os.Exit(2)
	}
	if of.Pprof != "" {
		addr, err := obs.ServePprof(of.PprofAddr(tf.Rank, tf.Remote()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}
	readStart := time.Now()
	g, err := graph.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	info("input: %s\n", graph.Summarize(g))
	lo, hi := coloring.Bounds(g)
	info("chromatic bounds: [%d, %d]\n", lo, hi)

	if *p <= 1 {
		o, err := order.ParseOrdering(*ordName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
			os.Exit(2)
		}
		start := time.Now()
		var c coloring.Colors
		if *distance2 {
			c, err = coloring.GreedyDistance2(g, o, *seed)
		} else {
			c, err = coloring.Greedy(g, o, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *distance2 {
			err = coloring.VerifyDistance2(g, c)
		} else {
			err = c.Verify(g)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-color: verification failed: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			printJSON(summary{
				Algorithm: "sequential-greedy", Ranks: 1,
				Colors:         c.NumColors(),
				ElapsedSeconds: elapsed.Seconds(),
			})
		} else {
			fmt.Printf("algorithm: sequential greedy (distance2=%v), %s order\ncolors: %d\ntime: %v\n",
				*distance2, o, c.NumColors(), elapsed)
		}
		writeColors(*outPath, c)
		return
	}

	partStart := time.Now()
	var part *partition.Partition
	switch *method {
	case "multilevel":
		part, err = partition.Multilevel(g, *p, partition.MultilevelOptions{Seed: *seed, NoRefine: *noRefine})
	case "bfs":
		part, err = partition.BFS(g, *p, *seed)
	case "block":
		part, err = partition.Block1D(g, *p)
	case "random":
		part, err = partition.Random(g, *p, *seed)
	default:
		err = fmt.Errorf("unknown partitioner %q", *method)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	info("partition: %s\n", partition.Measure(g, part))

	if *algo == "jp" {
		runJP(g, part, *seed, *jsonOut)
		return
	}
	var mode coloring.CommMode
	switch *comm {
	case "neighbors":
		mode = coloring.CommNeighbors
	case "customized-all":
		mode = coloring.CommCustomizedAll
	case "broadcast":
		mode = coloring.CommBroadcast
	default:
		fmt.Fprintf(os.Stderr, "dmgm-color: unknown comm mode %q\n", *comm)
		os.Exit(2)
	}
	obsr := of.NewObserver(part.P)
	// The observer is sized by the partition, so the driver-side phases that
	// preceded it are recorded retroactively.
	obsr.Driver().Observe("driver.read_graph", readStart, int64(g.NumVertices()))
	obsr.Driver().Observe("driver.partition", partStart, int64(part.P))

	w, err := tf.World(part.P, mpi.WithDeadline(10*time.Minute), mpi.WithObserver(obsr))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	if of.HTTP != "" {
		addr, err := obs.ServeLive(of.HTTPAddr(tf.Rank, tf.Remote()), w.LiveSnapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "live: http://%s/snapshot (watch with: dmgm-trace -watch %s)\n", addr, addr)
	}
	start := time.Now()
	var res *dmgm.ColorParallelResult
	if *distance2 {
		res, err = dmgm.ColorParallelDistance2World(w, g, part, dmgm.ColorParallelOptions{
			SuperstepSize: *superstep, Seed: *seed,
		})
	} else {
		res, err = dmgm.ColorParallelWorld(w, g, part, dmgm.ColorParallelOptions{
			SuperstepSize: *superstep, CommMode: mode, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if werr := of.Write(obsr, w.LocalRanks(), tf.Rank, tf.Remote()); werr != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", werr)
		os.Exit(1)
	}
	if oerr := of.ExportOTLP(obsr, w.LocalRanks(), part.P); oerr != nil {
		// Export is best-effort: warn, never fail the run.
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", oerr)
	}
	if res == nil {
		// A tcp worker that does not host rank 0: the gathered result lives
		// on rank 0's process, this one just reports completion.
		info("rank %d: done in %v\n", tf.Rank, elapsed)
		return
	}
	if *distance2 {
		err = coloring.VerifyDistance2(g, res.Colors)
	} else {
		err = res.Colors.Verify(g)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: verification failed: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		printJSON(summary{
			Algorithm: "speculative-" + mode.String(), Ranks: *p,
			Colors: res.NumColors, Rounds: res.Rounds, Conflicts: res.Conflicts,
			Messages: res.Messages, Bytes: res.Bytes,
			ElapsedSeconds: elapsed.Seconds(),
		})
	} else {
		fmt.Printf("algorithm: speculative framework (distance2=%v), %d ranks, s=%d, comm=%s\n", *distance2, *p, *superstep, mode)
		fmt.Printf("colors: %d\nrounds: %d\nconflicts: %d\nmessages: %d (%d bytes)\nhost wall: %v\n",
			res.NumColors, res.Rounds, res.Conflicts, res.Messages, res.Bytes, elapsed)
	}
	writeColors(*outPath, res.Colors)
}

// infoPrinter routes narration to stdout normally, stderr under -json.
func infoPrinter(jsonOut bool) func(format string, args ...any) {
	w := os.Stdout
	if jsonOut {
		w = os.Stderr
	}
	return func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
}

// writeColors saves the coloring when an output path was given.
func writeColors(path string, c coloring.Colors) {
	if path == "" {
		return
	}
	if err := coloring.WriteColorsFile(path, c); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
}

func runJP(g *graph.Graph, part *partition.Partition, seed uint64, jsonOut bool) {
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	results := make([]*coloring.ParallelResult, part.P)
	var mu sync.Mutex
	start := time.Now()
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := coloring.JonesPlassmann(c, shares[c.Rank()], seed, 0)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	}, mpi.WithDeadline(10*time.Minute))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	colors, err := coloring.Gather(shares, results)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: %v\n", err)
		os.Exit(1)
	}
	if err := colors.Verify(g); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-color: verification failed: %v\n", err)
		os.Exit(1)
	}
	if jsonOut {
		printJSON(summary{
			Algorithm: "jones-plassmann", Ranks: part.P,
			Colors: results[0].NumColors, Rounds: results[0].Rounds,
			ElapsedSeconds: elapsed.Seconds(),
		})
		return
	}
	fmt.Printf("algorithm: Jones-Plassmann, %d ranks\ncolors: %d\nrounds: %d\nhost wall: %v\n",
		part.P, results[0].NumColors, results[0].Rounds, elapsed)
}
