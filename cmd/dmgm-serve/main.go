// Command dmgm-serve is the long-running dmgm job daemon: it accepts
// matching and coloring jobs over HTTP JSON (POST /v1/jobs, see
// docs/PROTOCOL.md §6) and executes them on a pool of reusable in-process
// mpi worlds, with a bounded admission queue (429 + Retry-After under
// overload), per-job deadlines, an LRU result cache keyed by graph
// fingerprint, and graceful drain on SIGTERM.
//
// Large graphs ship once through the resumable chunked upload API
// (/v1/uploads, docs/PROTOCOL.md §7) into a bounded content-addressed
// graph store; jobs then reference them by fingerprint (graph_ref), and a
// warm partition cache skips re-partitioning across jobs over the same
// stored graph.
//
// Admission is per tenant (docs/PROTOCOL.md §8): callers name their tenant
// with the X-DMGM-Tenant header, -tenants loads per-tenant weights and
// quotas from a JSON file, and SIGHUP reloads that file live without
// dropping queued jobs.
//
// Usage:
//
//	dmgm-serve -addr :8321
//	dmgm-serve -addr :8321 -workers 4 -queue 64 -cache 256
//	dmgm-serve -addr :8321 -store-mb 1024 -upload-ttl 5m
//	dmgm-serve -addr :8321 -store-dir /var/lib/dmgm/store  # graph_refs survive restarts
//	dmgm-serve -addr :8321 -tenants tenants.json   # per-tenant quotas
//	dmgm-serve -addr :8321 -allow-paths            # permit graph_path jobs
//	dmgm-serve -addr :8321 -http :9321             # live obs endpoint too
//	dmgm-serve -addr :8321 -otlp http://localhost:4318
//	dmgm-serve -addr :8321 -trace-slow-ms 250 -access-log access.jsonl
//
// Every job runs under a W3C trace (docs/PROTOCOL.md §9): the caller's
// traceparent is honored or a trace id minted, echoed in the X-DMGM-Trace
// answer header and the trace_id response field. Slow and failed jobs keep
// their span tree in a bounded ring, served at GET /v1/jobs/{id}/trace and
// rendered by dmgm-trace -job. With -otlp set, traces stream to the
// collector as jobs finish and metrics push periodically — a continuous
// pipeline, not an exit-time dump.
//
// Submit with curl (inline graph, text edge-list format):
//
//	curl -s localhost:8321/v1/jobs -d '{
//	  "algorithm": "match", "ranks": 2,
//	  "graph": "g 3 2\ne 0 1 1.5\ne 1 2 2\n"
//	}'
//
// Drive it at scale with dmgm-load.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	of := obs.RegisterFlags()
	var (
		addr         = flag.String("addr", "127.0.0.1:8321", "HTTP listen address for the job API")
		queueLen     = flag.Int("queue", 32, "admission queue bound; beyond it submissions are shed with 429")
		workers      = flag.Int("workers", 2, "jobs executed concurrently (each drives one world of <ranks> goroutines)")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-job deadline (queue wait + run); requests may shorten it")
		cacheEntries = flag.Int("cache", 128, "result-cache entries (negative disables)")
		maxRanks     = flag.Int("max-ranks", 64, "per-job rank bound")
		allowPaths   = flag.Bool("allow-paths", false, "permit graph_path requests (daemon-local file reads); trusted callers only")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before abandoning queued jobs")
		storeMB      = flag.Int64("store-mb", 512, "content-addressed graph store budget, MiB")
		storeDir     = flag.String("store-dir", "", "persist deposited graphs (canonical DMGB) under this directory; graph_refs then survive restarts (docs/PROTOCOL.md §7)")
		storeDiskMB  = flag.Int64("store-disk-mb", 4096, "spill-directory byte budget, MiB; least recently used spill files beyond it are deleted (with -store-dir)")
		partCache    = flag.Int("part-cache", 64, "warm partition cache entries (negative disables)")
		uploadTTL    = flag.Duration("upload-ttl", 2*time.Minute, "idle upload sessions expire after this")
		uploadMB     = flag.Int64("upload-mb", 1024, "per-upload-session byte budget, MiB")
		tenantsPath  = flag.String("tenants", "", "per-tenant quota config, JSON (docs/OPERATIONS.md); SIGHUP reloads it live")
		maxTenants   = flag.Int("max-tenants", 64, "distinct tenant queues; further tenant names fold into the default queue")
		otlpInterval = flag.Duration("otlp-interval", 10*time.Second, "periodic OTLP metrics push interval (with -otlp)")
		otlpDrain    = flag.Duration("otlp-drain", 5*time.Second, "OTLP delivery-queue drain budget at shutdown (with -otlp)")
		traceSlowMS  = flag.Int64("trace-slow-ms", 1000, "retain the span tree of jobs slower than this, ms (0 retains every job, -1 none; errors always retained unless -1); serve them at GET /v1/jobs/{id}/trace")
		traceRing    = flag.Int("trace-ring", 256, "retained job traces kept (FIFO; negative disables retention)")
		accessLog    = flag.String("access-log", "", "structured JSON access log path, one line per request (\"-\" = stderr)")
		noTracing    = flag.Bool("no-tracing", false, "disable request-scoped tracing entirely (results stay byte-identical either way)")
	)
	flag.Parse()

	var policies *service.TenantPolicies
	if *tenantsPath != "" {
		p, err := service.LoadTenantPolicies(*tenantsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
			os.Exit(1)
		}
		policies = p
	}

	// The daemon always carries an observer: /metrics is part of the service
	// surface, and per-job spans cost nothing to keep in the driver ring.
	obsr := obs.NewObserver(0, of.SpanCap)
	if of.Sample {
		obsr.EnableDetailSampling()
	}

	// The access log is opened before the server so a bad path fails fast.
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		accessW = f
	}

	srv, err := service.NewServer(service.Config{
		QueueLen:              *queueLen,
		Workers:               *workers,
		DefaultTimeout:        *timeout,
		CacheEntries:          *cacheEntries,
		MaxRanks:              *maxRanks,
		AllowGraphPaths:       *allowPaths,
		StoreBytes:            *storeMB << 20,
		StoreDir:              *storeDir,
		StoreDiskBytes:        *storeDiskMB << 20,
		PartitionCacheEntries: *partCache,
		UploadTTL:             *uploadTTL,
		MaxUploadBytes:        *uploadMB << 20,
		Policies:              policies,
		MaxTenants:            *maxTenants,
		Observer:              obsr,
		OTLPEndpoint:          of.OTLP,
		OTLPInterval:          *otlpInterval,
		OTLPDrainTimeout:      *otlpDrain,
		RunID:                 of.RunID(),
		DisableTracing:        *noTracing,
		TraceSlowMillis:       *traceSlowMS,
		TraceRing:             *traceRing,
		AccessLog:             accessW,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
		os.Exit(1)
	}
	srv.Start()

	// SIGHUP reloads the tenant quota file live. A bad file keeps the
	// running policies — a reload must never degrade a healthy daemon.
	if *tenantsPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				p, err := service.LoadTenantPolicies(*tenantsPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dmgm-serve: tenants reload failed, keeping current policies: %v\n", err)
					continue
				}
				srv.SetPolicies(p)
				fmt.Fprintf(os.Stderr, "dmgm-serve: reloaded tenant policies from %s\n", *tenantsPath)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // Shutdown's error is the one that matters
	fmt.Fprintf(os.Stderr, "dmgm-serve: listening on http://%s (POST /v1/jobs, /v1/uploads, GET /healthz /metrics /snapshot)\n", ln.Addr())

	if of.HTTP != "" {
		liveAddr, err := obs.ServeLive(of.HTTP, srv.LiveSnapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dmgm-serve: live observability on http://%s (watch with: dmgm-trace -watch %s)\n", liveAddr, liveAddr)
	}
	if of.Pprof != "" {
		pprofAddr, err := obs.ServePprof(of.Pprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dmgm-serve: pprof on http://%s/debug/pprof/\n", pprofAddr)
	}

	// Graceful drain: stop admitting (healthz flips to 503 so balancers pull
	// the instance), let queued and running jobs finish within the budget,
	// then stop the workers and flush observability outputs.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-sigCtx.Done()
	fmt.Fprintln(os.Stderr, "dmgm-serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
		code = 1
	}
	srv.Stop()
	hs.Shutdown(context.Background()) //nolint:errcheck // listeners are going away with the process
	// No exit-time OTLP push here: with -otlp set the server runs a
	// continuous export pipeline (per-job traces plus a periodic metrics
	// push), and Stop above already drained it.
	if err := of.Write(obsr, nil, 0, false); err != nil {
		fmt.Fprintf(os.Stderr, "dmgm-serve: %v\n", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "dmgm-serve: drained")
	os.Exit(code)
}
