// Multilevel coarsening: the paper's third matching motivation (Section 1,
// citing Karypis & Kumar) — the coarsening phase of multilevel graph
// partitioners contracts a matching at every level. Heavy-edge matchings
// keep strongly connected vertices together, which is why a maximum-weight
// matching (or a good approximation) makes a good coarsener.
//
// This example repeatedly contracts the parallel half-approximate matching
// of a mesh until it is small, reporting the shrink factor and the
// preserved edge weight per level — the classic multilevel V-cycle's
// downward leg, driven entirely by this repository's matcher.
package main

import (
	"fmt"
	"log"

	"repro/dmgm"
)

// contract collapses each matched pair into one coarse vertex and sums
// parallel coarse edges.
func contract(g *dmgm.Graph, mates dmgm.Mates) (*dmgm.Graph, int) {
	n := g.NumVertices()
	coarseOf := make([]dmgm.Vertex, n)
	next := dmgm.Vertex(0)
	for v := 0; v < n; v++ {
		switch u := mates[v]; {
		case u == dmgm.None:
			coarseOf[v] = next
			next++
		case dmgm.Vertex(v) < u:
			coarseOf[v] = next
			coarseOf[u] = next
			next++
		}
	}
	var edges []dmgm.Edge
	g.ForEachEdge(func(u, v dmgm.Vertex, w float64) {
		cu, cv := coarseOf[u], coarseOf[v]
		if cu != cv {
			edges = append(edges, dmgm.Edge{U: cu, V: cv, W: w})
		}
	})
	// Sum weights of parallel edges, as multilevel coarsening does.
	coarse, err := dmgm.NewGraphSummed(int(next), edges)
	if err != nil {
		log.Fatal(err)
	}
	return coarse, int(next)
}

func main() {
	g, err := dmgm.Grid2D(256, 256, true, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 0: %v\n", g)

	level := 0
	for g.NumVertices() > 500 {
		level++
		// Parallel matching over 4 ranks drives the contraction.
		part, err := dmgm.PartitionBFS(g, 4, uint64(level))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dmgm.MatchParallel(g, part, dmgm.MatchParallelOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := dmgm.VerifyMatching(g, res.Mates); err != nil {
			log.Fatal(err)
		}
		before := g.NumVertices()
		coarse, nc := contract(g, res.Mates)
		fmt.Printf("level %d: matched %d pairs (weight %.1f), %d -> %d vertices (%.2fx), %d edges\n",
			level, res.Mates.Cardinality(), res.Weight, before, nc,
			float64(before)/float64(nc), coarse.NumEdges())
		// A maximal matching halves the vertex count in the best case and
		// must always shrink a graph that still has edges.
		if nc >= before && g.NumEdges() > 0 {
			log.Fatal("coarsening made no progress")
		}
		g = coarse
	}
	fmt.Printf("final: %v after %d levels\n", g, level)
}
