// Quickstart: build a small weighted graph, match and color it sequentially,
// then run both distributed algorithms over four goroutine "processors" and
// check that the results agree with the paper's claims (identical matching
// weight at any rank count; a proper coloring with near-serial color count).
package main

import (
	"fmt"
	"log"

	"repro/dmgm"
)

func main() {
	fmt.Println(dmgm.String())

	// The paper's model problem: a five-point grid with random edge weights
	// (Section 5.1). 60x60 keeps this instant.
	g, err := dmgm.Grid2D(60, 60, true, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)

	// Sequential half-approximate matching by locally dominant edges.
	mates := dmgm.Match(g)
	if err := dmgm.VerifyMatching(g, mates); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential matching: weight %.2f, %d pairs\n",
		mates.Weight(g), mates.Cardinality())

	// Sequential greedy coloring with the smallest-last ordering: grids are
	// bipartite, so this finds the optimal 2 colors.
	colors, err := dmgm.Color(g, dmgm.OrderSmallestLast, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := dmgm.VerifyColoring(g, colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential coloring: %d colors\n", colors.NumColors())

	// Distribute the grid over a 2x2 processor grid — the paper's uniform
	// two-dimensional distribution.
	part, err := dmgm.PartitionGrid2D(60, 60, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Distributed matching: REQUEST/SUCCEEDED/FAILED protocol with message
	// bundling. The weight is identical to the sequential run — Section
	// 5.2's invariance observation.
	mres, err := dmgm.MatchParallel(g, part, dmgm.MatchParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel matching (4 ranks): weight %.2f, %d outer iterations, %d messages\n",
		mres.Weight, mres.OuterIterations, mres.Messages)
	if mres.Weight != mates.Weight(g) && fmt.Sprintf("%.6f", mres.Weight) != fmt.Sprintf("%.6f", mates.Weight(g)) {
		log.Fatalf("weight changed under parallelism: %v vs %v", mres.Weight, mates.Weight(g))
	}

	// Distributed speculative coloring (Algorithm 4.1) with the paper's new
	// neighbor-customized communication.
	cres, err := dmgm.ColorParallel(g, part, dmgm.ColorParallelOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := dmgm.VerifyColoring(g, cres.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel coloring (4 ranks): %d colors in %d rounds (%d conflicts resolved)\n",
		cres.NumColors, cres.Rounds, cres.Conflicts)
}
