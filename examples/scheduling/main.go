// Task scheduling: the paper's §1 motivation "task scheduling and
// concurrency discovery in parallel computing" [12, 24]. Tasks that touch a
// shared resource cannot run simultaneously; a distance-1 coloring of the
// conflict graph partitions the tasks into phases of mutually independent
// work — the classic coloring-driven scheduler of iterative solvers (ILU,
// Gauss–Seidel sweeps).
//
// This example builds the conflict graph of a sparse triangular-solve-like
// workload, colors it in parallel, verifies that every phase is truly
// conflict-free, and reports the schedule length against the lower bound.
package main

import (
	"fmt"
	"log"

	"repro/dmgm"
)

// task i updates row i of a sparse system and conflicts with every task
// whose row shares a nonzero column — the sparsity is a random banded
// pattern, the standard shape in ILU-style scheduling.
func conflictGraph(nTasks int) (*dmgm.Graph, error) {
	colOf := func(t, k int) int { return (t + k*k*7) % nTasks }
	const perTask = 4
	colUsers := make([][]int32, nTasks)
	for t := 0; t < nTasks; t++ {
		for k := 0; k < perTask; k++ {
			c := colOf(t, k)
			colUsers[c] = append(colUsers[c], int32(t))
		}
	}
	var edges []dmgm.Edge
	for _, users := range colUsers {
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				edges = append(edges, dmgm.Edge{U: users[i], V: users[j], W: 1})
			}
		}
	}
	return dmgm.NewGraph(nTasks, edges)
}

func main() {
	const nTasks = 6000
	g, err := conflictGraph(nTasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict graph: %v (max conflicts per task: %d)\n", g, g.MaxDegree())

	part, err := dmgm.PartitionMultilevel(g, 8, true, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dmgm.ColorParallel(g, part, dmgm.ColorParallelOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if err := dmgm.VerifyColoring(g, res.Colors); err != nil {
		log.Fatal(err)
	}

	// Build the schedule: phase c runs every task with color c.
	phases := make([][]int32, res.NumColors)
	for t, c := range res.Colors {
		phases[c] = append(phases[c], int32(t))
	}
	// Verify phase independence explicitly (beyond the coloring check):
	// no two tasks in one phase may share an edge.
	for c, tasks := range phases {
		inPhase := map[int32]bool{}
		for _, t := range tasks {
			inPhase[t] = true
		}
		for _, t := range tasks {
			for _, u := range g.Neighbors(t) {
				if inPhase[u] {
					log.Fatalf("phase %d runs conflicting tasks %d and %d", c, t, u)
				}
			}
		}
	}
	lo, _ := dmgm.ColoringBounds(g)
	fmt.Printf("schedule: %d phases for %d tasks (clique lower bound: %d phases)\n",
		res.NumColors, nTasks, lo)
	min, max := nTasks, 0
	for _, tasks := range phases {
		if len(tasks) < min {
			min = len(tasks)
		}
		if len(tasks) > max {
			max = len(tasks)
		}
	}
	fmt.Printf("phase sizes: %d..%d tasks (ideal parallelism %.0fx)\n",
		min, max, float64(nTasks)/float64(res.NumColors))
}
