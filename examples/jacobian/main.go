// Jacobian compression: the paper's first coloring motivation (Section 1,
// citing Gebremedhin–Manne–Pothen, "What color is your Jacobian?"). A
// distance-1 coloring of the column intersection graph of a sparse matrix
// partitions the columns into structurally orthogonal groups; a Jacobian
// with n columns can then be recovered from only NumColors directional
// derivatives instead of n.
//
// This example builds a sparse "Jacobian" sparsity pattern, colors its
// column intersection graph with the distributed speculative algorithm, and
// verifies the compression: every pair of columns in a group must touch
// disjoint row sets.
package main

import (
	"fmt"
	"log"

	"repro/dmgm"
)

// jacobianPattern synthesizes the sparsity of a banded PDE-style Jacobian
// with a few dense-ish coupling columns: rows 0..m-1, cols 0..n-1.
func jacobianPattern(m, n int) [][]int {
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		// Band of width 3 around the diagonal direction.
		base := j * m / n
		for _, r := range []int{base - 1, base, base + 1} {
			if r >= 0 && r < m {
				cols[j] = append(cols[j], r)
			}
		}
		// Periodic coupling: every 16th column also touches a shared row
		// block (e.g. a global constraint).
		if j%16 == 0 {
			cols[j] = append(cols[j], m-1-(j/16)%3)
		}
	}
	return cols
}

func main() {
	const mRows, nCols = 4000, 4000
	cols := jacobianPattern(mRows, nCols)

	// Column intersection graph: columns are adjacent when they share a row.
	rowToCols := make([][]int32, mRows)
	for j, rows := range cols {
		for _, r := range rows {
			rowToCols[r] = append(rowToCols[r], int32(j))
		}
	}
	var edges []dmgm.Edge
	for _, cc := range rowToCols {
		for i := 0; i < len(cc); i++ {
			for k := i + 1; k < len(cc); k++ {
				edges = append(edges, dmgm.Edge{U: cc[i], V: cc[k], W: 1})
			}
		}
	}
	g, err := dmgm.NewGraph(nCols, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column intersection graph: %v\n", g)

	// Distribute over 8 ranks with the multilevel partitioner and color.
	part, err := dmgm.PartitionMultilevel(g, 8, true, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dmgm.ColorParallel(g, part, dmgm.ColorParallelOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := dmgm.VerifyColoring(g, res.Colors); err != nil {
		log.Fatal(err)
	}
	lo, hi := dmgm.ColoringBounds(g)
	fmt.Printf("coloring: %d groups (bounds [%d,%d]) in %d rounds\n",
		res.NumColors, lo, hi, res.Rounds)

	// Verify structural orthogonality: within a color class no two columns
	// share a row — so one matrix-vector probe per class recovers all
	// entries of the class.
	seen := make(map[int64]int32) // (color, row) -> column
	for j, rows := range cols {
		c := res.Colors[j]
		for _, r := range rows {
			key := int64(c)<<32 | int64(r)
			if prev, clash := seen[key]; clash {
				log.Fatalf("columns %d and %d share row %d within color %d", prev, j, r, c)
			}
			seen[key] = int32(j)
		}
	}
	fmt.Printf("compression verified: %d derivative evaluations instead of %d (%.1fx)\n",
		res.NumColors, nCols, float64(nCols)/float64(res.NumColors))
}
