// Scaling: a miniature version of the paper's Section 5 study runnable in
// seconds — weak scaling on five-point grids (Fig 5.1) and strong scaling
// with a Blue Gene/P model extension (Fig 5.2), printed as the same kind of
// Actual-vs-Ideal series the paper plots. For the full reproduction use
// cmd/dmgm-experiments.
package main

import (
	"log"
	"os"

	"repro/internal/expt"
)

func main() {
	o := expt.Options{
		Out:         os.Stdout,
		Seed:        1,
		WeakSubgrid: 48,
		WeakProcs:   []int{1, 4, 16},
		WeakModelProcs: []int{
			64, 256, 1024,
		},
		StrongGrid:       192,
		StrongProcs:      []int{1, 2, 4, 8, 16},
		StrongModelProcs: []int{32, 64, 128, 256},
	}
	if err := expt.Table51(o); err != nil {
		log.Fatal(err)
	}
	if _, _, err := expt.Fig51(o); err != nil {
		log.Fatal(err)
	}
	if _, _, err := expt.Fig52(o); err != nil {
		log.Fatal(err)
	}
}
