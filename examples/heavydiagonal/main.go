// Heavy diagonal: the paper's first matching motivation (Section 1, citing
// Duff & Koster) — permute the rows of a sparse matrix so that the diagonal
// carries large entries, improving numerical stability of direct solvers and
// convergence of iterative ones. A maximum-weight matching of the bipartite
// row/column graph with weights |a_ij| yields exactly such a permutation.
//
// This example builds a sparse matrix whose large entries are scattered off
// the diagonal, computes the half-approximate matching in parallel, applies
// the induced row permutation, and reports how much diagonal mass the
// permutation recovered, also comparing against the exact optimum.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/dmgm"
)

func main() {
	const n = 2000
	// A banded matrix whose heaviest entry per row sits off-diagonal.
	var entries []dmgm.Entry
	for i := 0; i < n; i++ {
		for _, off := range []int{-2, -1, 0, 1, 2} {
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			w := 1.0 + float64((i*7+j*13)%10)/10 // small fill entries
			if off == ((i % 3) - 1) {
				w = 100 + float64(i%50) // the dominant entry wanders around the diagonal
			}
			entries = append(entries, dmgm.Entry{Row: i, Col: j, W: w})
		}
	}
	b, err := dmgm.NewBipartite(n, n, entries)
	if err != nil {
		log.Fatal(err)
	}

	diagMass := func(perm []int) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			if perm[i] < 0 {
				continue
			}
			if w, ok := b.EdgeWeight(b.RowID(i), b.ColID(perm[i])); ok {
				sum += w
			}
		}
		return sum
	}

	// Identity permutation baseline.
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	before := diagMass(id)

	// Distributed half-approximate matching over 8 ranks.
	part, err := dmgm.PartitionMultilevel(b.Graph, 8, true, 11)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dmgm.MatchParallel(b.Graph, part, dmgm.MatchParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	perm := make([]int, n)
	matched := 0
	for i := 0; i < n; i++ {
		perm[i] = -1
		if mate := res.Mates[b.RowID(i)]; mate != dmgm.None {
			perm[i] = int(mate) - n // column index
			matched++
		}
	}
	after := diagMass(perm)

	// Exact optimum for reference (Table 1.1's comparison).
	exact, err := dmgm.MatchExactBipartite(b)
	if err != nil {
		log.Fatal(err)
	}
	optimum := exact.Weight(b.Graph)

	fmt.Printf("matrix: %d x %d, %d nonzeros\n", n, n, len(entries))
	fmt.Printf("diagonal mass, identity permutation:  %12.1f\n", before)
	fmt.Printf("diagonal mass, matched permutation:   %12.1f (%d rows matched)\n", after, matched)
	fmt.Printf("optimal matching weight:              %12.1f\n", optimum)
	fmt.Printf("half-approximation quality:           %11.2f%% (guarantee: >= 50%%)\n",
		100*after/optimum)
	if after < optimum/2-1e-9 {
		log.Fatal("half-approximation bound violated")
	}
	if math.Abs(after-res.Weight) > 1e-6 {
		log.Fatalf("bookkeeping mismatch: diagonal mass %f vs matching weight %f", after, res.Weight)
	}
}
