// Package repro's root benchmarks regenerate every table and figure of the
// paper (via the internal/expt harness) and additionally benchmark the
// design choices DESIGN.md calls out for ablation: message bundling in the
// matching protocol, the coloring communication modes (FIAB / FIAC /
// neighbor-customized), superstep sizes, conflict-resolution policies, and
// interior/boundary vertex orders.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Per-figure benches print the same Actual/Ideal series the paper plots
// (once per benchmark, not per iteration).
package repro

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/order"
	"repro/internal/partition"
)

// benchOpts returns harness options sized for benchmarking: moderate
// instances, output shown once via b.Logf-style printing suppressed.
func benchOpts() expt.Options {
	return expt.Options{
		Out:  io.Discard,
		Seed: 3,
		// Bench-scale: smaller than the default CLI run, bigger than Quick.
		WeakSubgrid:       48,
		WeakProcs:         []int{1, 4, 16},
		WeakModelProcs:    []int{256, 1024, 4096, 16384},
		StrongGrid:        256,
		StrongProcs:       []int{1, 2, 4, 8, 16},
		StrongModelProcs:  []int{64, 256, 1024, 4096, 16384},
		CircuitSide:       96,
		CircuitProcs:      []int{2, 4, 8, 16},
		CircuitModelProcs: []int{64, 256, 1024, 4096},
	}
}

// --- Table 1.1 ---------------------------------------------------------

func BenchmarkTable11MatchingQuality(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table11(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// --- Figures 5.1–5.4 ----------------------------------------------------

func BenchmarkFig51WeakMatching(b *testing.B) {
	benchGridFigure(b, true, true)
}

func BenchmarkFig51WeakColoring(b *testing.B) {
	benchGridFigure(b, true, false)
}

func BenchmarkFig52StrongMatching(b *testing.B) {
	benchGridFigure(b, false, true)
}

func BenchmarkFig52StrongColoring(b *testing.B) {
	benchGridFigure(b, false, false)
}

// benchGridFigure runs one measured series of the grid scaling studies; the
// full two-algorithm figure (with the model extension) runs once up front so
// the series is reported, then the timed loop re-measures the largest
// measured configuration — the figure's dominant cost.
func benchGridFigure(b *testing.B, weak, isMatching bool) {
	o := benchOpts()
	var err error
	if weak {
		_, _, err = expt.Fig51(o)
	} else {
		_, _, err = expt.Fig52(o)
	}
	if err != nil {
		b.Fatal(err)
	}
	// Timed portion: the largest measured point.
	var spec dgraph.GridSpec
	if weak {
		p := o.WeakProcs[len(o.WeakProcs)-1]
		pr := 1
		for pr*pr < p {
			pr++
		}
		spec = dgraph.GridSpec{K1: o.WeakSubgrid * pr, K2: o.WeakSubgrid * pr, PR: pr, PC: pr, Weighted: true, Seed: o.Seed}
	} else {
		spec = dgraph.GridSpec{K1: o.StrongGrid, K2: o.StrongGrid, PR: 4, PC: 4, Weighted: true, Seed: o.Seed}
	}
	shares := make([]*dgraph.DistGraph, spec.P())
	for r := range shares {
		d, err := dgraph.BuildGrid(spec, r)
		if err != nil {
			b.Fatal(err)
		}
		shares[r] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if isMatching {
			if _, err := expt.MeasureMatching(shares, matching.ParallelOptions{}); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := expt.MeasureColoring(shares, coloring.ParallelOptions{Seed: o.Seed, SuperstepSize: o.Superstep}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig53CircuitMatching(b *testing.B) {
	o := benchOpts()
	if _, err := expt.Fig53(o); err != nil {
		b.Fatal(err)
	}
	bp, err := gen.CircuitBipartite(o.CircuitSide, o.CircuitSide, 0.45, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	shares := circuitShares(b, bp.Graph, 16, true, o.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.MeasureMatching(shares, matching.ParallelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig54CircuitColoring(b *testing.B) {
	o := benchOpts()
	if _, err := expt.Fig54(o); err != nil {
		b.Fatal(err)
	}
	g, err := gen.Circuit(o.CircuitSide, o.CircuitSide, 0.45, false, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	shares := circuitShares(b, g, 16, false, o.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.MeasureColoring(shares, coloring.ParallelOptions{Seed: o.Seed, SuperstepSize: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func circuitShares(b *testing.B, g *graph.Graph, p int, refine bool, seed uint64) []*dgraph.DistGraph {
	b.Helper()
	part, err := partition.Multilevel(g, p, partition.MultilevelOptions{Seed: seed, NoRefine: !refine})
	if err != nil {
		b.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		b.Fatal(err)
	}
	return shares
}

// --- Ablations ----------------------------------------------------------

// ablationMatchingShares prepares a 16-rank grid distribution whose cross
// traffic is heavy enough for bundling to matter.
func ablationMatchingShares(b *testing.B) []*dgraph.DistGraph {
	b.Helper()
	spec := dgraph.GridSpec{K1: 256, K2: 256, PR: 4, PC: 4, Weighted: true, Seed: 7}
	shares := make([]*dgraph.DistGraph, spec.P())
	for r := range shares {
		d, err := dgraph.BuildGrid(spec, r)
		if err != nil {
			b.Fatal(err)
		}
		shares[r] = d
	}
	return shares
}

func BenchmarkAblationBundlingOn(b *testing.B) {
	shares := ablationMatchingShares(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := expt.MeasureMatching(shares, matching.ParallelOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(totalMsgs(m)), "msgs")
		}
	}
}

func BenchmarkAblationBundlingOff(b *testing.B) {
	shares := ablationMatchingShares(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := expt.MeasureMatching(shares, matching.ParallelOptions{MaxBundleBytes: 17})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(totalMsgs(m)), "msgs")
		}
	}
}

func totalMsgs(m *expt.Measurement) int64 {
	var t int64
	for _, r := range m.Ranks {
		t += r.Msgs
	}
	return t
}

// ablationColoringShares prepares a 12-rank irregular distribution.
func ablationColoringShares(b *testing.B) []*dgraph.DistGraph {
	b.Helper()
	g, err := gen.Circuit(120, 120, 0.45, false, 5)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.BFS(g, 12, 3)
	if err != nil {
		b.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		b.Fatal(err)
	}
	return shares
}

func benchColoring(b *testing.B, opt coloring.ParallelOptions) {
	shares := ablationColoringShares(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := expt.MeasureColoring(shares, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(totalMsgs(m)), "msgs")
			b.ReportMetric(float64(m.NumColors), "colors")
			b.ReportMetric(float64(m.Epochs), "rounds")
		}
	}
}

func BenchmarkAblationCommModeNeighbors(b *testing.B) {
	benchColoring(b, coloring.ParallelOptions{Seed: 1, CommMode: coloring.CommNeighbors})
}

func BenchmarkAblationCommModeCustomizedAll(b *testing.B) {
	benchColoring(b, coloring.ParallelOptions{Seed: 1, CommMode: coloring.CommCustomizedAll})
}

func BenchmarkAblationCommModeBroadcast(b *testing.B) {
	benchColoring(b, coloring.ParallelOptions{Seed: 1, CommMode: coloring.CommBroadcast})
}

func BenchmarkAblationSuperstep(b *testing.B) {
	for _, s := range []int{1, 10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			benchColoring(b, coloring.ParallelOptions{Seed: 1, SuperstepSize: s})
		})
	}
}

func BenchmarkAblationConflictPolicyRandom(b *testing.B) {
	benchColoring(b, coloring.ParallelOptions{Seed: 1, Conflict: coloring.ConflictRandom, SuperstepSize: 50})
}

func BenchmarkAblationConflictPolicyMinID(b *testing.B) {
	benchColoring(b, coloring.ParallelOptions{Seed: 1, Conflict: coloring.ConflictMinID, SuperstepSize: 50})
}

func BenchmarkAblationVertexOrder(b *testing.B) {
	for _, o := range []coloring.VertexOrder{coloring.BoundaryFirst, coloring.InteriorFirst, coloring.Interleaved} {
		b.Run(o.String(), func(b *testing.B) {
			benchColoring(b, coloring.ParallelOptions{Seed: 1, Order: o})
		})
	}
}

func BenchmarkAblationJonesPlassmannBaseline(b *testing.B) {
	shares := ablationColoringShares(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make([]*coloring.ParallelResult, len(shares))
		var mu sync.Mutex
		err := mpi.Run(len(shares), func(c *mpi.Comm) error {
			res, err := coloring.JonesPlassmann(c, shares[c.Rank()], 1, 0)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = res
			mu.Unlock()
			return nil
		}, mpi.WithDeadline(5*time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(results[0].Rounds), "rounds")
		}
	}
}

// --- Micro-benchmarks of the sequential kernels -------------------------

func BenchmarkSequentialMatchingGrid(b *testing.B) {
	g, err := gen.Grid2D(512, 512, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := matching.LocallyDominant(g)
		if m.Cardinality() == 0 {
			b.Fatal("empty matching")
		}
	}
}

func BenchmarkSequentialMatchingRMAT(b *testing.B) {
	g, err := gen.RMAT(14, 8, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.LocallyDominant(g)
	}
}

func BenchmarkSequentialGreedySortMatching(b *testing.B) {
	g, err := gen.Grid2D(512, 512, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.Greedy(g)
	}
}

func BenchmarkSequentialColoringGrid(b *testing.B) {
	g, err := gen.Grid2D(512, 512, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coloring.Greedy(g, order.Natural, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialColoringSmallestLast(b *testing.B) {
	g, err := gen.Grid2D(512, 512, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coloring.Greedy(g, order.SmallestLast, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultilevelPartition(b *testing.B) {
	g, err := gen.Circuit(150, 150, 0.45, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Multilevel(g, 16, partition.MultilevelOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridGeneration(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Grid2D(512, 512, true, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactBipartite(b *testing.B) {
	bp, err := gen.RandomBipartite(500, 500, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.ExactBipartite(bp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hybrid / shared-memory extensions (paper Section 6 outlook) ---------

func BenchmarkSuitorSharedMemory(b *testing.B) {
	g, err := gen.Grid2D(512, 512, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.Suitor(g, workers)
			}
		})
	}
}

func BenchmarkColoringSharedMemory(b *testing.B) {
	g, err := gen.Grid2D(512, 512, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coloring.SharedMemory(g, workers, 1)
			}
		})
	}
}

func BenchmarkHybridDistributedColoring(b *testing.B) {
	shares := ablationColoringShares(b)
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expt.MeasureColoring(shares, coloring.ParallelOptions{Seed: 1, Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistance2Coloring(b *testing.B) {
	g, err := gen.Grid2D(256, 256, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coloring.GreedyDistance2(g, order.Natural, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMatchingGreedy(b *testing.B) {
	g, err := gen.Grid2D(256, 256, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	caps := matching.UniformB(g.NumVertices(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.GreedyB(g, caps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMatchingDistributed(b *testing.B) {
	shares := ablationMatchingShares(b)
	caps := make([][]int, len(shares))
	for rank, d := range shares {
		caps[rank] = matching.UniformB(d.NLocal, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make([]*matching.BParallelResult, len(shares))
		var mu sync.Mutex
		err := mpi.Run(len(shares), func(c *mpi.Comm) error {
			res, err := matching.BParallel(c, shares[c.Rank()], caps[c.Rank()], matching.BParallelOptions{})
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = res
			mu.Unlock()
			return nil
		}, mpi.WithDeadline(5*time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(results[0].Rounds), "rounds")
		}
	}
}

func BenchmarkDistance2Distributed(b *testing.B) {
	g, err := gen.Circuit(60, 60, 0.45, false, 3)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.BFS(g, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make([]*coloring.ParallelResult, len(shares))
		var mu sync.Mutex
		err := mpi.Run(len(shares), func(c *mpi.Comm) error {
			res, err := coloring.ParallelDistance2(c, shares[c.Rank()], coloring.ParallelOptions{Seed: 1})
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = res
			mu.Unlock()
			return nil
		}, mpi.WithDeadline(5*time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(results[0].NumColors), "colors")
			b.ReportMetric(float64(results[0].Rounds), "rounds")
		}
	}
}
