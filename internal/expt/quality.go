package expt

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

// qualityInstance is one row of the Table 1.1 reproduction: a bipartite
// graph standing in for one of the paper's UF matrices.
type qualityInstance struct {
	name  string
	build func(seed uint64) (*graph.Bipartite, error)
}

// table11Instances mirrors the paper's six-matrix spread: irregular sparse
// (ASIC_680k, rajat31 — circuit matrices), Hamrle3 (circuit), cage14
// (DNA-electrophoresis, denser), ldoor/audikw_1 (FEM meshes, densest). The
// repro band substitutes synthetic families with matching structure; sizes
// are scaled to laptop budgets (the exact reference solver dominates cost).
func table11Instances(quick bool) []qualityInstance {
	scale := 1
	if quick {
		scale = 4
	}
	return []qualityInstance{
		{"circuit-A (ASIC-like)", func(seed uint64) (*graph.Bipartite, error) {
			return gen.CircuitBipartite(60/scale+4, 60/scale+4, 0.45, seed)
		}},
		{"circuit-B (Hamrle-like)", func(seed uint64) (*graph.Bipartite, error) {
			return gen.CircuitBipartite(80/scale+4, 50/scale+4, 0.35, seed+1)
		}},
		{"rand-sparse (rajat-like)", func(seed uint64) (*graph.Bipartite, error) {
			return gen.RandomBipartite(2400/scale, 2400/scale, 3, seed+2)
		}},
		{"rand-dense (cage-like)", func(seed uint64) (*graph.Bipartite, error) {
			return gen.RandomBipartite(1200/scale, 1200/scale, 9, seed+3)
		}},
		{"mesh-5pt (ldoor-like)", func(seed uint64) (*graph.Bipartite, error) {
			g, err := gen.Grid2D(44/scale+4, 44/scale+4, true, seed+4)
			if err != nil {
				return nil, err
			}
			return gen.BipartiteOf(g)
		}},
		{"mesh-9pt (audikw-like)", func(seed uint64) (*graph.Bipartite, error) {
			g, err := gen.Grid2D9Point(36/scale+4, 36/scale+4, true, seed+5)
			if err != nil {
				return nil, err
			}
			return gen.BipartiteOf(g)
		}},
	}
}

// QualityRow is one computed row of the Table 1.1 reproduction.
type QualityRow struct {
	Name     string
	Vertices int
	Edges    int64
	Approx   float64
	Exact    float64
	Quality  float64 // percent
}

// Table11 reproduces Table 1.1: the weight quality of the half-approximation
// matching relative to the exact maximum-weight bipartite matching. The
// paper reports 99.36–100 %; the guarantee is >= 50 %.
func Table11(o Options) ([]QualityRow, error) {
	o = o.withDefaults()
	t := NewTable("Table 1.1 — half-approximation matching quality vs optimum",
		"Instance", "#Vertices", "#Edges", "ApproxW", "OptW", "Quality")
	var rows []QualityRow
	for _, inst := range table11Instances(o.Quick) {
		b, err := inst.build(o.Seed)
		if err != nil {
			return nil, fmt.Errorf("expt: building %s: %w", inst.name, err)
		}
		approx := matching.LocallyDominant(b.Graph)
		if err := approx.VerifyMaximal(b.Graph); err != nil {
			return nil, fmt.Errorf("expt: %s: %w", inst.name, err)
		}
		exact, err := matching.ExactBipartite(b)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", inst.name, err)
		}
		aw := approx.Weight(b.Graph)
		ew := exact.Weight(b.Graph)
		q := 100.0
		if ew > 0 {
			q = 100 * aw / ew
		}
		if aw < ew/2 {
			return nil, fmt.Errorf("expt: %s: approximation below 1/2 bound (%g vs %g)", inst.name, aw, ew)
		}
		rows = append(rows, QualityRow{
			Name: inst.name, Vertices: b.NumVertices(), Edges: b.NumEdges(),
			Approx: aw, Exact: ew, Quality: q,
		})
		t.AddRow(inst.name, b.NumVertices(), b.NumEdges(),
			fmt.Sprintf("%.2f", aw), fmt.Sprintf("%.2f", ew), fmt.Sprintf("%.2f%%", q))
	}
	t.AddComment("paper reports 99.36%%–100.00%% on six UF matrices; guarantee is >= 50%%")
	t.AddComment("instances are synthetic stand-ins (see DESIGN.md substitutions)")
	if err := o.emit(t); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table51 prints the experimental-setup overview mirroring the paper's
// Table 5.1, with this reproduction's scaled parameters.
func Table51(o Options) error {
	o = o.withDefaults()
	t := NewTable("Table 5.1 — overview of experimental setup (reproduction scale)",
		"Figure", "Problem", "Scaling", "Input graph", "Distribution", "Max procs (measured/model)")
	maxW := o.WeakProcs[len(o.WeakProcs)-1]
	maxWM := o.WeakModelProcs[len(o.WeakModelProcs)-1]
	maxS := o.StrongProcs[len(o.StrongProcs)-1]
	maxSM := o.StrongModelProcs[len(o.StrongModelProcs)-1]
	maxC := o.CircuitProcs[len(o.CircuitProcs)-1]
	maxCM := o.CircuitModelProcs[len(o.CircuitModelProcs)-1]
	t.AddRow("Fig 5.1", "matching & coloring", "Weak",
		fmt.Sprintf("k x k grids, %dx%d per rank", o.WeakSubgrid, o.WeakSubgrid),
		"Uniform 2D", fmt.Sprintf("%d / %d", maxW, maxWM))
	t.AddRow("Fig 5.2", "matching & coloring", "Strong",
		fmt.Sprintf("%d x %d grid", o.StrongGrid, o.StrongGrid),
		"Uniform 2D", fmt.Sprintf("%d / %d", maxS, maxSM))
	t.AddRow("Fig 5.3", "matching", "Strong",
		fmt.Sprintf("circuit bipartite (%dx%d die)", o.CircuitSide, o.CircuitSide),
		"Multilevel (METIS-like)", fmt.Sprintf("%d / %d", maxC, maxCM))
	t.AddRow("Fig 5.4", "coloring", "Strong",
		fmt.Sprintf("circuit adjacency (%dx%d die)", o.CircuitSide, o.CircuitSide),
		"Multilevel unrefined (ParMETIS-like)", fmt.Sprintf("%d / %d", maxC, maxCM))
	t.AddComment("paper: grids to 32,000^2 (|V|~1B) on up to 16,384 BG/P processors")
	return o.emit(t)
}
