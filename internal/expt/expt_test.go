package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dgraph"
	"repro/internal/matching"
)

func quickOpts(buf *bytes.Buffer) Options {
	return Options{Out: buf, Quick: true, Seed: 7}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("demo", "A", "BB")
	tab.AddRow("x", 12)
	tab.AddRow(3.5, "y")
	tab.AddComment("note %d", 1)
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "A", "BB", "x", "12", "# note 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tab.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "A,BB\n") {
		t.Fatalf("csv header wrong: %q", csv.String())
	}
}

func TestFormatSeconds(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1.5e-5, "1.5e-05"},
		{0.25, "0.2500"},
		{3.25, "3.250"},
	} {
		if got := formatSeconds(tc.in); got != tc.want {
			t.Errorf("formatSeconds(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFitLogTrend(t *testing.T) {
	// Perfect trend y = 2 + 3 ln p.
	ps := []int{1, 2, 4, 8}
	ys := make([]float64, len(ps))
	for i, p := range ps {
		ys[i] = 2 + 3*math.Log(float64(p))
	}
	f := FitLogTrend(ps, ys, 0)
	if got := f(16); math.Abs(got-(2+3*math.Log(16))) > 1e-9 {
		t.Fatalf("extrapolation = %g", got)
	}
	// Clamping.
	g := FitLogTrend([]int{2, 4}, []float64{5, 1}, 3)
	if got := g(64); got != 3 {
		t.Fatalf("clamped fit = %g, want 3", got)
	}
	// Degenerate inputs.
	if h := FitLogTrend(nil, nil, 2); h(10) != 2 {
		t.Fatal("empty fit ignored floor")
	}
	if h := FitLogTrend([]int{4}, []float64{9}, 0); h(4) != 9 {
		t.Fatal("single-point fit not constant")
	}
}

func TestTable11QuickRun(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table11(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (as in the paper)", len(rows))
	}
	for _, r := range rows {
		// Quick-mode instances are tiny, so allow a wider band than the
		// paper's >90% (which full-size runs do reach); the hard guarantee
		// is 50%.
		if r.Quality < 80 || r.Quality > 100.0001 {
			t.Errorf("%s: quality %.2f%% outside the expected band", r.Name, r.Quality)
		}
		if r.Approx > r.Exact+1e-9 {
			t.Errorf("%s: approx %.2f exceeds optimum %.2f", r.Name, r.Approx, r.Exact)
		}
	}
	if !strings.Contains(buf.String(), "Table 1.1") {
		t.Error("missing table title")
	}
}

func TestTable51Render(t *testing.T) {
	var buf bytes.Buffer
	if err := Table51(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5.1", "Fig 5.4", "Uniform 2D", "METIS-like"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 5.1 missing %q", want)
		}
	}
}

func TestFig51QuickWeakScaling(t *testing.T) {
	var buf bytes.Buffer
	match, color, err := Fig51(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(match) == 0 || len(color) == 0 {
		t.Fatal("empty series")
	}
	// Weak scaling: the model series should stay within a small factor of
	// the first point (the paper's near-flat curves).
	for _, rows := range [][]ScalingRow{match, color} {
		first := rows[0].Model
		for _, r := range rows {
			if r.Model > 5*first {
				t.Errorf("weak scaling blow-up at p=%d: %g vs %g", r.P, r.Model, first)
			}
			if r.Ideal != rows[0].Ideal {
				t.Errorf("weak ideal not flat at p=%d", r.P)
			}
		}
	}
}

func TestFig52QuickStrongScaling(t *testing.T) {
	var buf bytes.Buffer
	match, color, err := Fig52(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]ScalingRow{match, color} {
		// Strong scaling: model times must decrease substantially from the
		// first to the mid-range points (before the comm floor).
		if len(rows) < 3 {
			t.Fatal("too few points")
		}
		if rows[1].Model >= rows[0].Model {
			t.Errorf("no speedup from p=%d to p=%d (%g -> %g)",
				rows[0].P, rows[1].P, rows[0].Model, rows[1].Model)
		}
		// Ideal follows 1/p.
		r0 := rows[0]
		for _, r := range rows[1:] {
			want := r0.Ideal * float64(r0.P) / float64(r.P)
			if math.Abs(r.Ideal-want) > 1e-12*math.Max(1, want) {
				t.Errorf("ideal at p=%d is %g, want %g", r.P, r.Ideal, want)
			}
		}
	}
	// Weight invariance was checked inside Fig52; double-check rows carry it.
	var weights []string
	for _, r := range match {
		if r.Measured {
			weights = append(weights, r.Extra)
		}
	}
	for _, w := range weights[1:] {
		if w != weights[0] {
			t.Fatalf("matching weight varies: %v", weights)
		}
	}
}

func TestFig53QuickCircuitMatching(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig53(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("too few points")
	}
	if !strings.Contains(buf.String(), "Fig 5.3") {
		t.Error("missing figure title")
	}
}

func TestFig54QuickCircuitColoring(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig54(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("too few points")
	}
	// The unrefined partitioner must produce a clearly worse cut than
	// Fig 5.3's refined one at the same max procs; just require a
	// substantial cut fraction in the Input annotation of the last row.
	lastCut := rows[len(rows)-1].Input
	if !strings.Contains(lastCut, "cut") {
		t.Fatalf("missing cut annotation: %q", lastCut)
	}
}

func TestMeasurementMaxRank(t *testing.T) {
	spec := dgraph.GridSpec{K1: 8, K2: 8, PR: 2, PC: 2, Weighted: true, Seed: 1}
	shares, err := gridShares(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureMatching(shares, matchingOptions())
	if err != nil {
		t.Fatal(err)
	}
	worst := m.MaxRank()
	if worst.EdgeOps == 0 {
		t.Fatal("max rank has no work")
	}
	cs := ExtractCommScalars(shares, m)
	if cs.BytesPerCrossArc <= 0 {
		t.Fatalf("bytes per cross arc %g", cs.BytesPerCrossArc)
	}
	synth := SynthesizeProfiles(shares, cs, m.Epochs)
	if len(synth) != 4 {
		t.Fatal("wrong synthesized profile count")
	}
	for _, p := range synth {
		if p.EdgeOps == 0 || p.Epochs != m.Epochs {
			t.Fatalf("bad synthesized profile %+v", p)
		}
	}
}

func TestSquareFactor(t *testing.T) {
	for _, tc := range []struct{ p, pr, pc int }{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {2, 1, 2}, {8, 2, 4}, {12, 3, 4},
	} {
		pr, pc := squareFactor(tc.p)
		if pr*pc != tc.p || pr != tc.pr || pc != tc.pc {
			t.Errorf("squareFactor(%d) = %d,%d want %d,%d", tc.p, pr, pc, tc.pr, tc.pc)
		}
	}
}

// matchingOptions returns default parallel matching options.
func matchingOptions() matching.ParallelOptions { return matching.ParallelOptions{} }

func TestAblationsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"message bundling", "communication mode", "superstep size",
		"conflict resolution", "coloring order", "Jones",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestTable11WeightSweep(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table11WeightSweep(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9 (3 instances x 3 schemes)", len(rows))
	}
	// The hypothesis itself: on every topology, log-uniform weights must
	// give at least the quality of narrow-uniform weights.
	byInst := map[string]map[string]float64{}
	for _, r := range rows {
		if byInst[r.Instance] == nil {
			byInst[r.Instance] = map[string]float64{}
		}
		byInst[r.Instance][r.Scheme] = r.Quality
	}
	for inst, m := range byInst {
		if m["log-uniform [1,403)"] < m["uniform (1,2)"]-2 {
			t.Errorf("%s: log-uniform quality %.2f%% not above uniform %.2f%%",
				inst, m["log-uniform [1,403)"], m["uniform (1,2)"])
		}
	}
}
