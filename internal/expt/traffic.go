package expt

import (
	"fmt"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// Traffic runs one matching and one NEW-variant coloring over the circuit
// instance and prints the per-tag-family traffic breakdown — the live view
// `dmgm-trace -watch` renders mid-run, recorded here from finished runs so
// the numbers are reproducible. The user families sum exactly to the
// aggregate counters (asserted in conformance); the runtime family is the
// reserved-tag collective traffic, zero on the in-process backend used here.
func Traffic(o Options) error {
	o = o.withDefaults()
	side := o.CircuitSide
	g, err := gen.Circuit(side, side, 0.45, false, o.Seed)
	if err != nil {
		return err
	}
	p := 12
	if o.Quick {
		p = 4
	}
	part, err := partition.BFS(g, p, o.Seed)
	if err != nil {
		return err
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		return err
	}

	total, note, err := runForStats(p, func(c *mpi.Comm) error {
		_, err := matching.Parallel(c, shares[c.Rank()], matching.ParallelOptions{})
		return err
	})
	if err != nil {
		return err
	}
	if err := emitTrafficTable(o,
		fmt.Sprintf("Per-tag-family traffic — matching, circuit graph (n=%d, m=%d, p=%d)", g.NumVertices(), g.NumEdges(), p),
		total, note,
		"REQUEST/SUCCEEDED/FAILED records ride in 17-byte units inside per-destination bundles (docs/PROTOCOL.md)"); err != nil {
		return err
	}

	total, note, err = runForStats(p, func(c *mpi.Comm) error {
		_, err := coloring.Parallel(c, shares[c.Rank()], coloring.ParallelOptions{
			Seed: o.Seed, CommMode: coloring.CommNeighbors, SuperstepSize: 100,
		})
		return err
	})
	if err != nil {
		return err
	}
	return emitTrafficTable(o,
		fmt.Sprintf("Per-tag-family traffic — coloring NEW variant, circuit graph (n=%d, m=%d, p=%d)", g.NumVertices(), g.NumEdges(), p),
		total, note,
		"color notices are 12-byte gid|color records, sent to affected neighbor ranks only (NEW)")
}

// runForStats runs body on a fresh in-process world and returns the summed
// per-family traffic plus the reconciliation note for the table footer.
func runForStats(p int, body func(*mpi.Comm) error) (mpi.Stats, string, error) {
	w, err := mpi.NewWorld(p, mpi.WithDeadline(10*time.Minute))
	if err != nil {
		return mpi.Stats{}, "", err
	}
	if err := w.Run(body); err != nil {
		return mpi.Stats{}, "", err
	}
	total := w.TotalStats()
	user := total.UserFamilyTotals()
	note := fmt.Sprintf("user families sum to the aggregate exactly: %d msgs / %d B sent == %d msgs / %d B",
		user.SentMsgs, user.SentBytes, total.SentMsgs, total.SentBytes)
	return total, note, nil
}

// emitTrafficTable renders one per-family breakdown table.
func emitTrafficTable(o Options, title string, total mpi.Stats, notes ...string) error {
	t := NewTable(title, "Tag family", "Sent msgs", "Sent bytes", "Recv msgs", "Recv bytes", "Byte share")
	for f := mpi.TagFamily(0); f < mpi.NumTagFamilies; f++ {
		fs := total.ByFamily[f]
		if fs == (mpi.FamilyStats{}) {
			continue
		}
		share := "-"
		if total.SentBytes > 0 && f != mpi.FamilyRuntime {
			share = fmt.Sprintf("%.1f%%", 100*float64(fs.SentBytes)/float64(total.SentBytes))
		}
		t.AddRow(f.String(), fs.SentMsgs, fs.SentBytes, fs.RecvMsgs, fs.RecvBytes, share)
	}
	t.AddRow("aggregate (user)", total.SentMsgs, total.SentBytes, total.RecvMsgs, total.RecvBytes, "100.0%")
	for _, n := range notes {
		t.AddComment("%s", n)
	}
	return o.emit(t)
}
