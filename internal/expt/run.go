package expt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Measurement is the outcome of one distributed run at one rank count.
type Measurement struct {
	P        int
	WallHost time.Duration // host wall clock (1-core laptop: reference only)
	Ranks    []perfmodel.Profile
	Epochs   int64 // outer iterations (matching) or rounds (coloring), max over ranks
	// VirtualSeconds is the LogP-style asynchronous simulation makespan
	// under Blue Gene/P coefficients (see mpi.VirtualTime): the virtual
	// clocks honor compute/communication overlap, unlike the
	// bulk-synchronous analytic model.
	VirtualSeconds float64

	// Algorithm-specific outputs.
	MatchWeight float64
	NumColors   int
	Conflicts   int64
}

// MaxRank returns the heaviest rank profile.
func (m *Measurement) MaxRank() perfmodel.Profile {
	var out perfmodel.Profile
	var worst float64
	bg := perfmodel.BlueGeneP()
	for _, p := range m.Ranks {
		if t := bg.Time(p); t >= worst {
			worst = t
			out = p
		}
	}
	return out
}

// structuralProfile seeds a rank profile with the share's structure. It is
// used only when no run happened (SynthesizeProfiles); measured runs read the
// actual operation counts the algorithms charged into the observability
// registry instead (measuredProfile).
func structuralProfile(d *dgraph.DistGraph) perfmodel.Profile {
	return perfmodel.Profile{
		VertexOps: int64(d.NLocal),
		EdgeOps:   d.Xadj[d.NLocal],
	}
}

// measuredProfile reads rank r's compute profile from the registry the world
// populated during the run: mpi.vertex_ops / mpi.edge_ops carry exactly what
// the algorithm charged via ChargeOps (init scans, recomputations, bundle
// processing), which is what the α–β–γ model should price — not the static
// share structure the old seeding approximated it with.
func measuredProfile(reg *obs.Registry, p, r int) perfmodel.Profile {
	return perfmodel.Profile{
		VertexOps: reg.Vec("mpi.vertex_ops", p).At(r).Load(),
		EdgeOps:   reg.Vec("mpi.edge_ops", p).At(r).Load(),
	}
}

// vtimeOf converts machine-model coefficients into runtime virtual-time
// coefficients.
func vtimeOf(m perfmodel.Machine) mpi.VirtualTime {
	return mpi.VirtualTime{
		Alpha:       m.Alpha,
		Beta:        m.Beta,
		GammaVertex: m.GammaVertex,
		GammaEdge:   m.GammaEdge,
		Sync:        m.Sync,
	}
}

// MeasureMatching runs the distributed matching over pre-built shares and
// collects profiles. shares[r] must be rank r's view of one common graph.
func MeasureMatching(shares []*dgraph.DistGraph, opt matching.ParallelOptions) (*Measurement, error) {
	p := len(shares)
	obsr := obs.NewObserver(p, -1) // metrics only: op counters for the profiles
	w, err := mpi.NewWorld(p, mpi.WithDeadline(10*time.Minute),
		mpi.WithVirtualTime(vtimeOf(perfmodel.BlueGeneP())),
		mpi.WithObserver(obsr))
	if err != nil {
		return nil, err
	}
	results := make([]*matching.ParallelResult, p)
	var mu sync.Mutex
	start := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		res, err := matching.Parallel(c, shares[c.Rank()], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := &Measurement{P: p, WallHost: time.Since(start), Ranks: make([]perfmodel.Profile, p)}
	m.VirtualSeconds = w.MaxVirtualTime()
	for r := 0; r < p; r++ {
		prof := measuredProfile(obsr.Registry(), p, r)
		st := w.RankStats(r)
		prof.Msgs = st.SentMsgs
		prof.Bytes = st.SentBytes
		prof.Epochs = results[r].OuterIterations
		m.Ranks[r] = prof
		if prof.Epochs > m.Epochs {
			m.Epochs = prof.Epochs
		}
		m.MatchWeight += results[r].LocalWeight
	}
	return m, nil
}

// MeasureColoring runs the distributed coloring over pre-built shares.
func MeasureColoring(shares []*dgraph.DistGraph, opt coloring.ParallelOptions) (*Measurement, error) {
	p := len(shares)
	obsr := obs.NewObserver(p, -1) // metrics only: op counters for the profiles
	w, err := mpi.NewWorld(p, mpi.WithDeadline(10*time.Minute),
		mpi.WithVirtualTime(vtimeOf(perfmodel.BlueGeneP())),
		mpi.WithObserver(obsr))
	if err != nil {
		return nil, err
	}
	results := make([]*coloring.ParallelResult, p)
	var mu sync.Mutex
	start := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		res, err := coloring.Parallel(c, shares[c.Rank()], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := &Measurement{P: p, WallHost: time.Since(start), Ranks: make([]perfmodel.Profile, p)}
	m.VirtualSeconds = w.MaxVirtualTime()
	for r := 0; r < p; r++ {
		prof := measuredProfile(obsr.Registry(), p, r)
		st := w.RankStats(r)
		prof.Msgs = st.SentMsgs
		prof.Bytes = st.SentBytes
		prof.Epochs = int64(results[r].Rounds)
		m.Ranks[r] = prof
		if prof.Epochs > m.Epochs {
			m.Epochs = prof.Epochs
		}
		m.Conflicts += results[r].Conflicts
	}
	m.NumColors = results[0].NumColors
	return m, nil
}

// CommScalars are the per-structure traffic densities extracted from a
// measured run, used to synthesize profiles at rank counts the host cannot
// run. See EXPERIMENTS.md ("model methodology").
type CommScalars struct {
	// BytesPerCrossArc is sent bytes per cross arc.
	BytesPerCrossArc float64
	// MsgsPerNeighborEpoch is sent messages per (neighbor rank × epoch).
	MsgsPerNeighborEpoch float64
	// Epochs is the measured epoch count.
	Epochs int64
}

// ExtractCommScalars derives CommScalars from a measured run over shares.
func ExtractCommScalars(shares []*dgraph.DistGraph, m *Measurement) CommScalars {
	var bytes, msgs, cross, nbrEpochs float64
	for r, d := range shares {
		bytes += float64(m.Ranks[r].Bytes)
		msgs += float64(m.Ranks[r].Msgs)
		cross += float64(d.CrossArcs)
		nbrEpochs += float64(len(d.NeighborRanks)) * float64(m.Epochs)
	}
	cs := CommScalars{Epochs: m.Epochs}
	if cross > 0 {
		cs.BytesPerCrossArc = bytes / cross
	}
	if nbrEpochs > 0 {
		cs.MsgsPerNeighborEpoch = msgs / nbrEpochs
	}
	return cs
}

// SynthesizeProfiles builds model-input rank profiles for a structure-only
// distribution (no algorithm run), applying measured traffic densities.
func SynthesizeProfiles(shares []*dgraph.DistGraph, cs CommScalars, epochs int64) []perfmodel.Profile {
	out := make([]perfmodel.Profile, len(shares))
	for r, d := range shares {
		p := structuralProfile(d)
		p.Bytes = int64(cs.BytesPerCrossArc * float64(d.CrossArcs))
		p.Msgs = int64(cs.MsgsPerNeighborEpoch * float64(len(d.NeighborRanks)) * float64(epochs))
		p.Epochs = epochs
		out[r] = p
	}
	return out
}

// FitLogTrend fits y = a + b·ln(p) over measured points by least squares and
// returns an evaluator clamped to be at least minY. It extrapolates slowly
// growing quantities such as matching outer-iteration counts.
func FitLogTrend(ps []int, ys []float64, minY float64) func(p int) float64 {
	n := float64(len(ps))
	if n == 0 {
		return func(int) float64 { return minY }
	}
	var sx, sy, sxx, sxy float64
	for i, p := range ps {
		x := math.Log(float64(p))
		sx += x
		sy += ys[i]
		sxx += x * x
		sxy += x * ys[i]
	}
	denom := n*sxx - sx*sx
	var a, b float64
	if denom == 0 {
		a, b = sy/n, 0
	} else {
		b = (n*sxy - sx*sy) / denom
		a = (sy - b*sx) / n
	}
	return func(p int) float64 {
		y := a + b*math.Log(float64(p))
		if y < minY {
			return minY
		}
		return y
	}
}

// checkPositive validates harness parameters.
func checkPositive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("expt: %s must be positive, got %d", name, v)
	}
	return nil
}
