package expt

import (
	"io"
	"os"
)

// Options configures the experiment harness. Zero values select defaults
// sized for a laptop-class host; Quick shrinks everything for tests.
type Options struct {
	// Out receives the rendered tables (default os.Stdout).
	Out io.Writer
	// CSV, when non-nil, additionally receives each table as CSV.
	CSV io.Writer
	// Seed drives every generator and randomized phase.
	Seed uint64

	// WeakSubgrid is the per-rank subgrid side for Fig 5.1 (paper: 250).
	WeakSubgrid int
	// WeakProcs are the measured rank counts for Fig 5.1 (perfect squares).
	WeakProcs []int
	// WeakModelProcs are model-extended rank counts (perfect squares; the
	// paper's axis reaches 16,384).
	WeakModelProcs []int

	// StrongGrid is the fixed grid side for Fig 5.2 (paper: 32,000).
	StrongGrid int
	// StrongProcs / StrongModelProcs mirror the weak-scaling split.
	StrongProcs      []int
	StrongModelProcs []int

	// CircuitSide sets the circuit generator's die side for Figs 5.3/5.4.
	CircuitSide int
	// CircuitProcs / CircuitModelProcs mirror the grid experiments (the
	// paper's circuit axes reach 4,096).
	CircuitProcs      []int
	CircuitModelProcs []int

	// Superstep is the coloring superstep size for Figs 5.1/5.2 (paper
	// regime: ~1000); Fig 5.4's poorly-partitioned regime uses Superstep100.
	Superstep int

	// Quick shrinks every instance for fast test runs.
	Quick bool
}

// withDefaults returns a copy of o with every unset field filled in.
func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Seed == 0 {
		o.Seed = 20110516 // IPDPS workshop date flavored default
	}
	def := func(v, d, q int) int {
		if v != 0 {
			return v
		}
		if o.Quick {
			return q
		}
		return d
	}
	o.WeakSubgrid = def(o.WeakSubgrid, 125, 24)
	o.StrongGrid = def(o.StrongGrid, 512, 60)
	o.CircuitSide = def(o.CircuitSide, 200, 40)
	o.Superstep = def(o.Superstep, 1000, 100)
	if o.WeakProcs == nil {
		if o.Quick {
			o.WeakProcs = []int{1, 4}
		} else {
			o.WeakProcs = []int{1, 4, 16, 64}
		}
	}
	if o.WeakModelProcs == nil {
		if o.Quick {
			o.WeakModelProcs = []int{16}
		} else {
			o.WeakModelProcs = []int{256, 1024, 4096, 16384}
		}
	}
	if o.StrongProcs == nil {
		if o.Quick {
			o.StrongProcs = []int{1, 4}
		} else {
			o.StrongProcs = []int{1, 2, 4, 8, 16, 32, 64}
		}
	}
	if o.StrongModelProcs == nil {
		if o.Quick {
			o.StrongModelProcs = []int{16}
		} else {
			o.StrongModelProcs = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384}
		}
	}
	if o.CircuitProcs == nil {
		if o.Quick {
			o.CircuitProcs = []int{2, 4}
		} else {
			o.CircuitProcs = []int{2, 4, 8, 16, 32, 64}
		}
	}
	if o.CircuitModelProcs == nil {
		if o.Quick {
			o.CircuitModelProcs = []int{16}
		} else {
			o.CircuitModelProcs = []int{128, 256, 512, 1024, 2048, 4096}
		}
	}
	return o
}

// emit renders a table to Out (and CSV when configured).
func (o Options) emit(t *Table) error {
	if err := t.Render(o.Out); err != nil {
		return err
	}
	if o.CSV != nil {
		return t.RenderCSV(o.CSV)
	}
	return nil
}
