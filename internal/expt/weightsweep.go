package expt

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

// SweepRow is one point of the Table 1.1 weight-distribution sweep.
type SweepRow struct {
	Instance string
	Scheme   string
	Quality  float64 // percent of optimum
}

// Table11WeightSweep extends Table 1.1 by sweeping the edge-weight
// distribution on fixed topologies. It tests the hypothesis EXPERIMENTS.md
// uses to explain the quality gap against the paper: the UF matrices' values
// span orders of magnitude, and greedy/locally-dominant choices agree with
// the optimum more often the wider the weight dynamic range. The sweep runs
// the same half-approximation against the exact optimum under narrow-uniform,
// tied-integer, and log-uniform (≈400× dynamic range) weights.
func Table11WeightSweep(o Options) ([]SweepRow, error) {
	o = o.withDefaults()
	side := 36
	nb := 1200
	if o.Quick {
		side, nb = 14, 200
	}
	type inst struct {
		name string
		base *graph.Graph
	}
	mesh, err := gen.Grid2D(side, side, false, o.Seed)
	if err != nil {
		return nil, err
	}
	circuit, err := gen.Circuit(side, side, 0.45, false, o.Seed)
	if err != nil {
		return nil, err
	}
	er, err := gen.ErdosRenyi(nb, int64(nb)*3, false, o.Seed)
	if err != nil {
		return nil, err
	}
	instances := []inst{
		{"mesh-5pt", mesh},
		{"circuit", circuit},
		{"erdos-renyi", er},
	}
	schemes := []struct {
		name   string
		scheme gen.WeightScheme
	}{
		{"uniform (1,2)", gen.WeightUniform},
		{"integer [1,1000] (ties)", gen.WeightInteger},
		{"log-uniform [1,403)", gen.WeightExponential},
	}
	t := NewTable("Table 1.1 sweep — matching quality vs weight dynamic range",
		"Instance", "Weights", "ApproxW", "OptW", "Quality")
	var rows []SweepRow
	for _, in := range instances {
		for _, sc := range schemes {
			g, err := gen.Reweight(in.base, sc.scheme, o.Seed+7)
			if err != nil {
				return nil, err
			}
			b, err := gen.BipartiteOf(g)
			if err != nil {
				return nil, err
			}
			approx := matching.LocallyDominant(b.Graph)
			exact, err := matching.ExactBipartite(b)
			if err != nil {
				return nil, err
			}
			aw, ew := approx.Weight(b.Graph), exact.Weight(b.Graph)
			q := 100.0
			if ew > 0 {
				q = 100 * aw / ew
			}
			if aw < ew/2-1e-9 {
				return nil, fmt.Errorf("expt: sweep %s/%s violates the 1/2 bound", in.name, sc.name)
			}
			rows = append(rows, SweepRow{Instance: in.name, Scheme: sc.name, Quality: q})
			t.AddRow(in.name, sc.name, fmt.Sprintf("%.1f", aw), fmt.Sprintf("%.1f", ew),
				fmt.Sprintf("%.2f%%", q))
		}
	}
	t.AddComment("hypothesis check: wider dynamic range -> quality approaches the paper's 99%%+")
	if err := o.emit(t); err != nil {
		return nil, err
	}
	return rows, nil
}
