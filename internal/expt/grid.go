package expt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/matching"
	"repro/internal/perfmodel"
)

// ScalingRow is one point of a scaling series (one processor count).
type ScalingRow struct {
	P        int
	Input    string
	Measured bool
	HostWall float64 // seconds on this host; 0 for model-only points
	Sim      float64 // asynchronous virtual-time simulation, seconds (measured points)
	Model    float64 // α–β–γ BG/P model prediction, seconds
	Ideal    float64 // ideal-scaling reference, seconds
	Epochs   float64 // outer iterations / rounds
	Extra    string  // algorithm-specific (weight / colors)
}

// gridShares builds every rank's share of a distributed grid.
func gridShares(spec dgraph.GridSpec) ([]*dgraph.DistGraph, error) {
	shares := make([]*dgraph.DistGraph, spec.P())
	for r := range shares {
		d, err := dgraph.BuildGrid(spec, r)
		if err != nil {
			return nil, err
		}
		shares[r] = d
	}
	return shares, nil
}

// squareFactor returns the processor-grid shape for p: square when p is a
// perfect square, else the most square factorization.
func squareFactor(p int) (pr, pc int) {
	s := int(math.Round(math.Sqrt(float64(p))))
	if s*s == p {
		return s, s
	}
	pr = s
	for pr > 1 && p%pr != 0 {
		pr--
	}
	if pr < 1 {
		pr = 1
	}
	return pr, p / pr
}

// gridModelProfiles synthesizes model rank profiles for a grid distribution
// from structural arithmetic plus measured communication densities.
func gridModelProfiles(spec dgraph.GridSpec, cs CommScalars, epochs int64) ([]perfmodel.Profile, error) {
	out := make([]perfmodel.Profile, spec.P())
	for r := range out {
		nLocal, arcs, cross, nbrs, err := spec.RankStructure(r)
		if err != nil {
			return nil, err
		}
		out[r] = perfmodel.Profile{
			VertexOps: int64(nLocal),
			EdgeOps:   arcs,
			Msgs:      int64(cs.MsgsPerNeighborEpoch * float64(nbrs) * float64(epochs)),
			Bytes:     int64(cs.BytesPerCrossArc * float64(cross)),
			Epochs:    epochs,
		}
	}
	return out, nil
}

// gridScaling runs one grid scaling study (weak or strong) for one algorithm.
type gridScaling struct {
	o    Options
	weak bool
}

// specFor returns the grid spec for rank count p.
func (gs *gridScaling) specFor(p int) (dgraph.GridSpec, error) {
	pr, pc := squareFactor(p)
	var k1, k2 int
	if gs.weak {
		k1, k2 = gs.o.WeakSubgrid*pr, gs.o.WeakSubgrid*pc
	} else {
		k1, k2 = gs.o.StrongGrid, gs.o.StrongGrid
	}
	spec := dgraph.GridSpec{K1: k1, K2: k2, PR: pr, PC: pc, Weighted: true, Seed: gs.o.Seed}
	return spec, spec.Validate()
}

// run executes the study for matching (isMatching) or coloring.
func (gs *gridScaling) run(isMatching bool) ([]ScalingRow, error) {
	o := gs.o
	var measuredProcs, modelProcs []int
	if gs.weak {
		measuredProcs, modelProcs = o.WeakProcs, o.WeakModelProcs
	} else {
		measuredProcs, modelProcs = o.StrongProcs, o.StrongModelProcs
	}
	// Measured runs.
	type point struct {
		p    int
		m    *Measurement
		cs   CommScalars
		spec dgraph.GridSpec
	}
	var pts []point
	for _, p := range measuredProcs {
		spec, err := gs.specFor(p)
		if err != nil {
			return nil, err
		}
		shares, err := gridShares(spec)
		if err != nil {
			return nil, err
		}
		var m *Measurement
		if isMatching {
			m, err = MeasureMatching(shares, matching.ParallelOptions{})
		} else {
			m, err = MeasureColoring(shares, coloring.ParallelOptions{
				Seed: o.Seed, SuperstepSize: o.Superstep,
			})
		}
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{p: p, m: m, cs: ExtractCommScalars(shares, m), spec: spec})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("expt: no measured points")
	}
	// Both estimators use the Blue Gene/P coefficients directly: the
	// analytic bulk-synchronous model here, and the virtual-time simulation
	// already embedded in the measured runs.
	machine := perfmodel.BlueGeneP()
	// Traffic densities and epoch trend from the largest measured point.
	last := pts[len(pts)-1]
	epochPs := make([]int, len(pts))
	epochYs := make([]float64, len(pts))
	for i, pt := range pts {
		epochPs[i] = pt.p
		epochYs[i] = float64(pt.m.Epochs)
	}
	epochFit := FitLogTrend(epochPs, epochYs, 1)

	allProcs := append(append([]int{}, measuredProcs...), modelProcs...)
	sort.Ints(allProcs)
	var rows []ScalingRow
	var ideal0 float64
	for _, p := range allProcs {
		spec, err := gs.specFor(p)
		if err != nil {
			return nil, err
		}
		epochs := int64(math.Round(epochFit(p)))
		var mp *point
		for i := range pts {
			if pts[i].p == p {
				mp = &pts[i]
			}
		}
		var profiles []perfmodel.Profile
		cs := last.cs
		if mp != nil {
			profiles = mp.m.Ranks // real counters for measured points
			epochs = mp.m.Epochs
		} else {
			profiles, err = gridModelProfiles(spec, cs, epochs)
			if err != nil {
				return nil, err
			}
		}
		modelT := machine.RunTime(profiles)
		row := ScalingRow{
			P:        p,
			Input:    fmt.Sprintf("%dx%d", spec.K1, spec.K2),
			Measured: mp != nil,
			Model:    modelT,
			Epochs:   float64(epochs),
		}
		if mp != nil {
			row.HostWall = mp.m.WallHost.Seconds()
			row.Sim = mp.m.VirtualSeconds
			if isMatching {
				row.Extra = fmt.Sprintf("W=%.1f", mp.m.MatchWeight)
			} else {
				row.Extra = fmt.Sprintf("colors=%d", mp.m.NumColors)
			}
		}
		if ideal0 == 0 {
			ideal0 = modelT
		}
		if gs.weak {
			row.Ideal = ideal0
		} else {
			row.Ideal = ideal0 * float64(allProcs[0]) / float64(p)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// renderScaling prints a scaling series as a table.
func renderScaling(o Options, title string, rows []ScalingRow, comments ...string) error {
	t := NewTable(title, "Procs", "Input", "Source", "Host wall", "Sim async", "Model (BG/P)", "Ideal", "Epochs", "Notes")
	for _, r := range rows {
		src := "model"
		host, sim := "-", "-"
		if r.Measured {
			src = "measured"
			host = formatSeconds(r.HostWall)
			sim = formatSeconds(r.Sim)
		}
		t.AddRow(r.P, r.Input, src, host, sim, formatSeconds(r.Model), formatSeconds(r.Ideal),
			fmt.Sprintf("%.0f", r.Epochs), r.Extra)
	}
	for _, c := range comments {
		t.AddComment("%s", c)
	}
	return o.emit(t)
}

// Fig51 reproduces the weak-scaling study on five-point grids (paper Fig.
// 5.1): per-rank subgrid fixed, rank count grows, ideal time is flat. It
// returns the matching (top) and coloring (bottom) series.
func Fig51(o Options) (matchRows, colorRows []ScalingRow, err error) {
	o = o.withDefaults()
	if err := checkPositive("WeakSubgrid", o.WeakSubgrid); err != nil {
		return nil, nil, err
	}
	gm := &gridScaling{o: o, weak: true}
	matchRows, err = gm.run(true)
	if err != nil {
		return nil, nil, fmt.Errorf("expt: fig 5.1 matching: %w", err)
	}
	if err := renderScaling(o, "Fig 5.1 (top) — weak scaling, matching, five-point grids", matchRows,
		"paper: 2.5e-2..6.5e-2 s, near-flat from 1,024 to 16,384 procs"); err != nil {
		return nil, nil, err
	}
	gc := &gridScaling{o: o, weak: true}
	colorRows, err = gc.run(false)
	if err != nil {
		return nil, nil, fmt.Errorf("expt: fig 5.1 coloring: %w", err)
	}
	if err := renderScaling(o, "Fig 5.1 (bottom) — weak scaling, coloring, five-point grids", colorRows,
		"paper: ~1e-4..1e-2 s, near-flat; coloring is cheaper than matching"); err != nil {
		return nil, nil, err
	}
	return matchRows, colorRows, nil
}

// Fig52 reproduces the strong-scaling study on a fixed five-point grid
// (paper Fig. 5.2: 32,000 x 32,000 on 512–16,384 procs, log–log near-ideal).
func Fig52(o Options) (matchRows, colorRows []ScalingRow, err error) {
	o = o.withDefaults()
	if err := checkPositive("StrongGrid", o.StrongGrid); err != nil {
		return nil, nil, err
	}
	gm := &gridScaling{o: o, weak: false}
	matchRows, err = gm.run(true)
	if err != nil {
		return nil, nil, fmt.Errorf("expt: fig 5.2 matching: %w", err)
	}
	if err := renderScaling(o, "Fig 5.2 (top) — strong scaling, matching, fixed grid", matchRows,
		"paper: near-ideal log-log slope from 512 to 16,384 procs",
		"matching weight must be identical at every measured P (Section 5.2)"); err != nil {
		return nil, nil, err
	}
	// The paper's invariance check: identical weight at every p.
	var w0 string
	for _, r := range matchRows {
		if !r.Measured {
			continue
		}
		if w0 == "" {
			w0 = r.Extra
		} else if r.Extra != w0 {
			return nil, nil, fmt.Errorf("expt: matching weight varies with P: %q vs %q", w0, r.Extra)
		}
	}
	gc := &gridScaling{o: o, weak: false}
	colorRows, err = gc.run(false)
	if err != nil {
		return nil, nil, fmt.Errorf("expt: fig 5.2 coloring: %w", err)
	}
	if err := renderScaling(o, "Fig 5.2 (bottom) — strong scaling, coloring, fixed grid", colorRows,
		"paper: near-ideal slope; absolute times below matching"); err != nil {
		return nil, nil, err
	}
	return matchRows, colorRows, nil
}
