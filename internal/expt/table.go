// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table 1.1, Table 5.1, Figures 5.1–5.4)
// from this repository's implementations. Each experiment runs the real
// distributed algorithm at host-measurable rank counts, records the per-rank
// work and traffic profiles, and evaluates the α–β–γ Blue Gene/P model on
// those profiles to extend the series to the paper's processor counts (the
// host is a laptop-class machine, not a 16,384-core BG/P; see DESIGN.md's
// substitution table). Output is aligned text plus optional CSV.
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	comment []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatSeconds(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddComment appends a footnote line printed under the table.
func (t *Table) AddComment(format string, args ...any) {
	t.comment = append(t.comment, fmt.Sprintf(format, args...))
}

// formatSeconds renders a duration in seconds with the paper's scientific
// flavor for small values.
func formatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.3g", s)
	case s < 1:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, c := range t.comment {
		fmt.Fprintf(&b, "# %s\n", c)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (comments become # lines).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ",") + "\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	for _, c := range t.comment {
		fmt.Fprintf(&b, "# %s\n", c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
