package expt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// Ablations runs the design-choice studies DESIGN.md §5 calls out and
// prints one table per knob, each measured on real distributed runs:
//
//  1. matching message bundling on/off,
//  2. coloring communication mode (NEW / FIAC / FIAB),
//  3. superstep size sweep,
//  4. conflict-resolution policy,
//  5. interior/boundary vertex order,
//  6. speculative framework vs Jones–Plassmann rounds.
func Ablations(o Options) error {
	o = o.withDefaults()
	side := o.CircuitSide
	g, err := gen.Circuit(side, side, 0.45, false, o.Seed)
	if err != nil {
		return err
	}
	p := 12
	if o.Quick {
		p = 4
	}
	part, err := partition.BFS(g, p, o.Seed)
	if err != nil {
		return err
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		return err
	}
	wg, err := gen.Grid2D(side, side, true, o.Seed)
	if err != nil {
		return err
	}
	pr, pc := partition.ProcessorGrid(p)
	gridPart, err := partition.Grid2D(side, side, pr, pc)
	if err != nil {
		return err
	}
	gridShares, err := dgraph.Distribute(wg, gridPart)
	if err != nil {
		return err
	}

	// 1. Message bundling.
	t := NewTable("Ablation — matching message bundling (Section 1's key optimization)",
		"Config", "Runtime msgs", "Bytes", "Records", "Weight")
	for _, tc := range []struct {
		name string
		opt  matching.ParallelOptions
	}{
		{"bundled (64 KiB)", matching.ParallelOptions{}},
		{"unbundled (1 record/msg)", matching.ParallelOptions{MaxBundleBytes: 17}},
	} {
		m, err := MeasureMatching(gridShares, tc.opt)
		if err != nil {
			return err
		}
		var msgs, bytes int64
		for _, r := range m.Ranks {
			msgs += r.Msgs
			bytes += r.Bytes
		}
		t.AddRow(tc.name, msgs, bytes, bytes/17, fmt.Sprintf("%.1f", m.MatchWeight))
	}
	t.AddComment("same matching weight; bundling collapses per-record messages into per-pair bundles")
	if err := o.emit(t); err != nil {
		return err
	}

	// 2. Communication modes.
	t = NewTable("Ablation — coloring communication mode (Section 4.2)",
		"Mode", "Runtime msgs", "Bytes", "Rounds", "Colors")
	for _, mode := range []coloring.CommMode{coloring.CommNeighbors, coloring.CommCustomizedAll, coloring.CommBroadcast} {
		m, err := MeasureColoring(shares, coloring.ParallelOptions{Seed: o.Seed, CommMode: mode, SuperstepSize: 100})
		if err != nil {
			return err
		}
		var msgs, bytes int64
		for _, r := range m.Ranks {
			msgs += r.Msgs
			bytes += r.Bytes
		}
		t.AddRow(mode.String(), msgs, bytes, m.Epochs, m.NumColors)
	}
	t.AddComment("NEW < FIAC in messages; FIAC < FIAB in volume — the paper's hierarchy")
	if err := o.emit(t); err != nil {
		return err
	}

	// 3. Superstep sweep.
	t = NewTable("Ablation — superstep size s (Section 4.1's tuning question)",
		"s", "Runtime msgs", "Conflicts", "Rounds", "Colors")
	for _, s := range []int{1, 10, 100, 1000, 10000} {
		m, err := MeasureColoring(shares, coloring.ParallelOptions{Seed: o.Seed, SuperstepSize: s})
		if err != nil {
			return err
		}
		var msgs int64
		for _, r := range m.Ranks {
			msgs += r.Msgs
		}
		t.AddRow(s, msgs, m.Conflicts, m.Epochs, m.NumColors)
	}
	t.AddComment("small s: fresh information, few conflicts, many messages; large s: the reverse")
	if err := o.emit(t); err != nil {
		return err
	}

	// 4. Conflict policy.
	t = NewTable("Ablation — conflict resolution policy (randomized vs deterministic)",
		"Policy", "Conflicts", "Rounds", "Colors", "Max per-rank re-colors")
	for _, cp := range []coloring.ConflictPolicy{coloring.ConflictRandom, coloring.ConflictMinID} {
		maxRe, m, err := measureConflictSkew(shares, coloring.ParallelOptions{Seed: o.Seed, Conflict: cp, SuperstepSize: 50})
		if err != nil {
			return err
		}
		t.AddRow(cp.String(), m.Conflicts, m.Epochs, m.NumColors, maxRe)
	}
	t.AddComment("random r(v) spreads re-coloring; min-id concentrates it on low-id-heavy ranks")
	if err := o.emit(t); err != nil {
		return err
	}

	// 5. Vertex order.
	t = NewTable("Ablation — interior/boundary coloring order",
		"Order", "Conflicts", "Rounds", "Colors")
	for _, vo := range []coloring.VertexOrder{coloring.BoundaryFirst, coloring.InteriorFirst, coloring.Interleaved} {
		m, err := MeasureColoring(shares, coloring.ParallelOptions{Seed: o.Seed, Order: vo})
		if err != nil {
			return err
		}
		t.AddRow(vo.String(), m.Conflicts, m.Epochs, m.NumColors)
	}
	if err := o.emit(t); err != nil {
		return err
	}

	// 6. Framework vs Jones–Plassmann.
	t = NewTable("Ablation — speculative framework vs Jones–Plassmann baseline",
		"Algorithm", "Rounds", "Colors", "Runtime msgs")
	spec, err := MeasureColoring(shares, coloring.ParallelOptions{Seed: o.Seed})
	if err != nil {
		return err
	}
	var specMsgs int64
	for _, r := range spec.Ranks {
		specMsgs += r.Msgs
	}
	t.AddRow("speculative (this paper)", spec.Epochs, spec.NumColors, specMsgs)
	jpRounds, jpColors, jpMsgs, err := measureJP(shares, o.Seed)
	if err != nil {
		return err
	}
	t.AddRow("Jones-Plassmann (MIS)", jpRounds, jpColors, jpMsgs)
	t.AddComment("the framework provably needs no more rounds than MIS coloring [Bozdag et al.]")
	return o.emit(t)
}

// measureConflictSkew runs the coloring and reports the maximum per-rank
// re-color count (the load-balance quantity the randomized policy improves).
func measureConflictSkew(shares []*dgraph.DistGraph, opt coloring.ParallelOptions) (int64, *Measurement, error) {
	p := len(shares)
	w, err := mpi.NewWorld(p, mpi.WithDeadline(10*time.Minute))
	if err != nil {
		return 0, nil, err
	}
	perRank := make([]int64, p)
	results := make([]*coloring.ParallelResult, p)
	var mu sync.Mutex
	start := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		res, err := coloring.Parallel(c, shares[c.Rank()], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		perRank[c.Rank()] = res.Conflicts
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	out := &Measurement{P: p, WallHost: time.Since(start)}
	var maxRe int64
	for r := 0; r < p; r++ {
		if perRank[r] > maxRe {
			maxRe = perRank[r]
		}
		out.Conflicts += results[r].Conflicts
		if int64(results[r].Rounds) > out.Epochs {
			out.Epochs = int64(results[r].Rounds)
		}
	}
	out.NumColors = results[0].NumColors
	return maxRe, out, nil
}

// measureJP runs the Jones–Plassmann baseline over the shares.
func measureJP(shares []*dgraph.DistGraph, seed uint64) (rounds int, colors int, msgs int64, err error) {
	p := len(shares)
	w, err := mpi.NewWorld(p, mpi.WithDeadline(10*time.Minute))
	if err != nil {
		return 0, 0, 0, err
	}
	results := make([]*coloring.ParallelResult, p)
	var mu sync.Mutex
	err = w.Run(func(c *mpi.Comm) error {
		res, err := coloring.JonesPlassmann(c, shares[c.Rank()], seed, 0)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	st := w.TotalStats()
	return results[0].Rounds, results[0].NumColors, st.SentMsgs, nil
}
