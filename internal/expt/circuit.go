package expt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/perfmodel"
)

// circuitScaling is the shared machinery of Figures 5.3 and 5.4: strong
// scaling on a circuit-simulation graph under a graph partitioner, where the
// partition quality (edge cut) — not the grid's perfect locality — governs
// communication.
type circuitScaling struct {
	o        Options
	g        *graph.Graph
	refine   bool // true: METIS-like (Fig 5.3); false: ParMETIS-like (Fig 5.4)
	cutAtMax float64
}

func (cs *circuitScaling) partitionFor(p int) (*partition.Partition, error) {
	if p == 1 {
		return partition.Block1D(cs.g, 1)
	}
	return partition.Multilevel(cs.g, p, partition.MultilevelOptions{
		Seed:     cs.o.Seed + uint64(p),
		NoRefine: !cs.refine,
	})
}

// run executes the study; isMatching selects the algorithm.
func (cs *circuitScaling) run(isMatching bool, measuredProcs, modelProcs []int) ([]ScalingRow, error) {
	o := cs.o
	type point struct {
		p      int
		m      *Measurement
		shares []*dgraph.DistGraph
		sc     CommScalars
		cut    float64
	}
	var pts []point
	for _, p := range measuredProcs {
		part, err := cs.partitionFor(p)
		if err != nil {
			return nil, err
		}
		shares, err := dgraph.Distribute(cs.g, part)
		if err != nil {
			return nil, err
		}
		var m *Measurement
		if isMatching {
			m, err = MeasureMatching(shares, matching.ParallelOptions{})
		} else {
			m, err = MeasureColoring(shares, coloring.ParallelOptions{
				Seed: o.Seed, SuperstepSize: o.Superstep,
			})
		}
		if err != nil {
			return nil, err
		}
		pm := partition.Measure(cs.g, part)
		pts = append(pts, point{p: p, m: m, shares: shares, sc: ExtractCommScalars(shares, m), cut: pm.CutFraction})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("expt: no measured circuit points")
	}
	machine := perfmodel.BlueGeneP()
	last := pts[len(pts)-1]
	cs.cutAtMax = last.cut
	epochPs := make([]int, len(pts))
	epochYs := make([]float64, len(pts))
	for i, pt := range pts {
		epochPs[i] = pt.p
		epochYs[i] = float64(pt.m.Epochs)
	}
	epochFit := FitLogTrend(epochPs, epochYs, 1)

	allProcs := append(append([]int{}, measuredProcs...), modelProcs...)
	sort.Ints(allProcs)
	var rows []ScalingRow
	var ideal0 float64
	var idealP0 int
	for _, p := range allProcs {
		var mp *point
		for i := range pts {
			if pts[i].p == p {
				mp = &pts[i]
			}
		}
		var profiles []perfmodel.Profile
		epochs := int64(math.Round(epochFit(p)))
		cut := 0.0
		if mp != nil {
			profiles = mp.m.Ranks
			epochs = mp.m.Epochs
			cut = mp.cut
		} else {
			// Structure-only partition + distribution at model scale; the
			// algorithm's traffic densities come from the largest measured
			// run, the structure (including the cut that grows with p) is
			// exact for this p.
			part, err := cs.partitionFor(p)
			if err != nil {
				return nil, err
			}
			shares, err := dgraph.Distribute(cs.g, part)
			if err != nil {
				return nil, err
			}
			profiles = SynthesizeProfiles(shares, last.sc, epochs)
			cut = partition.Measure(cs.g, part).CutFraction
		}
		modelT := machine.RunTime(profiles)
		row := ScalingRow{
			P:        p,
			Input:    fmt.Sprintf("cut %.1f%%", 100*cut),
			Measured: mp != nil,
			Model:    modelT,
			Epochs:   float64(epochs),
		}
		if mp != nil {
			row.HostWall = mp.m.WallHost.Seconds()
			row.Sim = mp.m.VirtualSeconds
			if isMatching {
				row.Extra = fmt.Sprintf("W=%.1f", mp.m.MatchWeight)
			} else {
				row.Extra = fmt.Sprintf("colors=%d", mp.m.NumColors)
			}
		}
		if ideal0 == 0 {
			ideal0, idealP0 = modelT, p
		}
		row.Ideal = ideal0 * float64(idealP0) / float64(p)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig53 reproduces the matching strong-scaling study on the bipartite
// circuit-simulation graph with a good (METIS-like) partition — the paper
// reports 6 % edge cut at 4,096 processors and impressive-but-sub-ideal
// scaling.
func Fig53(o Options) ([]ScalingRow, error) {
	o = o.withDefaults()
	b, err := gen.CircuitBipartite(o.CircuitSide, o.CircuitSide, 0.45, o.Seed)
	if err != nil {
		return nil, err
	}
	cs := &circuitScaling{o: o, g: b.Graph, refine: true}
	rows, err := cs.run(true, o.CircuitProcs, o.CircuitModelProcs)
	if err != nil {
		return nil, fmt.Errorf("expt: fig 5.3: %w", err)
	}
	if err := renderScaling(o,
		fmt.Sprintf("Fig 5.3 — strong scaling, matching, circuit bipartite graph (n=%d, m=%d)",
			b.NumVertices(), b.NumEdges()),
		rows,
		"paper: 3.2M vertices / 7.7M edges, METIS distribution, 6% cut at 4,096 procs",
		"scaling degrades where the cut term overtakes per-rank compute"); err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig54 reproduces the coloring strong-scaling study on the circuit
// adjacency graph with a poor (ParMETIS-like, unrefined) partition — the
// paper reports a 40 % edge cut at 4,096 processors and earlier, harder
// degradation than Fig 5.3.
func Fig54(o Options) ([]ScalingRow, error) {
	o = o.withDefaults()
	g, err := gen.Circuit(o.CircuitSide, o.CircuitSide, 0.45, false, o.Seed)
	if err != nil {
		return nil, err
	}
	// The poorly-partitioned regime favors small supersteps (Section 4.1:
	// "a superstep size close to a hundred").
	o.Superstep = 100
	cs := &circuitScaling{o: o, g: g, refine: false}
	rows, err := cs.run(false, o.CircuitProcs, o.CircuitModelProcs)
	if err != nil {
		return nil, fmt.Errorf("expt: fig 5.4: %w", err)
	}
	if err := renderScaling(o,
		fmt.Sprintf("Fig 5.4 — strong scaling, coloring, circuit adjacency graph (n=%d, m=%d, cut %.0f%% at max procs)",
			g.NumVertices(), g.NumEdges(), 100*cs.cutAtMax),
		rows,
		"paper: 1.5M vertices / 3M edges, ParMETIS distribution, 40% cut at 4,096 procs",
		"superstep size 100 (poorly-partitioned regime)"); err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAll regenerates every table and figure in order.
func RunAll(o Options) error {
	if _, err := Table11(o); err != nil {
		return err
	}
	if _, err := Table11WeightSweep(o); err != nil {
		return err
	}
	if err := Table51(o); err != nil {
		return err
	}
	if _, _, err := Fig51(o); err != nil {
		return err
	}
	if _, _, err := Fig52(o); err != nil {
		return err
	}
	if _, err := Fig53(o); err != nil {
		return err
	}
	if _, err := Fig54(o); err != nil {
		return err
	}
	if err := Ablations(o); err != nil {
		return err
	}
	return Traffic(o)
}
