package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func mustGrid(t *testing.T, k1, k2 int) *graph.Graph {
	t.Helper()
	g, err := gen.Grid2D(k1, k2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBlock1D(t *testing.T) {
	g := mustGrid(t, 10, 10)
	p, err := Block1D(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	m := Measure(g, p)
	if m.MaxPartSize != 25 || m.MinPartSize != 25 {
		t.Fatalf("block sizes [%d..%d], want 25", m.MinPartSize, m.MaxPartSize)
	}
	// Boundaries fall at ids 25, 50, 75. The seams at 25 and 75 split a row
	// mid-way (10 vertical + 1 horizontal cut edges each); the seam at 50
	// aligns with a row boundary (10 vertical). Total 32.
	if m.EdgeCut != 32 {
		t.Fatalf("edge cut = %d, want 32", m.EdgeCut)
	}
}

func TestRandomPartitionCoversParts(t *testing.T) {
	g := mustGrid(t, 20, 20)
	p, err := Random(g, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	m := Measure(g, p)
	if m.MinPartSize == 0 {
		t.Error("random partition left a part empty (unlikely at n=400, p=8)")
	}
	// Random placement cuts most edges.
	if m.CutFraction < 0.5 {
		t.Errorf("random cut fraction %.2f, expected > 0.5", m.CutFraction)
	}
}

func TestGrid2DPartitionPaperExample(t *testing.T) {
	// Shrunken version of the paper's example: 80x80 grid on a 4x4 processor
	// grid gives every processor a 20x20 subgrid.
	k := 80
	pr, pc := 4, 4
	g := mustGrid(t, k, k)
	p, err := Grid2D(k, k, pr, pc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	m := Measure(g, p)
	if m.MaxPartSize != 400 || m.MinPartSize != 400 {
		t.Fatalf("subgrid sizes [%d..%d], want 400", m.MinPartSize, m.MaxPartSize)
	}
	// Cut = 3 horizontal seams * 80 + 3 vertical seams * 80 = 480.
	if m.EdgeCut != 480 {
		t.Fatalf("edge cut = %d, want 480", m.EdgeCut)
	}
	// Boundary vertices: each 20x20 block has its perimeter facing a seam;
	// interior fraction should dominate.
	if m.BoundaryFrac > 0.25 {
		t.Errorf("boundary fraction %.2f too high for 2D blocks", m.BoundaryFrac)
	}
}

func TestGrid2DPartitionRejectsBadShapes(t *testing.T) {
	if _, err := Grid2D(4, 4, 5, 1); err == nil {
		t.Error("accepted pr > k1")
	}
	if _, err := Grid2D(0, 4, 1, 1); err == nil {
		t.Error("accepted zero grid")
	}
}

func TestProcessorGrid(t *testing.T) {
	for _, tc := range []struct{ p, pr, pc int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4}, {16, 4, 4}, {7, 1, 7}, {36, 6, 6},
	} {
		pr, pc := ProcessorGrid(tc.p)
		if pr*pc != tc.p {
			t.Errorf("ProcessorGrid(%d) = %dx%d does not multiply back", tc.p, pr, pc)
		}
		if pr != tc.pr || pc != tc.pc {
			t.Errorf("ProcessorGrid(%d) = %dx%d, want %dx%d", tc.p, pr, pc, tc.pr, tc.pc)
		}
	}
}

func TestBFSPartition(t *testing.T) {
	g := mustGrid(t, 30, 30)
	p, err := BFS(g, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	m := Measure(g, p)
	if m.Imbalance > 0.02 {
		t.Errorf("BFS imbalance %.3f, want near 0 (cap is ceil(n/p))", m.Imbalance)
	}
	// Region growing on a grid should beat random by a wide margin.
	r, _ := Random(g, 9, 5)
	rm := Measure(g, r)
	if m.EdgeCut >= rm.EdgeCut {
		t.Errorf("BFS cut %d not better than random cut %d", m.EdgeCut, rm.EdgeCut)
	}
}

func TestMultilevelQualityOnGrid(t *testing.T) {
	g := mustGrid(t, 40, 40)
	p, err := Multilevel(g, 8, MultilevelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	m := Measure(g, p)
	if m.Imbalance > 0.35 {
		t.Errorf("multilevel imbalance %.2f too high", m.Imbalance)
	}
	// A good 8-way cut of a 40x40 grid is a few hundred edges at most; random
	// would cut ~87%. Accept anything clearly in the structured regime.
	if m.CutFraction > 0.2 {
		t.Errorf("multilevel cut fraction %.2f, expected well under random", m.CutFraction)
	}
	if m.MinPartSize == 0 {
		t.Error("multilevel left an empty part")
	}
}

func TestMultilevelNoRefineIsWorse(t *testing.T) {
	g := mustGrid(t, 40, 40)
	refined, err := Multilevel(g, 8, MultilevelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rough, err := Multilevel(g, 8, MultilevelOptions{Seed: 7, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	mr := Measure(g, refined)
	mu := Measure(g, rough)
	if mu.EdgeCut < mr.EdgeCut {
		t.Errorf("unrefined cut %d beats refined cut %d", mu.EdgeCut, mr.EdgeCut)
	}
}

func TestMultilevelSmallAndEdgeCases(t *testing.T) {
	g := mustGrid(t, 3, 3)
	p, err := Multilevel(g, 3, MultilevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if _, err := Multilevel(g, 0, MultilevelOptions{}); err == nil {
		t.Error("accepted p=0")
	}
	if _, err := Multilevel(g, 100, MultilevelOptions{}); err == nil {
		t.Error("accepted p > n")
	}
	empty, _ := graph.BuildUndirected(0, nil, graph.DedupeFirst)
	if _, err := Multilevel(empty, 2, MultilevelOptions{}); err != nil {
		t.Errorf("empty graph: %v", err)
	}
}

func TestMultilevelP1(t *testing.T) {
	g := mustGrid(t, 10, 10)
	p, err := Multilevel(g, 1, MultilevelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(g, p)
	if m.EdgeCut != 0 || m.BoundaryVtx != 0 {
		t.Fatalf("p=1 has cut %d boundary %d", m.EdgeCut, m.BoundaryVtx)
	}
}

func TestMultilevelOnDisconnectedGraph(t *testing.T) {
	// Two disjoint grids.
	a, _ := gen.Grid2D(8, 8, true, 1)
	edges := a.Edges()
	off := graph.Vertex(a.NumVertices())
	for _, e := range a.Edges() {
		edges = append(edges, graph.Edge{U: e.U + off, V: e.V + off, W: e.W})
	}
	g, err := graph.BuildUndirected(2*int(off), edges, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Multilevel(g, 4, MultilevelOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m := Measure(g, p); m.MinPartSize == 0 {
		t.Error("empty part on disconnected graph")
	}
}

func TestMeasureOnKnownPartition(t *testing.T) {
	// Path 0-1-2-3, split {0,1} {2,3}: cut 1, boundary 2.
	g, err := graph.BuildUndirected(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	p := &Partition{P: 2, Part: []int32{0, 0, 1, 1}}
	m := Measure(g, p)
	if m.EdgeCut != 1 || m.BoundaryVtx != 2 || m.MaxPartSize != 2 || m.MinPartSize != 2 {
		t.Fatalf("metrics %+v", m)
	}
	if m.String() == "" {
		t.Error("empty Metrics.String")
	}
}

func TestPartVertices(t *testing.T) {
	p := &Partition{P: 3, Part: []int32{2, 0, 2, 1}}
	groups := PartVertices(p)
	if len(groups) != 3 || len(groups[0]) != 1 || len(groups[1]) != 1 || len(groups[2]) != 2 {
		t.Fatalf("groups %v", groups)
	}
	if groups[2][0] != 0 || groups[2][1] != 2 {
		t.Fatalf("group 2 = %v", groups[2])
	}
}

func TestValidateCatchesBadPartitions(t *testing.T) {
	g := mustGrid(t, 2, 2)
	bad := &Partition{P: 2, Part: []int32{0, 1, 2, 0}}
	if err := bad.Validate(g); err == nil {
		t.Error("accepted out-of-range part")
	}
	short := &Partition{P: 2, Part: []int32{0, 1}}
	if err := short.Validate(g); err == nil {
		t.Error("accepted short partition")
	}
}

// Property: every partitioner covers all vertices with in-range parts on
// arbitrary graphs.
func TestQuickPartitionersValid(t *testing.T) {
	f := func(nRaw, mRaw uint8, pRaw uint8, seed uint64) bool {
		n := int(nRaw)%60 + 4
		m := int64(mRaw) * 2
		p := int(pRaw)%4 + 1
		g, err := gen.ErdosRenyi(n, m, true, seed)
		if err != nil {
			return false
		}
		for _, mk := range []func() (*Partition, error){
			func() (*Partition, error) { return Block1D(g, p) },
			func() (*Partition, error) { return Random(g, p, seed) },
			func() (*Partition, error) { return BFS(g, p, seed) },
			func() (*Partition, error) { return Multilevel(g, p, MultilevelOptions{Seed: seed}) },
		} {
			part, err := mk()
			if err != nil || part.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
