package partition

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// MultilevelOptions tunes the multilevel k-way partitioner.
type MultilevelOptions struct {
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Zero selects max(32*p, 256).
	CoarsenTo int
	// RefinePasses is the number of greedy boundary-refinement sweeps per
	// uncoarsening level. Zero disables refinement entirely, which is how the
	// "ParMETIS-like" lower-quality regime of Fig. 5.4 is produced; the
	// METIS-like regime of Fig. 5.3 uses the default (set by Multilevel to 4
	// when the struct is zero-valued... see DefaultRefinePasses).
	RefinePasses int
	// NoRefine forces zero refinement passes even when RefinePasses is 0 and
	// the default would apply.
	NoRefine bool
	// Imbalance is the allowed load imbalance (default 0.05 = 5 %).
	Imbalance float64
	// Seed drives the randomized matching and seed selection.
	Seed uint64
}

// DefaultRefinePasses is the refinement effort used when
// MultilevelOptions.RefinePasses is zero and NoRefine is false.
const DefaultRefinePasses = 4

// Multilevel computes a k-way partition with the classic three-phase scheme
// (Karypis–Kumar, the paper's reference [13]): heavy-edge-matching
// coarsening, recursive-bisection initial partitioning of the coarsest
// graph, and greedy boundary refinement during uncoarsening. It is the
// repo's stand-in for METIS.
func Multilevel(g *graph.Graph, p int, opt MultilevelOptions) (*Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: non-positive part count %d", p)
	}
	n := g.NumVertices()
	if p > n && n > 0 {
		return nil, fmt.Errorf("partition: %d parts for %d vertices", p, n)
	}
	if n == 0 {
		return &Partition{P: p, Part: []int32{}}, nil
	}
	if opt.CoarsenTo == 0 {
		opt.CoarsenTo = 32 * p
		if opt.CoarsenTo < 256 {
			opt.CoarsenTo = 256
		}
	}
	if opt.Imbalance == 0 {
		opt.Imbalance = 0.05
	}
	passes := opt.RefinePasses
	if passes == 0 && !opt.NoRefine {
		passes = DefaultRefinePasses
	}
	if opt.NoRefine {
		passes = 0
	}

	// Build the level stack.
	lev := &level{g: g, vwgt: unitWeights(n)}
	var stack []*level
	rng := gen.NewRNG(opt.Seed)
	for lev.g.NumVertices() > opt.CoarsenTo {
		next := coarsen(lev, rng)
		if next == nil { // matching stalled; stop coarsening
			break
		}
		stack = append(stack, lev)
		lev = next
	}

	// Initial partition of the coarsest level by recursive bisection.
	part := make([]int32, lev.g.NumVertices())
	all := make([]graph.Vertex, lev.g.NumVertices())
	for i := range all {
		all[i] = graph.Vertex(i)
	}
	bisect(lev, all, 0, p, part, rng)
	refine(lev, part, p, passes, opt.Imbalance, rng)

	// Uncoarsen, projecting and refining at each level.
	for i := len(stack) - 1; i >= 0; i-- {
		fine := stack[i]
		finePart := make([]int32, fine.g.NumVertices())
		for v := range finePart {
			finePart[v] = part[fine.coarseOf[v]]
		}
		part = finePart
		refine(fine, part, p, passes, opt.Imbalance, rng)
		lev = fine
	}
	return &Partition{P: p, Part: part}, nil
}

// level is one rung of the multilevel stack. coarseOf maps this level's
// vertices to the next-coarser level's ids (nil at the coarsest level).
type level struct {
	g        *graph.Graph
	vwgt     []int64
	coarseOf []graph.Vertex
}

func unitWeights(n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// coarsen performs one round of heavy-edge matching and contracts the graph.
// It returns nil when the matching shrinks the graph by less than 10 %, the
// customary stall condition.
func coarsen(lev *level, rng *gen.RNG) *level {
	g := lev.g
	n := g.NumVertices()
	mate := make([]graph.Vertex, n)
	for i := range mate {
		mate[i] = graph.None
	}
	orderIdx := rng.Perm(n)
	matched := 0
	for _, vi := range orderIdx {
		v := graph.Vertex(vi)
		if mate[v] != graph.None {
			continue
		}
		adj := g.Neighbors(v)
		wts := g.Weights(v)
		var best graph.Vertex = graph.None
		bestW := -1.0
		for k, u := range adj {
			if mate[u] != graph.None {
				continue
			}
			w := 1.0
			if wts != nil {
				w = wts[k]
			}
			if w > bestW {
				bestW, best = w, u
			}
		}
		if best != graph.None {
			mate[v], mate[best] = best, v
			matched += 2
		}
	}
	coarseN := n - matched/2
	if coarseN > n*9/10 {
		return nil
	}
	coarseOf := make([]graph.Vertex, n)
	next := graph.Vertex(0)
	for v := 0; v < n; v++ {
		u := mate[v]
		switch {
		case u == graph.None:
			coarseOf[v] = next
			next++
		case graph.Vertex(v) < u:
			coarseOf[v] = next
			coarseOf[u] = next
			next++
		}
	}
	vwgt := make([]int64, coarseN)
	for v := 0; v < n; v++ {
		vwgt[coarseOf[v]] += lev.vwgt[v]
	}
	// Aggregate coarse edges, merging parallels by weight sum.
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		cv := coarseOf[v]
		adj := g.Neighbors(graph.Vertex(v))
		for k, u := range adj {
			cu := coarseOf[u]
			if cv >= cu { // each coarse pair once per fine arc orientation
				continue
			}
			edges = append(edges, graph.Edge{U: cv, V: cu, W: g.Weight(g.Xadj[v] + int64(k))})
		}
	}
	cg, err := graph.BuildUndirected(coarseN, edges, graph.DedupeSum)
	if err != nil {
		// Inputs are internally generated; failure indicates a programming
		// error, not bad user input.
		panic(fmt.Sprintf("partition: coarsen produced invalid graph: %v", err))
	}
	lev.coarseOf = coarseOf
	return &level{g: cg, vwgt: vwgt}
}

// bisect recursively splits the vertex set into p parts labeled
// [base, base+p), growing one side breadth-first until it holds its share of
// the total vertex weight.
func bisect(lev *level, verts []graph.Vertex, base, p int, part []int32, rng *gen.RNG) {
	if p == 1 {
		for _, v := range verts {
			part[v] = int32(base)
		}
		return
	}
	pl := p / 2
	pr := p - pl
	var total int64
	for _, v := range verts {
		total += lev.vwgt[v]
	}
	target := total * int64(pl) / int64(p)

	in := make(map[graph.Vertex]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	side := make(map[graph.Vertex]bool, len(verts)/2)
	var grown int64
	queue := make([]graph.Vertex, 0, len(verts)/2)
	// Grow from (pseudo-)peripheral seeds until the target weight is reached;
	// multiple seeds handle disconnected regions.
	for grown < target {
		var seed graph.Vertex = graph.None
		for try := 0; try < 16; try++ {
			c := verts[rng.Intn(len(verts))]
			if !side[c] {
				seed = c
				break
			}
		}
		if seed == graph.None {
			for _, v := range verts {
				if !side[v] {
					seed = v
					break
				}
			}
		}
		if seed == graph.None {
			break
		}
		queue = append(queue[:0], seed)
		side[seed] = true
		grown += lev.vwgt[seed]
		for len(queue) > 0 && grown < target {
			v := queue[0]
			queue = queue[1:]
			for _, u := range lev.g.Neighbors(v) {
				if in[u] && !side[u] && grown < target {
					side[u] = true
					grown += lev.vwgt[u]
					queue = append(queue, u)
				}
			}
		}
	}
	left := make([]graph.Vertex, 0, len(verts)/2)
	right := make([]graph.Vertex, 0, len(verts)/2)
	for _, v := range verts {
		if side[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Degenerate splits (all vertices on one side) are rebalanced bluntly.
	if len(left) == 0 || len(right) == 0 {
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		mid := len(verts) * pl / p
		left = append(left[:0], verts[:mid]...)
		right = append(right[:0], verts[mid:]...)
	}
	bisect(lev, left, base, pl, part, rng)
	bisect(lev, right, base+pl, pr, part, rng)
}

// refine performs greedy boundary-move passes: each boundary vertex moves to
// the neighboring part with the largest positive gain (external minus
// internal edge weight) provided the move keeps both parts within the load
// bound. This is the lightweight cousin of Kernighan–Lin/Fiduccia–Mattheyses
// refinement used at every level of the multilevel scheme.
func refine(lev *level, part []int32, p int, passes int, imbalance float64, rng *gen.RNG) {
	if passes <= 0 {
		return
	}
	g := lev.g
	n := g.NumVertices()
	load := make([]int64, p)
	var total int64
	for v := 0; v < n; v++ {
		load[part[v]] += lev.vwgt[v]
		total += lev.vwgt[v]
	}
	maxLoad := int64(float64(total)/float64(p)*(1+imbalance)) + 1
	ext := make(map[int32]float64, 8)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, vi := range rng.Perm(n) {
			v := graph.Vertex(vi)
			home := part[v]
			adj := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			clear(ext)
			internal := 0.0
			boundary := false
			wts := g.Weights(v)
			for k, u := range adj {
				w := 1.0
				if wts != nil {
					w = wts[k]
				}
				if part[u] == home {
					internal += w
				} else {
					ext[part[u]] += w
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			bestPart := home
			bestGain := 0.0
			for tp, w := range ext {
				gain := w - internal
				if gain > bestGain && load[tp]+lev.vwgt[v] <= maxLoad {
					bestGain, bestPart = gain, tp
				}
			}
			if bestPart != home {
				load[home] -= lev.vwgt[v]
				load[bestPart] += lev.vwgt[v]
				part[v] = bestPart
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
