package partition

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Block1D assigns contiguous id ranges of nearly equal size to the parts —
// the trivial distribution. On grid graphs with row-major ids it corresponds
// to striping the grid by rows.
func Block1D(g *graph.Graph, p int) (*Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: non-positive part count %d", p)
	}
	n := g.NumVertices()
	part := make([]int32, n)
	for v := 0; v < n; v++ {
		part[v] = int32(int64(v) * int64(p) / int64(n))
	}
	if n == 0 {
		part = []int32{}
	}
	return &Partition{P: p, Part: part}, nil
}

// Random assigns each vertex to a uniformly random part — the worst
// reasonable distribution (boundary fraction approaches 1), used to drive the
// poorly-partitioned regime in ablations.
func Random(g *graph.Graph, p int, seed uint64) (*Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: non-positive part count %d", p)
	}
	rng := gen.NewRNG(seed)
	part := make([]int32, g.NumVertices())
	for v := range part {
		part[v] = int32(rng.Intn(p))
	}
	return &Partition{P: p, Part: part}, nil
}

// Grid2D computes the paper's uniform two-dimensional distribution of a
// k1 × k2 grid graph over a pr × pc processor grid: processor (i, j) owns the
// subgrid block [i·k1/pr, (i+1)·k1/pr) × [j·k2/pc, (j+1)·k2/pc). The paper's
// example — an 8,000² grid on 1,024 processors (32 × 32) gives each processor
// a 250 × 250 subgrid — is exactly this map.
func Grid2D(k1, k2, pr, pc int) (*Partition, error) {
	if k1 <= 0 || k2 <= 0 || pr <= 0 || pc <= 0 {
		return nil, fmt.Errorf("partition: bad grid distribution %dx%d over %dx%d", k1, k2, pr, pc)
	}
	if pr > k1 || pc > k2 {
		return nil, fmt.Errorf("partition: processor grid %dx%d exceeds graph grid %dx%d", pr, pc, k1, k2)
	}
	part := make([]int32, k1*k2)
	for r := 0; r < k1; r++ {
		pi := int64(r) * int64(pr) / int64(k1)
		for c := 0; c < k2; c++ {
			pj := int64(c) * int64(pc) / int64(k2)
			part[r*k2+c] = int32(pi*int64(pc) + pj)
		}
	}
	return &Partition{P: pr * pc, Part: part}, nil
}

// ProcessorGrid factors p into the most square pr × pc shape with pr*pc == p.
func ProcessorGrid(p int) (pr, pc int) {
	pr = int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	if pr < 1 {
		pr = 1
	}
	return pr, p / pr
}

// BFS partitions by region growing: parts are grown breadth-first from
// spread-out seeds, each capped at ceil(n/p) vertices. Quality sits between
// Random and Multilevel — decent locality, no refinement.
func BFS(g *graph.Graph, p int, seed uint64) (*Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: non-positive part count %d", p)
	}
	n := g.NumVertices()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	cap_ := (n + p - 1) / p
	rng := gen.NewRNG(seed)
	queue := make([]graph.Vertex, 0, cap_)
	assigned := 0
	for k := 0; k < p && assigned < n; k++ {
		// Seed: a random unassigned vertex.
		var s graph.Vertex = graph.None
		for try := 0; try < 32; try++ {
			c := graph.Vertex(rng.Intn(n))
			if part[c] < 0 {
				s = c
				break
			}
		}
		if s == graph.None {
			for v := 0; v < n; v++ {
				if part[v] < 0 {
					s = graph.Vertex(v)
					break
				}
			}
		}
		size := 0
		queue = append(queue[:0], s)
		part[s] = int32(k)
		size++
		assigned++
		for len(queue) > 0 && size < cap_ {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if part[u] < 0 && size < cap_ {
					part[u] = int32(k)
					size++
					assigned++
					queue = append(queue, u)
				}
			}
		}
	}
	// Any leftovers (disconnected graphs, exhausted caps) go to the least
	// loaded parts.
	if assigned < n {
		sizes := make([]int, p)
		for _, pt := range part {
			if pt >= 0 {
				sizes[pt]++
			}
		}
		for v := 0; v < n; v++ {
			if part[v] >= 0 {
				continue
			}
			best := 0
			for k := 1; k < p; k++ {
				if sizes[k] < sizes[best] {
					best = k
				}
			}
			part[v] = int32(best)
			sizes[best]++
		}
	}
	return &Partition{P: p, Part: part}, nil
}
