package partition

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
)

func TestPartsRoundTrip(t *testing.T) {
	g, err := gen.Grid2D(10, 10, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BFS(g, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteParts(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != p.P || !reflect.DeepEqual(got.Part, p.Part) {
		t.Fatal("round trip changed partition")
	}
}

func TestReadPartsWithoutHeader(t *testing.T) {
	in := "0\n2\n1\n2\n"
	p, err := ReadParts(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 3 || len(p.Part) != 4 {
		t.Fatalf("P=%d len=%d", p.P, len(p.Part))
	}
}

func TestReadPartsHeaderAllowsEmptyParts(t *testing.T) {
	// A declared P larger than max(id)+1 is valid (empty parts allowed).
	in := "p 8\n0\n1\n"
	p, err := ReadParts(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 8 {
		t.Fatalf("P = %d, want 8", p.P)
	}
}

func TestReadPartsErrors(t *testing.T) {
	for name, in := range map[string]string{
		"negative id":       "-1\n",
		"garbage":           "zero\n",
		"bad header":        "p x\n",
		"id exceeds header": "p 2\n5\n",
		"zero header":       "p 0\n",
	} {
		if _, err := ReadParts(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPartsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "parts.txt")
	p := &Partition{P: 3, Part: []int32{0, 2, 1, 1}}
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != 3 || !reflect.DeepEqual(got.Part, p.Part) {
		t.Fatal("file round trip changed partition")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("read of missing file succeeded")
	}
}
