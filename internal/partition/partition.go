// Package partition assigns graph vertices to processors. It supplies the
// initial data distributions the paper assumes ("the input graph is assumed
// to be partitioned and distributed among the available processors in some
// reasonable way"): the uniform two-dimensional grid distribution of the
// weak/strong scaling experiments, and graph partitioners standing in for
// METIS (multilevel with refinement, low cut — Fig. 5.3) and for ParMETIS's
// lower quality at high processor counts (refinement off / randomized — the
// 40 % cut regime of Fig. 5.4).
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Partition maps each vertex to a part (processor) in [0, P).
type Partition struct {
	P    int
	Part []int32 // len = NumVertices
}

// Validate checks that every vertex has an in-range part.
func (p *Partition) Validate(g *graph.Graph) error {
	if p.P <= 0 {
		return fmt.Errorf("partition: non-positive part count %d", p.P)
	}
	if len(p.Part) != g.NumVertices() {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(p.Part), g.NumVertices())
	}
	for v, part := range p.Part {
		if part < 0 || int(part) >= p.P {
			return fmt.Errorf("partition: vertex %d assigned to part %d of %d", v, part, p.P)
		}
	}
	return nil
}

// Metrics quantify partition quality.
type Metrics struct {
	P            int
	EdgeCut      int64   // number of cross edges
	CutFraction  float64 // EdgeCut / NumEdges
	MaxPartSize  int
	MinPartSize  int
	Imbalance    float64 // MaxPartSize / ideal - 1
	BoundaryVtx  int64   // vertices with at least one cross edge
	BoundaryFrac float64 // BoundaryVtx / NumVertices
}

// Measure computes Metrics for p on g.
func Measure(g *graph.Graph, p *Partition) Metrics {
	m := Metrics{P: p.P, MinPartSize: g.NumVertices()}
	sizes := make([]int, p.P)
	for _, part := range p.Part {
		sizes[part]++
	}
	for _, s := range sizes {
		if s > m.MaxPartSize {
			m.MaxPartSize = s
		}
		if s < m.MinPartSize {
			m.MinPartSize = s
		}
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		boundary := false
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if p.Part[u] != p.Part[v] {
				boundary = true
				if graph.Vertex(v) < u {
					m.EdgeCut++
				}
			}
		}
		if boundary {
			m.BoundaryVtx++
		}
	}
	if g.NumEdges() > 0 {
		m.CutFraction = float64(m.EdgeCut) / float64(g.NumEdges())
	}
	if n > 0 {
		m.BoundaryFrac = float64(m.BoundaryVtx) / float64(n)
		ideal := float64(n) / float64(p.P)
		if ideal > 0 {
			m.Imbalance = float64(m.MaxPartSize)/ideal - 1
		}
	}
	return m
}

func (m Metrics) String() string {
	return fmt.Sprintf("P=%d cut=%d (%.1f%%) sizes[%d..%d] imbalance=%.2f%% boundary=%.1f%%",
		m.P, m.EdgeCut, 100*m.CutFraction, m.MinPartSize, m.MaxPartSize,
		100*m.Imbalance, 100*m.BoundaryFrac)
}

// PartVertices groups vertex ids by part.
func PartVertices(p *Partition) [][]graph.Vertex {
	out := make([][]graph.Vertex, p.P)
	for v, part := range p.Part {
		out[part] = append(out[part], graph.Vertex(v))
	}
	return out
}
