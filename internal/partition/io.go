package partition

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteParts writes a partition in the conventional one-part-id-per-line
// format (the same layout METIS emits), preceded by a "p <P>" header line.
func WriteParts(w io.Writer, p *Partition) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "p %d\n", p.P); err != nil {
		return err
	}
	for _, part := range p.Part {
		if _, err := fmt.Fprintln(bw, part); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParts parses the format written by WriteParts. Files without the
// "p <P>" header are accepted for METIS compatibility; P is then inferred as
// max(part)+1.
func ReadParts(r io.Reader) (*Partition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := &Partition{}
	declared := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "p ") {
			v, err := strconv.Atoi(strings.TrimSpace(line[2:]))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("partition: line %d: bad part count %q", lineNo, line)
			}
			declared = v
			continue
		}
		v, err := strconv.ParseInt(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: %v", lineNo, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("partition: line %d: negative part %d", lineNo, v)
		}
		out.Part = append(out.Part, int32(v))
		if int(v)+1 > out.P {
			out.P = int(v) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared >= 0 {
		if out.P > declared {
			return nil, fmt.Errorf("partition: header declares %d parts but id %d appears", declared, out.P-1)
		}
		out.P = declared
	}
	if out.P == 0 {
		out.P = 1
	}
	return out, nil
}

// WriteFile writes a partition to path.
func WriteFile(path string, p *Partition) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteParts(f, p); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a partition from path.
func ReadFile(path string) (*Partition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadParts(f)
}
