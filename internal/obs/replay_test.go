package obs

import (
	"testing"

	"repro/internal/perfmodel"
)

// TestReplayFromTrace: a recorded trace converts into per-rank replay input —
// phase durations from the spans, whole-run profiles from the metrics
// sidecar, detail and driver spans excluded.
func TestReplayFromTrace(t *testing.T) {
	tf := &TraceFile{
		Events: []TraceEvent{
			{Name: "process_name", Ph: "M", PID: 0},                       // metadata: ignored
			{Name: "driver.partition", Ph: "X", PID: DriverPID, Dur: 5e6}, // driver: excluded
			{Name: "match.rounds", Ph: "X", PID: 0, Dur: 2e6, Args: map[string]any{"msgs": int64(10), "bytes": int64(100)}},
			{Name: "match.rounds", Ph: "X", PID: 0, Dur: 1e6},               // same phase: sums
			{Name: "match.inner", Ph: "X", Cat: "detail", PID: 0, Dur: 9e6}, // detail: excluded
			{Name: "match.rounds", Ph: "X", PID: 1, Dur: 4e6},
		},
		Metrics: &MetricsSnapshot{PerRank: map[string][]int64{
			"mpi.vertex_ops":     {100, 200},
			"mpi.edge_ops":       {50, 60},
			"mpi.sent_msgs":      {10, 0},
			"mpi.sent_bytes":     {100, 0},
			"mpi.barrier_epochs": {7, 7},
		}},
	}
	ranks, err := ReplayFromTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 2 || ranks[0].Rank != 0 || ranks[1].Rank != 1 {
		t.Fatalf("got ranks %+v, want 0 and 1", ranks)
	}
	r0 := ranks[0]
	if len(r0.Phases) != 1 || r0.Phases[0].Name != "match.rounds" {
		t.Fatalf("rank 0 phases: %+v (detail and driver spans must be excluded)", r0.Phases)
	}
	if got := r0.Phases[0]; got.Seconds != 3.0 || got.Msgs != 10 || got.Bytes != 100 {
		t.Errorf("rank 0 phase aggregate: %+v, want 3s/10msgs/100bytes", got)
	}
	if r0.Total.VertexOps != 100 || r0.Total.EdgeOps != 50 || r0.Total.Msgs != 10 ||
		r0.Total.Bytes != 100 || r0.Total.Epochs != 7 {
		t.Errorf("rank 0 profile: %+v", r0.Total)
	}
	if ranks[1].Phases[0].Seconds != 4.0 || ranks[1].Total.VertexOps != 200 {
		t.Errorf("rank 1: %+v", ranks[1])
	}
}

// TestReplayFromTraceNoSpans: a metrics-only trace cannot replay.
func TestReplayFromTraceNoSpans(t *testing.T) {
	tf := &TraceFile{Metrics: (*Registry)(nil).Snapshot()}
	if _, err := ReplayFromTrace(tf); err == nil {
		t.Error("replay of a span-less trace must error")
	}
}

// TestReplayFromTraceNoMetrics: a trace without the sidecar still converts —
// zero profiles, phases intact.
func TestReplayFromTraceNoMetrics(t *testing.T) {
	tf := &TraceFile{Events: []TraceEvent{
		{Name: "p", Ph: "X", PID: 0, Dur: 1e6},
	}}
	ranks, err := ReplayFromTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 1 || ranks[0].Total != (perfmodel.Profile{}) {
		t.Fatalf("got %+v, want one rank with a zero profile", ranks)
	}
}
