package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestMergeDisjointKeys: merging snapshots with no keys in common keeps both
// sides intact — including into a JSON-decoded snapshot whose empty sections
// are nil maps (omitempty).
func TestMergeDisjointKeys(t *testing.T) {
	a := NewRegistry()
	a.Counter("only.a").Add(1)
	b := NewRegistry()
	b.Counter("only.b").Add(2)
	b.Gauge("g.b").Set(4)
	b.Vec("v.b", 2).At(1).Add(8)
	b.Histogram("h.b", []int64{10}).Observe(3)

	// Round-trip a through JSON so its empty sections decode to nil maps.
	data, err := json.Marshal(&MetricsSnapshot{Counters: a.Snapshot().Counters})
	if err != nil {
		t.Fatal(err)
	}
	var s MetricsSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Gauges != nil || s.PerRank != nil || s.Histograms != nil {
		t.Fatal("test setup: decoded snapshot should have nil empty sections")
	}
	s.Merge(b.Snapshot()) // must not panic on the nil maps
	if s.Counters["only.a"] != 1 || s.Counters["only.b"] != 2 {
		t.Errorf("disjoint counters lost: %v", s.Counters)
	}
	if s.Gauges["g.b"] != 4 || s.PerRank["v.b"][1] != 8 || s.Histograms["h.b"].Count != 1 {
		t.Errorf("sections not initialized on demand: %+v", s)
	}
}

// TestMergeMismatchedHistogramBounds: merging histograms whose bounds differ
// keeps the receiver's shape and folds what overlaps — counts and sums stay
// conserved in total even though buckets past the shorter shape are clipped.
func TestMergeMismatchedHistogramBounds(t *testing.T) {
	a := NewRegistry()
	ha := a.Histogram("h", []int64{10, 100}) // 3 buckets
	ha.Observe(5)
	b := NewRegistry()
	hb := b.Histogram("h", []int64{10, 100, 1000, 10000}) // 5 buckets
	hb.Observe(5)
	hb.Observe(5000)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	h := s.Histograms["h"]
	if !reflect.DeepEqual(h.Bounds, []int64{10, 100}) {
		t.Errorf("merge changed the receiver's bounds: %v", h.Bounds)
	}
	if h.Count != 3 || h.Sum != 5010 {
		t.Errorf("count/sum not conserved: count=%d sum=%d, want 3/5010", h.Count, h.Sum)
	}
	if h.Counts[0] != 2 { // both 5s land in <=10
		t.Errorf("overlapping bucket: %v, want Counts[0]=2", h.Counts)
	}
	// The reverse direction adopts the longer shape wholesale (first writer
	// wins on a missing key).
	s2 := b.Snapshot()
	s2.Merge(a.Snapshot())
	if h2 := s2.Histograms["h"]; len(h2.Counts) != 5 || h2.Count != 3 {
		t.Errorf("reverse merge: %+v", h2)
	}
}

// TestHistogramBoundaryValues: values exactly on an ExpBounds boundary land
// in that bound's bucket (upper bounds are inclusive).
func TestHistogramBoundaryValues(t *testing.T) {
	reg := NewRegistry()
	bounds := ExpBounds(2, 16) // 2,4,8,16
	h := reg.Histogram("h", bounds)
	for _, v := range bounds {
		h.Observe(v)
	}
	h.Observe(17) // just past the last bound: overflow
	s := reg.Snapshot().Histograms["h"]
	for i := range bounds {
		if s.Counts[i] != 1 {
			t.Errorf("bucket <=%d: count %d, want 1 (boundary value is inclusive)", bounds[i], s.Counts[i])
		}
	}
	if s.Counts[len(bounds)] != 1 {
		t.Errorf("overflow bucket: %d, want 1", s.Counts[len(bounds)])
	}
}

// TestMergeCounterProperties: snapshot merge on counters is associative and
// commutative — shard merge order can never change a result. Randomized
// property check over small key alphabets to force collisions.
func TestMergeCounterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := []string{"a", "b", "c", "d"}
	randomSnap := func() *MetricsSnapshot {
		s := (*Registry)(nil).Snapshot()
		for _, k := range keys {
			if rng.Intn(2) == 0 {
				s.Counters[k] = int64(rng.Intn(1000))
			}
		}
		return s
	}
	clone := func(s *MetricsSnapshot) *MetricsSnapshot {
		out := (*Registry)(nil).Snapshot()
		out.Merge(s)
		return out
	}
	for trial := 0; trial < 200; trial++ {
		x, y, z := randomSnap(), randomSnap(), randomSnap()
		// Commutative: x+y == y+x.
		xy, yx := clone(x), clone(y)
		xy.Merge(y)
		yx.Merge(x)
		if !reflect.DeepEqual(xy.Counters, yx.Counters) {
			t.Fatalf("trial %d: merge not commutative: %v vs %v", trial, xy.Counters, yx.Counters)
		}
		// Associative: (x+y)+z == x+(y+z).
		left := clone(x)
		left.Merge(y)
		left.Merge(z)
		yz := clone(y)
		yz.Merge(z)
		right := clone(x)
		right.Merge(yz)
		if !reflect.DeepEqual(left.Counters, right.Counters) {
			t.Fatalf("trial %d: merge not associative: %v vs %v", trial, left.Counters, right.Counters)
		}
	}
}

// TestCanonicalJSONStable: repeated renderings are byte-identical, decode to
// the same snapshot, and omit empty sections like the struct's omitempty.
func TestCanonicalJSONStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(1)
	reg.Counter("a.first").Add(2)
	reg.Gauge("m.mid").Set(3)
	reg.Vec("v", 2).At(0).Add(4)
	reg.Histogram("h", []int64{8}).Observe(5)
	s := reg.Snapshot()

	first := s.CanonicalJSON()
	for i := 0; i < 50; i++ {
		if got := s.CanonicalJSON(); !bytes.Equal(got, first) {
			t.Fatalf("rendering %d differs:\n%s\n%s", i, got, first)
		}
	}
	var decoded MetricsSnapshot
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("canonical JSON does not decode: %v", err)
	}
	if !reflect.DeepEqual(decoded.Counters, s.Counters) || !reflect.DeepEqual(decoded.Histograms, s.Histograms) {
		t.Errorf("canonical JSON round-trip drifted: %+v vs %+v", decoded, s)
	}
	// Key order inside a section is sorted.
	if ia, iz := bytes.Index(first, []byte(`"a.first"`)), bytes.Index(first, []byte(`"z.last"`)); ia < 0 || iz < 0 || ia > iz {
		t.Errorf("counters not in sorted order: %s", first)
	}
	// Empty snapshot renders as bare braces (all sections omitted).
	if got := (*Registry)(nil).Snapshot().CanonicalJSON(); string(got) != "{}" {
		t.Errorf("empty snapshot: %s, want {}", got)
	}
	// Indented form also stable and valid.
	if a, b := s.CanonicalJSONIndent(), s.CanonicalJSONIndent(); !bytes.Equal(a, b) {
		t.Error("CanonicalJSONIndent not stable")
	}
}
