package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Trace export. Two formats:
//
//   - Chrome trace_event JSON (the "JSON object format": {"traceEvents":
//     [...]}), loadable in chrome://tracing and Perfetto. Each rank becomes a
//     process (pid = rank) so the per-rank timelines stack vertically;
//     driver-side spans live under pid = DriverPID. The registry snapshot
//     rides along under the top-level "dmgmMetrics" key, which trace viewers
//     ignore but dmgm-trace consumes.
//   - JSONL: one Span per line, for ad-hoc jq/awk processing.
//
// A multi-process (-launch) job writes one shard per worker; shards are the
// same TraceFile shape and merge by event concatenation + metrics summation
// (see MergeShards). Wall-clock timestamps keep shards aligned.

// DriverPID is the Chrome-trace pid under which driver spans are filed.
const DriverPID = 1 << 20

// TraceEvent is one Chrome trace_event entry.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ArgInt reads a numeric event argument, tolerating the float64 that JSON
// round-trips produce.
func (e TraceEvent) ArgInt(key string) int64 {
	switch v := e.Args[key].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

// TraceFile is the on-disk trace shape (Chrome JSON object format plus the
// metrics sidecar).
type TraceFile struct {
	Events  []TraceEvent     `json:"traceEvents"`
	Metrics *MetricsSnapshot `json:"dmgmMetrics,omitempty"`
}

// eventOf converts a span; driver spans file under DriverPID with the
// process-local tid so merged launch shards stay distinguishable.
func eventOf(s Span, driverTID int) TraceEvent {
	e := TraceEvent{
		Name: s.Name,
		Cat:  "phase",
		Ph:   "X",
		TS:   float64(s.Start) / 1e3,
		Dur:  float64(s.Dur) / 1e3,
		PID:  s.Rank,
		TID:  0,
	}
	if s.Detail {
		e.Cat = "detail"
	}
	if s.Rank == DriverRank {
		e.PID = DriverPID
		e.TID = driverTID
	}
	if s.N != 0 || s.Msgs != 0 || s.Bytes != 0 {
		e.Args = map[string]any{"n": s.N, "msgs": s.Msgs, "bytes": s.Bytes}
	}
	return e
}

// CollectEvents flattens the observer's spans for the given ranks (plus the
// driver tracer) into Chrome events. driverTID distinguishes driver spans of
// different worker processes after a shard merge; pass 0 for single-process
// runs.
func (o *Observer) CollectEvents(ranks []int, driverTID int) []TraceEvent {
	if o == nil {
		return nil
	}
	var events []TraceEvent
	for _, r := range ranks {
		t := o.Tracer(r)
		spans := t.Spans()
		for _, s := range spans {
			events = append(events, eventOf(s, driverTID))
		}
		if dropped := t.Recorded() - uint64(len(spans)); dropped > 0 {
			events = append(events, TraceEvent{
				Name: "obs.spans_dropped", Ph: "C", TS: 0, PID: r, TID: 0,
				Args: map[string]any{"dropped": int64(dropped)},
			})
		}
	}
	for _, s := range o.Driver().Spans() {
		events = append(events, eventOf(s, driverTID))
	}
	// Name the per-rank processes so viewers label the timeline rows.
	seen := map[int]bool{}
	var meta []TraceEvent
	for _, e := range events {
		if !seen[e.PID] {
			seen[e.PID] = true
			name := fmt.Sprintf("rank %d", e.PID)
			if e.PID == DriverPID {
				name = "driver"
			}
			meta = append(meta,
				TraceEvent{Name: "process_name", Ph: "M", PID: e.PID, TID: e.TID,
					Args: map[string]any{"name": name}},
				TraceEvent{Name: "process_sort_index", Ph: "M", PID: e.PID, TID: e.TID,
					Args: map[string]any{"sort_index": int64(e.PID)}})
		}
	}
	return append(meta, events...)
}

// WriteChrome writes the Chrome-trace JSON for the given ranks, embedding
// the registry snapshot.
func (o *Observer) WriteChrome(w io.Writer, ranks []int, driverTID int) error {
	tf := TraceFile{Events: o.CollectEvents(ranks, driverTID)}
	if tf.Events == nil {
		tf.Events = []TraceEvent{} // a loadable file even when empty
	}
	if o != nil {
		tf.Metrics = o.Registry().Snapshot()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}

// WriteJSONL writes one span per line for the given ranks plus the driver.
func (o *Observer) WriteJSONL(w io.Writer, ranks []int) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range ranks {
		for _, s := range o.Tracer(r).Spans() {
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
	}
	for _, s := range o.Driver().Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes the trace for the given ranks to path, choosing
// JSONL when the path ends in ".jsonl" and Chrome JSON otherwise.
func (o *Observer) WriteTraceFile(path string, ranks []int, driverTID int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return o.WriteJSONL(f, ranks)
	}
	return o.WriteChrome(f, ranks, driverTID)
}

// WriteMetricsFile writes the registry snapshot as standalone JSON, keys in
// canonical (sorted) order so repeated exports diff cleanly.
func (o *Observer) WriteMetricsFile(path string) error {
	return os.WriteFile(path, o.Registry().Snapshot().CanonicalJSONIndent(), 0o644)
}

// ReadTraceFile loads a trace written by WriteTraceFile or a shard merge; it
// accepts the Chrome object format, a bare event array, and JSONL spans.
func ReadTraceFile(path string) (*TraceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	switch {
	case strings.HasPrefix(trimmed, "{"):
		// Both the Chrome object format and JSONL span lines start with '{';
		// only the former has a "traceEvents" key in its first object.
		var probe struct {
			Events *json.RawMessage `json:"traceEvents"`
		}
		dec := json.NewDecoder(strings.NewReader(trimmed))
		if err := dec.Decode(&probe); err != nil {
			return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
		}
		if probe.Events == nil {
			return readSpanLines(path, trimmed) // JSONL spans
		}
		var tf TraceFile
		if err := json.Unmarshal(data, &tf); err != nil {
			return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
		}
		return &tf, nil
	case strings.HasPrefix(trimmed, "["):
		var events []TraceEvent
		if err := json.Unmarshal(data, &events); err != nil {
			return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
		}
		return &TraceFile{Events: events}, nil
	default:
		return readSpanLines(path, trimmed)
	}
}

// readSpanLines parses a JSONL stream of Span objects.
func readSpanLines(path, data string) (*TraceFile, error) {
	tf := &TraceFile{}
	dec := json.NewDecoder(strings.NewReader(data))
	for dec.More() {
		var s Span
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
		}
		tf.Events = append(tf.Events, eventOf(s, 0))
	}
	return tf, nil
}

// ShardPath names the per-worker trace/metrics shard for one rank.
func ShardPath(path string, rank int) string {
	return fmt.Sprintf("%s.rank%d", path, rank)
}

// MergeShards combines the per-worker shards path.rank0..path.rank(p-1)
// into path: trace events concatenate, metrics snapshots merge. Missing
// shards (a worker that died before writing) are skipped with an error
// return listing them; the merged file is still written from what exists.
func MergeShards(path string, p int) error {
	merged := TraceFile{Events: []TraceEvent{}, Metrics: (*Registry)(nil).Snapshot()}
	var missing []int
	for r := 0; r < p; r++ {
		shard := ShardPath(path, r)
		tf, err := ReadTraceFile(shard)
		if err != nil {
			missing = append(missing, r)
			continue
		}
		merged.Events = append(merged.Events, tf.Events...)
		merged.Metrics.Merge(tf.Metrics)
		os.Remove(shard)
	}
	sort.SliceStable(merged.Events, func(i, j int) bool {
		if merged.Events[i].PID != merged.Events[j].PID {
			return merged.Events[i].PID < merged.Events[j].PID
		}
		return merged.Events[i].TS < merged.Events[j].TS
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(&merged); err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("obs: shards missing for ranks %v", missing)
	}
	return nil
}

// MergeMetricsShards combines per-worker metrics JSON shards into path.
func MergeMetricsShards(path string, p int) error {
	merged := (*Registry)(nil).Snapshot()
	var missing []int
	for r := 0; r < p; r++ {
		shard := ShardPath(path, r)
		data, err := os.ReadFile(shard)
		if err != nil {
			missing = append(missing, r)
			continue
		}
		var s MetricsSnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			missing = append(missing, r)
			continue
		}
		merged.Merge(&s)
		os.Remove(shard)
	}
	if err := os.WriteFile(path, merged.CanonicalJSONIndent(), 0o644); err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("obs: metrics shards missing for ranks %v", missing)
	}
	return nil
}
