package obs

import "testing"

// Benchmarks pin the overhead contract's magnitudes: the disabled (nil)
// instruments should show 0 B/op, and the enabled span path should stay
// allocation-free. CI runs these as a smoke (-benchtime=1x) next to the
// hard zero-alloc assertions in TestDisabledZeroAlloc /
// TestOTLPDisabledZeroAlloc.

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.EndN(tr.Begin("phase"), 1)
	}
}

func BenchmarkDisabledExporter(b *testing.B) {
	var exp *OTLPExporter
	spans := []Span{{Seq: 1, Rank: 0, Name: "phase", Start: 1, Dur: 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		exp.ExportSpans(spans, 0)
		_ = exp.Dropped()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.EndN(tr.Begin("phase"), 1)
	}
}

func BenchmarkEnabledSampledDetailSpan(b *testing.B) {
	tr := NewTracer(0, 1024)
	tr.EnableDetailSampling()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.End(tr.BeginDetail("inner"))
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
