package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Live observability: the -http endpoint of dmgm-match / dmgm-color serves a
// point-in-time JSON view of the run — per-rank, per-tag-family traffic
// counters plus the metrics registry — that dmgm-trace -watch polls and
// renders as a refreshing dashboard. The snapshot types live here (not in
// internal/mpi) because both the serving side (the runtime) and the polling
// side (dmgm-trace) need them, and mpi already depends on obs.
//
// The snapshot is safe to take mid-run: the runtime's counters are lock-free
// atomics and the registry tolerates concurrent readers, so polling never
// blocks or perturbs the ranks (see World.RankStats).

// FamilyTraffic is one tag family's share of a rank's live traffic.
type FamilyTraffic struct {
	// Family is the stable family name (match, bmatch.propose, bmatch.reply,
	// color, user, runtime).
	Family    string `json:"family"`
	SentMsgs  int64  `json:"sentMsgs"`
	SentBytes int64  `json:"sentBytes"`
	RecvMsgs  int64  `json:"recvMsgs"`
	RecvBytes int64  `json:"recvBytes"`
}

// RankTraffic is one rank's live traffic counters: user-traffic aggregates
// plus the per-tag-family breakdown (which additionally meters the runtime's
// reserved-tag collective traffic the aggregates exclude).
type RankTraffic struct {
	Rank      int             `json:"rank"`
	SentMsgs  int64           `json:"sentMsgs"`
	SentBytes int64           `json:"sentBytes"`
	RecvMsgs  int64           `json:"recvMsgs"`
	RecvBytes int64           `json:"recvBytes"`
	Families  []FamilyTraffic `json:"families,omitempty"`
}

// LiveSnapshot is the JSON document served at /snapshot while a run is in
// flight: the ranks this process hosts, their traffic counters, and the
// metrics registry. A multi-process (-launch) job serves one snapshot per
// worker; Merge folds them into the whole-job view.
type LiveSnapshot struct {
	// CapturedUnixNanos is the wall-clock capture time, used by watchers to
	// compute rates between polls.
	CapturedUnixNanos int64 `json:"capturedUnixNanos"`
	// WorldSize is the total rank count of the job.
	WorldSize int `json:"worldSize"`
	// LocalRanks lists the ranks this snapshot covers (all of them for an
	// in-process run, typically one for a tcp worker).
	LocalRanks []int `json:"localRanks"`
	// Ranks holds one entry per local rank, ascending.
	Ranks []RankTraffic `json:"ranks"`
	// Metrics is the registry snapshot, when an observer is attached.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// Merge folds o into s: rank entries concatenate (endpoints host disjoint
// ranks), local-rank sets union, metrics snapshots merge, and the capture
// time keeps the latest. Used by dmgm-trace -watch to combine the per-worker
// endpoints of a -launch job into one dashboard.
func (s *LiveSnapshot) Merge(o *LiveSnapshot) {
	if o == nil {
		return
	}
	if o.CapturedUnixNanos > s.CapturedUnixNanos {
		s.CapturedUnixNanos = o.CapturedUnixNanos
	}
	if o.WorldSize > s.WorldSize {
		s.WorldSize = o.WorldSize
	}
	s.LocalRanks = append(s.LocalRanks, o.LocalRanks...)
	s.Ranks = append(s.Ranks, o.Ranks...)
	sort.Ints(s.LocalRanks)
	sort.Slice(s.Ranks, func(i, j int) bool { return s.Ranks[i].Rank < s.Ranks[j].Rank })
	if o.Metrics != nil {
		if s.Metrics == nil {
			s.Metrics = (*Registry)(nil).Snapshot()
		}
		s.Metrics.Merge(o.Metrics)
	}
}

// ServeLive starts an HTTP server on addr exposing the live observability
// surface and returns the bound address. Routes:
//
//	/snapshot     the LiveSnapshot JSON produced by snap()
//	/metrics      the metrics registry portion alone
//	/debug/pprof  the standard net/http/pprof handlers
//	/             a plain-text index of the above
//
// snap is invoked per request from the server's goroutines; it must be safe
// to call concurrently with the run (World.LiveSnapshot is). The server runs
// until the process exits, matching ServePprof.
func ServeLive(addr string, snap func() *LiveSnapshot) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := snap()
		m := s.Metrics
		if m == nil {
			m = (*Registry)(nil).Snapshot()
		}
		// Canonical key order: repeated scrapes of an idle run are
		// byte-identical, so golden tests and diff-based tooling stay stable.
		w.Write(m.CanonicalJSONIndent()) //nolint:errcheck // best-effort scrape
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "dmgm live observability\n\n  /snapshot      per-rank per-tag-family traffic + metrics (JSON)\n  /metrics       metrics registry alone (JSON)\n  /debug/pprof/  net/http/pprof")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: live listen %s: %w", addr, err)
	}
	go http.Serve(ln, mux) //nolint:errcheck // serves for the process lifetime
	return ln.Addr().String(), nil
}

// liveClient bounds snapshot polls so a wedged endpoint cannot hang a
// watcher between frames.
var liveClient = &http.Client{Timeout: 5 * time.Second}

// FetchLive polls one endpoint's /snapshot. url may be a bare host:port, a
// server root, or the /snapshot URL itself.
func FetchLive(url string) (*LiveSnapshot, error) {
	u := NormalizeLiveURL(url)
	resp, err := liveClient.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: %s answered %s", u, resp.Status)
	}
	var s LiveSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding %s: %w", u, err)
	}
	return &s, nil
}

// NormalizeLiveURL completes a watch target into a /snapshot URL: the scheme
// defaults to http, the path to /snapshot; explicit paths pass through.
func NormalizeLiveURL(u string) string {
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	if rest := u[strings.Index(u, "://")+3:]; !strings.Contains(rest, "/") {
		u += "/snapshot"
	}
	return u
}
