package obs

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// OTLP/JSON encoding: the span ring and the metrics registry mapped onto the
// OpenTelemetry protocol's HTTP/JSON flavor (the proto3 JSON mapping of
// ExportTraceServiceRequest / ExportMetricsServiceRequest), so a run lands in
// any standard backend — Jaeger, Grafana Tempo, Prometheus via an OTLP
// collector — instead of only chrome://tracing and dmgm-trace. The encoding
// is hand-rolled on encoding/json: no OpenTelemetry SDK dependency, and the
// output is deterministic (registry keys via SortedKeys, spans in sequence
// order, ranks ascending) so golden tests can pin the exact bytes.
//
// Mapping:
//
//   - One OTLPResourceSpans / OTLPResourceMetrics per rank, carrying
//     service.name=<service>, dmgm.run, dmgm.rank and dmgm.world_size
//     resource attributes. Under -launch every worker derives the same run id
//     (inherited through the DMGM_OTLP_RUN environment variable), so the
//     shards of one job share one trace and shard-consistent resources.
//   - Span → OTLP span: traceId is derived from the run id, spanId from
//     (run, rank, seq); start/end nanos carry over; N/Msgs/Bytes/Detail/Seq
//     become dmgm.* attributes and the phase name doubles as dmgm.phase.
//   - Counter → Sum (monotonic, cumulative), Gauge → Gauge, Vec → Sum with
//     one data point per rank (attribute "rank"), Histogram → Histogram with
//     explicitBounds/bucketCounts. Registry keys carrying a tag-family
//     suffix (mpi.sent_bytes.color, …) additionally get a "family" data
//     point attribute so backends can group by protocol phase.
//
// Per the proto3 JSON mapping, 64-bit integers (timestamps, counts, intValue)
// are encoded as JSON strings, and trace/span ids as lowercase hex.

// OTLPValue is a proto3-JSON AnyValue (exactly one field set).
type OTLPValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

// OTLPKeyValue is one attribute.
type OTLPKeyValue struct {
	Key   string    `json:"key"`
	Value OTLPValue `json:"value"`
}

func otlpStr(key, v string) OTLPKeyValue {
	return OTLPKeyValue{Key: key, Value: OTLPValue{StringValue: &v}}
}

func otlpInt(key string, v int64) OTLPKeyValue {
	s := strconv.FormatInt(v, 10)
	return OTLPKeyValue{Key: key, Value: OTLPValue{IntValue: &s}}
}

func otlpBool(key string, v bool) OTLPKeyValue {
	return OTLPKeyValue{Key: key, Value: OTLPValue{BoolValue: &v}}
}

// OTLPResource identifies the entity that produced the telemetry.
type OTLPResource struct {
	Attributes []OTLPKeyValue `json:"attributes"`
}

// OTLPScope is the instrumentation scope.
type OTLPScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// OTLPSpan is one span in the proto3 JSON mapping.
type OTLPSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
}

// OTLPScopeSpans groups spans of one scope.
type OTLPScopeSpans struct {
	Scope OTLPScope  `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPResourceSpans groups one resource's scopes.
type OTLPResourceSpans struct {
	Resource   OTLPResource     `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// OTLPTraceRequest is the body POSTed to <endpoint>/v1/traces.
type OTLPTraceRequest struct {
	ResourceSpans []OTLPResourceSpans `json:"resourceSpans"`
}

// OTLPNumberPoint is one Sum/Gauge data point (integer-valued).
type OTLPNumberPoint struct {
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
	StartTimeUnixNano string         `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string         `json:"timeUnixNano"`
	AsInt             string         `json:"asInt"`
}

// OTLPSum is a monotonic cumulative sum metric.
type OTLPSum struct {
	DataPoints             []OTLPNumberPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

// OTLPGauge is a last-value metric.
type OTLPGauge struct {
	DataPoints []OTLPNumberPoint `json:"dataPoints"`
}

// OTLPHistogramPoint is one histogram data point.
type OTLPHistogramPoint struct {
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
	StartTimeUnixNano string         `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string         `json:"timeUnixNano"`
	Count             string         `json:"count"`
	Sum               float64        `json:"sum"`
	BucketCounts      []string       `json:"bucketCounts"`
	ExplicitBounds    []float64      `json:"explicitBounds"`
}

// OTLPHistogram is a cumulative histogram metric.
type OTLPHistogram struct {
	DataPoints             []OTLPHistogramPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

// OTLPMetric is one named metric (exactly one data field set).
type OTLPMetric struct {
	Name      string         `json:"name"`
	Sum       *OTLPSum       `json:"sum,omitempty"`
	Gauge     *OTLPGauge     `json:"gauge,omitempty"`
	Histogram *OTLPHistogram `json:"histogram,omitempty"`
}

// OTLPScopeMetrics groups metrics of one scope.
type OTLPScopeMetrics struct {
	Scope   OTLPScope    `json:"scope"`
	Metrics []OTLPMetric `json:"metrics"`
}

// OTLPResourceMetrics groups one resource's scopes.
type OTLPResourceMetrics struct {
	Resource     OTLPResource       `json:"resource"`
	ScopeMetrics []OTLPScopeMetrics `json:"scopeMetrics"`
}

// OTLPMetricsRequest is the body POSTed to <endpoint>/v1/metrics.
type OTLPMetricsRequest struct {
	ResourceMetrics []OTLPResourceMetrics `json:"resourceMetrics"`
}

// Enum values from the OTLP proto: span kind and aggregation temporality.
const (
	otlpSpanKindInternal = 1
	otlpTemporalityCumul = 2
	otlpScopeName        = "repro/internal/obs"
	otlpTracesPath       = "/v1/traces"
	otlpMetricsPath      = "/v1/metrics"
	defaultOTLPService   = "dmgm"
	otlpMetricsRankKey   = -2 // pseudo-rank resource for scalar registry metrics
)

// OTLPIdentity pins the resource attributes and id derivation of one run.
type OTLPIdentity struct {
	// RunID seeds the trace id; every worker of one job must share it so the
	// shards land in one trace (see Flags.OTLPRunID).
	RunID string
	// Service is the service.name resource attribute ("" = "dmgm").
	Service string
	// WorldSize is the job's rank count (0 = omitted).
	WorldSize int
	// TraceIDHex, when set (32 lowercase hex chars), is used verbatim as the
	// trace id instead of deriving one from RunID — how the serving layer
	// lands a job's runtime spans inside the request's W3C trace.
	TraceIDHex string
	// ParentSpanHex, when set (16 lowercase hex chars), becomes the
	// parentSpanId of every span whose Parent token is 0 — hanging a whole
	// span batch (a runtime's flat per-rank phases) under one enclosing span.
	ParentSpanHex string
}

func (id OTLPIdentity) service() string {
	if id.Service == "" {
		return defaultOTLPService
	}
	return id.Service
}

// TraceID derives the 16-byte OTLP trace id from the run id, hex-encoded,
// unless TraceIDHex pins one explicitly.
func (id OTLPIdentity) TraceID() string {
	if id.TraceIDHex != "" {
		return id.TraceIDHex
	}
	h := fnv.New128a()
	h.Write([]byte("dmgm-trace:" + id.RunID))
	sum := h.Sum(nil)
	if allZero(sum) {
		sum[0] = 1 // the all-zero id is invalid in OTLP
	}
	return hex.EncodeToString(sum)
}

// SpanID derives the 8-byte OTLP span id for one recorded span, hex-encoded.
// It is deterministic in (run, rank, seq), so a re-export of the same trace
// file produces the same ids.
func (id OTLPIdentity) SpanID(rank int, seq uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "dmgm-span:%s:%d:%d", id.RunID, rank, seq)
	sum := h.Sum(nil)
	if allZero(sum) {
		sum[0] = 1
	}
	return hex.EncodeToString(sum)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// resourceFor builds the per-rank resource. Driver spans use DriverRank and
// scalar registry metrics the pseudo-rank otlpMetricsRankKey.
func (id OTLPIdentity) resourceFor(rank int) OTLPResource {
	attrs := []OTLPKeyValue{
		otlpStr("service.name", id.service()),
		otlpStr("dmgm.run", id.RunID),
	}
	switch rank {
	case DriverRank:
		attrs = append(attrs, otlpStr("service.instance.id", "driver"))
	case otlpMetricsRankKey:
		attrs = append(attrs, otlpStr("service.instance.id", "registry"))
	default:
		attrs = append(attrs,
			otlpStr("service.instance.id", fmt.Sprintf("rank-%d", rank)),
			otlpInt("dmgm.rank", int64(rank)))
	}
	if id.WorldSize > 0 {
		attrs = append(attrs, otlpInt("dmgm.world_size", int64(id.WorldSize)))
	}
	return OTLPResource{Attributes: attrs}
}

func unano(v int64) string { return strconv.FormatInt(v, 10) }

// EncodeOTLPSpans maps completed spans onto an OTLP trace request: one
// resource per rank (ranks ascending, driver last), spans in sequence order
// within a rank. Open spans (Dur < 0) are skipped.
func EncodeOTLPSpans(spans []Span, id OTLPIdentity) *OTLPTraceRequest {
	byRank := map[int][]Span{}
	var ranks []int
	for _, s := range spans {
		if s.Dur < 0 {
			continue
		}
		if _, ok := byRank[s.Rank]; !ok {
			ranks = append(ranks, s.Rank)
		}
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	sortRanksDriverLast(ranks)
	traceID := id.TraceID()
	req := &OTLPTraceRequest{ResourceSpans: []OTLPResourceSpans{}}
	for _, r := range ranks {
		group := byRank[r]
		out := make([]OTLPSpan, 0, len(group))
		for _, s := range group {
			attrs := []OTLPKeyValue{
				otlpStr("dmgm.phase", s.Name),
				otlpInt("dmgm.seq", int64(s.Seq)),
			}
			if s.Detail {
				attrs = append(attrs, otlpBool("dmgm.detail", true))
			}
			if s.N != 0 {
				attrs = append(attrs, otlpInt("dmgm.n", s.N))
			}
			if s.Msgs != 0 || s.Bytes != 0 {
				attrs = append(attrs, otlpInt("dmgm.msgs", s.Msgs), otlpInt("dmgm.bytes", s.Bytes))
			}
			parent := id.ParentSpanHex
			if s.Parent != 0 {
				parent = id.SpanID(s.Rank, s.Parent)
			}
			out = append(out, OTLPSpan{
				TraceID:           traceID,
				SpanID:            id.SpanID(s.Rank, s.Seq),
				ParentSpanID:      parent,
				Name:              s.Name,
				Kind:              otlpSpanKindInternal,
				StartTimeUnixNano: unano(s.Start),
				EndTimeUnixNano:   unano(s.Start + s.Dur),
				Attributes:        attrs,
			})
		}
		req.ResourceSpans = append(req.ResourceSpans, OTLPResourceSpans{
			Resource:   id.resourceFor(r),
			ScopeSpans: []OTLPScopeSpans{{Scope: OTLPScope{Name: otlpScopeName}, Spans: out}},
		})
	}
	return req
}

// familyOfKey extracts the tag-family suffix of a registry key that carries
// one (mpi.sent_bytes.color → color), or "" when the key is an aggregate.
// String-only on purpose: obs cannot import mpi (mpi imports obs), so the
// family taxonomy is recognized by its documented key shapes (docs/PROTOCOL.md
// §3) rather than by the mpi enum.
func familyOfKey(key string) string {
	for _, pre := range []string{
		"mpi.sent_msgs.", "mpi.sent_bytes.", "mpi.recv_msgs.", "mpi.recv_bytes.",
		"mpi.bundle_flushes.", "mpi.bundle_records.",
	} {
		if strings.HasPrefix(key, pre) {
			return key[len(pre):]
		}
	}
	return ""
}

// EncodeOTLPMetrics maps a registry snapshot onto an OTLP metrics request.
// All metrics land under one registry resource; per-rank vectors become one
// data point per rank with a "rank" attribute, and family-suffixed keys get a
// "family" attribute alongside. now is the data-point timestamp (cumulative
// since start, which is reported as startNanos when nonzero). Keys are
// emitted in SortedKeys order so the encoding is byte-deterministic.
func EncodeOTLPMetrics(s *MetricsSnapshot, id OTLPIdentity, startNanos, now int64) *OTLPMetricsRequest {
	if s == nil {
		s = (*Registry)(nil).Snapshot()
	}
	ts, start := unano(now), ""
	if startNanos > 0 {
		start = unano(startNanos)
	}
	var metrics []OTLPMetric
	point := func(v int64, attrs ...OTLPKeyValue) OTLPNumberPoint {
		return OTLPNumberPoint{Attributes: attrs, StartTimeUnixNano: start, TimeUnixNano: ts, AsInt: strconv.FormatInt(v, 10)}
	}
	famAttrs := func(key string, more ...OTLPKeyValue) []OTLPKeyValue {
		if fam := familyOfKey(key); fam != "" {
			return append(more, otlpStr("family", fam))
		}
		return more
	}
	for _, k := range SortedKeys(s.Counters) {
		metrics = append(metrics, OTLPMetric{Name: k, Sum: &OTLPSum{
			DataPoints:             []OTLPNumberPoint{point(s.Counters[k], famAttrs(k)...)},
			AggregationTemporality: otlpTemporalityCumul,
			IsMonotonic:            true,
		}})
	}
	for _, k := range SortedKeys(s.Gauges) {
		metrics = append(metrics, OTLPMetric{Name: k, Gauge: &OTLPGauge{
			DataPoints: []OTLPNumberPoint{point(s.Gauges[k])},
		}})
	}
	for _, k := range SortedKeys(s.PerRank) {
		vals := s.PerRank[k]
		points := make([]OTLPNumberPoint, 0, len(vals))
		for r, v := range vals {
			points = append(points, point(v, famAttrs(k, otlpInt("rank", int64(r)))...))
		}
		metrics = append(metrics, OTLPMetric{Name: k, Sum: &OTLPSum{
			DataPoints:             points,
			AggregationTemporality: otlpTemporalityCumul,
			IsMonotonic:            true,
		}})
	}
	for _, k := range SortedKeys(s.Histograms) {
		h := s.Histograms[k]
		bounds := make([]float64, len(h.Bounds))
		for i, b := range h.Bounds {
			bounds[i] = float64(b)
		}
		buckets := make([]string, len(h.Counts))
		for i, c := range h.Counts {
			buckets[i] = strconv.FormatInt(c, 10)
		}
		metrics = append(metrics, OTLPMetric{Name: k, Histogram: &OTLPHistogram{
			DataPoints: []OTLPHistogramPoint{{
				StartTimeUnixNano: start,
				TimeUnixNano:      ts,
				Count:             strconv.FormatInt(h.Count, 10),
				Sum:               float64(h.Sum),
				BucketCounts:      buckets,
				ExplicitBounds:    bounds,
			}},
			AggregationTemporality: otlpTemporalityCumul,
		}})
	}
	if metrics == nil {
		metrics = []OTLPMetric{}
	}
	return &OTLPMetricsRequest{ResourceMetrics: []OTLPResourceMetrics{{
		Resource:     id.resourceFor(otlpMetricsRankKey),
		ScopeMetrics: []OTLPScopeMetrics{{Scope: OTLPScope{Name: otlpScopeName}, Metrics: metrics}},
	}}}
}

// SpansOfEvents reconstructs Spans from Chrome trace events, for pushing a
// recorded trace file to an OTLP backend post-mortem (dmgm-trace
// -otlp-convert). Only complete "X" events convert; sequence numbers are
// resynthesized per rank in file order, so span ids are stable for a given
// file but unrelated to the original ring sequence.
func SpansOfEvents(events []TraceEvent) []Span {
	seqs := map[int]uint64{}
	var out []Span
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		rank := e.PID
		if rank == DriverPID {
			rank = DriverRank
		}
		seqs[rank]++
		out = append(out, Span{
			Seq:    seqs[rank],
			Rank:   rank,
			Name:   e.Name,
			Detail: e.Cat == "detail",
			Start:  int64(e.TS * 1e3),
			Dur:    int64(e.Dur * 1e3),
			N:      e.ArgInt("n"),
			Msgs:   e.ArgInt("msgs"),
			Bytes:  e.ArgInt("bytes"),
		})
	}
	return out
}

// sortRanksDriverLast orders worker ranks ascending with the driver after
// them, matching the Chrome export's process ordering.
func sortRanksDriverLast(ranks []int) {
	for i := 1; i < len(ranks); i++ {
		for j := i; j > 0 && rankOrd(ranks[j]) < rankOrd(ranks[j-1]); j-- {
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
		}
	}
}

func rankOrd(r int) int {
	if r == DriverRank {
		return int(^uint(0) >> 1) // driver sorts last
	}
	return r
}
