package obs

import (
	"net/http"
	"testing"
)

func testSnapshot() *LiveSnapshot {
	return &LiveSnapshot{
		CapturedUnixNanos: 12345,
		WorldSize:         4,
		LocalRanks:        []int{2},
		Ranks: []RankTraffic{{
			Rank: 2, SentMsgs: 10, SentBytes: 170, RecvMsgs: 9, RecvBytes: 150,
			Families: []FamilyTraffic{
				{Family: "match", SentMsgs: 10, SentBytes: 170, RecvMsgs: 9, RecvBytes: 150},
				{Family: "runtime", SentMsgs: 3, SentBytes: 24, RecvMsgs: 3, RecvBytes: 24},
			},
		}},
	}
}

// TestServeFetchLiveRoundTrip serves a snapshot on an ephemeral port and
// fetches it back through the same client path dmgm-trace -watch uses.
func TestServeFetchLiveRoundTrip(t *testing.T) {
	want := testSnapshot()
	addr, err := ServeLive("127.0.0.1:0", func() *LiveSnapshot { return want })
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{addr, "http://" + addr, "http://" + addr + "/snapshot"} {
		got, err := FetchLive(target)
		if err != nil {
			t.Fatalf("FetchLive(%q): %v", target, err)
		}
		if got.WorldSize != want.WorldSize || got.CapturedUnixNanos != want.CapturedUnixNanos {
			t.Fatalf("FetchLive(%q) header = %+v", target, got)
		}
		if len(got.Ranks) != 1 {
			t.Fatalf("FetchLive(%q) ranks = %+v", target, got.Ranks)
		}
		r := got.Ranks[0]
		if r.Rank != 2 || r.SentBytes != 170 || len(r.Families) != 2 || r.Families[1].Family != "runtime" {
			t.Fatalf("FetchLive(%q) rank = %+v", target, r)
		}
	}
	// The other routes answer too.
	for _, path := range []string{"/", "/metrics", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

func TestNormalizeLiveURL(t *testing.T) {
	cases := map[string]string{
		"localhost:7070":         "http://localhost:7070/snapshot",
		"http://localhost:7070":  "http://localhost:7070/snapshot",
		"http://h:1/custom":      "http://h:1/custom",
		"https://h:1":            "https://h:1/snapshot",
		"127.0.0.1:9":            "http://127.0.0.1:9/snapshot",
		"http://localhost:7070/": "http://localhost:7070/",
	}
	for in, want := range cases {
		if got := NormalizeLiveURL(in); got != want {
			t.Errorf("NormalizeLiveURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestLiveSnapshotMerge folds two worker snapshots into one job view.
func TestLiveSnapshotMerge(t *testing.T) {
	a := &LiveSnapshot{CapturedUnixNanos: 10, WorldSize: 2, LocalRanks: []int{1},
		Ranks: []RankTraffic{{Rank: 1, SentMsgs: 5}}}
	b := &LiveSnapshot{CapturedUnixNanos: 20, WorldSize: 2, LocalRanks: []int{0},
		Ranks: []RankTraffic{{Rank: 0, SentMsgs: 7}}}
	a.Merge(b)
	if a.CapturedUnixNanos != 20 || a.WorldSize != 2 {
		t.Fatalf("merged header %+v", a)
	}
	if len(a.Ranks) != 2 || a.Ranks[0].Rank != 0 || a.Ranks[1].Rank != 1 {
		t.Fatalf("merged ranks not sorted: %+v", a.Ranks)
	}
	if len(a.LocalRanks) != 2 || a.LocalRanks[0] != 0 || a.LocalRanks[1] != 1 {
		t.Fatalf("merged local ranks %v", a.LocalRanks)
	}
	a.Merge(nil) // no-op
	if len(a.Ranks) != 2 {
		t.Fatal("merge with nil changed the snapshot")
	}
}
