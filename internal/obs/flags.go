package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"
)

// Flags is the standard observability flag block shared by the cmd/
// binaries: where to write the trace and metrics, and whether to serve
// net/http/pprof.
type Flags struct {
	// Trace is the trace output path ("" = off). ".jsonl" selects the JSONL
	// format, anything else the Chrome trace_event JSON.
	Trace string
	// Metrics is the standalone metrics JSON output path ("" = off).
	Metrics string
	// Pprof is the pprof listen address ("" = off). Multi-process workers
	// offset a fixed port by their rank so the fleet never collides.
	Pprof string
	// HTTP is the live-observability listen address ("" = off): /snapshot
	// serves the per-rank per-tag-family traffic JSON that dmgm-trace -watch
	// polls, alongside /metrics and /debug/pprof. Multi-process workers
	// offset a fixed port by their rank, like Pprof.
	HTTP string
	// SpanCap is the per-rank span ring capacity (0 = default).
	SpanCap int
	// Sample switches detail spans from ring eviction to systematic
	// sampling, keeping long-run tails representative (see
	// Tracer.EnableDetailSampling).
	Sample bool
	// OTLP is the OTLP/HTTP collector base endpoint ("" = off), e.g.
	// http://localhost:4318; spans go to /v1/traces, the registry to
	// /v1/metrics, after the run completes.
	OTLP string
	// OTLPRun is the run id grouping this job's spans into one trace.
	// Empty means: inherit DMGM_OTLP_RUN (set by the -launch supervisor so
	// every worker shares one trace) or generate a fresh id.
	OTLPRun string
}

// otlpRunEnv carries the run id from the -launch supervisor to its workers.
const otlpRunEnv = "DMGM_OTLP_RUN"

// RegisterFlags installs the observability flag block on the default flag
// set.
func RegisterFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Trace, "trace", "", "write a span trace to this path (.json = Chrome trace_event, .jsonl = one span per line)")
	flag.StringVar(&f.Metrics, "metrics", "", "write the metrics registry to this JSON path")
	flag.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on this address (workers add their rank to a fixed port)")
	flag.StringVar(&f.HTTP, "http", "", "serve live observability on this address: /snapshot (per-rank per-tag-family traffic JSON for dmgm-trace -watch), /metrics, /debug/pprof (workers add their rank to a fixed port)")
	flag.IntVar(&f.SpanCap, "trace-spans", 0, "per-rank span ring capacity (0 = 65536; older spans are overwritten)")
	flag.BoolVar(&f.Sample, "trace-sample", false, "sample detail spans across the whole run instead of keeping only the newest when the ring overflows")
	flag.StringVar(&f.OTLP, "otlp", "", "export spans and metrics to this OTLP/HTTP collector endpoint after the run (e.g. http://localhost:4318)")
	flag.StringVar(&f.OTLPRun, "otlp-run", "", "run id grouping OTLP spans into one trace (default: inherited from the launch supervisor, or generated)")
	return f
}

// Enabled reports whether any collection output was requested — a file
// export, the live HTTP endpoint, or an OTLP push.
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Metrics != "" || f.HTTP != "" || f.OTLP != ""
}

// NewObserver builds the observer the flags describe, or nil when
// observability is off — the nil observer makes all instrumentation free.
func (f *Flags) NewObserver(ranks int) *Observer {
	if !f.Enabled() {
		return nil
	}
	cap := f.SpanCap
	if f.Trace == "" && f.OTLP == "" {
		cap = -1 // metrics only: no rings
	}
	o := NewObserver(ranks, cap)
	if f.Sample {
		o.EnableDetailSampling()
	}
	return o
}

// RunID resolves the OTLP run id, in precedence order: the -otlp-run flag,
// the DMGM_OTLP_RUN environment variable, a freshly generated id. The
// resolved id is stored back into both the flag and the environment so a
// -launch supervisor calling this before spawning workers hands every worker
// the same id — which is what makes their OTLP exports one shard-consistent
// trace.
func (f *Flags) RunID() string {
	if f.OTLPRun == "" {
		f.OTLPRun = os.Getenv(otlpRunEnv)
	}
	if f.OTLPRun == "" {
		f.OTLPRun = fmt.Sprintf("dmgm-%d-%d", time.Now().UnixNano(), os.Getpid())
	}
	os.Setenv(otlpRunEnv, f.OTLPRun) //nolint:errcheck // best-effort propagation
	return f.OTLPRun
}

// ExportOTLP pushes the observer's spans and metrics to the -otlp endpoint.
// Export is strictly post-run and best-effort: every failure is reported in
// the returned error (for a stderr warning) and never affects the run's
// results. No-op when the flag is unset or the observer is nil.
func (f *Flags) ExportOTLP(o *Observer, localRanks []int, worldSize int) error {
	if f.OTLP == "" || o == nil {
		return nil
	}
	id := OTLPIdentity{RunID: f.RunID(), WorldSize: worldSize}
	exp := NewOTLPExporter(f.OTLP, OTLPOptions{Identity: id, Registry: o.Registry()})
	exp.ExportObserver(o, localRanks, 0)
	err := exp.Close(10 * time.Second)
	if dropped := exp.Dropped(); dropped > 0 {
		err = fmt.Errorf("obs: otlp export to %s dropped %d batches (%w)", f.OTLP, dropped, errOrTimeout(err))
	}
	return err
}

// errOrTimeout keeps error wrapping simple when Close itself succeeded but
// batches were dropped along the way.
func errOrTimeout(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("delivery failures; see collector logs")
}

// Write dumps the requested outputs for the given local ranks. In remote
// mode (one process per rank) each worker writes per-rank shards that the
// supervisor later merges; otherwise the final files are written directly.
// rank is this process's rank (used as shard suffix and driver tid).
func (f *Flags) Write(o *Observer, localRanks []int, rank int, remote bool) error {
	if o == nil {
		return nil
	}
	if f.Trace != "" {
		path, tid := f.Trace, 0
		if remote {
			path, tid = ShardPath(f.Trace, rank), rank
		}
		if err := o.WriteTraceFile(path, localRanks, tid); err != nil {
			return fmt.Errorf("obs: writing trace: %w", err)
		}
	}
	if f.Metrics != "" {
		path := f.Metrics
		if remote {
			path = ShardPath(f.Metrics, rank)
		}
		if err := o.WriteMetricsFile(path); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
	}
	return nil
}

// Merge combines the per-worker shards of a p-rank launch into the final
// trace and metrics files.
func (f *Flags) Merge(p int) error {
	if f.Trace != "" {
		if err := MergeShards(f.Trace, p); err != nil {
			return err
		}
	}
	if f.Metrics != "" {
		if err := MergeMetricsShards(f.Metrics, p); err != nil {
			return err
		}
	}
	return nil
}

// PprofAddr resolves the pprof listen address for this process: in remote
// mode a fixed port is offset by the rank so every worker of a launch gets
// its own listener (port 0 stays 0 — the kernel picks).
func (f *Flags) PprofAddr(rank int, remote bool) string {
	return offsetAddr(f.Pprof, rank, remote)
}

// HTTPAddr resolves the live-observability listen address for this process,
// with the same per-rank port offsetting as PprofAddr.
func (f *Flags) HTTPAddr(rank int, remote bool) string {
	return offsetAddr(f.HTTP, rank, remote)
}

// offsetAddr adds rank to addr's port in remote mode; addresses without a
// fixed numeric port pass through unchanged.
func offsetAddr(addr string, rank int, remote bool) string {
	if addr == "" || !remote {
		return addr
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port == 0 {
		return addr
	}
	return net.JoinHostPort(host, strconv.Itoa(port+rank))
}

// ServePprof starts an HTTP server exposing net/http/pprof on addr and
// returns the bound address. The server runs until the process exits.
func ServePprof(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	go http.Serve(ln, mux) //nolint:errcheck // serves for the process lifetime
	return ln.Addr().String(), nil
}
