package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide metrics namespace: named counters, gauges,
// per-rank counter vectors, and bounded histograms. All instruments are
// safe for concurrent use (single atomic operations); lookup/creation takes
// a mutex and is meant to happen once, at wiring time, with the returned
// instrument cached by the caller.
//
// A nil *Registry is valid: every lookup returns a nil instrument, and every
// nil-instrument operation is a single comparison — the disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	vecs     map[string]*Vec
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		vecs:     make(map[string]*Vec),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; a no-op on nil.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load reads the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins atomic cell.
type Gauge struct{ v atomic.Int64 }

// Set stores the value; a no-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the value by d; a no-op on nil. For gauges that track a level
// maintained by concurrent increments and decrements (in-flight jobs),
// where Set(Load()+1) would lose updates.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load reads the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Vec is a fixed-length vector of counters, indexed by rank.
type Vec struct{ cells []Counter }

// At returns the rank's cell (nil on a nil vec or out-of-range index).
func (v *Vec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.cells) {
		return nil
	}
	return &v.cells[i]
}

// Len reports the vector length (0 on nil).
func (v *Vec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.cells)
}

// Histogram counts observations into fixed upper-bound buckets (the last
// bucket is an implicit +Inf overflow), tracking sum and count alongside.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value; a no-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// ExpBounds builds power-of-two histogram bounds from lo to hi inclusive
// (both rounded to powers of two), e.g. ExpBounds(64, 1<<20) for bundle
// sizes from one cache line to a megabyte.
func ExpBounds(lo, hi int64) []int64 {
	var out []int64
	for b := int64(1); b <= hi; b <<= 1 {
		if b >= lo {
			out = append(out, b)
		}
	}
	return out
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Vec returns (creating if needed) the named per-rank counter vector of the
// given length; nil on a nil registry. The length is fixed by the first
// caller.
func (r *Registry) Vec(name string, n int) *Vec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		v = &Vec{cells: make([]Counter, n)}
		r.vecs[name] = v
	}
	return v
}

// Histogram returns (creating if needed) the named histogram with the given
// upper bounds; nil on a nil registry. Bounds are fixed by the first caller.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is +Inf overflow
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// MetricsSnapshot is a point-in-time, serializable copy of a registry. It is
// also the shard-merge unit: counters, vectors, and histogram buckets sum,
// gauges take the maximum.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	PerRank    map[string][]int64           `json:"perRank,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. Safe during a live run.
func (r *Registry) Snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		PerRank:    map[string][]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, v := range r.vecs {
		vals := make([]int64, len(v.cells))
		for i := range v.cells {
			vals[i] = v.cells[i].Load()
		}
		s.PerRank[name] = vals
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.n.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds o into s: counters, per-rank vectors, and histogram buckets
// add; gauges keep the maximum. Vectors and histograms of mismatched shape
// keep the longer/first shape and add what overlaps. s may come from a JSON
// decode with nil maps (omitempty skips empty sections); Merge initializes
// them on demand.
func (s *MetricsSnapshot) Merge(o *MetricsSnapshot) {
	if o == nil {
		return
	}
	if s.Counters == nil && len(o.Counters) > 0 {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil && len(o.Gauges) > 0 {
		s.Gauges = map[string]int64{}
	}
	if s.PerRank == nil && len(o.PerRank) > 0 {
		s.PerRank = map[string][]int64{}
	}
	if s.Histograms == nil && len(o.Histograms) > 0 {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		if cur, ok := s.Gauges[k]; !ok || v > cur {
			s.Gauges[k] = v
		}
	}
	for k, vals := range o.PerRank {
		cur := s.PerRank[k]
		if len(vals) > len(cur) {
			cur = append(cur, make([]int64, len(vals)-len(cur))...)
		}
		for i, v := range vals {
			cur[i] += v
		}
		s.PerRank[k] = cur
	}
	for k, h := range o.Histograms {
		cur, ok := s.Histograms[k]
		if !ok {
			s.Histograms[k] = h
			continue
		}
		for i := range h.Counts {
			if i < len(cur.Counts) {
				cur.Counts[i] += h.Counts[i]
			}
		}
		cur.Sum += h.Sum
		cur.Count += h.Count
		s.Histograms[k] = cur
	}
}

// CanonicalJSON renders the snapshot with every registry key emitted in
// SortedKeys order, built explicitly rather than trusting the json package's
// map ordering, so repeated /metrics scrapes, metrics files, and golden
// tests are byte-stable. Sections mirror the struct's omitempty behavior.
func (s *MetricsSnapshot) CanonicalJSON() []byte {
	var buf bytes.Buffer
	buf.WriteByte('{')
	first := true
	section := func(name string, keys []string, value func(string) any) {
		if len(keys) == 0 {
			return
		}
		if !first {
			buf.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&buf, "%q:{", name)
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			v, _ := json.Marshal(value(k)) // values are ints, slices, structs: cannot fail
			fmt.Fprintf(&buf, "%q:%s", k, v)
		}
		buf.WriteByte('}')
	}
	section("counters", SortedKeys(s.Counters), func(k string) any { return s.Counters[k] })
	section("gauges", SortedKeys(s.Gauges), func(k string) any { return s.Gauges[k] })
	section("perRank", SortedKeys(s.PerRank), func(k string) any { return s.PerRank[k] })
	section("histograms", SortedKeys(s.Histograms), func(k string) any { return s.Histograms[k] })
	buf.WriteByte('}')
	return buf.Bytes()
}

// CanonicalJSONIndent is CanonicalJSON re-indented for files and scrapes
// meant for human eyes.
func (s *MetricsSnapshot) CanonicalJSONIndent() []byte {
	var out bytes.Buffer
	if err := json.Indent(&out, s.CanonicalJSON(), "", "  "); err != nil {
		return s.CanonicalJSON()
	}
	out.WriteByte('\n')
	return out.Bytes()
}

// SortedKeys returns map keys in deterministic order, for rendering.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
