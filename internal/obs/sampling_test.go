package obs

import (
	"testing"
)

// TestDetailSamplingSpansWholeRun: capacity C under N >> C detail spans must
// retain samples spread across the entire run, not just its tail, while
// Recorded() still counts every begin.
func TestDetailSamplingSpansWholeRun(t *testing.T) {
	const capacity = 16
	const total = 10_000
	tr := NewTracer(0, capacity)
	tr.now = fakeClock()
	tr.EnableDetailSampling()
	for i := 0; i < total; i++ {
		tr.EndN(tr.BeginDetail("inner"), int64(i))
	}
	spans := tr.Spans()
	if len(spans) == 0 || len(spans) > capacity {
		t.Fatalf("retained %d samples, want 1..%d", len(spans), capacity)
	}
	// Coverage: the samples must reach into both the first and last deciles
	// of the run, and be roughly uniformly spaced (systematic sampling).
	first, last := spans[0].N, spans[len(spans)-1].N
	if first >= total/10 {
		t.Errorf("earliest sample at iteration %d: the head of the run was lost", first)
	}
	if last < total-total/5 {
		t.Errorf("latest sample at iteration %d of %d: the tail was lost", last, total)
	}
	var maxGap int64
	for i := 1; i < len(spans); i++ {
		if gap := spans[i].N - spans[i-1].N; gap > maxGap {
			maxGap = gap
		}
	}
	// Systematic sampling with stride doubling keeps gaps within ~2x the
	// ideal spacing; 4x is a generous bound that still catches tail-only
	// retention (which would show one gap near `total`).
	if ideal := int64(total / capacity); maxGap > 4*ideal {
		t.Errorf("max gap between samples %d, want <= %d (uniform coverage)", maxGap, 4*ideal)
	}
	if tr.Recorded() != total {
		t.Errorf("Recorded()=%d, want %d (every begin counts)", tr.Recorded(), total)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i-1].Seq >= spans[i].Seq {
			t.Fatalf("samples out of order: seq %d then %d", spans[i-1].Seq, spans[i].Seq)
		}
	}
}

// TestDetailSamplingKeepsCoarseSpans: coarse spans are always recorded under
// sampling mode, interleaved correctly with the sampled details.
func TestDetailSamplingKeepsCoarseSpans(t *testing.T) {
	tr := NewTracer(0, 8)
	tr.now = fakeClock()
	tr.EnableDetailSampling()
	const phases = 5
	for p := 0; p < phases; p++ {
		tok := tr.Begin("phase")
		for i := 0; i < 100; i++ {
			tr.End(tr.BeginDetail("inner"))
		}
		tr.EndN(tok, int64(p))
	}
	var coarse, detail int
	spans := tr.Spans()
	for _, s := range spans {
		if s.Detail {
			detail++
		} else {
			coarse++
		}
	}
	if coarse != phases {
		t.Errorf("retained %d coarse spans, want all %d", coarse, phases)
	}
	if detail == 0 {
		t.Error("sampling retained no detail spans at all")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i-1].Seq >= spans[i].Seq {
			t.Fatalf("merged spans out of order: seq %d then %d", spans[i-1].Seq, spans[i].Seq)
		}
	}
	if tr.Recorded() != phases*101 {
		t.Errorf("Recorded()=%d, want %d", tr.Recorded(), phases*101)
	}
}

// TestDetailSamplingTrafficDeltas: an admitted sampled span still carries its
// traffic delta; unadmitted begins return token 0 and End is a no-op.
func TestDetailSamplingTrafficDeltas(t *testing.T) {
	tr := NewTracer(0, 4)
	tr.now = fakeClock()
	tr.EnableDetailSampling()
	var msgs, bytes int64
	tr.SetStatsFunc(func() (int64, int64) { return msgs, bytes })
	tok := tr.BeginDetail("inner") // first detail span: always admitted
	if tok == 0 {
		t.Fatal("first detail span must be admitted")
	}
	msgs, bytes = 3, 300
	tr.EndN(tok, 1)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Msgs != 3 || spans[0].Bytes != 300 {
		t.Fatalf("sampled span traffic: %+v, want msgs=3 bytes=300", spans)
	}
}

// TestSamplingFlagWiring: the -trace-sample flag reaches every tracer.
func TestSamplingFlagWiring(t *testing.T) {
	f := &Flags{Trace: "t.json", Sample: true}
	o := f.NewObserver(2)
	if o == nil || o.Tracer(0) == nil {
		t.Fatal("trace flags must produce tracers")
	}
	tr := o.Tracer(1)
	if tr.samples == nil {
		t.Error("-trace-sample did not enable sampling on rank tracers")
	}
	if o.Driver().samples == nil {
		t.Error("-trace-sample did not enable sampling on the driver tracer")
	}
}
