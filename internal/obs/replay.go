package obs

import (
	"fmt"
	"sort"

	"repro/internal/perfmodel"
)

// ReplayFromTrace converts a recorded trace into the per-rank replay input
// of perfmodel.Replay: top-level (non-detail) "X" spans become per-phase
// observations, and the metrics sidecar's per-rank vectors become each
// rank's whole-run profile (vertex/edge operations for calibration, traffic
// aggregates and barrier epochs for the communication terms). Driver spans
// are excluded — the model prices the bulk-synchronous rank schedule, not
// the sequential driver work around it.
func ReplayFromTrace(tf *TraceFile) ([]perfmodel.RankReplay, error) {
	type phaseAgg struct {
		seconds     float64
		msgs, bytes int64
	}
	perRank := map[int]map[string]*phaseAgg{}
	for _, e := range tf.Events {
		if e.Ph != "X" || e.Cat == "detail" || e.PID == DriverPID {
			continue
		}
		m := perRank[e.PID]
		if m == nil {
			m = map[string]*phaseAgg{}
			perRank[e.PID] = m
		}
		a := m[e.Name]
		if a == nil {
			a = &phaseAgg{}
			m[e.Name] = a
		}
		a.seconds += e.Dur / 1e6 // trace durations are microseconds
		a.msgs += e.ArgInt("msgs")
		a.bytes += e.ArgInt("bytes")
	}
	if len(perRank) == 0 {
		return nil, fmt.Errorf("obs: trace has no rank phase spans to replay")
	}

	vec := func(name string) []int64 {
		if tf.Metrics == nil {
			return nil
		}
		return tf.Metrics.PerRank[name]
	}
	at := func(vals []int64, r int) int64 {
		if r < 0 || r >= len(vals) {
			return 0
		}
		return vals[r]
	}
	vops, eops := vec("mpi.vertex_ops"), vec("mpi.edge_ops")
	msgs, bytes := vec("mpi.sent_msgs"), vec("mpi.sent_bytes")
	epochs := vec("mpi.barrier_epochs")

	var ranks []int
	for r := range perRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	out := make([]perfmodel.RankReplay, 0, len(ranks))
	for _, r := range ranks {
		rr := perfmodel.RankReplay{
			Rank: r,
			Total: perfmodel.Profile{
				VertexOps: at(vops, r),
				EdgeOps:   at(eops, r),
				Msgs:      at(msgs, r),
				Bytes:     at(bytes, r),
				Epochs:    at(epochs, r),
			},
		}
		m := perRank[r]
		for _, name := range SortedKeys(m) {
			a := m[name]
			rr.Phases = append(rr.Phases, perfmodel.PhaseObs{
				Name: name, Seconds: a.seconds, Msgs: a.msgs, Bytes: a.bytes,
			})
		}
		out = append(out, rr)
	}
	return out, nil
}
