package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testIdentity pins the ids of every OTLP test so goldens are stable.
var testIdentity = OTLPIdentity{RunID: "test-run", WorldSize: 2}

// fakeCollector is an in-process OTLP/HTTP collector: it records every
// request body per path and answers with a scripted status sequence.
type fakeCollector struct {
	mu       sync.Mutex
	bodies   map[string][][]byte // path -> request bodies
	statuses []int               // consumed one per request; empty = 200
	headers  http.Header         // extra response headers (Retry-After)
	srv      *httptest.Server
}

func newFakeCollector() *fakeCollector {
	c := &fakeCollector{bodies: map[string][][]byte{}, headers: http.Header{}}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body) //nolint:errcheck
		c.mu.Lock()
		c.bodies[r.URL.Path] = append(c.bodies[r.URL.Path], buf.Bytes())
		status := http.StatusOK
		if len(c.statuses) > 0 {
			status, c.statuses = c.statuses[0], c.statuses[1:]
		}
		for k, vs := range c.headers {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		c.mu.Unlock()
		w.WriteHeader(status)
		w.Write([]byte("{}")) //nolint:errcheck
	}))
	return c
}

func (c *fakeCollector) requests(path string) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.bodies[path]...)
}

// decodeTraces folds every /v1/traces request the collector saw into one
// flat span list.
func (c *fakeCollector) decodeTraces(t *testing.T) []OTLPSpan {
	t.Helper()
	var out []OTLPSpan
	for _, body := range c.requests(otlpTracesPath) {
		var req OTLPTraceRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("collector got unparsable trace request: %v", err)
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				out = append(out, ss.Spans...)
			}
		}
	}
	return out
}

// decodeMetrics folds every /v1/metrics request into one flat metric list.
func (c *fakeCollector) decodeMetrics(t *testing.T) []OTLPMetric {
	t.Helper()
	var out []OTLPMetric
	for _, body := range c.requests(otlpMetricsPath) {
		var req OTLPMetricsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("collector got unparsable metrics request: %v", err)
		}
		for _, rm := range req.ResourceMetrics {
			for _, sm := range rm.ScopeMetrics {
				out = append(out, sm.Metrics...)
			}
		}
	}
	return out
}

// TestOTLPRoundTrip is the acceptance check: everything the collector
// receives reconciles exactly with Tracer.Spans() and Registry.Snapshot().
func TestOTLPRoundTrip(t *testing.T) {
	o := buildGoldenObserver()
	c := newFakeCollector()
	defer c.srv.Close()
	exp := NewOTLPExporter(c.srv.URL, OTLPOptions{Identity: testIdentity})
	exp.ExportObserver(o, []int{0, 1}, 0)
	if err := exp.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if exp.Dropped() != 0 {
		t.Fatalf("dropped %d items against a healthy collector", exp.Dropped())
	}

	// Spans: every closed span of ranks 0,1 + driver, none invented.
	var want []Span
	for _, r := range []int{0, 1} {
		want = append(want, o.Tracer(r).Spans()...)
	}
	want = append(want, o.Driver().Spans()...)
	got := c.decodeTraces(t)
	if len(got) != len(want) {
		t.Fatalf("collector saw %d spans, observer holds %d", len(got), len(want))
	}
	traceID := testIdentity.TraceID()
	bySpanID := map[string]OTLPSpan{}
	for _, s := range got {
		if s.TraceID != traceID {
			t.Errorf("span %s: traceId %s, want %s", s.Name, s.TraceID, traceID)
		}
		if s.Kind != otlpSpanKindInternal {
			t.Errorf("span %s: kind %d, want internal", s.Name, s.Kind)
		}
		bySpanID[s.SpanID] = s
	}
	for _, w := range want {
		s, ok := bySpanID[testIdentity.SpanID(w.Rank, w.Seq)]
		if !ok {
			t.Errorf("span rank=%d seq=%d name=%s missing from export", w.Rank, w.Seq, w.Name)
			continue
		}
		if s.Name != w.Name || s.StartTimeUnixNano != unano(w.Start) || s.EndTimeUnixNano != unano(w.Start+w.Dur) {
			t.Errorf("span mismatch: got %+v want %+v", s, w)
		}
	}

	// Metrics: every registry key arrives with the right shape and values.
	snap := o.Registry().Snapshot()
	metrics := c.decodeMetrics(t)
	byName := map[string]OTLPMetric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}
	wantMetrics := len(snap.Counters) + len(snap.Gauges) + len(snap.PerRank) + len(snap.Histograms)
	if len(byName) != wantMetrics {
		t.Fatalf("collector saw %d metrics, registry holds %d", len(byName), wantMetrics)
	}
	for k, v := range snap.Counters {
		m := byName[k]
		if m.Sum == nil || len(m.Sum.DataPoints) != 1 || m.Sum.DataPoints[0].AsInt != unano(v) || !m.Sum.IsMonotonic {
			t.Errorf("counter %s: %+v, want monotonic sum %d", k, m, v)
		}
	}
	for k, v := range snap.Gauges {
		m := byName[k]
		if m.Gauge == nil || len(m.Gauge.DataPoints) != 1 || m.Gauge.DataPoints[0].AsInt != unano(v) {
			t.Errorf("gauge %s: %+v, want %d", k, m, v)
		}
	}
	for k, vals := range snap.PerRank {
		m := byName[k]
		if m.Sum == nil || len(m.Sum.DataPoints) != len(vals) {
			t.Errorf("vec %s: %+v, want %d points", k, m, len(vals))
			continue
		}
		for i, v := range vals {
			if m.Sum.DataPoints[i].AsInt != unano(v) {
				t.Errorf("vec %s[%d]: %s, want %d", k, i, m.Sum.DataPoints[i].AsInt, v)
			}
		}
	}
	for k, h := range snap.Histograms {
		m := byName[k]
		if m.Histogram == nil || len(m.Histogram.DataPoints) != 1 {
			t.Errorf("histogram %s: %+v", k, m)
			continue
		}
		p := m.Histogram.DataPoints[0]
		if p.Count != unano(h.Count) || p.Sum != float64(h.Sum) ||
			len(p.BucketCounts) != len(h.Counts) || len(p.ExplicitBounds) != len(h.Bounds) {
			t.Errorf("histogram %s: %+v, want %+v", k, p, h)
		}
	}
	// Item accounting matches what went over the wire.
	var points int64
	for _, m := range metrics {
		switch {
		case m.Sum != nil:
			points += int64(len(m.Sum.DataPoints))
		case m.Gauge != nil:
			points += int64(len(m.Gauge.DataPoints))
		case m.Histogram != nil:
			points += int64(len(m.Histogram.DataPoints))
		}
	}
	if want := int64(len(got)) + points; exp.Exported() != want {
		t.Errorf("Exported()=%d, want %d", exp.Exported(), want)
	}
}

// goldenCheck compares got against testdata/<name>, regenerating under
// OBS_UPDATE_GOLDEN=1 like the Chrome export golden.
func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with OBS_UPDATE_GOLDEN=1 go test ./internal/obs)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\ngot:  %s\nwant: %s", name, got, want)
	}
}

func TestOTLPEncodingGolden(t *testing.T) {
	o := buildGoldenObserver()
	var spans []Span
	for _, r := range []int{0, 1} {
		spans = append(spans, o.Tracer(r).Spans()...)
	}
	spans = append(spans, o.Driver().Spans()...)
	traceBody, err := json.Marshal(EncodeOTLPSpans(spans, testIdentity))
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "otlp_traces_golden.json", traceBody)

	metricBody, err := json.Marshal(EncodeOTLPMetrics(o.Registry().Snapshot(), testIdentity, 1_000_000, 9_000_000))
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "otlp_metrics_golden.json", metricBody)
}

// TestOTLPRetryBackoff: a 503 burst with Retry-After is retried (honoring the
// header) and delivered once the collector recovers; nothing is dropped.
func TestOTLPRetryBackoff(t *testing.T) {
	c := newFakeCollector()
	defer c.srv.Close()
	c.mu.Lock()
	c.statuses = []int{http.StatusServiceUnavailable, http.StatusTooManyRequests}
	c.headers.Set("Retry-After", "7")
	c.mu.Unlock()

	var slept []time.Duration
	var sleptMu sync.Mutex
	exp := NewOTLPExporter(c.srv.URL, OTLPOptions{Identity: testIdentity, MaxRetries: 5})
	exp.sleep = func(d time.Duration) {
		sleptMu.Lock()
		slept = append(slept, d)
		sleptMu.Unlock()
	}
	exp.ExportSpans([]Span{{Seq: 1, Rank: 0, Name: "phase", Start: 1, Dur: 2}}, 0)
	if err := exp.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if exp.Exported() != 1 || exp.Dropped() != 0 {
		t.Fatalf("exported=%d dropped=%d, want 1/0", exp.Exported(), exp.Dropped())
	}
	if exp.Retries() != 2 {
		t.Errorf("retries=%d, want 2", exp.Retries())
	}
	sleptMu.Lock()
	defer sleptMu.Unlock()
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (%v)", len(slept), slept)
	}
	for i, d := range slept {
		if d != 7*time.Second { // Retry-After overrides computed backoff
			t.Errorf("sleep %d = %v, want 7s from Retry-After", i, d)
		}
	}
}

// TestOTLPExhaustedRetriesDrop: a collector that only ever answers 500 costs
// maxRetries+1 attempts and then a counted drop, mirrored into the registry.
func TestOTLPExhaustedRetriesDrop(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	reg := NewRegistry()
	exp := NewOTLPExporter(srv.URL, OTLPOptions{Identity: testIdentity, MaxRetries: 2, Registry: reg})
	exp.sleep = func(time.Duration) {}
	exp.ExportSpans([]Span{{Seq: 1, Rank: 0, Name: "phase", Start: 1, Dur: 2}}, 0)
	if err := exp.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts=%d, want 3 (1 + 2 retries)", got)
	}
	if exp.Dropped() != 1 || exp.Exported() != 0 {
		t.Errorf("dropped=%d exported=%d, want 1/0", exp.Dropped(), exp.Exported())
	}
	if got := reg.Counter("obs.otlp_dropped").Load(); got != 1 {
		t.Errorf("obs.otlp_dropped=%d, want 1", got)
	}
}

// TestOTLPPermanent4xxDrops: a permanent client error drops immediately, no
// retries.
func TestOTLPPermanent4xxDrops(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()
	exp := NewOTLPExporter(srv.URL, OTLPOptions{Identity: testIdentity})
	exp.sleep = func(time.Duration) {}
	exp.ExportSpans([]Span{{Seq: 1, Rank: 0, Name: "phase", Start: 1, Dur: 2}}, 0)
	if err := exp.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 1 {
		t.Errorf("attempts=%d, want 1 (400 is permanent)", attempts.Load())
	}
	if exp.Dropped() != 1 {
		t.Errorf("dropped=%d, want 1", exp.Dropped())
	}
}

// TestOTLPRefusedConnection: an unreachable collector never blocks export or
// Close; everything is retried then counted as dropped.
func TestOTLPRefusedConnection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // the port now refuses connections
	exp := NewOTLPExporter(url, OTLPOptions{Identity: testIdentity, MaxRetries: 1})
	exp.sleep = func(time.Duration) {}
	exp.ExportSpans([]Span{{Seq: 1, Rank: 0, Name: "phase", Start: 1, Dur: 2}}, 0)
	if err := exp.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if exp.Dropped() != 1 || exp.Exported() != 0 {
		t.Errorf("dropped=%d exported=%d, want 1/0", exp.Dropped(), exp.Exported())
	}
}

// TestOTLPSlowCollectorBoundedQueue: with the delivery goroutine wedged on a
// slow collector, enqueueing more batches than the queue holds drops the
// excess immediately instead of blocking or growing memory.
func TestOTLPSlowCollectorBoundedQueue(t *testing.T) {
	release := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(wedged.Done)
		<-release // wedge every request until the test lets go
	}))
	defer srv.Close()
	defer close(release)

	const queueCap = 2
	exp := NewOTLPExporter(srv.URL, OTLPOptions{Identity: testIdentity, QueueCap: queueCap, MaxRetries: 1})
	span := func(seq uint64) []Span { return []Span{{Seq: seq, Rank: 0, Name: "phase", Start: 1, Dur: 2}} }
	exp.ExportSpans(span(1), 0) // picked up by the delivery goroutine, wedges
	wedged.Wait()
	// Fill the queue, then overflow it: every batch past queueCap must drop.
	const extra = 5
	for i := 0; i < queueCap+extra; i++ {
		exp.ExportSpans(span(uint64(i+2)), 0)
	}
	if got := exp.Dropped(); got != extra {
		t.Errorf("dropped=%d, want %d (queue holds %d)", got, extra, queueCap)
	}
	// Close with the collector still wedged: bounded by the timeout, and the
	// pending batches are accounted, not silently lost.
	if err := exp.Close(50 * time.Millisecond); err == nil {
		t.Error("Close returned nil with a wedged collector, want drain-timeout error")
	}
}

// TestOTLPNilExporter: the disabled exporter accepts every call and reports
// zeros — the nil no-op contract extended to the export pipeline.
func TestOTLPNilExporter(t *testing.T) {
	var exp *OTLPExporter
	if exp2 := NewOTLPExporter("", OTLPOptions{}); exp2 != nil {
		t.Fatal("empty endpoint must yield the nil exporter")
	}
	exp.ExportSpans([]Span{{Seq: 1}}, 0)
	exp.ExportMetrics(NewRegistry().Snapshot(), 0)
	exp.ExportObserver(buildGoldenObserver(), []int{0, 1}, 0)
	if err := exp.Close(time.Second); err != nil {
		t.Fatal(err)
	}
	if exp.Exported() != 0 || exp.Dropped() != 0 || exp.Retries() != 0 {
		t.Error("nil exporter must report zeros")
	}
}

// TestOTLPDisabledZeroAlloc extends the zero-alloc contract to the exporter.
func TestOTLPDisabledZeroAlloc(t *testing.T) {
	var exp *OTLPExporter
	spans := []Span{{Seq: 1, Rank: 0, Name: "x", Start: 1, Dur: 2}}
	if allocs := testing.AllocsPerRun(100, func() {
		exp.ExportSpans(spans, 0)
		_ = exp.Exported()
		_ = exp.Dropped()
	}); allocs != 0 {
		t.Errorf("nil exporter: %v allocs/op, want 0", allocs)
	}
}

// TestSpansOfEventsRoundTrip: a Chrome trace file converts back to spans that
// carry the same names, ranks, times, and traffic as the original export.
func TestSpansOfEventsRoundTrip(t *testing.T) {
	o := buildGoldenObserver()
	var buf bytes.Buffer
	if err := o.WriteChrome(&buf, []int{0, 1}, 0); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spans := SpansOfEvents(tf.Events)
	var want []Span
	for _, r := range []int{0, 1} {
		want = append(want, o.Tracer(r).Spans()...)
	}
	want = append(want, o.Driver().Spans()...)
	if len(spans) != len(want) {
		t.Fatalf("converted %d spans, want %d", len(spans), len(want))
	}
	type key struct {
		rank  int
		name  string
		start int64
	}
	byKey := map[key]Span{}
	for _, s := range spans {
		byKey[key{s.Rank, s.Name, s.Start}] = s
	}
	for _, w := range want {
		s, ok := byKey[key{w.Rank, w.Name, w.Start}]
		if !ok {
			t.Errorf("span %s (rank %d) lost in conversion", w.Name, w.Rank)
			continue
		}
		if s.Dur != w.Dur || s.Msgs != w.Msgs || s.Bytes != w.Bytes || s.Detail != w.Detail {
			t.Errorf("span %s: got %+v want %+v", w.Name, s, w)
		}
	}
}
