package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// OTLPExporter ships encoded OTLP/JSON request bodies to an OTLP/HTTP
// collector from a background goroutine. The contract mirrors the rest of the
// subsystem: a nil exporter is a valid disabled exporter (every method is a
// nil-check no-op), and a live exporter can never block or fail the run —
// enqueueing is non-blocking (a full queue drops the batch and counts it),
// delivery errors are retried with exponential backoff honoring
// Retry-After/429/503 semantics and finally counted as drops, never surfaced
// as run errors. Memory is bounded by queueCap × batch size.
type OTLPExporter struct {
	endpoint string
	id       OTLPIdentity
	client   *http.Client
	queue    chan otlpBatch
	done     chan struct{}
	// mu guards closed vs. the channel close: enqueue holds the read side so
	// Close cannot close the queue between the closed check and the send.
	mu       sync.RWMutex
	closed   bool
	closeOne sync.Once

	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
	now         func() int64
	sleep       func(time.Duration) // replaceable by tests

	// Outcome accounting. Items are spans or metric data points.
	exported atomic.Int64 // items delivered (2xx)
	dropped  atomic.Int64 // items lost: full queue, exhausted retries, or non-retryable status
	retries  atomic.Int64 // delivery attempts beyond the first

	// droppedCtr mirrors dropped into the run's registry (obs.otlp_dropped)
	// so drop accounting rides along every metrics export and trace sidecar.
	droppedCtr  *Counter
	exportedCtr *Counter
}

// otlpBatch is one pre-encoded HTTP request: body and target path, plus the
// item count it carries for the outcome accounting.
type otlpBatch struct {
	path  string
	body  []byte
	items int64
}

// OTLPOptions configures NewOTLPExporter. The zero value of every field
// selects a sane default.
type OTLPOptions struct {
	// Identity pins the resource attributes and trace identity.
	Identity OTLPIdentity
	// QueueCap bounds the number of in-flight batches (default 64); when the
	// queue is full new batches are dropped and counted, never blocked on.
	QueueCap int
	// BatchSpans caps spans per trace request (default 512).
	BatchSpans int
	// MaxRetries bounds delivery attempts per batch (default 4 retries).
	MaxRetries int
	// BackoffBase is the first retry delay, doubling per attempt up to
	// BackoffMax (defaults 250ms and 5s). A Retry-After response header
	// overrides the computed delay.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client is the HTTP client (default: 10s timeout).
	Client *http.Client
	// Registry, when set, receives the obs.otlp_dropped / obs.otlp_exported
	// counters.
	Registry *Registry
	// Now is the clock for metric data-point timestamps (tests).
	Now func() int64
}

// NewOTLPExporter starts the background delivery goroutine for the given
// OTLP/HTTP base endpoint (e.g. http://localhost:4318 — the standard
// /v1/traces and /v1/metrics paths are appended). Returns nil — the disabled
// exporter — when endpoint is empty.
func NewOTLPExporter(endpoint string, opt OTLPOptions) *OTLPExporter {
	if endpoint == "" {
		return nil
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = 64
	}
	if opt.BatchSpans <= 0 {
		opt.BatchSpans = 512
	}
	if opt.MaxRetries <= 0 {
		opt.MaxRetries = 4
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 250 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if opt.Now == nil {
		opt.Now = wallNow
	}
	e := &OTLPExporter{
		endpoint:    trimSlash(endpoint),
		id:          opt.Identity,
		client:      opt.Client,
		queue:       make(chan otlpBatch, opt.QueueCap),
		done:        make(chan struct{}),
		maxRetries:  opt.MaxRetries,
		backoffBase: opt.BackoffBase,
		backoffMax:  opt.BackoffMax,
		now:         opt.Now,
		sleep:       time.Sleep,
		droppedCtr:  opt.Registry.Counter("obs.otlp_dropped"),
		exportedCtr: opt.Registry.Counter("obs.otlp_exported"),
	}
	go e.run()
	return e
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// run is the delivery goroutine: it drains the queue until Close.
func (e *OTLPExporter) run() {
	defer close(e.done)
	for b := range e.queue {
		e.deliver(b)
	}
}

// ExportSpans encodes and enqueues the given spans, split into bounded
// per-request batches. Safe on a nil exporter.
func (e *OTLPExporter) ExportSpans(spans []Span, batchSpans int) {
	if e == nil {
		return
	}
	e.ExportSpansFor(spans, e.id, batchSpans)
}

// ExportSpansFor is ExportSpans under an explicit per-batch identity — the
// serving daemon runs one long-lived exporter but gives every job its own
// trace id and run id, so the identity travels with the spans rather than
// with the exporter. Safe on a nil exporter.
func (e *OTLPExporter) ExportSpansFor(spans []Span, id OTLPIdentity, batchSpans int) {
	if e == nil || len(spans) == 0 {
		return
	}
	if batchSpans <= 0 {
		batchSpans = 512
	}
	for lo := 0; lo < len(spans); lo += batchSpans {
		hi := lo + batchSpans
		if hi > len(spans) {
			hi = len(spans)
		}
		chunk := spans[lo:hi]
		body, err := json.Marshal(EncodeOTLPSpans(chunk, id))
		if err != nil {
			e.drop(int64(len(chunk)))
			continue
		}
		e.enqueue(otlpBatch{path: otlpTracesPath, body: body, items: int64(len(chunk))})
	}
}

// ExportMetrics encodes and enqueues one registry snapshot. startNanos marks
// the start of the cumulative window (0 = unknown). Safe on a nil exporter.
func (e *OTLPExporter) ExportMetrics(s *MetricsSnapshot, startNanos int64) {
	if e == nil || s == nil {
		return
	}
	req := EncodeOTLPMetrics(s, e.id, startNanos, e.now())
	var items int64
	for _, rm := range req.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				switch {
				case m.Sum != nil:
					items += int64(len(m.Sum.DataPoints))
				case m.Gauge != nil:
					items += int64(len(m.Gauge.DataPoints))
				case m.Histogram != nil:
					items += int64(len(m.Histogram.DataPoints))
				}
			}
		}
	}
	if items == 0 {
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		e.drop(items)
		return
	}
	e.enqueue(otlpBatch{path: otlpMetricsPath, body: body, items: items})
}

// ExportObserver ships the observer's spans (per local rank, plus the
// driver's) and its registry snapshot. Safe on nil exporter or observer.
func (e *OTLPExporter) ExportObserver(o *Observer, localRanks []int, batchSpans int) {
	if e == nil || o == nil {
		return
	}
	var startNanos int64
	for _, r := range localRanks {
		spans := o.Tracer(r).Spans()
		if len(spans) > 0 && (startNanos == 0 || spans[0].Start < startNanos) {
			startNanos = spans[0].Start
		}
		e.ExportSpans(spans, batchSpans)
	}
	e.ExportSpans(o.Driver().Spans(), batchSpans)
	e.ExportMetrics(o.Registry().Snapshot(), startNanos)
}

// enqueue hands a batch to the delivery goroutine without ever blocking: a
// full queue (slow or unreachable collector) drops the batch and counts it.
func (e *OTLPExporter) enqueue(b otlpBatch) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.drop(b.items)
		return
	}
	select {
	case e.queue <- b:
	default:
		e.drop(b.items)
	}
}

func (e *OTLPExporter) drop(items int64) {
	e.dropped.Add(items)
	e.droppedCtr.Add(items)
}

// deliver POSTs one batch, retrying transient failures with exponential
// backoff. 429/503 Retry-After is honored; other 4xx statuses are permanent
// and drop immediately.
func (e *OTLPExporter) deliver(b otlpBatch) {
	delay := e.backoffBase
	for attempt := 0; ; attempt++ {
		resp, err := e.client.Post(e.endpoint+b.path, "application/json", bytes.NewReader(b.body))
		var status int
		var retryAfter time.Duration
		if err == nil {
			status = resp.StatusCode
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for keep-alive
			resp.Body.Close()
			if status >= 200 && status < 300 {
				e.exported.Add(b.items)
				e.exportedCtr.Add(b.items)
				return
			}
			if !retryableStatus(status) {
				e.drop(b.items)
				return
			}
		}
		if attempt >= e.maxRetries {
			e.drop(b.items)
			return
		}
		e.retries.Add(1)
		wait := delay
		if wait > e.backoffMax {
			wait = e.backoffMax
		}
		if retryAfter > 0 {
			wait = retryAfter // the collector's explicit delay beats our backoff cap
		}
		e.sleep(wait)
		if delay *= 2; delay > e.backoffMax {
			delay = e.backoffMax
		}
	}
}

// retryableStatus reports whether the collector's answer is transient:
// timeout, throttling, or a 5xx burst.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusRequestTimeout, http.StatusTooManyRequests:
		return true
	}
	return status >= 500
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header
// (the HTTP-date form is not worth a clock dependency here).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Close stops accepting batches, waits up to timeout for the queue to drain,
// and returns an error when the deadline passed with batches still pending.
// Safe on a nil exporter and safe to call twice.
func (e *OTLPExporter) Close(timeout time.Duration) error {
	if e == nil {
		return nil
	}
	e.closeOne.Do(func() {
		e.mu.Lock()
		e.closed = true
		close(e.queue)
		e.mu.Unlock()
	})
	select {
	case <-e.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("obs: otlp exporter still draining after %v (pending batches dropped)", timeout)
	}
}

// Exported reports items (spans + metric data points) delivered (0 on nil).
func (e *OTLPExporter) Exported() int64 {
	if e == nil {
		return 0
	}
	return e.exported.Load()
}

// Dropped reports items lost to a full queue, exhausted retries, or a
// permanent collector error (0 on nil).
func (e *OTLPExporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Retries reports delivery attempts beyond each batch's first (0 on nil).
func (e *OTLPExporter) Retries() int64 {
	if e == nil {
		return 0
	}
	return e.retries.Load()
}
