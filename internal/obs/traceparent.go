package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"os"
	"sync/atomic"
	"time"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) helpers: the
// serving layer accepts a `traceparent` request header on job submissions so
// a caller's distributed trace continues through the daemon, and mints a
// fresh trace id when none arrives. Only the `00` version's shape is
// produced; any version is accepted on parse (per the spec, unknown versions
// are read as version 00 when the tail fits).

// TraceIDLen and SpanIDLen are the hex lengths of W3C/OTLP ids.
const (
	TraceIDLen = 32
	SpanIDLen  = 16
)

// tpFallback seeds the degraded-entropy path: crypto/rand should never fail,
// but a trace id is not worth failing a request over.
var tpFallback atomic.Uint64

func randHex(nbytes int) string {
	b := make([]byte, nbytes)
	if _, err := rand.Read(b); err != nil {
		// Degraded path: time+pid+counter still gives per-request-unique ids.
		v := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ tpFallback.Add(0x9e3779b97f4a7c15)
		binary.BigEndian.PutUint64(b[:8], v)
	}
	if allZero(b) {
		b[0] = 1 // the all-zero id is invalid in both W3C and OTLP
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a random 16-byte trace id, lowercase hex.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a random 8-byte span id, lowercase hex.
func NewSpanID() string { return randHex(8) }

// ParseTraceparent reads a traceparent header value and returns the caller's
// trace id and parent span id (both lowercase hex). ok is false on anything
// malformed — the wrong shape, non-hex digits, the forbidden all-zero ids,
// or the invalid version ff — in which case the caller should mint a fresh
// trace rather than propagate garbage.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	// version(2)-traceid(32)-spanid(16)-flags(2), with dashes: 55 chars
	// minimum; a future version may append fields after the flags.
	if len(h) < 55 {
		return "", "", false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver, tid, sid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(ver) || !isLowerHex(tid) || !isLowerHex(sid) || !isLowerHex(flags) {
		return "", "", false
	}
	if ver == "ff" {
		return "", "", false
	}
	if ver == "00" && len(h) != 55 {
		return "", "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", "", false
	}
	if allZeroHex(tid) || allZeroHex(sid) {
		return "", "", false
	}
	return tid, sid, true
}

// Traceparent renders a version-00 traceparent value with the sampled flag
// set — what the serving layer hands a runtime, and what clients send to
// continue a trace.
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
