package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceparentMintParseRoundtrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != TraceIDLen || len(sid) != SpanIDLen {
		t.Fatalf("id lengths: trace=%d span=%d", len(tid), len(sid))
	}
	h := Traceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("roundtrip %q -> (%q, %q, %v)", h, gotT, gotS, ok)
	}
	if NewTraceID() == tid {
		t.Fatal("two minted trace ids collided")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	// A future version with a trailing field still parses.
	future := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-what"
	if tid, _, ok := ParseTraceparent(future); !ok || tid != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("future-version header rejected: %q", future)
	}
	bad := []string{
		"",
		"00",
		strings.ToUpper(valid), // uppercase hex
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",    // invalid version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",    // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",    // zero span id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x",  // v00 with a tail
		"00-0af7651916cd43dd8448eb211c80319cX-b7ad6b716920333-01",    // shifted dashes
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",    // non-hex
		"cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01xyz", // tail without dash
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted malformed traceparent %q", h)
		}
	}
}

func TestSpanParentingInOTLPEncoding(t *testing.T) {
	tr := NewTracer(DriverRank, 16)
	base := time.Unix(100, 0)
	nowNanos := base.UnixNano()
	tr.now = func() int64 { nowNanos += 1e6; return nowNanos }

	root := tr.BeginUnder("serve.job", 0)
	child := tr.BeginUnder("serve.admit", root)
	tr.End(child)
	retro := tr.ObserveUnder("serve.run", base, 0, root)
	if retro == 0 {
		t.Fatal("ObserveUnder returned token 0 on a live tracer")
	}
	tr.End(root)

	id := OTLPIdentity{
		RunID:         "job-1",
		TraceIDHex:    "0af7651916cd43dd8448eb211c80319c",
		ParentSpanHex: "b7ad6b7169203331",
	}
	req := EncodeOTLPSpans(tr.Spans(), id)
	if len(req.ResourceSpans) != 1 {
		t.Fatalf("resourceSpans = %d, want 1", len(req.ResourceSpans))
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	byName := map[string]OTLPSpan{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	job, ok := byName["serve.job"]
	if !ok {
		t.Fatalf("serve.job span missing; got %d spans", len(spans))
	}
	if job.TraceID != id.TraceIDHex {
		t.Errorf("traceId = %q, want the pinned %q", job.TraceID, id.TraceIDHex)
	}
	// Parent==0 spans inherit the identity's enclosing span.
	if job.ParentSpanID != id.ParentSpanHex {
		t.Errorf("root parentSpanId = %q, want %q", job.ParentSpanID, id.ParentSpanHex)
	}
	// Parented spans — live and retroactive — point at the root's span id.
	for _, name := range []string{"serve.admit", "serve.run"} {
		if got := byName[name].ParentSpanID; got != job.SpanID {
			t.Errorf("%s parentSpanId = %q, want root %q", name, got, job.SpanID)
		}
	}
	// Without an override the derived trace id and empty parent are unchanged.
	plain := EncodeOTLPSpans(tr.Spans(), OTLPIdentity{RunID: "job-1"})
	p := plain.ResourceSpans[0].ScopeSpans[0].Spans[0]
	if p.TraceID != (OTLPIdentity{RunID: "job-1"}).TraceID() {
		t.Errorf("derived traceId changed: %q", p.TraceID)
	}
	if p.Name == "serve.job" && p.ParentSpanID != "" {
		t.Errorf("unparented root gained parentSpanId %q", p.ParentSpanID)
	}
}
