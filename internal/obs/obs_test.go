package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock returns a deterministic now() advancing 1ms per call.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1_000_000
		return t
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(0, 4)
	tr.now = fakeClock()
	const total = 10
	for i := 0; i < total; i++ {
		tok := tr.Begin("phase")
		tr.EndN(tok, int64(i))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(spans))
	}
	// Oldest-first, and only the newest survive the wrap.
	for i, s := range spans {
		wantN := int64(total - 4 + i)
		if s.N != wantN {
			t.Errorf("span %d: N=%d, want %d", i, s.N, wantN)
		}
		if i > 0 && spans[i-1].Seq >= s.Seq {
			t.Errorf("spans out of order: seq %d then %d", spans[i-1].Seq, s.Seq)
		}
	}
	if tr.Recorded() != total {
		t.Errorf("Recorded()=%d, want %d", tr.Recorded(), total)
	}
	if dropped := tr.Recorded() - uint64(len(spans)); dropped != total-4 {
		t.Errorf("dropped=%d, want %d", dropped, total-4)
	}
}

func TestWraparoundDropsOpenSpan(t *testing.T) {
	tr := NewTracer(0, 2)
	tr.now = fakeClock()
	stale := tr.Begin("outer")
	// Wrap the ring past the open slot.
	for i := 0; i < 3; i++ {
		tr.End(tr.Begin("inner"))
	}
	tr.End(stale) // must not corrupt whatever now occupies the slot
	for _, s := range tr.Spans() {
		if s.Name == "outer" {
			t.Fatalf("overwritten span resurfaced: %+v", s)
		}
		if s.Dur < 0 {
			t.Fatalf("open span leaked out of Spans(): %+v", s)
		}
	}
}

func TestSpanTrafficDeltas(t *testing.T) {
	tr := NewTracer(0, 8)
	tr.now = fakeClock()
	var msgs, bytes int64
	tr.SetStatsFunc(func() (int64, int64) { return msgs, bytes })
	tok := tr.Begin("send-phase")
	msgs, bytes = 7, 1000
	tr.End(tok)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Msgs != 7 || spans[0].Bytes != 1000 {
		t.Fatalf("got %+v, want msgs=7 bytes=1000", spans)
	}
}

// TestDisabledZeroAlloc asserts the overhead contract: with observability off
// (nil instruments) the instrumented hot paths allocate nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	var ctr *Counter
	var h *Histogram
	cases := map[string]func(){
		"tracer": func() {
			tok := tr.Begin("x")
			tr.BeginDetail("y")
			tr.EndN(tok, 1)
			tr.Observe("z", time.Time{}, 0)
		},
		"counter":   func() { ctr.Add(3); ctr.Inc(); _ = ctr.Load() },
		"histogram": func() { h.Observe(42) },
		"registry":  func() { reg.Counter("a").Add(1); reg.Vec("b", 4).At(0).Inc() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the disabled path, want 0", name, allocs)
		}
	}
}

// TestEnabledSpanZeroAlloc: even enabled, spans write into the pre-allocated
// ring without allocating.
func TestEnabledSpanZeroAlloc(t *testing.T) {
	tr := NewTracer(0, 1024)
	if allocs := testing.AllocsPerRun(100, func() {
		tr.EndN(tr.Begin("phase"), 1)
	}); allocs != 0 {
		t.Errorf("enabled span: %v allocs/op, want 0", allocs)
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Add(2)
	reg.Counter("c").Inc() // same instrument
	if got := c.Load(); got != 3 {
		t.Errorf("counter=%d, want 3", got)
	}
	reg.Gauge("g").Set(9)
	v := reg.Vec("v", 3)
	v.At(1).Add(5)
	if v.At(99) != nil || v.Len() != 3 {
		t.Errorf("vec bounds: At(99)=%v Len=%d", v.At(99), v.Len())
	}
	h := reg.Histogram("h", ExpBounds(2, 8)) // bounds 2,4,8
	for _, x := range []int64{1, 2, 3, 9} {
		h.Observe(x)
	}
	s := reg.Snapshot()
	if s.Counters["c"] != 3 || s.Gauges["g"] != 9 {
		t.Errorf("snapshot scalars: %+v", s)
	}
	if got := s.PerRank["v"]; len(got) != 3 || got[1] != 5 {
		t.Errorf("snapshot vec: %v", got)
	}
	hs := s.Histograms["h"]
	want := []int64{2, 1, 0, 1} // <=2:{1,2} <=4:{3} <=8:{} inf:{9}
	if hs.Count != 4 || hs.Sum != 15 {
		t.Errorf("hist count=%d sum=%d", hs.Count, hs.Sum)
	}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d: %d, want %d (all %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(1)
	a.Gauge("g").Set(5)
	a.Vec("v", 2).At(0).Add(10)
	a.Histogram("h", []int64{10}).Observe(3)
	b := NewRegistry()
	b.Counter("c").Add(2)
	b.Gauge("g").Set(9)
	b.Vec("v", 4).At(3).Add(7)
	b.Histogram("h", []int64{10}).Observe(30)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["c"] != 3 {
		t.Errorf("merged counter=%d, want 3", s.Counters["c"])
	}
	if s.Gauges["g"] != 9 {
		t.Errorf("merged gauge=%d, want max 9", s.Gauges["g"])
	}
	if v := s.PerRank["v"]; len(v) != 4 || v[0] != 10 || v[3] != 7 {
		t.Errorf("merged vec=%v", v)
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 33 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merged hist=%+v", h)
	}
}

// buildGoldenObserver records a fixed span/metric population under a
// deterministic clock, for the export golden test.
func buildGoldenObserver() *Observer {
	o := NewObserver(2, 8)
	clock := fakeClock()
	for r := 0; r < 2; r++ {
		o.Tracer(r).now = clock
	}
	o.Driver().now = clock

	o.Driver().Observe("driver.partition", time.Unix(0, 0), 2)
	t0 := o.Tracer(0)
	t0.EndN(t0.Begin("match.init"), 100)
	tok := t0.BeginDetail("match.inner")
	t0.EndN(tok, 40)
	t1 := o.Tracer(1)
	t1.EndN(t1.Begin("match.init"), 90)
	t1.Begin("match.outer") // left open: must not export

	reg := o.Registry()
	reg.Counter("mpi.bundle_flushes").Add(12)
	reg.Gauge("mpi.world_size").Set(2)
	vec := reg.Vec("mpi.sent_msgs", 2)
	vec.At(0).Add(3)
	vec.At(1).Add(4)
	reg.Histogram("mpi.bundle_bytes", ExpBounds(64, 256)).Observe(100)
	return o
}

func TestChromeExportGolden(t *testing.T) {
	o := buildGoldenObserver()
	var buf bytes.Buffer
	if err := o.WriteChrome(&buf, []int{0, 1}, 0); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with OBS_UPDATE_GOLDEN=1 go test ./internal/obs)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export drifted from golden file.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	o := buildGoldenObserver()
	dir := t.TempDir()
	for _, name := range []string{"t.json", "t.jsonl"} {
		path := filepath.Join(dir, name)
		if err := o.WriteTraceFile(path, []int{0, 1}, 0); err != nil {
			t.Fatal(err)
		}
		tf, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var complete int
		for _, e := range tf.Events {
			if e.Ph == "X" {
				complete++
			}
		}
		// 4 closed spans (match.outer stayed open; the driver span counts).
		if complete != 4 {
			t.Errorf("%s: %d complete spans, want 4", name, complete)
		}
	}
}

func TestShardMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	// Two single-rank worker shards, as a -launch run writes them.
	for r := 0; r < 2; r++ {
		o := NewObserver(2, 8)
		o.Tracer(r).now = fakeClock()
		tr := o.Tracer(r)
		tr.EndN(tr.Begin("match.init"), int64(r))
		o.Registry().Vec("mpi.sent_msgs", 2).At(r).Add(int64(r + 1))
		o.Registry().Counter("mpi.bundle_flushes").Add(5)
		if err := o.WriteTraceFile(ShardPath(path, r), []int{r}, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := MergeShards(path, 2); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	for _, e := range tf.Events {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans != 2 {
		t.Errorf("merged %d spans, want 2", spans)
	}
	if got := tf.Metrics.Counters["mpi.bundle_flushes"]; got != 10 {
		t.Errorf("merged counter=%d, want 10", got)
	}
	if v := tf.Metrics.PerRank["mpi.sent_msgs"]; len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Errorf("merged vec=%v", v)
	}
	// Shards are consumed by the merge.
	for r := 0; r < 2; r++ {
		if _, err := os.Stat(ShardPath(path, r)); !os.IsNotExist(err) {
			t.Errorf("shard %d not removed after merge", r)
		}
	}
}

func TestObserverMetricsOnly(t *testing.T) {
	o := NewObserver(4, -1)
	if o.Tracer(0) != nil || o.Driver() != nil {
		t.Error("metrics-only observer must have nil tracers")
	}
	if o.Registry() == nil {
		t.Error("metrics-only observer must still carry a registry")
	}
}

func TestFlagsObserver(t *testing.T) {
	f := &Flags{}
	if f.NewObserver(4) != nil {
		t.Error("no outputs requested: observer must be nil")
	}
	f = &Flags{Metrics: "m.json"}
	if o := f.NewObserver(4); o == nil || o.Tracer(0) != nil {
		t.Error("metrics-only flags must produce a ringless observer")
	}
	f = &Flags{Trace: "t.json"}
	if o := f.NewObserver(4); o == nil || o.Tracer(0) == nil {
		t.Error("trace flags must produce tracers")
	}
}
