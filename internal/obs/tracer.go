// Package obs is the observability subsystem of the runtime: a low-overhead
// per-rank event tracer plus a metrics registry (counters, gauges, bounded
// histograms). The paper's entire contribution is a communication profile —
// bundled REQUEST/SUCCEEDED/FAILED traffic for matching, neighbor-only color
// exchange for coloring — and this package is what makes that profile
// visible on a live run instead of only as end-of-run aggregates.
//
// Overhead contract:
//
//   - Disabled (nil *Tracer / nil *Registry): every operation is a nil check
//     and an immediate return — zero allocations, zero atomics, no clock
//     reads. Algorithms instrument unconditionally and pay nothing when
//     observability is off.
//   - Enabled: a span is two clock reads and two writes into a fixed-capacity
//     ring buffer (no allocation; the ring is allocated once up front); a
//     counter update is one atomic add. Span names must be static strings —
//     the tracer stores them by reference and never copies.
//
// A Tracer is owned by a single rank goroutine; the ring is read only after
// the run completes. A Registry is shared and safe for concurrent use,
// including live polling while ranks are in flight — the live HTTP surface
// (ServeLive / LiveSnapshot, polled by dmgm-trace -watch) is built on
// exactly that property.
package obs

import (
	"sort"
	"time"
)

// Span is one completed traced interval on one rank.
type Span struct {
	// Seq is the tracer-local sequence number (monotone; survives ring
	// wraparound, so exports can report how many spans were dropped).
	Seq uint64
	// Rank is the owning rank, or DriverRank for driver-side spans.
	Rank int
	// Name identifies the instrumented phase (a static string).
	Name string
	// Detail marks a nested span (inner loop) as opposed to a top-level
	// phase; analyzers must not sum detail spans into rank busy time.
	Detail bool
	// Parent is the Seq of this span's parent on the same tracer, or 0 for
	// a root span. Parenting is optional — the runtime's flat per-rank
	// phase spans leave it 0 — and exists for callers that record a span
	// tree (the serving layer's per-job lifecycle trace). Exporters map a
	// nonzero Parent onto the parent span's id.
	Parent uint64
	// Start is the wall-clock start in nanoseconds since the Unix epoch
	// (wall time so that shards from different processes align when merged).
	Start int64
	// Dur is the span length in nanoseconds.
	Dur int64
	// N is a free span argument (iteration number, records processed, ...).
	N int64
	// Msgs and Bytes are the rank's sent-message and sent-byte deltas over
	// the span, captured through the stats hook — the per-phase traffic
	// breakdown the paper's evaluation methodology is built on.
	Msgs, Bytes int64
}

// DriverRank marks spans recorded outside any rank (graph IO, partitioning).
const DriverRank = -1

// Tracer records spans for one rank into a fixed-capacity ring buffer. The
// zero-capacity and nil tracers are valid and record nothing.
//
// Two overload policies exist. The default ring evicts the oldest span on
// wraparound, so a long run keeps only its tail. EnableDetailSampling
// switches detail (inner-loop) spans to systematic sampling instead: every
// k-th detail span is admitted into a fixed-size sample buffer, and when the
// buffer fills it is decimated (every other retained sample dropped, k
// doubled), so the retained samples always span the whole run at roughly
// uniform spacing. Coarse (non-detail) spans keep the ring and are always
// recorded. Recorded() counts every Begin in either mode.
type Tracer struct {
	rank int
	ring []Span
	seq  uint64
	// stats, when set, samples the rank's cumulative (sentMsgs, sentBytes)
	// at span boundaries so each span carries its traffic delta.
	stats func() (msgs, bytes int64)
	// now is the clock, replaceable by tests for deterministic exports.
	now func() int64

	// Detail-sampling state (nil samples = default evict policy).
	samples       []Span
	sn            int    // filled prefix of samples
	stride        uint64 // admit every stride-th detail span
	detailSeen    uint64
	openSampleIdx int // index of the open admitted detail span, -1 = none
}

// NewTracer creates a tracer for the given rank with room for capacity
// spans; older spans are overwritten once the ring wraps.
func NewTracer(rank, capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{rank: rank, ring: make([]Span, capacity), now: wallNow}
}

func wallNow() int64 { return time.Now().UnixNano() }

// SetStatsFunc installs the traffic sampler invoked at span boundaries. It
// must be cheap and safe to call from the tracer's owning goroutine.
func (t *Tracer) SetStatsFunc(f func() (msgs, bytes int64)) {
	if t != nil {
		t.stats = f
	}
}

// Begin opens a top-level phase span and returns its token. On a nil tracer
// it costs one comparison and returns 0.
func (t *Tracer) Begin(name string) uint64 {
	if t == nil {
		return 0
	}
	return t.begin(name, false, 0)
}

// BeginUnder opens a span parented under the span whose token is parent —
// how a caller builds an explicit span tree (parent 0 = root). The parent
// is recorded by token only; it need not still occupy a ring slot.
func (t *Tracer) BeginUnder(name string, parent uint64) uint64 {
	if t == nil {
		return 0
	}
	return t.begin(name, false, parent)
}

// BeginDetail opens a nested (inner-loop) span.
func (t *Tracer) BeginDetail(name string) uint64 {
	if t == nil {
		return 0
	}
	return t.begin(name, true, 0)
}

func (t *Tracer) begin(name string, detail bool, parent uint64) uint64 {
	t.seq++
	seq := t.seq
	if detail && t.samples != nil {
		return t.beginSampled(name, seq)
	}
	var m, b int64
	if t.stats != nil {
		m, b = t.stats()
	}
	// The slot temporarily holds the begin-time counters in Msgs/Bytes;
	// End replaces them with deltas. Dur < 0 marks the span as open.
	t.ring[seq%uint64(len(t.ring))] = Span{
		Seq: seq, Rank: t.rank, Name: name, Detail: detail, Parent: parent,
		Start: t.now(), Dur: -1, Msgs: m, Bytes: b,
	}
	return seq
}

// EnableDetailSampling switches the tracer's detail spans from ring eviction
// to systematic sampling (see the type comment). Idempotent; no-op on nil.
func (t *Tracer) EnableDetailSampling() {
	if t == nil || t.samples != nil {
		return
	}
	t.samples = make([]Span, len(t.ring))
	t.stride = 1
	t.openSampleIdx = -1
}

// beginSampled admits every stride-th detail span into the sample buffer.
// Unadmitted spans return token 0, making their End a single comparison;
// the already-bumped t.seq keeps Recorded() counting every begin.
func (t *Tracer) beginSampled(name string, seq uint64) uint64 {
	t.detailSeen++
	if (t.detailSeen-1)%t.stride != 0 {
		return 0
	}
	if t.sn == len(t.samples) {
		t.decimateSamples()
	}
	var m, b int64
	if t.stats != nil {
		m, b = t.stats()
	}
	t.samples[t.sn] = Span{
		Seq: seq, Rank: t.rank, Name: name, Detail: true,
		Start: t.now(), Dur: -1, Msgs: m, Bytes: b,
	}
	t.openSampleIdx = t.sn
	t.sn++
	return seq
}

// decimateSamples keeps every other retained sample and doubles the stride,
// so the buffer always holds a systematic sample of the whole run.
func (t *Tracer) decimateSamples() {
	newOpen := -1
	keep := 0
	for i := 0; i < t.sn; i += 2 {
		if i == t.openSampleIdx {
			newOpen = keep
		}
		t.samples[keep] = t.samples[i]
		keep++
	}
	t.sn = keep
	t.openSampleIdx = newOpen // an open span at an odd index is dropped
	t.stride <<= 1
}

// End closes the span opened under tok. A span whose ring slot was
// overwritten by wraparound is silently dropped.
func (t *Tracer) End(tok uint64) { t.EndN(tok, 0) }

// EndN closes the span and attaches the free argument n.
func (t *Tracer) EndN(tok uint64, n int64) {
	if t == nil || tok == 0 {
		return
	}
	s := &t.ring[tok%uint64(len(t.ring))]
	if t.samples != nil && t.openSampleIdx >= 0 && t.samples[t.openSampleIdx].Seq == tok {
		s = &t.samples[t.openSampleIdx]
		t.openSampleIdx = -1
	}
	if s.Seq != tok || s.Dur >= 0 {
		return // overwritten by wraparound (or already closed)
	}
	s.Dur = t.now() - s.Start
	s.N = n
	if t.stats != nil {
		m, b := t.stats()
		s.Msgs = m - s.Msgs
		s.Bytes = b - s.Bytes
	}
}

// Observe records a retroactive span that started at start and ends now —
// for callers that time a phase themselves (the CLI drivers timing graph IO
// and partitioning before any tracer exists for certain).
func (t *Tracer) Observe(name string, start time.Time, n int64) {
	t.ObserveUnder(name, start, n, 0)
}

// ObserveUnder is Observe with an explicit parent token (0 = root). It
// returns the recorded span's own token so further spans can parent under
// it — the serving layer hangs a job's runtime rank spans under the
// retroactive "run" span this way. Returns 0 on a nil tracer.
func (t *Tracer) ObserveUnder(name string, start time.Time, n int64, parent uint64) uint64 {
	if t == nil {
		return 0
	}
	return t.ObserveSpan(name, start.UnixNano(), t.now()-start.UnixNano(), n, parent)
}

// ObserveSpan records a fully specified retroactive span: start and duration
// in nanoseconds, free argument, parent token (0 = root). It is the
// lowest-level recording entry — for callers that timed an interval on
// another goroutine and hand the measurements over later, like the serving
// layer's partition span measured inside the run goroutine. Returns the
// span's token (0 on nil).
func (t *Tracer) ObserveSpan(name string, startNanos, durNanos, n int64, parent uint64) uint64 {
	if t == nil {
		return 0
	}
	if durNanos < 0 {
		durNanos = 0
	}
	t.seq++
	seq := t.seq
	t.ring[seq%uint64(len(t.ring))] = Span{
		Seq: seq, Rank: t.rank, Name: name, Parent: parent,
		Start: startNanos, Dur: durNanos, N: n,
	}
	return seq
}

// Spans returns the completed spans still held by the tracer — the ring's,
// oldest first, merged with the detail samples when sampling is enabled —
// in sequence order. Call only after the owning goroutine has finished
// recording.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.ring)+t.sn)
	if t.samples != nil {
		// Sampling mode: detail begins bump seq without occupying ring
		// slots, so the ring's sequence numbers are sparse — scan the slots
		// and the sample buffer, then order by sequence.
		for _, s := range t.ring {
			if s.Seq != 0 && s.Dur >= 0 {
				out = append(out, s)
			}
		}
		for i := 0; i < t.sn; i++ {
			if t.samples[i].Dur >= 0 {
				out = append(out, t.samples[i])
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
		return out
	}
	n := uint64(len(t.ring))
	lo := uint64(1)
	if t.seq > n {
		lo = t.seq - n + 1
	}
	for seq := lo; seq <= t.seq; seq++ {
		s := t.ring[seq%n]
		if s.Seq == seq && s.Dur >= 0 {
			out = append(out, s)
		}
	}
	return out
}

// Recorded reports how many spans were ever opened; Recorded() minus
// len(Spans()) is the wraparound-dropped (or never-closed) count.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}
