package obs

// Observer bundles the per-rank tracers and the shared metrics registry of
// one run. A nil Observer is the disabled state: every accessor returns nil
// and the nil instruments make all instrumentation free.
type Observer struct {
	size    int
	spanCap int
	tracers []*Tracer
	driver  *Tracer
	reg     *Registry
}

// DefaultSpanCapacity is the per-rank ring size when the caller does not
// choose one: enough for tens of thousands of outer iterations / supersteps
// at ~100 bytes per span.
const DefaultSpanCapacity = 1 << 16

// NewObserver creates an observer for a job of the given rank count.
// spanCap is the per-rank ring capacity; 0 selects DefaultSpanCapacity, and
// a negative value disables tracing (metrics only).
func NewObserver(ranks, spanCap int) *Observer {
	if spanCap == 0 {
		spanCap = DefaultSpanCapacity
	}
	o := &Observer{size: ranks, spanCap: spanCap, reg: NewRegistry()}
	o.tracers = make([]*Tracer, ranks)
	if spanCap > 0 {
		for r := range o.tracers {
			o.tracers[r] = NewTracer(r, spanCap)
		}
		o.driver = NewTracer(DriverRank, spanCap)
	}
	return o
}

// EnableDetailSampling switches every rank's tracer (and the driver's) from
// ring eviction to systematic detail-span sampling, keeping long-run tails
// representative. No-op on nil or a metrics-only observer.
func (o *Observer) EnableDetailSampling() {
	if o == nil {
		return
	}
	for _, t := range o.tracers {
		t.EnableDetailSampling()
	}
	o.driver.EnableDetailSampling()
}

// Size reports the rank count the observer was built for (0 on nil).
func (o *Observer) Size() int {
	if o == nil {
		return 0
	}
	return o.size
}

// Tracer returns rank r's tracer, or nil when disabled.
func (o *Observer) Tracer(r int) *Tracer {
	if o == nil || r < 0 || r >= len(o.tracers) {
		return nil
	}
	return o.tracers[r]
}

// Driver returns the tracer for work outside any rank (IO, partitioning),
// or nil when disabled.
func (o *Observer) Driver() *Tracer {
	if o == nil {
		return nil
	}
	return o.driver
}

// Registry returns the metrics registry, or nil when disabled.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}
