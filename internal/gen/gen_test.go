package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	parent := NewRNG(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	s1again := parent.Split(1)
	if s1.Next() != s1again.Next() {
		t.Fatal("Split not reproducible")
	}
	if s1.Next() == s2.Next() {
		t.Fatal("distinct streams collided")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(5).Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestEdgeWeightSymmetricAndPositive(t *testing.T) {
	f := func(seed uint64, u, v int64) bool {
		a := EdgeWeight(seed, u, v)
		b := EdgeWeight(seed, v, u)
		return a == b && a >= 1 && a < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DStructure(t *testing.T) {
	g, err := Grid2D(4, 5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 20 {
		t.Fatalf("n = %d, want 20", g.NumVertices())
	}
	// m = k1*(k2-1) + (k1-1)*k2 = 4*4 + 3*5 = 31.
	if g.NumEdges() != 31 {
		t.Fatalf("m = %d, want 31", g.NumEdges())
	}
	// Corners have degree 2, edge-interior 3, interior 4.
	if d := g.Degree(0); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	if d := g.Degree(6); d != 4 { // (1,1)
		t.Errorf("interior degree = %d, want 4", d)
	}
	if !graph.IsConnected(g) {
		t.Error("grid not connected")
	}
}

func TestGrid2DDegenerate(t *testing.T) {
	g, err := Grid2D(1, 7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 || g.MaxDegree() != 2 {
		t.Fatalf("path graph wrong: m=%d maxdeg=%d", g.NumEdges(), g.MaxDegree())
	}
	if _, err := Grid2D(0, 5, false, 0); err == nil {
		t.Fatal("accepted zero dimension")
	}
}

func TestGrid2DWeightsDeterministic(t *testing.T) {
	a, err := Grid2D(6, 6, true, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid2D(6, 6, true, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c, err := Grid2D(6, 6, true, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.W {
		if a.W[i] != c.W[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestGrid2D9Point(t *testing.T) {
	g, err := Grid2D9Point(3, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 9-point 3x3: 5-point has 12 edges, plus 2*(2*2)=8 diagonals = 20.
	if g.NumEdges() != 20 {
		t.Fatalf("m = %d, want 20", g.NumEdges())
	}
	if d := g.Degree(4); d != 8 { // center touches everything
		t.Fatalf("center degree = %d, want 8", d)
	}
}

func TestGrid3DStructure(t *testing.T) {
	g, err := Grid3D(3, 4, 5, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 60 {
		t.Fatalf("n = %d, want 60", g.NumVertices())
	}
	// m = (k1-1)k2k3 + k1(k2-1)k3 + k1k2(k3-1) = 2*20 + 3*3*5 + 12*4 = 40+45+48 = 133.
	if g.NumEdges() != 133 {
		t.Fatalf("m = %d, want 133", g.NumEdges())
	}
	if g.MaxDegree() != 6 {
		t.Fatalf("max degree = %d, want 6", g.MaxDegree())
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(200, 1000, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 1000 {
		t.Fatalf("m = %d, want in (0,1000]", g.NumEdges())
	}
	if _, err := ErdosRenyi(0, 10, false, 0); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 8, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumVertices())
	}
	// Power-law-ish: max degree should far exceed average.
	avg := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 3*avg {
		t.Errorf("max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
	if _, err := RMAT(0, 8, false, 0); err == nil {
		t.Fatal("accepted scale 0")
	}
	if _, err := RMAT(5, 0, false, 0); err == nil {
		t.Fatal("accepted edge factor 0")
	}
}

func TestGeometric(t *testing.T) {
	g, err := Geometric(500, 0.08, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("geometric graph has no edges")
	}
	// Weighted by 2-d: all weights in (1, 2).
	for _, w := range g.W {
		if w <= 1 || w >= 2 {
			t.Fatalf("weight %g out of (1,2)", w)
		}
	}
	if _, err := Geometric(10, 0, false, 0); err == nil {
		t.Fatal("accepted radius 0")
	}
}

func TestRandomBipartite(t *testing.T) {
	b, err := RandomBipartite(100, 100, 5, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateBipartite(); err != nil {
		t.Fatal(err)
	}
	// Every row vertex must have at least one edge (the diagonal-ish entry).
	for r := 0; r < b.NRows; r++ {
		if b.Degree(b.RowID(r)) == 0 {
			t.Fatalf("row %d has no entries", r)
		}
	}
	if _, err := RandomBipartite(0, 5, 1, 0); err == nil {
		t.Fatal("accepted nrows=0")
	}
}

func TestCircuitDegreeEnvelope(t *testing.T) {
	g, err := Circuit(60, 60, 0.45, true, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper reports min degree 2, max degree 6 for the circuit graph.
	if g.MaxDegree() > 6 {
		t.Fatalf("max degree = %d, want <= 6", g.MaxDegree())
	}
	if g.MinDegree() < 2 {
		t.Fatalf("min degree = %d, want >= 2", g.MinDegree())
	}
	avg := float64(g.NumArcs()) / float64(g.NumVertices())
	if avg < 3.0 || avg > 5.0 {
		t.Errorf("average degree %.2f outside circuit-like range [3,5]", avg)
	}
	if !graph.IsConnected(g) {
		t.Error("circuit graph not connected")
	}
}

func TestCircuitBipartite(t *testing.T) {
	b, err := CircuitBipartite(30, 30, 0.45, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateBipartite(); err != nil {
		t.Fatal(err)
	}
	if b.NRows != 900 || b.NCols != 900 {
		t.Fatalf("dimensions %dx%d, want 900x900", b.NRows, b.NCols)
	}
	// Full diagonal present.
	for i := 0; i < b.NRows; i++ {
		if !b.HasEdge(b.RowID(i), b.ColID(i)) {
			t.Fatalf("missing diagonal entry %d", i)
		}
	}
}

func TestBipartiteOf(t *testing.T) {
	g, err := Grid2D(3, 3, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BipartiteOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateBipartite(); err != nil {
		t.Fatal(err)
	}
	// Each undirected edge produces two matrix entries.
	if b.NumEdges() != 2*g.NumEdges() {
		t.Fatalf("bipartite edges = %d, want %d", b.NumEdges(), 2*g.NumEdges())
	}
}

func TestReweightSchemes(t *testing.T) {
	g, err := Grid2D(5, 5, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []WeightScheme{WeightUniform, WeightInteger, WeightDegree, WeightUnit, WeightExponential} {
		w, err := Reweight(g, scheme, 77)
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("scheme %v produced invalid graph: %v", scheme, err)
		}
	}
	unit, _ := Reweight(g, WeightUnit, 0)
	for _, w := range unit.W {
		if w != 1 {
			t.Fatal("WeightUnit produced non-unit weight")
		}
	}
	if _, err := Reweight(g, WeightScheme(99), 0); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

// Property: grids of arbitrary small shape are always valid and connected.
func TestQuickGridsValid(t *testing.T) {
	f := func(a, b uint8) bool {
		k1 := int(a)%9 + 1
		k2 := int(b)%9 + 1
		g, err := Grid2D(k1, k2, true, uint64(a)*256+uint64(b))
		if err != nil {
			return false
		}
		return g.Validate() == nil && graph.IsConnected(g) &&
			g.NumVertices() == k1*k2 &&
			g.NumEdges() == int64(k1*(k2-1)+(k1-1)*k2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
