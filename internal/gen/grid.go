package gen

import (
	"fmt"

	"repro/internal/graph"
)

// Grid2D generates the paper's model problem: a k1 × k2 five-point grid graph
// in which the node at (row, col) connects to its east, west, north and south
// neighbors (except at the boundary). Vertex (r, c) has id r*k2 + c.
//
// Weighted selects the paper's random edge weights (deterministic in seed);
// with Weighted false the graph is unweighted.
func Grid2D(k1, k2 int, weighted bool, seed uint64) (*graph.Graph, error) {
	return grid2D(k1, k2, weighted, false, seed)
}

// Grid2D9Point generates a nine-point grid: the five-point stencil plus the
// four diagonal neighbors. It is used by ablation studies that need a denser
// regular graph with chromatic number > 2.
func Grid2D9Point(k1, k2 int, weighted bool, seed uint64) (*graph.Graph, error) {
	return grid2D(k1, k2, weighted, true, seed)
}

func grid2D(k1, k2 int, weighted, diagonals bool, seed uint64) (*graph.Graph, error) {
	if k1 <= 0 || k2 <= 0 {
		return nil, fmt.Errorf("gen: non-positive grid dimensions %dx%d", k1, k2)
	}
	n := int64(k1) * int64(k2)
	if n > 1<<31-1 {
		return nil, fmt.Errorf("gen: grid %dx%d exceeds 32-bit vertex ids", k1, k2)
	}
	id := func(r, c int) int64 { return int64(r)*int64(k2) + int64(c) }
	perVertex := int64(2)
	if diagonals {
		perVertex = 4
	}
	edges := make([]graph.Edge, 0, n*perVertex)
	add := func(u, v int64) {
		w := 1.0
		if weighted {
			w = EdgeWeight(seed, u, v)
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v), W: w})
	}
	for r := 0; r < k1; r++ {
		for c := 0; c < k2; c++ {
			u := id(r, c)
			if c+1 < k2 {
				add(u, id(r, c+1))
			}
			if r+1 < k1 {
				add(u, id(r+1, c))
			}
			if diagonals {
				if r+1 < k1 && c+1 < k2 {
					add(u, id(r+1, c+1))
				}
				if r+1 < k1 && c > 0 {
					add(u, id(r+1, c-1))
				}
			}
		}
	}
	return graph.BuildUndirected(int(n), edges, graph.DedupeFirst)
}

// Grid3D generates a k1 × k2 × k3 seven-point grid graph (east/west, north/
// south, up/down neighbors), the 3-D analogue of the paper's model problem.
func Grid3D(k1, k2, k3 int, weighted bool, seed uint64) (*graph.Graph, error) {
	if k1 <= 0 || k2 <= 0 || k3 <= 0 {
		return nil, fmt.Errorf("gen: non-positive grid dimensions %dx%dx%d", k1, k2, k3)
	}
	n := int64(k1) * int64(k2) * int64(k3)
	if n > 1<<31-1 {
		return nil, fmt.Errorf("gen: grid %dx%dx%d exceeds 32-bit vertex ids", k1, k2, k3)
	}
	id := func(x, y, z int) int64 {
		return (int64(x)*int64(k2)+int64(y))*int64(k3) + int64(z)
	}
	edges := make([]graph.Edge, 0, 3*n)
	add := func(u, v int64) {
		w := 1.0
		if weighted {
			w = EdgeWeight(seed, u, v)
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v), W: w})
	}
	for x := 0; x < k1; x++ {
		for y := 0; y < k2; y++ {
			for z := 0; z < k3; z++ {
				u := id(x, y, z)
				if z+1 < k3 {
					add(u, id(x, y, z+1))
				}
				if y+1 < k2 {
					add(u, id(x, y+1, z))
				}
				if x+1 < k1 {
					add(u, id(x+1, y, z))
				}
			}
		}
	}
	return graph.BuildUndirected(int(n), edges, graph.DedupeFirst)
}
