package gen

import (
	"fmt"

	"repro/internal/graph"
)

// Circuit generates a circuit-simulation-like graph standing in for the UF
// matrix G3_circuit used in Figures 5.3 and 5.4. The published properties we
// reproduce are: very low, tightly bounded degree (paper: min 2, max 6),
// mesh-like local structure (circuit nets follow placed geometry), and a
// sprinkle of longer-range connections (supply rails, clock spines) that give
// partitioners a nonzero cut to fight over.
//
// Construction: an r × c five-point grid (degrees 2–4) plus extra "tap"
// edges. Each tap joins a random vertex to another vertex at a random offset
// within a local window, and is only inserted while both endpoints have
// degree < 6, preserving the degree envelope. tapFraction is the expected
// number of taps per vertex (G3_circuit's average degree ≈ 3.8 corresponds to
// tapFraction ≈ 0.45 on top of the grid's ≈ 2·(1-1/k) average); a small share
// of taps is long-range.
func Circuit(r, c int, tapFraction float64, weighted bool, seed uint64) (*graph.Graph, error) {
	if r < 2 || c < 2 {
		return nil, fmt.Errorf("gen: circuit grid %dx%d too small", r, c)
	}
	if tapFraction < 0 || tapFraction > 2 {
		return nil, fmt.Errorf("gen: tap fraction %g out of [0,2]", tapFraction)
	}
	n := int64(r) * int64(c)
	if n > 1<<31-1 {
		return nil, fmt.Errorf("gen: circuit %dx%d exceeds 32-bit vertex ids", r, c)
	}
	id := func(row, col int) int64 { return int64(row)*int64(c) + int64(col) }
	deg := make([]uint8, n)
	edges := make([]graph.Edge, 0, n*5/2)
	add := func(u, v int64) {
		w := 1.0
		if weighted {
			w = EdgeWeight(seed, u, v)
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v), W: w})
		deg[u]++
		deg[v]++
	}
	for row := 0; row < r; row++ {
		for col := 0; col < c; col++ {
			u := id(row, col)
			if col+1 < c {
				add(u, id(row, col+1))
			}
			if row+1 < r {
				add(u, id(row+1, col))
			}
		}
	}
	rng := NewRNG(seed ^ 0xc1c1c1c1)
	taps := int64(tapFraction * float64(n))
	const window = 16 // local tap reach, in grid units
	for t := int64(0); t < taps; t++ {
		row := rng.Intn(r)
		col := rng.Intn(c)
		u := id(row, col)
		if deg[u] >= 6 {
			continue
		}
		var vRow, vCol int
		if rng.Intn(20) == 0 {
			// Long-range tap: a rail/spine connection anywhere on the die.
			vRow, vCol = rng.Intn(r), rng.Intn(c)
		} else {
			vRow = row + rng.Intn(2*window+1) - window
			vCol = col + rng.Intn(2*window+1) - window
			if vRow < 0 {
				vRow = 0
			}
			if vRow >= r {
				vRow = r - 1
			}
			if vCol < 0 {
				vCol = 0
			}
			if vCol >= c {
				vCol = c - 1
			}
		}
		v := id(vRow, vCol)
		if v == u || deg[v] >= 6 {
			continue
		}
		add(u, v)
	}
	// Duplicated taps merge in BuildUndirected; the degree envelope only
	// shrinks from merging, so max degree 6 still holds.
	return graph.BuildUndirected(int(n), edges, graph.DedupeFirst)
}

// CircuitBipartite generates the bipartite (matrix) representation of a
// circuit-like graph, as used by the Fig. 5.3 matching experiment, where the
// paper matches on "a bipartite graph of a circuit simulation application"
// with 3.2 M vertices and 7.7 M edges (rows+columns of the matrix and its
// nonzeros, including a full diagonal).
func CircuitBipartite(r, c int, tapFraction float64, seed uint64) (*graph.Bipartite, error) {
	g, err := Circuit(r, c, tapFraction, true, seed)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	entries := make([]graph.Entry, 0, int64(2)*g.NumEdges()+int64(n))
	rng := NewRNG(seed ^ 0xb1b1b1b1)
	for i := 0; i < n; i++ {
		// Diagonal values share the off-diagonal weight scale. (A strongly
		// dominant diagonal would let every vertex match its own diagonal
		// partner during initialization, collapsing the parallel matching's
		// communication phase to nothing — the paper's experiment clearly
		// exercises cross-edge negotiation, so the stand-in must too.)
		entries = append(entries, graph.Entry{Row: i, Col: i, W: 1 + rng.Float64()})
	}
	g.ForEachEdge(func(u, v graph.Vertex, w float64) {
		entries = append(entries, graph.Entry{Row: int(u), Col: int(v), W: w})
		entries = append(entries, graph.Entry{Row: int(v), Col: int(u), W: w})
	})
	return graph.BuildBipartite(n, n, entries, graph.DedupeMax)
}
