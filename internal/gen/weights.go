package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// WeightScheme selects how Reweight assigns edge weights.
type WeightScheme int

const (
	// WeightUniform draws weights uniformly from (1, 2), deterministic per
	// edge — the paper's "random weights" for the grid experiments.
	WeightUniform WeightScheme = iota
	// WeightInteger draws integer weights from [1, 1000]; ties are possible,
	// exercising the algorithms' smallest-label tie-breaking.
	WeightInteger
	// WeightDegree sets w(u,v) = deg(u) + deg(v), correlating weight with
	// density; heavy edges cluster at hubs, an adversarial case for local
	// dominance.
	WeightDegree
	// WeightUnit sets every weight to 1, collapsing maximum-weight matching
	// to maximum-cardinality-style behavior with label tie-breaking.
	WeightUnit
	// WeightExponential draws log-uniform weights in [1, e^6 ≈ 403),
	// mimicking the wide dynamic range of real matrix values (the regime in
	// which greedy matching tracks the optimum most closely — see the
	// Table 1.1 weight-sweep experiment).
	WeightExponential
)

// Reweight returns a copy of g with weights assigned by the scheme.
func Reweight(g *graph.Graph, scheme WeightScheme, seed uint64) (*graph.Graph, error) {
	out := g.Clone()
	if out.W == nil {
		out.W = make([]float64, len(out.Adj))
	}
	for u := 0; u < out.NumVertices(); u++ {
		for i := out.Xadj[u]; i < out.Xadj[u+1]; i++ {
			v := out.Adj[i]
			var w float64
			switch scheme {
			case WeightUniform:
				w = EdgeWeight(seed, int64(u), int64(v))
			case WeightInteger:
				h := EdgeWeight(seed, int64(u), int64(v))
				w = float64(1 + int64((h-1)*1000))
			case WeightDegree:
				w = float64(out.Degree(graph.Vertex(u)) + out.Degree(v))
			case WeightUnit:
				w = 1
			case WeightExponential:
				h := EdgeWeight(seed, int64(u), int64(v)) // (1, 2)
				w = math.Exp(6 * (h - 1))
			default:
				return nil, fmt.Errorf("gen: unknown weight scheme %d", scheme)
			}
			out.W[i] = w
		}
	}
	return out, nil
}
