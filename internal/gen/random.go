package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// ErdosRenyi generates a G(n, m)-style random graph: m undirected edges drawn
// uniformly with replacement and then deduplicated, so the result has at most
// m distinct edges. Weights are uniform in (1, 2) when weighted.
func ErdosRenyi(n int, m int64, weighted bool, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: non-positive vertex count %d", n)
	}
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		w := 1.0
		if weighted {
			w = EdgeWeight(seed, int64(u), int64(v))
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v), W: w})
	}
	return graph.BuildUndirected(n, edges, graph.DedupeFirst)
}

// RMAT generates a recursive-matrix (R-MAT) power-law graph with 2^scale
// vertices and roughly edgeFactor * 2^scale undirected edges, using the
// standard (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities.
// R-MAT graphs have highly skewed degrees — the stress case for the coloring
// algorithm's first-fit strategy and for load balance in matching.
func RMAT(scale int, edgeFactor int, weighted bool, seed uint64) (*graph.Graph, error) {
	if scale <= 0 || scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of (0,30]", scale)
	}
	if edgeFactor <= 0 {
		return nil, fmt.Errorf("gen: non-positive edge factor %d", edgeFactor)
	}
	const a, b, c = 0.57, 0.19, 0.19
	n := 1 << scale
	m := int64(edgeFactor) * int64(n)
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			p := rng.Float64()
			switch {
			case p < a:
				// upper-left: no bits set
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		w := 1.0
		if weighted {
			w = EdgeWeight(seed, int64(u), int64(v))
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v), W: w})
	}
	return graph.BuildUndirected(n, edges, graph.DedupeFirst)
}

// Geometric generates a random geometric graph: n points uniform in the unit
// square, an edge between points closer than radius. Geometric graphs have
// strong locality and partition well — the "well-partitioned" regime of the
// coloring framework. Edge weights, when requested, equal 2 - distance so
// that short edges are heavy.
func Geometric(n int, radius float64, weighted bool, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: non-positive vertex count %d", n)
	}
	if radius <= 0 || radius > 1 {
		return nil, fmt.Errorf("gen: radius %g out of (0,1]", radius)
	}
	rng := NewRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Bucket points into a grid of cells of side radius and only compare
	// points in neighboring cells, for near-linear generation time.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int)
	cellOf := func(i int) [2]int {
		cx := int(xs[i] / radius)
		cy := int(ys[i] / radius)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], i)
	}
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
					if d >= radius {
						continue
					}
					w := 1.0
					if weighted {
						w = 2 - d
					}
					edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(j), W: w})
				}
			}
		}
	}
	return graph.BuildUndirected(n, edges, graph.DedupeFirst)
}

// RandomBipartite generates an nrows × ncols sparse "matrix" with about
// nnzPerRow nonzeros per row, each with a strictly positive random value —
// the Table 1.1 instance family. Every row receives at least one entry so
// that a perfect row matching is plausible, matching the structure of the
// UF matrices used in the paper (square, structurally nonsingular).
func RandomBipartite(nrows, ncols, nnzPerRow int, seed uint64) (*graph.Bipartite, error) {
	if nrows <= 0 || ncols <= 0 || nnzPerRow <= 0 {
		return nil, fmt.Errorf("gen: bad bipartite parameters %dx%d nnz/row %d", nrows, ncols, nnzPerRow)
	}
	rng := NewRNG(seed)
	entries := make([]graph.Entry, 0, nrows*nnzPerRow)
	for r := 0; r < nrows; r++ {
		// A guaranteed "diagonal-ish" entry keeps rows matchable.
		d := r % ncols
		entries = append(entries, graph.Entry{Row: r, Col: d, W: 1 + rng.Float64()*99})
		for k := 1; k < nnzPerRow; k++ {
			entries = append(entries, graph.Entry{
				Row: r, Col: rng.Intn(ncols), W: 1 + rng.Float64()*99,
			})
		}
	}
	return graph.BuildBipartite(nrows, ncols, entries, graph.DedupeMax)
}

// BipartiteOf reinterprets any graph as the bipartite representation of its
// adjacency matrix: row vertex i and column vertex j are joined when {i, j}
// is an edge (both orientations of each edge produce entries, as for a
// structurally symmetric matrix).
func BipartiteOf(g *graph.Graph) (*graph.Bipartite, error) {
	n := g.NumVertices()
	entries := make([]graph.Entry, 0, 2*g.NumEdges())
	g.ForEachEdge(func(u, v graph.Vertex, w float64) {
		entries = append(entries, graph.Entry{Row: int(u), Col: int(v), W: w})
		entries = append(entries, graph.Entry{Row: int(v), Col: int(u), W: w})
	})
	return graph.BuildBipartite(n, n, entries, graph.DedupeMax)
}
