// Package gen produces the synthetic inputs of the evaluation: the 5-point
// grid graphs of Figures 5.1–5.2, circuit-simulation-like graphs standing in
// for the UF G3_circuit matrix of Figures 5.3–5.4, and several irregular
// families (Erdős–Rényi, R-MAT, random geometric, random bipartite) used for
// the Table 1.1 quality study. All generators are deterministic in their
// seed, so every experiment is exactly repeatable, and all of them can emit
// edges with random weights — the paper assigns random edge weights so the
// grid structure "does not play a significant role" in the matching study.
package gen

// RNG is a splitmix64 pseudo-random generator. It is tiny, fast, seedable,
// and — unlike math/rand's global state — safe to shard per rank: each rank
// derives an independent stream with Split, which is how the distributed grid
// generator assigns identical weights to a cross edge from both of its owning
// ranks without communicating.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 uniformly random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent generator for the given stream id. Two RNGs
// split from the same parent with different ids produce uncorrelated
// sequences; the same id reproduces the same sequence.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(mix(r.state, id))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive bound")
	}
	return int(r.Next() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Next() >> 1) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// mix combines two 64-bit values into a well-distributed seed.
func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// EdgeWeight returns a deterministic pseudo-random weight for the undirected
// edge {u, v} under the given seed, independent of orientation. Distributed
// generators use it so that the two owners of a cross edge agree on its
// weight without exchanging messages. Weights are strictly positive and, with
// probability 1 in practice, pairwise distinct — distinct weights give the
// locally-dominant matching algorithm a unique fixed point, which is what
// makes the parallel matching weight independent of the processor count
// (Section 5.2 of the paper).
func EdgeWeight(seed uint64, u, v int64) float64 {
	if u > v {
		u, v = v, u
	}
	h := mix(mix(seed, uint64(u)), uint64(v))
	return 1 + float64(h>>11)/(1<<53)
}
