package dgraph

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/partition"
)

func TestExchangeGhostValues(t *testing.T) {
	g, err := gen.Grid2D(12, 12, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(12, 12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		d := shares[c.Rank()]
		// Value of each vertex = 10 * its global id + owner rank.
		owned := make([]int64, d.NLocal)
		for v := range owned {
			owned[v] = 10*d.GlobalOf(int32(v)) + int64(c.Rank())
		}
		ghosts, err := ExchangeGhostValues(c, d, owned)
		if err != nil {
			return err
		}
		for gi, got := range ghosts {
			l := int32(d.NLocal + gi)
			want := 10*d.GlobalOf(l) + int64(d.OwnerOf(l))
			if got != want {
				return fmt.Errorf("ghost %d value %d, want %d", d.GlobalOf(l), got, want)
			}
		}
		return nil
	}, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeGhostValuesRepeated(t *testing.T) {
	// Back-to-back exchanges (a Jacobi-style loop) must not interfere.
	g, err := gen.Circuit(15, 15, 0.45, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		d := shares[c.Rank()]
		owned := make([]int64, d.NLocal)
		for round := int64(0); round < 5; round++ {
			for v := range owned {
				owned[v] = d.GlobalOf(int32(v))*100 + round
			}
			ghosts, err := ExchangeGhostValues(c, d, owned)
			if err != nil {
				return err
			}
			for gi, got := range ghosts {
				want := d.GlobalOf(int32(d.NLocal+gi))*100 + round
				if got != want {
					return fmt.Errorf("round %d ghost value %d, want %d", round, got, want)
				}
			}
		}
		return nil
	}, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeGhostValuesRejectsBadInput(t *testing.T) {
	g, _ := gen.Grid2D(4, 4, false, 0)
	part, _ := partition.Block1D(g, 2)
	shares, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := ExchangeGhostValues(c, shares[c.Rank()], []int64{1}); err == nil {
			return fmt.Errorf("accepted short value vector")
		}
		return nil
	}, mpi.WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}
