package dgraph

import (
	"fmt"

	"repro/internal/gen"
)

// GridSpec describes a k1 × k2 five-point grid distributed uniformly over a
// pr × pc processor grid — the paper's weak/strong-scaling input ("the grid
// graphs were generated in parallel, distributed in a two-dimensional fashion
// among the available processors", Section 5.1).
type GridSpec struct {
	K1, K2   int
	PR, PC   int
	Weighted bool
	Seed     uint64
}

// Validate checks the spec.
func (s GridSpec) Validate() error {
	if s.K1 <= 0 || s.K2 <= 0 {
		return fmt.Errorf("dgraph: non-positive grid %dx%d", s.K1, s.K2)
	}
	if s.PR <= 0 || s.PC <= 0 {
		return fmt.Errorf("dgraph: non-positive processor grid %dx%d", s.PR, s.PC)
	}
	if s.PR > s.K1 || s.PC > s.K2 {
		return fmt.Errorf("dgraph: processor grid %dx%d exceeds graph grid %dx%d", s.PR, s.PC, s.K1, s.K2)
	}
	return nil
}

// P reports the total rank count of the spec.
func (s GridSpec) P() int { return s.PR * s.PC }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// blockOf returns the row/column range owned by processor-grid coordinates
// (pi, pj), consistent with partition.Grid2D's floor-division assignment.
func (s GridSpec) blockOf(pi, pj int) (rLo, rHi, cLo, cHi int) {
	rLo = ceilDiv(pi*s.K1, s.PR)
	rHi = ceilDiv((pi+1)*s.K1, s.PR)
	cLo = ceilDiv(pj*s.K2, s.PC)
	cHi = ceilDiv((pj+1)*s.K2, s.PC)
	return
}

// ownerOf returns the rank owning grid node (r, c).
func (s GridSpec) ownerOf(r, c int) int {
	pi := r * s.PR / s.K1
	pj := c * s.PC / s.K2
	return pi*s.PC + pj
}

// RankStructure computes the structural profile of one rank's share without
// building it: owned vertices, stored arcs, cross arcs, and neighbor-rank
// count. The experiment harness uses it to synthesize model inputs at rank
// counts far beyond what the host can run (e.g. the paper's 16,384).
func (s GridSpec) RankStructure(rank int) (nLocal int, arcs, crossArcs int64, neighborRanks int, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	if rank < 0 || rank >= s.P() {
		return 0, 0, 0, 0, fmt.Errorf("dgraph: rank %d of %d", rank, s.P())
	}
	pi, pj := rank/s.PC, rank%s.PC
	rLo, rHi, cLo, cHi := s.blockOf(pi, pj)
	rows, cols := int64(rHi-rLo), int64(cHi-cLo)
	nLocal = int(rows * cols)
	arcs = 4 * rows * cols
	if rLo == 0 {
		arcs -= cols
	}
	if rHi == s.K1 {
		arcs -= cols
	}
	if cLo == 0 {
		arcs -= rows
	}
	if cHi == s.K2 {
		arcs -= rows
	}
	if rLo > 0 {
		crossArcs += cols
		neighborRanks++
	}
	if rHi < s.K1 {
		crossArcs += cols
		neighborRanks++
	}
	if cLo > 0 {
		crossArcs += rows
		neighborRanks++
	}
	if cHi < s.K2 {
		crossArcs += rows
		neighborRanks++
	}
	return nLocal, arcs, crossArcs, neighborRanks, nil
}

// BuildGrid constructs rank's local share of the distributed grid directly,
// without ever materializing the global graph — each rank generates its own
// block plus the one-deep halo, and cross-edge weights agree across ranks
// because they are derived deterministically from the global edge ids. This
// is what lets weak-scaling runs grow the input with the rank count, as in
// Fig. 5.1.
func BuildGrid(spec GridSpec, rank int) (*DistGraph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := spec.P()
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("dgraph: rank %d of %d", rank, p)
	}
	pi, pj := rank/spec.PC, rank%spec.PC
	rLo, rHi, cLo, cHi := spec.blockOf(pi, pj)
	rows, cols := rHi-rLo, cHi-cLo
	nLocal := rows * cols

	d := &DistGraph{
		Rank:        rank,
		P:           p,
		GlobalN:     int64(spec.K1) * int64(spec.K2),
		GlobalEdges: int64(spec.K1)*int64(spec.K2-1) + int64(spec.K1-1)*int64(spec.K2),
		NLocal:      nLocal,
	}
	gid := func(r, c int) int64 { return int64(r)*int64(spec.K2) + int64(c) }
	localIdx := func(r, c int) int32 { return int32((r-rLo)*cols + (c - cLo)) }

	d.GlobalID = make([]int64, nLocal, nLocal+2*(rows+cols))
	d.globalToLocal = make(map[int64]int32, nLocal+2*(rows+cols))
	for r := rLo; r < rHi; r++ {
		for c := cLo; c < cHi; c++ {
			l := localIdx(r, c)
			d.GlobalID[l] = gid(r, c)
			d.globalToLocal[gid(r, c)] = l
		}
	}
	// Ghost halo: the four one-deep strips, in ascending global-id order
	// (north strip first, then per-row west/east, then south strip).
	type ghost struct {
		id    int64
		owner int32
	}
	var ghosts []ghost
	if rLo > 0 {
		for c := cLo; c < cHi; c++ {
			ghosts = append(ghosts, ghost{gid(rLo-1, c), int32(spec.ownerOf(rLo-1, c))})
		}
	}
	for r := rLo; r < rHi; r++ {
		if cLo > 0 {
			ghosts = append(ghosts, ghost{gid(r, cLo-1), int32(spec.ownerOf(r, cLo-1))})
		}
		if cHi < spec.K2 {
			ghosts = append(ghosts, ghost{gid(r, cHi), int32(spec.ownerOf(r, cHi))})
		}
	}
	if rHi < spec.K1 {
		for c := cLo; c < cHi; c++ {
			ghosts = append(ghosts, ghost{gid(rHi, c), int32(spec.ownerOf(rHi, c))})
		}
	}
	// The construction order above is already ascending in global id:
	// north strip < all local rows < south strip, and within each local row
	// west < row < east; across rows ids grow with r.
	d.NGhost = len(ghosts)
	d.GhostOwner = make([]int32, len(ghosts))
	seenRank := map[int]bool{}
	for i, gh := range ghosts {
		d.GlobalID = append(d.GlobalID, gh.id)
		d.globalToLocal[gh.id] = int32(nLocal + i)
		d.GhostOwner[i] = gh.owner
		seenRank[int(gh.owner)] = true
	}
	for r := 0; r < p; r++ {
		if seenRank[r] {
			d.NeighborRanks = append(d.NeighborRanks, r)
		}
	}

	// CSR: up to 4 arcs per vertex.
	d.Xadj = make([]int64, nLocal+1)
	d.Adj = make([]int32, 0, 4*nLocal)
	if spec.Weighted {
		d.W = make([]float64, 0, 4*nLocal)
	}
	d.IsBoundary = make([]bool, nLocal)
	addArc := func(v int32, ur, uc int) {
		u := d.globalToLocal[gid(ur, uc)]
		d.Adj = append(d.Adj, u)
		if spec.Weighted {
			d.W = append(d.W, gen.EdgeWeight(spec.Seed, d.GlobalID[v], gid(ur, uc)))
		}
		if d.IsGhost(u) {
			d.IsBoundary[v] = true
			d.CrossArcs++
		}
	}
	for r := rLo; r < rHi; r++ {
		for c := cLo; c < cHi; c++ {
			v := localIdx(r, c)
			if r > 0 {
				addArc(v, r-1, c)
			}
			if c > 0 {
				addArc(v, r, c-1)
			}
			if c+1 < spec.K2 {
				addArc(v, r, c+1)
			}
			if r+1 < spec.K1 {
				addArc(v, r+1, c)
			}
			d.Xadj[v+1] = int64(len(d.Adj))
		}
	}
	for _, b := range d.IsBoundary {
		if b {
			d.NumBoundary++
		}
	}
	return d, nil
}
