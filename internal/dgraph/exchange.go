package dgraph

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mpi"
)

// ghostTag carries halo-exchange records.
const ghostTag = 300

// ghostRecSize: global id (8) + value (8).
const ghostRecSize = 16

// ExchangeGhostValues performs one halo exchange: every rank provides one
// int64 per owned vertex (local index order) and receives the values of its
// ghosts (ghost slot order). This is the generic building block applications
// layer over the distributed graph — e.g. a Jacobi sweep exchanging iterate
// values, or a load balancer exchanging per-vertex weights. The matching and
// coloring protocols do not use it (they ship algorithm-specific records),
// but they follow the same pattern: per-destination bundles to neighbor
// ranks only, one barrier, drain.
//
// Every rank of the world must call ExchangeGhostValues collectively.
func ExchangeGhostValues(c *mpi.Comm, d *DistGraph, owned []int64) ([]int64, error) {
	if c.Size() != d.P || c.Rank() != d.Rank {
		return nil, fmt.Errorf("dgraph: exchange on mismatched world/share")
	}
	if len(owned) != d.NLocal {
		return nil, fmt.Errorf("dgraph: %d values for %d owned vertices", len(owned), d.NLocal)
	}
	out := mpi.NewBundler(c, ghostTag, ghostRecSize, 0)
	// A boundary vertex is a ghost on every rank owning one of its
	// neighbors; send its value to each such rank once.
	var seen []int32
	for v := 0; v < d.NLocal; v++ {
		if !d.IsBoundary[v] {
			continue
		}
		seen = seen[:0]
		for _, u := range d.Neighbors(int32(v)) {
			if !d.IsGhost(u) {
				continue
			}
			rk := int32(d.OwnerOf(u))
			dup := false
			for _, s := range seen {
				if s == rk {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = append(seen, rk)
			var rec [ghostRecSize]byte
			binary.LittleEndian.PutUint64(rec[0:8], uint64(d.GlobalOf(int32(v))))
			binary.LittleEndian.PutUint64(rec[8:16], uint64(owned[v]))
			out.Add(int(rk), rec[:])
		}
	}
	out.Flush()
	c.Barrier()
	ghosts := make([]int64, d.NGhost)
	filled := 0
	for {
		m, ok := c.TryRecv()
		if !ok {
			break
		}
		if m.Tag != ghostTag {
			return nil, fmt.Errorf("dgraph: unexpected tag %d during ghost exchange", m.Tag)
		}
		for _, rec := range mpi.Records(m.Data, ghostRecSize) {
			gid := int64(binary.LittleEndian.Uint64(rec[0:8]))
			val := int64(binary.LittleEndian.Uint64(rec[8:16]))
			l, ok := d.LocalOf(gid)
			if !ok || !d.IsGhost(l) {
				return nil, fmt.Errorf("dgraph: ghost value for unknown vertex %d", gid)
			}
			ghosts[int(l)-d.NLocal] = val
			filled++
		}
	}
	if filled < d.NGhost {
		return nil, fmt.Errorf("dgraph: ghost exchange filled %d of %d ghosts", filled, d.NGhost)
	}
	// A second barrier keeps successive exchanges from bleeding into each
	// other (a fast rank must not start sending round k+1 records while a
	// slow one is still draining round k).
	c.Barrier()
	return ghosts, nil
}
