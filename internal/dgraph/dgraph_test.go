package dgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestDistributeCoversGraph(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 300, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	totalLocal := 0
	var totalCross int64
	for rank, d := range shares {
		if err := d.Validate(); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if d.Rank != rank || d.P != 5 {
			t.Fatalf("rank %d misidentified as %d/%d", rank, d.Rank, d.P)
		}
		totalLocal += d.NLocal
		totalCross += d.CrossArcs
		if d.GlobalN != int64(g.NumVertices()) || d.GlobalEdges != g.NumEdges() {
			t.Fatalf("rank %d global sizes wrong", rank)
		}
	}
	if totalLocal != g.NumVertices() {
		t.Fatalf("ranks own %d vertices, want %d", totalLocal, g.NumVertices())
	}
	// Each cross edge contributes one cross arc on each side.
	m := partition.Measure(g, part)
	if totalCross != 2*m.EdgeCut {
		t.Fatalf("total cross arcs %d, want %d", totalCross, 2*m.EdgeCut)
	}
}

func TestDistributePreservesAdjacency(t *testing.T) {
	g, err := gen.Grid2D(6, 7, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Block1D(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	// Every global edge must appear exactly once per owned endpoint, with the
	// original weight.
	for _, d := range shares {
		for v := 0; v < d.NLocal; v++ {
			gv := graph.Vertex(d.GlobalOf(int32(v)))
			adj := d.Neighbors(int32(v))
			if len(adj) != g.Degree(gv) {
				t.Fatalf("rank %d vertex %d degree %d, want %d", d.Rank, gv, len(adj), g.Degree(gv))
			}
			for k, u := range adj {
				gu := graph.Vertex(d.GlobalOf(u))
				w, ok := g.EdgeWeight(gv, gu)
				if !ok {
					t.Fatalf("phantom edge {%d,%d} on rank %d", gv, gu, d.Rank)
				}
				if got := d.Weight(d.Xadj[v] + int64(k)); got != w {
					t.Fatalf("edge {%d,%d} weight %g, want %g", gv, gu, got, w)
				}
			}
		}
	}
}

func TestDistributeGhostOwners(t *testing.T) {
	g, _ := gen.Grid2D(8, 8, false, 0)
	part, _ := partition.Grid2D(8, 8, 2, 2)
	shares, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range shares {
		for gi := 0; gi < d.NGhost; gi++ {
			l := int32(d.NLocal + gi)
			gid := d.GlobalOf(l)
			if want := part.Part[gid]; d.GhostOwner[gi] != want {
				t.Fatalf("rank %d ghost %d owner %d, want %d", d.Rank, gid, d.GhostOwner[gi], want)
			}
			if d.OwnerOf(l) != int(part.Part[gid]) {
				t.Fatal("OwnerOf disagrees with GhostOwner")
			}
		}
		if d.OwnerOf(0) != d.Rank {
			t.Fatal("OwnerOf(owned) != own rank")
		}
	}
}

func TestDistributeRankMatchesDistribute(t *testing.T) {
	g, _ := gen.ErdosRenyi(40, 100, true, 9)
	part, _ := partition.Random(g, 4, 2)
	all, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		one, err := DistributeRank(g, part, rank)
		if err != nil {
			t.Fatal(err)
		}
		if one.NLocal != all[rank].NLocal || one.NGhost != all[rank].NGhost ||
			one.CrossArcs != all[rank].CrossArcs || one.NumBoundary != all[rank].NumBoundary {
			t.Fatalf("rank %d: DistributeRank differs from Distribute", rank)
		}
	}
	if _, err := DistributeRank(g, part, 99); err == nil {
		t.Fatal("accepted invalid rank")
	}
}

func TestBuildGridMatchesDistribute(t *testing.T) {
	// The direct distributed builder must agree exactly with distributing the
	// globally generated grid.
	const k1, k2, pr, pc = 9, 11, 3, 2
	spec := GridSpec{K1: k1, K2: k2, PR: pr, PC: pc, Weighted: true, Seed: 42}
	g, err := gen.Grid2D(k1, k2, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(k1, k2, pr, pc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < spec.P(); rank++ {
		d, err := BuildGrid(spec, rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		r := ref[rank]
		if d.NLocal != r.NLocal || d.NGhost != r.NGhost || d.CrossArcs != r.CrossArcs ||
			d.NumBoundary != r.NumBoundary {
			t.Fatalf("rank %d: direct(NLocal=%d NGhost=%d cross=%d bnd=%d) vs ref(%d %d %d %d)",
				rank, d.NLocal, d.NGhost, d.CrossArcs, d.NumBoundary,
				r.NLocal, r.NGhost, r.CrossArcs, r.NumBoundary)
		}
		// Same owned vertices in the same order.
		for i := 0; i < d.NLocal; i++ {
			if d.GlobalID[i] != r.GlobalID[i] {
				t.Fatalf("rank %d owned[%d]: %d vs %d", rank, i, d.GlobalID[i], r.GlobalID[i])
			}
		}
		// Same ghost set and owners.
		for i := 0; i < d.NGhost; i++ {
			if d.GlobalID[d.NLocal+i] != r.GlobalID[r.NLocal+i] ||
				d.GhostOwner[i] != r.GhostOwner[i] {
				t.Fatalf("rank %d ghost[%d] differs", rank, i)
			}
		}
		// Same edges and weights (adjacency order may differ; compare sets).
		for v := 0; v < d.NLocal; v++ {
			got := map[int64]float64{}
			for k, u := range d.Neighbors(int32(v)) {
				got[d.GlobalOf(u)] = d.Weight(d.Xadj[v] + int64(k))
			}
			want := map[int64]float64{}
			for k, u := range r.Neighbors(int32(v)) {
				want[r.GlobalOf(u)] = r.Weight(r.Xadj[v] + int64(k))
			}
			if len(got) != len(want) {
				t.Fatalf("rank %d vertex %d degree %d vs %d", rank, v, len(got), len(want))
			}
			for gid, w := range want {
				if got[gid] != w {
					t.Fatalf("rank %d vertex %d -> %d weight %g vs %g", rank, v, gid, got[gid], w)
				}
			}
		}
		// Neighbor ranks agree.
		if len(d.NeighborRanks) != len(r.NeighborRanks) {
			t.Fatalf("rank %d neighbor ranks %v vs %v", rank, d.NeighborRanks, r.NeighborRanks)
		}
		for i := range d.NeighborRanks {
			if d.NeighborRanks[i] != r.NeighborRanks[i] {
				t.Fatalf("rank %d neighbor ranks %v vs %v", rank, d.NeighborRanks, r.NeighborRanks)
			}
		}
	}
}

func TestBuildGridPaperSubgridExample(t *testing.T) {
	// Paper: 8,000x8,000 grid on 1,024 processors (32x32) gives each a
	// 250x250 subgrid. Shrunk: 80x80 on 16 (4x4) gives 20x20 = 400 each.
	spec := GridSpec{K1: 80, K2: 80, PR: 4, PC: 4, Weighted: false, Seed: 0}
	for rank := 0; rank < 16; rank++ {
		d, err := BuildGrid(spec, rank)
		if err != nil {
			t.Fatal(err)
		}
		if d.NLocal != 400 {
			t.Fatalf("rank %d owns %d vertices, want 400", rank, d.NLocal)
		}
		// Interior blocks have 4*20 boundary vertices minus corner sharing;
		// all blocks have boundary fraction well under half.
		if float64(d.NumBoundary)/float64(d.NLocal) > 0.5 {
			t.Fatalf("rank %d boundary fraction too high", rank)
		}
	}
}

func TestBuildGridSingleRank(t *testing.T) {
	spec := GridSpec{K1: 5, K2: 5, PR: 1, PC: 1, Weighted: true, Seed: 1}
	d, err := BuildGrid(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NGhost != 0 || d.NumBoundary != 0 || d.CrossArcs != 0 {
		t.Fatalf("single rank has ghosts: %+v", d)
	}
	if d.NLocal != 25 || len(d.NeighborRanks) != 0 {
		t.Fatalf("single rank share wrong: %+v", d)
	}
}

func TestBuildGridRejectsBadSpecs(t *testing.T) {
	if _, err := BuildGrid(GridSpec{K1: 0, K2: 5, PR: 1, PC: 1}, 0); err == nil {
		t.Error("accepted zero grid")
	}
	if _, err := BuildGrid(GridSpec{K1: 2, K2: 2, PR: 3, PC: 1}, 0); err == nil {
		t.Error("accepted pr > k1")
	}
	if _, err := BuildGrid(GridSpec{K1: 4, K2: 4, PR: 2, PC: 2}, 7); err == nil {
		t.Error("accepted out-of-range rank")
	}
}

func TestLocalOfGlobalOfRoundTrip(t *testing.T) {
	spec := GridSpec{K1: 6, K2: 6, PR: 2, PC: 2, Weighted: false, Seed: 0}
	d, err := BuildGrid(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for l := int32(0); int(l) < d.NLocal+d.NGhost; l++ {
		got, ok := d.LocalOf(d.GlobalOf(l))
		if !ok || got != l {
			t.Fatalf("round trip failed at local %d", l)
		}
	}
	if _, ok := d.LocalOf(999999); ok {
		t.Error("LocalOf found a vertex not on this rank")
	}
}

// Property: distributing an arbitrary random graph over an arbitrary
// partition yields consistent shares (ownership partition, symmetric cross
// arcs, valid views).
func TestQuickDistributeConsistent(t *testing.T) {
	f := func(nRaw, mRaw, pRaw uint8, seed uint64) bool {
		n := int(nRaw)%50 + 2
		m := int64(mRaw)
		p := int(pRaw)%5 + 1
		g, err := gen.ErdosRenyi(n, m, true, seed)
		if err != nil {
			return false
		}
		part, err := partition.Random(g, p, seed)
		if err != nil {
			return false
		}
		shares, err := Distribute(g, part)
		if err != nil {
			return false
		}
		total := 0
		var cross int64
		for _, d := range shares {
			if d.Validate() != nil {
				return false
			}
			total += d.NLocal
			cross += d.CrossArcs
		}
		mm := partition.Measure(g, part)
		return total == n && cross == 2*mm.EdgeCut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndRankStructure(t *testing.T) {
	spec := GridSpec{K1: 6, K2: 8, PR: 2, PC: 2, Weighted: true, Seed: 3}
	for rank := 0; rank < spec.P(); rank++ {
		d, err := BuildGrid(spec, rank)
		if err != nil {
			t.Fatal(err)
		}
		nLocal, arcs, cross, nbrs, err := spec.RankStructure(rank)
		if err != nil {
			t.Fatal(err)
		}
		if nLocal != d.NLocal || arcs != d.Xadj[d.NLocal] || cross != d.CrossArcs || nbrs != len(d.NeighborRanks) {
			t.Fatalf("rank %d: RankStructure (%d,%d,%d,%d) vs built (%d,%d,%d,%d)",
				rank, nLocal, arcs, cross, nbrs,
				d.NLocal, d.Xadj[d.NLocal], d.CrossArcs, len(d.NeighborRanks))
		}
		for v := int32(0); int(v) < d.NLocal; v++ {
			if d.Degree(v) != len(d.Neighbors(v)) {
				t.Fatal("Degree inconsistent with Neighbors")
			}
			if w := d.Weights(v); len(w) != d.Degree(v) {
				t.Fatal("Weights length mismatch")
			}
		}
	}
	if _, _, _, _, err := spec.RankStructure(99); err == nil {
		t.Fatal("accepted bad rank")
	}
	bad := GridSpec{K1: 0, K2: 1, PR: 1, PC: 1}
	if _, _, _, _, err := bad.RankStructure(0); err == nil {
		t.Fatal("accepted bad spec")
	}
}

func TestUnweightedShareWeights(t *testing.T) {
	spec := GridSpec{K1: 4, K2: 4, PR: 2, PC: 1, Weighted: false}
	d, err := BuildGrid(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Weights(0) != nil {
		t.Fatal("unweighted share has weights")
	}
	if d.Weight(0) != 1 {
		t.Fatal("unweighted arc weight != 1")
	}
}
