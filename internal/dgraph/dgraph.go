// Package dgraph implements the distributed graph representation the paper's
// algorithms operate on: each rank owns a subset of the vertices, stores the
// adjacency of its owned vertices, and represents cross edges through ghost
// vertices — "a boundary vertex u is stored on its corresponding processor
// p(u) as well as on every other processor p(v) such that (u, v) is a cross
// edge" (Section 3.3).
//
// Local indices are dense: owned vertices occupy [0, NLocal) in ascending
// global-id order, ghosts occupy [NLocal, NLocal+NGhost), also in ascending
// global-id order. The CSR rows cover owned vertices only; columns may point
// at ghosts. Per-vertex classification into interior and boundary, the
// per-neighbor-rank send lists, and the cross-edge counts that control the
// matching algorithm's outer-loop termination are all precomputed here.
package dgraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// DistGraph is one rank's share of a distributed graph.
type DistGraph struct {
	Rank int // owning rank
	P    int // total ranks

	GlobalN     int64 // vertices in the whole graph
	GlobalEdges int64 // undirected edges in the whole graph

	NLocal int // owned vertices
	NGhost int // distinct remote endpoints of cross edges

	// GlobalID maps local index -> global id, for owned vertices and ghosts.
	GlobalID []int64
	// GhostOwner maps ghost slot (local index - NLocal) -> owning rank.
	GhostOwner []int32

	// CSR over owned vertices; Adj holds local indices (owned or ghost).
	Xadj []int64
	Adj  []int32
	W    []float64

	// IsBoundary marks owned vertices with at least one ghost neighbor.
	IsBoundary []bool
	// NumBoundary counts owned boundary vertices.
	NumBoundary int
	// CrossArcs counts arcs from owned vertices to ghosts (each cross edge
	// once per side).
	CrossArcs int64

	// NeighborRanks lists the distinct ranks owning at least one ghost,
	// ascending — the "neighboring processors" the paper's NEW coloring
	// variant restricts communication to.
	NeighborRanks []int

	globalToLocal map[int64]int32
}

// Degree reports the degree of an owned vertex (cross edges included).
func (d *DistGraph) Degree(v int32) int { return int(d.Xadj[v+1] - d.Xadj[v]) }

// Neighbors returns the local-index neighbor list of owned vertex v.
func (d *DistGraph) Neighbors(v int32) []int32 { return d.Adj[d.Xadj[v]:d.Xadj[v+1]] }

// Weights returns the arc weights aligned with Neighbors(v); nil if the
// graph is unweighted.
func (d *DistGraph) Weights(v int32) []float64 {
	if d.W == nil {
		return nil
	}
	return d.W[d.Xadj[v]:d.Xadj[v+1]]
}

// Weight reports the weight of arc i, treating unweighted graphs as unit.
func (d *DistGraph) Weight(i int64) float64 {
	if d.W == nil {
		return 1
	}
	return d.W[i]
}

// IsGhost reports whether local index v refers to a ghost vertex.
func (d *DistGraph) IsGhost(v int32) bool { return int(v) >= d.NLocal }

// OwnerOf reports the rank owning the vertex at local index v.
func (d *DistGraph) OwnerOf(v int32) int {
	if d.IsGhost(v) {
		return int(d.GhostOwner[int(v)-d.NLocal])
	}
	return d.Rank
}

// LocalOf resolves a global id to a local index (owned or ghost).
func (d *DistGraph) LocalOf(global int64) (int32, bool) {
	l, ok := d.globalToLocal[global]
	return l, ok
}

// GlobalOf resolves a local index to its global id.
func (d *DistGraph) GlobalOf(v int32) int64 { return d.GlobalID[v] }

// Validate checks the structural invariants of the distributed view.
func (d *DistGraph) Validate() error {
	if d.NLocal < 0 || d.NGhost < 0 {
		return fmt.Errorf("dgraph: negative counts NLocal=%d NGhost=%d", d.NLocal, d.NGhost)
	}
	if len(d.GlobalID) != d.NLocal+d.NGhost {
		return fmt.Errorf("dgraph: GlobalID len %d, want %d", len(d.GlobalID), d.NLocal+d.NGhost)
	}
	if len(d.Xadj) != d.NLocal+1 {
		return fmt.Errorf("dgraph: Xadj len %d, want %d", len(d.Xadj), d.NLocal+1)
	}
	if len(d.GhostOwner) != d.NGhost {
		return fmt.Errorf("dgraph: GhostOwner len %d, want %d", len(d.GhostOwner), d.NGhost)
	}
	for i := 1; i < d.NLocal; i++ {
		if d.GlobalID[i-1] >= d.GlobalID[i] {
			return fmt.Errorf("dgraph: owned global ids not ascending at %d", i)
		}
	}
	for i := d.NLocal + 1; i < len(d.GlobalID); i++ {
		if d.GlobalID[i-1] >= d.GlobalID[i] {
			return fmt.Errorf("dgraph: ghost global ids not ascending at %d", i)
		}
	}
	var cross int64
	for v := 0; v < d.NLocal; v++ {
		boundary := false
		for _, u := range d.Neighbors(int32(v)) {
			if u < 0 || int(u) >= d.NLocal+d.NGhost {
				return fmt.Errorf("dgraph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if d.IsGhost(u) {
				boundary = true
				cross++
			}
		}
		if boundary != d.IsBoundary[v] {
			return fmt.Errorf("dgraph: vertex %d boundary flag %v, computed %v", v, d.IsBoundary[v], boundary)
		}
	}
	if cross != d.CrossArcs {
		return fmt.Errorf("dgraph: CrossArcs %d, computed %d", d.CrossArcs, cross)
	}
	for g, l := range d.globalToLocal {
		if d.GlobalID[l] != g {
			return fmt.Errorf("dgraph: globalToLocal inconsistent at %d", g)
		}
	}
	return nil
}

// Distribute splits a global graph over p ranks according to part, producing
// every rank's DistGraph. Since the runtime is in-process, ranks typically
// index into the returned slice rather than deserializing anything.
func Distribute(g *graph.Graph, part *partition.Partition) ([]*DistGraph, error) {
	if err := part.Validate(g); err != nil {
		return nil, err
	}
	p := part.P
	owned := partition.PartVertices(part) // ascending ids per part
	out := make([]*DistGraph, p)
	for rank := 0; rank < p; rank++ {
		d, err := buildLocal(g, part, rank, owned[rank])
		if err != nil {
			return nil, err
		}
		out[rank] = d
	}
	return out, nil
}

// DistributeRank builds only the given rank's share, for use inside mpi.Run
// bodies that do not want to materialize all shares up front.
func DistributeRank(g *graph.Graph, part *partition.Partition, rank int) (*DistGraph, error) {
	if err := part.Validate(g); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= part.P {
		return nil, fmt.Errorf("dgraph: rank %d of %d", rank, part.P)
	}
	var owned []graph.Vertex
	for v, pt := range part.Part {
		if int(pt) == rank {
			owned = append(owned, graph.Vertex(v))
		}
	}
	return buildLocal(g, part, rank, owned)
}

func buildLocal(g *graph.Graph, part *partition.Partition, rank int, owned []graph.Vertex) (*DistGraph, error) {
	d := &DistGraph{
		Rank:        rank,
		P:           part.P,
		GlobalN:     int64(g.NumVertices()),
		GlobalEdges: g.NumEdges(),
		NLocal:      len(owned),
	}
	d.globalToLocal = make(map[int64]int32, len(owned)*2)
	d.GlobalID = make([]int64, len(owned), len(owned)*2)
	for i, v := range owned {
		d.GlobalID[i] = int64(v)
		d.globalToLocal[int64(v)] = int32(i)
	}
	// Discover ghosts.
	ghostSet := make(map[int64]int32) // global id -> owner
	for _, v := range owned {
		for _, u := range g.Neighbors(v) {
			if part.Part[u] != int32(rank) {
				ghostSet[int64(u)] = part.Part[u]
			}
		}
	}
	ghosts := make([]int64, 0, len(ghostSet))
	for gid := range ghostSet {
		ghosts = append(ghosts, gid)
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })
	d.NGhost = len(ghosts)
	d.GhostOwner = make([]int32, len(ghosts))
	neighborRanks := map[int]bool{}
	for i, gid := range ghosts {
		d.GlobalID = append(d.GlobalID, gid)
		d.globalToLocal[gid] = int32(d.NLocal + i)
		d.GhostOwner[i] = ghostSet[gid]
		neighborRanks[int(ghostSet[gid])] = true
	}
	for r := range neighborRanks {
		d.NeighborRanks = append(d.NeighborRanks, r)
	}
	sort.Ints(d.NeighborRanks)
	// CSR rows for owned vertices.
	d.Xadj = make([]int64, d.NLocal+1)
	var arcs int64
	for i, v := range owned {
		arcs += int64(g.Degree(v))
		d.Xadj[i+1] = arcs
	}
	d.Adj = make([]int32, arcs)
	if g.W != nil {
		d.W = make([]float64, arcs)
	}
	d.IsBoundary = make([]bool, d.NLocal)
	for i, v := range owned {
		pos := d.Xadj[i]
		adj := g.Neighbors(v)
		for k, u := range adj {
			lu := d.globalToLocal[int64(u)]
			d.Adj[pos] = lu
			if d.W != nil {
				d.W[pos] = g.W[g.Xadj[v]+int64(k)]
			}
			if d.IsGhost(lu) {
				d.IsBoundary[i] = true
				d.CrossArcs++
			}
			pos++
		}
	}
	for _, b := range d.IsBoundary {
		if b {
			d.NumBoundary++
		}
	}
	return d, nil
}
