package perfmodel

import (
	"math"
	"testing"
)

// TestReplayExactFit: when the observed phases are exactly explained by the
// model (pure compute split across phases, pure communication phases), the
// replay reports ~0% error everywhere.
func TestReplayExactFit(t *testing.T) {
	m := BlueGeneP()
	commSecs := 1000*m.Alpha + 1e6*m.Beta
	ranks := []RankReplay{{
		Rank: 0,
		Phases: []PhaseObs{
			{Name: "match.init", Seconds: 1.0},
			{Name: "match.rounds", Seconds: 2.0},
			{Name: "match.exchange", Seconds: commSecs, Msgs: 1000, Bytes: 1e6},
		},
		Total: Profile{VertexOps: 1000, EdgeOps: 500, Msgs: 1000, Bytes: 1e6},
	}}
	rep, err := Replay(m, ranks)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Phases {
		if math.Abs(p.ErrorPct) > 0.5 {
			t.Errorf("phase %s: %.2f%% error, want ~0 (obs=%g pred=%g)",
				p.Name, p.ErrorPct, p.ObservedSeconds, p.PredictedSeconds)
		}
	}
	if math.Abs(rep.MakespanErrorPct) > 0.5 {
		t.Errorf("makespan error %.2f%%, want ~0", rep.MakespanErrorPct)
	}
	// Phases sort by observed time descending.
	for i := 1; i < len(rep.Phases); i++ {
		if rep.Phases[i-1].ObservedSeconds < rep.Phases[i].ObservedSeconds {
			t.Errorf("phases not sorted by observed time: %v", rep.Phases)
		}
	}
	// Calibration rescaled compute onto the observed residual: the busy
	// rank's modeled compute pool equals observed-minus-communication.
	pool := float64(1000)*rep.Machine.GammaVertex + float64(500)*rep.Machine.GammaEdge
	if want := 3.0; math.Abs(pool-want) > 1e-9 {
		t.Errorf("calibrated pool %g, want %g", pool, want)
	}
}

// TestReplayBusiestRankCalibrates: the rank with the largest observed total
// drives calibration and the makespan.
func TestReplayBusiestRank(t *testing.T) {
	m := BlueGeneP()
	ranks := []RankReplay{
		{Rank: 0, Phases: []PhaseObs{{Name: "p", Seconds: 1.0}}, Total: Profile{VertexOps: 100}},
		{Rank: 1, Phases: []PhaseObs{{Name: "p", Seconds: 4.0}}, Total: Profile{VertexOps: 100}},
	}
	rep, err := Replay(m, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObservedMakespan != 4.0 {
		t.Errorf("observed makespan %g, want 4 (the slow rank)", rep.ObservedMakespan)
	}
	// Calibrated against rank 1: its pool is 4s, so its prediction is exact;
	// rank 0 gets the same per-op rate and predicts 4s too (same op counts),
	// and the phase maximum is the straggler's.
	if p := rep.Phases[0]; math.Abs(p.PredictedSeconds-4.0) > 1e-9 || p.ObservedSeconds != 4.0 {
		t.Errorf("phase fit: %+v", p)
	}
}

// TestReplayNoComputeProfile: a trace without the metrics sidecar (no op
// counters) still replays — communication priced, compute left at zero.
func TestReplayNoComputeProfile(t *testing.T) {
	m := BlueGeneP()
	ranks := []RankReplay{{
		Rank:   0,
		Phases: []PhaseObs{{Name: "p", Seconds: 0.5, Msgs: 10, Bytes: 100}},
	}}
	rep, err := Replay(m, ranks)
	if err != nil {
		t.Fatal(err)
	}
	wantPred := 10*m.Alpha + 100*m.Beta
	if p := rep.Phases[0]; math.Abs(p.PredictedSeconds-wantPred) > 1e-12 {
		t.Errorf("predicted %g, want pure communication %g", p.PredictedSeconds, wantPred)
	}
}

func TestReplayEmpty(t *testing.T) {
	if _, err := Replay(BlueGeneP(), nil); err == nil {
		t.Error("replay of zero ranks must error")
	}
}
