package perfmodel

import (
	"fmt"
	"sort"
)

// Trace replay: drive the α–β–γ model with a recorded run instead of a live
// one. A trace written by the -trace flag carries, per rank, the observed
// wall time and traffic of every top-level phase, and (in the metrics
// sidecar) the whole-run operation counters the algorithm charged. Replay
// calibrates the machine's compute rate against the busiest rank, prices
// each phase's communication from its recorded msgs/bytes, attributes the
// calibrated compute pool to phases in proportion to their unexplained
// (non-communication) time, and reports per-phase predicted-vs-observed
// error — a quick check of how much of a run the model actually explains.

// PhaseObs is one observed phase on one rank: summed wall time and traffic
// of all its spans.
type PhaseObs struct {
	Name    string
	Seconds float64
	Msgs    int64
	Bytes   int64
}

// RankReplay is one rank's recorded run: the per-phase observations plus the
// whole-run profile from the metrics sidecar (operation counters, traffic
// aggregates, barrier epochs).
type RankReplay struct {
	Rank   int
	Phases []PhaseObs
	Total  Profile
}

// PhaseError is one phase's model fit, aggregated across ranks (both sides
// take the per-rank maximum — the bulk-synchronous bound the model prices).
type PhaseError struct {
	Name             string
	ObservedSeconds  float64
	PredictedSeconds float64
	// ErrorPct is (predicted-observed)/observed·100; 0 when nothing was
	// observed.
	ErrorPct float64
}

// ReplayReport is the outcome of one replay.
type ReplayReport struct {
	// Machine is the input machine with compute rates calibrated against the
	// busiest rank.
	Machine Machine
	// Phases lists per-phase fit, sorted by observed time descending.
	Phases []PhaseError
	// ObservedMakespan / PredictedMakespan compare whole-run totals (max
	// over ranks of summed phase times).
	ObservedMakespan  float64
	PredictedMakespan float64
	MakespanErrorPct  float64
}

// Replay fits m to a recorded run. The busiest rank (largest observed phase
// total) calibrates the compute coefficients; every phase is then priced as
// modeled communication (α·msgs + β·bytes) plus a share of that rank's
// calibrated compute pool, attributed proportionally to the phase's
// observed time left unexplained by communication.
func Replay(m Machine, ranks []RankReplay) (*ReplayReport, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("perfmodel: replay needs at least one rank")
	}
	// Calibrate on the busiest rank: its observed total against its profile.
	busy, busyTotal := -1, 0.0
	for i, r := range ranks {
		var total float64
		for _, ph := range r.Phases {
			total += ph.Seconds
		}
		if busy < 0 || total > busyTotal {
			busy, busyTotal = i, total
		}
	}
	cal, err := m.Calibrate(ranks[busy].Total, busyTotal)
	if err != nil {
		// No compute recorded (metrics sidecar absent): keep the machine's
		// built-in rates and still price communication.
		cal = m
	}

	obs := map[string]float64{}  // phase -> max observed over ranks
	pred := map[string]float64{} // phase -> max predicted over ranks
	var obsMakespan, predMakespan float64
	for _, r := range ranks {
		// The rank's calibrated compute pool, attributed to phases below.
		pool := float64(r.Total.VertexOps)*cal.GammaVertex + float64(r.Total.EdgeOps)*cal.GammaEdge
		comm := make([]float64, len(r.Phases))
		var residual float64
		for i, ph := range r.Phases {
			comm[i] = float64(ph.Msgs)*cal.Alpha + float64(ph.Bytes)*cal.Beta
			if left := ph.Seconds - comm[i]; left > 0 {
				residual += left
			}
		}
		var rankObs, rankPred float64
		for i, ph := range r.Phases {
			p := comm[i]
			if residual > 0 {
				if left := ph.Seconds - comm[i]; left > 0 {
					p += pool * (left / residual)
				}
			}
			if ph.Seconds > obs[ph.Name] {
				obs[ph.Name] = ph.Seconds
			}
			if p > pred[ph.Name] {
				pred[ph.Name] = p
			}
			rankObs += ph.Seconds
			rankPred += p
		}
		if rankObs > obsMakespan {
			obsMakespan = rankObs
		}
		if rankPred > predMakespan {
			predMakespan = rankPred
		}
	}

	rep := &ReplayReport{
		Machine:           cal,
		ObservedMakespan:  obsMakespan,
		PredictedMakespan: predMakespan,
		MakespanErrorPct:  errorPct(predMakespan, obsMakespan),
	}
	for name, o := range obs {
		rep.Phases = append(rep.Phases, PhaseError{
			Name:             name,
			ObservedSeconds:  o,
			PredictedSeconds: pred[name],
			ErrorPct:         errorPct(pred[name], o),
		})
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		if rep.Phases[i].ObservedSeconds != rep.Phases[j].ObservedSeconds {
			return rep.Phases[i].ObservedSeconds > rep.Phases[j].ObservedSeconds
		}
		return rep.Phases[i].Name < rep.Phases[j].Name
	})
	return rep, nil
}

// errorPct computes signed relative error in percent; zero when nothing was
// observed (no meaningful baseline).
func errorPct(pred, obs float64) float64 {
	if obs <= 0 {
		return 0
	}
	return (pred - obs) / obs * 100
}
