package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeComposition(t *testing.T) {
	m := Machine{Alpha: 1, Beta: 10, GammaVertex: 100, GammaEdge: 1000, Sync: 10000}
	p := Profile{VertexOps: 1, EdgeOps: 2, Msgs: 3, Bytes: 4, Epochs: 5}
	want := 100.0 + 2000 + 3 + 40 + 50000
	if got := m.Time(p); got != want {
		t.Fatalf("Time = %g, want %g", got, want)
	}
}

func TestRunTimeIsMax(t *testing.T) {
	m := BlueGeneP()
	ranks := []Profile{
		{EdgeOps: 100},
		{EdgeOps: 1000, Msgs: 10},
		{EdgeOps: 10},
	}
	if got, want := m.RunTime(ranks), m.Time(ranks[1]); got != want {
		t.Fatalf("RunTime = %g, want slowest rank %g", got, want)
	}
	if m.RunTime(nil) != 0 {
		t.Fatal("empty RunTime != 0")
	}
}

func TestBlueGenePSane(t *testing.T) {
	m := BlueGeneP()
	if m.Alpha <= 0 || m.Beta <= 0 || m.GammaEdge <= 0 || m.GammaVertex <= 0 || m.Sync <= 0 {
		t.Fatalf("non-positive coefficient in %+v", m)
	}
	// Latency must dwarf per-byte cost; compute per op must be nanoseconds.
	if m.Alpha < 100*m.Beta {
		t.Error("alpha suspiciously close to beta")
	}
	if m.GammaEdge > 1e-6 {
		t.Error("per-edge compute cost above a microsecond")
	}
}

func TestProfileAdd(t *testing.T) {
	p := Profile{VertexOps: 1, EdgeOps: 2, Msgs: 3, Bytes: 4, Epochs: 5}
	p.Add(Profile{VertexOps: 10, EdgeOps: 20, Msgs: 30, Bytes: 40, Epochs: 2})
	if p.VertexOps != 11 || p.EdgeOps != 22 || p.Msgs != 33 || p.Bytes != 44 {
		t.Fatalf("Add = %+v", p)
	}
	if p.Epochs != 5 { // epochs take the max (phases overlap, not add)
		t.Fatalf("Epochs = %d, want 5", p.Epochs)
	}
}

func TestCalibrateReproducesMeasurement(t *testing.T) {
	m := BlueGeneP()
	p := Profile{VertexOps: 1e6, EdgeOps: 4e6, Msgs: 100, Bytes: 1e5, Epochs: 10}
	measured := 0.5
	cal, err := m.Calibrate(p, measured)
	if err != nil {
		t.Fatal(err)
	}
	if got := cal.Time(p); math.Abs(got-measured) > 1e-9 {
		t.Fatalf("calibrated Time = %g, want %g", got, measured)
	}
	// Communication coefficients untouched.
	if cal.Alpha != m.Alpha || cal.Beta != m.Beta || cal.Sync != m.Sync {
		t.Fatal("calibration changed communication coefficients")
	}
}

func TestCalibrateCommDominated(t *testing.T) {
	m := BlueGeneP()
	p := Profile{VertexOps: 1, EdgeOps: 1, Msgs: 1e6, Bytes: 1e9}
	// Measured time below the comm floor: compute scale left untouched.
	cal, err := m.Calibrate(p, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cal.GammaEdge != m.GammaEdge {
		t.Fatal("comm-dominated calibration modified gamma")
	}
}

func TestCalibrateNoCompute(t *testing.T) {
	if _, err := BlueGeneP().Calibrate(Profile{Msgs: 5}, 1); err == nil {
		t.Fatal("accepted profile without compute")
	}
}

// Property: Time is monotone in every profile field.
func TestQuickTimeMonotone(t *testing.T) {
	m := BlueGeneP()
	f := func(v, e, mm, b, ep uint32) bool {
		p := Profile{VertexOps: int64(v), EdgeOps: int64(e), Msgs: int64(mm), Bytes: int64(b), Epochs: int64(ep)}
		bigger := p
		bigger.EdgeOps++
		bigger.Msgs++
		return m.Time(bigger) > m.Time(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
