// Package perfmodel predicts distributed run times with a classic α–β–γ
// machine model, standing in for the IBM Blue Gene/P the paper measured on.
// The reproduction cannot run 16,384 MPI ranks, so each figure's harness
// (see internal/expt) measures the real algorithm at laptop scale, calibrates
// the model's compute rate γ against those measurements, and then evaluates
// the model at the paper's processor counts to extend the weak/strong scaling
// series. The communication terms are driven by the per-rank message and
// byte counters that the mpi runtime records — i.e. by the algorithm's real
// traffic profile, not by assumption.
//
//	T(rank) = γv·vertexOps + γe·edgeOps + α·msgs + β·bytes + σ·epochs
//	T(run)  = max over ranks T(rank)
package perfmodel

import "fmt"

// Machine holds the model coefficients, all in seconds (per unit).
type Machine struct {
	Name string
	// Alpha is the per-message latency (MPI overhead + network).
	Alpha float64
	// Beta is the per-byte transfer cost (inverse link bandwidth).
	Beta float64
	// GammaVertex and GammaEdge are per-operation compute costs.
	GammaVertex float64
	GammaEdge   float64
	// Sync is the cost of one synchronization epoch (barrier/allreduce),
	// counted once per epoch regardless of rank count (BG/P had a dedicated
	// collective network with near-constant barrier latency).
	Sync float64
}

// BlueGeneP returns coefficients for an IBM Blue Gene/P node: 850 MHz
// PowerPC 450 cores (a few ns per graph operation once memory effects are
// folded in), ~3 μs MPI latency, ~375 MB/s per-link bandwidth, and ~2 μs
// collective-network barriers.
func BlueGeneP() Machine {
	return Machine{
		Name:        "BlueGene/P",
		Alpha:       3.0e-6,
		Beta:        2.7e-9,
		GammaVertex: 12e-9,
		GammaEdge:   9e-9,
		Sync:        2.0e-6,
	}
}

// Profile aggregates one rank's work in one run (or one phase).
type Profile struct {
	VertexOps int64 // per-vertex operations (initializations, scans)
	EdgeOps   int64 // edge traversals
	Msgs      int64 // messages sent
	Bytes     int64 // bytes sent
	Epochs    int64 // synchronization epochs participated in
}

// Add accumulates o into p.
func (p *Profile) Add(o Profile) {
	p.VertexOps += o.VertexOps
	p.EdgeOps += o.EdgeOps
	p.Msgs += o.Msgs
	p.Bytes += o.Bytes
	if o.Epochs > p.Epochs {
		p.Epochs = o.Epochs
	}
}

// Time evaluates the model for one rank profile.
func (m Machine) Time(p Profile) float64 {
	return float64(p.VertexOps)*m.GammaVertex +
		float64(p.EdgeOps)*m.GammaEdge +
		float64(p.Msgs)*m.Alpha +
		float64(p.Bytes)*m.Beta +
		float64(p.Epochs)*m.Sync
}

// RunTime evaluates the model over all ranks: the slowest rank defines the
// run (bulk-synchronous bound).
func (m Machine) RunTime(ranks []Profile) float64 {
	var worst float64
	for _, p := range ranks {
		if t := m.Time(p); t > worst {
			worst = t
		}
	}
	return worst
}

// Calibrate returns a copy of m with the compute coefficients scaled so that
// the model reproduces a measured single-rank (or max-rank) time for the
// given profile. Communication coefficients are left untouched — they model
// the target machine, not the host — so calibration transfers the host's
// measured compute density onto the modeled machine's network.
func (m Machine) Calibrate(p Profile, measuredSeconds float64) (Machine, error) {
	compute := float64(p.VertexOps)*m.GammaVertex + float64(p.EdgeOps)*m.GammaEdge
	if compute <= 0 {
		return m, fmt.Errorf("perfmodel: profile has no compute to calibrate against")
	}
	comm := float64(p.Msgs)*m.Alpha + float64(p.Bytes)*m.Beta + float64(p.Epochs)*m.Sync
	target := measuredSeconds - comm
	if target <= 0 {
		// Measured time is dominated by communication; keep compute as-is.
		return m, nil
	}
	scale := target / compute
	out := m
	out.GammaVertex *= scale
	out.GammaEdge *= scale
	return out, nil
}
