package matching

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// bruteForceMaxB computes the optimal b-matching weight by exhaustive search
// over tiny graphs.
func bruteForceMaxB(g *graph.Graph, b []int) float64 {
	edges := g.Edges()
	left := append([]int(nil), b...)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(edges) {
			return 0
		}
		best := rec(i + 1)
		e := edges[i]
		if left[e.U] > 0 && left[e.V] > 0 {
			left[e.U]--
			left[e.V]--
			if w := e.W + rec(i+1); w > best {
				best = w
			}
			left[e.U]++
			left[e.V]++
		}
		return best
	}
	return rec(0)
}

func TestGreedyBReducesToMatchingAtB1(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 300, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := GreedyB(g, UniformB(g.NumVertices(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	m1 := LocallyDominant(g)
	if bm.Weight(g) != m1.Weight(g) {
		t.Fatalf("b=1 greedy weight %g, matching weight %g", bm.Weight(g), m1.Weight(g))
	}
	for v := 0; v < g.NumVertices(); v++ {
		switch {
		case m1[v] == graph.None && len(bm.Partners[v]) != 0:
			t.Fatalf("vertex %d matched only in b-matching", v)
		case m1[v] != graph.None && (len(bm.Partners[v]) != 1 || bm.Partners[v][0] != m1[v]):
			t.Fatalf("vertex %d partners %v, want [%d]", v, bm.Partners[v], m1[v])
		}
	}
}

func TestGreedyBHalfApproximation(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g, err := gen.ErdosRenyi(8, 20, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		b := UniformB(g.NumVertices(), int(seed)%3+1)
		bm, err := GreedyB(g, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := bm.VerifyMaximal(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := bruteForceMaxB(g, b)
		if got := bm.Weight(g); got < opt/2-1e-9 {
			t.Fatalf("seed %d: greedy %g below half of optimum %g", seed, got, opt)
		}
	}
}

func TestGreedyBRejectsBadInput(t *testing.T) {
	g, _ := gen.Grid2D(3, 3, true, 1)
	if _, err := GreedyB(g, []int{1}); err == nil {
		t.Error("accepted short capacity vector")
	}
	if _, err := GreedyB(g, UniformB(9, -1)); err == nil {
		t.Error("accepted negative capacity")
	}
}

func TestGreedyBZeroCapacity(t *testing.T) {
	g, _ := gen.Grid2D(4, 4, true, 2)
	bm, err := GreedyB(g, UniformB(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if bm.Size() != 0 || bm.Weight(g) != 0 {
		t.Fatal("zero capacities produced matches")
	}
	if err := bm.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
}

// runBParallel distributes g, runs BParallel everywhere, gathers.
func runBParallel(t *testing.T, g *graph.Graph, part *partition.Partition, b []int, mpiOpts ...mpi.Option) (*BMatching, []*BParallelResult) {
	t.Helper()
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	localB := make([][]int, part.P)
	for rank, d := range shares {
		lb := make([]int, d.NLocal)
		for v := 0; v < d.NLocal; v++ {
			lb[v] = b[d.GlobalOf(int32(v))]
		}
		localB[rank] = lb
	}
	results := make([]*BParallelResult, part.P)
	var mu sync.Mutex
	mpiOpts = append(mpiOpts, mpi.WithDeadline(60*time.Second))
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := BParallel(c, shares[c.Rank()], localB[c.Rank()], BParallelOptions{})
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	}, mpiOpts...)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := GatherB(shares, results, localB)
	if err != nil {
		t.Fatal(err)
	}
	return bm, results
}

func TestBParallelMatchesGreedyOnGrid(t *testing.T) {
	g, err := gen.Grid2D(12, 12, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, bval := range []int{1, 2, 3} {
		b := UniformB(g.NumVertices(), bval)
		want, err := GreedyB(g, b)
		if err != nil {
			t.Fatal(err)
		}
		part, err := partition.Grid2D(12, 12, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runBParallel(t, g, part, b)
		if err := got.VerifyMaximal(g); err != nil {
			t.Fatalf("b=%d: %v", bval, err)
		}
		if got.Weight(g) != want.Weight(g) {
			t.Fatalf("b=%d: parallel weight %g, greedy %g", bval, got.Weight(g), want.Weight(g))
		}
	}
}

func TestBParallelIrregularAndPerturbed(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 600, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]int, g.NumVertices())
	rng := gen.NewRNG(5)
	for v := range b {
		b[v] = rng.Intn(4) // capacities 0..3
	}
	want, err := GreedyB(g, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 6} {
		part, err := partition.Random(g, p, uint64(p))
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 3; seed++ {
			var opts []mpi.Option
			if seed > 0 {
				opts = append(opts, mpi.WithPerturbation(seed))
			}
			got, _ := runBParallel(t, g, part, b, opts...)
			if err := got.VerifyMaximal(g); err != nil {
				t.Fatalf("p=%d seed=%d: %v", p, seed, err)
			}
			if got.Weight(g) != want.Weight(g) {
				t.Fatalf("p=%d seed=%d: weight %g, greedy %g", p, seed, got.Weight(g), want.Weight(g))
			}
		}
	}
}

func TestBParallelB1EqualsAsyncProtocol(t *testing.T) {
	// The round-based b-matching at b=1 must agree with the asynchronous
	// REQUEST/SUCCEEDED/FAILED protocol (both reproduce sequential greedy).
	g, err := gen.Circuit(15, 15, 0.45, true, 13)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := UniformB(g.NumVertices(), 1)
	bm, _ := runBParallel(t, g, part, b)
	seq := LocallyDominant(g)
	for v := 0; v < g.NumVertices(); v++ {
		if seq[v] == graph.None {
			if len(bm.Partners[v]) != 0 {
				t.Fatalf("vertex %d: b-matching matched, async not", v)
			}
			continue
		}
		if len(bm.Partners[v]) != 1 || bm.Partners[v][0] != seq[v] {
			t.Fatalf("vertex %d: partners %v, want [%d]", v, bm.Partners[v], seq[v])
		}
	}
}

func TestBParallelRoundsBounded(t *testing.T) {
	g, err := gen.RMAT(8, 6, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, results := runBParallel(t, g, part, UniformB(g.NumVertices(), 2))
	if results[0].Rounds > 40 {
		t.Fatalf("b-matching took %d rounds", results[0].Rounds)
	}
}

func TestBParallelRejectsBadInput(t *testing.T) {
	g, _ := gen.Grid2D(4, 4, true, 1)
	part, _ := partition.Block1D(g, 2)
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := BParallel(c, shares[c.Rank()], []int{1}, BParallelOptions{}); err == nil {
			return nil // should have errored
		}
		return nil
	}, mpi.WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

// Property: distributed b-matching equals sequential greedy b-matching for
// random graphs, capacities, and partitions.
func TestQuickBParallelEqualsGreedy(t *testing.T) {
	if testing.Short() {
		t.Skip("many distributed runs")
	}
	f := func(nRaw, mRaw, pRaw, bRaw uint8, seed uint64) bool {
		n := int(nRaw)%30 + 2
		p := int(pRaw)%4 + 1
		g, err := gen.ErdosRenyi(n, int64(mRaw), true, seed)
		if err != nil {
			return false
		}
		b := make([]int, n)
		rng := gen.NewRNG(seed ^ 0xb)
		for v := range b {
			b[v] = rng.Intn(int(bRaw)%3 + 2)
		}
		want, err := GreedyB(g, b)
		if err != nil {
			return false
		}
		part, err := partition.Random(g, p, seed)
		if err != nil {
			return false
		}
		shares, err := dgraph.Distribute(g, part)
		if err != nil {
			return false
		}
		localB := make([][]int, p)
		for rank, d := range shares {
			lb := make([]int, d.NLocal)
			for v := 0; v < d.NLocal; v++ {
				lb[v] = b[d.GlobalOf(int32(v))]
			}
			localB[rank] = lb
		}
		results := make([]*BParallelResult, p)
		var mu sync.Mutex
		err = mpi.Run(p, func(c *mpi.Comm) error {
			res, err := BParallel(c, shares[c.Rank()], localB[c.Rank()], BParallelOptions{})
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = res
			mu.Unlock()
			return nil
		}, mpi.WithDeadline(30*time.Second))
		if err != nil {
			return false
		}
		got, err := GatherB(shares, results, localB)
		if err != nil {
			return false
		}
		return got.Verify(g) == nil && got.Weight(g) == want.Weight(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
