package matching

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Message kinds of the distributed protocol (Section 3.2):
//
//	REQUEST   — signals a matching preference across a cross edge,
//	SUCCEEDED — the sender vertex has been matched and is no longer available,
//	FAILED    — the sender vertex can never be matched.
//
// At least two and at most three messages cross any cross edge.
const (
	msgRequest = iota
	msgSucceeded
	msgFailed
)

// matchTag is the runtime message tag of matching bundles — the base of the
// matching range of the tag-space contract (docs/PROTOCOL.md), so the
// runtime attributes this traffic to the "match" tag family.
const matchTag = mpi.TagMatchBase

// recordSize is the wire size of one protocol record:
// kind (1 byte) + source global id (8) + destination global id (8).
const recordSize = 17

func encodeRecord(buf []byte, kind byte, src, dst int64) {
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:9], uint64(src))
	binary.LittleEndian.PutUint64(buf[9:17], uint64(dst))
}

func decodeRecord(rec []byte) (kind byte, src, dst int64) {
	return rec[0], int64(binary.LittleEndian.Uint64(rec[1:9])), int64(binary.LittleEndian.Uint64(rec[9:17]))
}

// ParallelOptions tunes the distributed matching run.
type ParallelOptions struct {
	// MaxBundleBytes caps the per-destination aggregation buffer; 0 selects
	// the 64 KiB default. Setting it to one record (17 bytes) disables the
	// paper's message bundling, the configuration the ablation bench uses as
	// its baseline.
	MaxBundleBytes int
}

// ParallelResult is one rank's share of the distributed matching.
type ParallelResult struct {
	// MateGlobal[v] is the global id of the mate of owned vertex v (local
	// index), or -1 for an unmatched vertex.
	MateGlobal []int64
	// LocalWeight sums matched edge weights with the convention that a cross
	// edge counts on the rank owning its smaller-global-id endpoint, so that
	// summing LocalWeight over ranks counts every matched edge exactly once.
	LocalWeight float64
	// OuterIterations counts how many times the rank re-entered its
	// outer (communication) loop — the paper's outer-loop round count.
	OuterIterations int64
	// Bundles and Records report the rank's aggregated message statistics.
	Bundles int64
	Records int64
}

// vertex protocol states.
const (
	stFree int8 = iota
	stMatched
	stFailed
)

// Parallel runs the distributed locally-dominant matching on this rank's
// share d, communicating over c. Every rank of the world must call Parallel
// with its own share of the same graph. The computation interleaves an inner
// loop that drains a queue of locally decided vertices (interior work, no
// messages) with an outer loop that exchanges bundled REQUEST / SUCCEEDED /
// FAILED messages for the boundary (Section 3.3); it terminates when every
// owned vertex is decided.
func Parallel(c *mpi.Comm, d *dgraph.DistGraph, opt ParallelOptions) (*ParallelResult, error) {
	if c.Size() != d.P {
		return nil, fmt.Errorf("matching: world size %d, graph distributed over %d", c.Size(), d.P)
	}
	if c.Rank() != d.Rank {
		return nil, fmt.Errorf("matching: rank %d given share of rank %d", c.Rank(), d.Rank)
	}
	s := &matchState{
		c:   c,
		d:   d,
		opt: opt,
	}
	s.run()
	res := &ParallelResult{
		MateGlobal:      make([]int64, d.NLocal),
		OuterIterations: s.outerIters,
		Bundles:         s.out.Flushes,
		Records:         s.out.Records,
	}
	for v := 0; v < d.NLocal; v++ {
		if s.state[v] == stMatched {
			gid := d.GlobalOf(s.mate[v])
			res.MateGlobal[v] = gid
			// Count each matched edge exactly once globally: on the side
			// (and, for cross edges, the rank) owning the smaller global id.
			if d.GlobalOf(int32(v)) < gid {
				res.LocalWeight += s.mateWeight[v]
			}
		} else {
			res.MateGlobal[v] = -1
		}
	}
	return res, nil
}

// matchState carries the per-rank protocol state.
type matchState struct {
	c   *mpi.Comm
	d   *dgraph.DistGraph
	opt ParallelOptions

	state      []int8    // per owned vertex
	mate       []int32   // local index of mate, for matched owned vertices
	mateWeight []float64 // weight of the matched edge
	cm         []int32   // candidate mate (local index), or -1
	ghostGone  []bool    // per ghost: matched or failed remotely
	reqTo      []int32   // per ghost: owned vertex it currently requests (the sets R), or noCM
	undecided  int       // owned vertices still free
	queue      []int32   // owned vertices that just became unavailable
	out        *mpi.Bundler
	outerIters int64
	tr         *obs.Tracer
}

const noCM int32 = -1

func (s *matchState) run() {
	d := s.d
	n := d.NLocal
	s.state = make([]int8, n)
	s.mate = make([]int32, n)
	s.mateWeight = make([]float64, n)
	s.cm = make([]int32, n)
	s.ghostGone = make([]bool, d.NGhost)
	s.reqTo = make([]int32, d.NGhost)
	for i := range s.reqTo {
		s.reqTo[i] = noCM
	}
	s.undecided = n
	s.out = mpi.NewBundler(s.c, matchTag, recordSize, s.opt.MaxBundleBytes)
	s.tr = s.c.Tracer()

	// Initialization: compute every candidate mate; request across cross
	// edges; match mutual local pairs. Virtual-time accounting: one edge op
	// per arc scanned, one vertex op per vertex initialized.
	initTok := s.tr.Begin("match.init")
	s.c.ChargeOps(d.Xadj[n], int64(n))
	for v := int32(0); int(v) < n; v++ {
		s.cm[v] = s.computeCandidate(v)
	}
	for v := int32(0); int(v) < n; v++ {
		if s.state[v] != stFree {
			continue
		}
		u := s.cm[v]
		switch {
		case u == noCM:
			s.fail(v)
		case d.IsGhost(u):
			s.sendRecord(msgRequest, v, u)
		case s.cm[u] == v && s.state[u] == stFree && u > v:
			s.matchLocal(v, u)
		}
	}
	s.drainQueue()
	s.tr.EndN(initTok, int64(n))

	// Outer loop: flush bundles, block for traffic, process, repeat, until
	// every owned vertex is decided. Ranks whose vertices are all decided
	// have already informed every neighbor (SUCCEEDED/FAILED were sent at
	// decision time), so exiting early starves nobody.
	for s.undecided > 0 {
		s.outerIters++
		outerTok := s.tr.Begin("match.outer")
		s.out.Flush()
		m := s.c.Recv()
		s.handleBundle(m)
		for {
			mm, ok := s.c.TryRecv()
			if !ok {
				break
			}
			s.handleBundle(mm)
		}
		s.drainQueue()
		s.tr.EndN(outerTok, s.outerIters)
	}
	finTok := s.tr.Begin("match.finalize")
	s.out.Flush()
	// Termination is local (the paper's outer loop stops when this rank's
	// cross edges are resolved), so slower peers' stale SUCCEEDED/FAILED
	// messages may still be addressed to us. Align on a barrier — by which
	// point every rank has sent everything — and clear them, so that a
	// subsequent phase on the same world starts clean. The algorithm itself
	// is complete before this fence.
	s.c.Barrier()
	s.c.DrainTag(matchTag)
	s.tr.End(finTok)
}

// computeCandidate returns the most preferred available neighbor of owned
// vertex v under (weight desc, global id asc), or noCM.
func (s *matchState) computeCandidate(v int32) int32 {
	d := s.d
	adj := d.Neighbors(v)
	wts := d.Weights(v)
	best := noCM
	bestW := 0.0
	var bestGID int64
	for k, u := range adj {
		if !s.available(u) {
			continue
		}
		w := 1.0
		if wts != nil {
			w = wts[k]
		}
		gid := d.GlobalOf(u)
		if best == noCM || w > bestW || (w == bestW && gid < bestGID) {
			best, bestW, bestGID = u, w, gid
		}
	}
	return best
}

// available reports whether neighbor u (owned or ghost, by local index) can
// still be matched from this rank's perspective.
func (s *matchState) available(u int32) bool {
	if s.d.IsGhost(u) {
		return !s.ghostGone[int(u)-s.d.NLocal]
	}
	return s.state[u] == stFree
}

// edgeWeight returns the weight of the arc from owned v to neighbor u.
func (s *matchState) edgeWeight(v, u int32) float64 {
	d := s.d
	for i := d.Xadj[v]; i < d.Xadj[v+1]; i++ {
		if d.Adj[i] == u {
			return d.Weight(i)
		}
	}
	panic("matching: edgeWeight on non-neighbor")
}

// sendRecord ships a protocol record about owned vertex v to the owner of
// ghost u.
func (s *matchState) sendRecord(kind byte, v, u int32) {
	var rec [recordSize]byte
	encodeRecord(rec[:], kind, s.d.GlobalOf(v), s.d.GlobalOf(u))
	s.out.Add(s.d.OwnerOf(u), rec[:])
}

// matchLocal matches two owned vertices and queues the fallout.
func (s *matchState) matchLocal(v, u int32) {
	w := s.edgeWeight(v, u)
	s.setMatched(v, u, w)
	s.setMatched(u, v, w)
	s.announce(v, u)
	s.announce(u, v)
}

// matchCross matches owned vertex v to ghost u.
func (s *matchState) matchCross(v, u int32) {
	s.setMatched(v, u, s.edgeWeight(v, u))
	s.announce(v, u)
}

func (s *matchState) setMatched(v, u int32, w float64) {
	s.state[v] = stMatched
	s.mate[v] = u
	s.mateWeight[v] = w
	s.undecided--
	s.queue = append(s.queue, v)
}

// announce tells every neighbor of v except its mate that v is taken:
// SUCCEEDED messages across cross edges; owned neighbors learn during the
// queue drain. Pending requests R(v) are implicitly cleared because v is no
// longer free.
func (s *matchState) announce(v, mate int32) {
	for _, nb := range s.d.Neighbors(v) {
		if nb == mate || !s.d.IsGhost(nb) {
			continue
		}
		if !s.ghostGone[int(nb)-s.d.NLocal] {
			s.sendRecord(msgSucceeded, v, nb)
		}
	}
}

// fail marks owned vertex v as permanently unmatchable and informs all
// remaining neighbors.
func (s *matchState) fail(v int32) {
	s.state[v] = stFailed
	s.undecided--
	s.queue = append(s.queue, v)
	for _, nb := range s.d.Neighbors(v) {
		if s.d.IsGhost(nb) && !s.ghostGone[int(nb)-s.d.NLocal] {
			s.sendRecord(msgFailed, v, nb)
		}
	}
}

// drainQueue is the inner loop: every queued vertex just became unavailable,
// so each free owned neighbor pointing at it recomputes its candidate and may
// match, request, or fail — cascading without any communication (messages to
// ghosts are only *buffered* here; the outer loop ships them).
func (s *matchState) drainQueue() {
	if len(s.queue) == 0 {
		return
	}
	tok := s.tr.BeginDetail("match.inner")
	var drained int64
	for len(s.queue) > 0 {
		drained++
		v := s.queue[0]
		s.queue = s.queue[1:]
		for _, w := range s.d.Neighbors(v) {
			if s.d.IsGhost(w) || s.state[w] != stFree || s.cm[w] != v {
				continue
			}
			s.recompute(w)
		}
	}
	s.tr.EndN(tok, drained)
}

// recompute refreshes the candidate mate of free owned vertex w after its
// previous candidate became unavailable, taking whatever action the new
// candidate allows (Algorithm 3.3's PROCESSSUCCEEDEDMESSAGE body).
func (s *matchState) recompute(w int32) {
	s.c.ChargeOps(int64(s.d.Degree(w)), 1)
	nc := s.computeCandidate(w)
	s.cm[w] = nc
	switch {
	case nc == noCM:
		s.fail(w)
	case s.d.IsGhost(nc):
		s.sendRecord(msgRequest, w, nc)
		if s.reqTo[int(nc)-s.d.NLocal] == w {
			// The ghost already asked for w: handshake complete
			// (Algorithm 3.3's "if candidateMate(v) is in R(v)" branch).
			s.matchCross(w, nc)
		}
	case s.cm[nc] == w && s.state[nc] == stFree:
		s.matchLocal(w, nc)
	}
}

// handleBundle processes one received bundle of protocol records.
func (s *matchState) handleBundle(m mpi.Message) {
	if m.Tag != matchTag {
		panic(fmt.Sprintf("matching: unexpected tag %d", m.Tag))
	}
	defer s.out.Recycle(m.Data) // records alias m.Data; consumed by loop end
	s.c.ChargeOps(int64(len(m.Data)/recordSize), 0)
	for _, rec := range mpi.Records(m.Data, recordSize) {
		kind, srcG, dstG := decodeRecord(rec)
		v, ok := s.d.LocalOf(dstG)
		if !ok || s.d.IsGhost(v) {
			panic(fmt.Sprintf("matching: record for vertex %d not owned by rank %d", dstG, s.d.Rank))
		}
		u, ok := s.d.LocalOf(srcG)
		if !ok || !s.d.IsGhost(u) {
			panic(fmt.Sprintf("matching: record from vertex %d that is not a ghost on rank %d", srcG, s.d.Rank))
		}
		gi := int(u) - s.d.NLocal
		switch kind {
		case msgRequest:
			// Algorithm 3.2. A request from an already-gone ghost cannot
			// happen under per-pair FIFO (its SUCCEEDED/FAILED would follow,
			// not precede, its REQUEST).
			if s.state[v] != stFree {
				continue // v already matched or failed; u was informed then
			}
			if s.cm[v] == u {
				s.matchCross(v, u)
			} else {
				// Remember the request; a later REQUEST from the same ghost
				// (after it recomputed) supersedes this one.
				s.reqTo[gi] = v
			}
		case msgSucceeded, msgFailed:
			// Algorithm 3.3 (FAILED differs only in skipping the handshake
			// bookkeeping; both remove u from S(v)).
			s.ghostGone[gi] = true
			if s.state[v] != stFree {
				continue
			}
			if s.cm[v] == u {
				s.recompute(v)
			}
		default:
			panic(fmt.Sprintf("matching: unknown record kind %d", kind))
		}
	}
}
