package matching

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func TestMatesRoundTrip(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 200, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := LocallyDominant(g)
	var buf bytes.Buffer
	if err := WriteMates(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m) {
		t.Fatalf("length %d, want %d", len(got), len(m))
	}
	for v := range m {
		if got[v] != m[v] {
			t.Fatalf("vertex %d mate %d, want %d", v, got[v], m[v])
		}
	}
}

func TestMatesFileRoundTrip(t *testing.T) {
	g, _ := gen.Grid2D(6, 6, true, 1)
	m := LocallyDominant(g)
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := WriteMatesFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMatesFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("read missing file")
	}
}

func TestReadMatesErrors(t *testing.T) {
	for name, in := range map[string]string{
		"pair before header": "0 1\n",
		"bad header":         "matching x\n",
		"odd pair":           "matching 3\n0\n",
		"self pair":          "matching 3\n1 1\n",
		"out of range":       "matching 2\n0 5\n",
		"double match":       "matching 3\n0 1\n1 2\n",
		"garbage":            "matching 2\na b\n",
		"no header":          "# only a comment\n",
	} {
		if _, err := ReadMates(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Comments and empty matching are fine.
	m, err := ReadMates(bytes.NewBufferString("# c\nmatching 4\n"))
	if err != nil || len(m) != 4 || m.Cardinality() != 0 {
		t.Fatalf("empty matching parse: %v %v", m, err)
	}
}
