// Package matching implements the paper's edge-weighted matching algorithms
// (Section 3): the sequential locally-dominant half-approximation algorithm
// of Preis/Hoepman/Manne–Bisseling built on candidate mates, the distributed
// asynchronous version with REQUEST/SUCCEEDED/FAILED messages and aggressive
// message bundling, an exact maximum-weight bipartite solver used as the
// quality reference of Table 1.1, and a sorted-edge greedy baseline.
package matching

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Mates describes a matching on a graph with n vertices: Mates[v] is the
// vertex matched to v, or graph.None. A valid matching is symmetric.
type Mates []graph.Vertex

// Weight sums the weights of the matched edges.
func (m Mates) Weight(g *graph.Graph) float64 {
	var sum float64
	for v, u := range m {
		if u != graph.None && graph.Vertex(v) < u {
			w, ok := g.EdgeWeight(graph.Vertex(v), u)
			if !ok {
				return math.NaN()
			}
			sum += w
		}
	}
	return sum
}

// Cardinality counts matched edges.
func (m Mates) Cardinality() int {
	n := 0
	for v, u := range m {
		if u != graph.None && graph.Vertex(v) < u {
			n++
		}
	}
	return n
}

// Verify checks that m is a valid matching on g: in-range symmetric mates
// joined by actual edges.
func (m Mates) Verify(g *graph.Graph) error {
	if len(m) != g.NumVertices() {
		return fmt.Errorf("matching: %d mates for %d vertices", len(m), g.NumVertices())
	}
	for v, u := range m {
		if u == graph.None {
			continue
		}
		if u < 0 || int(u) >= len(m) {
			return fmt.Errorf("matching: vertex %d matched to out-of-range %d", v, u)
		}
		if int(u) == v {
			return fmt.Errorf("matching: vertex %d matched to itself", v)
		}
		if m[u] != graph.Vertex(v) {
			return fmt.Errorf("matching: asymmetric mates %d->%d but %d->%d", v, u, u, m[u])
		}
		if !g.HasEdge(graph.Vertex(v), u) {
			return fmt.Errorf("matching: matched pair {%d,%d} is not an edge", v, u)
		}
	}
	return nil
}

// VerifyMaximal additionally checks maximality: no edge joins two free
// vertices. Locally-dominant matchings are always maximal.
func (m Mates) VerifyMaximal(g *graph.Graph) error {
	if err := m.Verify(g); err != nil {
		return err
	}
	var bad error
	g.ForEachEdge(func(u, v graph.Vertex, _ float64) {
		if bad == nil && m[u] == graph.None && m[v] == graph.None {
			bad = fmt.Errorf("matching: not maximal, edge {%d,%d} has two free endpoints", u, v)
		}
	})
	return bad
}

// better reports whether arc (weight wa to vertex a) beats arc (wb to b)
// under the paper's preference order: heavier weight first, then smaller
// vertex label. Identical (weight, label) pairs cannot occur between
// distinct neighbors.
func better(wa float64, a graph.Vertex, wb float64, b graph.Vertex) bool {
	if wa != wb {
		return wa > wb
	}
	return a < b
}
