package matching

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteForceMax computes the true maximum-weight matching weight by
// exhaustive search — usable only on tiny graphs.
func bruteForceMax(g *graph.Graph) float64 {
	edges := g.Edges()
	used := make([]bool, g.NumVertices())
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(edges) {
			return 0
		}
		best := rec(i + 1) // skip edge i
		e := edges[i]
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if w := e.W + rec(i+1); w > best {
				best = w
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}

func paperTriangle(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.BuildUndirected(3, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 0, V: 2, W: 2}, {U: 1, V: 2, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLocallyDominantPaperExample(t *testing.T) {
	// Fig. 3.1: u=0, v=1, w=2 with weights (u,v)=3, (u,w)=2, (v,w)=1.
	// The locally dominant edge (u,v) is matched; w fails.
	g := paperTriangle(t)
	m := LocallyDominant(g)
	if err := m.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	if m[0] != 1 || m[1] != 0 || m[2] != graph.None {
		t.Fatalf("mates = %v, want [1 0 none]", m)
	}
	if w := m.Weight(g); w != 3 {
		t.Fatalf("weight = %g, want 3", w)
	}
	if m.Cardinality() != 1 {
		t.Fatalf("cardinality = %d, want 1", m.Cardinality())
	}
}

func TestGreedyPaperExample(t *testing.T) {
	g := paperTriangle(t)
	m := Greedy(g)
	if err := m.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	if w := m.Weight(g); w != 3 {
		t.Fatalf("weight = %g, want 3", w)
	}
}

func TestLocallyDominantPathWhereGreedyIsHalf(t *testing.T) {
	// Path a-b-c-d with weights 2, 3, 2: dominant edge is (b,c); the
	// locally-dominant matching takes only it (weight 3) while the optimum
	// takes the two outer edges (weight 4) — the classic 1/2-approx witness
	// shape (here ratio 3/4).
	g, err := graph.BuildUndirected(4, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 2},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	m := LocallyDominant(g)
	if err := m.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	if w := m.Weight(g); w != 3 {
		t.Fatalf("weight = %g, want 3", w)
	}
	opt := bruteForceMax(g)
	if w := m.Weight(g); w < opt/2 {
		t.Fatalf("half-approximation violated: %g < %g/2", w, opt)
	}
}

func TestLocallyDominantEqualsGreedy(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g, err := gen.ErdosRenyi(60, 250, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		ld := LocallyDominant(g)
		gr := Greedy(g)
		if err := ld.VerifyMaximal(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v := range ld {
			if ld[v] != gr[v] {
				t.Fatalf("seed %d: vertex %d mates differ: LD %d, greedy %d",
					seed, v, ld[v], gr[v])
			}
		}
	}
}

func TestLocallyDominantWithTies(t *testing.T) {
	// All weights equal: ties break to the smaller label; on a path
	// 0-1-2-3 the edge (0,1) dominates, then (2,3).
	g, err := graph.BuildUndirected(4, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 5}, {U: 2, V: 3, W: 5},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	m := LocallyDominant(g)
	if m[0] != 1 || m[2] != 3 {
		t.Fatalf("mates = %v, want 0-1 and 2-3", m)
	}
	// Unit-weight integer-tie stress across random graphs.
	for seed := uint64(0); seed < 10; seed++ {
		rg, err := gen.ErdosRenyi(40, 120, false, seed)
		if err != nil {
			t.Fatal(err)
		}
		u, err := gen.Reweight(rg, gen.WeightInteger, seed)
		if err != nil {
			t.Fatal(err)
		}
		ld := LocallyDominant(u)
		if err := ld.VerifyMaximal(u); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gr := Greedy(u)
		if ld.Weight(u) != gr.Weight(u) {
			t.Fatalf("seed %d: LD weight %g != greedy %g", seed, ld.Weight(u), gr.Weight(u))
		}
	}
}

func TestLocallyDominantEdgeCases(t *testing.T) {
	empty, _ := graph.BuildUndirected(0, nil, graph.DedupeFirst)
	if m := LocallyDominant(empty); len(m) != 0 {
		t.Fatal("empty graph mismatch")
	}
	isolated, _ := graph.BuildUndirected(3, nil, graph.DedupeFirst)
	m := LocallyDominant(isolated)
	for v, u := range m {
		if u != graph.None {
			t.Fatalf("isolated vertex %d matched to %d", v, u)
		}
	}
	single, _ := graph.BuildUndirected(2, []graph.Edge{{U: 0, V: 1, W: 7}}, graph.DedupeFirst)
	m = LocallyDominant(single)
	if m[0] != 1 || m[1] != 0 {
		t.Fatalf("single edge not matched: %v", m)
	}
}

func TestVerifyCatchesBadMatchings(t *testing.T) {
	g := paperTriangle(t)
	if err := (Mates{1, 0}).Verify(g); err == nil {
		t.Error("accepted short mates")
	}
	if err := (Mates{1, graph.None, graph.None}).Verify(g); err == nil {
		t.Error("accepted asymmetric mates")
	}
	if err := (Mates{0, graph.None, graph.None}).Verify(g); err == nil {
		t.Error("accepted self-matching")
	}
	if err := (Mates{5, graph.None, graph.None}).Verify(g); err == nil {
		t.Error("accepted out-of-range mate")
	}
	// Non-edge matching: vertices 0 and 1 in a graph without edge {0,1}.
	g2, _ := graph.BuildUndirected(4, []graph.Edge{{U: 0, V: 2, W: 1}, {U: 1, V: 3, W: 1}}, graph.DedupeFirst)
	if err := (Mates{1, 0, graph.None, graph.None}).Verify(g2); err == nil {
		t.Error("accepted matched non-edge")
	}
	// Valid but not maximal.
	if err := (Mates{graph.None, graph.None, graph.None, graph.None}).VerifyMaximal(g2); err == nil {
		t.Error("accepted non-maximal matching")
	}
}

func TestExactBipartiteSmallKnown(t *testing.T) {
	// 2x2: w(0,0)=1, w(0,1)=5, w(1,0)=4, w(1,1)=1.
	// Optimum pairs row0-col1 and row1-col0 for 9.
	b, err := graph.BuildBipartite(2, 2, []graph.Entry{
		{Row: 0, Col: 0, W: 1}, {Row: 0, Col: 1, W: 5},
		{Row: 1, Col: 0, W: 4}, {Row: 1, Col: 1, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExactBipartite(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(b.Graph); err != nil {
		t.Fatal(err)
	}
	if w := m.Weight(b.Graph); w != 9 {
		t.Fatalf("weight = %g, want 9", w)
	}
}

func TestExactBipartiteLeavesUnprofitableRowsUnmatched(t *testing.T) {
	// Both rows only connect to column 0; heavier row wins, other unmatched.
	b, err := graph.BuildBipartite(2, 1, []graph.Entry{
		{Row: 0, Col: 0, W: 3}, {Row: 1, Col: 0, W: 8},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExactBipartite(b)
	if err != nil {
		t.Fatal(err)
	}
	if w := m.Weight(b.Graph); w != 8 {
		t.Fatalf("weight = %g, want 8", w)
	}
	if m[0] != graph.None {
		t.Fatalf("row 0 should be unmatched, got %d", m[0])
	}
}

func TestExactBipartiteMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		b, err := gen.RandomBipartite(5, 5, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ExactBipartite(b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Verify(b.Graph); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := m.Weight(b.Graph)
		want := bruteForceMax(b.Graph)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: exact weight %g, brute force %g", seed, got, want)
		}
	}
}

func TestExactBipartiteRejectsBadInput(t *testing.T) {
	b, _ := graph.BuildBipartite(1, 1, []graph.Entry{{Row: 0, Col: 0, W: -1}}, graph.DedupeFirst)
	if _, err := ExactBipartite(b); err == nil {
		t.Error("accepted negative weight")
	}
	unweighted := &graph.Bipartite{NRows: 1, NCols: 1}
	g, _ := graph.BuildUndirected(2, []graph.Edge{{U: 0, V: 1, W: 1}}, graph.DedupeFirst)
	g.W = nil
	unweighted.Graph = g
	if _, err := ExactBipartite(unweighted); err == nil {
		t.Error("accepted unweighted graph")
	}
}

func TestHalfApproximationBoundOnBipartite(t *testing.T) {
	// The paper's guarantee: locally-dominant weight >= optimum / 2; and in
	// practice > 90% (Table 1.1 reports 99%+).
	for seed := uint64(0); seed < 10; seed++ {
		b, err := gen.RandomBipartite(40, 40, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		approx := LocallyDominant(b.Graph)
		exact, err := ExactBipartite(b)
		if err != nil {
			t.Fatal(err)
		}
		aw, ew := approx.Weight(b.Graph), exact.Weight(b.Graph)
		if aw < ew/2-1e-9 {
			t.Fatalf("seed %d: approx %g < exact %g / 2", seed, aw, ew)
		}
		if aw > ew+1e-9 {
			t.Fatalf("seed %d: approx %g exceeds exact %g", seed, aw, ew)
		}
	}
}

// Property: on arbitrary weighted graphs the locally-dominant matching is a
// valid maximal matching that equals the sorted greedy matching.
func TestQuickLocallyDominant(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed uint64) bool {
		n := int(nRaw)%50 + 1
		m := int64(mRaw) * 2
		g, err := gen.ErdosRenyi(n, m, true, seed)
		if err != nil {
			return false
		}
		ld := LocallyDominant(g)
		if ld.VerifyMaximal(g) != nil {
			return false
		}
		gr := Greedy(g)
		for v := range ld {
			if ld[v] != gr[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: exact >= locally dominant >= exact/2 on random bipartite graphs.
func TestQuickExactSandwich(t *testing.T) {
	f := func(nRaw uint8, seed uint64) bool {
		n := int(nRaw)%12 + 2
		b, err := gen.RandomBipartite(n, n, 3, seed)
		if err != nil {
			return false
		}
		exact, err := ExactBipartite(b)
		if err != nil || exact.Verify(b.Graph) != nil {
			return false
		}
		approx := LocallyDominant(b.Graph)
		aw, ew := approx.Weight(b.Graph), exact.Weight(b.Graph)
		return aw >= ew/2-1e-9 && aw <= ew+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
