package matching

import (
	"fmt"
	"sort"

	"repro/internal/dgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// Distributed b-matching by the b-suitor scheme (Khan–Pothen et al.), the
// b(v) > 1 generalization of the locally-dominant protocol of Section 3 and
// the algorithm family of the paper's reference [9] (Halappanavar's thesis).
//
// Every vertex v keeps a set S(v) of the proposals it currently holds
// (capacity b(v)); every vertex separately owns a budget of b(v) outgoing
// proposals, issued in decreasing edge preference. The two roles never mix:
// once S(v) is full its minimum is monotonically non-decreasing (insertions
// must beat it), so a rejection is permanently valid and the proposal cursor
// never needs to revisit an edge. A displaced proposer re-proposes further
// down its list. At the fixed point the S sets are symmetric and equal the
// sequential greedy b-matching under the shared total edge order — the same
// "deterministic result at any rank count" property the paper reports for
// b = 1.
//
// The protocol is round-synchronized: PROPOSE → decide (REJECT / DISPLACED
// replies) → return budget → Allreduce("any proposals?").
// The two tags sit at the bases of their tag-family ranges
// (docs/PROTOCOL.md), so proposals and replies are metered separately in the
// per-tag-family traffic breakdown.
const (
	bTagPropose = mpi.TagBMatchProposeBase
	bTagReply   = mpi.TagBMatchReplyBase
)

// Reply kinds (both return one unit of proposal budget to the proposer).
const (
	bReject byte = iota
	bDisplaced
)

// bRecSize: kind (1) + src gid (8) + dst gid (8).
const bRecSize = 17

// BParallelOptions tunes the distributed b-matching.
type BParallelOptions struct {
	// MaxRounds aborts a non-converging run (safety net). 0 selects 1024.
	MaxRounds int
	// MaxBundleBytes configures message aggregation as in ParallelOptions.
	MaxBundleBytes int
}

// BParallelResult is one rank's share of a distributed b-matching.
type BParallelResult struct {
	// PartnerGIDs[v] lists the global ids matched to owned vertex v, sorted.
	PartnerGIDs [][]int64
	// Rounds is the number of proposal rounds executed.
	Rounds int
	// LocalWeight counts each matched edge once globally (smaller-gid side).
	LocalWeight float64
}

// bPartner is one entry of a vertex's suitor set.
type bPartner struct {
	gid int64
	w   float64
}

type bState struct {
	c   *mpi.Comm
	d   *dgraph.DistGraph
	b   []int
	opt BParallelOptions

	suitors [][]bPartner // S(v) per owned vertex, small unordered set
	held    []int        // outgoing proposals currently believed held
	pref    [][]int32    // adjacency sorted by edge preference
	cursor  []int

	out      *mpi.Bundler
	reply    *mpi.Bundler
	proposed int64
	pending  map[int][][]byte
}

// BParallel runs the distributed b-suitor on this rank's share; b holds the
// capacities of the owned vertices in local index order.
func BParallel(c *mpi.Comm, d *dgraph.DistGraph, b []int, opt BParallelOptions) (*BParallelResult, error) {
	if c.Size() != d.P {
		return nil, fmt.Errorf("matching: world size %d, graph distributed over %d", c.Size(), d.P)
	}
	if c.Rank() != d.Rank {
		return nil, fmt.Errorf("matching: rank %d given share of rank %d", c.Rank(), d.Rank)
	}
	if len(b) != d.NLocal {
		return nil, fmt.Errorf("matching: %d capacities for %d owned vertices", len(b), d.NLocal)
	}
	for v, cap := range b {
		if cap < 0 {
			return nil, fmt.Errorf("matching: negative capacity at local vertex %d", v)
		}
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 1024
	}
	s := &bState{c: c, d: d, b: b, opt: opt}
	rounds, err := s.run()
	if err != nil {
		return nil, err
	}
	res := &BParallelResult{PartnerGIDs: make([][]int64, d.NLocal), Rounds: rounds}
	for v := 0; v < d.NLocal; v++ {
		gv := d.GlobalOf(int32(v))
		gids := make([]int64, 0, len(s.suitors[v]))
		for _, p := range s.suitors[v] {
			gids = append(gids, p.gid)
			if gv < p.gid {
				res.LocalWeight += p.w
			}
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		res.PartnerGIDs[v] = gids
	}
	return res, nil
}

func (s *bState) run() (int, error) {
	d := s.d
	n := d.NLocal
	s.suitors = make([][]bPartner, n)
	s.held = make([]int, n)
	s.cursor = make([]int, n)
	s.pref = make([][]int32, n)
	for v := 0; v < n; v++ {
		adj := append([]int32(nil), d.Neighbors(int32(v))...)
		gv := d.GlobalOf(int32(v))
		sort.Slice(adj, func(i, j int) bool {
			wi := s.weightTo(int32(v), adj[i])
			wj := s.weightTo(int32(v), adj[j])
			return gidEdgeLess(wi, gv, d.GlobalOf(adj[i]), wj, gv, d.GlobalOf(adj[j]))
		})
		s.pref[v] = adj
	}
	s.out = mpi.NewBundler(s.c, bTagPropose, bRecSize, s.opt.MaxBundleBytes)
	s.reply = mpi.NewBundler(s.c, bTagReply, bRecSize, s.opt.MaxBundleBytes)

	for round := 1; ; round++ {
		if round > s.opt.MaxRounds {
			return round, fmt.Errorf("matching: b-suitor did not converge in %d rounds", s.opt.MaxRounds)
		}
		s.proposed = 0
		s.phasePropose()
		s.out.Flush()
		s.c.Barrier()
		s.phaseDecide(s.drainAll(bTagPropose))
		s.reply.Flush()
		s.c.Barrier()
		s.phaseApplyReplies(s.drainAll(bTagReply))
		if s.c.AllreduceInt64(s.proposed, mpi.OpSum) == 0 {
			return round, nil
		}
	}
}

// weightTo returns the weight of the arc from owned v to local neighbor u.
func (s *bState) weightTo(v, u int32) float64 {
	d := s.d
	for i := d.Xadj[v]; i < d.Xadj[v+1]; i++ {
		if d.Adj[i] == u {
			return d.Weight(i)
		}
	}
	panic("matching: weightTo on non-neighbor")
}

// gidEdgeLess orders edges by (weight desc, sorted endpoint gids asc) — the
// strict total order shared with GreedyB that makes the fixed point unique.
func gidEdgeLess(wa float64, a1, a2 int64, wb float64, b1, b2 int64) bool {
	if wa != wb {
		return wa > wb
	}
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	if b1 > b2 {
		b1, b2 = b2, b1
	}
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// worstSuitor returns the index of v's least preferred held proposal, or -1.
func (s *bState) worstSuitor(v int32) int {
	gv := s.d.GlobalOf(v)
	worst := -1
	for i, p := range s.suitors[v] {
		if worst < 0 || gidEdgeLess(s.suitors[v][worst].w, gv, s.suitors[v][worst].gid, p.w, gv, p.gid) {
			worst = i
		}
	}
	return worst
}

// send emits one record about owned vertex v to the owner of target gid.
func (s *bState) send(bundler *mpi.Bundler, kind byte, v int32, targetGID int64) {
	var rec [bRecSize]byte
	encodeRecord(rec[:], kind, s.d.GlobalOf(v), targetGID)
	l, ok := s.d.LocalOf(targetGID)
	if !ok {
		panic(fmt.Sprintf("matching: target %d unknown on rank %d", targetGID, s.d.Rank))
	}
	bundler.Add(s.d.OwnerOf(l), rec[:])
}

// phasePropose advances every vertex with spare proposal budget down its
// preference list, optimistically counting each proposal as held.
func (s *bState) phasePropose() {
	for v := int32(0); int(v) < s.d.NLocal; v++ {
		for s.held[v] < s.b[v] && s.cursor[v] < len(s.pref[v]) {
			u := s.pref[v][s.cursor[v]]
			s.cursor[v]++
			s.send(s.out, 0, v, s.d.GlobalOf(u))
			s.held[v]++
			s.proposed++
		}
	}
}

// phaseDecide pools the round's proposals per target, best first, and
// admits each into the suitor set if there is room or it beats the minimum
// of a full set (displacing and notifying the old holder); losers are
// rejected. Full-set minima are monotone, so every rejection is final.
func (s *bState) phaseDecide(proposals [][]byte) {
	d := s.d
	byTarget := map[int32][]int64{}
	for _, rec := range proposals {
		_, src, dst := decodeRecord(rec)
		v, ok := d.LocalOf(dst)
		if !ok || d.IsGhost(v) {
			panic(fmt.Sprintf("matching: proposal for %d not owned by rank %d", dst, d.Rank))
		}
		byTarget[v] = append(byTarget[v], src)
	}
	for v, pool := range byTarget {
		gv := d.GlobalOf(v)
		sort.Slice(pool, func(i, j int) bool {
			li, _ := d.LocalOf(pool[i])
			lj, _ := d.LocalOf(pool[j])
			return gidEdgeLess(s.weightTo(v, li), gv, pool[i], s.weightTo(v, lj), gv, pool[j])
		})
		for _, gid := range pool {
			l, _ := d.LocalOf(gid)
			w := s.weightTo(v, l)
			switch {
			case s.b[v] == 0:
				s.send(s.reply, bReject, v, gid)
			case len(s.suitors[v]) < s.b[v]:
				s.suitors[v] = append(s.suitors[v], bPartner{gid, w})
			default:
				wi := s.worstSuitor(v)
				if gidEdgeLess(w, gv, gid, s.suitors[v][wi].w, gv, s.suitors[v][wi].gid) {
					old := s.suitors[v][wi]
					s.suitors[v][wi] = bPartner{gid, w}
					s.send(s.reply, bDisplaced, v, old.gid)
				} else {
					s.send(s.reply, bReject, v, gid)
				}
			}
		}
	}
}

// phaseApplyReplies returns rejected/displaced proposal budget to the
// proposers; their cursors already sit past the failed edges, so the next
// propose phase moves on down the preference lists.
func (s *bState) phaseApplyReplies(replies [][]byte) {
	for _, rec := range replies {
		_, _, dst := decodeRecord(rec)
		v, ok := s.d.LocalOf(dst)
		if !ok || s.d.IsGhost(v) {
			panic("matching: reply for non-owned vertex")
		}
		s.held[v]--
		if s.held[v] < 0 {
			panic("matching: proposal budget underflow")
		}
	}
}

// drainAll returns every record of the given tag; the preceding barrier
// guarantees completeness for that tag, while records of other tags (a fast
// peer's next phase) are buffered for their own phase.
func (s *bState) drainAll(tag int) [][]byte {
	if s.pending == nil {
		s.pending = map[int][][]byte{}
	}
	for {
		m, ok := s.c.TryRecv()
		if !ok {
			break
		}
		s.pending[m.Tag] = append(s.pending[m.Tag], mpi.Records(m.Data, bRecSize)...)
	}
	out := s.pending[tag]
	s.pending[tag] = nil
	return out
}

// GatherB assembles per-rank BParallel results into a global BMatching,
// verifying cross-rank symmetry on the way (the b-suitor fixed point's
// suitor sets are symmetric; asymmetry indicates a protocol bug). b[rank]
// holds each rank's local capacity vector as passed to BParallel.
func GatherB(shares []*dgraph.DistGraph, results []*BParallelResult, b [][]int) (*BMatching, error) {
	if len(shares) == 0 || len(shares) != len(results) || len(shares) != len(b) {
		return nil, fmt.Errorf("matching: inconsistent gather inputs")
	}
	globalN := shares[0].GlobalN
	if globalN > 1<<31-1 {
		return nil, fmt.Errorf("matching: graph too large to gather")
	}
	m := &BMatching{
		B:        make([]int, globalN),
		Partners: make([][]graph.Vertex, globalN),
	}
	for rank, d := range shares {
		r := results[rank]
		if r == nil || len(r.PartnerGIDs) != d.NLocal || len(b[rank]) != d.NLocal {
			return nil, fmt.Errorf("matching: rank %d result/capacities malformed", rank)
		}
		for v := 0; v < d.NLocal; v++ {
			gid := d.GlobalOf(int32(v))
			m.B[gid] = b[rank][v]
			for _, pg := range r.PartnerGIDs[v] {
				m.Partners[gid] = append(m.Partners[gid], graph.Vertex(pg))
			}
		}
	}
	for v := range m.Partners {
		sort.Slice(m.Partners[v], func(i, j int) bool { return m.Partners[v][i] < m.Partners[v][j] })
		for _, u := range m.Partners[v] {
			if !containsVertex(m.Partners[u], graph.Vertex(v)) {
				return nil, fmt.Errorf("matching: ranks disagree on pair {%d,%d}", v, u)
			}
		}
	}
	return m, nil
}
