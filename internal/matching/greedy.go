package matching

import (
	"sort"

	"repro/internal/graph"
)

// Greedy computes the classic sorted-edge half-approximate matching: visit
// edges in non-increasing weight order (ties by endpoint labels) and take
// every edge whose endpoints are both free. Like the locally-dominant
// algorithm it guarantees weight(M) >= optimum/2, and it produces exactly
// the same matching — both compute the unique greedy matching of the
// preference order — but needs a global sort, which is what makes it
// unattractive for distributed memory and motivates the paper's choice.
func Greedy(g *graph.Graph) Mates {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.W != b.W {
			return a.W > b.W
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	m := make(Mates, g.NumVertices())
	for i := range m {
		m[i] = graph.None
	}
	for _, e := range edges {
		if m[e.U] == graph.None && m[e.V] == graph.None {
			m[e.U], m[e.V] = e.V, e.U
		}
	}
	return m
}
