package matching

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteMates writes a matching as text: a "matching <n>" header, then one
// "v mate" pair per matched edge (smaller endpoint first, each edge once).
func WriteMates(w io.Writer, m Mates) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "matching %d\n", len(m)); err != nil {
		return err
	}
	for v, u := range m {
		if u != graph.None && graph.Vertex(v) < u {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMates parses the format written by WriteMates.
func ReadMates(r io.Reader) (Mates, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var m Mates
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "matching" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("matching: line %d: malformed header", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("matching: line %d: bad vertex count", lineNo)
			}
			m = make(Mates, n)
			for i := range m {
				m[i] = graph.None
			}
			continue
		}
		if m == nil {
			return nil, fmt.Errorf("matching: line %d: pair before header", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("matching: line %d: malformed pair", lineNo)
		}
		v, err1 := strconv.ParseInt(fields[0], 10, 32)
		u, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("matching: line %d: bad pair %q", lineNo, line)
		}
		if v < 0 || int(v) >= len(m) || u < 0 || int(u) >= len(m) || v == u {
			return nil, fmt.Errorf("matching: line %d: pair {%d,%d} out of range", lineNo, v, u)
		}
		if m[v] != graph.None || m[u] != graph.None {
			return nil, fmt.Errorf("matching: line %d: vertex matched twice", lineNo)
		}
		m[v], m[u] = graph.Vertex(u), graph.Vertex(v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("matching: missing header")
	}
	return m, nil
}

// WriteMatesFile writes a matching to path.
func WriteMatesFile(path string, m Mates) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteMates(f, m); err != nil {
		return err
	}
	return f.Close()
}

// ReadMatesFile reads a matching from path.
func ReadMatesFile(path string) (Mates, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMates(f)
}
