package matching

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// runParallel distributes g over part, runs the parallel matching on every
// rank, and returns the assembled global matching plus per-rank results.
func runParallel(t *testing.T, g *graph.Graph, part *partition.Partition, opt ParallelOptions, mpiOpts ...mpi.Option) (Mates, []*ParallelResult) {
	t.Helper()
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ParallelResult, part.P)
	var mu sync.Mutex
	mpiOpts = append(mpiOpts, mpi.WithDeadline(30*time.Second))
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := Parallel(c, shares[c.Rank()], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	}, mpiOpts...)
	if err != nil {
		t.Fatal(err)
	}
	mates, err := Gather(shares, results)
	if err != nil {
		t.Fatal(err)
	}
	return mates, results
}

func TestParallelTriangleAcrossRanks(t *testing.T) {
	// The paper's Fig. 3.1 scenario: one vertex per processor.
	g := paperTriangle(t)
	part := &partition.Partition{P: 3, Part: []int32{0, 1, 2}}
	mates, _ := runParallel(t, g, part, ParallelOptions{})
	if mates[0] != 1 || mates[1] != 0 || mates[2] != graph.None {
		t.Fatalf("mates = %v, want 0-1 matched, 2 failed", mates)
	}
}

func TestParallelMatchesSequentialOnGrid(t *testing.T) {
	g, err := gen.Grid2D(20, 20, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	seq := LocallyDominant(g)
	for _, p := range []int{1, 2, 4, 9} {
		pr, pc := partition.ProcessorGrid(p)
		part, err := partition.Grid2D(20, 20, pr, pc)
		if err != nil {
			t.Fatal(err)
		}
		mates, _ := runParallel(t, g, part, ParallelOptions{})
		if err := mates.VerifyMaximal(g); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for v := range mates {
			if mates[v] != seq[v] {
				t.Fatalf("p=%d: vertex %d mate %d, sequential %d", p, v, mates[v], seq[v])
			}
		}
	}
}

func TestParallelWeightInvariantAcrossP(t *testing.T) {
	// Section 5.2: "the sum of the weights of edges in the computed matching
	// remained the same, regardless of the number of processors used."
	g, err := gen.ErdosRenyi(300, 1500, true, 13)
	if err != nil {
		t.Fatal(err)
	}
	want := LocallyDominant(g).Weight(g)
	for _, p := range []int{1, 2, 3, 5, 8} {
		part, err := partition.BFS(g, p, 99)
		if err != nil {
			t.Fatal(err)
		}
		mates, results := runParallel(t, g, part, ParallelOptions{})
		if got := mates.Weight(g); got != want {
			t.Fatalf("p=%d: weight %g, want %g", p, got, want)
		}
		// Distributed weight bookkeeping must agree with the gathered one.
		var distW float64
		for _, r := range results {
			distW += r.LocalWeight
		}
		if diff := distW - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("p=%d: distributed weight %g, want %g", p, distW, want)
		}
	}
}

func TestParallelOnCircuitWithMultilevelPartition(t *testing.T) {
	g, err := gen.Circuit(40, 40, 0.45, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Multilevel(g, 6, partition.MultilevelOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq := LocallyDominant(g)
	mates, _ := runParallel(t, g, part, ParallelOptions{})
	if err := mates.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	if mates.Weight(g) != seq.Weight(g) {
		t.Fatalf("weight %g, sequential %g", mates.Weight(g), seq.Weight(g))
	}
}

func TestParallelUnderMessagePerturbation(t *testing.T) {
	// The protocol must tolerate arbitrary cross-sender message orderings
	// (the paper's "if the two SUCCEEDED messages arrive in reverse order"
	// discussion). Perturb delivery with several seeds.
	g, err := gen.ErdosRenyi(120, 500, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	want := LocallyDominant(g).Weight(g)
	part, err := partition.Random(g, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		mates, _ := runParallel(t, g, part, ParallelOptions{}, mpi.WithPerturbation(seed))
		if err := mates.VerifyMaximal(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := mates.Weight(g); got != want {
			t.Fatalf("seed %d: weight %g, want %g", seed, got, want)
		}
	}
}

func TestParallelWithTiedWeights(t *testing.T) {
	// Integer weights with many ties exercise the global-id tie-breaking.
	base, err := gen.Grid2D(12, 12, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Reweight(base, gen.WeightInteger, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq := LocallyDominant(g)
	part, err := partition.Grid2D(12, 12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mates, _ := runParallel(t, g, part, ParallelOptions{})
	for v := range mates {
		if mates[v] != seq[v] {
			t.Fatalf("vertex %d mate %d, sequential %d", v, mates[v], seq[v])
		}
	}
}

func TestParallelUnweightedGraph(t *testing.T) {
	g, err := gen.Grid2D(10, 10, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.W = nil // fully unweighted path
	part, err := partition.Block1D(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	mates, _ := runParallel(t, g, part, ParallelOptions{})
	if err := mates.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	seq := LocallyDominant(g)
	for v := range mates {
		if mates[v] != seq[v] {
			t.Fatalf("vertex %d mate %d, sequential %d", v, mates[v], seq[v])
		}
	}
}

func TestParallelBundlingReducesMessages(t *testing.T) {
	g, err := gen.Grid2D(30, 30, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(30, 30, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, bundled := runParallel(t, g, part, ParallelOptions{})
	_, single := runParallel(t, g, part, ParallelOptions{MaxBundleBytes: recordSize})
	var bundledMsgs, singleMsgs, bundledRecs, singleRecs int64
	for i := range bundled {
		bundledMsgs += bundled[i].Bundles
		singleMsgs += single[i].Bundles
		bundledRecs += bundled[i].Records
		singleRecs += single[i].Records
	}
	// Record counts may differ slightly between schedules (the paper's
	// Fig. 3.1 discussion: an extra REQUEST can occur depending on message
	// arrival order), but must stay within ~15% of each other.
	if diff := bundledRecs - singleRecs; diff > singleRecs/8 || diff < -singleRecs/8 {
		t.Fatalf("record counts diverge: %d vs %d", bundledRecs, singleRecs)
	}
	if bundledMsgs*2 > singleMsgs {
		t.Fatalf("bundling sent %d messages vs %d unbundled — no aggregation win", bundledMsgs, singleMsgs)
	}
}

func TestParallelMessageBoundPerCrossEdge(t *testing.T) {
	// Section 3.2: at least two and at most three messages cross any edge.
	g, err := gen.ErdosRenyi(80, 400, true, 17)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := partition.Measure(g, part)
	_, results := runParallel(t, g, part, ParallelOptions{})
	var recs int64
	for _, r := range results {
		recs += r.Records
	}
	if recs < 2*m.EdgeCut-int64(g.NumVertices()) {
		// Lower bound is loose: fully-failed vertices may send fewer.
		t.Logf("records %d below nominal 2*cut %d (acceptable: failures)", recs, 2*m.EdgeCut)
	}
	if recs > 3*m.EdgeCut {
		t.Fatalf("records %d exceed 3 per cross edge (cut %d)", recs, m.EdgeCut)
	}
}

func TestParallelSingleRankNoTraffic(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 400, true, 23)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := partition.Block1D(g, 1)
	_, results := runParallel(t, g, part, ParallelOptions{})
	if results[0].Records != 0 || results[0].Bundles != 0 {
		t.Fatalf("single rank sent traffic: %+v", results[0])
	}
	if results[0].OuterIterations != 0 {
		t.Fatalf("single rank entered outer loop %d times", results[0].OuterIterations)
	}
}

func TestParallelRejectsMismatchedShares(t *testing.T) {
	g, _ := gen.Grid2D(4, 4, true, 1)
	part, _ := partition.Block1D(g, 2)
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(2, func(c *mpi.Comm) error {
		// Hand every rank the same (wrong) share. Rank 1 must reject it;
		// rank 0 may block waiting for traffic, which the deadline catches.
		_, err := Parallel(c, shares[0], ParallelOptions{})
		if c.Rank() != 0 && err == nil {
			return fmt.Errorf("rank %d accepted rank 0's share", c.Rank())
		}
		return err
	}, mpi.WithDeadline(2*time.Second))
	// Rank 1 errors out while rank 0 may block; accept either the
	// explicit error or a deadline error.
	if err == nil {
		t.Fatal("mismatched shares not rejected")
	}
}

func TestParallelManyRandomGraphsAndPartitions(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		n := 30 + int(seed)*15
		g, err := gen.ErdosRenyi(n, int64(n)*4, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		p := int(seed)%5 + 1
		part, err := partition.Random(g, p, seed^0xff)
		if err != nil {
			t.Fatal(err)
		}
		seq := LocallyDominant(g)
		mates, _ := runParallel(t, g, part, ParallelOptions{})
		if err := mates.VerifyMaximal(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if mates.Weight(g) != seq.Weight(g) {
			t.Fatalf("seed %d (n=%d p=%d): weight %g, sequential %g",
				seed, n, p, mates.Weight(g), seq.Weight(g))
		}
	}
}

func TestParallelStarContention(t *testing.T) {
	// A star spread across ranks: every leaf requests the hub; exactly one
	// wins, all others must fail and terminate.
	const leaves = 12
	edges := make([]graph.Edge, leaves)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: graph.Vertex(i + 1), W: float64(i + 1)}
	}
	g, err := graph.BuildUndirected(leaves+1, edges, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int32, leaves+1)
	for i := range parts {
		parts[i] = int32(i % 4)
	}
	part := &partition.Partition{P: 4, Part: parts}
	mates, _ := runParallel(t, g, part, ParallelOptions{})
	if mates[0] != graph.Vertex(leaves) {
		t.Fatalf("hub matched %d, want heaviest leaf %d", mates[0], leaves)
	}
	matched := 0
	for _, u := range mates {
		if u != graph.None {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("%d matched vertices, want 2", matched)
	}
}
