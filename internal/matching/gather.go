package matching

import (
	"fmt"

	"repro/internal/dgraph"
	"repro/internal/graph"
)

// Gather assembles the per-rank results of a Parallel run into one global
// Mates array, verifying on the way that the ranks agree: the two owners of
// every matched cross edge must each name the other endpoint. It is used by
// tests and by the experiment harness to validate distributed runs against
// the sequential algorithm.
func Gather(shares []*dgraph.DistGraph, results []*ParallelResult) (Mates, error) {
	if len(shares) == 0 || len(shares) != len(results) {
		return nil, fmt.Errorf("matching: gather over %d shares, %d results", len(shares), len(results))
	}
	globalN := shares[0].GlobalN
	if globalN > 1<<31-1 {
		return nil, fmt.Errorf("matching: graph too large to gather (%d vertices)", globalN)
	}
	mates := make(Mates, globalN)
	for i := range mates {
		mates[i] = graph.None
	}
	for rank, d := range shares {
		r := results[rank]
		if r == nil {
			return nil, fmt.Errorf("matching: rank %d has no result", rank)
		}
		if len(r.MateGlobal) != d.NLocal {
			return nil, fmt.Errorf("matching: rank %d result covers %d of %d vertices", rank, len(r.MateGlobal), d.NLocal)
		}
		for v := 0; v < d.NLocal; v++ {
			gid := d.GlobalOf(int32(v))
			mg := r.MateGlobal[v]
			if mg < 0 {
				continue
			}
			mates[gid] = graph.Vertex(mg)
		}
	}
	// Symmetry check covers both interior consistency and cross-rank
	// agreement.
	for v, u := range mates {
		if u == graph.None {
			continue
		}
		if mates[u] != graph.Vertex(v) {
			return nil, fmt.Errorf("matching: ranks disagree: %d->%d but %d->%d", v, u, u, mates[u])
		}
	}
	return mates, nil
}
