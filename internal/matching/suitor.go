package matching

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Suitor computes the locally-dominant half-approximate matching with the
// shared-memory suitor algorithm, using the given number of worker
// goroutines (0 selects GOMAXPROCS). This implements the paper's stated
// future-work direction — "emerging many-core computing platforms … will
// need to rely on the use of hybrid distributed-memory and shared-memory
// programming" (Section 6): within one address space, threads race to
// propose, and per-vertex locks arbitrate.
//
// Each vertex proposes to its most preferred neighbor whose current suitor
// it beats; a displaced suitor immediately re-proposes. With the consistent
// (weight desc, label asc) preference order the fixed point is unique and
// equal to LocallyDominant's matching, regardless of thread interleaving.
func Suitor(g *graph.Graph, workers int) Mates {
	n := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// suitor[u] is the best proposal u has received (None if none yet);
	// ws[u] is the weight of that proposal's edge. Both are guarded by
	// locks[u].
	suitor := make([]graph.Vertex, n)
	ws := make([]float64, n)
	for i := range suitor {
		suitor[i] = graph.None
	}
	locks := make([]sync.Mutex, n)

	// beats reports whether a proposal from candidate c with weight w wins
	// against u's current suitor. Reading suitor/ws under locks[u].
	beats := func(u graph.Vertex, w float64, c graph.Vertex) bool {
		cur := suitor[u]
		if cur == graph.None {
			return true
		}
		return better(w, c, ws[u], cur)
	}

	// propose runs vertex v's proposal chain to completion: find the best
	// neighbor it can still win, install itself, and take over the chain of
	// any vertex it displaced.
	propose := func(v graph.Vertex) {
		current := v
		for {
			adj := g.Neighbors(current)
			wts := g.Weights(current)
			var (
				best     = graph.None
				bestW    float64
				displace graph.Vertex = graph.None
			)
			// Pick the most preferred neighbor that current would win.
			for k, u := range adj {
				w := 1.0
				if wts != nil {
					w = wts[k]
				}
				if best != graph.None && !better(w, u, bestW, best) {
					continue
				}
				locks[u].Lock()
				ok := beats(u, w, current)
				locks[u].Unlock()
				if ok {
					best, bestW = u, w
				}
			}
			if best == graph.None {
				return // current can win nobody; it stays unmatched
			}
			locks[best].Lock()
			if !beats(best, bestW, current) {
				// Lost a race since the scan; retry the whole scan.
				locks[best].Unlock()
				continue
			}
			displace = suitor[best]
			suitor[best] = current
			ws[best] = bestW
			locks[best].Unlock()
			if displace == graph.None {
				return
			}
			current = displace // the displaced vertex must re-propose
		}
	}

	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				propose(graph.Vertex(v))
			}
		}(lo, hi)
	}
	wg.Wait()

	// At the fixed point suitor pointers are mutual exactly on matched
	// edges.
	mates := make(Mates, n)
	for v := range mates {
		mates[v] = graph.None
	}
	for v := 0; v < n; v++ {
		u := suitor[v]
		if u != graph.None && suitor[u] == graph.Vertex(v) {
			mates[v] = u
		}
	}
	return mates
}
