package matching

import (
	"fmt"

	"repro/internal/graph"
)

// Vertex-weighted matching — the exact subject of the paper's reference [9]
// (Halappanavar, "Algorithms for vertex-weighted matching in graphs"): given
// weights on the vertices, find a matching maximizing the total weight of
// the matched (covered) vertices.
//
// The problem reduces exactly to edge-weighted matching: a matching covers
// each vertex at most once, so the covered-vertex weight of M equals
// Σ_{(u,v) ∈ M} (w(u) + w(v)). VertexWeightedGraph materializes that
// reduction; the package's edge-weighted machinery (sequential, suitor,
// distributed, exact bipartite) then applies unchanged.

// VertexWeightedGraph returns a copy of g whose edge weights are
// w(u) + w(v), so that any maximum-weight (or ½-approximate) matching of the
// result is a maximum-weight (or ½-approximate) vertex-weighted matching of
// g under vertex weights vw.
func VertexWeightedGraph(g *graph.Graph, vw []float64) (*graph.Graph, error) {
	if len(vw) != g.NumVertices() {
		return nil, fmt.Errorf("matching: %d vertex weights for %d vertices", len(vw), g.NumVertices())
	}
	for v, w := range vw {
		if w < 0 {
			return nil, fmt.Errorf("matching: negative vertex weight at %d", v)
		}
	}
	out := g.Clone()
	if out.W == nil {
		out.W = make([]float64, len(out.Adj))
	}
	for u := 0; u < out.NumVertices(); u++ {
		for i := out.Xadj[u]; i < out.Xadj[u+1]; i++ {
			out.W[i] = vw[u] + vw[out.Adj[i]]
		}
	}
	return out, nil
}

// VertexWeight sums the vertex weights covered by a matching.
func VertexWeight(m Mates, vw []float64) float64 {
	var sum float64
	for v, u := range m {
		if u != graph.None {
			sum += vw[v]
		}
	}
	return sum
}

// VertexWeighted computes a ½-approximate maximum vertex-weight matching via
// the reduction and the locally-dominant algorithm.
func VertexWeighted(g *graph.Graph, vw []float64) (Mates, error) {
	h, err := VertexWeightedGraph(g, vw)
	if err != nil {
		return nil, err
	}
	return LocallyDominant(h), nil
}
