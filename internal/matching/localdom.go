package matching

import "repro/internal/graph"

// LocallyDominant computes the half-approximate matching by repeatedly
// matching locally dominant edges — Section 3.1's sequential algorithm. Each
// vertex v maintains candidateMate(v), the most preferred available
// neighbor (heaviest incident edge, ties to the smaller label); an edge
// (u, v) with candidateMate(u) = v and candidateMate(v) = u is locally
// dominant and joins the matching; matched vertices flow through a queue, and
// each neighbor w whose candidate died recomputes candidateMate(w) from its
// remaining available neighbors.
//
// The result is deterministic and — with the consistent tie-breaking order —
// identical to the sorted-edge Greedy matching, but the computation touches
// edges only locally, which is the property the parallel version exploits.
func LocallyDominant(g *graph.Graph) Mates {
	n := g.NumVertices()
	mate := make(Mates, n)
	cm := make([]graph.Vertex, n)
	for i := range mate {
		mate[i] = graph.None
	}

	available := func(u graph.Vertex) bool { return mate[u] == graph.None && cm[u] != deadMark }

	// computeCandidate returns the best available neighbor of v, or None.
	computeCandidate := func(v graph.Vertex) graph.Vertex {
		adj := g.Neighbors(v)
		wts := g.Weights(v)
		best := graph.None
		bestW := 0.0
		for k, u := range adj {
			if !available(u) {
				continue
			}
			w := 1.0
			if wts != nil {
				w = wts[k]
			}
			if best == graph.None || better(w, u, bestW, best) {
				best, bestW = u, w
			}
		}
		return best
	}

	queue := make([]graph.Vertex, 0, n)
	// matchPair records the matched edge and queues both endpoints.
	matchPair := func(u, v graph.Vertex) {
		mate[u], mate[v] = v, u
		queue = append(queue, u, v)
	}
	// fail marks v permanently unmatchable and queues it so neighbors
	// pointing at it recompute.
	fail := func(v graph.Vertex) {
		cm[v] = deadMark
		queue = append(queue, v)
	}

	for v := 0; v < n; v++ {
		cm[v] = computeCandidate(graph.Vertex(v))
	}
	for v := 0; v < n; v++ {
		if mate[v] == graph.None && cm[v] == graph.None {
			fail(graph.Vertex(v)) // isolated (or all-dead) vertex
			continue
		}
		u := cm[v]
		if mate[v] == graph.None && u != graph.None && u > graph.Vertex(v) && cm[u] == graph.Vertex(v) {
			matchPair(graph.Vertex(v), u)
		}
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// v just became unavailable (matched or failed): every free neighbor
		// pointing at v recomputes its candidate.
		for _, w := range g.Neighbors(v) {
			if mate[w] != graph.None || cm[w] == deadMark || cm[w] != v {
				continue
			}
			nc := computeCandidate(w)
			cm[w] = nc
			switch {
			case nc == graph.None:
				fail(w)
			case cm[nc] == w && mate[nc] == graph.None:
				matchPair(w, nc)
			}
		}
	}
	return mate
}

// deadMark flags a vertex that can never be matched (its candidate pool is
// exhausted) — the sequential counterpart of the FAILED message.
const deadMark graph.Vertex = -2
