package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteForceMaxVertexWeight exhausts all matchings of a tiny graph for the
// optimal covered-vertex weight.
func bruteForceMaxVertexWeight(g *graph.Graph, vw []float64) float64 {
	edges := g.Edges()
	used := make([]bool, g.NumVertices())
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(edges) {
			return 0
		}
		best := rec(i + 1)
		e := edges[i]
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if w := vw[e.U] + vw[e.V] + rec(i+1); w > best {
				best = w
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}

func TestVertexWeightedReductionExact(t *testing.T) {
	// Path a-b-c with vw = [5, 1, 5]: best is impossible to cover both a and
	// c (they are not adjacent), so optimum covers a+b or b+c = 6... but
	// wait, a-b and b-c share b; only one edge fits, optimum = 10? No: edges
	// are {a,b} and {b,c}; a matching takes at most one of them (shared b),
	// so optimum = max(5+1, 1+5) = 6.
	g, err := graph.BuildUndirected(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	vw := []float64{5, 1, 5}
	m, err := VertexWeighted(g, vw)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyMaximal(g); err != nil {
		t.Fatal(err)
	}
	if got := VertexWeight(m, vw); got != 6 {
		t.Fatalf("covered weight %g, want 6", got)
	}
}

func TestVertexWeightedHalfApprox(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g, err := gen.ErdosRenyi(9, 18, false, seed)
		if err != nil {
			t.Fatal(err)
		}
		rng := gen.NewRNG(seed ^ 0x77)
		vw := make([]float64, g.NumVertices())
		for v := range vw {
			vw[v] = rng.Float64() * 10
		}
		m, err := VertexWeighted(g, vw)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Verify(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := VertexWeight(m, vw)
		opt := bruteForceMaxVertexWeight(g, vw)
		if got < opt/2-1e-9 {
			t.Fatalf("seed %d: covered %g below half of optimum %g", seed, got, opt)
		}
	}
}

func TestVertexWeightedGraphRejectsBadInput(t *testing.T) {
	g, _ := gen.Grid2D(2, 2, false, 0)
	if _, err := VertexWeightedGraph(g, []float64{1}); err == nil {
		t.Error("accepted short weights")
	}
	if _, err := VertexWeightedGraph(g, []float64{1, -2, 3, 4}); err == nil {
		t.Error("accepted negative weight")
	}
}

// Property: the reduced graph's matching weight equals the covered vertex
// weight (the reduction identity).
func TestQuickVertexWeightIdentity(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed uint64) bool {
		n := int(nRaw)%20 + 2
		g, err := gen.ErdosRenyi(n, int64(mRaw), false, seed)
		if err != nil {
			return false
		}
		rng := gen.NewRNG(seed)
		vw := make([]float64, n)
		for v := range vw {
			vw[v] = float64(rng.Intn(100))
		}
		h, err := VertexWeightedGraph(g, vw)
		if err != nil {
			return false
		}
		m := LocallyDominant(h)
		return m.Weight(h) == VertexWeight(m, vw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
