package matching

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// ExactBipartite computes a maximum-weight matching of a bipartite graph
// exactly, by the Hungarian method (Kuhn–Munkres) with dual potentials and
// slack arrays, adapted to sparse inputs and to non-perfect matchings: every
// row owns an implicit zero-weight "dummy" exit, so a row whose dual sinks to
// zero simply stays unmatched. With nonnegative weights this yields the true
// maximum-weight matching, which is the quality reference for the paper's
// Table 1.1 ("quality of the suboptimal solutions relative to optimal
// solutions").
//
// The returned Mates covers all NRows+NCols vertices of b.
func ExactBipartite(b *graph.Bipartite) (Mates, error) {
	if err := b.ValidateBipartite(); err != nil {
		return nil, err
	}
	if b.W == nil {
		return nil, fmt.Errorf("matching: exact solver requires edge weights")
	}
	for _, w := range b.W {
		if w < 0 {
			return nil, fmt.Errorf("matching: exact solver requires nonnegative weights, got %g", w)
		}
	}
	nr, nc := b.NRows, b.NCols
	const eps = 1e-12

	// Duals: yr over rows, yc over columns, feasible when
	// yr[r] + yc[c] >= w(r, c) and yr, yc >= 0 (nonnegativity is the dual
	// constraint of the implicit zero-weight dummy edges).
	yr := make([]float64, nr)
	yc := make([]float64, nc)
	for r := 0; r < nr; r++ {
		for _, w := range b.Weights(graph.Vertex(r)) {
			if w > yr[r] {
				yr[r] = w
			}
		}
	}
	rowMate := make([]int, nr)
	colMate := make([]int, nc)
	for i := range rowMate {
		rowMate[i] = -1
	}
	for i := range colMate {
		colMate[i] = -1
	}

	inTreeRow := make([]bool, nr)
	inTreeCol := make([]bool, nc)
	slack := make([]float64, nc)
	for c := range slack {
		slack[c] = math.Inf(1)
	}
	slackRow := make([]int, nc)
	treeReacher := make([]int, nc) // tree row from which each tree col was reached
	treeRows := make([]int, 0, 64)
	treeCols := make([]int, 0, 64)
	liveCols := make([]int, 0, 256) // non-tree cols with finite slack

	addRowToTree := func(r int) {
		inTreeRow[r] = true
		treeRows = append(treeRows, r)
		v := graph.Vertex(r)
		adj := b.Neighbors(v)
		wts := b.Weights(v)
		for k, u := range adj {
			c := int(u) - nr
			if inTreeCol[c] {
				continue
			}
			s := yr[r] + yc[c] - wts[k]
			if math.IsInf(slack[c], 1) {
				liveCols = append(liveCols, c)
			}
			if s < slack[c] {
				slack[c] = s
				slackRow[c] = r
			}
		}
	}

	// augment flips the alternating tree path ending with row endRow taking
	// column endCol (or exiting to its dummy when endCol < 0). Each row on
	// the path hands its previous column to the tree row that reached it.
	augment := func(endRow, endCol int) {
		r, c := endRow, endCol
		for {
			prevC := rowMate[r]
			if c >= 0 {
				rowMate[r] = c
				colMate[c] = r
			} else {
				rowMate[r] = -1
			}
			if prevC < 0 {
				return // reached the tree root (it was free)
			}
			c = prevC
			r = treeReacher[c]
		}
	}

	for start := 0; start < nr; start++ {
		if rowMate[start] != -1 {
			continue
		}
		// Reset phase state.
		for _, r := range treeRows {
			inTreeRow[r] = false
		}
		for _, c := range treeCols {
			inTreeCol[c] = false
		}
		for _, c := range liveCols {
			slack[c] = math.Inf(1)
		}
		for _, c := range treeCols {
			slack[c] = math.Inf(1)
		}
		treeRows = treeRows[:0]
		treeCols = treeCols[:0]
		liveCols = liveCols[:0]
		addRowToTree(start)

		for {
			// δ1: cheapest reachable non-tree column.
			d1 := math.Inf(1)
			bestC := -1
			keep := liveCols[:0]
			for _, c := range liveCols {
				if inTreeCol[c] {
					continue
				}
				keep = append(keep, c)
				if slack[c] < d1 {
					d1 = slack[c]
					bestC = c
				}
			}
			liveCols = keep
			// δ2: cheapest dummy exit among tree rows.
			d2 := math.Inf(1)
			bestR := -1
			for _, r := range treeRows {
				if yr[r] < d2 {
					d2 = yr[r]
					bestR = r
				}
			}
			delta := math.Min(d1, d2)
			if math.IsInf(delta, 1) {
				return nil, fmt.Errorf("matching: hungarian phase stalled (internal error)")
			}
			if delta > eps {
				for _, r := range treeRows {
					yr[r] -= delta
				}
				for _, c := range treeCols {
					yc[c] += delta
				}
				for _, c := range liveCols {
					slack[c] -= delta
				}
				d1 -= delta
				d2 -= delta
			}
			if d2 <= d1 {
				// bestR exits to its dummy (becomes unmatched); the path from
				// it back to the root flips.
				augment(bestR, -1)
				break
			}
			c := bestC
			r := slackRow[c]
			if colMate[c] < 0 {
				augment(r, c) // free column: augmenting path complete
				break
			}
			// Column joins the tree; its current mate row expands the tree.
			inTreeCol[c] = true
			treeCols = append(treeCols, c)
			treeReacher[c] = r
			addRowToTree(colMate[c])
		}
	}

	out := make(Mates, nr+nc)
	for i := range out {
		out[i] = graph.None
	}
	for r, c := range rowMate {
		if c >= 0 {
			out[r] = graph.Vertex(nr + c)
			out[nr+c] = graph.Vertex(r)
		}
	}
	return out, nil
}
