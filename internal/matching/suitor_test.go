package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestSuitorMatchesSequentialOnGrids(t *testing.T) {
	g, err := gen.Grid2D(30, 30, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := LocallyDominant(g)
	for _, workers := range []int{1, 2, 4, 8} {
		got := Suitor(g, workers)
		if err := got.VerifyMaximal(g); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: vertex %d mate %d, sequential %d", workers, v, got[v], want[v])
			}
		}
	}
}

func TestSuitorOnIrregularGraphs(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.RMAT(9, 6, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		want := LocallyDominant(g)
		got := Suitor(g, 4)
		if got.Weight(g) != want.Weight(g) {
			t.Fatalf("seed %d: suitor weight %g, sequential %g", seed, got.Weight(g), want.Weight(g))
		}
	}
}

func TestSuitorWithTies(t *testing.T) {
	base, err := gen.Grid2D(12, 12, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Reweight(base, gen.WeightInteger, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := LocallyDominant(g)
	for run := 0; run < 5; run++ { // repeated runs shake out interleavings
		got := Suitor(g, 6)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("run %d: vertex %d mate %d, sequential %d", run, v, got[v], want[v])
			}
		}
	}
}

func TestSuitorEdgeCases(t *testing.T) {
	empty, _ := gen.ErdosRenyi(1, 0, true, 0)
	if m := Suitor(empty, 4); m[0] != -1 {
		t.Fatal("isolated vertex matched")
	}
	if m := Suitor(empty, 0); m == nil { // workers=0 selects GOMAXPROCS
		t.Fatal("nil mates")
	}
}

// Property: suitor with arbitrary worker counts always reproduces the
// sequential locally-dominant matching.
func TestQuickSuitorDeterministic(t *testing.T) {
	f := func(nRaw, mRaw, wRaw uint8, seed uint64) bool {
		n := int(nRaw)%40 + 1
		g, err := gen.ErdosRenyi(n, int64(mRaw)*2, true, seed)
		if err != nil {
			return false
		}
		want := LocallyDominant(g)
		got := Suitor(g, int(wRaw)%6+1)
		if got.VerifyMaximal(g) != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
