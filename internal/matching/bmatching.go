package matching

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// BMatching is a b-matching: every vertex v is incident on at most B[v]
// matched edges. b-matching generalizes matching (b ≡ 1) and underlies
// several of the paper's §1 applications — Halappanavar's thesis [9], the
// paper's reference for the matching algorithm's full treatment, develops
// exactly this family. The greedy ½-approximation and the locally-dominant
// protocol both generalize, which is why the repository carries them.
type BMatching struct {
	// B is the per-vertex capacity.
	B []int
	// Partners[v] lists the matched partners of v, sorted ascending.
	Partners [][]graph.Vertex
}

// UniformB returns a capacity vector with b for every vertex.
func UniformB(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Weight sums matched edge weights (each edge once).
func (m *BMatching) Weight(g *graph.Graph) float64 {
	var sum float64
	for v, ps := range m.Partners {
		for _, u := range ps {
			if graph.Vertex(v) < u {
				if w, ok := g.EdgeWeight(graph.Vertex(v), u); ok {
					sum += w
				}
			}
		}
	}
	return sum
}

// Size counts matched edges.
func (m *BMatching) Size() int {
	n := 0
	for v, ps := range m.Partners {
		for _, u := range ps {
			if graph.Vertex(v) < u {
				n++
			}
		}
	}
	return n
}

// Verify checks capacities, symmetry, edge existence and duplicates.
func (m *BMatching) Verify(g *graph.Graph) error {
	if len(m.Partners) != g.NumVertices() || len(m.B) != g.NumVertices() {
		return fmt.Errorf("matching: b-matching covers %d/%d vertices for graph with %d",
			len(m.Partners), len(m.B), g.NumVertices())
	}
	for v, ps := range m.Partners {
		if len(ps) > m.B[v] {
			return fmt.Errorf("matching: vertex %d has %d partners, capacity %d", v, len(ps), m.B[v])
		}
		for i, u := range ps {
			if i > 0 && ps[i-1] >= u {
				return fmt.Errorf("matching: partners of %d not sorted/unique", v)
			}
			if !g.HasEdge(graph.Vertex(v), u) {
				return fmt.Errorf("matching: pair {%d,%d} is not an edge", v, u)
			}
			if !containsVertex(m.Partners[u], graph.Vertex(v)) {
				return fmt.Errorf("matching: asymmetric pair {%d,%d}", v, u)
			}
		}
	}
	return nil
}

// VerifyMaximal additionally checks that no edge joins two under-capacity
// vertices that are not already matched to each other.
func (m *BMatching) VerifyMaximal(g *graph.Graph) error {
	if err := m.Verify(g); err != nil {
		return err
	}
	var bad error
	g.ForEachEdge(func(u, v graph.Vertex, _ float64) {
		if bad != nil {
			return
		}
		if len(m.Partners[u]) < m.B[u] && len(m.Partners[v]) < m.B[v] &&
			!containsVertex(m.Partners[u], v) {
			bad = fmt.Errorf("matching: not b-maximal, edge {%d,%d} joins under-capacity vertices", u, v)
		}
	})
	return bad
}

func containsVertex(s []graph.Vertex, v graph.Vertex) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// edgeLess is the strict total order on edges shared by every b-matching
// algorithm here: heavier first, then lexicographic on the sorted endpoint
// pair. A consistent total order is what makes the greedy fixed point unique
// and lets the distributed protocol reproduce it exactly.
func edgeLess(wa float64, a1, a2 graph.Vertex, wb float64, b1, b2 graph.Vertex) bool {
	if wa != wb {
		return wa > wb
	}
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	if b1 > b2 {
		b1, b2 = b2, b1
	}
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// GreedyB computes the greedy ½-approximate b-matching: edges in the
// edgeLess order, take each whose endpoints both have spare capacity.
func GreedyB(g *graph.Graph, b []int) (*BMatching, error) {
	n := g.NumVertices()
	if len(b) != n {
		return nil, fmt.Errorf("matching: %d capacities for %d vertices", len(b), n)
	}
	for v, cap := range b {
		if cap < 0 {
			return nil, fmt.Errorf("matching: negative capacity at vertex %d", v)
		}
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		return edgeLess(edges[i].W, edges[i].U, edges[i].V, edges[j].W, edges[j].U, edges[j].V)
	})
	m := &BMatching{B: b, Partners: make([][]graph.Vertex, n)}
	left := append([]int(nil), b...)
	for _, e := range edges {
		if left[e.U] > 0 && left[e.V] > 0 {
			m.Partners[e.U] = append(m.Partners[e.U], e.V)
			m.Partners[e.V] = append(m.Partners[e.V], e.U)
			left[e.U]--
			left[e.V]--
		}
	}
	for v := range m.Partners {
		sort.Slice(m.Partners[v], func(i, j int) bool { return m.Partners[v][i] < m.Partners[v][j] })
	}
	return m, nil
}
