// Package integration_test drives randomized end-to-end runs across every
// module boundary: generator → partitioner → distributed graph → both
// distributed algorithms → global verification, under randomized message
// delivery. Each run checks the full invariant set:
//
//   - the parallel matching equals the sequential locally-dominant matching
//     (and hence is valid, maximal, and weight-invariant in p);
//   - the parallel coloring is proper, complete, and within Δ+1;
//   - partitions cover the graph and the distributed views are consistent.
package integration_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// scenario describes one randomized end-to-end configuration.
type scenario struct {
	name    string
	graph   func(seed uint64) (*graph.Graph, error)
	part    func(g *graph.Graph, p int, seed uint64) (*partition.Partition, error)
	p       int
	perturb uint64
}

func scenarios() []scenario {
	return []scenario{
		{
			name:  "grid/uniform2d/p4",
			graph: func(s uint64) (*graph.Graph, error) { return gen.Grid2D(24, 24, true, s) },
			part: func(g *graph.Graph, p int, s uint64) (*partition.Partition, error) {
				return partition.Grid2D(24, 24, 2, 2)
			},
			p: 4,
		},
		{
			name:  "grid/random-partition/p6/perturbed",
			graph: func(s uint64) (*graph.Graph, error) { return gen.Grid2D(20, 20, true, s) },
			part: func(g *graph.Graph, p int, s uint64) (*partition.Partition, error) {
				return partition.Random(g, p, s)
			},
			p:       6,
			perturb: 99,
		},
		{
			name:  "er/bfs/p5",
			graph: func(s uint64) (*graph.Graph, error) { return gen.ErdosRenyi(250, 1200, true, s) },
			part: func(g *graph.Graph, p int, s uint64) (*partition.Partition, error) {
				return partition.BFS(g, p, s)
			},
			p: 5,
		},
		{
			name:  "rmat/multilevel/p7/perturbed",
			graph: func(s uint64) (*graph.Graph, error) { return gen.RMAT(8, 6, true, s) },
			part: func(g *graph.Graph, p int, s uint64) (*partition.Partition, error) {
				return partition.Multilevel(g, p, partition.MultilevelOptions{Seed: s})
			},
			p:       7,
			perturb: 7,
		},
		{
			name:  "circuit/multilevel-norefine/p8",
			graph: func(s uint64) (*graph.Graph, error) { return gen.Circuit(22, 22, 0.45, true, s) },
			part: func(g *graph.Graph, p int, s uint64) (*partition.Partition, error) {
				return partition.Multilevel(g, p, partition.MultilevelOptions{Seed: s, NoRefine: true})
			},
			p: 8,
		},
		{
			name:  "geometric/block1d/p3",
			graph: func(s uint64) (*graph.Graph, error) { return gen.Geometric(300, 0.09, true, s) },
			part: func(g *graph.Graph, p int, s uint64) (*partition.Partition, error) {
				return partition.Block1D(g, p)
			},
			p: 3,
		},
	}
}

func runScenario(t *testing.T, sc scenario, seed uint64) {
	t.Helper()
	g, err := sc.graph(seed)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	part, err := sc.part(g, sc.p, seed)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if err := part.Validate(g); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	for r, d := range shares {
		if err := d.Validate(); err != nil {
			t.Fatalf("share %d invalid: %v", r, err)
		}
	}
	var opts []mpi.Option
	opts = append(opts, mpi.WithDeadline(60*time.Second))
	if sc.perturb != 0 {
		opts = append(opts, mpi.WithPerturbation(sc.perturb+seed))
	}

	mResults := make([]*matching.ParallelResult, part.P)
	cResults := make([]*coloring.ParallelResult, part.P)
	var mu sync.Mutex
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		mr, err := matching.Parallel(c, shares[c.Rank()], matching.ParallelOptions{})
		if err != nil {
			return fmt.Errorf("matching: %w", err)
		}
		c.Barrier()
		cr, err := coloring.Parallel(c, shares[c.Rank()], coloring.ParallelOptions{
			Seed: seed, SuperstepSize: 64,
		})
		if err != nil {
			return fmt.Errorf("coloring: %w", err)
		}
		mu.Lock()
		mResults[c.Rank()] = mr
		cResults[c.Rank()] = cr
		mu.Unlock()
		return nil
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Matching invariants.
	mates, err := matching.Gather(shares, mResults)
	if err != nil {
		t.Fatalf("gather matching: %v", err)
	}
	if err := mates.VerifyMaximal(g); err != nil {
		t.Fatalf("matching invalid: %v", err)
	}
	seq := matching.LocallyDominant(g)
	for v := range seq {
		if mates[v] != seq[v] {
			t.Fatalf("vertex %d: parallel mate %d, sequential %d", v, mates[v], seq[v])
		}
	}

	// Coloring invariants.
	colors, err := coloring.Gather(shares, cResults)
	if err != nil {
		t.Fatalf("gather coloring: %v", err)
	}
	if err := colors.Verify(g); err != nil {
		t.Fatalf("coloring invalid: %v", err)
	}
	if colors.NumColors() > g.MaxDegree()+1 {
		t.Fatalf("coloring used %d colors, Δ+1 = %d", colors.NumColors(), g.MaxDegree()+1)
	}
}

func TestEndToEndScenarios(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				runScenario(t, sc, seed)
			}
		})
	}
}

// TestEndToEndMatchingThenColoringReuse runs both algorithms back-to-back in
// one world over many seeds — the kind of pipeline a real application (e.g.
// coarsening with matchings, then coloring the coarse graph) performs.
func TestEndToEndPipelineInOneWorld(t *testing.T) {
	g, err := gen.Grid2D(30, 30, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(30, 30, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	// Three rounds of matching + coloring in the same world must not leak
	// messages between phases.
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		for round := 0; round < 3; round++ {
			if _, err := matching.Parallel(c, shares[c.Rank()], matching.ParallelOptions{}); err != nil {
				return err
			}
			c.Barrier()
			if _, err := coloring.Parallel(c, shares[c.Rank()], coloring.ParallelOptions{Seed: uint64(round)}); err != nil {
				return err
			}
			c.Barrier()
		}
		return nil
	}, mpi.WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

// TestWeightInvarianceSweep verifies the paper's Section 5.2 observation
// across a sweep of partitioners and rank counts on one graph.
func TestWeightInvarianceSweep(t *testing.T) {
	g, err := gen.Circuit(25, 25, 0.45, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := matching.LocallyDominant(g).Weight(g)
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		for _, mk := range []func() (*partition.Partition, error){
			func() (*partition.Partition, error) { return partition.Block1D(g, p) },
			func() (*partition.Partition, error) { return partition.BFS(g, p, uint64(p)) },
			func() (*partition.Partition, error) { return partition.Random(g, p, uint64(p)) },
		} {
			part, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			shares, err := dgraph.Distribute(g, part)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*matching.ParallelResult, p)
			var mu sync.Mutex
			err = mpi.Run(p, func(c *mpi.Comm) error {
				r, err := matching.Parallel(c, shares[c.Rank()], matching.ParallelOptions{})
				if err != nil {
					return err
				}
				mu.Lock()
				results[c.Rank()] = r
				mu.Unlock()
				return nil
			}, mpi.WithDeadline(60*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			mates, err := matching.Gather(shares, results)
			if err != nil {
				t.Fatal(err)
			}
			if got := mates.Weight(g); got != want {
				t.Fatalf("p=%d: weight %g, want %g", p, got, want)
			}
		}
	}
}
