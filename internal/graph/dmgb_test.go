package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dmgbTestGraph builds a small irregular weighted graph.
func dmgbTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := BuildUndirected(9, []Edge{
		{0, 1, 1.5}, {0, 8, 2.25}, {1, 2, 0.5}, {2, 3, 7},
		{3, 4, 1}, {4, 5, 3.5}, {5, 6, 0.125}, {6, 7, 9}, {1, 7, 4},
	}, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Xadj {
		if a.Xadj[i] != b.Xadj[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			return false
		}
	}
	if (a.W == nil) != (b.W == nil) {
		return false
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			return false
		}
	}
	return true
}

func TestDMGBRoundTrip(t *testing.T) {
	weighted := dmgbTestGraph(t)
	unweighted := weighted.Clone()
	unweighted.W = nil
	empty := &Graph{Xadj: []int64{0}}
	isolated := &Graph{Xadj: []int64{0, 0, 0, 0}} // vertices, no edges
	for name, g := range map[string]*Graph{
		"weighted": weighted, "unweighted": unweighted, "empty": empty, "isolated": isolated,
	} {
		enc, err := EncodeDMGB(g)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := ReadDMGB(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("%s: round trip changed the graph", name)
		}
		if Fingerprint(g) != Fingerprint(got) {
			t.Fatalf("%s: round trip changed the fingerprint", name)
		}
	}
}

func TestDMGBHeaderCarriesFingerprint(t *testing.T) {
	g := dmgbTestGraph(t)
	enc, err := EncodeDMGB(g)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDMGB(enc) {
		t.Fatal("encoded stream does not sniff as DMGB")
	}
	hdr, err := ParseDMGBHeader(enc[:DMGBHeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Fingerprint != Fingerprint(g) {
		t.Fatalf("header fingerprint %s != Fingerprint %s", hdr.Fingerprint, Fingerprint(g))
	}
	if hdr.NumVertices != g.NumVertices() || hdr.NumArcs != int64(len(g.Adj)) || !hdr.Weighted {
		t.Fatalf("header %+v does not describe the graph", hdr)
	}
}

// TestDMGBCanonical asserts the encoding is deterministic: equal graphs mean
// equal bytes, which is what lets an upload session dedupe by byte prefix.
func TestDMGBCanonical(t *testing.T) {
	g := dmgbTestGraph(t)
	a, _ := EncodeDMGB(g)
	b, _ := EncodeDMGB(g.Clone())
	if !bytes.Equal(a, b) {
		t.Fatal("encoding of equal graphs differs")
	}
}

// TestFormatsAgreeOnFingerprint is the cross-format equivalence gate: the
// same graph written as text, legacy binary, and DMGB must read back with
// identical fingerprints through the sniffing ReadAuto path.
func TestFormatsAgreeOnFingerprint(t *testing.T) {
	g := dmgbTestGraph(t)
	want := Fingerprint(g)
	writers := map[string]func(io.Writer, *Graph) error{
		"text": WriteText, "binary": WriteBinary, "dmgb": WriteDMGB,
	}
	for name, write := range writers {
		var buf bytes.Buffer
		if err := write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadAuto(&buf)
		if err != nil {
			t.Fatalf("%s: ReadAuto: %v", name, err)
		}
		if fp := Fingerprint(got); fp != want {
			t.Fatalf("%s: fingerprint %s, want %s", name, fp, want)
		}
	}
}

func TestReadWriteFileSniffsDMGB(t *testing.T) {
	g := dmgbTestGraph(t)
	dir := t.TempDir()
	for _, name := range []string{"g.dmgb", "g.bin", "g.txt"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if Fingerprint(got) != Fingerprint(g) {
			t.Fatalf("%s: fingerprint changed through WriteFile/ReadFile", name)
		}
	}
	// Content sniffing, not extension: a DMGB stream under a .txt name reads.
	odd := filepath.Join(dir, "disguised.txt")
	enc, _ := EncodeDMGB(g)
	if err := os.WriteFile(odd, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(odd)
	if err != nil {
		t.Fatalf("sniffing a disguised DMGB file: %v", err)
	}
	if Fingerprint(got) != Fingerprint(g) {
		t.Fatal("disguised DMGB file decoded wrong")
	}
}

func TestDMGBRejectsCorruption(t *testing.T) {
	g := dmgbTestGraph(t)
	enc, err := EncodeDMGB(g)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadDMGB(bytes.NewReader(enc[:DMGBHeaderSize-10])); err == nil {
			t.Fatal("truncated header decoded")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		if _, err := ReadDMGB(bytes.NewReader(enc[:len(enc)-5])); err == nil {
			t.Fatal("truncated body decoded")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] = 'X'
		if _, err := ReadDMGB(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad magic decoded")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		binary.LittleEndian.PutUint16(bad[4:6], 99)
		if _, err := ReadDMGB(bytes.NewReader(bad)); err == nil {
			t.Fatal("unknown version decoded")
		}
	})
	t.Run("fingerprint mismatch", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[24] ^= 0xff // flip a declared-fingerprint byte
		_, err := ReadDMGB(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
			t.Fatalf("lying fingerprint: %v", err)
		}
	})
	t.Run("flipped weight", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[len(bad)-1] ^= 0x01 // corrupt the last weight byte
		_, err := ReadDMGB(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
			t.Fatalf("corrupt body: %v", err)
		}
	})
	t.Run("implausible arc count", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		binary.LittleEndian.PutUint64(bad[16:24], 1<<50)
		if _, err := ReadDMGB(bytes.NewReader(bad)); err == nil {
			t.Fatal("implausible arc count decoded")
		}
	})
}

// dmgbHeader hand-builds a header for adversarial-stream tests; the declared
// fingerprint is zeros, which is fine for rejections that fire before the
// fingerprint check.
func dmgbHeader(n, arcs uint64, flags uint16) []byte {
	hdr := make([]byte, DMGBHeaderSize)
	copy(hdr[0:4], DMGBMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], DMGBVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], n)
	binary.LittleEndian.PutUint64(hdr[16:24], arcs)
	return hdr
}

func uvarint(x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return tmp[:binary.PutUvarint(tmp[:], x)]
}

// TestDMGBRejectsAdversarialStreams pins the decoder fixes the fuzzing pass
// demanded: arithmetic on attacker-controlled uvarints must not wrap into
// accepted state, and only the canonical encoding may decode.
func TestDMGBRejectsAdversarialStreams(t *testing.T) {
	t.Run("degree sum overflow", func(t *testing.T) {
		// Two 2^63 degrees wrap int64 addition back to 0 == declared arcs.
		stream := append(dmgbHeader(2, 0, 0), uvarint(1<<63)...)
		stream = append(stream, uvarint(1<<63)...)
		_, err := ReadDMGB(bytes.NewReader(stream))
		if err == nil || !strings.Contains(err.Error(), "exceed") {
			t.Fatalf("wrapped degree sum: %v", err)
		}
	})
	t.Run("negative first neighbor", func(t *testing.T) {
		// A raw first neighbor ≥ 2^63 goes negative under int64 conversion
		// and must be caught by an unsigned bound, not a signed one.
		stream := append(dmgbHeader(2, 1, 0), uvarint(1)...) // degrees 1, 0
		stream = append(stream, uvarint(0)...)
		stream = append(stream, uvarint(1<<63)...) // vertex 0's neighbor
		_, err := ReadDMGB(bytes.NewReader(stream))
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("negative neighbor: %v", err)
		}
	})
	t.Run("gap overflow", func(t *testing.T) {
		stream := append(dmgbHeader(3, 2, 0), uvarint(2)...) // degrees 2, 0, 0
		stream = append(stream, uvarint(0)...)
		stream = append(stream, uvarint(0)...)
		stream = append(stream, uvarint(1)...)     // first neighbor 1
		stream = append(stream, uvarint(1<<63)...) // gap wraps prev+gap
		_, err := ReadDMGB(bytes.NewReader(stream))
		if err == nil || !strings.Contains(err.Error(), "overruns") {
			t.Fatalf("wrapped gap: %v", err)
		}
	})
	t.Run("non-minimal uvarint", func(t *testing.T) {
		// Re-encode a valid stream's first degree as a zero-padded two-byte
		// varint: same decoded value, different bytes. The content fingerprint
		// still matches, so only canonical-encoding rejection catches it —
		// without it, encode(decode(x)) would not reproduce x.
		g := dmgbTestGraph(t)
		enc, err := EncodeDMGB(g)
		if err != nil {
			t.Fatal(err)
		}
		d := enc[DMGBHeaderSize]
		if d >= 0x80 {
			t.Fatalf("test wants a single-byte first degree, got %#x", d)
		}
		bad := append([]byte(nil), enc[:DMGBHeaderSize]...)
		bad = append(bad, 0x80|d, 0x00)
		bad = append(bad, enc[DMGBHeaderSize+1:]...)
		_, err = ReadDMGB(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "non-minimal") {
			t.Fatalf("non-minimal varint: %v", err)
		}
	})
	t.Run("oversized uvarint", func(t *testing.T) {
		stream := append(dmgbHeader(1, 0, 0),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // 11th-bit overflow
		_, err := ReadDMGB(bytes.NewReader(stream))
		if err == nil || !strings.Contains(err.Error(), "overflows") {
			t.Fatalf("overlong varint: %v", err)
		}
	})
}

// TestDMGBStreamingDecode feeds the decoder one byte at a time through a
// pipe, the shape of an in-flight chunked upload.
func TestDMGBStreamingDecode(t *testing.T) {
	g := dmgbTestGraph(t)
	enc, err := EncodeDMGB(g)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	type result struct {
		g   *Graph
		err error
	}
	done := make(chan result, 1)
	go func() {
		got, err := ReadDMGB(pr)
		done <- result{got, err}
	}()
	for _, b := range enc {
		if _, err := pw.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	pw.Close()
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !graphsEqual(g, res.g) {
		t.Fatal("streamed decode changed the graph")
	}
}
