package graph

import "fmt"

// Bipartite is a weighted bipartite graph with NRows "row" vertices and
// NCols "column" vertices, stored as a general Graph in which row vertex r
// has id r and column vertex c has id NRows + c. This mirrors the paper's
// use of the bipartite representation of a sparse matrix (Table 1.1 and the
// Fig. 5.3 matching experiment): rows and columns of the matrix become the
// two vertex classes and each nonzero becomes a weighted edge.
type Bipartite struct {
	NRows, NCols int
	*Graph
}

// RowID converts a row index to a vertex id.
func (b *Bipartite) RowID(r int) Vertex { return Vertex(r) }

// ColID converts a column index to a vertex id.
func (b *Bipartite) ColID(c int) Vertex { return Vertex(b.NRows + c) }

// IsRow reports whether a vertex id is on the row side.
func (b *Bipartite) IsRow(v Vertex) bool { return int(v) < b.NRows }

// Entry is one nonzero of a sparse matrix: value W at (Row, Col).
type Entry struct {
	Row, Col int
	W        float64
}

// BuildBipartite assembles a bipartite graph from matrix entries. Duplicate
// entries are merged with the given policy.
func BuildBipartite(nrows, ncols int, entries []Entry, dedupe DedupePolicy) (*Bipartite, error) {
	if nrows < 0 || ncols < 0 {
		return nil, fmt.Errorf("graph: negative bipartite dimensions %dx%d", nrows, ncols)
	}
	edges := make([]Edge, 0, len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= nrows || e.Col < 0 || e.Col >= ncols {
			return nil, fmt.Errorf("graph: entry (%d,%d) out of %dx%d", e.Row, e.Col, nrows, ncols)
		}
		edges = append(edges, Edge{U: Vertex(e.Row), V: Vertex(nrows + e.Col), W: e.W})
	}
	g, err := BuildUndirected(nrows+ncols, edges, dedupe)
	if err != nil {
		return nil, err
	}
	return &Bipartite{NRows: nrows, NCols: ncols, Graph: g}, nil
}

// ValidateBipartite checks that no edge joins two vertices of the same side,
// in addition to the general graph invariants.
func (b *Bipartite) ValidateBipartite() error {
	if err := b.Validate(); err != nil {
		return err
	}
	if b.NumVertices() != b.NRows+b.NCols {
		return fmt.Errorf("graph: bipartite has %d vertices, want %d", b.NumVertices(), b.NRows+b.NCols)
	}
	var bad error
	b.ForEachEdge(func(u, v Vertex, _ float64) {
		if bad == nil && b.IsRow(u) == b.IsRow(v) {
			bad = fmt.Errorf("graph: edge {%d,%d} joins same bipartite side", u, v)
		}
	})
	return bad
}
