package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// triangle returns K3 with weights 3, 2, 1 — the paper's Fig. 3.1 example.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := BuildUndirected(3, []Edge{
		{U: 0, V: 1, W: 3},
		{U: 0, V: 2, W: 2},
		{U: 1, V: 2, W: 1},
	}, DedupeFirst)
	if err != nil {
		t.Fatalf("BuildUndirected: %v", err)
	}
	return g
}

func TestBuildTriangle(t *testing.T) {
	g := triangle(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v, want n=3 m=3", g)
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	w, ok := g.EdgeWeight(1, 0)
	if !ok || w != 3 {
		t.Errorf("EdgeWeight(1,0) = %g,%v, want 3,true", w, ok)
	}
	if g.HasEdge(0, 0) {
		t.Error("HasEdge(0,0) = true on simple graph")
	}
	if got := g.TotalWeight(); got != 6 {
		t.Errorf("TotalWeight = %g, want 6", got)
	}
}

func TestBuildDropsSelfLoops(t *testing.T) {
	g, err := BuildUndirected(2, []Edge{{U: 0, V: 0, W: 9}, {U: 0, V: 1, W: 1}}, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := BuildUndirected(2, []Edge{{U: 0, V: 2}}, DedupeFirst); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := BuildUndirected(-1, nil, DedupeFirst); err == nil {
		t.Fatal("expected negative-n error")
	}
}

func TestDedupePolicies(t *testing.T) {
	dup := []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 0, W: 5}}
	for _, tc := range []struct {
		policy DedupePolicy
		want   float64
	}{
		{DedupeFirst, 2},
		{DedupeSum, 7},
		{DedupeMax, 5},
	} {
		g, err := BuildUndirected(2, dup, tc.policy)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != 1 {
			t.Fatalf("policy %v: NumEdges = %d, want 1", tc.policy, g.NumEdges())
		}
		if w, _ := g.EdgeWeight(0, 1); w != tc.want {
			t.Errorf("policy %v: weight = %g, want %g", tc.policy, w, tc.want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := BuildUndirected(0, nil, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 || g.MinDegree() != 0 {
		t.Fatalf("empty graph misreports: %v", g)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := BuildUndirected(5, []Edge{{U: 1, V: 3, W: 1}}, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 1 {
		t.Fatalf("degrees = [%d..%d], want [0..1]", g.MinDegree(), g.MaxDegree())
	}
	if got := CountComponents(g); got != 4 {
		t.Fatalf("components = %d, want 4", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := triangle(t)

	asym := base.Clone()
	asym.W[0] = 42 // break weight symmetry
	if err := asym.Validate(); err == nil {
		t.Error("Validate accepted asymmetric weights")
	}

	loop := base.Clone()
	loop.Adj[0] = 0 // self loop
	if err := loop.Validate(); err == nil {
		t.Error("Validate accepted self loop")
	}

	unsorted := base.Clone()
	unsorted.Adj[0], unsorted.Adj[1] = unsorted.Adj[1], unsorted.Adj[0]
	unsorted.W[0], unsorted.W[1] = unsorted.W[1], unsorted.W[0]
	if err := unsorted.Validate(); err == nil {
		t.Error("Validate accepted unsorted adjacency")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := triangle(t)
	edges := g.Edges()
	g2, err := BuildUndirected(g.NumVertices(), edges, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Adj, g2.Adj) || !reflect.DeepEqual(g.W, g2.W) {
		t.Fatal("Edges -> Build round trip changed graph")
	}
}

func TestPermuteIdentityAndReverse(t *testing.T) {
	g := randomTestGraph(t, 30, 80, 7)
	id := make([]Vertex, g.NumVertices())
	for i := range id {
		id[i] = Vertex(i)
	}
	same, err := Permute(g, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Adj, same.Adj) {
		t.Fatal("identity permutation changed graph")
	}
	rev := make([]Vertex, len(id))
	for i := range rev {
		rev[i] = Vertex(len(rev) - 1 - i)
	}
	p, err := Permute(g, rev)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("permuted graph invalid: %v", err)
	}
	// Permuting back must restore the original.
	back, err := Permute(p, rev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Adj, back.Adj) || !reflect.DeepEqual(g.W, back.W) {
		t.Fatal("double reverse permutation is not identity")
	}
}

func TestPermuteRejectsBadPermutation(t *testing.T) {
	g := triangle(t)
	if _, err := Permute(g, []Vertex{0, 0, 1}); err == nil {
		t.Error("accepted duplicate permutation entry")
	}
	if _, err := Permute(g, []Vertex{0, 1}); err == nil {
		t.Error("accepted short permutation")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := randomTestGraph(t, 40, 120, 3)
	verts := []Vertex{0, 5, 6, 7, 20, 39}
	sub, toOld, err := InducedSubgraph(g, verts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every subgraph edge must exist in the original with equal weight.
	sub.ForEachEdge(func(u, v Vertex, w float64) {
		ow, ok := g.EdgeWeight(toOld[u], toOld[v])
		if !ok || ow != w {
			t.Errorf("subgraph edge {%d,%d} w=%g not in original (ok=%v w=%g)", u, v, w, ok, ow)
		}
	})
	// Every original edge between chosen vertices must appear in the subgraph.
	inSet := map[Vertex]Vertex{}
	for i, v := range verts {
		inSet[v] = Vertex(i)
	}
	g.ForEachEdge(func(u, v Vertex, w float64) {
		nu, ok1 := inSet[u]
		nv, ok2 := inSet[v]
		if ok1 && ok2 && !sub.HasEdge(nu, nv) {
			t.Errorf("original edge {%d,%d} missing from subgraph", u, v)
		}
	})
}

func TestTextRoundTrip(t *testing.T) {
	g := randomTestGraph(t, 25, 60, 11)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Xadj, g2.Xadj) || !reflect.DeepEqual(g.Adj, g2.Adj) {
		t.Fatal("text round trip changed structure")
	}
	for i := range g.W {
		if g.W[i] != g2.W[i] {
			t.Fatalf("text round trip changed weight %d: %g vs %g", i, g.W[i], g2.W[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomTestGraph(t, 100, 400, 13)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, g2) {
		t.Fatal("binary round trip changed graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all........."))); err == nil {
		t.Fatal("accepted garbage binary input")
	}
}

func TestReadTextErrors(t *testing.T) {
	for name, in := range map[string]string{
		"edge before header": "e 0 1 1\n",
		"bad header":         "g one two\n",
		"edge count lie":     "g 2 5\ne 0 1 1\n",
		"unknown record":     "g 1 0\nz\n",
	} {
		if _, err := ReadText(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBipartiteBuildAndValidate(t *testing.T) {
	b, err := BuildBipartite(2, 3, []Entry{
		{Row: 0, Col: 0, W: 1}, {Row: 0, Col: 2, W: 5}, {Row: 1, Col: 1, W: 2},
	}, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateBipartite(); err != nil {
		t.Fatal(err)
	}
	if b.NumVertices() != 5 || b.NumEdges() != 3 {
		t.Fatalf("bipartite %v, want n=5 m=3", b.Graph)
	}
	if !b.IsRow(b.RowID(1)) || b.IsRow(b.ColID(0)) {
		t.Error("row/col id classification wrong")
	}
	if _, err := BuildBipartite(2, 2, []Entry{{Row: 2, Col: 0}}, DedupeFirst); err == nil {
		t.Error("accepted out-of-range entry")
	}
}

func TestSummarize(t *testing.T) {
	g := triangle(t)
	s := Summarize(g)
	if s.Vertices != 3 || s.Edges != 3 || s.MinDegree != 2 || s.MaxDegree != 2 || s.Components != 1 || !s.Weighted {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Stats.String")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := BuildUndirected(4, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}}, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	deg, cnt := DegreeHistogram(g)
	if !reflect.DeepEqual(deg, []int{0, 1, 2}) || !reflect.DeepEqual(cnt, []int64{1, 2, 1}) {
		t.Fatalf("histogram = %v %v", deg, cnt)
	}
}

// randomTestGraph builds a random simple graph for tests; density is rough
// since duplicates merge.
func randomTestGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := Vertex(rng.Intn(n))
		v := Vertex(rng.Intn(n))
		edges = append(edges, Edge{U: u, V: v, W: float64(rng.Intn(1000)) + 0.5})
	}
	g, err := BuildUndirected(n, edges, DedupeFirst)
	if err != nil {
		t.Fatalf("randomTestGraph: %v", err)
	}
	return g
}

// Property: BuildUndirected always yields a Validate-clean graph, for any
// in-range edge multiset.
func TestQuickBuildAlwaysValid(t *testing.T) {
	f := func(raw []uint32, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				U: Vertex(int(raw[i]) % n),
				V: Vertex(int(raw[i+1]) % n),
				W: float64(raw[i]%97) + 1,
			})
		}
		g, err := BuildUndirected(n, edges, DedupeMax)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips exactly through both formats.
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				U: Vertex(int(raw[i]) % n),
				V: Vertex(int(raw[i+1]) % n),
				W: float64(raw[i]) + 0.25,
			})
		}
		g, err := BuildUndirected(n, edges, DedupeFirst)
		if err != nil {
			return false
		}
		var bin, txt bytes.Buffer
		if WriteBinary(&bin, g) != nil || WriteText(&txt, g) != nil {
			return false
		}
		gb, err1 := ReadBinary(&bin)
		gt, err2 := ReadText(&txt)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(g, gb) &&
			reflect.DeepEqual(g.Xadj, gt.Xadj) && reflect.DeepEqual(g.Adj, gt.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsAccessors(t *testing.T) {
	g := triangle(t)
	w := g.Weights(0)
	if len(w) != 2 || w[0] != 3 || w[1] != 2 {
		t.Fatalf("Weights(0) = %v", w)
	}
	unweighted := g.Clone()
	unweighted.W = nil
	if unweighted.Weights(0) != nil {
		t.Fatal("unweighted Weights != nil")
	}
	if unweighted.Weight(0) != 1 {
		t.Fatal("unweighted Weight != 1")
	}
	if unweighted.TotalWeight() != 3 {
		t.Fatalf("unweighted TotalWeight = %g, want edge count", unweighted.TotalWeight())
	}
	if w, ok := unweighted.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatalf("unweighted EdgeWeight = %g,%v", w, ok)
	}
}

func TestGraphString(t *testing.T) {
	if got := triangle(t).String(); got != "graph{n=3 m=3}" {
		t.Fatalf("String = %q", got)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(triangle(t)) {
		t.Fatal("triangle disconnected")
	}
	two, _ := BuildUndirected(2, nil, DedupeFirst)
	if IsConnected(two) {
		t.Fatal("two isolated vertices connected")
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]Vertex{{1, 2}, {0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if _, err := FromAdjacency([][]Vertex{{5}}); err == nil {
		t.Fatal("accepted out-of-range adjacency")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	g := randomTestGraph(t, 20, 50, 17)
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Adj, got.Adj) {
			t.Fatalf("%s round trip changed adjacency", name)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("read missing file")
	}
}

func TestValidateBipartiteCatchesSameSideEdge(t *testing.T) {
	// Hand-build a "bipartite" graph with a row-row edge.
	g, err := BuildUndirected(4, []Edge{{U: 0, V: 1, W: 1}}, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	b := &Bipartite{NRows: 2, NCols: 2, Graph: g}
	if err := b.ValidateBipartite(); err == nil {
		t.Fatal("accepted same-side edge")
	}
	short := &Bipartite{NRows: 3, NCols: 2, Graph: g}
	if err := short.ValidateBipartite(); err == nil {
		t.Fatal("accepted wrong vertex count")
	}
}
