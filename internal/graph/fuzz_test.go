package graph_test

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// fuzzSeedGraphs builds the seed corpus: the same generator families
// dmgm-gen writes (Erdős–Rényi, grid, circuit-like) plus degenerate shapes a
// generator never emits — an empty graph, a single vertex, an isolated-vertex
// mix — each in weighted and unweighted form.
func fuzzSeedGraphs(f *testing.F) []*graph.Graph {
	f.Helper()
	var gs []*graph.Graph
	for _, weighted := range []bool{false, true} {
		er, err := gen.ErdosRenyi(60, 180, weighted, 7)
		if err != nil {
			f.Fatal(err)
		}
		gs = append(gs, er)
	}
	build := func(n int, edges []graph.Edge) *graph.Graph {
		g, err := graph.BuildUndirected(n, edges, graph.DedupeFirst)
		if err != nil {
			f.Fatal(err)
		}
		return g
	}
	gs = append(gs,
		build(0, nil),
		build(1, nil),
		build(5, []graph.Edge{{U: 0, V: 4, W: 2.5}}), // isolated vertices between the endpoints
		build(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 1}}),
	)
	return gs
}

// FuzzDMGBDecode is the adversarial gate on the streaming DMGB decoder: no
// input may panic it or force an allocation beyond what the stream's own
// length supports, and any input it accepts must round-trip byte-identically
// (the encoding is canonical, so decode-then-encode must reproduce exactly
// the bytes consumed).
func FuzzDMGBDecode(f *testing.F) {
	for _, g := range fuzzSeedGraphs(f) {
		enc, err := graph.EncodeDMGB(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Mutated variants steer the fuzzer at the interesting failure
		// surfaces: a truncated body, a bit-flipped body byte, and a lying
		// header field.
		if len(enc) > graph.DMGBHeaderSize {
			f.Add(enc[:graph.DMGBHeaderSize+len(enc)%17])
			flip := append([]byte(nil), enc...)
			flip[graph.DMGBHeaderSize] ^= 0x40
			f.Add(flip)
		}
		lie := append([]byte(nil), enc...)
		lie[8] ^= 0x01 // vertex count
		f.Add(lie)
	}
	f.Add([]byte("DMGB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.ReadDMGB(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking or over-allocating is not
		}
		// Structural sanity of whatever was accepted.
		n := g.NumVertices()
		if n < 0 || int64(len(g.Adj)) != g.Xadj[n] {
			t.Fatalf("decoded inconsistent CSR: n=%d len(Adj)=%d Xadj[n]=%d", n, len(g.Adj), g.Xadj[n])
		}
		for i, u := range g.Adj {
			if u < 0 || int(u) >= n {
				t.Fatalf("decoded out-of-range neighbor Adj[%d]=%d with n=%d", i, u, n)
			}
		}
		// Canonical round-trip: re-encoding must reproduce exactly the bytes
		// the decoder consumed (data may carry trailing garbage beyond the
		// stream, which the streaming decoder never reads).
		enc, err := graph.EncodeDMGB(g)
		if err != nil {
			t.Fatalf("re-encoding accepted stream: %v", err)
		}
		if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("decode/encode round-trip not byte-identical: decoded %d-vertex graph re-encodes to %d bytes", n, len(enc))
		}
	})
}
