package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format is a minimal weighted edge-list dialect:
//
//	# comment lines start with '#'
//	g <numVertices> <numEdges>
//	e <u> <v> <weight>
//	...
//
// one "e" line per undirected edge. The binary format is a fixed little-endian
// layout (magic, version, n, m, Xadj, Adj, W) that round-trips a Graph exactly
// and loads without re-sorting; it is what cmd/dmgm-gen writes by default for
// large instances.

const (
	binMagic   = 0x444d_474d // "DMGM"
	binVersion = 1
)

// WriteText writes g in the text edge-list format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "g %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v Vertex, wt float64) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "e %d %d %g\n", u, v, wt)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadText parses the text edge-list format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		n      = -1
		m      int64
		edges  []Edge
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "g":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header", lineNo)
			}
			var err error
			n, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			m, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			edges = make([]Edge, 0, m)
		case "e":
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: edge before header", lineNo)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge", lineNo)
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			w := 1.0
			if len(fields) == 4 {
				w, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
				}
			}
			edges = append(edges, Edge{U: Vertex(u), V: Vertex(v), W: w})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: missing header")
	}
	if int64(len(edges)) != m {
		return nil, fmt.Errorf("graph: header declares %d edges, file has %d", m, len(edges))
	}
	return BuildUndirected(n, edges, DedupeFirst)
}

// WriteBinary writes g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{binMagic, binVersion, uint64(g.NumVertices()), uint64(len(g.Adj))}
	weighted := uint64(0)
	if g.W != nil {
		weighted = 1
	}
	hdr = append(hdr, weighted)
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Xadj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if g.W != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format and validates the header.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: short binary header: %w", err)
		}
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] != binVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", hdr[1])
	}
	n, nadj, weighted := hdr[2], hdr[3], hdr[4]
	g := &Graph{
		Xadj: make([]int64, n+1),
		Adj:  make([]Vertex, nadj),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Xadj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, err
	}
	if weighted == 1 {
		g.W = make([]float64, nadj)
		if err := binary.Read(br, binary.LittleEndian, g.W); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ReadAuto reads a graph in any of this repository's formats, sniffing the
// stream by its magic bytes: "DMGB" selects the streaming DMGB codec, the
// legacy fixed-layout binary magic selects ReadBinary, anything else is
// parsed as the text edge-list format. Every reader path that accepts "a
// graph file" routes through here, so a .dmgb file works wherever a text or
// .bin one does.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	prefix, err := br.Peek(8)
	if err != nil && len(prefix) == 0 {
		return nil, fmt.Errorf("graph: empty input: %w", err)
	}
	switch {
	case IsDMGB(prefix):
		g, _, err := readDMGB(br)
		return g, err
	case isLegacyBinary(prefix):
		return ReadBinary(br)
	default:
		return ReadText(br)
	}
}

// isLegacyBinary reports whether the prefix begins the fixed-layout binary
// format (the little-endian encoding of binMagic).
func isLegacyBinary(prefix []byte) bool {
	if len(prefix) < 8 {
		return false
	}
	return binary.LittleEndian.Uint64(prefix) == binMagic
}

// WriteFile writes g to path; the format is DMGB if the name ends in
// ".dmgb", the legacy fixed binary if it ends in ".bin", text otherwise.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".dmgb"):
		err = WriteDMGB(f, g)
	case strings.HasSuffix(path, ".bin"):
		err = WriteBinary(f, g)
	default:
		err = WriteText(f, g)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a graph file in any supported format, sniffed by content
// (not extension) via ReadAuto.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}
