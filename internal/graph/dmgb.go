package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
)

// The DMGB format is the streaming binary graph codec of this repository:
// a fixed self-describing header followed by a varint-delta CSR body. It is
// what the serving layer's chunked upload path speaks (docs/PROTOCOL.md §7)
// and what cmd/dmgm-gen writes with -format dmgb.
//
//	offset  size  field
//	0       4     magic "DMGB"
//	4       2     version (little endian, currently 1)
//	6       2     flags (bit 0: weighted)
//	8       8     vertex count n
//	16      8     stored arc count (len(Adj), twice the edge count)
//	24      32    graph fingerprint (raw SHA-256, see Fingerprint)
//	56      ...   body
//
// The body is three sections, in hashing order so a streaming decoder can
// fingerprint the graph incrementally as bytes arrive:
//
//   - degrees: n uvarints, the per-vertex degrees (the deltas of Xadj);
//   - adjacency: per vertex, the sorted neighbor list gap-encoded — the
//     first neighbor as a raw uvarint, each subsequent as the uvarint gap
//     to its predecessor (gaps are ≥ 1, lists are strictly sorted);
//   - weights (weighted graphs only): len(Adj) little-endian float64 bits.
//
// The embedded fingerprint makes every DMGB stream content-addressed from
// its first 56 bytes: an upload session can recognize a graph the daemon
// already holds and short-circuit the transfer. The decoder recomputes the
// fingerprint from the decoded content and rejects a stream whose header
// lies, so the address is trustworthy end to end.

const (
	// DMGBMagic begins every DMGB stream.
	DMGBMagic = "DMGB"
	// DMGBVersion is the current format version.
	DMGBVersion = 1
	// DMGBHeaderSize is the fixed byte length of the header.
	DMGBHeaderSize = 56

	dmgbFlagWeighted = 1 << 0
	// dmgbMaxArcs bounds the arc count a header may claim, so a corrupted
	// stream cannot force a giant allocation.
	dmgbMaxArcs = int64(1) << 40
)

// DMGBHeader is the decoded fixed header of a DMGB stream.
type DMGBHeader struct {
	Version     int
	Weighted    bool
	NumVertices int
	NumArcs     int64
	// Fingerprint is the hex graph fingerprint the stream declares; the
	// decoder verifies it against the decoded content.
	Fingerprint string
}

// IsDMGB reports whether the prefix of a stream (at least 4 bytes) begins a
// DMGB stream.
func IsDMGB(prefix []byte) bool {
	return len(prefix) >= len(DMGBMagic) && string(prefix[:len(DMGBMagic)]) == DMGBMagic
}

// ParseDMGBHeader decodes the fixed header from the first DMGBHeaderSize
// bytes of a stream — what an upload session uses to learn the declared
// fingerprint before the body has arrived.
func ParseDMGBHeader(b []byte) (*DMGBHeader, error) {
	if len(b) < DMGBHeaderSize {
		return nil, fmt.Errorf("graph: DMGB header needs %d bytes, have %d", DMGBHeaderSize, len(b))
	}
	if !IsDMGB(b) {
		return nil, fmt.Errorf("graph: bad DMGB magic %q", b[:4])
	}
	version := int(binary.LittleEndian.Uint16(b[4:6]))
	if version != DMGBVersion {
		return nil, fmt.Errorf("graph: unsupported DMGB version %d", version)
	}
	flags := binary.LittleEndian.Uint16(b[6:8])
	if flags&^uint16(dmgbFlagWeighted) != 0 {
		return nil, fmt.Errorf("graph: unknown DMGB flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(b[8:16])
	arcs := binary.LittleEndian.Uint64(b[16:24])
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: DMGB vertex count %d exceeds 32-bit vertex ids", n)
	}
	if int64(arcs) < 0 || int64(arcs) > dmgbMaxArcs {
		return nil, fmt.Errorf("graph: implausible DMGB arc count %d", arcs)
	}
	return &DMGBHeader{
		Version:     version,
		Weighted:    flags&dmgbFlagWeighted != 0,
		NumVertices: int(n),
		NumArcs:     int64(arcs),
		Fingerprint: hex.EncodeToString(b[24:56]),
	}, nil
}

// WriteDMGB encodes g as one DMGB stream. The encoding is canonical: a given
// graph always produces the same bytes, so equal streams mean equal graphs.
func WriteDMGB(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	var hdr [DMGBHeaderSize]byte
	copy(hdr[0:4], DMGBMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], DMGBVersion)
	var flags uint16
	if g.W != nil {
		flags |= dmgbFlagWeighted
	}
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(g.Adj)))
	copy(hdr[24:56], fingerprintSum(g))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		k := binary.PutUvarint(tmp[:], x)
		_, err := bw.Write(tmp[:k])
		return err
	}
	for v := 0; v < n; v++ {
		if err := putUvarint(uint64(g.Xadj[v+1] - g.Xadj[v])); err != nil {
			return err
		}
	}
	for v := 0; v < n; v++ {
		adj := g.Neighbors(Vertex(v))
		for i, u := range adj {
			gap := uint64(uint32(u))
			if i > 0 {
				gap = uint64(uint32(u - adj[i-1]))
			}
			if err := putUvarint(gap); err != nil {
				return err
			}
		}
	}
	if g.W != nil {
		for _, wt := range g.W {
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(wt))
			if _, err := bw.Write(tmp[:8]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDMGB decodes one DMGB stream, verifying the declared fingerprint
// against the decoded content. The decode is streaming: it consumes r
// incrementally and never buffers the whole stream, so it works off a pipe
// fed by an in-flight upload just as well as off a file.
func ReadDMGB(r io.Reader) (*Graph, error) {
	g, _, err := readDMGB(asByteReader(r))
	return g, err
}

// ReadDMGBWithHeader is ReadDMGB returning the verified header too — the
// re-verifying read of the persistent graph store, which must additionally
// check that the stream's (content-verified) fingerprint matches the address
// the file was stored under.
func ReadDMGBWithHeader(r io.Reader) (*Graph, *DMGBHeader, error) {
	return readDMGB(asByteReader(r))
}

// readUvarintCanonical decodes one uvarint, rejecting non-minimal encodings.
// The codec always writes minimal varints; accepting zero-padded forms (for
// example 0x80 0x00 for 0) would let two distinct byte streams decode to the
// same graph and break the canonical-bytes contract the content addresses
// rely on (encode(decode(x)) must reproduce x exactly).
func readUvarintCanonical(br io.ByteReader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("uvarint overflows 64 bits")
			}
			if b == 0 && i > 0 {
				return 0, fmt.Errorf("non-minimal uvarint encoding")
			}
			return x | uint64(b)<<s, nil
		}
		if i == binary.MaxVarintLen64-1 {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readDMGB is the decoder body, shared by ReadDMGB and ReadAuto.
func readDMGB(br byteReader) (*Graph, *DMGBHeader, error) {
	var hb [DMGBHeaderSize]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return nil, nil, fmt.Errorf("graph: short DMGB header: %w", err)
	}
	hdr, err := ParseDMGBHeader(hb[:])
	if err != nil {
		return nil, nil, err
	}
	n := hdr.NumVertices
	fh := newFPHasher()
	fh.word(uint64(n))
	fh.word(uint64(n + 1)) // length prefix of Xadj

	// Degrees → Xadj by prefix sum. Capacities grow with the stream, not the
	// header, so a lying header cannot force a giant allocation up front.
	g := &Graph{Xadj: append(make([]int64, 0, capHint(n+1)), 0)}
	fh.word(0) // Xadj[0]
	var total int64
	for v := 0; v < n; v++ {
		deg, err := readUvarintCanonical(br)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: DMGB degree of vertex %d: %w", v, err)
		}
		// Compare before adding: deg is attacker-controlled up to 2^64-1, and
		// total+int64(deg) could wrap past the declared bound. total stays in
		// [0, NumArcs] (≤ 2^40), so the uint64 subtraction cannot underflow.
		if deg > uint64(hdr.NumArcs)-uint64(total) {
			return nil, nil, fmt.Errorf("graph: DMGB degrees exceed the declared %d arcs at vertex %d", hdr.NumArcs, v)
		}
		total += int64(deg)
		g.Xadj = append(g.Xadj, total)
		fh.word(uint64(total))
	}
	if total != hdr.NumArcs {
		return nil, nil, fmt.Errorf("graph: DMGB degrees sum to %d arcs, header declares %d", total, hdr.NumArcs)
	}
	fh.word(uint64(total)) // length prefix of Adj

	g.Adj = make([]Vertex, 0, capHint(int(total)))
	for v := 0; v < n; v++ {
		deg := int(g.Xadj[v+1] - g.Xadj[v])
		prev := int64(-1)
		for i := 0; i < deg; i++ {
			raw, err := readUvarintCanonical(br)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: DMGB adjacency of vertex %d: %w", v, err)
			}
			// Bounds are checked on the raw uvarint, in uint64: converting an
			// adversarial raw ≥ 2^63 to int64 first would go negative and slip
			// past a signed `u >= n` check, planting negative vertex ids.
			var u int64
			if i == 0 {
				if raw >= uint64(n) {
					return nil, nil, fmt.Errorf("graph: DMGB neighbor %d of vertex %d out of range [0,%d)", raw, v, n)
				}
				u = int64(raw)
			} else {
				if raw == 0 {
					return nil, nil, fmt.Errorf("graph: DMGB zero gap in adjacency of vertex %d", v)
				}
				if raw >= uint64(int64(n)-prev) {
					return nil, nil, fmt.Errorf("graph: DMGB neighbor gap %d of vertex %d overruns the %d-vertex range", raw, v, n)
				}
				u = prev + int64(raw)
			}
			prev = u
			g.Adj = append(g.Adj, Vertex(u))
			fh.word(uint64(uint32(u)))
		}
	}

	if !hdr.Weighted {
		fh.word(0)
	} else {
		fh.word(1)
		g.W = make([]float64, 0, capHint(int(total)))
		var wb [8]byte
		for i := int64(0); i < total; i++ {
			if _, err := io.ReadFull(br, wb[:]); err != nil {
				return nil, nil, fmt.Errorf("graph: DMGB weight %d: %w", i, err)
			}
			bits := binary.LittleEndian.Uint64(wb[:])
			g.W = append(g.W, math.Float64frombits(bits))
			fh.word(bits)
		}
	}

	if got := hex.EncodeToString(fh.sum()); got != hdr.Fingerprint {
		return nil, nil, fmt.Errorf("graph: DMGB fingerprint mismatch: header declares %s, content hashes to %s", hdr.Fingerprint, got)
	}
	return g, hdr, nil
}

// capHint bounds an up-front allocation by what a header may honestly claim
// for a small graph; larger streams grow by append as bytes actually arrive.
func capHint(n int) int {
	const max = 1 << 20
	if n > max {
		return max
	}
	if n < 0 {
		return 0
	}
	return n
}

// byteReader is what the varint decoder needs: an io.Reader that can also
// step one byte at a time.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// asByteReader adapts any reader, buffering only when it must.
func asByteReader(r io.Reader) byteReader {
	if br, ok := r.(byteReader); ok {
		return br
	}
	return bufio.NewReaderSize(r, 1<<20)
}

// EncodeDMGB returns the canonical DMGB encoding of g — convenience for
// callers that need the bytes in hand (uploads, tests).
func EncodeDMGB(g *Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteDMGB(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
