// Package graph provides the in-memory graph representation shared by every
// other package in this repository: a compressed sparse row (CSR) adjacency
// structure with per-edge floating-point weights.
//
// Graphs are simple (no self loops, no parallel edges) and undirected: every
// undirected edge {u, v} is stored twice, once in the adjacency list of u and
// once in the adjacency list of v, with identical weights. Vertices are dense
// integers in [0, N). The representation is deliberately flat — three slices —
// so that a billion-edge graph costs no pointer-chasing and partitioning code
// can ship subranges between ranks without translation.
package graph

import (
	"fmt"
	"math"
)

// Vertex indexes a vertex. 32 bits keeps large instances compact; every graph
// in the paper's evaluation (up to 10^9 vertices) would need int64, but the
// scaled-down reproduction instances fit comfortably and the savings halve
// the memory footprint of the adjacency array.
type Vertex = int32

// None marks the absence of a vertex (an unmatched mate, an unset candidate).
const None Vertex = -1

// Graph is a weighted undirected graph in CSR form.
//
// The neighbors of vertex v are Adj[Xadj[v]:Xadj[v+1]], and the weight of the
// arc to Adj[i] is W[i]. For a valid Graph both directions of every edge are
// present with equal weight; BuildUndirected and Validate enforce this.
type Graph struct {
	// Xadj has length NumVertices()+1; Xadj[0] == 0.
	Xadj []int64
	// Adj holds concatenated adjacency lists, each sorted by vertex id.
	Adj []Vertex
	// W holds per-arc weights aligned with Adj. W may be nil for an
	// unweighted graph (all algorithms then treat every weight as 1).
	W []float64
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

// NumArcs reports the number of stored directed arcs (twice the number of
// undirected edges).
func (g *Graph) NumArcs() int64 { return g.Xadj[len(g.Xadj)-1] }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.NumArcs() / 2 }

// Degree reports the number of neighbors of v.
func (g *Graph) Degree(v Vertex) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex { return g.Adj[g.Xadj[v]:g.Xadj[v+1]] }

// Weights returns the arc weights aligned with Neighbors(v), or nil for an
// unweighted graph. The returned slice aliases the graph's storage.
func (g *Graph) Weights(v Vertex) []float64 {
	if g.W == nil {
		return nil
	}
	return g.W[g.Xadj[v]:g.Xadj[v+1]]
}

// Weight reports the weight of arc i (an index into Adj), treating an
// unweighted graph as uniformly weighted 1.
func (g *Graph) Weight(i int64) float64 {
	if g.W == nil {
		return 1
	}
	return g.W[i]
}

// HasEdge reports whether {u, v} is an edge, by binary search in u's list.
func (g *Graph) HasEdge(u, v Vertex) bool {
	_, ok := g.findArc(u, v)
	return ok
}

// EdgeWeight reports the weight of edge {u, v} and whether the edge exists.
func (g *Graph) EdgeWeight(u, v Vertex) (float64, bool) {
	i, ok := g.findArc(u, v)
	if !ok {
		return 0, false
	}
	return g.Weight(i), true
}

func (g *Graph) findArc(u, v Vertex) (int64, bool) {
	lo, hi := g.Xadj[u], g.Xadj[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.Adj[mid] < v:
			lo = mid + 1
		case g.Adj[mid] > v:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

// MaxDegree reports the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > max {
			max = d
		}
	}
	return max
}

// MinDegree reports the minimum vertex degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < n; v++ {
		if d := g.Degree(Vertex(v)); d < min {
			min = d
		}
	}
	return min
}

// TotalWeight reports the sum of undirected edge weights.
func (g *Graph) TotalWeight() float64 {
	if g.W == nil {
		return float64(g.NumEdges())
	}
	var sum float64
	for _, w := range g.W {
		sum += w
	}
	return sum / 2
}

// Validate checks structural invariants: monotone Xadj, in-range sorted
// duplicate-free neighbor lists, no self loops, symmetric adjacency with
// matching weights, and finite weights. It returns the first violation found.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.Xadj) == 0 {
		return fmt.Errorf("graph: empty Xadj")
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0] = %d, want 0", g.Xadj[0])
	}
	if g.Xadj[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: Xadj[n] = %d, len(Adj) = %d", g.Xadj[n], len(g.Adj))
	}
	if g.W != nil && len(g.W) != len(g.Adj) {
		return fmt.Errorf("graph: len(W) = %d, len(Adj) = %d", len(g.W), len(g.Adj))
	}
	for v := 0; v < n; v++ {
		lo, hi := g.Xadj[v], g.Xadj[v+1]
		if lo > hi {
			return fmt.Errorf("graph: Xadj decreases at vertex %d", v)
		}
		for i := lo; i < hi; i++ {
			u := g.Adj[i]
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if i > lo && g.Adj[i-1] >= u {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at %d", v, u)
			}
			if g.W != nil && (math.IsNaN(g.W[i]) || math.IsInf(g.W[i], 0)) {
				return fmt.Errorf("graph: non-finite weight on arc %d->%d", v, u)
			}
			j, ok := g.findArc(u, Vertex(v))
			if !ok {
				return fmt.Errorf("graph: arc %d->%d has no reverse", v, u)
			}
			if g.W != nil && g.W[i] != g.W[j] {
				return fmt.Errorf("graph: asymmetric weight on edge {%d,%d}: %g vs %g", v, u, g.W[i], g.W[j])
			}
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Xadj: append([]int64(nil), g.Xadj...),
		Adj:  append([]Vertex(nil), g.Adj...),
	}
	if g.W != nil {
		c.W = append([]float64(nil), g.W...)
	}
	return c
}

// Edge is an undirected weighted edge, used by builders and generators.
type Edge struct {
	U, V Vertex
	W    float64
}

// ForEachEdge calls fn once per undirected edge {u, v} with u < v.
func (g *Graph) ForEachEdge(fn func(u, v Vertex, w float64)) {
	for u := 0; u < g.NumVertices(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			if Vertex(u) < v {
				fn(Vertex(u), v, g.Weight(i))
			}
		}
	}
}

// Edges returns all undirected edges with U < V.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v Vertex, w float64) {
		edges = append(edges, Edge{U: u, V: v, W: w})
	})
	return edges
}

// String summarizes the graph for logs and test failures.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}
