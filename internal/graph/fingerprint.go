package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// fingerprintVersion is folded into the hash so the fingerprint can be
// evolved without old values silently colliding with new ones.
const fingerprintVersion = 1

// Fingerprint returns a stable content hash of the graph: SHA-256 over a
// little-endian serialization of the vertex count, the CSR offsets, the
// adjacency lists, and the weights (with an explicit marker separating the
// unweighted case from all-1.0 weights). Two graphs fingerprint equally iff
// they have identical CSR content, which — since BuildUndirected sorts
// adjacency deterministically — means identical vertex/edge/weight sets.
//
// The serving layer keys its result cache on (Fingerprint, algorithm,
// params); the conformance suite can use it to assert two result-producing
// paths consumed the same input.
func Fingerprint(g *Graph) string {
	h := sha256.New()
	var buf [8]byte
	word := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	word(uint64(fingerprintVersion))
	word(uint64(g.NumVertices()))
	hashInt64s(h, g.Xadj)
	word(uint64(len(g.Adj)))
	for _, v := range g.Adj {
		word(uint64(uint32(v)))
	}
	if g.W == nil {
		word(0) // unweighted marker: distinct from any weight array
	} else {
		word(1)
		for _, wt := range g.W {
			word(math.Float64bits(wt))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashInt64s(h hash.Hash, xs []int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
	h.Write(buf[:])
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
}
