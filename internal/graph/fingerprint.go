package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// fingerprintVersion is folded into the hash so the fingerprint can be
// evolved without old values silently colliding with new ones.
const fingerprintVersion = 1

// Fingerprint returns a stable content hash of the graph: SHA-256 over a
// little-endian serialization of the vertex count, the CSR offsets, the
// adjacency lists, and the weights (with an explicit marker separating the
// unweighted case from all-1.0 weights). Two graphs fingerprint equally iff
// they have identical CSR content, which — since BuildUndirected sorts
// adjacency deterministically — means identical vertex/edge/weight sets.
//
// The serving layer keys its result cache, partition cache, and
// content-addressed graph store on the fingerprint; the DMGB codec embeds it
// in the stream header so an upload can be content-addressed before the
// transfer finishes; the conformance suite can use it to assert two
// result-producing paths consumed the same input.
func Fingerprint(g *Graph) string {
	return hex.EncodeToString(fingerprintSum(g))
}

// fingerprintSum returns the raw 32-byte fingerprint digest.
func fingerprintSum(g *Graph) []byte {
	fh := newFPHasher()
	fh.word(uint64(g.NumVertices()))
	fh.int64s(g.Xadj)
	fh.word(uint64(len(g.Adj)))
	for _, v := range g.Adj {
		fh.word(uint64(uint32(v)))
	}
	if g.W == nil {
		fh.word(0) // unweighted marker: distinct from any weight array
	} else {
		fh.word(1)
		for _, wt := range g.W {
			fh.word(math.Float64bits(wt))
		}
	}
	return fh.sum()
}

// fpHasher is the incremental form of Fingerprint: words fed in the exact
// order fingerprintSum feeds them produce the same digest. The streaming
// DMGB decoder uses one to compute the fingerprint while chunks of an
// upload are still in flight, so it and Fingerprint cannot drift apart.
type fpHasher struct {
	h   hash.Hash
	buf [8]byte
}

// newFPHasher starts a fingerprint computation (the version word is already
// folded in).
func newFPHasher() *fpHasher {
	fh := &fpHasher{h: sha256.New()}
	fh.word(uint64(fingerprintVersion))
	return fh
}

// word feeds one little-endian 64-bit word.
func (fh *fpHasher) word(x uint64) {
	binary.LittleEndian.PutUint64(fh.buf[:], x)
	fh.h.Write(fh.buf[:])
}

// int64s feeds a length-prefixed int64 slice.
func (fh *fpHasher) int64s(xs []int64) {
	fh.word(uint64(len(xs)))
	for _, x := range xs {
		fh.word(uint64(x))
	}
}

// sum returns the raw digest.
func (fh *fpHasher) sum() []byte { return fh.h.Sum(nil) }
