package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph for experiment headers and logs.
type Stats struct {
	Vertices   int
	Edges      int64
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	Components int
	Weighted   bool
}

// Summarize computes Stats, including a connected-component count via BFS.
func Summarize(g *Graph) Stats {
	s := Stats{
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		MinDegree: g.MinDegree(),
		MaxDegree: g.MaxDegree(),
		Weighted:  g.W != nil,
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(g.NumArcs()) / float64(s.Vertices)
	}
	s.Components = CountComponents(g)
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d deg[%d..%d] avg=%.2f comps=%d weighted=%v",
		s.Vertices, s.Edges, s.MinDegree, s.MaxDegree, s.AvgDegree, s.Components, s.Weighted)
}

// CountComponents reports the number of connected components.
func CountComponents(g *Graph) int {
	n := g.NumVertices()
	visited := make([]bool, n)
	queue := make([]Vertex, 0, 1024)
	comps := 0
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		comps++
		visited[start] = true
		queue = append(queue[:0], Vertex(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return comps
}

// DegreeHistogram returns the sorted distinct degrees and their counts.
func DegreeHistogram(g *Graph) (degrees []int, counts []int64) {
	hist := make(map[int]int64)
	for v := 0; v < g.NumVertices(); v++ {
		hist[g.Degree(Vertex(v))]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int64, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// IsConnected reports whether the graph has at most one component.
func IsConnected(g *Graph) bool { return CountComponents(g) <= 1 }
