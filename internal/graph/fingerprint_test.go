package graph

import (
	"regexp"
	"testing"
)

// fpGraph builds a small weighted graph for fingerprint tests.
func fpGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := BuildUndirected(n, edges, DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintDeterministic(t *testing.T) {
	edges := []Edge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}, {U: 0, V: 3, W: 7}}
	a := fpGraph(t, 4, edges)
	b := fpGraph(t, 4, edges)
	fa, fb := Fingerprint(a), Fingerprint(b)
	if fa != fb {
		t.Fatalf("identical graphs fingerprint differently: %s vs %s", fa, fb)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(fa) {
		t.Fatalf("fingerprint is not 64 hex chars: %q", fa)
	}
	// Edge order on input must not matter: CSR construction sorts.
	c := fpGraph(t, 4, []Edge{{U: 0, V: 3, W: 7}, {U: 1, V: 2, W: 1}, {U: 0, V: 1, W: 2.5}})
	if Fingerprint(c) != fa {
		t.Fatal("input edge order changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph(t, 4, []Edge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}})
	fp := Fingerprint(base)
	cases := map[string]*Graph{
		"weight changed":  fpGraph(t, 4, []Edge{{U: 0, V: 1, W: 2.6}, {U: 1, V: 2, W: 1}}),
		"edge moved":      fpGraph(t, 4, []Edge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 3, W: 1}}),
		"edge added":      fpGraph(t, 4, []Edge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}}),
		"vertex appended": fpGraph(t, 5, []Edge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}}),
	}
	for name, g := range cases {
		if Fingerprint(g) == fp {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

func TestFingerprintUnweightedDistinct(t *testing.T) {
	// An unweighted graph must not collide with the same topology carrying
	// explicit all-1.0 weights: algorithms treat them identically, but the
	// cache key must reflect the stored content exactly.
	weighted := fpGraph(t, 3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	unweighted := &Graph{Xadj: weighted.Xadj, Adj: weighted.Adj, W: nil}
	if Fingerprint(weighted) == Fingerprint(unweighted) {
		t.Fatal("unweighted graph collides with all-1.0 weighted graph")
	}
}

// TestFingerprintGolden pins the serialization: a change to the hash layout
// must bump fingerprintVersion, and this golden value, deliberately —
// otherwise cached results from older daemons would be served for what is
// now a different key space.
func TestFingerprintGolden(t *testing.T) {
	g := fpGraph(t, 3, []Edge{{U: 0, V: 1, W: 1.5}, {U: 1, V: 2, W: 2}})
	const want = "a37b3f7ca9cb2877fbf1080b29df5af05bcdb037f8511b8f62bee9c5bd33a658"
	if got := Fingerprint(g); got != want {
		t.Fatalf("fingerprint layout drifted:\n got %s\nwant %s\n(bump fingerprintVersion and update this golden deliberately)", got, want)
	}
}
