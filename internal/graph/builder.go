package graph

import (
	"fmt"
	"sort"
)

// BuildUndirected assembles a CSR graph from an undirected edge list.
//
// Self loops are dropped. Duplicate edges (in either orientation) are merged;
// the policy for the merged weight is dedupe. The adjacency lists of the
// result are sorted by neighbor id, as required by Graph's invariants.
func BuildUndirected(n int, edges []Edge, dedupe DedupePolicy) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > 1<<31-1 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds 32-bit vertex ids", n)
	}
	// Normalize: drop self loops, orient u < v, validate ranges.
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		return norm[i].V < norm[j].V
	})
	// Merge duplicates in place.
	out := norm[:0]
	for _, e := range norm {
		if len(out) > 0 && out[len(out)-1].U == e.U && out[len(out)-1].V == e.V {
			last := &out[len(out)-1]
			switch dedupe {
			case DedupeSum:
				last.W += e.W
			case DedupeMax:
				if e.W > last.W {
					last.W = e.W
				}
			case DedupeFirst:
				// keep last.W
			default:
				return nil, fmt.Errorf("graph: unknown dedupe policy %d", dedupe)
			}
			continue
		}
		out = append(out, e)
	}
	return fromSortedEdges(n, out), nil
}

// DedupePolicy says how BuildUndirected merges parallel edges.
type DedupePolicy int

const (
	// DedupeFirst keeps the weight of the first occurrence.
	DedupeFirst DedupePolicy = iota
	// DedupeSum adds the weights of parallel edges.
	DedupeSum
	// DedupeMax keeps the heaviest parallel edge.
	DedupeMax
)

// fromSortedEdges builds the CSR arrays from a deduplicated edge list with
// U < V sorted by (U, V).
func fromSortedEdges(n int, edges []Edge) *Graph {
	g := &Graph{
		Xadj: make([]int64, n+1),
		Adj:  make([]Vertex, 2*len(edges)),
		W:    make([]float64, 2*len(edges)),
	}
	// Count degrees.
	for _, e := range edges {
		g.Xadj[e.U+1]++
		g.Xadj[e.V+1]++
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] += g.Xadj[v]
	}
	// Fill. cursor tracks the next free slot per vertex. A single pass over
	// the (U, V)-sorted edge list leaves every adjacency list sorted without
	// a per-vertex sort: vertex v's smaller neighbors arrive while scanning
	// edges with U < v (ascending in U = the neighbor), strictly before its
	// larger neighbors, which arrive while scanning edges with U = v
	// (ascending in V = the neighbor).
	cursor := make([]int64, n)
	copy(cursor, g.Xadj[:n])
	for _, e := range edges {
		iu := cursor[e.U]
		g.Adj[iu], g.W[iu] = e.V, e.W
		cursor[e.U]++
		iv := cursor[e.V]
		g.Adj[iv], g.W[iv] = e.U, e.W
		cursor[e.V]++
	}
	return g
}

// FromAdjacency builds a graph directly from per-vertex neighbor lists,
// symmetrizing and deduplicating as needed. Weights default to 1.
func FromAdjacency(adj [][]Vertex) (*Graph, error) {
	var edges []Edge
	for u, list := range adj {
		for _, v := range list {
			edges = append(edges, Edge{U: Vertex(u), V: v, W: 1})
		}
	}
	return BuildUndirected(len(adj), edges, DedupeFirst)
}

// Permute relabels the graph: vertex v becomes perm[v]. perm must be a
// permutation of [0, n).
func Permute(g *Graph, perm []Vertex) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v Vertex, w float64) {
		edges = append(edges, Edge{U: perm[u], V: perm[v], W: w})
	})
	out, err := BuildUndirected(n, edges, DedupeFirst)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InducedSubgraph extracts the subgraph induced by the given vertices.
// It returns the subgraph plus the mapping from new ids to original ids.
func InducedSubgraph(g *Graph, vertices []Vertex) (*Graph, []Vertex, error) {
	toNew := make(map[Vertex]Vertex, len(vertices))
	toOld := make([]Vertex, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d out of range", v)
		}
		if _, dup := toNew[v]; dup {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d repeated", v)
		}
		toNew[v] = Vertex(i)
		toOld[i] = v
	}
	var edges []Edge
	for i, v := range toOld {
		adj := g.Neighbors(v)
		for k, u := range adj {
			nu, ok := toNew[u]
			if !ok || nu <= Vertex(i) {
				continue
			}
			edges = append(edges, Edge{U: Vertex(i), V: nu, W: g.Weight(g.Xadj[v] + int64(k))})
		}
	}
	sub, err := BuildUndirected(len(vertices), edges, DedupeFirst)
	if err != nil {
		return nil, nil, err
	}
	return sub, toOld, nil
}
