package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/order"
)

// GreedyDistance2 computes a distance-2 coloring: every two vertices within
// two hops of each other receive different colors. Distance-2 coloring is
// the variant the paper's derivative-computation motivation ([7], "What
// color is your Jacobian?") actually consumes — a distance-2 coloring of a
// matrix's column graph yields structurally orthogonal column groups — and
// rounds out the "matching and coloring in many variations" menu of
// Section 2.
//
// The greedy scheme mirrors the distance-1 version: visit vertices in the
// given ordering, mark the colors of all distance-1 and distance-2
// neighbors, take the smallest free color. It uses at most Δ²+1 colors.
func GreedyDistance2(g *graph.Graph, o order.Ordering, seed uint64) (Colors, error) {
	ord, err := order.Compute(g, o, seed)
	if err != nil {
		return nil, err
	}
	return GreedyDistance2Order(g, ord), nil
}

// GreedyDistance2Order colors g at distance 2 by first fit in the exact
// vertex order given.
func GreedyDistance2Order(g *graph.Graph, ord []graph.Vertex) Colors {
	n := g.NumVertices()
	colors := make(Colors, n)
	for i := range colors {
		colors[i] = -1
	}
	maxDeg := g.MaxDegree()
	bound := maxDeg*maxDeg + 1
	if bound > n {
		bound = n
	}
	if bound < 1 {
		bound = 1
	}
	mark := make([]int64, bound+1)
	var stamp int64
	markColor := func(u graph.Vertex) {
		if c := colors[u]; c >= 0 && int(c) < len(mark) {
			mark[c] = stamp
		}
	}
	for _, v := range ord {
		stamp++
		for _, u := range g.Neighbors(v) {
			markColor(u)
			for _, w := range g.Neighbors(u) {
				if w != v {
					markColor(w)
				}
			}
		}
		assigned := false
		for c := range mark {
			if mark[c] != stamp {
				colors[v] = int32(c)
				assigned = true
				break
			}
		}
		if !assigned {
			// Cannot happen: a vertex has at most Δ² distance-<=2 neighbors
			// and the mark array has Δ²+1 (capped at n) usable slots.
			panic("coloring: distance-2 first fit ran out of colors")
		}
	}
	return colors
}

// VerifyDistance2 checks that c is a proper complete distance-2 coloring.
func VerifyDistance2(g *graph.Graph, c Colors) error {
	if err := c.Verify(g); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			for _, w := range g.Neighbors(u) {
				if int(w) != v && c[w] == c[v] {
					return fmt.Errorf("coloring: distance-2 conflict %d..%d..%d, both color %d", v, u, w, c[v])
				}
			}
		}
	}
	return nil
}
