package coloring

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// runParallelD2 distributes g over part and runs the distributed distance-2
// coloring on every rank.
func runParallelD2(t *testing.T, g *graph.Graph, part *partition.Partition, opt ParallelOptions, mpiOpts ...mpi.Option) (Colors, []*ParallelResult) {
	t.Helper()
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ParallelResult, part.P)
	var mu sync.Mutex
	mpiOpts = append(mpiOpts, mpi.WithDeadline(60*time.Second))
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := ParallelDistance2(c, shares[c.Rank()], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	}, mpiOpts...)
	if err != nil {
		t.Fatal(err)
	}
	colors, err := Gather(shares, results)
	if err != nil {
		t.Fatal(err)
	}
	return colors, results
}

func TestParallelDistance2OnGrid(t *testing.T) {
	g, err := gen.Grid2D(16, 16, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := GreedyDistance2Order(g, naturalOrder(g))
	for _, p := range []int{1, 2, 4} {
		pr, pc := partition.ProcessorGrid(p)
		part, err := partition.Grid2D(16, 16, pr, pc)
		if err != nil {
			t.Fatal(err)
		}
		colors, results := runParallelD2(t, g, part, ParallelOptions{Seed: 3})
		if err := VerifyDistance2(g, colors); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Near-sequential color count (grid distance-2 chromatic number is 5;
		// speculation may add a couple).
		if colors.NumColors() > seq.NumColors()+3 {
			t.Fatalf("p=%d: %d colors, sequential %d", p, colors.NumColors(), seq.NumColors())
		}
		if results[0].Rounds > 12 {
			t.Fatalf("p=%d: %d rounds", p, results[0].Rounds)
		}
	}
}

func TestParallelDistance2Irregular(t *testing.T) {
	g, err := gen.Circuit(20, 20, 0.45, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() (*partition.Partition, error){
		func() (*partition.Partition, error) { return partition.BFS(g, 5, 1) },
		func() (*partition.Partition, error) { return partition.Random(g, 6, 2) },
	} {
		part, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		colors, _ := runParallelD2(t, g, part, ParallelOptions{Seed: 11, SuperstepSize: 50})
		if err := VerifyDistance2(g, colors); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParallelDistance2UnderPerturbation(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 360, false, 13)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		colors, _ := runParallelD2(t, g, part, ParallelOptions{Seed: 17, SuperstepSize: 20},
			mpi.WithPerturbation(seed))
		if err := VerifyDistance2(g, colors); err != nil {
			t.Fatalf("perturbation %d: %v", seed, err)
		}
	}
}

func TestParallelDistance2SingleRankMatchesSequentialShape(t *testing.T) {
	g, err := gen.Grid2D(10, 10, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := partition.Block1D(g, 1)
	colors, results := runParallelD2(t, g, part, ParallelOptions{Seed: 1})
	if err := VerifyDistance2(g, colors); err != nil {
		t.Fatal(err)
	}
	if results[0].Rounds != 1 || results[0].Conflicts != 0 {
		t.Fatalf("single rank rounds=%d conflicts=%d", results[0].Rounds, results[0].Conflicts)
	}
}

func TestParallelDistance2StarAcrossRanks(t *testing.T) {
	// Star with leaves spread across ranks: all leaves are pairwise at
	// distance 2 through the hub, so every leaf needs a distinct color even
	// though no two leaves are adjacent — the pure middle-vertex case.
	const leaves = 9
	edges := make([]graph.Edge, leaves)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: graph.Vertex(i + 1), W: 1}
	}
	g, err := graph.BuildUndirected(leaves+1, edges, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int32, leaves+1)
	for i := range parts {
		parts[i] = int32(i % 3)
	}
	part := &partition.Partition{P: 3, Part: parts}
	colors, _ := runParallelD2(t, g, part, ParallelOptions{Seed: 5})
	if err := VerifyDistance2(g, colors); err != nil {
		t.Fatal(err)
	}
	if colors.NumColors() != leaves+1 {
		t.Fatalf("star distance-2 colors = %d, want %d", colors.NumColors(), leaves+1)
	}
}
