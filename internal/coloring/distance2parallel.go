package coloring

import (
	"fmt"
	"sort"

	"repro/internal/dgraph"
	"repro/internal/mpi"
)

// Distributed distance-2 coloring, the companion framework to Algorithm 4.1
// (Bozdağ et al. developed the distance-2 variant of the same speculative
// scheme; the paper's Jacobian motivation [7] is its consumer). The key
// structural fact that makes one-layer ghosting sufficient: every distance-2
// conflict (v, w) has a middle vertex u adjacent to both, and the OWNER OF
// THE MIDDLE VERTEX sees both endpoints (as owned vertices or ghosts). So:
//
//   - the tentative coloring phase works as in distance-1, except a vertex
//     avoids the known colors of its distance-2 neighborhood (neighbors of
//     owned neighbors, plus ghost colors — the remote two-hop colors it
//     cannot see are exactly what speculation tolerates);
//   - in the conflict phase each rank scans, for every owned middle vertex,
//     the pairs of equal-colored neighbors; the loser (smaller r) is
//     re-colored — locally if owned, by a RECOLOR notice to its owner if
//     not;
//   - rounds repeat until a global Allreduce finds no re-color work.
type d2State struct {
	c   *mpi.Comm
	d   *dgraph.DistGraph
	opt ParallelOptions

	colors     []int32
	ghostColor []int32
	picker     *firstFit
	maxColors  int

	vertexRankOff  []int32
	vertexRankList []int32

	out       *mpi.Bundler
	notices   *mpi.Bundler
	rounds    int
	conflicts int64
	// pendingNotices buffers RECOLOR notices that arrive early: a fast peer
	// can pass the post-coloring barrier and start sending detection
	// notices while this rank is still draining color updates. Each notice
	// carries the winner's color.
	pendingNotices []noticeRec
	// forbidden accumulates, per owned vertex, colors of remote two-hop
	// conflictors learned from notices. A loser cannot see the winner's
	// color through its one-layer ghosts (the conflict's middle vertex lives
	// on another rank), so without this memory it could re-pick the same
	// color forever.
	forbidden map[int32]map[int32]bool
}

// noticeRec is one received RECOLOR notice: the losing vertex and the color
// it must avoid.
type noticeRec struct {
	gid   int64
	color int32
}

// recolorTag carries distance-2 RECOLOR notices (global id + round marker).
const recolorTag = 210

// ParallelDistance2 runs the speculative distance-2 coloring on this rank's
// share. Options are interpreted as for Parallel (CommMode is ignored: the
// distance-2 scheme always uses neighbor-customized messages, the paper's
// NEW mode).
func ParallelDistance2(c *mpi.Comm, d *dgraph.DistGraph, opt ParallelOptions) (*ParallelResult, error) {
	if c.Size() != d.P {
		return nil, fmt.Errorf("coloring: world size %d, graph distributed over %d", c.Size(), d.P)
	}
	if c.Rank() != d.Rank {
		return nil, fmt.Errorf("coloring: rank %d given share of rank %d", c.Rank(), d.Rank)
	}
	if opt.SuperstepSize == 0 {
		opt.SuperstepSize = 200
	}
	if opt.SuperstepSize < 1 {
		return nil, fmt.Errorf("coloring: non-positive superstep size %d", opt.SuperstepSize)
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 128
	}
	s := &d2State{c: c, d: d, opt: opt}
	if err := s.run(); err != nil {
		return nil, err
	}
	localMax := int32(-1)
	for _, col := range s.colors {
		if col > localMax {
			localMax = col
		}
	}
	globalMax := c.AllreduceInt64(int64(localMax), mpi.OpMax)
	return &ParallelResult{
		Colors:    s.colors,
		Rounds:    s.rounds,
		Conflicts: s.conflicts,
		NumColors: int(globalMax + 1),
	}, nil
}

func (s *d2State) run() error {
	d := s.d
	n := d.NLocal
	s.colors = make([]int32, n)
	for i := range s.colors {
		s.colors[i] = -1
	}
	s.ghostColor = make([]int32, d.NGhost)
	for i := range s.ghostColor {
		s.ghostColor[i] = -1
	}
	// Distance-2 degree bound: Δ² + 1 colors always suffice.
	localMaxDeg := 0
	for v := 0; v < n; v++ {
		if deg := d.Degree(int32(v)); deg > localMaxDeg {
			localMaxDeg = deg
		}
	}
	globalMaxDeg := int(s.c.AllreduceInt64(int64(localMaxDeg), mpi.OpMax))
	s.maxColors = globalMaxDeg*globalMaxDeg + 1
	if int64(s.maxColors) > d.GlobalN {
		s.maxColors = int(d.GlobalN)
	}
	if s.maxColors < 1 {
		s.maxColors = 1
	}
	// Headroom for accumulated forbidden colors: a loser may collect one
	// stale forbidden color per round beyond its live distance-2
	// neighborhood, so the first-fit palette must not be able to fill up.
	s.maxColors += s.opt.MaxRounds
	s.picker = newFirstFit(s.maxColors)
	s.forbidden = map[int32]map[int32]bool{}
	s.buildVertexRanks()
	s.out = mpi.NewBundler(s.c, colorTag, colorRecSize, 0)
	s.notices = mpi.NewBundler(s.c, recolorTag, colorRecSize, 0)

	u := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		u = append(u, int32(v))
	}
	for {
		s.rounds++
		if s.rounds > s.opt.MaxRounds {
			return fmt.Errorf("coloring: distance-2 did not converge in %d rounds", s.opt.MaxRounds)
		}
		// Tentative coloring in supersteps; boundary colors ship to every
		// neighbor rank (they may be two-hop-relevant there).
		for lo := 0; lo < len(u); lo += s.opt.SuperstepSize {
			hi := lo + s.opt.SuperstepSize
			if hi > len(u) {
				hi = len(u)
			}
			chunk := u[lo:hi]
			var arcs int64
			for _, v := range chunk {
				s.colors[v] = s.pickColorD2(v)
				arcs += int64(d.Degree(v))
			}
			s.c.ChargeOps(arcs, int64(len(chunk)))
			s.shipChunk(chunk)
			s.drain()
		}
		s.c.Barrier()
		s.drain()

		// Conflict detection at middle vertices. For every owned middle u,
		// equal-colored neighbor pairs produce a loser; owned losers queue
		// locally, remote losers get a RECOLOR notice.
		recolorLocal := map[int32]bool{}
		var detectArcs int64
		for mid := int32(0); int(mid) < n; mid++ {
			adj := d.Neighbors(mid)
			detectArcs += int64(len(adj)) * int64(len(adj))
			for i := 0; i < len(adj); i++ {
				ci := s.colorOf(adj[i])
				if ci < 0 {
					continue
				}
				for j := i + 1; j < len(adj); j++ {
					if s.colorOf(adj[j]) != ci {
						continue
					}
					loser := s.loserOf(adj[i], adj[j])
					if d.IsGhost(loser) {
						var rec [colorRecSize]byte
						encodeColorRec(rec[:], d.GlobalOf(loser), ci)
						s.notices.Add(d.OwnerOf(loser), rec[:])
					} else {
						recolorLocal[loser] = true
					}
				}
			}
			// The middle vertex itself also conflicts with any neighbor of
			// equal color (distance-1 ⊂ distance-2).
			cm := s.colors[mid]
			if cm < 0 {
				continue
			}
			for _, nb := range adj {
				if s.colorOf(nb) != cm {
					continue
				}
				loser := s.loserOf(mid, nb)
				if d.IsGhost(loser) {
					var rec [colorRecSize]byte
					encodeColorRec(rec[:], d.GlobalOf(loser), cm)
					s.notices.Add(d.OwnerOf(loser), rec[:])
				} else {
					recolorLocal[loser] = true
				}
			}
		}
		s.c.ChargeOps(detectArcs, 0)
		s.notices.Flush()
		s.c.Barrier()
		// Collect remote recolor notices (buffered early arrivals included).
		s.drain()
		for _, nr := range s.pendingNotices {
			l, ok := d.LocalOf(nr.gid)
			if !ok || d.IsGhost(l) {
				panic("coloring: recolor notice for non-owned vertex")
			}
			recolorLocal[l] = true
			if s.forbidden[l] == nil {
				s.forbidden[l] = map[int32]bool{}
			}
			s.forbidden[l][nr.color] = true
		}
		s.pendingNotices = s.pendingNotices[:0]
		u = u[:0]
		for v := range recolorLocal {
			u = append(u, v)
			s.colors[v] = -1 // do not let stale colors mask new conflicts
		}
		sortInt32(u)
		s.conflicts += int64(len(u))
		// Re-announce cleared colors? Not needed: losers re-color next round
		// and ship fresh colors then; peers comparing against the stale value
		// may raise a spurious extra notice, which is harmless.
		if s.c.AllreduceInt64(int64(len(u)), mpi.OpSum) == 0 {
			return nil
		}
	}
}

// colorOf reads the current color of a local index (owned or ghost).
func (s *d2State) colorOf(l int32) int32 {
	if s.d.IsGhost(l) {
		return s.ghostColor[int(l)-s.d.NLocal]
	}
	return s.colors[l]
}

// loserOf picks the endpoint that must re-color, by the framework's random
// priority with id tie-break.
func (s *d2State) loserOf(a, b int32) int32 {
	ga, gb := s.d.GlobalOf(a), s.d.GlobalOf(b)
	if s.opt.Conflict == ConflictMinID {
		if ga < gb {
			return a
		}
		return b
	}
	ra, rb := rnd(s.opt.Seed, ga), rnd(s.opt.Seed, gb)
	if ra < rb || (ra == rb && ga < gb) {
		return a
	}
	return b
}

// pickColorD2 selects the smallest color not used in v's known distance-2
// neighborhood: neighbors (owned and ghost) and neighbors-of-owned-neighbors.
func (s *d2State) pickColorD2(v int32) int32 {
	d := s.d
	f := s.picker
	f.stamp++
	mark := func(c int32) {
		if c >= 0 && int(c) < len(f.mark) {
			f.mark[c] = f.stamp
		}
	}
	for _, u := range d.Neighbors(v) {
		mark(s.colorOf(u))
		if d.IsGhost(u) {
			continue // the remote two-hop layer is invisible: speculate
		}
		for _, w := range d.Neighbors(u) {
			if w != v {
				mark(s.colorOf(w))
			}
		}
	}
	for c := range s.forbidden[v] {
		mark(c)
	}
	for c := range f.mark {
		if f.mark[c] != f.stamp {
			return int32(c)
		}
	}
	panic("coloring: distance-2 first fit ran out of colors")
}

// shipChunk sends freshly colored boundary vertices to neighbor ranks (the
// NEW customized scheme).
func (s *d2State) shipChunk(chunk []int32) {
	d := s.d
	var rec [colorRecSize]byte
	for _, v := range chunk {
		if !d.IsBoundary[v] {
			continue
		}
		encodeColorRec(rec[:], d.GlobalOf(v), s.colors[v])
		for _, rk := range s.vertexRankList[s.vertexRankOff[v]:s.vertexRankOff[v+1]] {
			s.out.Add(int(rk), rec[:])
		}
	}
	s.out.Flush()
}

// drain consumes pending traffic without blocking: color updates apply
// immediately, recolor notices buffer for the conflict phase.
func (s *d2State) drain() {
	for {
		m, ok := s.c.TryRecv()
		if !ok {
			return
		}
		switch m.Tag {
		case colorTag:
			s.applyColorRecords(m.Data)
		case recolorTag:
			for _, rec := range mpi.Records(m.Data, colorRecSize) {
				gid, col := decodeColorRec(rec)
				s.pendingNotices = append(s.pendingNotices, noticeRec{gid, col})
			}
		default:
			panic(fmt.Sprintf("coloring: unexpected tag %d", m.Tag))
		}
	}
}

func (s *d2State) applyColorRecords(data []byte) {
	s.c.ChargeOps(int64(len(data)/colorRecSize), 0)
	for _, rec := range mpi.Records(data, colorRecSize) {
		gid, col := decodeColorRec(rec)
		if l, ok := s.d.LocalOf(gid); ok && s.d.IsGhost(l) {
			s.ghostColor[int(l)-s.d.NLocal] = col
		}
	}
}

// buildVertexRanks mirrors colorState.buildVertexRanks for the d2 state.
func (s *d2State) buildVertexRanks() {
	cs := &colorState{d: s.d}
	cs.buildVertexRanks()
	s.vertexRankOff = cs.vertexRankOff
	s.vertexRankList = cs.vertexRankList
}

// sortInt32 sorts ascending so the recolor order (and hence the final
// coloring) is deterministic regardless of map iteration order.
func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
