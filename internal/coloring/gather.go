package coloring

import (
	"fmt"

	"repro/internal/dgraph"
)

// Gather assembles per-rank parallel coloring results into one global Colors
// array indexed by global vertex id.
func Gather(shares []*dgraph.DistGraph, results []*ParallelResult) (Colors, error) {
	if len(shares) == 0 || len(shares) != len(results) {
		return nil, fmt.Errorf("coloring: gather over %d shares, %d results", len(shares), len(results))
	}
	globalN := shares[0].GlobalN
	if globalN > 1<<31-1 {
		return nil, fmt.Errorf("coloring: graph too large to gather (%d vertices)", globalN)
	}
	colors := make(Colors, globalN)
	for i := range colors {
		colors[i] = -1
	}
	for rank, d := range shares {
		r := results[rank]
		if r == nil {
			return nil, fmt.Errorf("coloring: rank %d has no result", rank)
		}
		if len(r.Colors) != d.NLocal {
			return nil, fmt.Errorf("coloring: rank %d result covers %d of %d vertices", rank, len(r.Colors), d.NLocal)
		}
		for v := 0; v < d.NLocal; v++ {
			gid := d.GlobalOf(int32(v))
			if colors[gid] != -1 {
				return nil, fmt.Errorf("coloring: vertex %d colored by two ranks", gid)
			}
			colors[gid] = r.Colors[v]
		}
	}
	return colors, nil
}
