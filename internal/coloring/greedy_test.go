package coloring

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

func TestGreedyOnTriangle(t *testing.T) {
	g, err := graph.BuildUndirected(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Greedy(g, order.Natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 3 {
		t.Fatalf("triangle colored with %d colors, want 3", c.NumColors())
	}
}

func TestGreedyGridTwoColorsWithGoodOrder(t *testing.T) {
	// Five-point grids are bipartite; smallest-last ordering achieves the
	// optimum 2 colors (the paper: "a five-point grid graph can be colored
	// using just two colors").
	g, err := gen.Grid2D(12, 12, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Greedy(g, order.SmallestLast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 2 {
		t.Fatalf("grid colored with %d colors, want 2 (smallest-last)", c.NumColors())
	}
}

func TestGreedyRespectsDeltaPlusOne(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g, err := gen.RMAT(9, 8, false, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []order.Ordering{order.Natural, order.Random, order.LargestFirst, order.SmallestLast, order.IncidenceDegree} {
			c, err := Greedy(g, o, seed)
			if err != nil {
				t.Fatalf("%v: %v", o, err)
			}
			if err := c.Verify(g); err != nil {
				t.Fatalf("%v: %v", o, err)
			}
			if c.NumColors() > g.MaxDegree()+1 {
				t.Fatalf("%v: %d colors exceeds Δ+1 = %d", o, c.NumColors(), g.MaxDegree()+1)
			}
		}
	}
}

func TestGreedyOrderExactSequence(t *testing.T) {
	// Path 0-1-2: coloring order 1,0,2 gives 1→0, 0→1, 2→1.
	g, err := graph.BuildUndirected(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	c := GreedyOrder(g, []graph.Vertex{1, 0, 2})
	want := Colors{1, 0, 1}
	for v := range want {
		if c[v] != want[v] {
			t.Fatalf("colors = %v, want %v", c, want)
		}
	}
}

func TestVerifyCatchesBadColorings(t *testing.T) {
	g, _ := graph.BuildUndirected(2, []graph.Edge{{U: 0, V: 1, W: 1}}, graph.DedupeFirst)
	if err := (Colors{0, 0}).Verify(g); err == nil {
		t.Error("accepted conflicting coloring")
	}
	if err := (Colors{0, -1}).Verify(g); err == nil {
		t.Error("accepted incomplete coloring")
	}
	if err := (Colors{0}).Verify(g); err == nil {
		t.Error("accepted short coloring")
	}
	if err := (Colors{0, 1}).Verify(g); err != nil {
		t.Errorf("rejected proper coloring: %v", err)
	}
}

func TestNumColors(t *testing.T) {
	if got := (Colors{}).NumColors(); got != 0 {
		t.Fatalf("empty NumColors = %d", got)
	}
	if got := (Colors{0, 3, 1}).NumColors(); got != 4 {
		t.Fatalf("NumColors = %d, want 4", got)
	}
}

func TestBounds(t *testing.T) {
	// Complete graph K5: clique lower bound 5, upper 5.
	var edges []graph.Edge
	for u := graph.Vertex(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	k5, _ := graph.BuildUndirected(5, edges, graph.DedupeFirst)
	lo, hi := Bounds(k5)
	if lo != 5 || hi != 5 {
		t.Fatalf("K5 bounds [%d,%d], want [5,5]", lo, hi)
	}
	grid, _ := gen.Grid2D(5, 5, false, 0)
	lo, hi = Bounds(grid)
	if lo < 1 || lo > 2 || hi != 5 {
		t.Fatalf("grid bounds [%d,%d], want lo in [1,2], hi 5", lo, hi)
	}
	empty, _ := graph.BuildUndirected(0, nil, graph.DedupeFirst)
	if lo, hi = Bounds(empty); lo != 0 || hi != 0 {
		t.Fatalf("empty bounds [%d,%d]", lo, hi)
	}
}

func TestStrategyAndModeStrings(t *testing.T) {
	for _, s := range []Strategy{FirstFit, StaggeredFirstFit, LeastUsed, Strategy(9)} {
		if s.String() == "" {
			t.Error("empty Strategy string")
		}
	}
	for _, m := range []CommMode{CommNeighbors, CommCustomizedAll, CommBroadcast, CommMode(9)} {
		if m.String() == "" {
			t.Error("empty CommMode string")
		}
	}
	for _, o := range []VertexOrder{BoundaryFirst, InteriorFirst, Interleaved, VertexOrder(9)} {
		if o.String() == "" {
			t.Error("empty VertexOrder string")
		}
	}
	for _, p := range []ConflictPolicy{ConflictRandom, ConflictMinID} {
		if p.String() == "" {
			t.Error("empty ConflictPolicy string")
		}
	}
}

// Property: greedy first-fit over any ordering is proper and within Δ+1 on
// arbitrary random graphs.
func TestQuickGreedyProper(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed uint64) bool {
		n := int(nRaw)%40 + 1
		g, err := gen.ErdosRenyi(n, int64(mRaw)*2, false, seed)
		if err != nil {
			return false
		}
		for _, o := range []order.Ordering{order.Natural, order.Random, order.SmallestLast} {
			c, err := Greedy(g, o, seed)
			if err != nil || c.Verify(g) != nil || c.NumColors() > g.MaxDegree()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestColorsRoundTrip(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 200, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Greedy(g, order.Natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteColors(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := range c {
		if got[v] != c[v] {
			t.Fatalf("vertex %d color %d, want %d", v, got[v], c[v])
		}
	}
	path := filepath.Join(t.TempDir(), "c.txt")
	if err := WriteColorsFile(path, c); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadColorsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromFile.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestReadColorsErrors(t *testing.T) {
	for name, in := range map[string]string{
		"color before header": "3\n",
		"bad header":          "coloring x\n",
		"too many colors":     "coloring 1\n0\n1\n",
		"too few colors":      "coloring 2\n0\n",
		"garbage":             "coloring 1\nzzz\n",
		"no header":           "# nothing\n",
	} {
		if _, err := ReadColors(bytes.NewBufferString(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
