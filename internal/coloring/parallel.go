package coloring

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// CommMode selects the communication scheme of the framework (Section 4.2).
type CommMode int

const (
	// CommNeighbors is the paper's new algorithm: customized messages only
	// to neighboring processors — fewer messages AND less volume.
	CommNeighbors CommMode = iota
	// CommCustomizedAll is FIAC: a customized (possibly empty) message to
	// every processor — less volume than broadcast, same message count.
	CommCustomizedAll
	// CommBroadcast is FIAB: the same full bundle to every processor.
	CommBroadcast
)

func (m CommMode) String() string {
	switch m {
	case CommNeighbors:
		return "neighbors"
	case CommCustomizedAll:
		return "customized-all"
	case CommBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("commmode(%d)", int(m))
}

// VertexOrder selects the relative order of interior and boundary vertices —
// the framework's "before, after, or interleaved" knob. The experiments in
// the framework paper favor strictly-before or strictly-after.
type VertexOrder int

const (
	// BoundaryFirst colors boundary vertices before interior ones, giving
	// conflicts the longest time to surface while interior work proceeds.
	BoundaryFirst VertexOrder = iota
	// InteriorFirst colors interior vertices first.
	InteriorFirst
	// Interleaved colors vertices in natural local order.
	Interleaved
)

func (o VertexOrder) String() string {
	switch o {
	case BoundaryFirst:
		return "boundary-first"
	case InteriorFirst:
		return "interior-first"
	case Interleaved:
		return "interleaved"
	}
	return fmt.Sprintf("vertexorder(%d)", int(o))
}

// ConflictPolicy selects which endpoint of a conflict edge re-colors.
type ConflictPolicy int

const (
	// ConflictRandom uses the pre-assigned random number r(v) (generated
	// from the vertex's global id as seed, exactly as in Algorithm 4.1):
	// the endpoint with the smaller r re-colors. This is the paper's
	// load-balance-friendly choice.
	ConflictRandom ConflictPolicy = iota
	// ConflictMinID deterministically re-colors the smaller global id — the
	// biased baseline the randomized policy improves on.
	ConflictMinID
)

func (p ConflictPolicy) String() string {
	if p == ConflictMinID {
		return "min-id"
	}
	return "random"
}

// ParallelOptions configures the distributed coloring.
type ParallelOptions struct {
	// SuperstepSize is s in Algorithm 4.1: how many vertices are colored
	// between communication steps. 0 selects 1000, the paper's
	// well-partitioned sweet spot; poorly-partitioned inputs favor ~100.
	SuperstepSize int
	// CommMode selects FIAB / FIAC / the new neighbor-customized scheme.
	CommMode CommMode
	// Order places interior vertices before, after, or interleaved with
	// boundary vertices.
	Order VertexOrder
	// Strategy picks the color-selection rule.
	Strategy Strategy
	// Conflict picks the conflict-resolution policy.
	Conflict ConflictPolicy
	// Seed drives r(v); all ranks must pass the same value.
	Seed uint64
	// MaxRounds aborts a run that fails to converge (safety net; the
	// framework converges in a handful of rounds). 0 selects 64.
	MaxRounds int
	// Threads > 1 enables the hybrid distributed/shared-memory mode of the
	// paper's Section 6 outlook: each rank colors its interior vertices with
	// this many worker goroutines before the boundary enters the distributed
	// rounds (forcing interior-strictly-before-boundary order).
	Threads int
}

// ParallelResult is one rank's share of the distributed coloring.
type ParallelResult struct {
	// Colors[v] is the color of owned vertex v (local index).
	Colors []int32
	// Rounds is the number of speculative rounds executed globally.
	Rounds int
	// Conflicts counts this rank's re-colored vertices summed over rounds.
	Conflicts int64
	// NumColors is the global color count (identical on every rank).
	NumColors int
}

const (
	// colorTag is the color-notice tag, shared by every communication
	// variant (FIAB / FIAC / NEW) — the base of the coloring range of the
	// tag-space contract (docs/PROTOCOL.md), metered as the "color" family.
	colorTag     = mpi.TagColorBase
	colorRecSize = 12 // global id (8) + color (4)
)

func encodeColorRec(buf []byte, gid int64, color int32) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(gid))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(color))
}

func decodeColorRec(rec []byte) (int64, int32) {
	return int64(binary.LittleEndian.Uint64(rec[0:8])), int32(binary.LittleEndian.Uint32(rec[8:12]))
}

// rnd deterministically maps a global vertex id to its random priority r(v);
// every rank computes identical values without communication, which is the
// point of the paper's "random function defined over boundary vertices at
// the beginning of the algorithm".
func rnd(seed uint64, gid int64) uint64 {
	z := seed ^ (uint64(gid)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Parallel runs the speculative iterative distance-1 coloring (Algorithm
// 4.1) on this rank's share d. Every rank of the world must call Parallel
// with its own share and identical options.
func Parallel(c *mpi.Comm, d *dgraph.DistGraph, opt ParallelOptions) (*ParallelResult, error) {
	if c.Size() != d.P {
		return nil, fmt.Errorf("coloring: world size %d, graph distributed over %d", c.Size(), d.P)
	}
	if c.Rank() != d.Rank {
		return nil, fmt.Errorf("coloring: rank %d given share of rank %d", c.Rank(), d.Rank)
	}
	if opt.SuperstepSize == 0 {
		opt.SuperstepSize = 1000
	}
	if opt.SuperstepSize < 1 {
		return nil, fmt.Errorf("coloring: non-positive superstep size %d", opt.SuperstepSize)
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 64
	}

	s := &colorState{c: c, d: d, opt: opt}
	if err := s.run(); err != nil {
		return nil, err
	}
	// Global color count.
	localMax := int32(-1)
	for _, col := range s.colors {
		if col > localMax {
			localMax = col
		}
	}
	globalMax := c.AllreduceInt64(int64(localMax), mpi.OpMax)
	return &ParallelResult{
		Colors:    s.colors,
		Rounds:    s.rounds,
		Conflicts: s.conflicts,
		NumColors: int(globalMax + 1),
	}, nil
}

type colorState struct {
	c   *mpi.Comm
	d   *dgraph.DistGraph
	opt ParallelOptions

	colors     []int32 // owned, -1 until colored
	ghostColor []int32 // latest known ghost colors, -1 unknown
	picker     *firstFit
	usage      []int64 // per-color local usage, for LeastUsed
	maxColors  int     // mark-array capacity (global Δ + 1)
	staggerAt  int32   // starting color for StaggeredFirstFit

	// vertexRanks is a CSR of the distinct neighbor ranks of each owned
	// boundary vertex, the destination sets of the NEW communication mode.
	vertexRankOff  []int32
	vertexRankList []int32

	out       *mpi.Bundler
	rounds    int
	conflicts int64
	tr        *obs.Tracer
}

func (s *colorState) run() error {
	d := s.d
	n := d.NLocal
	s.colors = make([]int32, n)
	for i := range s.colors {
		s.colors[i] = -1
	}
	s.ghostColor = make([]int32, d.NGhost)
	for i := range s.ghostColor {
		s.ghostColor[i] = -1
	}
	// Global Δ bounds every first-fit color.
	localMaxDeg := 0
	for v := 0; v < n; v++ {
		if deg := d.Degree(int32(v)); deg > localMaxDeg {
			localMaxDeg = deg
		}
	}
	globalMaxDeg := int(s.c.AllreduceInt64(int64(localMaxDeg), mpi.OpMax))
	s.maxColors = globalMaxDeg + 1
	s.picker = newFirstFit(s.maxColors)
	s.usage = make([]int64, s.maxColors+1)
	if s.d.P > 0 {
		s.staggerAt = int32(s.d.Rank * s.maxColors / s.d.P)
	}
	s.buildVertexRanks()
	s.out = mpi.NewBundler(s.c, colorTag, colorRecSize, 0)
	s.tr = s.c.Tracer()

	// U starts as all owned vertices in the configured order — or, in the
	// hybrid mode, as the boundary only, the interior having been colored by
	// the rank's worker threads.
	var u []int32
	if s.opt.Threads > 1 {
		s.colorInteriorThreaded(s.opt.Threads)
		for v := 0; v < n; v++ {
			if d.IsBoundary[v] {
				u = append(u, int32(v))
			}
		}
	} else {
		u = s.initialOrder()
	}
	for {
		s.rounds++
		if s.rounds > s.opt.MaxRounds {
			return fmt.Errorf("coloring: no convergence after %d rounds", s.opt.MaxRounds)
		}
		roundTok := s.tr.Begin("color.round")
		// Tentative coloring in supersteps.
		for lo := 0; lo < len(u); lo += s.opt.SuperstepSize {
			hi := lo + s.opt.SuperstepSize
			if hi > len(u) {
				hi = len(u)
			}
			chunk := u[lo:hi]
			stepTok := s.tr.BeginDetail("color.superstep")
			var chunkArcs int64
			for _, v := range chunk {
				s.colors[v] = s.pickColor(v)
				chunkArcs += int64(s.d.Degree(v))
			}
			s.c.ChargeOps(chunkArcs, int64(len(chunk)))
			s.shipChunk(chunk)
			s.drain()
			s.tr.EndN(stepTok, int64(len(chunk)))
		}
		// Round boundary: all traffic sent before the barrier is in our
		// mailbox after it; drain to gather complete neighbor information.
		s.c.Barrier()
		s.drain()

		// Communication-free conflict detection.
		detectTok := s.tr.BeginDetail("color.detect")
		recolor := u[:0]
		var detectArcs int64
		for _, v := range u {
			if s.d.IsBoundary[v] {
				detectArcs += int64(s.d.Degree(v))
			}
			if s.loses(v) {
				recolor = append(recolor, v)
			}
		}
		s.c.ChargeOps(detectArcs, 0)
		u = recolor
		s.conflicts += int64(len(u))
		s.tr.EndN(detectTok, int64(len(u)))
		done := s.c.AllreduceInt64(int64(len(u)), mpi.OpSum) == 0
		s.tr.EndN(roundTok, int64(s.rounds))
		if done {
			return nil
		}
	}
}

// initialOrder lists the owned vertices in the configured interior/boundary
// order.
func (s *colorState) initialOrder() []int32 {
	n := s.d.NLocal
	u := make([]int32, 0, n)
	switch s.opt.Order {
	case Interleaved:
		for v := 0; v < n; v++ {
			u = append(u, int32(v))
		}
	case BoundaryFirst:
		for v := 0; v < n; v++ {
			if s.d.IsBoundary[v] {
				u = append(u, int32(v))
			}
		}
		for v := 0; v < n; v++ {
			if !s.d.IsBoundary[v] {
				u = append(u, int32(v))
			}
		}
	case InteriorFirst:
		for v := 0; v < n; v++ {
			if !s.d.IsBoundary[v] {
				u = append(u, int32(v))
			}
		}
		for v := 0; v < n; v++ {
			if s.d.IsBoundary[v] {
				u = append(u, int32(v))
			}
		}
	}
	return u
}

// buildVertexRanks precomputes, for each owned boundary vertex, the sorted
// distinct ranks owning at least one of its neighbors.
func (s *colorState) buildVertexRanks() {
	d := s.d
	s.vertexRankOff = make([]int32, d.NLocal+1)
	var list []int32
	var scratch []int32
	for v := 0; v < d.NLocal; v++ {
		scratch = scratch[:0]
		for _, u := range d.Neighbors(int32(v)) {
			if d.IsGhost(u) {
				scratch = append(scratch, int32(d.OwnerOf(u)))
			}
		}
		if len(scratch) > 1 {
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			w := 1
			for i := 1; i < len(scratch); i++ {
				if scratch[i] != scratch[w-1] {
					scratch[w] = scratch[i]
					w++
				}
			}
			scratch = scratch[:w]
		}
		list = append(list, scratch...)
		s.vertexRankOff[v+1] = int32(len(list))
	}
	s.vertexRankList = list
}

// pickColor selects a permissible color for owned vertex v given current
// knowledge of neighbor colors.
func (s *colorState) pickColor(v int32) int32 {
	d := s.d
	f := s.picker
	f.stamp++
	for _, u := range d.Neighbors(v) {
		var c int32
		if d.IsGhost(u) {
			c = s.ghostColor[int(u)-d.NLocal]
		} else {
			c = s.colors[u]
		}
		if c >= 0 && int(c) < len(f.mark) {
			f.mark[c] = f.stamp
		}
	}
	switch s.opt.Strategy {
	case StaggeredFirstFit:
		// Scan from the per-rank base, wrapping once over [0, maxColors).
		for i := 0; i < s.maxColors; i++ {
			c := (int(s.staggerAt) + i) % s.maxColors
			if f.mark[c] != f.stamp {
				return int32(c)
			}
		}
	case LeastUsed:
		// Among permissible colors not exceeding the locally used palette,
		// prefer the least used; fall back to first fit.
		best, bestUse := int32(-1), int64(1)<<62
		limit := s.paletteSize()
		for c := 0; c < limit; c++ {
			if f.mark[c] != f.stamp && s.usage[c] < bestUse {
				best, bestUse = int32(c), s.usage[c]
			}
		}
		if best >= 0 {
			s.usage[best]++
			return best
		}
		for c := range f.mark {
			if f.mark[c] != f.stamp {
				s.usage[c]++
				return int32(c)
			}
		}
	default: // FirstFit
		for c := range f.mark {
			if f.mark[c] != f.stamp {
				return int32(c)
			}
		}
	}
	panic("coloring: no permissible color (mark array too small?)")
}

// paletteSize reports how many colors this rank has used so far, plus one
// (capped at the usage array so LeastUsed never scans out of range).
func (s *colorState) paletteSize() int {
	for c := len(s.usage) - 1; c >= 0; c-- {
		if s.usage[c] > 0 {
			if c+2 > len(s.usage) {
				return len(s.usage)
			}
			return c + 2
		}
	}
	return 1
}

// shipChunk sends the freshly assigned colors of the chunk's boundary
// vertices according to the communication mode. Interior vertices never
// generate traffic.
func (s *colorState) shipChunk(chunk []int32) {
	d := s.d
	switch s.opt.CommMode {
	case CommNeighbors:
		var rec [colorRecSize]byte
		for _, v := range chunk {
			if !d.IsBoundary[v] {
				continue
			}
			encodeColorRec(rec[:], d.GlobalOf(v), s.colors[v])
			for _, rk := range s.vertexRankList[s.vertexRankOff[v]:s.vertexRankOff[v+1]] {
				s.out.Add(int(rk), rec[:])
			}
		}
		s.out.Flush()
	case CommCustomizedAll:
		// Customized contents, but one (possibly empty) message per rank.
		bufs := make([][]byte, d.P)
		var rec [colorRecSize]byte
		for _, v := range chunk {
			if !d.IsBoundary[v] {
				continue
			}
			encodeColorRec(rec[:], d.GlobalOf(v), s.colors[v])
			for _, rk := range s.vertexRankList[s.vertexRankOff[v]:s.vertexRankOff[v+1]] {
				bufs[rk] = append(bufs[rk], rec[:]...)
			}
		}
		for rk := 0; rk < d.P; rk++ {
			if rk == d.Rank {
				continue
			}
			s.c.Send(rk, colorTag, bufs[rk])
		}
	case CommBroadcast:
		// One identical bundle of every boundary color to every rank.
		var all []byte
		var rec [colorRecSize]byte
		for _, v := range chunk {
			if !d.IsBoundary[v] {
				continue
			}
			encodeColorRec(rec[:], d.GlobalOf(v), s.colors[v])
			all = append(all, rec[:]...)
		}
		for rk := 0; rk < d.P; rk++ {
			if rk == d.Rank {
				continue
			}
			// Each recipient gets its own copy (receivers own message data).
			cp := make([]byte, len(all))
			copy(cp, all)
			s.c.Send(rk, colorTag, cp)
		}
	}
}

// drain consumes pending color updates without blocking; completeness at
// round boundaries comes from the barrier that precedes the final drain.
// Records about vertices that are not ghosts here (broadcast mode) are
// ignored.
func (s *colorState) drain() {
	for {
		m, ok := s.c.TryRecv()
		if !ok {
			return
		}
		if m.Tag != colorTag {
			panic(fmt.Sprintf("coloring: unexpected tag %d", m.Tag))
		}
		s.c.ChargeOps(int64(len(m.Data)/colorRecSize), 0)
		for _, rec := range mpi.Records(m.Data, colorRecSize) {
			gid, col := decodeColorRec(rec)
			if l, ok := s.d.LocalOf(gid); ok && s.d.IsGhost(l) {
				s.ghostColor[int(l)-s.d.NLocal] = col
			}
		}
		s.out.Recycle(m.Data) // fully consumed; reuse for outbound bundles
	}
}

// loses reports whether boundary vertex v is in conflict with a ghost
// neighbor of equal color and is the endpoint that must re-color.
func (s *colorState) loses(v int32) bool {
	d := s.d
	if !d.IsBoundary[v] {
		return false
	}
	cv := s.colors[v]
	gv := d.GlobalOf(v)
	for _, u := range d.Neighbors(v) {
		if !d.IsGhost(u) {
			continue
		}
		if s.ghostColor[int(u)-d.NLocal] != cv {
			continue
		}
		gu := d.GlobalOf(u)
		if s.opt.Conflict == ConflictMinID {
			if gv < gu {
				return true
			}
			continue
		}
		rv, ru := rnd(s.opt.Seed, gv), rnd(s.opt.Seed, gu)
		if rv < ru || (rv == ru && gv < gu) {
			return true
		}
	}
	return false
}
