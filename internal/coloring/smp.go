package coloring

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// SharedMemory colors g with the speculative iterative scheme on
// shared-memory threads (Gebremedhin–Manne style), the building block of the
// hybrid distributed/shared-memory direction the paper's Section 6 sketches:
// within an address space, workers color disjoint vertex blocks
// speculatively while reading neighbor colors racily, then a parallel
// conflict-detection sweep collects the losing endpoint of every conflict
// edge for the next round.
//
// The result is a proper distance-1 coloring with at most Δ+1 colors; the
// number of rounds is tiny in practice (conflicts only arise between
// simultaneously colored neighbors).
func SharedMemory(g *graph.Graph, workers int, seed uint64) Colors {
	n := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	maxColors := g.MaxDegree() + 1

	// parallelOver splits items into contiguous chunks, one per worker.
	parallelOver := func(items []graph.Vertex, fn func(worker int, chunk []graph.Vertex)) {
		if len(items) == 0 {
			return
		}
		w := workers
		if w > len(items) {
			w = len(items)
		}
		chunk := (len(items) + w - 1) / w
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			lo := i * chunk
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				fn(i, items[lo:hi])
			}(i, lo, hi)
		}
		wg.Wait()
	}

	u := make([]graph.Vertex, n)
	for i := range u {
		u[i] = graph.Vertex(i)
	}
	recolor := make([][]graph.Vertex, workers)

	for len(u) > 0 {
		// Speculative coloring phase: racy reads of neighbor colors are
		// benign — a missed concurrent assignment at worst produces a
		// conflict that the next phase catches.
		parallelOver(u, func(_ int, chunk []graph.Vertex) {
			mark := make([]int64, maxColors+1)
			var stamp int64
			for _, v := range chunk {
				stamp++
				for _, nb := range g.Neighbors(v) {
					c := atomic.LoadInt32(&colors[nb])
					if c >= 0 && int(c) < len(mark) {
						mark[c] = stamp
					}
				}
				for c := range mark {
					if mark[c] != stamp {
						atomic.StoreInt32(&colors[v], int32(c))
						break
					}
				}
			}
		})
		// Conflict detection: the endpoint with the smaller random priority
		// (ties by id) re-colors, exactly as in the distributed framework.
		parallelOver(u, func(worker int, chunk []graph.Vertex) {
			var losers []graph.Vertex
			for _, v := range chunk {
				cv := atomic.LoadInt32(&colors[v])
				gv := int64(v)
				for _, nb := range g.Neighbors(v) {
					if atomic.LoadInt32(&colors[nb]) != cv {
						continue
					}
					gu := int64(nb)
					rv, ru := rnd(seed, gv), rnd(seed, gu)
					if rv < ru || (rv == ru && gv < gu) {
						losers = append(losers, v)
						break
					}
				}
			}
			recolor[worker] = losers
		})
		u = u[:0]
		for i := range recolor {
			u = append(u, recolor[i]...)
			recolor[i] = nil
		}
	}
	return colors
}
