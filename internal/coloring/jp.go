package coloring

import (
	"fmt"

	"repro/internal/dgraph"
	"repro/internal/mpi"
)

// JonesPlassmann runs the classic maximal-independent-set-based parallel
// coloring (Jones & Plassmann 1993), the baseline the speculative framework
// was shown to outperform: in each round, every uncolored vertex whose random
// priority r(v) exceeds that of all its uncolored neighbors colors itself
// with the smallest permissible color, then announces the color to the ranks
// owning its neighbors. Unlike the speculative framework it never produces
// conflicts, but it needs more rounds — one per "layer" of the random
// priority order rather than one per surviving conflict generation.
func JonesPlassmann(c *mpi.Comm, d *dgraph.DistGraph, seed uint64, maxRounds int) (*ParallelResult, error) {
	if c.Size() != d.P {
		return nil, fmt.Errorf("coloring: world size %d, graph distributed over %d", c.Size(), d.P)
	}
	if c.Rank() != d.Rank {
		return nil, fmt.Errorf("coloring: rank %d given share of rank %d", c.Rank(), d.Rank)
	}
	if maxRounds <= 0 {
		maxRounds = 10000
	}
	n := d.NLocal
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	ghostColor := make([]int32, d.NGhost)
	for i := range ghostColor {
		ghostColor[i] = -1
	}
	localMaxDeg := 0
	for v := 0; v < n; v++ {
		if deg := d.Degree(int32(v)); deg > localMaxDeg {
			localMaxDeg = deg
		}
	}
	globalMaxDeg := int(c.AllreduceInt64(int64(localMaxDeg), mpi.OpMax))
	picker := newFirstFit(globalMaxDeg + 1)
	out := mpi.NewBundler(c, colorTag, colorRecSize, 0)

	// prio(v) with global-id tie-breaking folded in.
	wins := func(v int32) bool {
		gv := d.GlobalOf(v)
		rv := rnd(seed, gv)
		for _, u := range d.Neighbors(v) {
			var uncolored bool
			if d.IsGhost(u) {
				uncolored = ghostColor[int(u)-d.NLocal] < 0
			} else {
				uncolored = colors[u] < 0
			}
			if !uncolored {
				continue
			}
			gu := d.GlobalOf(u)
			ru := rnd(seed, gu)
			if ru > rv || (ru == rv && gu > gv) {
				return false
			}
		}
		return true
	}

	uncolored := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		uncolored = append(uncolored, int32(v))
	}
	rounds := 0
	for {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("coloring: jones-plassmann did not converge in %d rounds", maxRounds)
		}
		var rec [colorRecSize]byte
		next := uncolored[:0]
		for _, v := range uncolored {
			if !wins(v) {
				next = append(next, v)
				continue
			}
			picker.stamp++
			for _, u := range d.Neighbors(v) {
				var col int32
				if d.IsGhost(u) {
					col = ghostColor[int(u)-d.NLocal]
				} else {
					col = colors[u]
				}
				if col >= 0 && int(col) < len(picker.mark) {
					picker.mark[col] = picker.stamp
				}
			}
			for cc := range picker.mark {
				if picker.mark[cc] != picker.stamp {
					colors[v] = int32(cc)
					break
				}
			}
			if d.IsBoundary[v] {
				encodeColorRec(rec[:], d.GlobalOf(v), colors[v])
				seen := int32(-1)
				for _, u := range d.Neighbors(v) {
					if !d.IsGhost(u) {
						continue
					}
					rk := int32(d.OwnerOf(u))
					if rk == seen {
						continue // cheap dedupe for runs of same-owner ghosts
					}
					seen = rk
					out.Add(int(rk), rec[:])
				}
			}
		}
		uncolored = next
		out.Flush()
		c.Barrier()
		for {
			m, ok := c.TryRecv()
			if !ok {
				break
			}
			for _, r := range mpi.Records(m.Data, colorRecSize) {
				gid, col := decodeColorRec(r)
				if l, ok := d.LocalOf(gid); ok && d.IsGhost(l) {
					ghostColor[int(l)-d.NLocal] = col
				}
			}
		}
		if c.AllreduceInt64(int64(len(uncolored)), mpi.OpSum) == 0 {
			break
		}
	}
	localMax := int32(-1)
	for _, col := range colors {
		if col > localMax {
			localMax = col
		}
	}
	globalMax := c.AllreduceInt64(int64(localMax), mpi.OpMax)
	return &ParallelResult{
		Colors:    colors,
		Rounds:    rounds,
		NumColors: int(globalMax + 1),
	}, nil
}
