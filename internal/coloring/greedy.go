// Package coloring implements the paper's distance-1 vertex coloring
// algorithms (Section 4): the sequential greedy algorithm over the ColPack
// vertex orderings, the distributed speculative/iterative framework of
// Bozdağ et al. (Algorithm 4.1) with the paper's three communication
// variants (FIAB broadcast, FIAC customized-to-all, and the NEW
// customized-to-neighbors scheme), randomized conflict resolution, and the
// Jones–Plassmann maximal-independent-set baseline the framework was shown
// to beat.
package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/order"
)

// Colors assigns each vertex a color in [0, NumColors); -1 marks uncolored.
type Colors []int32

// NumColors reports the number of distinct colors used (max + 1).
func (c Colors) NumColors() int {
	max := int32(-1)
	for _, col := range c {
		if col > max {
			max = col
		}
	}
	return int(max + 1)
}

// Verify checks that c is a proper and complete distance-1 coloring of g.
func (c Colors) Verify(g *graph.Graph) error {
	if len(c) != g.NumVertices() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(c), g.NumVertices())
	}
	for v, col := range c {
		if col < 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if c[u] == col {
				return fmt.Errorf("coloring: conflict on edge {%d,%d}, both color %d", v, u, col)
			}
		}
	}
	return nil
}

// Strategy selects how a permissible color is chosen for a vertex — the
// framework's "How should a processor choose a color?" knob.
type Strategy int

const (
	// FirstFit picks the smallest color not used by any colored neighbor —
	// the choice the paper's experiments settled on.
	FirstFit Strategy = iota
	// StaggeredFirstFit starts the search at a per-processor base color
	// (base = rank * initial-estimate / p) and wraps, trading a few more
	// colors for fewer conflicts between processors.
	StaggeredFirstFit
	// LeastUsed picks, among permissible colors up to the current maximum,
	// the one used least so far (globally tracked per processor), balancing
	// color-class sizes.
	LeastUsed
)

// String names the strategy as in the framework literature.
func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case StaggeredFirstFit:
		return "staggered-first-fit"
	case LeastUsed:
		return "least-used"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Greedy colors g sequentially, visiting vertices in the given ordering and
// assigning each the first-fit color. It uses at most Δ+1 colors.
func Greedy(g *graph.Graph, o order.Ordering, seed uint64) (Colors, error) {
	ord, err := order.Compute(g, o, seed)
	if err != nil {
		return nil, err
	}
	return GreedyOrder(g, ord), nil
}

// GreedyOrder colors g by first fit in the exact vertex order given.
func GreedyOrder(g *graph.Graph, ord []graph.Vertex) Colors {
	n := g.NumVertices()
	colors := make(Colors, n)
	for i := range colors {
		colors[i] = -1
	}
	picker := newFirstFit(g.MaxDegree() + 1)
	for _, v := range ord {
		colors[v] = picker.pick(colors, g.Neighbors(v))
	}
	return colors
}

// firstFit finds the smallest color absent from a neighbor list, reusing a
// timestamped mark array so each pick costs O(degree).
type firstFit struct {
	mark  []int64
	stamp int64
}

func newFirstFit(maxColors int) *firstFit {
	return &firstFit{mark: make([]int64, maxColors+1)}
}

// pick returns the smallest color not used by any of the neighbors.
func (f *firstFit) pick(colors Colors, neighbors []graph.Vertex) int32 {
	f.stamp++
	for _, u := range neighbors {
		if c := colors[u]; c >= 0 && int(c) < len(f.mark) {
			f.mark[c] = f.stamp
		}
	}
	for c := range f.mark {
		if f.mark[c] != f.stamp {
			return int32(c)
		}
	}
	// Unreachable: mark has maxDegree+2 slots and a vertex has at most
	// maxDegree neighbors.
	panic("coloring: first-fit ran out of colors")
}

// Bounds returns simple lower and upper bounds for the chromatic number:
// the size of a greedily grown clique (lower) and Δ+1 (upper) — the
// "appropriate lower bounds" the paper cites for judging greedy solutions.
func Bounds(g *graph.Graph) (lower, upper int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0
	}
	upper = g.MaxDegree() + 1
	// Grow a clique greedily from a maximum-degree vertex.
	start := graph.Vertex(0)
	for v := 1; v < n; v++ {
		if g.Degree(graph.Vertex(v)) > g.Degree(start) {
			start = graph.Vertex(v)
		}
	}
	clique := []graph.Vertex{start}
	for _, u := range g.Neighbors(start) {
		inClique := true
		for _, c := range clique {
			if c != start && !g.HasEdge(u, c) {
				inClique = false
				break
			}
		}
		if inClique {
			clique = append(clique, u)
		}
	}
	lower = len(clique)
	if lower < 1 {
		lower = 1
	}
	return lower, upper
}
