package coloring

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteColors writes a coloring as text: a "coloring <n>" header, then one
// color per line in vertex order.
func WriteColors(w io.Writer, c Colors) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "coloring %d\n", len(c)); err != nil {
		return err
	}
	for _, col := range c {
		if _, err := fmt.Fprintln(bw, col); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadColors parses the format written by WriteColors.
func ReadColors(r io.Reader) (Colors, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		c      Colors
		filled int
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "coloring ") {
			n, err := strconv.Atoi(strings.TrimSpace(line[len("coloring "):]))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("coloring: line %d: bad header", lineNo)
			}
			c = make(Colors, n)
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("coloring: line %d: color before header", lineNo)
		}
		if filled >= len(c) {
			return nil, fmt.Errorf("coloring: line %d: more colors than declared", lineNo)
		}
		v, err := strconv.ParseInt(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("coloring: line %d: %v", lineNo, err)
		}
		c[filled] = int32(v)
		filled++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("coloring: missing header")
	}
	if filled != len(c) {
		return nil, fmt.Errorf("coloring: %d colors for %d declared vertices", filled, len(c))
	}
	return c, nil
}

// WriteColorsFile writes a coloring to path.
func WriteColorsFile(path string, c Colors) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteColors(f, c); err != nil {
		return err
	}
	return f.Close()
}

// ReadColorsFile reads a coloring from path.
func ReadColorsFile(path string) (Colors, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadColors(f)
}
