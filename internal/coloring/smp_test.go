package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

func TestSharedMemoryProper(t *testing.T) {
	g, err := gen.ErdosRenyi(400, 2400, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		c := SharedMemory(g, workers, 7)
		if err := c.Verify(g); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if c.NumColors() > g.MaxDegree()+1 {
			t.Fatalf("workers=%d: %d colors exceeds Δ+1 = %d", workers, c.NumColors(), g.MaxDegree()+1)
		}
	}
}

func TestSharedMemorySingleWorkerEqualsGreedy(t *testing.T) {
	// With one worker there are no races and no conflicts: the result is
	// plain first-fit in natural order.
	g, err := gen.Circuit(25, 25, 0.45, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	smp := SharedMemory(g, 1, 3)
	seq, err := Greedy(g, order.Natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq {
		if smp[v] != seq[v] {
			t.Fatalf("vertex %d: smp %d, greedy %d", v, smp[v], seq[v])
		}
	}
}

func TestSharedMemoryRepeatedRuns(t *testing.T) {
	// Different interleavings must all converge to proper colorings.
	g, err := gen.RMAT(10, 6, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		c := SharedMemory(g, 8, 11)
		if err := c.Verify(g); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
}

func TestSharedMemoryEdgeCases(t *testing.T) {
	empty, _ := graph.BuildUndirected(0, nil, graph.DedupeFirst)
	if c := SharedMemory(empty, 4, 0); len(c) != 0 {
		t.Fatal("empty graph coloring not empty")
	}
	single, _ := graph.BuildUndirected(1, nil, graph.DedupeFirst)
	if c := SharedMemory(single, 0, 0); c[0] != 0 {
		t.Fatalf("singleton color %d", c[0])
	}
}

func TestGreedyDistance2Proper(t *testing.T) {
	g, err := gen.Grid2D(10, 10, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := GreedyDistance2(g, order.Natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDistance2(g, c); err != nil {
		t.Fatal(err)
	}
	// A grid interior vertex has 4+8 distance-<=2 neighbors; the 5-point
	// grid's distance-2 chromatic number is 5 (the stencil size); first-fit
	// in natural order should stay close.
	if got := c.NumColors(); got < 5 || got > 9 {
		t.Fatalf("distance-2 colors = %d, want in [5, 9]", got)
	}
	// Distance-1 verification also passes (distance-2 is stronger).
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDistance2BoundsAndStar(t *testing.T) {
	// Star K1,6: all leaves are pairwise at distance 2 — 7 colors needed.
	edges := make([]graph.Edge, 6)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: graph.Vertex(i + 1), W: 1}
	}
	star, err := graph.BuildUndirected(7, edges, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	c, err := GreedyDistance2(star, order.Natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDistance2(star, c); err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 7 {
		t.Fatalf("star distance-2 colors = %d, want 7", c.NumColors())
	}
}

func TestVerifyDistance2CatchesViolations(t *testing.T) {
	// Path 0-1-2: colors {0,1,0} is distance-1 proper but 0 and 2 collide
	// at distance 2.
	g, err := graph.BuildUndirected(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	}, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDistance2(g, Colors{0, 1, 0}); err == nil {
		t.Fatal("accepted distance-2 violation")
	}
	if err := VerifyDistance2(g, Colors{0, 1, 2}); err != nil {
		t.Fatalf("rejected proper distance-2 coloring: %v", err)
	}
}

// Property: SMP coloring is proper for any worker count; distance-2 greedy
// is distance-2 proper.
func TestQuickSMPAndDistance2(t *testing.T) {
	f := func(nRaw, mRaw, wRaw uint8, seed uint64) bool {
		n := int(nRaw)%40 + 1
		g, err := gen.ErdosRenyi(n, int64(mRaw), false, seed)
		if err != nil {
			return false
		}
		smp := SharedMemory(g, int(wRaw)%5+1, seed)
		if smp.Verify(g) != nil || smp.NumColors() > g.MaxDegree()+1 {
			return false
		}
		d2, err := GreedyDistance2(g, order.Natural, 0)
		if err != nil {
			return false
		}
		return VerifyDistance2(g, d2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
