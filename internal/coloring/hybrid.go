package coloring

import (
	"sync"
	"sync/atomic"
)

// The hybrid path implements the outlook of the paper's Section 6:
// "implementations that harness the full potential of such architectures
// will need to rely on the use of hybrid distributed-memory and
// shared-memory programming, for example, via the combined use of MPI and
// OpenMP". Here each rank (the MPI level) colors its interior vertices with
// several worker goroutines (the OpenMP level) using the shared-memory
// speculative scheme, and only the boundary enters the distributed rounds.
// Interior vertices have no ghost neighbors, so the threaded phase needs no
// communication, and boundary vertices colored afterwards respect the
// interior colors — the "interior strictly before boundary" order of the
// framework with the interior leg parallelized.

// colorInteriorThreaded colors every interior owned vertex using `threads`
// workers; boundary vertices stay uncolored. Safe because interior vertices
// only neighbor owned vertices.
func (s *colorState) colorInteriorThreaded(threads int) {
	d := s.d
	interior := make([]int32, 0, d.NLocal-s.d.NumBoundary)
	for v := 0; v < d.NLocal; v++ {
		if !d.IsBoundary[v] {
			interior = append(interior, int32(v))
		}
	}
	if threads > len(interior) {
		threads = len(interior)
	}
	if threads < 1 || len(interior) == 0 {
		return
	}

	parallelOver := func(items []int32, fn func(worker int, chunk []int32)) {
		w := threads
		if w > len(items) {
			w = len(items)
		}
		chunk := (len(items) + w - 1) / w
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			lo := i * chunk
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				fn(i, items[lo:hi])
			}(i, lo, hi)
		}
		wg.Wait()
	}

	u := interior
	recolor := make([][]int32, threads)
	for len(u) > 0 {
		parallelOver(u, func(_ int, chunk []int32) {
			mark := make([]int64, s.maxColors+1)
			var stamp int64
			for _, v := range chunk {
				stamp++
				for _, nb := range d.Neighbors(v) {
					if d.IsGhost(nb) {
						continue // cannot happen for interior v; belt only
					}
					c := atomic.LoadInt32(&s.colors[nb])
					if c >= 0 && int(c) < len(mark) {
						mark[c] = stamp
					}
				}
				for c := range mark {
					if mark[c] != stamp {
						atomic.StoreInt32(&s.colors[v], int32(c))
						break
					}
				}
			}
		})
		parallelOver(u, func(worker int, chunk []int32) {
			var losers []int32
			for _, v := range chunk {
				cv := atomic.LoadInt32(&s.colors[v])
				gv := d.GlobalOf(v)
				for _, nb := range d.Neighbors(v) {
					if d.IsGhost(nb) || atomic.LoadInt32(&s.colors[nb]) != cv {
						continue
					}
					gu := d.GlobalOf(nb)
					rv, ru := rnd(s.opt.Seed, gv), rnd(s.opt.Seed, gu)
					if rv < ru || (rv == ru && gv < gu) {
						losers = append(losers, v)
						break
					}
				}
			}
			recolor[worker] = losers
		})
		u = nil
		for i := range recolor {
			u = append(u, recolor[i]...)
			recolor[i] = nil
		}
	}
}
