package coloring

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// runParallel distributes g over part, runs the speculative coloring on all
// ranks, and returns the assembled global coloring plus per-rank results.
func runParallel(t *testing.T, g *graph.Graph, part *partition.Partition, opt ParallelOptions, mpiOpts ...mpi.Option) (Colors, []*ParallelResult) {
	t.Helper()
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ParallelResult, part.P)
	var mu sync.Mutex
	mpiOpts = append(mpiOpts, mpi.WithDeadline(30*time.Second))
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := Parallel(c, shares[c.Rank()], opt)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	}, mpiOpts...)
	if err != nil {
		t.Fatal(err)
	}
	colors, err := Gather(shares, results)
	if err != nil {
		t.Fatal(err)
	}
	return colors, results
}

func TestParallelProperOnGrid(t *testing.T) {
	g, err := gen.Grid2D(20, 20, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 9} {
		pr, pc := partition.ProcessorGrid(p)
		part, err := partition.Grid2D(20, 20, pr, pc)
		if err != nil {
			t.Fatal(err)
		}
		colors, results := runParallel(t, g, part, ParallelOptions{Seed: 5})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if colors.NumColors() > g.MaxDegree()+1 {
			t.Fatalf("p=%d: %d colors exceeds Δ+1", p, colors.NumColors())
		}
		// All ranks must agree on round count and color count.
		for _, r := range results {
			if r.Rounds != results[0].Rounds || r.NumColors != results[0].NumColors {
				t.Fatalf("p=%d: ranks disagree on rounds/colors", p)
			}
		}
		if results[0].NumColors != colors.NumColors() {
			t.Fatalf("p=%d: reported %d colors, gathered %d", p, results[0].NumColors, colors.NumColors())
		}
	}
}

func TestParallelNumColorsNearSequential(t *testing.T) {
	// Section 5.2: the parallel color count "in general remained nearly the
	// same as the number used by the underlying serial algorithm".
	g, err := gen.Circuit(40, 40, 0.45, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := GreedyOrder(g, naturalOrder(g))
	part, err := partition.Multilevel(g, 8, partition.MultilevelOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 7})
	if err := colors.Verify(g); err != nil {
		t.Fatal(err)
	}
	if colors.NumColors() > seq.NumColors()+2 {
		t.Fatalf("parallel used %d colors, sequential %d", colors.NumColors(), seq.NumColors())
	}
}

func naturalOrder(g *graph.Graph) []graph.Vertex {
	ord := make([]graph.Vertex, g.NumVertices())
	for i := range ord {
		ord[i] = graph.Vertex(i)
	}
	return ord
}

func TestParallelAllCommModes(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1000, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []CommMode{CommNeighbors, CommCustomizedAll, CommBroadcast} {
		colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 11, CommMode: mode})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestParallelCommModeTrafficOrdering(t *testing.T) {
	// The paper's Section 4.2 hierarchy: NEW sends fewer messages than FIAC,
	// which sends the same number as FIAB but less volume.
	g, err := gen.Grid2D(40, 40, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(40, 40, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	traffic := map[CommMode]mpi.Stats{}
	for _, mode := range []CommMode{CommNeighbors, CommCustomizedAll, CommBroadcast} {
		w, err := mpi.NewWorld(part.P, mpi.WithDeadline(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *mpi.Comm) error {
			_, err := Parallel(c, shares[c.Rank()], ParallelOptions{Seed: 3, CommMode: mode, SuperstepSize: 100})
			return err
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		traffic[mode] = w.TotalStats()
	}
	neu, fiac, fiab := traffic[CommNeighbors], traffic[CommCustomizedAll], traffic[CommBroadcast]
	if neu.SentMsgs >= fiac.SentMsgs {
		t.Errorf("NEW sent %d msgs, FIAC %d — expected fewer", neu.SentMsgs, fiac.SentMsgs)
	}
	if fiab.SentBytes <= fiac.SentBytes {
		t.Errorf("FIAB sent %d bytes, FIAC %d — expected broadcast volume to dominate", fiab.SentBytes, fiac.SentBytes)
	}
	if neu.SentBytes > fiab.SentBytes {
		t.Errorf("NEW volume %d exceeds FIAB %d", neu.SentBytes, fiab.SentBytes)
	}
}

func TestParallelAllStrategies(t *testing.T) {
	g, err := gen.ErdosRenyi(150, 800, false, 13)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Strategy{FirstFit, StaggeredFirstFit, LeastUsed} {
		colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 17, Strategy: st})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("strategy %v: %v", st, err)
		}
	}
}

func TestParallelAllOrders(t *testing.T) {
	g, err := gen.Circuit(25, 25, 0.45, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []VertexOrder{BoundaryFirst, InteriorFirst, Interleaved} {
		colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 19, Order: o})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("order %v: %v", o, err)
		}
	}
}

func TestParallelConflictPolicies(t *testing.T) {
	g, err := gen.ErdosRenyi(150, 900, false, 23)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range []ConflictPolicy{ConflictRandom, ConflictMinID} {
		colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 29, Conflict: cp, SuperstepSize: 25})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("policy %v: %v", cp, err)
		}
	}
}

func TestParallelSuperstepSizes(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 700, false, 31)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 7, 100, 100000} {
		colors, results := runParallel(t, g, part, ParallelOptions{Seed: 37, SuperstepSize: s})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		// Smaller supersteps mean fresher information and at least as few
		// conflicts in expectation; just sanity-check convergence speed.
		if results[0].Rounds > 20 {
			t.Fatalf("s=%d: %d rounds", s, results[0].Rounds)
		}
	}
	if _, err := dgraph.Distribute(g, part); err != nil {
		t.Fatal(err)
	}
	// Negative superstep size must be rejected.
	err = mpi.Run(1, func(c *mpi.Comm) error {
		share, err := dgraph.DistributeRank(g, &partition.Partition{P: 1, Part: make([]int32, g.NumVertices())}, 0)
		if err != nil {
			return err
		}
		if _, err := Parallel(c, share, ParallelOptions{SuperstepSize: -1}); err == nil {
			t.Error("accepted negative superstep size")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelUnderPerturbation(t *testing.T) {
	g, err := gen.ErdosRenyi(150, 700, false, 41)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 6; seed++ {
		colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 43, SuperstepSize: 10},
			mpi.WithPerturbation(seed))
		if err := colors.Verify(g); err != nil {
			t.Fatalf("perturbation %d: %v", seed, err)
		}
	}
}

func TestParallelSingleRank(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 300, false, 47)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := partition.Block1D(g, 1)
	colors, results := runParallel(t, g, part, ParallelOptions{Seed: 1})
	if err := colors.Verify(g); err != nil {
		t.Fatal(err)
	}
	if results[0].Rounds != 1 || results[0].Conflicts != 0 {
		t.Fatalf("single rank: rounds=%d conflicts=%d, want 1, 0", results[0].Rounds, results[0].Conflicts)
	}
}

func TestParallelConvergesInFewRounds(t *testing.T) {
	// The framework papers report convergence within ~6 rounds; allow slack
	// but catch pathological ping-ponging.
	g, err := gen.Circuit(40, 40, 0.45, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 8, 4) // poor partition: many conflicts
	if err != nil {
		t.Fatal(err)
	}
	_, results := runParallel(t, g, part, ParallelOptions{Seed: 53, SuperstepSize: 1000})
	if results[0].Rounds > 10 {
		t.Fatalf("converged in %d rounds, expected <= 10", results[0].Rounds)
	}
}

func TestJonesPlassmannProper(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1000, false, 59)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ParallelResult, part.P)
	var mu sync.Mutex
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		res, err := JonesPlassmann(c, shares[c.Rank()], 61, 0)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	}, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	colors, err := Gather(shares, results)
	if err != nil {
		t.Fatal(err)
	}
	if err := colors.Verify(g); err != nil {
		t.Fatal(err)
	}
	if colors.NumColors() > g.MaxDegree()+1 {
		t.Fatalf("JP used %d colors, exceeds Δ+1 = %d", colors.NumColors(), g.MaxDegree()+1)
	}
}

func TestFrameworkNeedsFewerRoundsThanJP(t *testing.T) {
	// The framework paper's key claim: speculation needs provably no more
	// rounds than MIS-based coloring, and typically far fewer.
	g, err := gen.Grid2D(30, 30, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(30, 30, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	var specRounds, jpRounds int
	var mu sync.Mutex
	err = mpi.Run(part.P, func(c *mpi.Comm) error {
		spec, err := Parallel(c, shares[c.Rank()], ParallelOptions{Seed: 67})
		if err != nil {
			return err
		}
		jp, err := JonesPlassmann(c, shares[c.Rank()], 67, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			specRounds, jpRounds = spec.Rounds, jp.Rounds
			mu.Unlock()
		}
		return nil
	}, mpi.WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if specRounds > jpRounds {
		t.Fatalf("speculative framework took %d rounds, JP %d", specRounds, jpRounds)
	}
}

func TestGatherRejectsInconsistentResults(t *testing.T) {
	g, _ := gen.Grid2D(4, 4, false, 0)
	part, _ := partition.Block1D(g, 2)
	shares, err := dgraph.Distribute(g, part)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Gather(shares, []*ParallelResult{nil, nil}); err == nil {
		t.Error("accepted nil results")
	}
	short := []*ParallelResult{
		{Colors: make([]int32, shares[0].NLocal)},
		{Colors: make([]int32, 1)},
	}
	if _, err := Gather(shares, short); err == nil {
		t.Error("accepted short result")
	}
	if _, err := Gather(nil, nil); err == nil {
		t.Error("accepted empty gather")
	}
}
