package coloring

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

func TestHybridColoringProper(t *testing.T) {
	g, err := gen.Grid2D(40, 40, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Grid2D(40, 40, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 8} {
		colors, results := runParallel(t, g, part, ParallelOptions{Seed: 3, Threads: threads})
		if err := colors.Verify(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if colors.NumColors() > g.MaxDegree()+1 {
			t.Fatalf("threads=%d: %d colors", threads, colors.NumColors())
		}
		if results[0].Rounds > 10 {
			t.Fatalf("threads=%d: %d rounds", threads, results[0].Rounds)
		}
	}
}

func TestHybridMatchesPlainOnCircuit(t *testing.T) {
	// Hybrid and plain modes both produce proper colorings with similar
	// color counts on an irregular graph.
	g, err := gen.Circuit(30, 30, 0.45, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.BFS(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := runParallel(t, g, part, ParallelOptions{Seed: 5})
	hybrid, _ := runParallel(t, g, part, ParallelOptions{Seed: 5, Threads: 4})
	if err := plain.Verify(g); err != nil {
		t.Fatal(err)
	}
	if err := hybrid.Verify(g); err != nil {
		t.Fatal(err)
	}
	if hybrid.NumColors() > plain.NumColors()+2 {
		t.Fatalf("hybrid used %d colors, plain %d", hybrid.NumColors(), plain.NumColors())
	}
}

func TestHybridSingleRankAllInterior(t *testing.T) {
	// One rank: everything is interior; the threaded phase does all the work
	// and the round loop terminates immediately.
	g, err := gen.ErdosRenyi(300, 1500, false, 11)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Block1D(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	colors, results := runParallel(t, g, part, ParallelOptions{Seed: 7, Threads: 8})
	if err := colors.Verify(g); err != nil {
		t.Fatal(err)
	}
	if results[0].Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", results[0].Rounds)
	}
}

func TestHybridUnderPerturbationHeavyCut(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1200, false, 13)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Random(g, 6, 1) // nearly everything is boundary
	if err != nil {
		t.Fatal(err)
	}
	colors, _ := runParallel(t, g, part, ParallelOptions{Seed: 9, Threads: 3, SuperstepSize: 20})
	if err := colors.Verify(g); err != nil {
		t.Fatal(err)
	}
}
