// Package mpi is the distributed-memory substrate of this repository: an
// in-process message-passing runtime with MPI-like semantics, standing in for
// the MPI/Blue Gene-P environment of the paper (the repro band notes "no MPI
// ecosystem" for Go). Each rank runs as a goroutine; ranks exchange
// asynchronous point-to-point byte messages and synchronize through a small
// set of collectives.
//
// Guarantees, chosen to match what the paper's algorithms assume of MPI:
//
//   - Reliable delivery: every sent message is received exactly once.
//   - Per-pair FIFO: messages from rank a to rank b arrive in send order.
//   - No global order: messages from different senders interleave
//     arbitrarily; a seeded perturbation mode randomizes the interleaving to
//     stress-test the asynchronous algorithms (the paper's Fig. 3.1
//     discussion — "if the two SUCCEEDED messages arrive in reverse order…" —
//     is exactly the behavior this mode exercises).
//   - Sends never block the sender (unbounded mailboxes), mirroring buffered
//     MPI_Isend as used with aggregated message bundles.
//
// The runtime also meters traffic: per-rank sent/received message and byte
// counters, which both the experiments and the α–β performance model
// consume. Counters are kept in aggregate and per message-tag family (see
// FamilyOf and docs/PROTOCOL.md), so every byte on the wire is attributed to
// a protocol phase; World.LiveSnapshot exposes the same breakdown for live
// polling while a run is in flight.
package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi/transport"
	"repro/internal/obs"
)

// Message is one point-to-point message.
type Message struct {
	From int
	Tag  int
	Data []byte
	// ArriveV is the virtual arrival time of the message (0 unless the
	// world runs WithVirtualTime).
	ArriveV float64
}

// World owns the mailboxes and collective state for a fixed set of ranks.
//
// By default all ranks live in this process (the inproc transport). With
// WithTransport a World can instead host a subset of the ranks — typically
// one — of a multi-process job, exchanging messages over the wire; the Comm
// API is identical either way.
type World struct {
	size     int
	tr       transport.Transport
	local    []int // ranks hosted by this World instance (ascending)
	allLocal bool  // every rank is local: shared-memory fast paths apply
	boxes    []*mailbox
	stats    []rankCounters // lock-free live traffic counters, one per rank
	barrier  *barrier
	coll     *collectives
	perturb  uint64 // nonzero enables randomized cross-sender receive order
	deadline time.Duration
	vt       *VirtualTime
	obs      *obs.Observer
	// finalVTime records each rank's virtual clock (as Float64bits) when its
	// Run body returned.
	finalVTime []atomic.Uint64

	runMu   sync.Mutex
	ran     bool
	running bool // a Run is in flight (or its ranks have not all returned)
}

// Option configures a World.
type Option func(*World)

// WithPerturbation makes receivers drain mailboxes in a seeded pseudo-random
// cross-sender order instead of round-robin. Per-pair FIFO is preserved.
func WithPerturbation(seed uint64) Option {
	return func(w *World) {
		if seed == 0 {
			seed = 1
		}
		w.perturb = seed
	}
}

// WithDeadline aborts Run if the ranks have not all finished within d,
// reporting which ranks were still alive — a deadlock watchdog for tests.
func WithDeadline(d time.Duration) Option {
	return func(w *World) { w.deadline = d }
}

// WithTransport runs the world over the given message transport instead of
// the default in-process one. The transport's size must match the world's;
// Run executes the rank function only for the transport's local ranks, so a
// remote backend (one rank per process) runs exactly one rank here while the
// collectives and barriers span the whole job over the wire.
func WithTransport(t transport.Transport) Option {
	return func(w *World) { w.tr = t }
}

// WithObserver attaches an observability collector: each local rank gets the
// observer's tracer for its rank (see Comm.Tracer), the runtime's counters
// flow into the observer's registry, and a transport that supports metrics
// is wired to it too. A nil observer is the disabled state and costs
// nothing on any hot path.
func WithObserver(o *obs.Observer) Option {
	return func(w *World) { w.obs = o }
}

// SetObserver swaps the world's observer between runs — how the serving
// layer's World pool gives every job its own span rings and registry on a
// recycled world (and detaches them again with nil when the job is done).
// Like Reset it refuses while any rank goroutine of an in-flight Run has not
// returned, since those goroutines read the observer without locks.
func (w *World) SetObserver(o *obs.Observer) error {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	if w.running {
		return fmt.Errorf("mpi: SetObserver while ranks are still running")
	}
	w.obs = o
	if m, ok := w.tr.(transport.MetricSetter); ok {
		m.SetMetrics(o.Registry()) // nil observer → nil registry → no-op instruments
	}
	if o != nil {
		o.Registry().Gauge("mpi.world_size").Set(int64(w.size))
	}
	return nil
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: non-positive world size %d", size)
	}
	w := &World{
		size:       size,
		boxes:      make([]*mailbox, size),
		stats:      make([]rankCounters, size),
		barrier:    newBarrier(size),
		finalVTime: make([]atomic.Uint64, size),
	}
	w.coll = newCollectives(size)
	for _, o := range opts {
		o(w)
	}
	if w.tr == nil {
		w.tr = transport.NewInproc(size)
	}
	if w.tr.Size() != size {
		return nil, fmt.Errorf("mpi: transport spans %d ranks, world wants %d", w.tr.Size(), size)
	}
	w.local = w.tr.Local()
	w.allLocal = len(w.local) == size
	for _, r := range w.local {
		w.boxes[r] = newMailbox(size)
		w.tr.Register(r, w.boxes[r].sink())
	}
	if w.obs != nil {
		// A transport backend that meters itself (frames, wire bytes, write
		// batches) hooks into the same registry.
		if m, ok := w.tr.(transport.MetricSetter); ok {
			m.SetMetrics(w.obs.Registry())
		}
		w.obs.Registry().Gauge("mpi.world_size").Set(int64(size))
	}
	return w, nil
}

// sink adapts a mailbox into the transport delivery callback.
func (mb *mailbox) sink() transport.Sink {
	return func(m transport.Msg) {
		mb.put(Message{From: m.From, Tag: m.Tag, Data: m.Payload, ArriveV: m.ArriveV})
	}
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn once per rank, each on its own goroutine, and waits for all
// of them. It returns the first non-nil error; a panic in a rank is captured
// and returned as an error rather than crashing the process.
func Run(size int, fn func(c *Comm) error, opts ...Option) error {
	w, err := NewWorld(size, opts...)
	if err != nil {
		return err
	}
	return w.Run(fn)
}

// Run executes fn once per local rank of w. A World is single-use by
// default: a second call returns an error immediately (mailboxes and traffic
// counters are in their post-run state). An all-local world can be returned
// to a runnable state with Reset, which is how the serving layer's World
// pool reuses rank worlds across jobs.
func (w *World) Run(fn func(c *Comm) error) error {
	w.runMu.Lock()
	ran := w.ran
	w.ran = true
	w.running = !ran
	w.runMu.Unlock()
	if ran {
		return fmt.Errorf("mpi: World.Run called twice; create a fresh World per run, or Reset this one")
	}
	if err := w.tr.Start(); err != nil {
		w.setNotRunning()
		return fmt.Errorf("mpi: transport start: %w", err)
	}
	runErr := w.run(fn)
	// Close flushes outbound queues (remote backends) and surfaces any
	// transport-level failure the ranks did not already trip over.
	if cerr := w.tr.Close(); cerr != nil && runErr == nil {
		runErr = fmt.Errorf("mpi: transport close: %w", cerr)
	}
	w.publishStats()
	return runErr
}

// publishStats copies the final per-rank traffic counters into the
// observer's registry, so an exported trace/metrics file reconciles exactly
// with RankStats/TotalStats. Only local ranks are published: in a
// multi-process job each worker reports its own rank and the shard merge
// sums them into the global totals.
func (w *World) publishStats() {
	if w.obs == nil {
		return
	}
	reg := w.obs.Registry()
	snaps := make([]Stats, len(w.local))
	for i, r := range w.local {
		snaps[i] = w.stats[r].snapshot()
	}
	sm := reg.Vec("mpi.sent_msgs", w.size)
	sb := reg.Vec("mpi.sent_bytes", w.size)
	rm := reg.Vec("mpi.recv_msgs", w.size)
	rb := reg.Vec("mpi.recv_bytes", w.size)
	for i, r := range w.local {
		s := snaps[i]
		sm.At(r).Add(s.SentMsgs)
		sb.At(r).Add(s.SentBytes)
		rm.At(r).Add(s.RecvMsgs)
		rb.At(r).Add(s.RecvBytes)
	}
	// Per-tag-family vectors, published only for families that saw traffic so
	// the registry stays readable. Family sums reconcile with the aggregates
	// above by construction (runtime excluded from both).
	for _, f := range TagFamilies() {
		any := false
		for i := range snaps {
			if snaps[i].ByFamily[f] != (FamilyStats{}) {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		fsm := reg.Vec("mpi.sent_msgs."+f.String(), w.size)
		fsb := reg.Vec("mpi.sent_bytes."+f.String(), w.size)
		frm := reg.Vec("mpi.recv_msgs."+f.String(), w.size)
		frb := reg.Vec("mpi.recv_bytes."+f.String(), w.size)
		for i, r := range w.local {
			fs := snaps[i].ByFamily[f]
			fsm.At(r).Add(fs.SentMsgs)
			fsb.At(r).Add(fs.SentBytes)
			frm.At(r).Add(fs.RecvMsgs)
			frb.At(r).Add(fs.RecvBytes)
		}
	}
}

func (w *World) run(fn func(c *Comm) error) error {
	errs := make([]error, len(w.local))
	done := make([]bool, len(w.local))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, r := range w.local {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					mu.Lock()
					errs[i] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					mu.Unlock()
				}
				mu.Lock()
				done[i] = true
				mu.Unlock()
			}()
			c := &Comm{world: w, rank: rank, rng: w.perturb}
			if w.obs != nil {
				c.tr = w.obs.Tracer(rank)
				c.tr.SetStatsFunc(func() (int64, int64) {
					return w.stats[rank].sentMsgs.Load(), w.stats[rank].sentBytes.Load()
				})
				reg := w.obs.Registry()
				c.vops = reg.Vec("mpi.vertex_ops", w.size).At(rank)
				c.eops = reg.Vec("mpi.edge_ops", w.size).At(rank)
				c.epochs = reg.Vec("mpi.barrier_epochs", w.size).At(rank)
			}
			if err := fn(c); err != nil {
				mu.Lock()
				errs[i] = fmt.Errorf("mpi: rank %d: %w", rank, err)
				mu.Unlock()
			}
			w.finalVTime[rank].Store(math.Float64bits(c.vclock))
		}(i, r)
	}
	// running flips back only when every rank goroutine has actually
	// returned — on the deadline path below, run returns while stuck ranks
	// are still live, and Reset must keep refusing until they are gone.
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		w.setNotRunning()
		close(finished)
	}()
	if w.deadline > 0 {
		select {
		case <-finished:
		case <-time.After(w.deadline):
			mu.Lock()
			stuck := []int{}
			for i, d := range done {
				if !d {
					stuck = append(stuck, w.local[i])
				}
			}
			// A rank that already failed usually explains why the others
			// are wedged; surface its error alongside the deadline.
			var firstErr error
			for _, e := range errs {
				if e != nil {
					firstErr = e
					break
				}
			}
			mu.Unlock()
			if firstErr != nil {
				return fmt.Errorf("mpi: deadline exceeded; ranks still running: %v; first failure: %w", stuck, firstErr)
			}
			return fmt.Errorf("mpi: deadline exceeded; ranks still running: %v", stuck)
		}
	} else {
		<-finished
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *World) setNotRunning() {
	w.runMu.Lock()
	w.running = false
	w.runMu.Unlock()
}

// Reset returns a completed all-local World to a runnable state so the next
// Run starts from scratch: every mailbox is drained (the count of discarded
// stale messages is returned), all per-rank traffic counters and virtual
// clocks are zeroed, and the mailbox round-robin cursors rewind so a reused
// World receives in exactly the same order as a fresh one — results stay
// bit-identical across pool reuse. The cyclic barrier and the collective
// slots need no resetting (each use overwrites them); the inproc transport's
// Start/Close are stateless.
//
// Reset fails on a World with a remote transport (its wire state is
// genuinely single-use) and on a World whose ranks have not all returned —
// a deadline-abandoned run may still have goroutines mutating mailboxes, in
// which case the World must be discarded, not recycled. The serving layer's
// World pool calls Reset between jobs and drops the World on any error.
func (w *World) Reset() (stale int, err error) {
	if !w.allLocal {
		return 0, fmt.Errorf("mpi: Reset on a world with a remote transport")
	}
	w.runMu.Lock()
	defer w.runMu.Unlock()
	if w.running {
		return 0, fmt.Errorf("mpi: Reset while ranks are still running")
	}
	for _, r := range w.local {
		stale += w.boxes[r].drainAll()
		w.stats[r].reset()
		w.finalVTime[r].Store(0)
	}
	// Drop references to the last run's allgather payloads.
	for i := range w.coll.bytes {
		w.coll.bytes[i] = nil
	}
	w.ran = false
	return stale, nil
}

// LocalRanks lists the ranks this World instance hosts — all of them for the
// default in-process transport, typically one for a remote backend.
func (w *World) LocalRanks() []int {
	out := make([]int, len(w.local))
	copy(out, w.local)
	return out
}

// RankStats returns the traffic counters of one rank. Safe to call from any
// goroutine at any time, including while Run is in flight — the counters are
// lock-free atomics, so live polling never races with the ranks.
func (w *World) RankStats(rank int) Stats {
	return w.stats[rank].snapshot()
}

// LiveSnapshot builds the serializable live view of this world's traffic —
// per-rank aggregates plus the per-tag-family breakdown for every local
// rank, and the registry snapshot when an observer is attached. Safe to call
// from any goroutine while Run is in flight (the counters are lock-free
// atomics); it is what the -http endpoint of the CLI tools serves and
// dmgm-trace -watch polls.
func (w *World) LiveSnapshot() *obs.LiveSnapshot {
	s := &obs.LiveSnapshot{
		CapturedUnixNanos: time.Now().UnixNano(),
		WorldSize:         w.size,
		LocalRanks:        w.LocalRanks(),
	}
	for _, r := range w.local {
		st := w.stats[r].snapshot()
		rt := obs.RankTraffic{
			Rank:      r,
			SentMsgs:  st.SentMsgs,
			SentBytes: st.SentBytes,
			RecvMsgs:  st.RecvMsgs,
			RecvBytes: st.RecvBytes,
		}
		for _, f := range TagFamilies() {
			fs := st.ByFamily[f]
			rt.Families = append(rt.Families, obs.FamilyTraffic{
				Family:    f.String(),
				SentMsgs:  fs.SentMsgs,
				SentBytes: fs.SentBytes,
				RecvMsgs:  fs.RecvMsgs,
				RecvBytes: fs.RecvBytes,
			})
		}
		s.Ranks = append(s.Ranks, rt)
	}
	if w.obs != nil {
		s.Metrics = w.obs.Registry().Snapshot()
	}
	return s
}

// TotalStats sums the counters over all ranks.
func (w *World) TotalStats() Stats {
	var t Stats
	for r := 0; r < w.size; r++ {
		t.Add(w.RankStats(r))
	}
	return t
}

// Comm is one rank's handle to the world. A Comm is used only by its own
// rank's goroutine and is not safe for concurrent use.
type Comm struct {
	world *World
	rank  int
	rng   uint64
	// stash holds messages drained while waiting for a specific tag inside a
	// collective; Recv and TryRecv serve from it first.
	stash []Message
	// vclock is this rank's virtual clock (see vtime.go).
	vclock float64
	// Observability hooks (all nil when the world has no observer; the nil
	// instruments make every instrumented call a single comparison).
	tr     *obs.Tracer
	vops   *obs.Counter // per-rank vertex-operation counter
	eops   *obs.Counter // per-rank edge-operation counter
	epochs *obs.Counter // per-rank barrier/collective epoch counter
}

// Tracer returns this rank's span tracer, or nil when observability is off.
// All tracer methods are nil-safe, so algorithms instrument unconditionally.
func (c *Comm) Tracer() *obs.Tracer { return c.tr }

// Metrics returns the world's metrics registry, or nil when observability is
// off. All registry and instrument methods are nil-safe.
func (c *Comm) Metrics() *obs.Registry {
	if c.world.obs == nil {
		return nil
	}
	return c.world.obs.Registry()
}

// Rank reports this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to rank to with the given tag. It never blocks. The
// data slice is owned by the receiver after the call; the sender must not
// modify it. Negative tags are reserved for the runtime's own traffic (the
// over-the-wire collectives) and are rejected here so that reserved and user
// messages can never collide.
func (c *Comm) Send(to, tag int, data []byte) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d sends to invalid rank %d", c.rank, to))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: rank %d sends tag %d; negative tags are reserved for the runtime", c.rank, tag))
	}
	c.world.stats[c.rank].countSent(FamilyOf(tag), int64(len(data)))
	c.send(transport.Msg{From: c.rank, To: to, Tag: tag, ArriveV: c.stampSend(len(data)), Payload: data})
}

// send ships a message through the transport. A transport error means the
// job is broken (a peer died mid-run), which no algorithm here can recover
// from, so it surfaces as a rank panic that Run captures.
func (c *Comm) send(m transport.Msg) {
	if err := c.world.tr.Send(m); err != nil {
		panic(fmt.Sprintf("mpi: rank %d send to %d: %v", c.rank, m.To, err))
	}
}

// Recv blocks until a user message (any source, any non-negative tag)
// arrives and returns it. Runtime-internal traffic (a peer racing ahead into
// the next collective) is stashed for the collective that expects it, never
// surfaced here.
func (c *Comm) Recv() Message {
	if m, ok := c.takeStashedUser(); ok {
		c.observeArrival(m)
		return m
	}
	for {
		m, _ := c.world.boxes[c.rank].get(true, c.nextPick())
		c.countRecv(m)
		if m.Tag < 0 {
			c.stash = append(c.stash, m)
			continue
		}
		c.observeArrival(m)
		return m
	}
}

// TryRecv returns a pending user message if one is available, without
// blocking.
func (c *Comm) TryRecv() (Message, bool) {
	if m, ok := c.takeStashedUser(); ok {
		c.observeArrival(m)
		return m, true
	}
	for {
		m, ok := c.world.boxes[c.rank].get(false, c.nextPick())
		if !ok {
			return Message{}, false
		}
		c.countRecv(m)
		if m.Tag < 0 {
			c.stash = append(c.stash, m)
			continue
		}
		c.observeArrival(m)
		return m, true
	}
}

// takeStashedUser pops the oldest stashed user (non-negative tag) message.
func (c *Comm) takeStashedUser() (Message, bool) {
	for i, m := range c.stash {
		if m.Tag >= 0 {
			c.stash = append(c.stash[:i], c.stash[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

func (c *Comm) countRecv(m Message) {
	rc := &c.world.stats[c.rank]
	if m.Tag < 0 {
		// Runtime-internal traffic is not part of the algorithm's cost:
		// metered in its own family, excluded from the aggregates.
		rc.countRecvRuntime(int64(len(m.Data)))
		return
	}
	rc.countRecv(FamilyOf(m.Tag), 1, int64(len(m.Data)))
}

// nextPick returns the cross-sender selection key for this receive: 0 for
// round-robin, or a fresh pseudo-random value in perturbation mode.
func (c *Comm) nextPick() uint64 {
	if c.world.perturb == 0 {
		return 0
	}
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng ^ uint64(c.rank)<<32
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Barrier blocks until every rank has entered it. In virtual-time mode the
// ranks' clocks synchronize to the maximum plus the σ barrier cost.
//
// Barrier is also the runtime's delivery fence: everything sent to this rank
// before the senders entered the barrier is in this rank's mailbox (or stash)
// once Barrier returns. In-process that follows from sends being synchronous
// hand-offs; over the wire it follows from per-pair FIFO — the remote barrier
// exchanges a message with every peer, and receiving a peer's barrier message
// means everything it sent earlier has already been delivered.
func (c *Comm) Barrier() {
	c.epochs.Add(1)
	if !c.world.allLocal {
		c.remoteBarrier()
		return
	}
	max := c.world.barrier.await(c.vclock)
	if vt := c.world.vt; vt != nil {
		c.vclock = max + vt.Sync
	}
}

// DrainTag removes and discards every currently pending message with the
// given tag (stashed or mailboxed), leaving other traffic untouched, and
// reports how many were dropped. Protocols whose termination is local (a
// rank may finish before stale peers' messages reach it — the matching
// algorithm's outer loop) call Barrier and then DrainTag so that a
// subsequent phase on the same world starts with a clean mailbox.
func (c *Comm) DrainTag(tag int) int {
	dropped := 0
	keep := c.stash[:0]
	for _, m := range c.stash {
		if m.Tag == tag {
			dropped++
		} else {
			keep = append(keep, m)
		}
	}
	c.stash = keep
	n, bytes := c.world.boxes[c.rank].drainTag(tag)
	dropped += n
	// Stashed messages were already counted when popped from the mailbox;
	// only the mailbox-drained ones are counted here, under the tag's family.
	c.world.stats[c.rank].countRecv(FamilyOf(tag), int64(n), bytes)
	return dropped
}

// mailbox is an unbounded per-receiver queue with per-sender sub-queues, so
// that per-pair FIFO survives randomized cross-sender draining.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]Message // one per sender
	pending int
	next    int // round-robin cursor
}

func newMailbox(senders int) *mailbox {
	mb := &mailbox{queues: make([][]Message, senders)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	mb.queues[m.From] = append(mb.queues[m.From], m)
	mb.pending++
	mb.mu.Unlock()
	mb.cond.Signal()
}

// get pops one message. pick == 0 selects round-robin across non-empty
// sender queues; otherwise pick seeds a random choice among them.
func (mb *mailbox) get(block bool, pick uint64) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.pending == 0 {
		if !block {
			return Message{}, false
		}
		mb.cond.Wait()
	}
	n := len(mb.queues)
	var chosen = -1
	if pick == 0 {
		for i := 0; i < n; i++ {
			s := (mb.next + i) % n
			if len(mb.queues[s]) > 0 {
				chosen = s
				mb.next = (s + 1) % n
				break
			}
		}
	} else {
		// Count non-empty queues, then index by pick.
		nonEmpty := 0
		for s := 0; s < n; s++ {
			if len(mb.queues[s]) > 0 {
				nonEmpty++
			}
		}
		k := int(pick % uint64(nonEmpty))
		for s := 0; s < n; s++ {
			if len(mb.queues[s]) > 0 {
				if k == 0 {
					chosen = s
					break
				}
				k--
			}
		}
	}
	q := mb.queues[chosen]
	m := q[0]
	mb.queues[chosen] = q[1:]
	mb.pending--
	return m, true
}

// drainAll empties the mailbox, returning how many messages were discarded,
// and rewinds the round-robin cursor so receive order after a Reset matches
// a fresh mailbox.
func (mb *mailbox) drainAll() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := mb.pending
	for s := range mb.queues {
		mb.queues[s] = nil
	}
	mb.pending = 0
	mb.next = 0
	return n
}

// drainTag removes all pending messages with the given tag, returning how
// many were removed and their total payload size.
func (mb *mailbox) drainTag(tag int) (n int, bytes int64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for s := range mb.queues {
		keep := mb.queues[s][:0]
		for _, m := range mb.queues[s] {
			if m.Tag == tag {
				n++
				bytes += int64(len(m.Data))
				mb.pending--
			} else {
				keep = append(keep, m)
			}
		}
		mb.queues[s] = keep
	}
	return n, bytes
}

// barrier is a reusable (cyclic) barrier that also reduces a float64
// payload to its maximum (the virtual-clock synchronization).
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	size     int
	count    int
	gen      uint64
	curMax   float64
	readyMax float64
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all ranks arrive and returns the maximum payload of
// this generation.
func (b *barrier) await(v float64) float64 {
	b.mu.Lock()
	gen := b.gen
	if v > b.curMax {
		b.curMax = v
	}
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.readyMax = b.curMax
		b.curMax = 0
		b.cond.Broadcast()
		out := b.readyMax
		b.mu.Unlock()
		return out
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	out := b.readyMax
	b.mu.Unlock()
	return out
}
