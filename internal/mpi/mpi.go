// Package mpi is the distributed-memory substrate of this repository: an
// in-process message-passing runtime with MPI-like semantics, standing in for
// the MPI/Blue Gene-P environment of the paper (the repro band notes "no MPI
// ecosystem" for Go). Each rank runs as a goroutine; ranks exchange
// asynchronous point-to-point byte messages and synchronize through a small
// set of collectives.
//
// Guarantees, chosen to match what the paper's algorithms assume of MPI:
//
//   - Reliable delivery: every sent message is received exactly once.
//   - Per-pair FIFO: messages from rank a to rank b arrive in send order.
//   - No global order: messages from different senders interleave
//     arbitrarily; a seeded perturbation mode randomizes the interleaving to
//     stress-test the asynchronous algorithms (the paper's Fig. 3.1
//     discussion — "if the two SUCCEEDED messages arrive in reverse order…" —
//     is exactly the behavior this mode exercises).
//   - Sends never block the sender (unbounded mailboxes), mirroring buffered
//     MPI_Isend as used with aggregated message bundles.
//
// The runtime also meters traffic: per-rank sent/received message and byte
// counters, which both the experiments and the α–β performance model consume.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Message is one point-to-point message.
type Message struct {
	From int
	Tag  int
	Data []byte
	// ArriveV is the virtual arrival time of the message (0 unless the
	// world runs WithVirtualTime).
	ArriveV float64
}

// World owns the mailboxes and collective state for a fixed set of ranks.
type World struct {
	size     int
	boxes    []*mailbox
	stats    []Stats
	statsMu  []sync.Mutex
	barrier  *barrier
	coll     *collectives
	perturb  uint64 // nonzero enables randomized cross-sender receive order
	deadline time.Duration
	vt       *VirtualTime
	// finalVTime records each rank's virtual clock when its Run body
	// returned (guarded by the corresponding statsMu entry).
	finalVTime []float64
}

// Option configures a World.
type Option func(*World)

// WithPerturbation makes receivers drain mailboxes in a seeded pseudo-random
// cross-sender order instead of round-robin. Per-pair FIFO is preserved.
func WithPerturbation(seed uint64) Option {
	return func(w *World) {
		if seed == 0 {
			seed = 1
		}
		w.perturb = seed
	}
}

// WithDeadline aborts Run if the ranks have not all finished within d,
// reporting which ranks were still alive — a deadlock watchdog for tests.
func WithDeadline(d time.Duration) Option {
	return func(w *World) { w.deadline = d }
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: non-positive world size %d", size)
	}
	w := &World{
		size:       size,
		boxes:      make([]*mailbox, size),
		stats:      make([]Stats, size),
		statsMu:    make([]sync.Mutex, size),
		barrier:    newBarrier(size),
		finalVTime: make([]float64, size),
	}
	w.coll = newCollectives(size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox(size)
	}
	for _, o := range opts {
		o(w)
	}
	return w, nil
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn once per rank, each on its own goroutine, and waits for all
// of them. It returns the first non-nil error; a panic in a rank is captured
// and returned as an error rather than crashing the process.
func Run(size int, fn func(c *Comm) error, opts ...Option) error {
	w, err := NewWorld(size, opts...)
	if err != nil {
		return err
	}
	return w.Run(fn)
}

// Run executes fn once per rank of w. A World must not be reused after Run.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	done := make([]bool, w.size)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					mu.Lock()
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					mu.Unlock()
				}
				mu.Lock()
				done[rank] = true
				mu.Unlock()
			}()
			c := &Comm{world: w, rank: rank, rng: w.perturb}
			if err := fn(c); err != nil {
				mu.Lock()
				errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
				mu.Unlock()
			}
			w.statsMu[rank].Lock()
			w.finalVTime[rank] = c.vclock
			w.statsMu[rank].Unlock()
		}(r)
	}
	if w.deadline > 0 {
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-time.After(w.deadline):
			mu.Lock()
			stuck := []int{}
			for r, d := range done {
				if !d {
					stuck = append(stuck, r)
				}
			}
			// A rank that already failed usually explains why the others
			// are wedged; surface its error alongside the deadline.
			var firstErr error
			for _, e := range errs {
				if e != nil {
					firstErr = e
					break
				}
			}
			mu.Unlock()
			if firstErr != nil {
				return fmt.Errorf("mpi: deadline exceeded; ranks still running: %v; first failure: %w", stuck, firstErr)
			}
			return fmt.Errorf("mpi: deadline exceeded; ranks still running: %v", stuck)
		}
	} else {
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RankStats returns the traffic counters of one rank after Run.
func (w *World) RankStats(rank int) Stats {
	w.statsMu[rank].Lock()
	defer w.statsMu[rank].Unlock()
	return w.stats[rank]
}

// TotalStats sums the counters over all ranks.
func (w *World) TotalStats() Stats {
	var t Stats
	for r := 0; r < w.size; r++ {
		t.Add(w.RankStats(r))
	}
	return t
}

// Comm is one rank's handle to the world. A Comm is used only by its own
// rank's goroutine and is not safe for concurrent use.
type Comm struct {
	world *World
	rank  int
	rng   uint64
	// stash holds messages drained while waiting for a specific tag inside a
	// collective; Recv and TryRecv serve from it first.
	stash []Message
	// vclock is this rank's virtual clock (see vtime.go).
	vclock float64
}

// Rank reports this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to rank to with the given tag. It never blocks. The
// data slice is owned by the receiver after the call; the sender must not
// modify it.
func (c *Comm) Send(to, tag int, data []byte) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d sends to invalid rank %d", c.rank, to))
	}
	mu := &c.world.statsMu[c.rank]
	mu.Lock()
	c.world.stats[c.rank].SentMsgs++
	c.world.stats[c.rank].SentBytes += int64(len(data))
	mu.Unlock()
	c.world.boxes[to].put(Message{From: c.rank, Tag: tag, Data: data, ArriveV: c.stampSend(len(data))})
}

// Recv blocks until a message (any source, any tag) arrives and returns it.
func (c *Comm) Recv() Message {
	if len(c.stash) > 0 {
		m := c.stash[0]
		c.stash = c.stash[1:]
		c.observeArrival(m)
		return m
	}
	m, _ := c.world.boxes[c.rank].get(true, c.nextPick())
	c.countRecv(m)
	c.observeArrival(m)
	return m
}

// TryRecv returns a pending message if one is available, without blocking.
func (c *Comm) TryRecv() (Message, bool) {
	if len(c.stash) > 0 {
		m := c.stash[0]
		c.stash = c.stash[1:]
		c.observeArrival(m)
		return m, true
	}
	m, ok := c.world.boxes[c.rank].get(false, c.nextPick())
	if ok {
		c.countRecv(m)
		c.observeArrival(m)
	}
	return m, ok
}

func (c *Comm) countRecv(m Message) {
	mu := &c.world.statsMu[c.rank]
	mu.Lock()
	c.world.stats[c.rank].RecvMsgs++
	c.world.stats[c.rank].RecvBytes += int64(len(m.Data))
	mu.Unlock()
}

// nextPick returns the cross-sender selection key for this receive: 0 for
// round-robin, or a fresh pseudo-random value in perturbation mode.
func (c *Comm) nextPick() uint64 {
	if c.world.perturb == 0 {
		return 0
	}
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng ^ uint64(c.rank)<<32
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Barrier blocks until every rank has entered it. In virtual-time mode the
// ranks' clocks synchronize to the maximum plus the σ barrier cost.
func (c *Comm) Barrier() {
	max := c.world.barrier.await(c.vclock)
	if vt := c.world.vt; vt != nil {
		c.vclock = max + vt.Sync
	}
}

// DrainTag removes and discards every currently pending message with the
// given tag (stashed or mailboxed), leaving other traffic untouched, and
// reports how many were dropped. Protocols whose termination is local (a
// rank may finish before stale peers' messages reach it — the matching
// algorithm's outer loop) call Barrier and then DrainTag so that a
// subsequent phase on the same world starts with a clean mailbox.
func (c *Comm) DrainTag(tag int) int {
	dropped := 0
	keep := c.stash[:0]
	for _, m := range c.stash {
		if m.Tag == tag {
			dropped++
		} else {
			keep = append(keep, m)
		}
	}
	c.stash = keep
	n, bytes := c.world.boxes[c.rank].drainTag(tag)
	dropped += n
	mu := &c.world.statsMu[c.rank]
	mu.Lock()
	c.world.stats[c.rank].RecvMsgs += int64(n)
	c.world.stats[c.rank].RecvBytes += bytes
	mu.Unlock()
	return dropped
}

// mailbox is an unbounded per-receiver queue with per-sender sub-queues, so
// that per-pair FIFO survives randomized cross-sender draining.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]Message // one per sender
	pending int
	next    int // round-robin cursor
}

func newMailbox(senders int) *mailbox {
	mb := &mailbox{queues: make([][]Message, senders)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	mb.queues[m.From] = append(mb.queues[m.From], m)
	mb.pending++
	mb.mu.Unlock()
	mb.cond.Signal()
}

// get pops one message. pick == 0 selects round-robin across non-empty
// sender queues; otherwise pick seeds a random choice among them.
func (mb *mailbox) get(block bool, pick uint64) (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.pending == 0 {
		if !block {
			return Message{}, false
		}
		mb.cond.Wait()
	}
	n := len(mb.queues)
	var chosen = -1
	if pick == 0 {
		for i := 0; i < n; i++ {
			s := (mb.next + i) % n
			if len(mb.queues[s]) > 0 {
				chosen = s
				mb.next = (s + 1) % n
				break
			}
		}
	} else {
		// Count non-empty queues, then index by pick.
		nonEmpty := 0
		for s := 0; s < n; s++ {
			if len(mb.queues[s]) > 0 {
				nonEmpty++
			}
		}
		k := int(pick % uint64(nonEmpty))
		for s := 0; s < n; s++ {
			if len(mb.queues[s]) > 0 {
				if k == 0 {
					chosen = s
					break
				}
				k--
			}
		}
	}
	q := mb.queues[chosen]
	m := q[0]
	mb.queues[chosen] = q[1:]
	mb.pending--
	return m, true
}

// drainTag removes all pending messages with the given tag, returning how
// many were removed and their total payload size.
func (mb *mailbox) drainTag(tag int) (n int, bytes int64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for s := range mb.queues {
		keep := mb.queues[s][:0]
		for _, m := range mb.queues[s] {
			if m.Tag == tag {
				n++
				bytes += int64(len(m.Data))
				mb.pending--
			} else {
				keep = append(keep, m)
			}
		}
		mb.queues[s] = keep
	}
	return n, bytes
}

// barrier is a reusable (cyclic) barrier that also reduces a float64
// payload to its maximum (the virtual-clock synchronization).
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	size     int
	count    int
	gen      uint64
	curMax   float64
	readyMax float64
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all ranks arrive and returns the maximum payload of
// this generation.
func (b *barrier) await(v float64) float64 {
	b.mu.Lock()
	gen := b.gen
	if v > b.curMax {
		b.curMax = v
	}
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.readyMax = b.curMax
		b.curMax = 0
		b.cond.Broadcast()
		out := b.readyMax
		b.mu.Unlock()
		return out
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	out := b.readyMax
	b.mu.Unlock()
	return out
}
