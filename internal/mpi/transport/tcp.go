package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// TCP is the socket backend: one persistent connection per rank pair carries
// length-prefixed binary frames (see frame.go). Per-pair FIFO follows from
// TCP's byte-stream ordering plus the single writer/reader per connection;
// sends never block the caller because each connection has an unbounded
// outbound queue drained by a writer goroutine.
//
// One TCP instance hosts exactly one rank. Rendezvous is either
//
//   - registry: rank 0 listens at a well-known address; every other rank
//     dials it, registers its own data-listener address, and receives the
//     full address table once everyone has registered; or
//   - static: the full address table is known up front (Peers), each rank
//     binding its own entry.
//
// After rendezvous the mesh is established deterministically: rank i dials
// rank j exactly when i < j, identifying itself with a hello frame; Start
// returns once every pair connection exists.
type TCP struct {
	rank int
	size int
	opt  TCPOptions

	ln   net.Listener
	sink Sink

	// Wire-level meters (nil = unmetered; obs instruments no-op on nil).
	framesSent, framesRecv *obs.Counter
	wireSent, wireRecv     *obs.Counter
	writeBatches           *obs.Counter
	batchFrames            *obs.Histogram

	mu       sync.Mutex
	err      error // first fatal transport error
	closed   bool
	started  bool
	peers    []*tcpPeer // indexed by rank; nil for self
	inbound  int        // accepted pair connections so far
	arrived  chan struct{}
	regAddrs map[int]string
	regConns []regConn
	regDone  chan struct{}
}

// TCPOptions configures a TCP transport endpoint.
type TCPOptions struct {
	// Rank and Size identify this endpoint within the job.
	Rank, Size int
	// Registry is the rank-0 rendezvous address ("host:port"). Rank 0 binds
	// it; other ranks dial it to exchange data-listener addresses.
	Registry string
	// Peers is the static per-rank address table (len == Size). When set it
	// overrides Registry and each rank binds its own entry.
	Peers []string
	// Bind is the data-listener address for non-zero ranks in registry mode
	// (default "127.0.0.1:0"). Ignored when Peers or Listener is set.
	Bind string
	// Listener is a pre-bound listener for this rank, used by in-process
	// clusters and tests to avoid port races. The transport takes ownership.
	Listener net.Listener
	// RendezvousTimeout bounds the whole bind/registry/connect phase
	// (default 30s).
	RendezvousTimeout time.Duration
	// ShutdownGrace bounds how long Close waits for peers to finish closing
	// before forcing connections shut (default 10s).
	ShutdownGrace time.Duration
}

type regConn struct {
	conn net.Conn
	rank int
}

// tcpPeer is one end of a pair connection.
type tcpPeer struct {
	rank int
	conn net.Conn
	r    *bufio.Reader // must be reused across handshake and data phases

	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte // encoded frames awaiting the writer
	closing bool
	broken  bool

	writerDone chan struct{}
	readerDone chan struct{}
}

func newTCPPeer(rank int, conn net.Conn, r *bufio.Reader) *tcpPeer {
	if r == nil {
		r = bufio.NewReaderSize(conn, 64<<10)
	}
	p := &tcpPeer{
		rank:       rank,
		conn:       conn,
		r:          r,
		writerDone: make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// NewTCP creates (but does not start) a TCP transport endpoint.
func NewTCP(opt TCPOptions) (*TCP, error) {
	if opt.Size <= 0 {
		return nil, fmt.Errorf("transport: non-positive size %d", opt.Size)
	}
	if opt.Rank < 0 || opt.Rank >= opt.Size {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", opt.Rank, opt.Size)
	}
	if len(opt.Peers) == 0 && opt.Registry == "" && opt.Size > 1 {
		return nil, fmt.Errorf("transport: need a registry address or a static peer table")
	}
	if len(opt.Peers) > 0 && len(opt.Peers) != opt.Size {
		return nil, fmt.Errorf("transport: %d peer addresses for %d ranks", len(opt.Peers), opt.Size)
	}
	if opt.Bind == "" {
		opt.Bind = "127.0.0.1:0"
	}
	if opt.RendezvousTimeout == 0 {
		opt.RendezvousTimeout = 30 * time.Second
	}
	if opt.ShutdownGrace == 0 {
		opt.ShutdownGrace = 10 * time.Second
	}
	return &TCP{
		rank:    opt.Rank,
		size:    opt.Size,
		opt:     opt,
		peers:   make([]*tcpPeer, opt.Size),
		arrived: make(chan struct{}),
		regDone: make(chan struct{}),
	}, nil
}

// Size implements Transport.
func (t *TCP) Size() int { return t.size }

// Local implements Transport: a TCP endpoint hosts exactly its own rank.
func (t *TCP) Local() []int { return []int{t.rank} }

// Register implements Transport.
func (t *TCP) Register(rank int, sink Sink) {
	if rank != t.rank {
		panic(fmt.Sprintf("transport: sink for rank %d registered on tcp endpoint of rank %d", rank, t.rank))
	}
	t.sink = sink
}

// SetMetrics implements MetricSetter: wire-level frame/byte counters, the
// number of writer wakeups (write batches), and a histogram of frames per
// batch — the socket-level analogue of the bundler's record aggregation.
func (t *TCP) SetMetrics(reg *obs.Registry) {
	t.framesSent = reg.Counter("transport.tcp.frames_sent")
	t.framesRecv = reg.Counter("transport.tcp.frames_recv")
	t.wireSent = reg.Counter("transport.tcp.wire_bytes_sent")
	t.wireRecv = reg.Counter("transport.tcp.wire_bytes_recv")
	t.writeBatches = reg.Counter("transport.tcp.write_batches")
	t.batchFrames = reg.Histogram("transport.tcp.batch_frames", obs.ExpBounds(1, 1024))
}

// Addr reports the data-listener address, available once Start has bound it.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Start implements Transport: bind, rendezvous, and connect the full mesh.
func (t *TCP) Start() error {
	if t.sink == nil {
		return fmt.Errorf("transport: tcp rank %d started without a sink", t.rank)
	}
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return fmt.Errorf("transport: tcp rank %d started twice", t.rank)
	}
	t.started = true
	t.mu.Unlock()
	deadline := time.Now().Add(t.opt.RendezvousTimeout)

	if err := t.bind(); err != nil {
		return err
	}
	if t.rank == 0 {
		close(t.arrived) // rank 0 accepts no data connections (0 dials all)
	}
	go t.acceptLoop()

	table, err := t.rendezvous(deadline)
	if err != nil {
		return fmt.Errorf("transport: rank %d rendezvous: %w", t.rank, err)
	}
	// Deterministic mesh: dial every higher rank, await every lower one.
	for j := t.rank + 1; j < t.size; j++ {
		conn, err := dialRetry(table[j], deadline)
		if err != nil {
			return fmt.Errorf("transport: rank %d dialing rank %d at %s: %w", t.rank, j, table[j], err)
		}
		if _, err := conn.Write(encodeHello(t.rank, j)); err != nil {
			conn.Close()
			return fmt.Errorf("transport: rank %d hello to rank %d: %w", t.rank, j, err)
		}
		if !t.installPeer(newTCPPeer(j, conn, nil)) {
			conn.Close()
			return t.firstErr()
		}
	}
	select {
	case <-t.arrived:
	case <-time.After(time.Until(deadline)):
		t.mu.Lock()
		missing := []int{}
		for j := 0; j < t.rank; j++ {
			if t.peers[j] == nil {
				missing = append(missing, j)
			}
		}
		t.mu.Unlock()
		return fmt.Errorf("transport: rank %d timed out waiting for connections from ranks %v", t.rank, missing)
	}
	if err := t.firstErr(); err != nil {
		return err
	}
	// The mesh is complete: spawn the I/O loops.
	t.mu.Lock()
	peers := append([]*tcpPeer(nil), t.peers...)
	t.mu.Unlock()
	for _, p := range peers {
		if p != nil {
			go t.writeLoop(p)
			go t.readLoop(p)
		}
	}
	return nil
}

// bind establishes this rank's data listener.
func (t *TCP) bind() error {
	if t.ln = t.opt.Listener; t.ln != nil {
		return nil
	}
	addr := t.opt.Bind
	if len(t.opt.Peers) > 0 {
		addr = t.opt.Peers[t.rank]
	} else if t.rank == 0 {
		addr = t.opt.Registry
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: rank %d binding %s: %w", t.rank, addr, err)
	}
	t.ln = ln
	return nil
}

// rendezvous produces the full per-rank address table.
func (t *TCP) rendezvous(deadline time.Time) ([]string, error) {
	if len(t.opt.Peers) > 0 {
		return t.opt.Peers, nil
	}
	if t.size == 1 {
		return []string{t.Addr()}, nil
	}
	if t.rank == 0 {
		// The accept loop collects register frames; wait for all of them.
		select {
		case <-t.regDone:
		case <-time.After(time.Until(deadline)):
			t.mu.Lock()
			have := len(t.regAddrs)
			t.mu.Unlock()
			return nil, fmt.Errorf("timed out waiting for registrations (have %d of %d)", have, t.size-1)
		}
		t.mu.Lock()
		table := make([]string, t.size)
		table[0] = t.ln.Addr().String()
		for rank, addr := range t.regAddrs {
			table[rank] = addr
		}
		conns := append([]regConn(nil), t.regConns...)
		t.mu.Unlock()
		frame := encodeTable(table)
		for _, rc := range conns {
			if _, err := rc.conn.Write(frame); err != nil {
				return nil, fmt.Errorf("sending table to rank %d: %w", rc.rank, err)
			}
			rc.conn.Close()
		}
		return table, nil
	}
	// Non-zero rank: dial the registry, announce our listener, read the table.
	conn, err := dialRetry(t.opt.Registry, deadline)
	if err != nil {
		return nil, fmt.Errorf("dialing registry %s: %w", t.opt.Registry, err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeRegister(t.rank, t.ln.Addr().String())); err != nil {
		return nil, fmt.Errorf("registering: %w", err)
	}
	conn.SetReadDeadline(deadline)
	kind, body, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return nil, fmt.Errorf("reading table: %w", err)
	}
	if kind != frameTable {
		return nil, fmt.Errorf("registry answered with frame kind %d", kind)
	}
	table, err := decodeTable(body)
	if err != nil {
		return nil, err
	}
	if len(table) != t.size {
		return nil, fmt.Errorf("registry table covers %d ranks, want %d", len(table), t.size)
	}
	return table, nil
}

// acceptLoop classifies inbound connections: hello frames establish pair
// connections (ranks below ours dial us), register frames feed the rank-0
// registry.
func (t *TCP) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handleInbound(conn)
	}
}

func (t *TCP) handleInbound(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	kind, body, err := readFrame(r)
	if err != nil {
		conn.Close()
		return
	}
	switch kind {
	case frameHello:
		from, to, herr := decodeHello(body)
		if herr != nil || to != t.rank || from < 0 || from >= t.rank {
			t.fail(fmt.Errorf("transport: rank %d got bad hello (from=%d to=%d err=%v)", t.rank, from, to, herr))
			conn.Close()
			return
		}
		// The same bufio reader carries over: data frames may already be
		// buffered behind the hello.
		if !t.installPeer(newTCPPeer(from, conn, r)) {
			conn.Close()
			return
		}
		t.mu.Lock()
		t.inbound++
		if t.inbound == t.rank { // ranks 0..rank-1 all connected
			close(t.arrived)
		}
		t.mu.Unlock()
	case frameRegister:
		rank, addr, rerr := decodeRegister(body)
		if rerr != nil || t.rank != 0 || rank <= 0 || rank >= t.size {
			t.fail(fmt.Errorf("transport: rank %d got bad registration (rank=%d err=%v)", t.rank, rank, rerr))
			conn.Close()
			return
		}
		t.mu.Lock()
		if t.regAddrs == nil {
			t.regAddrs = make(map[int]string)
		}
		if _, dup := t.regAddrs[rank]; dup {
			t.mu.Unlock()
			t.fail(fmt.Errorf("transport: rank %d registered twice", rank))
			conn.Close()
			return
		}
		t.regAddrs[rank] = addr
		t.regConns = append(t.regConns, regConn{conn: conn, rank: rank})
		done := len(t.regAddrs) == t.size-1
		t.mu.Unlock()
		if done {
			close(t.regDone)
		}
	default:
		conn.Close()
	}
}

// installPeer records the pair connection; false on duplicates or shutdown.
func (t *TCP) installPeer(p *tcpPeer) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.peers[p.rank] != nil {
		t.errLocked(fmt.Errorf("transport: duplicate connection for rank pair (%d,%d)", t.rank, p.rank))
		return false
	}
	t.peers[p.rank] = p
	return true
}

// Send implements Transport.
func (t *TCP) Send(m Msg) error {
	if m.To == t.rank { // self-send loops back without touching the wire
		t.sink(m)
		return nil
	}
	if err := t.firstErr(); err != nil {
		return err
	}
	t.mu.Lock()
	closed := t.closed
	p := t.peers[m.To]
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: send on closed tcp endpoint (rank %d)", t.rank)
	}
	if p == nil {
		return fmt.Errorf("transport: rank %d has no connection to rank %d (not started?)", t.rank, m.To)
	}
	frame := encodeData(m)
	t.framesSent.Inc()
	t.wireSent.Add(int64(len(frame)))
	p.mu.Lock()
	if p.closing || p.broken {
		p.mu.Unlock()
		return fmt.Errorf("transport: connection %d->%d is shut down", t.rank, m.To)
	}
	p.queue = append(p.queue, frame)
	p.mu.Unlock()
	p.cond.Signal()
	return nil
}

// writeLoop drains the peer's outbound queue onto the socket, preserving
// order; on shutdown it flushes everything queued and half-closes the
// connection so the peer's reader sees a clean EOF after the last byte.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer close(p.writerDone)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closing {
			p.cond.Wait()
		}
		batch := p.queue
		p.queue = nil
		done := p.closing && len(batch) == 0
		p.mu.Unlock()
		if len(batch) > 0 {
			t.writeBatches.Inc()
			t.batchFrames.Observe(int64(len(batch)))
			bufs := net.Buffers(batch)
			if _, err := bufs.WriteTo(p.conn); err != nil {
				t.fail(fmt.Errorf("transport: write %d->%d: %w", t.rank, p.rank, err))
				p.mu.Lock()
				p.broken = true
				p.queue = nil
				p.mu.Unlock()
				return
			}
			continue // re-check the queue before considering shutdown
		}
		if done {
			if tc, ok := p.conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// readLoop decodes inbound frames and hands them to the local sink in wire
// order, which is what gives the per-pair FIFO guarantee.
func (t *TCP) readLoop(p *tcpPeer) {
	defer close(p.readerDone)
	for {
		kind, body, err := readFrame(p.r)
		if err != nil {
			if !isEOF(err) && !t.isClosed() {
				t.fail(fmt.Errorf("transport: read %d<-%d: %w", t.rank, p.rank, err))
			}
			return
		}
		if kind != frameData {
			t.fail(fmt.Errorf("transport: unexpected frame kind %d on data connection %d<-%d", kind, t.rank, p.rank))
			return
		}
		t.framesRecv.Inc()
		t.wireRecv.Add(int64(4 + 1 + len(body))) // length prefix + kind + body

		m, err := decodeData(p.rank, body)
		if err != nil {
			t.fail(err)
			return
		}
		if m.To != t.rank {
			t.fail(fmt.Errorf("transport: rank %d received message addressed to rank %d", t.rank, m.To))
			return
		}
		t.sink(m)
	}
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
}

// Close implements Transport: flush every outbound queue, half-close the
// connections, wait (bounded) for peers to finish, then tear down.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := append([]*tcpPeer(nil), t.peers...)
	t.mu.Unlock()

	for _, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.closing = true
		p.mu.Unlock()
		p.cond.Signal()
	}
	// One shared deadline for the whole shutdown; a fresh timer per wait
	// (time.After is one-shot, so a single channel cannot serve N selects).
	deadline := time.Now().Add(t.opt.ShutdownGrace)
	for _, p := range peers {
		if p == nil {
			continue
		}
		select {
		case <-p.writerDone:
		case <-time.After(time.Until(deadline)):
			p.conn.Close()
		}
	}
	// Readers end when the peer half-closes its side; bound the wait so a
	// crashed peer cannot wedge shutdown, then release the sockets.
	for _, p := range peers {
		if p == nil {
			continue
		}
		select {
		case <-p.readerDone:
		case <-time.After(time.Until(deadline)):
		}
		p.conn.Close()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	return t.firstErr()
}

func (t *TCP) fail(err error) {
	t.mu.Lock()
	t.errLocked(err)
	t.mu.Unlock()
}

func (t *TCP) errLocked(err error) {
	if t.err == nil {
		t.err = err
	}
}

func (t *TCP) firstErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// dialRetry dials with exponential backoff until the deadline, tolerating
// peers that have not bound their listeners yet.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	for {
		left := time.Until(deadline)
		if left <= 0 {
			return nil, fmt.Errorf("deadline exceeded")
		}
		conn, err := net.DialTimeout("tcp", addr, left)
		if err == nil {
			return conn, nil
		}
		if time.Until(deadline) < backoff {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// NewLocalTCPCluster builds a fully meshed set of n TCP endpoints on
// localhost, one per rank, with pre-bound listeners (no port races). It is
// the in-process harness used by tests and demos to exercise the real socket
// path; multi-process jobs use NewTCP directly.
func NewLocalTCPCluster(n int) ([]*TCP, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	eps := make([]*TCP, n)
	for i := 0; i < n; i++ {
		// A short grace keeps lone Closes snappy: an in-process cluster has no
		// network partitions to be patient about.
		ep, err := NewTCP(TCPOptions{Rank: i, Size: n, Peers: addrs, Listener: listeners[i], ShutdownGrace: 2 * time.Second})
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, err
		}
		eps[i] = ep
	}
	return eps, nil
}

// StartCluster starts every endpoint concurrently (the mesh handshake needs
// all accept loops up) and returns the first error.
func StartCluster(eps []*TCP) error {
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep *TCP) {
			defer wg.Done()
			errs[i] = ep.Start()
		}(i, ep)
	}
	wg.Wait()
	ranks := []int{}
	for i, err := range errs {
		if err != nil {
			ranks = append(ranks, i)
		}
	}
	if len(ranks) > 0 {
		sort.Ints(ranks)
		return fmt.Errorf("transport: cluster start failed on ranks %v: %w", ranks, errs[ranks[0]])
	}
	return nil
}
