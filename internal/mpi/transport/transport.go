// Package transport abstracts message delivery for the mpi runtime behind a
// Transport interface, so the same algorithms and the same Comm API run over
// two very different substrates:
//
//   - Inproc: the original shared-memory path — every rank lives in this
//     process and a send is a synchronous hand-off into the receiver's
//     mailbox. Zero wire overhead; the default.
//   - TCP: every rank (typically) lives in its own process and messages
//     travel as length-prefixed binary frames over one persistent TCP
//     connection per rank pair. Per-pair FIFO is inherited from connection
//     ordering; rendezvous happens either through a rank-0 registry or a
//     static address list.
//
// A Transport moves transport.Msg values; it knows nothing about mailboxes,
// tags semantics, collectives, or statistics — those stay in package mpi.
// The mpi.World registers one Sink per local rank; the transport invokes the
// sink once per inbound message, in per-sender order. Delivery guarantees
// every backend must provide:
//
//   - Reliable: every accepted Send is delivered exactly once.
//   - Per-pair FIFO: messages from rank a to rank b reach b's sink in send
//     order.
//   - Non-blocking sends: Send may buffer but must not wait for the
//     receiver (mirrors buffered MPI_Isend).
package transport

import "repro/internal/obs"

// Msg is one point-to-point message as the transport sees it.
type Msg struct {
	From, To int
	Tag      int
	// ArriveV is the virtual arrival time stamped by the sender (0 unless
	// the world runs with virtual time); it travels with the payload.
	ArriveV float64
	Payload []byte
}

// Sink consumes inbound messages for one local rank. The transport calls it
// sequentially per sender; the receiver owns the payload afterwards.
type Sink func(m Msg)

// Transport delivers messages between the ranks of one fixed-size job.
type Transport interface {
	// Size reports the number of ranks in the job.
	Size() int
	// Local lists the ranks hosted by this transport instance (ascending).
	// Inproc hosts all of them; a TCP endpoint typically hosts one.
	Local() []int
	// Register installs the delivery callback for a local rank. It must be
	// called for every local rank before Start.
	Register(rank int, sink Sink)
	// Start brings the transport up: for remote backends this is the
	// rendezvous/handshake phase (bind, exchange addresses, connect every
	// rank pair) and it blocks until the full mesh is established.
	Start() error
	// Send ships one message. m.From must be a local rank. It must not
	// block on the receiver; a non-nil error means the transport is broken
	// (e.g. a peer connection died), not that the receiver is slow.
	Send(m Msg) error
	// Close flushes buffered sends and tears the transport down. After
	// Close no further Sends are accepted; inbound messages already on the
	// wire may still be delivered while peers finish closing.
	Close() error
}

// MetricSetter is implemented by backends that meter their own delivery
// (frames, wire bytes, write batches) into an observability registry. The
// mpi runtime wires it when a world runs with an observer; backends must
// treat an unset registry as free (nil instruments are no-ops).
type MetricSetter interface {
	SetMetrics(*obs.Registry)
}
