package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	m := Msg{From: 3, To: 7, Tag: -42, ArriveV: 1.5, Payload: []byte("hello bundle")}
	frame := encodeData(m)
	r := bytes.NewReader(frame)
	kind, body, err := readFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameData {
		t.Fatalf("kind = %d", kind)
	}
	got, err := decodeData(3, body)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || got.To != 7 || got.Tag != -42 || got.ArriveV != 1.5 || string(got.Payload) != "hello bundle" {
		t.Fatalf("round trip = %+v", got)
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	frame := encodeData(Msg{From: 0, To: 1, Tag: 5})
	kind, body, err := readFrame(bytes.NewReader(frame))
	if err != nil || kind != frameData {
		t.Fatalf("kind %d err %v", kind, err)
	}
	got, err := decodeData(0, body)
	if err != nil || len(got.Payload) != 0 || got.Tag != 5 {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestRegistryTableRoundTrip(t *testing.T) {
	rank, addr, err := decodeRegister(encodeRegister(9, "10.0.0.1:5555")[5:])
	if err != nil || rank != 9 || addr != "10.0.0.1:5555" {
		t.Fatalf("register round trip: %d %q %v", rank, addr, err)
	}
	addrs := []string{"a:1", "b:2", "c:3"}
	kind, body, err := readFrame(bytes.NewReader(encodeTable(addrs)))
	if err != nil || kind != frameTable {
		t.Fatalf("table frame: %d %v", kind, err)
	}
	got, err := decodeTable(body)
	if err != nil || len(got) != 3 || got[0] != "a:1" || got[2] != "c:3" {
		t.Fatalf("table round trip: %v %v", got, err)
	}
}

func TestInprocDelivers(t *testing.T) {
	tr := NewInproc(2)
	var got []Msg
	tr.Register(0, func(m Msg) {})
	tr.Register(1, func(m Msg) { got = append(got, m) })
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	tr.Send(Msg{From: 0, To: 1, Tag: 4, Payload: []byte{1}})
	if len(got) != 1 || got[0].Tag != 4 {
		t.Fatalf("got %v", got)
	}
}

// collectCluster builds a started local cluster whose sinks append into
// per-rank slices.
func collectCluster(t *testing.T, n int) ([]*TCP, []*[]Msg, []*sync.Mutex) {
	t.Helper()
	eps, err := NewLocalTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	inboxes := make([]*[]Msg, n)
	locks := make([]*sync.Mutex, n)
	for i, ep := range eps {
		inbox := &[]Msg{}
		mu := &sync.Mutex{}
		inboxes[i], locks[i] = inbox, mu
		ep.Register(i, func(m Msg) {
			mu.Lock()
			*inbox = append(*inbox, m)
			mu.Unlock()
		})
	}
	if err := StartCluster(eps); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeAll(eps) })
	return eps, inboxes, locks
}

// closeAll closes endpoints concurrently, as a real job would: every rank's
// Close flushes and half-closes, so everyone's readers see EOF promptly.
func closeAll(eps []*TCP) {
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep *TCP) { defer wg.Done(); ep.Close() }(ep)
	}
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPMeshExchange(t *testing.T) {
	const n = 4
	eps, inboxes, locks := collectCluster(t, n)
	for i, ep := range eps {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			payload := []byte(fmt.Sprintf("%d->%d", i, j))
			if err := ep.Send(Msg{From: i, To: j, Tag: i*10 + j, Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := 0; j < n; j++ {
		j := j
		waitFor(t, func() bool {
			locks[j].Lock()
			defer locks[j].Unlock()
			return len(*inboxes[j]) == n-1
		})
		locks[j].Lock()
		seen := map[int]bool{}
		for _, m := range *inboxes[j] {
			if m.To != j {
				t.Fatalf("rank %d got message for %d", j, m.To)
			}
			if want := fmt.Sprintf("%d->%d", m.From, j); string(m.Payload) != want {
				t.Fatalf("payload %q, want %q", m.Payload, want)
			}
			seen[m.From] = true
		}
		locks[j].Unlock()
		if len(seen) != n-1 {
			t.Fatalf("rank %d heard from %d senders", j, len(seen))
		}
	}
}

func TestTCPPerPairOrder(t *testing.T) {
	const n = 3
	const per = 300
	eps, inboxes, locks := collectCluster(t, n)
	// Ranks 0 and 1 each blast a numbered sequence at rank 2.
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := eps[s].Send(Msg{From: s, To: 2, Tag: k}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	waitFor(t, func() bool {
		locks[2].Lock()
		defer locks[2].Unlock()
		return len(*inboxes[2]) == 2*per
	})
	next := map[int]int{}
	locks[2].Lock()
	defer locks[2].Unlock()
	for _, m := range *inboxes[2] {
		if m.Tag != next[m.From] {
			t.Fatalf("from %d: got seq %d, want %d", m.From, m.Tag, next[m.From])
		}
		next[m.From]++
	}
}

func TestTCPRegistryRendezvous(t *testing.T) {
	const n = 4
	// Reserve a registry port the honest way a launcher would.
	probe, err := NewLocalTCPCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	registry := probe[0].opt.Listener.Addr().String()
	probe[0].opt.Listener.Close()

	eps := make([]*TCP, n)
	for i := 0; i < n; i++ {
		ep, err := NewTCP(TCPOptions{Rank: i, Size: n, Registry: registry, RendezvousTimeout: 15 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	inboxes := make([]chan Msg, n)
	for i, ep := range eps {
		inboxes[i] = make(chan Msg, n)
		i := i
		ep.Register(i, func(m Msg) { inboxes[i] <- m })
	}
	if err := StartCluster(eps); err != nil {
		t.Fatal(err)
	}
	defer closeAll(eps)
	// Ring exchange proves the table was propagated correctly.
	for i, ep := range eps {
		if err := ep.Send(Msg{From: i, To: (i + 1) % n, Tag: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-inboxes[i]:
			if m.From != (i+n-1)%n {
				t.Fatalf("rank %d heard from %d", i, m.From)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("rank %d never received", i)
		}
	}
}

func TestTCPCloseFlushes(t *testing.T) {
	eps, inboxes, locks := collectCluster(t, 2)
	const count = 2000
	for k := 0; k < count; k++ {
		if err := eps[0].Send(Msg{From: 0, To: 1, Tag: k, Payload: make([]byte, 512)}); err != nil {
			t.Fatal(err)
		}
	}
	// Closing immediately must still deliver everything queued.
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		locks[1].Lock()
		defer locks[1].Unlock()
		return len(*inboxes[1]) == count
	})
}
