package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format. Every frame is
//
//	uint32  length of the rest of the frame (big endian)
//	byte    kind
//	...     kind-specific body
//
// Kinds:
//
//	hello    — first frame on a freshly dialed data connection:
//	           from int32 | to int32. Identifies the rank pair.
//	register — first frame on a registry connection (rank-0 rendezvous):
//	           rank int32 | addr string.
//	table    — registry reply: count int32 | count × (addr string).
//	data     — one runtime message:
//	           to int32 | tag int64 | arriveV float64 bits | payload.
//
// Strings are uint16 length + bytes. Integers are big endian. The data
// frame's sender is implied by the connection (established by hello), so it
// does not travel; `to` does, as a cheap integrity check against crossed
// connections.
const (
	frameHello byte = iota + 1
	frameRegister
	frameTable
	frameData
)

// maxFrame bounds a frame body so a corrupted length prefix cannot force a
// giant allocation. 1 GiB is far above any bundle the algorithms ship.
const maxFrame = 1 << 30

// dataHeaderLen is the fixed part of a data frame body: to(4) + tag(8) +
// arriveV(8).
const dataHeaderLen = 4 + 8 + 8

// appendFrame appends a complete frame (length prefix, kind, body) to dst.
func appendFrame(dst []byte, kind byte, body ...[]byte) []byte {
	n := 1
	for _, b := range body {
		n += len(b)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, kind)
	for _, b := range body {
		dst = append(dst, b...)
	}
	return dst
}

// encodeData renders a data frame for m (sender implied by the connection).
func encodeData(m Msg) []byte {
	buf := make([]byte, 0, 4+1+dataHeaderLen+len(m.Payload))
	var hdr [dataHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(m.To))
	binary.BigEndian.PutUint64(hdr[4:12], uint64(m.Tag))
	binary.BigEndian.PutUint64(hdr[12:20], math.Float64bits(m.ArriveV))
	return appendFrame(buf, frameData, hdr[:], m.Payload)
}

// decodeData parses a data frame body received from rank `from`.
func decodeData(from int, body []byte) (Msg, error) {
	if len(body) < dataHeaderLen {
		return Msg{}, fmt.Errorf("transport: short data frame (%d bytes)", len(body))
	}
	m := Msg{
		From:    from,
		To:      int(int32(binary.BigEndian.Uint32(body[0:4]))),
		Tag:     int(int64(binary.BigEndian.Uint64(body[4:12]))),
		ArriveV: math.Float64frombits(binary.BigEndian.Uint64(body[12:20])),
	}
	if len(body) > dataHeaderLen {
		m.Payload = body[dataHeaderLen:]
	}
	return m, nil
}

// encodeHello renders the pair-identification frame.
func encodeHello(from, to int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(from))
	binary.BigEndian.PutUint32(b[4:8], uint32(to))
	return appendFrame(nil, frameHello, b[:])
}

func decodeHello(body []byte) (from, to int, err error) {
	if len(body) != 8 {
		return 0, 0, fmt.Errorf("transport: malformed hello (%d bytes)", len(body))
	}
	return int(int32(binary.BigEndian.Uint32(body[0:4]))),
		int(int32(binary.BigEndian.Uint32(body[4:8]))), nil
}

// encodeRegister renders a registry registration: this rank listens at addr.
func encodeRegister(rank int, addr string) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(rank))
	return appendFrame(nil, frameRegister, b[:], appendString(nil, addr))
}

func decodeRegister(body []byte) (rank int, addr string, err error) {
	if len(body) < 4 {
		return 0, "", fmt.Errorf("transport: malformed register (%d bytes)", len(body))
	}
	rank = int(int32(binary.BigEndian.Uint32(body[0:4])))
	addr, rest, err := readString(body[4:])
	if err != nil || len(rest) != 0 {
		return 0, "", fmt.Errorf("transport: malformed register body")
	}
	return rank, addr, nil
}

// encodeTable renders the registry's address-table broadcast.
func encodeTable(addrs []string) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(addrs)))
	body := b[:]
	for _, a := range addrs {
		body = appendString(body, a)
	}
	return appendFrame(nil, frameTable, body)
}

func decodeTable(body []byte) ([]string, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("transport: malformed table (%d bytes)", len(body))
	}
	n := int(int32(binary.BigEndian.Uint32(body[0:4])))
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("transport: implausible table size %d", n)
	}
	rest := body[4:]
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		var err error
		addrs[i], rest, err = readString(rest)
		if err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: trailing bytes in table")
	}
	return addrs, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("transport: truncated string")
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("transport: truncated string body")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// readFrame reads one complete frame from r.
func readFrame(r io.Reader) (kind byte, body []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err // io.EOF here means a clean peer shutdown
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: implausible frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	return buf[0], buf[1:], nil
}
