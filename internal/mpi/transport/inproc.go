package transport

import (
	"fmt"

	"repro/internal/obs"
)

// Inproc is the shared-memory backend: all ranks live in this process and a
// send is a synchronous call into the receiver's sink (which, in the mpi
// runtime, is an unbounded mailbox enqueue). This is the extracted form of
// the original in-process delivery path and remains the zero-overhead
// default; it exists as a Transport so that the runtime above it is
// backend-agnostic.
type Inproc struct {
	size  int
	sinks []Sink

	msgs  *obs.Counter // delivered messages (nil = unmetered)
	bytes *obs.Counter // delivered payload bytes
}

// NewInproc creates the shared-memory transport for size ranks.
func NewInproc(size int) *Inproc {
	return &Inproc{size: size, sinks: make([]Sink, size)}
}

// Size implements Transport.
func (t *Inproc) Size() int { return t.size }

// Local implements Transport: every rank is local.
func (t *Inproc) Local() []int {
	all := make([]int, t.size)
	for i := range all {
		all[i] = i
	}
	return all
}

// Register implements Transport.
func (t *Inproc) Register(rank int, sink Sink) { t.sinks[rank] = sink }

// SetMetrics implements MetricSetter.
func (t *Inproc) SetMetrics(reg *obs.Registry) {
	t.msgs = reg.Counter("transport.inproc.msgs")
	t.bytes = reg.Counter("transport.inproc.bytes")
}

// Start implements Transport; nothing to bring up.
func (t *Inproc) Start() error {
	for r, s := range t.sinks {
		if s == nil {
			return fmt.Errorf("transport: inproc rank %d has no sink", r)
		}
	}
	return nil
}

// Send implements Transport: a synchronous hand-off, so anything sent before
// a synchronization point is already in the receiver's mailbox after it.
func (t *Inproc) Send(m Msg) error {
	t.msgs.Inc()
	t.bytes.Add(int64(len(m.Payload)))
	t.sinks[m.To](m)
	return nil
}

// Close implements Transport; nothing to tear down.
func (t *Inproc) Close() error { return nil }
