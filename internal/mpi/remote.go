package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/mpi/transport"
)

// Over-the-wire collectives. When a World does not host every rank (a remote
// transport backend), the shared-memory barrier and reduction slots cannot be
// used; the same operations are built here from point-to-point messages on
// reserved negative tags. Reserved traffic is invisible to the Stats counters
// on both ends (see Send/countRecv), so an algorithm's message counts are
// identical across backends — the in-process collectives never touched the
// counters either.
//
// Every collective is a symmetric all-to-all exchange: each rank sends its
// contribution to every peer, then collects exactly one reserved-tag message
// per peer. The local fold runs in rank order on every rank, so reduction
// results — including floating-point ones — are bitwise identical everywhere
// and match the shared-slot implementations.
const (
	tagBarrier = -1 // payload: the sender's virtual clock
	tagReduceI = -2 // payload: one int64 contribution
	tagReduceF = -3 // payload: one float64 contribution
	tagGather  = -4 // payload: the sender's Allgather bytes
)

// sendRaw ships a runtime-internal message: excluded from the aggregate
// stats (the modeled machine's collectives are charged via Sync, not α–β)
// but metered in the runtime tag family so every wire byte stays attributed,
// and never virtual-time stamped.
func (c *Comm) sendRaw(to, tag int, data []byte) {
	c.world.stats[c.rank].countSentRuntime(int64(len(data)))
	c.send(transport.Msg{From: c.rank, To: to, Tag: tag, Payload: data})
}

// exchange performs one all-to-all round on a reserved tag and returns every
// rank's payload indexed by rank (this rank's own entry is its input).
//
// Collection is per-peer: recvFromTagged pops only the named sender's queue,
// so overlapping rounds cannot steal each other's messages — per-pair FIFO
// guarantees the oldest matching message is taken first, and anything else
// popped on the way lands in the stash for later receives.
func (c *Comm) exchange(tag int, payload []byte) [][]byte {
	for to := 0; to < c.world.size; to++ {
		if to != c.rank {
			c.sendRaw(to, tag, payload)
		}
	}
	out := make([][]byte, c.world.size)
	out[c.rank] = payload
	for from := 0; from < c.world.size; from++ {
		if from != c.rank {
			out[from] = c.recvFromTagged(from, tag).Data
		}
	}
	return out
}

// recvFromTagged blocks for the oldest message from one specific sender with
// the given tag. The stash is scanned front-to-back (oldest first); further
// messages are popped from that sender's mailbox queue only, preserving
// per-pair FIFO, with non-matching ones stashed.
func (c *Comm) recvFromTagged(from, tag int) Message {
	for i, m := range c.stash {
		if m.From == from && m.Tag == tag {
			c.stash = append(c.stash[:i], c.stash[i+1:]...)
			return m
		}
	}
	for {
		m := c.world.boxes[c.rank].getFrom(from)
		c.countRecv(m)
		if m.Tag == tag {
			return m
		}
		c.observeArrival(m)
		c.stash = append(c.stash, m)
	}
}

// getFrom blocks until a message from the given sender is pending and pops
// the oldest one. Only the owning rank's goroutine receives, so the single
// condition variable shared with get is safe.
func (mb *mailbox) getFrom(from int) Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queues[from]) == 0 {
		mb.cond.Wait()
	}
	q := mb.queues[from]
	m := q[0]
	mb.queues[from] = q[1:]
	mb.pending--
	return m
}

// remoteBarrier implements Barrier over point-to-point messages: exchange
// virtual clocks with every peer and max-reduce. The fence property (see
// Barrier) follows from collecting one barrier message per peer over FIFO
// connections.
func (c *Comm) remoteBarrier() {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(c.vclock))
	clocks := c.exchange(tagBarrier, b[:])
	if vt := c.world.vt; vt != nil {
		max := c.vclock
		for _, p := range clocks {
			if v := math.Float64frombits(binary.BigEndian.Uint64(p)); v > max {
				max = v
			}
		}
		c.vclock = max + vt.Sync
	}
}

// remoteAllreduceInt64 implements AllreduceInt64 over the wire.
func (c *Comm) remoteAllreduceInt64(x int64, op ReduceOp) int64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(x))
	parts := c.exchange(tagReduceI, b[:])
	xs := make([]int64, len(parts))
	for r, p := range parts {
		xs[r] = int64(binary.BigEndian.Uint64(p))
	}
	return reduceInt64(xs, op)
}

// remoteAllreduceFloat64 implements AllreduceFloat64 over the wire.
func (c *Comm) remoteAllreduceFloat64(x float64, op ReduceOp) float64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
	parts := c.exchange(tagReduceF, b[:])
	xs := make([]float64, len(parts))
	for r, p := range parts {
		xs[r] = math.Float64frombits(binary.BigEndian.Uint64(p))
	}
	return reduceFloat64(xs, op)
}

// remoteAllgather implements Allgather over the wire.
func (c *Comm) remoteAllgather(data []byte) [][]byte {
	return c.exchange(tagGather, data)
}
