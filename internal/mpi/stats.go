package mpi

import (
	"fmt"
	"sync/atomic"
)

// FamilyStats counts one tag family's share of a rank's traffic.
type FamilyStats struct {
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
	RecvBytes int64
}

// Add accumulates o into s.
func (s *FamilyStats) Add(o FamilyStats) {
	s.SentMsgs += o.SentMsgs
	s.SentBytes += o.SentBytes
	s.RecvMsgs += o.RecvMsgs
	s.RecvBytes += o.RecvBytes
}

// Sub returns s - o, for computing per-phase deltas between snapshots.
func (s FamilyStats) Sub(o FamilyStats) FamilyStats {
	return FamilyStats{
		SentMsgs:  s.SentMsgs - o.SentMsgs,
		SentBytes: s.SentBytes - o.SentBytes,
		RecvMsgs:  s.RecvMsgs - o.RecvMsgs,
		RecvBytes: s.RecvBytes - o.RecvBytes,
	}
}

// Stats counts a rank's traffic. The experiment harness snapshots these per
// phase; the α–β performance model consumes (SentMsgs, SentBytes) to predict
// Blue Gene/P-scale times.
//
// The aggregate fields cover user traffic only (the algorithm's cost); the
// ByFamily breakdown attributes the same counts to protocol phases and
// additionally meters the runtime's reserved-tag collective traffic, which
// the aggregates exclude by design. The user families therefore reconcile
// exactly: UserFamilyTotals() equals the aggregate fields on any backend.
type Stats struct {
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
	RecvBytes int64
	// ByFamily splits the traffic by message-tag family (see FamilyOf).
	ByFamily [NumTagFamilies]FamilyStats
}

// UserFamilyTotals sums the non-runtime families — the per-family view of
// the aggregate counters. It equals {SentMsgs, SentBytes, RecvMsgs,
// RecvBytes} exactly; the conformance suite asserts this on every backend.
func (s Stats) UserFamilyTotals() FamilyStats {
	var t FamilyStats
	for f := TagFamily(0); f < NumTagFamilies; f++ {
		if f == FamilyRuntime {
			continue
		}
		t.Add(s.ByFamily[f])
	}
	return t
}

// famCounters is the live per-family form of FamilyStats.
type famCounters struct {
	sentMsgs  atomic.Int64
	sentBytes atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
}

// rankCounters is the live form of Stats: lock-free atomic cells, written by
// the owning rank's goroutine on every send/receive and readable from any
// goroutine at any time — live metrics polling (RankStats/TotalStats while
// Run is in flight) never races and never blocks the hot path.
type rankCounters struct {
	sentMsgs  atomic.Int64
	sentBytes atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
	fam       [NumTagFamilies]famCounters
}

// countSent records one outbound user message in the aggregate and family
// counters.
func (rc *rankCounters) countSent(f TagFamily, bytes int64) {
	rc.sentMsgs.Add(1)
	rc.sentBytes.Add(bytes)
	rc.fam[f].sentMsgs.Add(1)
	rc.fam[f].sentBytes.Add(bytes)
}

// countSentRuntime records one reserved-tag outbound message: family only,
// never the aggregates.
func (rc *rankCounters) countSentRuntime(bytes int64) {
	rc.fam[FamilyRuntime].sentMsgs.Add(1)
	rc.fam[FamilyRuntime].sentBytes.Add(bytes)
}

// countRecv records inbound messages in the aggregate and family counters.
func (rc *rankCounters) countRecv(f TagFamily, msgs, bytes int64) {
	rc.recvMsgs.Add(msgs)
	rc.recvBytes.Add(bytes)
	rc.fam[f].recvMsgs.Add(msgs)
	rc.fam[f].recvBytes.Add(bytes)
}

// countRecvRuntime records one reserved-tag inbound message: family only,
// never the aggregates.
func (rc *rankCounters) countRecvRuntime(bytes int64) {
	rc.fam[FamilyRuntime].recvMsgs.Add(1)
	rc.fam[FamilyRuntime].recvBytes.Add(bytes)
}

// reset zeroes every counter, aggregate and per-family — the per-job stats
// isolation World.Reset gives pooled worlds. Only called between runs, when
// no rank goroutine is writing.
func (rc *rankCounters) reset() {
	rc.sentMsgs.Store(0)
	rc.sentBytes.Store(0)
	rc.recvMsgs.Store(0)
	rc.recvBytes.Store(0)
	for f := range rc.fam {
		rc.fam[f].sentMsgs.Store(0)
		rc.fam[f].sentBytes.Store(0)
		rc.fam[f].recvMsgs.Store(0)
		rc.fam[f].recvBytes.Store(0)
	}
}

// snapshot reads the counters. The loads are individually atomic, not a
// consistent cut — momentary skew between fields is inherent to live
// polling and irrelevant to end-of-run reads.
func (rc *rankCounters) snapshot() Stats {
	s := Stats{
		SentMsgs:  rc.sentMsgs.Load(),
		SentBytes: rc.sentBytes.Load(),
		RecvMsgs:  rc.recvMsgs.Load(),
		RecvBytes: rc.recvBytes.Load(),
	}
	for f := range rc.fam {
		s.ByFamily[f] = FamilyStats{
			SentMsgs:  rc.fam[f].sentMsgs.Load(),
			SentBytes: rc.fam[f].sentBytes.Load(),
			RecvMsgs:  rc.fam[f].recvMsgs.Load(),
			RecvBytes: rc.fam[f].recvBytes.Load(),
		}
	}
	return s
}

// Add accumulates o into s, families included.
func (s *Stats) Add(o Stats) {
	s.SentMsgs += o.SentMsgs
	s.SentBytes += o.SentBytes
	s.RecvMsgs += o.RecvMsgs
	s.RecvBytes += o.RecvBytes
	for f := range s.ByFamily {
		s.ByFamily[f].Add(o.ByFamily[f])
	}
}

// Sub returns s - o, for computing per-phase deltas between snapshots.
func (s Stats) Sub(o Stats) Stats {
	out := Stats{
		SentMsgs:  s.SentMsgs - o.SentMsgs,
		SentBytes: s.SentBytes - o.SentBytes,
		RecvMsgs:  s.RecvMsgs - o.RecvMsgs,
		RecvBytes: s.RecvBytes - o.RecvBytes,
	}
	for f := range s.ByFamily {
		out.ByFamily[f] = s.ByFamily[f].Sub(o.ByFamily[f])
	}
	return out
}

// String renders the aggregate counters (families elided).
func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B",
		s.SentMsgs, s.SentBytes, s.RecvMsgs, s.RecvBytes)
}

// StatsSnapshot returns this rank's counters at the current moment. Safe to
// call from any goroutine, including while Run is in flight.
func (c *Comm) StatsSnapshot() Stats {
	return c.world.RankStats(c.rank)
}
