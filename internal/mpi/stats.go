package mpi

import "fmt"

// Stats counts a rank's traffic. The experiment harness snapshots these per
// phase; the α–β performance model consumes (SentMsgs, SentBytes) to predict
// Blue Gene/P-scale times.
type Stats struct {
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
	RecvBytes int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.SentMsgs += o.SentMsgs
	s.SentBytes += o.SentBytes
	s.RecvMsgs += o.RecvMsgs
	s.RecvBytes += o.RecvBytes
}

// Sub returns s - o, for computing per-phase deltas between snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		SentMsgs:  s.SentMsgs - o.SentMsgs,
		SentBytes: s.SentBytes - o.SentBytes,
		RecvMsgs:  s.RecvMsgs - o.RecvMsgs,
		RecvBytes: s.RecvBytes - o.RecvBytes,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B",
		s.SentMsgs, s.SentBytes, s.RecvMsgs, s.RecvBytes)
}

// StatsSnapshot returns this rank's counters at the current moment. Safe to
// call from the rank's own goroutine during Run.
func (c *Comm) StatsSnapshot() Stats {
	return c.world.RankStats(c.rank)
}
