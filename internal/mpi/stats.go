package mpi

import (
	"fmt"
	"sync/atomic"
)

// Stats counts a rank's traffic. The experiment harness snapshots these per
// phase; the α–β performance model consumes (SentMsgs, SentBytes) to predict
// Blue Gene/P-scale times.
type Stats struct {
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
	RecvBytes int64
}

// rankCounters is the live form of Stats: lock-free atomic cells, written by
// the owning rank's goroutine on every send/receive and readable from any
// goroutine at any time — live metrics polling (RankStats/TotalStats while
// Run is in flight) never races and never blocks the hot path.
type rankCounters struct {
	sentMsgs  atomic.Int64
	sentBytes atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
}

// snapshot reads the counters. The four loads are individually atomic, not
// a consistent cut — momentary skew between fields is inherent to live
// polling and irrelevant to end-of-run reads.
func (rc *rankCounters) snapshot() Stats {
	return Stats{
		SentMsgs:  rc.sentMsgs.Load(),
		SentBytes: rc.sentBytes.Load(),
		RecvMsgs:  rc.recvMsgs.Load(),
		RecvBytes: rc.recvBytes.Load(),
	}
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.SentMsgs += o.SentMsgs
	s.SentBytes += o.SentBytes
	s.RecvMsgs += o.RecvMsgs
	s.RecvBytes += o.RecvBytes
}

// Sub returns s - o, for computing per-phase deltas between snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		SentMsgs:  s.SentMsgs - o.SentMsgs,
		SentBytes: s.SentBytes - o.SentBytes,
		RecvMsgs:  s.RecvMsgs - o.RecvMsgs,
		RecvBytes: s.RecvBytes - o.RecvBytes,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B",
		s.SentMsgs, s.SentBytes, s.RecvMsgs, s.RecvBytes)
}

// StatsSnapshot returns this rank's counters at the current moment. Safe to
// call from any goroutine, including while Run is in flight.
func (c *Comm) StatsSnapshot() Stats {
	return c.world.RankStats(c.rank)
}
