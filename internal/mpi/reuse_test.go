package mpi

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/transport"
	"repro/internal/obs"
)

// exchange is a deterministic all-to-all: each rank sends its id to every
// other rank and checks the received sum. Used to compare a reused world's
// behavior against a fresh one.
func exchange(p int) func(c *Comm) error {
	return func(c *Comm) error {
		for to := 0; to < p; to++ {
			if to == c.Rank() {
				continue
			}
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(c.Rank()))
			c.Send(to, 1, buf)
		}
		sum := 0
		for i := 0; i < p-1; i++ {
			m := c.Recv()
			sum += int(binary.LittleEndian.Uint64(m.Data))
		}
		if want := p*(p-1)/2 - c.Rank(); sum != want {
			return fmt.Errorf("rank %d sum %d, want %d", c.Rank(), sum, want)
		}
		return nil
	}
}

// TestResetReuse is the world-pool contract: after Reset, a world must be
// indistinguishable from a fresh one — stale unreceived messages drained,
// per-rank stats zeroed, and a second run producing exactly the traffic a
// fresh world would.
func TestResetReuse(t *testing.T) {
	const p = 4
	w, err := NewWorld(p, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// First run leaves garbage behind on purpose: every rank posts one
	// message to its neighbor on a tag nobody receives.
	leaky := func(c *Comm) error {
		c.Send((c.Rank()+1)%p, 99, []byte("stale"))
		c.Barrier()
		return nil
	}
	if err := w.Run(leaky); err != nil {
		t.Fatal(err)
	}
	if got := w.TotalStats().SentMsgs; got != p {
		t.Fatalf("leaky run sent %d msgs, want %d", got, p)
	}

	stale, err := w.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if stale != p {
		t.Fatalf("Reset drained %d stale messages, want %d", stale, p)
	}
	if got := w.TotalStats(); got.SentMsgs != 0 || got.RecvMsgs != 0 || got.SentBytes != 0 || got.RecvBytes != 0 {
		t.Fatalf("stats not reset: %+v", got)
	}
	for r := 0; r < p; r++ {
		s := w.RankStats(r)
		if s.SentMsgs != 0 || s.ByFamily[FamilyRuntime].SentMsgs != 0 {
			t.Fatalf("rank %d stats survived Reset: %+v", r, s)
		}
	}

	// Second run on the reused world: no stale message may surface, and the
	// traffic totals must match a fresh world running the same function. The
	// barrier separates the staleness probe from the exchange — before it, the
	// only possible message is a leaked one.
	reused := func(c *Comm) error {
		if m, ok := c.TryRecv(); ok {
			return fmt.Errorf("rank %d saw stale message tag %d from %d", c.Rank(), m.Tag, m.From)
		}
		c.Barrier()
		return exchange(p)(c)
	}
	if err := w.Run(reused); err != nil {
		t.Fatal(err)
	}
	got := w.TotalStats()

	fresh, err := NewWorld(p, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Run(reused); err != nil {
		t.Fatal(err)
	}
	if want := fresh.TotalStats(); got != want {
		t.Fatalf("reused world stats diverge from fresh:\n reused: %+v\n fresh:  %+v", got, want)
	}
}

// TestResetRepeatedRuns reuses one world across many runs — the service
// steady state — checking per-run stats isolation every time.
func TestResetRepeatedRuns(t *testing.T) {
	const p = 4
	w, err := NewWorld(p, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var want Stats
	for i := 0; i < 5; i++ {
		if i > 0 {
			stale, err := w.Reset()
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
			if stale != 0 {
				t.Fatalf("run %d: %d stale messages from a clean run", i, stale)
			}
		}
		if err := w.Run(exchange(p)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got := w.TotalStats()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d stats drifted (leakage across Reset):\n got:  %+v\n want: %+v", i, got, want)
		}
	}
}

// TestRunTwiceWithoutReset pins the guard: a second Run without Reset must
// fail loudly instead of silently mixing two jobs' traffic.
func TestRunTwiceWithoutReset(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	noop := func(c *Comm) error { return nil }
	if err := w.Run(noop); err != nil {
		t.Fatal(err)
	}
	err = w.Run(noop)
	if err == nil || !strings.Contains(err.Error(), "Reset") {
		t.Fatalf("second Run = %v, want an error mentioning Reset", err)
	}
}

// TestResetWhileRunning pins the safety check: Reset must refuse while rank
// goroutines are live (it would race with their mailbox and stats writes),
// and succeed once they have all returned.
func TestResetWhileRunning(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	ready := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) error {
			once.Do(func() { close(ready) })
			<-release
			return nil
		})
	}()
	<-ready
	if _, err := w.Reset(); err == nil || !strings.Contains(err.Error(), "running") {
		t.Fatalf("Reset during Run = %v, want a still-running error", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := w.Reset(); err != nil {
		t.Fatalf("Reset after Run returned: %v", err)
	}
}

// TestSetObserverPerRun pins the pool-tracing contract: a recycled world can
// swap observers between runs so each job gets isolated span rings and
// metrics, the swap is refused while ranks are live, and detaching (nil)
// leaves later runs unobserved.
func TestSetObserverPerRun(t *testing.T) {
	const p = 2
	w, err := NewWorld(p, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	traced := func(c *Comm) error {
		tok := c.Tracer().Begin("test.phase")
		c.Barrier()
		c.Tracer().End(tok)
		return nil
	}

	obsA := obs.NewObserver(p, 64)
	if err := w.SetObserver(obsA); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(traced); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if n := len(obsA.Tracer(r).Spans()); n != 1 {
			t.Fatalf("run A: rank %d recorded %d spans, want 1", r, n)
		}
	}

	if _, err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	obsB := obs.NewObserver(p, 64)
	if err := w.SetObserver(obsB); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(traced); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if n := len(obsA.Tracer(r).Spans()); n != 1 {
			t.Fatalf("run B leaked into observer A: rank %d has %d spans", r, n)
		}
		if n := len(obsB.Tracer(r).Spans()); n != 1 {
			t.Fatalf("run B: rank %d recorded %d spans in B, want 1", r, n)
		}
	}
	if obsB.Registry().Snapshot().Gauges["mpi.world_size"] != p {
		t.Fatal("world_size gauge not published into the swapped-in registry")
	}

	// Swapping while ranks are live must be refused, like Reset.
	if _, err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	ready := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) error {
			once.Do(func() { close(ready) })
			<-release
			return nil
		})
	}()
	<-ready
	if err := w.SetObserver(nil); err == nil || !strings.Contains(err.Error(), "running") {
		t.Fatalf("SetObserver during Run = %v, want a still-running error", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Detach: the next run records nowhere.
	if _, err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.SetObserver(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(traced); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if n := len(obsB.Tracer(r).Spans()); n != 1 {
			t.Fatalf("detached run leaked into observer B: rank %d has %d spans", r, n)
		}
	}
}

// TestResetRemoteRefused pins the scope restriction: Reset only supports
// all-local worlds — a remote transport holds peer connection state the
// reset path does not (and need not) understand.
func TestResetRemoteRefused(t *testing.T) {
	eps, err := transport.NewLocalTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	worlds := make([]*World, 2)
	for i, ep := range eps {
		w, err := NewWorld(2, WithTransport(ep), WithDeadline(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *World) { defer wg.Done(); errs[i] = w.Run(exchange(2)) }(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := worlds[0].Reset(); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("Reset on a TCP world = %v, want a remote-transport error", err)
	}
}
