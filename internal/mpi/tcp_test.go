package mpi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/transport"
)

// runOverTCP runs fn once per rank of an n-rank job in which every rank owns
// its own World over a real localhost TCP mesh — the same topology as n
// separate processes, collapsed into one test binary. It returns the per-rank
// worlds for stats inspection.
func runOverTCP(t *testing.T, n int, fn func(c *Comm) error, opts ...Option) []*World {
	t.Helper()
	eps, err := transport.NewLocalTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	worlds := make([]*World, n)
	for i, ep := range eps {
		w, err := NewWorld(n, append([]Option{WithTransport(ep), WithDeadline(30 * time.Second)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.LocalRanks(); len(got) != 1 || got[0] != i {
			t.Fatalf("world %d hosts ranks %v", i, got)
		}
		worlds[i] = w
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *World) { defer wg.Done(); errs[i] = w.Run(fn) }(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return worlds
}

func TestTCPWorldCollectives(t *testing.T) {
	const n = 4
	runOverTCP(t, n, func(c *Comm) error {
		if s := c.AllreduceInt64(int64(c.Rank()), OpSum); s != n*(n-1)/2 {
			return fmt.Errorf("sum = %d", s)
		}
		if m := c.AllreduceInt64(int64(c.Rank()), OpMax); m != n-1 {
			return fmt.Errorf("max = %d", m)
		}
		if m := c.AllreduceInt64(int64(c.Rank()), OpMin); m != 0 {
			return fmt.Errorf("min = %d", m)
		}
		if l := c.AllreduceInt64(int64(c.Rank()), OpLor); l != 1 {
			return fmt.Errorf("lor = %d", l)
		}
		if f := c.AllreduceFloat64(float64(c.Rank())+0.5, OpSum); f != float64(n*(n-1))/2+float64(n)*0.5 {
			return fmt.Errorf("fsum = %v", f)
		}
		parts := c.Allgather([]byte{byte(c.Rank()), byte(c.Rank() * 2)})
		if len(parts) != n {
			return fmt.Errorf("allgather %d parts", len(parts))
		}
		for r, p := range parts {
			if len(p) != 2 || p[0] != byte(r) || p[1] != byte(r*2) {
				return fmt.Errorf("allgather part %d = %v", r, p)
			}
		}
		return nil
	})
}

// TestTCPPerPairFIFOOverWire drives 4 ranks over real sockets: every rank
// streams a numbered sequence to every other rank; receivers must observe
// each sender's sequence in order regardless of cross-sender interleaving.
func TestTCPPerPairFIFOOverWire(t *testing.T) {
	const n = 4
	const per = 200
	runOverTCP(t, n, func(c *Comm) error {
		for k := 0; k < per; k++ {
			for to := 0; to < n; to++ {
				if to == c.Rank() {
					continue
				}
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(k))
				c.Send(to, 7, buf)
			}
		}
		next := make([]int, n)
		for got := 0; got < (n-1)*per; got++ {
			m := c.Recv()
			if m.Tag != 7 {
				return fmt.Errorf("tag %d", m.Tag)
			}
			k := int(binary.LittleEndian.Uint64(m.Data))
			if k != next[m.From] {
				return fmt.Errorf("rank %d: from %d got seq %d, want %d", c.Rank(), m.From, k, next[m.From])
			}
			next[m.From]++
		}
		return nil
	})
}

// TestTCPBarrierIsFence checks the delivery-fence property over the wire:
// everything sent before the senders' Barrier is receivable without blocking
// after it — the invariant the matching and coloring round structure relies
// on. It also checks exact traffic balance: with all sends barrier-fenced,
// every rank's receive counters match what was addressed to it, and the
// runtime's own barrier traffic stays invisible.
func TestTCPBarrierIsFence(t *testing.T) {
	const n = 4
	const rounds = 3
	const per = 5
	worlds := runOverTCP(t, n, func(c *Comm) error {
		for round := 0; round < rounds; round++ {
			for to := 0; to < n; to++ {
				if to == c.Rank() {
					continue
				}
				for k := 0; k < per; k++ {
					c.Send(to, round, []byte{byte(round), byte(k)})
				}
			}
			c.Barrier()
			got := 0
			for {
				m, ok := c.TryRecv()
				if !ok {
					break
				}
				if int(m.Data[0]) != round {
					return fmt.Errorf("round %d: stale message from round %d", round, m.Data[0])
				}
				got++
			}
			if got != (n-1)*per {
				return fmt.Errorf("round %d: drained %d messages, want %d", round, got, (n-1)*per)
			}
			c.Barrier() // nobody starts the next round early
		}
		return nil
	})
	var total Stats
	for i, w := range worlds {
		s := w.RankStats(i)
		want := int64(rounds * (n - 1) * per)
		if s.SentMsgs != want || s.RecvMsgs != want {
			t.Fatalf("rank %d stats %v, want %d sent and received", i, s, want)
		}
		total.Add(s)
	}
	if total.SentMsgs != total.RecvMsgs || total.SentBytes != total.RecvBytes {
		t.Fatalf("global imbalance: %v", total)
	}
}

// TestTCPDrainTagOverWire exercises the Barrier+DrainTag idiom (the matching
// algorithm's cleanup) over sockets.
func TestTCPDrainTagOverWire(t *testing.T) {
	const n = 4
	runOverTCP(t, n, func(c *Comm) error {
		for to := 0; to < n; to++ {
			if to != c.Rank() {
				c.Send(to, 42, []byte{1, 2, 3})
			}
		}
		c.Barrier()
		if dropped := c.DrainTag(42); dropped != n-1 {
			return fmt.Errorf("dropped %d, want %d", dropped, n-1)
		}
		if _, ok := c.TryRecv(); ok {
			return fmt.Errorf("mailbox not empty after drain")
		}
		return nil
	})
}

// TestTCPVirtualTime checks that virtual clocks synchronize through the
// remote barrier exactly as through the shared-memory one.
func TestTCPVirtualTime(t *testing.T) {
	const n = 3
	vt := VirtualTime{Alpha: 1, Beta: 0.5, Sync: 10}
	worlds := runOverTCP(t, n, func(c *Comm) error {
		c.ChargeSeconds(float64(c.Rank() * 100))
		c.Barrier()
		want := float64((n-1)*100) + vt.Sync
		if c.VTime() != want {
			return fmt.Errorf("rank %d clock %v, want %v", c.Rank(), c.VTime(), want)
		}
		return nil
	}, WithVirtualTime(vt))
	for i, w := range worlds {
		if got := w.RankVirtualTime(i); got != float64((n-1)*100)+vt.Sync {
			t.Fatalf("rank %d final clock %v", i, got)
		}
	}
}

// TestTCPWorldRunTwice checks the reuse guard on a transport-backed world.
func TestTCPWorldRunTwice(t *testing.T) {
	worlds := runOverTCP(t, 2, func(c *Comm) error { return nil })
	if err := worlds[0].Run(func(c *Comm) error { return nil }); err == nil {
		t.Fatal("second Run succeeded")
	}
}
