package mpi

import "sync"

// collectives holds the shared reduction slots. Each collective call is two
// barrier phases: all ranks deposit, one combines (rank 0 side happens on
// every rank identically from the shared slots — cheap at these sizes), all
// ranks read.
type collectives struct {
	mu    sync.Mutex
	i64   []int64
	f64   []float64
	bytes [][]byte
}

func newCollectives(size int) *collectives {
	return &collectives{
		i64:   make([]int64, size),
		f64:   make([]float64, size),
		bytes: make([][]byte, size),
	}
}

// ReduceOp names a reduction operator.
type ReduceOp int

const (
	// OpSum adds contributions.
	OpSum ReduceOp = iota
	// OpMax takes the maximum contribution.
	OpMax
	// OpMin takes the minimum contribution.
	OpMin
	// OpLor is logical OR: nonzero if any contribution is nonzero.
	OpLor
)

// AllreduceInt64 combines one int64 per rank with op and returns the result
// on every rank.
func (c *Comm) AllreduceInt64(x int64, op ReduceOp) int64 {
	if !c.world.allLocal {
		return c.remoteAllreduceInt64(x, op)
	}
	w := c.world
	w.coll.mu.Lock()
	w.coll.i64[c.rank] = x
	w.coll.mu.Unlock()
	c.Barrier()
	out := reduceInt64(w.coll.i64, op)
	c.Barrier() // no rank may overwrite its slot before all have read
	return out
}

func reduceInt64(xs []int64, op ReduceOp) int64 {
	out := xs[0]
	for _, v := range xs[1:] {
		switch op {
		case OpSum:
			out += v
		case OpMax:
			if v > out {
				out = v
			}
		case OpMin:
			if v < out {
				out = v
			}
		case OpLor:
			if v != 0 || out != 0 {
				out = 1
			}
		}
	}
	if op == OpLor && out != 0 {
		out = 1
	}
	return out
}

// AllreduceFloat64 combines one float64 per rank with op. The fold runs in
// rank order on every rank (and on every backend), so the result is bitwise
// identical everywhere.
func (c *Comm) AllreduceFloat64(x float64, op ReduceOp) float64 {
	if !c.world.allLocal {
		return c.remoteAllreduceFloat64(x, op)
	}
	w := c.world
	w.coll.mu.Lock()
	w.coll.f64[c.rank] = x
	w.coll.mu.Unlock()
	c.Barrier()
	out := reduceFloat64(w.coll.f64, op)
	c.Barrier()
	return out
}

func reduceFloat64(xs []float64, op ReduceOp) float64 {
	out := xs[0]
	for _, v := range xs[1:] {
		switch op {
		case OpSum:
			out += v
		case OpMax:
			if v > out {
				out = v
			}
		case OpMin:
			if v < out {
				out = v
			}
		case OpLor:
			if v != 0 || out != 0 {
				out = 1
			}
		}
	}
	if op == OpLor && out != 0 {
		out = 1
	}
	return out
}

// Allgather deposits each rank's byte slice and returns the full set indexed
// by rank, identical on every rank. The returned inner slices are shared;
// callers must not modify them.
func (c *Comm) Allgather(data []byte) [][]byte {
	if !c.world.allLocal {
		return c.remoteAllgather(data)
	}
	w := c.world
	w.coll.mu.Lock()
	w.coll.bytes[c.rank] = data
	w.coll.mu.Unlock()
	c.Barrier()
	out := make([][]byte, w.size)
	copy(out, w.coll.bytes)
	c.Barrier()
	return out
}

// Alltoallv sends chunks[r] to each rank r (nil chunks allowed) and returns
// the chunks received from every rank, indexed by source. It is built from
// point-to-point sends plus a barrier, and is what the coloring algorithm's
// FIAC variant ("a customized message to every other processor") uses.
func (c *Comm) Alltoallv(tag int, chunks [][]byte) [][]byte {
	if len(chunks) != c.world.size {
		panic("mpi: Alltoallv chunk count != world size")
	}
	for to, data := range chunks {
		if to == c.rank {
			continue
		}
		c.Send(to, tag, data)
	}
	out := make([][]byte, c.world.size)
	out[c.rank] = chunks[c.rank]
	for i := 0; i < c.world.size-1; i++ {
		m := c.recvTagged(tag)
		out[m.From] = m.Data
	}
	c.Barrier()
	return out
}

// recvTagged blocks for the next message with the given tag, stashing any
// differently-tagged messages for later receives (see Comm.stash).
func (c *Comm) recvTagged(tag int) Message {
	for i, m := range c.stash {
		if m.Tag == tag {
			c.stash = append(c.stash[:i], c.stash[i+1:]...)
			c.observeArrival(m)
			return m
		}
	}
	for {
		m, _ := c.world.boxes[c.rank].get(true, c.nextPick())
		c.countRecv(m)
		c.observeArrival(m)
		if m.Tag == tag {
			return m
		}
		c.stash = append(c.stash, m)
	}
}
