package mpi

import "math"

// Virtual time: a LogP-flavored simulation layer over the runtime. When a
// World is created WithVirtualTime, every rank carries a virtual clock:
//
//   - algorithms charge compute via ChargeOps (γv per vertex op, γe per edge
//     op),
//   - a message arrives at senderClock + α + β·bytes; processing it advances
//     the receiver's clock to at least the arrival time,
//   - barriers (and thus collectives) synchronize clocks to the maximum,
//     plus a σ synchronization cost.
//
// The maximum clock at the end of a run is a makespan estimate for the
// modeled machine that — unlike the bulk-synchronous α–β–γ model of
// internal/perfmodel — honors the asynchronous overlap of the real
// execution: a rank that keeps computing while traffic is in flight pays no
// idle time, exactly as on the paper's Blue Gene/P. Virtual waiting costs
// nothing; only arrivals pull clocks forward. See EXPERIMENTS.md ("model
// methodology") for how the two estimators are used together.
type VirtualTime struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the per-byte cost in seconds.
	Beta float64
	// GammaVertex and GammaEdge are per-operation compute costs in seconds.
	GammaVertex float64
	GammaEdge   float64
	// Sync is the per-barrier synchronization cost in seconds.
	Sync float64
}

// WithVirtualTime enables virtual-time tracking with the given coefficients.
func WithVirtualTime(vt VirtualTime) Option {
	return func(w *World) {
		v := vt
		w.vt = &v
	}
}

// ChargeOps advances this rank's virtual clock by the modeled cost of the
// given operation counts, and feeds the same counts into the observability
// registry (mpi.vertex_ops / mpi.edge_ops) when an observer is attached —
// the per-rank compute profile that perfmodel consumes. A near-no-op when
// both are disabled, so algorithms may charge unconditionally.
func (c *Comm) ChargeOps(edgeOps, vertexOps int64) {
	if c.eops != nil {
		c.eops.Add(edgeOps)
		c.vops.Add(vertexOps)
	}
	vt := c.world.vt
	if vt == nil {
		return
	}
	c.vclock += float64(edgeOps)*vt.GammaEdge + float64(vertexOps)*vt.GammaVertex
}

// ChargeSeconds advances this rank's virtual clock directly.
func (c *Comm) ChargeSeconds(s float64) {
	if c.world.vt != nil {
		c.vclock += s
	}
}

// VTime reports this rank's current virtual clock (0 when disabled).
func (c *Comm) VTime() float64 { return c.vclock }

// RankVirtualTime reports a rank's final virtual clock after Run.
func (w *World) RankVirtualTime(rank int) float64 {
	return math.Float64frombits(w.finalVTime[rank].Load())
}

// MaxVirtualTime reports the virtual makespan of the run.
func (w *World) MaxVirtualTime() float64 {
	var max float64
	for r := 0; r < w.size; r++ {
		if t := w.RankVirtualTime(r); t > max {
			max = t
		}
	}
	return max
}

// stampSend computes the virtual arrival time of a message being sent now.
func (c *Comm) stampSend(bytes int) float64 {
	vt := c.world.vt
	if vt == nil {
		return 0
	}
	return c.vclock + vt.Alpha + vt.Beta*float64(bytes)
}

// observeArrival pulls the receiver's clock to the message's arrival.
func (c *Comm) observeArrival(m Message) {
	if c.world.vt != nil && m.ArriveV > c.vclock {
		c.vclock = m.ArriveV
	}
}
