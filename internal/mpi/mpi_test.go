package mpi

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasicExchange(t *testing.T) {
	const p = 4
	err := Run(p, func(c *Comm) error {
		// Each rank sends its id to every other rank and sums what it gets.
		for to := 0; to < p; to++ {
			if to == c.Rank() {
				continue
			}
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(c.Rank()))
			c.Send(to, 1, buf)
		}
		sum := 0
		for i := 0; i < p-1; i++ {
			m := c.Recv()
			if m.Tag != 1 {
				return fmt.Errorf("tag %d, want 1", m.Tag)
			}
			sum += int(binary.LittleEndian.Uint64(m.Data))
		}
		want := p*(p-1)/2 - c.Rank()
		if sum != want {
			return fmt.Errorf("rank %d sum %d, want %d", c.Rank(), sum, want)
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerPairFIFO(t *testing.T) {
	const n = 500
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf := make([]byte, 4)
				binary.LittleEndian.PutUint32(buf, uint32(i))
				c.Send(1, 0, buf)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m := c.Recv()
			got := binary.LittleEndian.Uint32(m.Data)
			if got != uint32(i) {
				return fmt.Errorf("out of order: got %d at position %d", got, i)
			}
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerPairFIFOUnderPerturbation(t *testing.T) {
	const n = 200
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 2 {
			for i := 0; i < n; i++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(c.Rank())<<32|uint64(i))
				c.Send(2, 0, buf)
			}
			return nil
		}
		nextFrom := map[int]uint64{}
		for i := 0; i < 2*n; i++ {
			m := c.Recv()
			v := binary.LittleEndian.Uint64(m.Data)
			from, seq := int(v>>32), v&0xffffffff
			if from != m.From {
				return fmt.Errorf("sender mismatch: %d vs %d", from, m.From)
			}
			if seq != nextFrom[from] {
				return fmt.Errorf("from %d: seq %d, want %d", from, seq, nextFrom[from])
			}
			nextFrom[from]++
		}
		return nil
	}, WithPerturbation(12345), WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestExactlyOnceDelivery(t *testing.T) {
	const p, per = 6, 100
	var delivered int64
	err := Run(p, func(c *Comm) error {
		for i := 0; i < per; i++ {
			to := (c.Rank() + 1 + i%(p-1)) % p
			c.Send(to, 7, []byte{byte(i)})
		}
		c.Barrier() // all sends issued
		for {
			_, ok := c.TryRecv()
			if !ok {
				break
			}
			atomic.AddInt64(&delivered, 1)
		}
		// Everything was already in the mailbox before the drain because
		// sends are synchronous enqueues and the barrier ordered them.
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != p*per {
		t.Fatalf("delivered %d, want %d", delivered, p*per)
	}
}

func TestTryRecvEmpty(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, ok := c.TryRecv(); ok {
			return fmt.Errorf("rank %d: TryRecv returned a phantom message", c.Rank())
		}
		return nil
	}, WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const p = 8
	var phase1 int64
	err := Run(p, func(c *Comm) error {
		atomic.AddInt64(&phase1, 1)
		c.Barrier()
		if got := atomic.LoadInt64(&phase1); got != p {
			return fmt.Errorf("after barrier only %d ranks in phase 1", got)
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceOps(t *testing.T) {
	const p = 5
	err := Run(p, func(c *Comm) error {
		r := int64(c.Rank())
		if got := c.AllreduceInt64(r, OpSum); got != 10 {
			return fmt.Errorf("sum = %d, want 10", got)
		}
		if got := c.AllreduceInt64(r, OpMax); got != 4 {
			return fmt.Errorf("max = %d, want 4", got)
		}
		if got := c.AllreduceInt64(r, OpMin); got != 0 {
			return fmt.Errorf("min = %d, want 0", got)
		}
		if got := c.AllreduceInt64(r, OpLor); got != 1 {
			return fmt.Errorf("lor = %d, want 1", got)
		}
		zero := c.AllreduceInt64(0, OpLor)
		if zero != 0 {
			return fmt.Errorf("lor(all zero) = %d, want 0", zero)
		}
		f := c.AllreduceFloat64(float64(c.Rank())+0.5, OpSum)
		if f != 12.5 {
			return fmt.Errorf("fsum = %g, want 12.5", f)
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceRepeated(t *testing.T) {
	// Back-to-back collectives must not corrupt each other (slot reuse).
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			want := int64(4 * i)
			if got := c.AllreduceInt64(int64(i), OpSum); got != want {
				return fmt.Errorf("iter %d: sum = %d, want %d", i, got, want)
			}
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		all := c.Allgather([]byte{byte(c.Rank() * 10)})
		for r, data := range all {
			if len(data) != 1 || data[0] != byte(r*10) {
				return fmt.Errorf("slot %d = %v", r, data)
			}
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const p = 5
	err := Run(p, func(c *Comm) error {
		chunks := make([][]byte, p)
		for to := 0; to < p; to++ {
			chunks[to] = []byte{byte(c.Rank()), byte(to)}
		}
		got := c.Alltoallv(3, chunks)
		for from := 0; from < p; from++ {
			want := []byte{byte(from), byte(c.Rank())}
			if len(got[from]) != 2 || got[from][0] != want[0] || got[from][1] != want[1] {
				return fmt.Errorf("from %d: got %v, want %v", from, got[from], want)
			}
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvRepeatedPhases(t *testing.T) {
	// Alternating Alltoallv and point-to-point traffic with different tags
	// must not lose or mix messages (stash path).
	const p = 3
	err := Run(p, func(c *Comm) error {
		for round := 0; round < 10; round++ {
			// P2P burst on tag 50.
			c.Send((c.Rank()+1)%p, 50, []byte{byte(round)})
			chunks := make([][]byte, p)
			for to := 0; to < p; to++ {
				chunks[to] = []byte{byte(round * 2)}
			}
			got := c.Alltoallv(60, chunks)
			for from := 0; from < p; from++ {
				if got[from][0] != byte(round*2) {
					return fmt.Errorf("round %d: chunk %v", round, got[from])
				}
			}
			// Now collect the P2P message.
			m := c.Recv()
			if m.Tag != 50 || m.Data[0] != byte(round) {
				return fmt.Errorf("round %d: p2p tag %d data %v", round, m.Tag, m.Data)
			}
		}
		return nil
	}, WithDeadline(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorPropagates(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "mpi: rank 1: boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestRankPanicCaptured(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not captured")
	}
}

func TestDeadlineDetectsDeadlock(t *testing.T) {
	start := time.Now()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv() // nobody ever sends
		}
		return nil
	}, WithDeadline(200*time.Millisecond))
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline fired far too late")
	}
}

func TestInvalidWorldSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("accepted size 0")
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("send to invalid rank did not fail")
	}
}

func TestStatsCounting(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 100))
			c.Send(1, 0, make([]byte, 50))
		} else {
			c.Recv()
			c.Recv()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s0 := w.RankStats(0)
	s1 := w.RankStats(1)
	if s0.SentMsgs != 2 || s0.SentBytes != 150 {
		t.Fatalf("rank 0 stats %v", s0)
	}
	if s1.RecvMsgs != 2 || s1.RecvBytes != 150 {
		t.Fatalf("rank 1 stats %v", s1)
	}
	tot := w.TotalStats()
	if tot.SentMsgs != 2 || tot.RecvMsgs != 2 {
		t.Fatalf("total stats %v", tot)
	}
	if got := s0.Sub(Stats{SentMsgs: 1}); got.SentMsgs != 1 {
		t.Fatalf("Sub = %v", got)
	}
}

func TestBundlerAggregates(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	const recs = 100
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			b := NewBundler(c, 9, 8, 0)
			for i := 0; i < recs; i++ {
				rec := make([]byte, 8)
				binary.LittleEndian.PutUint64(rec, uint64(i))
				b.Add(1, rec)
			}
			if !b.Pending() {
				return fmt.Errorf("no pending records before flush")
			}
			b.Flush()
			if b.Pending() {
				return fmt.Errorf("pending records after flush")
			}
			if b.Flushes != 1 {
				return fmt.Errorf("flushes = %d, want 1 (all records fit one bundle)", b.Flushes)
			}
			return nil
		}
		m := c.Recv()
		rs := Records(m.Data, 8)
		if len(rs) != recs {
			return fmt.Errorf("got %d records, want %d", len(rs), recs)
		}
		for i, r := range rs {
			if binary.LittleEndian.Uint64(r) != uint64(i) {
				return fmt.Errorf("record %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One runtime message total, versus recs without bundling.
	if s := w.RankStats(0); s.SentMsgs != 1 {
		t.Fatalf("sent %d messages, want 1", s.SentMsgs)
	}
}

func TestBundlerAutoFlushAtCapacity(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			b := NewBundler(c, 9, 8, 16) // two records per bundle
			for i := 0; i < 5; i++ {
				b.Add(1, make([]byte, 8))
			}
			b.Flush()
			if b.Flushes != 3 { // 2+2+1
				return fmt.Errorf("flushes = %d, want 3", b.Flushes)
			}
			return nil
		}
		total := 0
		for total < 5 {
			m := c.Recv()
			total += len(Records(m.Data, 8))
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestBundlerUnbundledMode(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			b := NewBundler(c, 9, 8, 8) // bundling disabled
			for i := 0; i < 10; i++ {
				b.Add(1, make([]byte, 8))
			}
			b.Flush()
			return nil
		}
		for i := 0; i < 10; i++ {
			c.Recv()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.RankStats(0); s.SentMsgs != 10 {
		t.Fatalf("unbundled mode sent %d messages, want 10", s.SentMsgs)
	}
}

func TestRecordsRejectsMisalignedBundle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on misaligned bundle")
		}
	}()
	Records(make([]byte, 9), 4)
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const p = 64
	err := Run(p, func(c *Comm) error {
		// Pass an incrementing token around the ring for p full circuits
		// (p*p hops); the token starts at rank 1 with value 0, every relay
		// adds 1, and the final hop lands back on rank 0 carrying p*p - 1.
		relay := func(v uint64) {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, v+1)
			c.Send((c.Rank()+1)%p, 0, buf)
		}
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 8))
			for i := 0; i < p; i++ {
				m := c.Recv()
				v := binary.LittleEndian.Uint64(m.Data)
				if i < p-1 {
					relay(v)
				} else if v != p*p-1 {
					return fmt.Errorf("final token %d, want %d", v, p*p-1)
				}
			}
			return nil
		}
		for i := 0; i < p; i++ {
			m := c.Recv()
			relay(binary.LittleEndian.Uint64(m.Data))
		}
		return nil
	}, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestDrainTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		other := 1 - c.Rank()
		c.Send(other, 5, []byte{1})
		c.Send(other, 5, []byte{2})
		c.Send(other, 6, []byte{3})
		c.Barrier() // all sends delivered to mailboxes
		if n := c.DrainTag(5); n != 2 {
			return fmt.Errorf("drained %d tag-5 messages, want 2", n)
		}
		m := c.Recv() // the tag-6 message must survive
		if m.Tag != 6 || m.Data[0] != 3 {
			return fmt.Errorf("surviving message %v", m)
		}
		if n := c.DrainTag(5); n != 0 {
			return fmt.Errorf("second drain found %d", n)
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestDrainTagClearsStash(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		other := 1 - c.Rank()
		c.Send(other, 7, []byte{9}) // will be stashed by recvTagged
		chunks := make([][]byte, 2)
		chunks[other] = []byte{1}
		c.Alltoallv(8, chunks) // forces the tag-7 message into the stash
		if n := c.DrainTag(7); n != 1 {
			return fmt.Errorf("drained %d stashed messages, want 1", n)
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeBasics(t *testing.T) {
	vt := VirtualTime{Alpha: 1, Beta: 0.01, GammaVertex: 0.1, GammaEdge: 0.2, Sync: 0.5}
	w, err := NewWorld(2, WithVirtualTime(vt), WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeOps(10, 5) // 10*0.2 + 5*0.1 = 2.5
			if got := c.VTime(); got != 2.5 {
				return fmt.Errorf("vtime after charge = %g, want 2.5", got)
			}
			c.Send(1, 0, make([]byte, 100)) // arrives at 2.5 + 1 + 1 = 4.5
			return nil
		}
		m := c.Recv()
		if m.ArriveV != 4.5 {
			return fmt.Errorf("arrival vtime = %g, want 4.5", m.ArriveV)
		}
		if got := c.VTime(); got != 4.5 {
			return fmt.Errorf("receiver vtime = %g, want 4.5", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MaxVirtualTime(); got != 4.5 {
		t.Fatalf("makespan = %g, want 4.5", got)
	}
}

func TestVirtualTimeBarrierSync(t *testing.T) {
	vt := VirtualTime{Sync: 2}
	w, _ := NewWorld(3, WithVirtualTime(vt), WithDeadline(10*time.Second))
	err := w.Run(func(c *Comm) error {
		c.ChargeSeconds(float64(c.Rank()) * 10) // clocks 0, 10, 20
		c.Barrier()
		if got := c.VTime(); got != 22 { // max + sync
			return fmt.Errorf("rank %d vtime %g, want 22", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeDisabledIsFree(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		c.ChargeOps(1000, 1000)
		c.ChargeSeconds(99)
		c.Send(1-c.Rank(), 0, []byte{1})
		m := c.Recv()
		if m.ArriveV != 0 || c.VTime() != 0 {
			return fmt.Errorf("virtual time leaked while disabled")
		}
		return nil
	}, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeIdleWaitIsFree(t *testing.T) {
	// A rank blocked in Recv accrues no virtual time beyond the arrival.
	vt := VirtualTime{Alpha: 3}
	w, _ := NewWorld(2, WithVirtualTime(vt), WithDeadline(10*time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(50 * time.Millisecond) // real time, not virtual
			c.Send(1, 0, nil)
			return nil
		}
		m := c.Recv()
		if m.ArriveV != 3 || c.VTime() != 3 {
			return fmt.Errorf("vtime %g, want 3 (real waiting must not count)", c.VTime())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDrainTagStatsAccounting checks that dropped bundles still count as
// received traffic: DrainTag is a receive-and-discard, not a rollback, so the
// global sent/received balance holds after a drain.
func TestDrainTagStatsAccounting(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		other := 1 - c.Rank()
		c.Send(other, 5, make([]byte, 40)) // dropped from the mailbox
		c.Send(other, 7, make([]byte, 8))  // stashed by Alltoallv, then dropped
		chunks := make([][]byte, 2)
		chunks[other] = []byte{1}
		c.Alltoallv(9, chunks) // forces both pending messages into the stash
		if n := c.DrainTag(5); n != 1 {
			return fmt.Errorf("drained %d tag-5, want 1", n)
		}
		if n := c.DrainTag(7); n != 1 {
			return fmt.Errorf("drained %d tag-7, want 1", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalStats()
	if total.SentMsgs != total.RecvMsgs {
		t.Fatalf("message imbalance after drains: %v", total)
	}
	if total.SentBytes != total.RecvBytes {
		t.Fatalf("byte imbalance after drains: %v", total)
	}
}

// TestDrainTagStatsMailboxPath drains messages straight from the mailbox
// (never stashed) and checks the same accounting.
func TestDrainTagStatsMailboxPath(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		other := 1 - c.Rank()
		for i := 0; i < 3; i++ {
			c.Send(other, 5, make([]byte, 10))
		}
		c.Barrier()
		if n := c.DrainTag(5); n != 3 {
			return fmt.Errorf("drained %d, want 3", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalStats()
	if total.SentMsgs != 6 || total.RecvMsgs != 6 || total.SentBytes != 60 || total.RecvBytes != 60 {
		t.Fatalf("stats %v, want 6 msgs / 60 B each way", total)
	}
}

// TestDeadlineReportsStuckRanks checks the watchdog names exactly the ranks
// that were still running.
func TestDeadlineReportsStuckRanks(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 1 || c.Rank() == 3 {
			c.Recv() // nobody ever sends
		}
		return nil
	}, WithDeadline(200*time.Millisecond))
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "[1 3]") {
		t.Fatalf("error does not name ranks 1 and 3: %v", err)
	}
}

// TestDeadlineReportsFirstFailure checks that when one rank fails and the
// rest consequently hang, the watchdog surfaces the root-cause error.
func TestDeadlineReportsFirstFailure(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("rank 0 exploded")
		}
		c.Recv() // waits forever: rank 0 died before sending
		return nil
	}, WithDeadline(200*time.Millisecond))
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "rank 0 exploded") {
		t.Fatalf("error does not carry the first failure: %v", err)
	}
	if !strings.Contains(err.Error(), "[1]") {
		t.Fatalf("error does not name the stuck rank: %v", err)
	}
}

// TestWorldRunTwiceFails checks the reuse guard: mailboxes and barriers are
// in their post-run state, so a second Run must be refused, not misbehave.
func TestWorldRunTwiceFails(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) error { return nil }); err == nil {
		t.Fatal("second Run succeeded; want an error")
	}
}

// TestNegativeTagReserved checks that user sends cannot collide with the
// runtime's reserved internal tags.
func TestNegativeTagReserved(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, -1, nil)
		}
		return nil
	}, WithDeadline(5*time.Second))
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("negative-tag send not rejected: %v", err)
	}
}

// TestBundlerRecycleReuses checks the free-list: a recycled inbound buffer
// backs a later outbound bundle instead of a fresh allocation.
func TestBundlerRecycleReuses(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		b := NewBundler(c, 3, 8, 64)
		donated := make([]byte, 0, 128)
		b.Recycle(donated[:0])
		rec := make([]byte, 8)
		b.Add(0, rec) // self-destined; must reuse the donated array
		if len(b.bufs[0]) != 8 || cap(b.bufs[0]) != 128 {
			return fmt.Errorf("buffer len %d cap %d; donated array not reused", len(b.bufs[0]), cap(b.bufs[0]))
		}
		b.Recycle(make([]byte, 4)) // below record size: must be ignored
		if len(b.free) != 0 {
			return fmt.Errorf("undersized buffer kept on free list")
		}
		b.Flush()
		m := c.Recv()
		if len(m.Data) != 8 {
			return fmt.Errorf("bundle of %d bytes", len(m.Data))
		}
		return nil
	}, WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}
