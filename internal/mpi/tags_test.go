package mpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestFamilyOf(t *testing.T) {
	cases := []struct {
		tag  int
		want TagFamily
	}{
		{-1, FamilyRuntime},
		{-4, FamilyRuntime},
		{0, FamilyUser},
		{42, FamilyUser},
		{99, FamilyUser},
		{TagMatchBase, FamilyMatch},
		{TagMatchBase + 9, FamilyMatch},
		{TagBMatchProposeBase, FamilyBMatchPropose},
		{TagBMatchReplyBase, FamilyBMatchReply},
		{TagBMatchReplyBase + 9, FamilyBMatchReply},
		{130, FamilyUser},
		{TagColorBase, FamilyColor},
		{TagColorEnd - 1, FamilyColor},
		{TagColorEnd, FamilyUser},
	}
	for _, c := range cases {
		if got := FamilyOf(c.tag); got != c.want {
			t.Errorf("FamilyOf(%d) = %v, want %v", c.tag, got, c.want)
		}
	}
	// Every family must have a distinct, stable name — the metric suffixes and
	// the live-snapshot JSON both key on it.
	seen := map[string]bool{}
	for _, f := range TagFamilies() {
		name := f.String()
		if name == "" || seen[name] {
			t.Errorf("family %d name %q empty or duplicated", f, name)
		}
		seen[name] = true
	}
}

// TestFamilySumsMatchAggregates drives traffic across several tag families on
// the inproc backend and checks, rank by rank, that the family breakdown sums
// exactly to the aggregate counters.
func TestFamilySumsMatchAggregates(t *testing.T) {
	const p = 3
	w, err := NewWorld(p, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % p
		c.Send(next, TagMatchBase, make([]byte, 3))
		c.Send(next, TagColorBase+7, make([]byte, 5))
		c.Send(next, 42, make([]byte, 7)) // plain user tag
		for i := 0; i < 3; i++ {
			c.Recv()
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		s := w.RankStats(r)
		got := s.UserFamilyTotals()
		want := FamilyStats{SentMsgs: s.SentMsgs, SentBytes: s.SentBytes, RecvMsgs: s.RecvMsgs, RecvBytes: s.RecvBytes}
		if got != want {
			t.Errorf("rank %d: family totals %+v != aggregates %+v", r, got, want)
		}
		for f, fwant := range map[TagFamily]FamilyStats{
			FamilyMatch: {SentMsgs: 1, SentBytes: 3, RecvMsgs: 1, RecvBytes: 3},
			FamilyColor: {SentMsgs: 1, SentBytes: 5, RecvMsgs: 1, RecvBytes: 5},
			FamilyUser:  {SentMsgs: 1, SentBytes: 7, RecvMsgs: 1, RecvBytes: 7},
			// inproc collectives are shared-memory: no runtime wire traffic.
			FamilyRuntime: {},
		} {
			if s.ByFamily[f] != fwant {
				t.Errorf("rank %d family %v: %+v, want %+v", r, f, s.ByFamily[f], fwant)
			}
		}
	}
}

// TestPublishedFamilyStatsMatchTotals: the per-family vecs the world publishes
// into the registry must reconcile with the ByFamily counters, and families
// that saw no traffic must not be published at all.
func TestPublishedFamilyStatsMatchTotals(t *testing.T) {
	const p = 2
	o := obs.NewObserver(p, 64)
	w, err := NewWorld(p, WithObserver(o), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		c.Send((c.Rank()+1)%p, TagMatchBase+1, make([]byte, 4))
		c.Recv()
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Registry().Snapshot()
	total := w.TotalStats()
	sum := func(name string) int64 {
		var s int64
		for _, v := range snap.PerRank[name] {
			s += v
		}
		return s
	}
	fam := total.ByFamily[FamilyMatch]
	for name, want := range map[string]int64{
		"mpi.sent_msgs.match":  fam.SentMsgs,
		"mpi.sent_bytes.match": fam.SentBytes,
		"mpi.recv_msgs.match":  fam.RecvMsgs,
		"mpi.recv_bytes.match": fam.RecvBytes,
	} {
		if got := sum(name); got != want || want == 0 {
			t.Errorf("%s = %d, want %d (nonzero)", name, got, want)
		}
	}
	for _, quiet := range []string{"mpi.sent_msgs.color", "mpi.sent_msgs.user", "mpi.sent_msgs.runtime"} {
		if _, ok := snap.PerRank[quiet]; ok {
			t.Errorf("zero-traffic family published: %s", quiet)
		}
	}
}

// TestTCPDrainTagLeavesStashedRuntime pins the DrainTag/stash contract when
// reserved-tag runtime messages are interleaved with user traffic over a real
// wire: TryRecv stashes the peers' barrier messages while surfacing the user
// message, a subsequent DrainTag must not discard those stashed runtime
// messages, and the rank's own Barrier then completes by consuming them.
func TestTCPDrainTagLeavesStashedRuntime(t *testing.T) {
	const n = 3
	runOverTCP(t, n, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			c.Send(0, 5, []byte("payload"))
			c.Barrier()
		case 2:
			c.Barrier()
		case 0:
			// Spin on TryRecv until the user message has surfaced AND both
			// peers' barrier messages (tag -1) have been popped into the
			// stash — the peers are blocked in Barrier waiting for rank 0,
			// so both conditions are guaranteed to become true.
			gotUser := false
			for !gotUser || len(c.stash) < n-1 {
				m, ok := c.TryRecv()
				if !ok {
					continue
				}
				if m.Tag != 5 || m.From != 1 || gotUser {
					return fmt.Errorf("unexpected message tag %d from %d", m.Tag, m.From)
				}
				gotUser = true
			}
			for _, m := range c.stash {
				if m.Tag != tagBarrier {
					return fmt.Errorf("stash holds tag %d, want only %d", m.Tag, tagBarrier)
				}
			}
			if dropped := c.DrainTag(5); dropped != 0 {
				return fmt.Errorf("DrainTag dropped %d, want 0 (message already received)", dropped)
			}
			if len(c.stash) != n-1 {
				return fmt.Errorf("DrainTag discarded stashed runtime messages: %d left, want %d", len(c.stash), n-1)
			}
			c.Barrier() // completes only if the stashed barrier messages survived
		}
		return nil
	})
}

// TestTCPDrainTagStashedUserDuringBarrier covers the complementary
// interleaving: a user message sent before the peer's Barrier is popped and
// stashed by the barrier's own tagged receive, and DrainTag then removes it
// from the stash — exactly once, with no double counting — while the runtime
// traffic it crossed paths with stays out of the aggregates.
func TestTCPDrainTagStashedUserDuringBarrier(t *testing.T) {
	worlds := runOverTCP(t, 2, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			c.Send(0, 5, []byte("stale"))
			c.Barrier()
			c.Send(0, 6, []byte("fresh"))
		case 0:
			// The remote barrier pops rank 1's queue looking for tag -1 and
			// stashes the tag-5 message it finds first (per-pair FIFO).
			c.Barrier()
			if len(c.stash) != 1 || c.stash[0].Tag != 5 {
				t.Errorf("after barrier stash = %+v, want one tag-5 message", c.stash)
			}
			m := c.recvTagged(6)
			if string(m.Data) != "fresh" {
				return fmt.Errorf("tag 6 payload %q", m.Data)
			}
			if dropped := c.DrainTag(5); dropped != 1 {
				return fmt.Errorf("DrainTag dropped %d, want 1 (the stashed stale message)", dropped)
			}
			if len(c.stash) != 0 {
				return fmt.Errorf("stash not empty after drain: %+v", c.stash)
			}
		}
		return nil
	})
	// Rank 0 received exactly two user messages (one stashed-then-drained, one
	// delivered); the barrier's reserved traffic is metered only in the
	// runtime family.
	s := worlds[0].RankStats(0)
	if s.RecvMsgs != 2 {
		t.Errorf("rank 0 RecvMsgs = %d, want 2 (no double counting through stash+drain)", s.RecvMsgs)
	}
	if got, want := s.UserFamilyTotals(), (FamilyStats{RecvMsgs: s.RecvMsgs, RecvBytes: s.RecvBytes, SentMsgs: s.SentMsgs, SentBytes: s.SentBytes}); got != want {
		t.Errorf("rank 0 family totals %+v != aggregates %+v", got, want)
	}
	if rt := s.ByFamily[FamilyRuntime]; rt.RecvMsgs == 0 {
		t.Errorf("rank 0 runtime family saw no barrier traffic: %+v", rt)
	}
}
