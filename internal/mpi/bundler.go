package mpi

import (
	"fmt"

	"repro/internal/obs"
)

// Bundler implements the paper's central communication optimization:
// "aggressive message bundling, where messages sent between the same pair of
// processors are grouped as often as possible" (Section 1). Algorithm-level
// records destined for the same rank accumulate in a per-destination buffer
// and ship as one runtime message when the algorithm flushes (or when a
// buffer reaches MaxBytes). The receiving side iterates the fixed-size
// records of a bundle with Records.
//
// With bundling disabled (MaxBytes = 1 record), every record travels alone —
// the configuration the ablation benchmarks compare against.
//
// Buffer ownership: a flushed buffer is owned by the receiver (Send's
// contract), so the sender drops its reference and starts the next bundle
// from scratch. To avoid steady-state allocation, a rank that has fully
// consumed an inbound bundle may hand the backing array back via Recycle;
// Add then reuses it for a future outbound bundle. This is safe precisely
// because the receiver owns the delivered slice — recycling something the
// runtime still references is impossible by construction. (Over a wire
// transport the payload is copied into a frame at Send time and inbound
// payloads are fresh per-frame allocations, so the same contract holds.)
type Bundler struct {
	c          *Comm
	tag        int
	recordSize int
	maxBytes   int
	bufs       [][]byte
	free       [][]byte // recycled buffers, reused by Add for new bundles
	// Flushes counts runtime messages actually sent, for ablation reporting.
	Flushes int64
	// Records counts algorithm-level records added.
	Records int64

	// Registry instruments (nil when the world runs without an observer).
	// The family-suffixed pair attributes bundle activity to the tag family
	// of the bundler's tag (mpi.bundle_flushes.match, ...), alongside the
	// aggregate counters shared by all bundlers.
	flushCtr     *obs.Counter
	recordCtr    *obs.Counter
	famFlushCtr  *obs.Counter
	famRecordCtr *obs.Counter
	sizeHist     *obs.Histogram // bundle payload bytes at flush time
}

// NewBundler creates a bundler for fixed-size records on the given tag.
// maxBytes caps the per-destination buffer; 0 selects 64 KiB, the
// "infrequent, large messages" regime of the paper. Setting maxBytes to
// recordSize disables aggregation.
func NewBundler(c *Comm, tag, recordSize, maxBytes int) *Bundler {
	if recordSize <= 0 {
		panic("mpi: non-positive record size")
	}
	if maxBytes == 0 {
		maxBytes = 64 << 10
	}
	if maxBytes < recordSize {
		maxBytes = recordSize
	}
	b := &Bundler{
		c:          c,
		tag:        tag,
		recordSize: recordSize,
		maxBytes:   maxBytes,
		bufs:       make([][]byte, c.Size()),
	}
	if reg := c.Metrics(); reg != nil {
		fam := FamilyOf(tag).String()
		b.flushCtr = reg.Counter("mpi.bundle_flushes")
		b.recordCtr = reg.Counter("mpi.bundle_records")
		b.famFlushCtr = reg.Counter("mpi.bundle_flushes." + fam)
		b.famRecordCtr = reg.Counter("mpi.bundle_records." + fam)
		b.sizeHist = reg.Histogram("mpi.bundle_bytes", obs.ExpBounds(16, 128<<10))
	}
	return b
}

// Add appends one record destined for rank to, shipping the buffer if it is
// full. rec must be exactly recordSize bytes.
func (b *Bundler) Add(to int, rec []byte) {
	if len(rec) != b.recordSize {
		panic(fmt.Sprintf("mpi: record size %d, want %d", len(rec), b.recordSize))
	}
	b.Records++
	b.recordCtr.Inc()
	b.famRecordCtr.Inc()
	if b.bufs[to] == nil {
		if n := len(b.free); n > 0 {
			b.bufs[to] = b.free[n-1]
			b.free = b.free[:n-1]
		}
	}
	b.bufs[to] = append(b.bufs[to], rec...)
	if len(b.bufs[to])+b.recordSize > b.maxBytes {
		b.flushOne(to)
	}
}

// Recycle donates a fully consumed inbound bundle's backing array to the
// free list. The caller must not touch buf afterwards; only buffers it owns
// (i.e. payloads delivered to this rank) may be recycled. Tiny buffers are
// not worth keeping.
func (b *Bundler) Recycle(buf []byte) {
	if cap(buf) >= b.recordSize {
		b.free = append(b.free, buf[:0])
	}
}

// Flush ships every non-empty buffer.
func (b *Bundler) Flush() {
	for to := range b.bufs {
		if len(b.bufs[to]) > 0 {
			b.flushOne(to)
		}
	}
}

func (b *Bundler) flushOne(to int) {
	buf := b.bufs[to]
	b.bufs[to] = nil
	b.c.Send(to, b.tag, buf)
	b.Flushes++
	b.flushCtr.Inc()
	b.famFlushCtr.Inc()
	b.sizeHist.Observe(int64(len(buf)))
}

// Pending reports whether any record is buffered but unsent.
func (b *Bundler) Pending() bool {
	for _, buf := range b.bufs {
		if len(buf) > 0 {
			return true
		}
	}
	return false
}

// Records splits a received bundle back into fixed-size records. The
// returned slices alias data.
func Records(data []byte, recordSize int) [][]byte {
	if len(data)%recordSize != 0 {
		panic(fmt.Sprintf("mpi: bundle of %d bytes is not a multiple of record size %d", len(data), recordSize))
	}
	out := make([][]byte, 0, len(data)/recordSize)
	for off := 0; off < len(data); off += recordSize {
		out = append(out, data[off:off+recordSize])
	}
	return out
}
