package mpi

// Message-tag space and tag families.
//
// The runtime's tag-space contract (documented in docs/PROTOCOL.md) is:
//
//   - Non-negative tags belong to user code. Comm.Send rejects negative tags,
//     so user and runtime traffic can never collide.
//   - Negative tags are reserved for the runtime's own over-the-wire
//     collectives (see collectives in remote.go).
//
// Within the user space the algorithms of this repository carve out fixed
// ranges, one per protocol phase, so that every byte on the wire can be
// attributed to the phase that produced it:
//
//	[100,110)  matching bundles (REQUEST / SUCCEEDED / FAILED records)
//	[110,120)  b-suitor proposals
//	[120,130)  b-suitor replies (accept / reject)
//	[200,300)  color notices (FIAB / FIAC / NEW variants share the range)
//
// Every tag maps to exactly one TagFamily via FamilyOf; traffic counters are
// kept both in aggregate and per family (see Stats), and the per-family
// counters of the user families sum exactly to the aggregate — the runtime
// family meters reserved-tag traffic that the aggregate deliberately
// excludes, so that algorithm message counts stay identical across transport
// backends.
const (
	// TagMatchBase is the first tag of the matching-bundle range.
	TagMatchBase = 100
	// TagBMatchProposeBase is the first tag of the b-suitor proposal range.
	TagBMatchProposeBase = 110
	// TagBMatchReplyBase is the first tag of the b-suitor reply range.
	TagBMatchReplyBase = 120
	// TagColorBase is the first tag of the color-notice range.
	TagColorBase = 200
	// TagColorEnd is one past the last color-notice tag.
	TagColorEnd = 300
)

// TagFamily names one protocol phase of the wire traffic. Families partition
// the whole tag space: every message, user or runtime, belongs to exactly
// one.
type TagFamily int

const (
	// FamilyMatch is the matching protocol's bundle traffic: REQUEST,
	// SUCCEEDED and FAILED records aggregated per destination (tag 100).
	FamilyMatch TagFamily = iota
	// FamilyBMatchPropose is the distributed b-suitor's proposal traffic.
	FamilyBMatchPropose
	// FamilyBMatchReply is the distributed b-suitor's accept/reject traffic.
	FamilyBMatchReply
	// FamilyColor is the coloring framework's color-notice traffic, shared
	// by the FIAB, FIAC and NEW communication variants (tag 200).
	FamilyColor
	// FamilyUser is any other non-negative tag: application traffic outside
	// the ranges the built-in algorithms reserve.
	FamilyUser
	// FamilyRuntime is the reserved negative-tag traffic: the over-the-wire
	// barrier, allreduce and allgather of remote transports. It is metered
	// here but excluded from the aggregate Stats counters, so algorithm
	// message counts are identical across backends.
	FamilyRuntime
	// NumTagFamilies is the number of tag families (array sizing).
	NumTagFamilies
)

var tagFamilyNames = [NumTagFamilies]string{
	FamilyMatch:         "match",
	FamilyBMatchPropose: "bmatch.propose",
	FamilyBMatchReply:   "bmatch.reply",
	FamilyColor:         "color",
	FamilyUser:          "user",
	FamilyRuntime:       "runtime",
}

// String returns the family's stable name, used as a metric-name suffix
// (mpi.sent_bytes.match) and in the live per-tag traffic views.
func (f TagFamily) String() string {
	if f < 0 || f >= NumTagFamilies {
		return "invalid"
	}
	return tagFamilyNames[f]
}

// FamilyOf classifies a message tag into its family. The mapping is total:
// every int maps to exactly one family.
func FamilyOf(tag int) TagFamily {
	switch {
	case tag < 0:
		return FamilyRuntime
	case tag >= TagMatchBase && tag < TagBMatchProposeBase:
		return FamilyMatch
	case tag >= TagBMatchProposeBase && tag < TagBMatchReplyBase:
		return FamilyBMatchPropose
	case tag >= TagBMatchReplyBase && tag < TagBMatchReplyBase+10:
		return FamilyBMatchReply
	case tag >= TagColorBase && tag < TagColorEnd:
		return FamilyColor
	default:
		return FamilyUser
	}
}

// TagFamilies lists every family in declaration order, for renderers that
// iterate the whole breakdown.
func TagFamilies() []TagFamily {
	out := make([]TagFamily, NumTagFamilies)
	for i := range out {
		out[i] = TagFamily(i)
	}
	return out
}
