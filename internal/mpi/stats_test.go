package mpi

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatsLivePolling hammers RankStats/TotalStats from a monitor goroutine
// while the ranks are mid-run. Run under -race this is the regression test
// for the lock-free stats cells; it also checks monotonicity of what the
// monitor observes and exactness of the final totals.
func TestStatsLivePolling(t *testing.T) {
	const p = 4
	const rounds = 200
	w, err := NewWorld(p, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last Stats
		for !stop.Load() {
			cur := w.TotalStats()
			if cur.SentMsgs < last.SentMsgs || cur.SentBytes < last.SentBytes ||
				cur.RecvMsgs < last.RecvMsgs || cur.RecvBytes < last.RecvBytes {
				t.Error("live totals went backwards")
				return
			}
			last = cur
			for r := 0; r < p; r++ {
				_ = w.RankStats(r)
			}
		}
	}()
	err = w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % p
		for i := 0; i < rounds; i++ {
			c.Send(next, 1, []byte{byte(i)})
			m := c.Recv()
			if m.Tag != 1 {
				return nil
			}
		}
		c.Barrier()
		return nil
	})
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalStats()
	if total.SentMsgs != p*rounds || total.RecvMsgs != p*rounds {
		t.Errorf("totals %+v, want %d msgs each way", total, p*rounds)
	}
	if total.SentBytes != p*rounds || total.RecvBytes != p*rounds {
		t.Errorf("byte totals %+v, want %d each way", total, p*rounds)
	}
}

// TestPublishedStatsMatchTotals: the registry counters the world publishes at
// the end of Run must reconcile exactly with TotalStats — the invariant the
// trace/metrics exports advertise.
func TestPublishedStatsMatchTotals(t *testing.T) {
	const p = 3
	o := obs.NewObserver(p, 64)
	w, err := NewWorld(p, WithObserver(o), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		c.Send((c.Rank()+1)%p, 7, make([]byte, 10+c.Rank()))
		c.Barrier()
		c.DrainTag(7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Registry().Snapshot()
	total := w.TotalStats()
	sum := func(name string) int64 {
		var s int64
		for _, v := range snap.PerRank[name] {
			s += v
		}
		return s
	}
	if got := sum("mpi.sent_msgs"); got != total.SentMsgs {
		t.Errorf("mpi.sent_msgs=%d, TotalStats.SentMsgs=%d", got, total.SentMsgs)
	}
	if got := sum("mpi.sent_bytes"); got != total.SentBytes {
		t.Errorf("mpi.sent_bytes=%d, TotalStats.SentBytes=%d", got, total.SentBytes)
	}
	if got := sum("mpi.recv_msgs"); got != total.RecvMsgs {
		t.Errorf("mpi.recv_msgs=%d, TotalStats.RecvMsgs=%d", got, total.RecvMsgs)
	}
	if got := sum("mpi.recv_bytes"); got != total.RecvBytes {
		t.Errorf("mpi.recv_bytes=%d, TotalStats.RecvBytes=%d", got, total.RecvBytes)
	}
	if got := snap.Gauges["mpi.world_size"]; got != p {
		t.Errorf("mpi.world_size=%d, want %d", got, p)
	}
}

// TestTracedWorldRecordsSpans: a world with an observer produces completed
// spans for code that uses the Comm tracer.
func TestTracedWorldRecordsSpans(t *testing.T) {
	const p = 2
	o := obs.NewObserver(p, 64)
	w, err := NewWorld(p, WithObserver(o), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		tok := c.Tracer().Begin("test.phase")
		c.Send((c.Rank()+1)%p, 3, []byte("abcd"))
		c.Barrier()
		c.DrainTag(3)
		c.Tracer().EndN(tok, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		spans := o.Tracer(r).Spans()
		if len(spans) != 1 || spans[0].Name != "test.phase" {
			t.Fatalf("rank %d spans: %+v", r, spans)
		}
		if spans[0].Msgs != 1 || spans[0].Bytes != 4 {
			t.Errorf("rank %d span traffic: msgs=%d bytes=%d, want 1/4", r, spans[0].Msgs, spans[0].Bytes)
		}
	}
}
