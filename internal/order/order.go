// Package order provides the vertex ordering techniques that the greedy
// coloring literature (Gebremedhin–Nguyen–Pothen–Patwary, "ColPack", cited as
// [8] in the paper) shows make first-fit coloring near-optimal in practice:
// largest-degree-first, smallest-degree-last, incidence degree, and
// saturation degree, plus natural and random baselines.
package order

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Ordering names a vertex ordering strategy.
type Ordering int

const (
	// Natural visits vertices in id order.
	Natural Ordering = iota
	// Random visits vertices in seeded random order.
	Random
	// LargestFirst visits vertices in non-increasing degree order.
	LargestFirst
	// SmallestLast repeatedly removes a minimum-degree vertex and colors in
	// reverse removal order; it colors any graph with at most 1+core-number
	// colors (2 colors on the paper's grid graphs).
	SmallestLast
	// IncidenceDegree greedily picks the vertex with the most already-ordered
	// neighbors, breaking ties by degree.
	IncidenceDegree
	// SaturationDegree (DSATUR) picks the vertex whose ordered neighbors use
	// the most distinct colors; computed here structurally, it reduces to
	// incidence degree with different tie-breaking and is provided for
	// completeness of the ColPack menu.
	SaturationDegree
)

// String returns the conventional name of the ordering.
func (o Ordering) String() string {
	switch o {
	case Natural:
		return "natural"
	case Random:
		return "random"
	case LargestFirst:
		return "largest-first"
	case SmallestLast:
		return "smallest-last"
	case IncidenceDegree:
		return "incidence-degree"
	case SaturationDegree:
		return "saturation-degree"
	}
	return fmt.Sprintf("ordering(%d)", int(o))
}

// ParseOrdering maps a name (as printed by String) back to an Ordering.
func ParseOrdering(s string) (Ordering, error) {
	for _, o := range []Ordering{Natural, Random, LargestFirst, SmallestLast, IncidenceDegree, SaturationDegree} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("order: unknown ordering %q", s)
}

// Compute returns a permutation of the vertices of g in the visit order of
// the strategy: result[i] is the i-th vertex to process. seed matters only
// for Random.
func Compute(g *graph.Graph, o Ordering, seed uint64) ([]graph.Vertex, error) {
	n := g.NumVertices()
	switch o {
	case Natural:
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = graph.Vertex(i)
		}
		return out, nil
	case Random:
		p := gen.NewRNG(seed).Perm(n)
		out := make([]graph.Vertex, n)
		for i, v := range p {
			out[i] = graph.Vertex(v)
		}
		return out, nil
	case LargestFirst:
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = graph.Vertex(i)
		}
		sort.SliceStable(out, func(i, j int) bool {
			return g.Degree(out[i]) > g.Degree(out[j])
		})
		return out, nil
	case SmallestLast:
		return smallestLast(g), nil
	case IncidenceDegree, SaturationDegree:
		return incidence(g, o == SaturationDegree), nil
	}
	return nil, fmt.Errorf("order: unknown ordering %d", int(o))
}

// smallestLast computes the smallest-degree-last order with a bucket queue in
// O(n + m).
func smallestLast(g *graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.Vertex(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]graph.Vertex, maxDeg+1)
	where := make([]int, n) // index of v within its bucket
	for v := 0; v < n; v++ {
		where[v] = len(buckets[deg[v]])
		buckets[deg[v]] = append(buckets[deg[v]], graph.Vertex(v))
	}
	removed := make([]bool, n)
	out := make([]graph.Vertex, n)
	cur := 0
	for i := n - 1; i >= 0; i-- {
		// The minimum non-empty bucket can only decrease by one per removal.
		if cur > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		removed[v] = true
		out[i] = v
		for _, u := range g.Neighbors(v) {
			if removed[u] {
				continue
			}
			d := deg[u]
			// Remove u from bucket d by swap-with-last.
			bu := buckets[d]
			last := bu[len(bu)-1]
			bu[where[u]] = last
			where[last] = where[u]
			buckets[d] = bu[:len(bu)-1]
			// Reinsert at d-1.
			deg[u] = d - 1
			where[u] = len(buckets[d-1])
			buckets[d-1] = append(buckets[d-1], u)
		}
	}
	return out
}

// incidence computes incidence-degree order (or its saturation variant):
// repeatedly pick the unordered vertex with the most ordered neighbors
// (saturation: weighting already-ordered neighbors once per distinct
// position class), tie-breaking by static degree then id.
func incidence(g *graph.Graph, saturation bool) []graph.Vertex {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	score := make([]int, n)
	done := make([]bool, n)
	out := make([]graph.Vertex, 0, n)
	// Bucket queue on score; scores only grow, bounded by degree <= n-1.
	maxDeg := g.MaxDegree()
	buckets := make([][]graph.Vertex, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[0] = append(buckets[0], graph.Vertex(v))
	}
	top := 0
	for len(out) < n {
		// Find the current best bucket; stale entries are skipped lazily.
		for top > 0 && len(buckets[top]) == 0 {
			top--
		}
		var v graph.Vertex = graph.None
		for b := top; b >= 0; b-- {
			for len(buckets[b]) > 0 {
				cand := buckets[b][len(buckets[b])-1]
				buckets[b] = buckets[b][:len(buckets[b])-1]
				if !done[cand] && score[cand] == b {
					v = cand
					break
				}
			}
			if v != graph.None {
				break
			}
		}
		if v == graph.None {
			// All remaining entries were stale; rebuild (cannot happen when
			// scores are maintained correctly, kept as a safety net).
			for u := 0; u < n; u++ {
				if !done[u] {
					v = graph.Vertex(u)
					break
				}
			}
		}
		done[v] = true
		out = append(out, v)
		for _, u := range g.Neighbors(v) {
			if done[u] {
				continue
			}
			bump := 1
			if saturation && score[u] > 0 {
				// Saturation counts distinct "colors"; structurally we
				// approximate by diminishing returns after first neighbor.
				bump = 0
				if score[u] < g.Degree(u) {
					bump = 1
				}
			}
			score[u] += bump
			if score[u] > maxDeg {
				score[u] = maxDeg
			}
			buckets[score[u]] = append(buckets[score[u]], u)
			if score[u] > top {
				top = score[u]
			}
		}
	}
	return out
}

// Validate checks that ord is a permutation of the vertices of g.
func Validate(g *graph.Graph, ord []graph.Vertex) error {
	n := g.NumVertices()
	if len(ord) != n {
		return fmt.Errorf("order: length %d, want %d", len(ord), n)
	}
	seen := make([]bool, n)
	for _, v := range ord {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("order: not a permutation at %d", v)
		}
		seen[v] = true
	}
	return nil
}
