package order

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func allOrderings() []Ordering {
	return []Ordering{Natural, Random, LargestFirst, SmallestLast, IncidenceDegree, SaturationDegree}
}

func TestAllOrderingsArePermutations(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 600, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range allOrderings() {
		ord, err := Compute(g, o, 9)
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if err := Validate(g, ord); err != nil {
			t.Fatalf("%v: %v", o, err)
		}
	}
}

func TestNaturalOrder(t *testing.T) {
	g, _ := gen.Grid2D(3, 3, false, 0)
	ord, err := Compute(g, Natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ord {
		if int(v) != i {
			t.Fatalf("natural order broken at %d: %d", i, v)
		}
	}
}

func TestLargestFirstMonotone(t *testing.T) {
	g, err := gen.RMAT(8, 8, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := Compute(g, LargestFirst, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ord); i++ {
		if g.Degree(ord[i-1]) < g.Degree(ord[i]) {
			t.Fatalf("degree increases at position %d", i)
		}
	}
}

func TestSmallestLastOnStar(t *testing.T) {
	// Star K1,5: the hub must be ordered first (removed last).
	edges := []graph.Edge{}
	for leaf := graph.Vertex(1); leaf <= 5; leaf++ {
		edges = append(edges, graph.Edge{U: 0, V: leaf, W: 1})
	}
	g, err := graph.BuildUndirected(6, edges, graph.DedupeFirst)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := Compute(g, SmallestLast, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves peel off first (removed first = ordered last); once four leaves
	// are gone the hub and the final leaf both have degree 1, so the hub must
	// land in one of the first two positions.
	if ord[0] != 0 && ord[1] != 0 {
		t.Fatalf("smallest-last order %v does not place hub 0 in first two positions", ord)
	}
}

func TestRandomOrderSeeded(t *testing.T) {
	g, _ := gen.Grid2D(8, 8, false, 0)
	a, _ := Compute(g, Random, 1)
	b, _ := Compute(g, Random, 1)
	c, _ := Compute(g, Random, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestParseOrderingRoundTrip(t *testing.T) {
	for _, o := range allOrderings() {
		got, err := ParseOrdering(o.String())
		if err != nil || got != o {
			t.Fatalf("round trip %v: got %v err %v", o, got, err)
		}
	}
	if _, err := ParseOrdering("bogus"); err == nil {
		t.Fatal("accepted bogus name")
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	g, _ := gen.Grid2D(2, 2, false, 0)
	if err := Validate(g, []graph.Vertex{0, 1, 2}); err == nil {
		t.Error("accepted short order")
	}
	if err := Validate(g, []graph.Vertex{0, 1, 2, 2}); err == nil {
		t.Error("accepted duplicate")
	}
	if err := Validate(g, []graph.Vertex{0, 1, 2, 9}); err == nil {
		t.Error("accepted out-of-range")
	}
}

func TestOrderingsOnEmptyAndSingleton(t *testing.T) {
	empty, _ := graph.BuildUndirected(0, nil, graph.DedupeFirst)
	single, _ := graph.BuildUndirected(1, nil, graph.DedupeFirst)
	for _, o := range allOrderings() {
		for _, g := range []*graph.Graph{empty, single} {
			ord, err := Compute(g, o, 0)
			if err != nil {
				t.Fatalf("%v on n=%d: %v", o, g.NumVertices(), err)
			}
			if err := Validate(g, ord); err != nil {
				t.Fatalf("%v on n=%d: %v", o, g.NumVertices(), err)
			}
		}
	}
}

// Property: every strategy yields a permutation on random graphs.
func TestQuickOrderingsPermute(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed uint64) bool {
		n := int(nRaw)%40 + 1
		m := int64(mRaw)
		g, err := gen.ErdosRenyi(n, m, false, seed)
		if err != nil {
			return false
		}
		for _, o := range allOrderings() {
			ord, err := Compute(g, o, seed)
			if err != nil || Validate(g, ord) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
