package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

// testGraph is a small deterministic graph shipped inline with test jobs.
func testGraph(t *testing.T) (*graph.Graph, string) {
	t.Helper()
	g, err := gen.ErdosRenyi(200, 600, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := graph.WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	return g, sb.String()
}

// startServer wires a server into an httptest listener. start=false leaves
// the worker pool idle, so admitted jobs sit in the queue — how the tests
// hold the queue full deterministically.
func startServer(t *testing.T, cfg service.Config, start bool) (*service.Server, *client.Client) {
	t.Helper()
	if cfg.Observer == nil {
		cfg.Observer = obs.NewObserver(0, 0)
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		srv.Start()
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return srv, client.New(ts.URL)
}

// waitMetric polls /metrics until the counter or gauge reaches want.
func waitMetric(t *testing.T, cl *client.Client, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := cl.Metrics(context.Background())
		if err == nil {
			if v, ok := m.Gauges[name]; ok && v >= want {
				return
			}
			if v, ok := m.Counters[name]; ok && v >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d", name, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	_, gtext := testGraph(t)
	srv, cl := startServer(t, service.Config{QueueLen: 1, Workers: 1}, false)

	// With no workers running, the first job parks in the queue and its
	// submitter blocks; the queue (capacity 1) is now full.
	firstDone := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext})
		firstDone <- err
	}()
	waitMetric(t, cl, "service.queue_depth", 1)

	_, err := cl.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Seed: 2})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("overflow submit: %v, want *client.APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", apiErr.Status)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatal("429 carried no Retry-After hint")
	}
	if !apiErr.Retryable() {
		t.Fatal("429 not classified retryable")
	}

	// Start the workers: the parked job must complete normally.
	srv.Start()
	if err := <-firstDone; err != nil {
		t.Fatalf("queued job failed after workers started: %v", err)
	}
}

func TestJobDeadlineExpiresQueued(t *testing.T) {
	_, gtext := testGraph(t)
	srv, cl := startServer(t, service.Config{QueueLen: 4, Workers: 1}, false)

	done := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), &service.Request{
			Algorithm: service.AlgoMatch, Graph: gtext, TimeoutMillis: 30,
		})
		done <- err
	}()
	waitMetric(t, cl, "service.queue_depth", 1)
	time.Sleep(60 * time.Millisecond) // let the job deadline fire while queued
	srv.Start()

	err := <-done
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("expired job: %v, want *client.APIError", err)
	}
	if apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", apiErr.Status)
	}
	if !strings.Contains(apiErr.Message, "deadline") {
		t.Fatalf("message %q does not mention the deadline", apiErr.Message)
	}
	waitMetric(t, cl, "service.jobs_timeout", 1)
}

func TestConcurrentJobsAllSucceed(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 64, Workers: 4}, true)

	const jobs = 16
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			algo := service.AlgoMatch
			if i%2 == 1 {
				algo = service.AlgoColor
			}
			_, _, err := cl.SubmitRetry(context.Background(), &service.Request{
				Algorithm: algo, Graph: gtext, Ranks: 4, Seed: uint64(1 + i%4),
			}, 10)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func TestGracefulDrain(t *testing.T) {
	_, gtext := testGraph(t)
	srv, cl := startServer(t, service.Config{QueueLen: 16, Workers: 2}, true)

	// A few jobs in flight while the drain begins.
	const jobs = 4
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Submit(context.Background(), &service.Request{
				Algorithm: service.AlgoColor, Graph: gtext, Seed: uint64(i + 1),
			})
		}(i)
	}
	waitMetric(t, cl, "service.jobs_submitted", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	// Every admitted job finished; drain never abandons accepted work. Jobs
	// that arrived after the drain flag flipped see a retryable 503 instead.
	var apiErr *client.APIError
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Errorf("in-flight job %d: %v", i, err)
		}
	}

	if err := cl.Health(context.Background()); err == nil {
		t.Fatal("healthz still ok while draining")
	} else if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %v", err)
	}
	_, err := cl.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext})
	if !errors.As(err, &apiErr) {
		t.Fatalf("submit while draining: %v", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || !apiErr.Retryable() || apiErr.RetryAfter <= 0 {
		t.Fatalf("drain rejection = %+v, want retryable 503 with Retry-After", apiErr)
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 8, Workers: 1}, true)
	req := &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 4, Seed: 3}

	first, err := cl.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission reported cached")
	}
	second, err := cl.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat submission missed the cache")
	}
	if second.JobID == first.JobID {
		t.Fatal("cached answer reused the producing job's id")
	}
	if second.Result != first.Result || second.Weight != first.Weight || second.Cardinality != first.Cardinality {
		t.Fatal("cached answer differs from the producing run")
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["service.cache_hits"] != 1 {
		t.Fatalf("cache_hits = %d, want 1", m.Counters["service.cache_hits"])
	}

	// no_cache bypasses the lookup but the params still identify the job.
	fresh := *req
	fresh.NoCache = true
	third, err := cl.Submit(context.Background(), &fresh)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("no_cache submission served from cache")
	}
	if third.Result != first.Result {
		t.Fatal("recomputed result differs — determinism broken")
	}

	// A different seed is a different job: miss.
	other := *req
	other.Seed = 4
	fourth, err := cl.Submit(context.Background(), &other)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Fatal("different params served from cache")
	}
}

func TestBadRequests(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 4, Workers: 1}, true)
	cases := []struct {
		name string
		req  service.Request
		want int
	}{
		{"unknown algorithm", service.Request{Algorithm: "sort", Graph: gtext}, http.StatusBadRequest},
		{"missing graph", service.Request{Algorithm: service.AlgoMatch}, http.StatusBadRequest},
		{"graph_path disabled", service.Request{Algorithm: service.AlgoMatch, GraphPath: "/etc/hosts"}, http.StatusBadRequest},
		{"ranks over bound", service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 1 << 20}, http.StatusBadRequest},
		{"malformed graph", service.Request{Algorithm: service.AlgoMatch, Graph: "not a graph\n"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := cl.Submit(context.Background(), &tc.req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != tc.want {
			t.Errorf("%s: %v, want status %d", tc.name, err, tc.want)
		}
	}

	// Wrong method.
	resp, err := http.Get(cl.Base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
}

// asTenant clones a client bound to a tenant id.
func asTenant(cl *client.Client, tenant string) *client.Client {
	c := *cl
	c.Tenant = tenant
	return &c
}

func TestTenantQueueIsolation(t *testing.T) {
	_, gtext := testGraph(t)
	srv, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		Policies: &service.TenantPolicies{Tenants: map[string]service.TenantPolicy{
			"hot": {MaxQueued: 1},
		}},
	}, false)

	// With no workers, hot's first job parks and fills its queue of 1.
	hot, bg := asTenant(cl, "hot"), asTenant(cl, "bg")
	parked := make(chan error, 2)
	go func() {
		_, err := hot.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext})
		parked <- err
	}()
	waitMetric(t, cl, "service.tenant.hot.queue_depth", 1)

	// hot overflows its own queue...
	_, err := hot.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Seed: 2})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("hot overflow: %v, want 429", err)
	}
	if !strings.Contains(apiErr.Message, `tenant "hot"`) || !strings.Contains(apiErr.Message, "queue full") {
		t.Fatalf("429 message %q does not name the tenant's full queue", apiErr.Message)
	}

	// ...while bg, under the same roof, still queues freely.
	go func() {
		_, err := bg.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Seed: 3})
		parked <- err
	}()
	waitMetric(t, cl, "service.tenant.bg.queue_depth", 1)

	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counters["service.tenant.hot.rejected_queue"]; got != 1 {
		t.Fatalf("hot rejected_queue = %d, want 1", got)
	}
	if got := m.Counters["service.tenant.bg.rejected"]; got != 0 {
		t.Fatalf("bg rejected = %d, want 0", got)
	}

	// Start the workers: both parked jobs complete and carry their tenants.
	srv.Start()
	for i := 0; i < 2; i++ {
		if err := <-parked; err != nil {
			t.Fatalf("parked job failed after workers started: %v", err)
		}
	}
}

func TestTenantRateLimit429(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		Policies: &service.TenantPolicies{Tenants: map[string]service.TenantPolicy{
			// One token, refilled over ~17 minutes: the second request is
			// deterministically over the limit however slow the test host.
			"slow": {RatePerSec: 0.001, Burst: 1},
		}},
	}, true)
	slow := asTenant(cl, "slow")

	if _, err := slow.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext}); err != nil {
		t.Fatalf("first (burst) submission: %v", err)
	}
	_, err := slow.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Seed: 2})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission: %v, want 429", err)
	}
	if !strings.Contains(apiErr.Message, "rate limit") {
		t.Fatalf("429 message %q does not mention the rate limit", apiErr.Message)
	}
	// Retry-After derives from the tenant's own bucket: 1 token at 0.001/s
	// is 1000 seconds, not the fixed queue-full hint.
	if apiErr.RetryAfter < 2*time.Second {
		t.Fatalf("Retry-After = %v, want the bucket-derived wait", apiErr.RetryAfter)
	}

	// The default tenant is not rate-limited by slow's bucket.
	if _, err := cl.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext}); err != nil {
		t.Fatalf("default-tenant submission: %v", err)
	}

	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counters["service.tenant.slow.rejected_rate"]; got != 1 {
		t.Fatalf("slow rejected_rate = %d, want 1", got)
	}
}

func TestInvalidTenantHeader400(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 4, Workers: 1}, true)
	bad := asTenant(cl, "no spaces allowed")
	_, err := bad.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("invalid tenant header: %v, want 400", err)
	}
}

func TestResponseCarriesTenant(t *testing.T) {
	_, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{QueueLen: 8, Workers: 1}, true)
	req := &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Seed: 9}

	alice := asTenant(cl, "alice")
	first, err := alice.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tenant != "alice" {
		t.Fatalf("computed response tenant = %q, want alice", first.Tenant)
	}
	// A cache hit serves any tenant, stamped with the hitter's own id.
	bob := asTenant(cl, "bob")
	second, err := bob.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Tenant != "bob" {
		t.Fatalf("cached response = (cached %v, tenant %q), want (true, bob)", second.Cached, second.Tenant)
	}
	if second.Result != first.Result {
		t.Fatal("cross-tenant cache hit changed the result")
	}
}

// TestDrainFlipsAllTenants extends the PR-5 mutex-ordering regression to
// tenant queues: a drain racing concurrent multi-tenant submissions must
// leave every job either admitted (and finished by Drain) or rejected with
// 503 — never queued-but-unadmitted — and afterwards every tenant, known
// or new, is refused.
func TestDrainFlipsAllTenants(t *testing.T) {
	_, gtext := testGraph(t)
	srv, cl := startServer(t, service.Config{
		QueueLen: 32, Workers: 2,
		Policies: &service.TenantPolicies{Tenants: map[string]service.TenantPolicy{
			"hot": {Weight: 1}, "bg": {Weight: 3},
		}},
	}, true)

	tenants := []string{"", "hot", "bg"}
	const jobs = 12
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := asTenant(cl, tenants[i%len(tenants)])
			_, errs[i] = c.Submit(context.Background(), &service.Request{
				Algorithm: service.AlgoColor, Graph: gtext, Seed: uint64(i + 1),
			})
		}(i)
	}
	waitMetric(t, cl, "service.jobs_submitted", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Drain returning proves no admitted job leaked past pending.Add in any
	// tenant's queue: Wait covers them all.
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	var apiErr *client.APIError
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Errorf("job %d (tenant %q): %v, want success or 503", i, tenants[i%len(tenants)], err)
		}
	}

	// Post-drain, submissions are refused for every tenant — existing
	// queues, the default, and names never seen before.
	for _, tenant := range []string{"", "hot", "bg", "brand-new"} {
		c := asTenant(cl, tenant)
		_, err := c.Submit(context.Background(), &service.Request{Algorithm: service.AlgoMatch, Graph: gtext})
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.RetryAfter <= 0 {
			t.Errorf("tenant %q post-drain: %v, want 503 with Retry-After", tenant, err)
		}
	}
	// Upload opens are refused too.
	if _, err := cl.UploadOpen(context.Background(), 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("upload open post-drain: %v, want 503", err)
	}
}

func TestTenantUploadBudgets(t *testing.T) {
	_, cl := startServer(t, service.Config{
		QueueLen: 8, Workers: 1,
		Policies: &service.TenantPolicies{Tenants: map[string]service.TenantPolicy{
			"up":   {MaxUploads: 1},
			"slow": {RatePerSec: 0.001, Burst: 1},
		}},
	}, true)
	up := asTenant(cl, "up")

	st, err := up.UploadOpen(context.Background(), 0)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	_, err = up.UploadOpen(context.Background(), 0)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("open beyond upload cap: %v, want 429", err)
	}
	if !strings.Contains(apiErr.Message, "upload cap") {
		t.Fatalf("429 message %q does not mention the upload cap", apiErr.Message)
	}

	// Aborting the session releases the budget slot (the settle path).
	if err := up.UploadAbort(context.Background(), st.UploadID); err != nil {
		t.Fatalf("abort: %v", err)
	}
	st2, err := up.UploadOpen(context.Background(), 0)
	if err != nil {
		t.Fatalf("open after abort: %v", err)
	}
	up.UploadAbort(context.Background(), st2.UploadID) //nolint:errcheck // cleanup

	// Upload opens consume the same rate bucket as jobs.
	slow := asTenant(cl, "slow")
	if _, err := slow.UploadOpen(context.Background(), 0); err != nil {
		t.Fatalf("slow tenant first open: %v", err)
	}
	_, err = slow.UploadOpen(context.Background(), 0)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("slow tenant second open: %v, want rate-limit 429", err)
	}
	if apiErr.RetryAfter < 2*time.Second {
		t.Fatalf("Retry-After = %v, want the bucket-derived wait", apiErr.RetryAfter)
	}
}

func TestMetricsEndpointStable(t *testing.T) {
	_, cl := startServer(t, service.Config{}, true)
	read := func() string {
		resp, err := http.Get(cl.Base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	if a, b := read(), read(); a != b {
		t.Fatal("idle /metrics scrapes not byte-stable")
	}
}
