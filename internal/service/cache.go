package service

import (
	"container/list"
	"sync"
)

// resultCache is a mutex-guarded LRU over completed job responses, keyed by
// Request.cacheKey — (graph fingerprint, algorithm, result-relevant
// params). Entries store the Response template by value; get returns a
// copy, so cached answers can be stamped with a fresh job id without racing
// other hits.
//
// Capacity is an entry count, not bytes: a result's dominant cost is the
// text serialization, which is proportional to the graph the caller already
// shipped inline, so a small entry bound keeps memory proportional to
// recent traffic.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	// fps counts live entries per graph fingerprint — the index the upload
	// short-circuit probes: a fingerprint with any cached result is one the
	// daemon can answer for without the graph bytes.
	fps map[string]int
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key string
	val Response
}

// newResultCache builds a cache holding up to cap entries; cap <= 0
// disables caching (every lookup misses, every store is dropped).
func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, ll: list.New(), m: make(map[string]*list.Element), fps: make(map[string]int)}
}

// hasFingerprint reports whether any cached result was computed over the
// graph with this fingerprint.
func (c *resultCache) hasFingerprint(fp string) bool {
	if c.cap <= 0 || fp == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fps[fp] > 0
}

// get returns a copy of the cached response and marks the entry recently
// used.
func (c *resultCache) get(key string) (Response, bool) {
	if c.cap <= 0 {
		return Response{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return Response{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores (or refreshes) a response, evicting the least recently used
// entry beyond capacity. Returns the number of evictions (0 or 1).
func (c *resultCache) put(key string, val Response) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return 0
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.fps[val.Fingerprint]++
	if c.ll.Len() <= c.cap {
		return 0
	}
	last := c.ll.Back()
	c.ll.Remove(last)
	ent := last.Value.(*cacheEntry)
	delete(c.m, ent.key)
	if c.fps[ent.val.Fingerprint]--; c.fps[ent.val.Fingerprint] <= 0 {
		delete(c.fps, ent.val.Fingerprint)
	}
	return 1
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
