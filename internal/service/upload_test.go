package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/service/ingest"
)

// uploadChunkSize splits the test graph's DMGB encoding into enough chunks
// to exercise ordering, retry, and resume (the acceptance bar is ≥ 4).
const uploadChunkSize = 2048

func encodeDMGB(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	enc, err := graph.EncodeDMGB(g)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestUploadedGraphMatchesInlineResult is the acceptance gate of the
// streaming-ingest path: a graph uploaded in ≥ 4 chunks — one chunk
// retried, and the transfer resumed after a simulated disconnect — must
// produce a job result byte-identical to the same job with the graph sent
// inline as JSON text.
func TestUploadedGraphMatchesInlineResult(t *testing.T) {
	g, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 2}, true)
	ctx := context.Background()
	enc := encodeDMGB(t, g)
	total := (len(enc) + uploadChunkSize - 1) / uploadChunkSize
	if total < 4 {
		t.Fatalf("test graph encodes to %d chunks, need >= 4", total)
	}

	// The upload runs first — an inline job of the same graph would warm the
	// content-addressed store and short-circuit the transfer we are here to
	// exercise chunk by chunk.
	// Chunked upload with a mid-transfer "disconnect": send the first half,
	// drop the client state, then resume from the server-reported ranges.
	st, err := cl.UploadOpen(ctx, uploadChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	id := st.UploadID
	half := total / 2
	for idx := 0; idx < half; idx++ {
		end := (idx + 1) * uploadChunkSize
		if end > len(enc) {
			end = len(enc)
		}
		if _, _, err := cl.UploadChunk(ctx, id, idx, enc[idx*uploadChunkSize:end], 3); err != nil {
			t.Fatalf("chunk %d: %v", idx, err)
		}
	}
	// One chunk retried: replay a chunk that already arrived (idempotent).
	if _, _, err := cl.UploadChunk(ctx, id, 1, enc[uploadChunkSize:2*uploadChunkSize], 3); err != nil {
		t.Fatalf("retried chunk: %v", err)
	}
	waitMetric(t, cl, "ingest.chunks_replayed", 1)

	// Resume after the disconnect: a fresh driver learns what arrived from
	// the status answer and sends only the remainder.
	stats := &client.UploadStats{}
	ref, err := cl.UploadResume(ctx, id, enc, client.UploadOptions{}, stats)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if ref != graph.Fingerprint(g) {
		t.Fatalf("graph_ref %s is not the graph fingerprint", ref)
	}
	if stats.ChunksSent >= total {
		t.Fatalf("resume re-sent everything: %d chunks of %d total", stats.ChunksSent, total)
	}

	// The by-ref job must answer byte-identically to an inline submission
	// of the same graph.
	inlineReq := &service.Request{Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2, Seed: 3, NoCache: true}
	inline, err := cl.Submit(ctx, inlineReq)
	if err != nil {
		t.Fatal(err)
	}
	refReq := &service.Request{Algorithm: service.AlgoMatch, GraphRef: ref, Ranks: 2, Seed: 3, NoCache: true}
	byRef, err := cl.Submit(ctx, refReq)
	if err != nil {
		t.Fatal(err)
	}
	if byRef.Result != inline.Result {
		t.Fatal("uploaded-graph job result differs from the inline-graph result")
	}
	if byRef.Fingerprint != inline.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", byRef.Fingerprint, inline.Fingerprint)
	}
	if byRef.Weight != inline.Weight || byRef.Cardinality != inline.Cardinality {
		t.Fatal("matching quality differs between the inline and by-ref paths")
	}
}

// TestSecondUploadShortCircuits asserts the content-addressed fast path: a
// second upload of a graph the daemon already holds settles after its first
// chunk, with the rest of the transfer never sent.
func TestSecondUploadShortCircuits(t *testing.T) {
	g, _ := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	ctx := context.Background()
	enc := encodeDMGB(t, g)

	ref, first, err := cl.Upload(ctx, enc, client.UploadOptions{ChunkBytes: uploadChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if first.ShortCircuit {
		t.Fatal("first upload short-circuited against an empty store")
	}
	totalChunks := (len(enc) + uploadChunkSize - 1) / uploadChunkSize

	ref2, second, err := cl.Upload(ctx, enc, client.UploadOptions{ChunkBytes: uploadChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if !second.ShortCircuit {
		t.Fatal("second upload of known content did not short-circuit")
	}
	if ref2 != ref {
		t.Fatalf("short-circuit ref %s != original %s", ref2, ref)
	}
	if second.ChunksSent >= totalChunks {
		t.Fatalf("short-circuit still sent %d of %d chunks", second.ChunksSent, totalChunks)
	}
	if second.ChunksSent != 1 {
		t.Fatalf("short-circuit after %d chunks, want 1", second.ChunksSent)
	}
	waitMetric(t, cl, "ingest.short_circuits", 1)
}

// TestUploadShortCircuitsOnCachedResult exercises the other Known source:
// an inline job warms the result cache (and the store), after which an
// upload of the same graph short-circuits.
func TestUploadShortCircuitsOnCachedResult(t *testing.T) {
	g, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	ctx := context.Background()
	if _, err := cl.Submit(ctx, &service.Request{Algorithm: service.AlgoColor, Graph: gtext, Ranks: 2}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := cl.Upload(ctx, encodeDMGB(t, g), client.UploadOptions{ChunkBytes: uploadChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ShortCircuit {
		t.Fatal("upload after an inline job of the same graph did not short-circuit")
	}
}

// TestUploadFaultInjectionRetries drives the load generator's fault mode
// end to end: every faulted chunk is retried and the upload still lands.
func TestUploadFaultInjectionRetries(t *testing.T) {
	g, _ := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	ref, stats, err := cl.UploadGraph(context.Background(), g, client.UploadOptions{
		ChunkBytes: uploadChunkSize,
		FaultEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref != graph.Fingerprint(g) {
		t.Fatalf("graph_ref %s after faulted upload", ref)
	}
	if stats.ChunksRetried == 0 {
		t.Fatal("fault injection produced no retries")
	}
}

func TestGraphRefUnknownAnswers404(t *testing.T) {
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	_, err := cl.Submit(context.Background(), &service.Request{
		Algorithm: service.AlgoMatch,
		GraphRef:  "deadbeef",
		Ranks:     2,
	})
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("unknown graph_ref: %v", err)
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown graph_ref status %d, want 404", apiErr.Status)
	}
}

// TestPartitionCacheWarm asserts jobs over the same stored graph at equal
// partitioning parameters partition once: the second job hits the warm
// partition cache even though its algorithm parameters (and so its result
// cache key) differ.
func TestPartitionCacheWarm(t *testing.T) {
	g, _ := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	ctx := context.Background()
	ref, _, err := cl.UploadGraph(ctx, g, client.UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := service.Request{GraphRef: ref, Ranks: 2, Seed: 5}

	match := base
	match.Algorithm = service.AlgoMatch
	if _, err := cl.Submit(ctx, &match); err != nil {
		t.Fatal(err)
	}
	color := base
	color.Algorithm = service.AlgoColor
	if _, err := cl.Submit(ctx, &color); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["service.partition_cache_hits"] == 0 {
		t.Fatal("second job over the same graph did not hit the partition cache")
	}
	if m.Counters["service.partition_cache_misses"] != 1 {
		t.Fatalf("partition_cache_misses = %d, want 1", m.Counters["service.partition_cache_misses"])
	}
}

// TestUploadSessionExpiryOverHTTP walks the TTL path through the HTTP
// surface: an abandoned session 404s after expiry and a new one succeeds.
func TestUploadSessionExpiryOverHTTP(t *testing.T) {
	g, _ := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1, UploadTTL: 50 * time.Millisecond}, true)
	ctx := context.Background()
	enc := encodeDMGB(t, g)
	st, err := cl.UploadOpen(ctx, uploadChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.UploadChunk(ctx, st.UploadID, 0, enc[:uploadChunkSize], 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = cl.UploadStatus(ctx, st.UploadID)
		if apiErr, ok := err.(*client.APIError); ok && apiErr.Status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never expired: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The client recovers by uploading afresh.
	if _, _, err := cl.Upload(ctx, enc, client.UploadOptions{ChunkBytes: uploadChunkSize}); err != nil {
		t.Fatalf("re-upload after expiry: %v", err)
	}
}

// TestUploadLegacyFormatsAccepted uploads the text and legacy-binary
// encodings through the chunked path; both decode (no short-circuit —
// neither carries a declared fingerprint) and answer jobs by ref.
func TestUploadLegacyFormatsAccepted(t *testing.T) {
	g, gtext := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	ctx := context.Background()
	var bin bytes.Buffer
	if err := graph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	for name, enc := range map[string][]byte{"text": []byte(gtext), "binary": bin.Bytes()} {
		ref, stats, err := cl.Upload(ctx, enc, client.UploadOptions{ChunkBytes: 1024})
		if err != nil {
			t.Fatalf("%s upload: %v", name, err)
		}
		if ref != graph.Fingerprint(g) {
			t.Fatalf("%s upload ref %s", name, ref)
		}
		if stats.ShortCircuit && name == "text" {
			t.Fatal("text upload cannot short-circuit (no declared fingerprint)")
		}
		if _, err := cl.Submit(ctx, &service.Request{Algorithm: service.AlgoMatch, GraphRef: ref, Ranks: 2, NoCache: true}); err != nil {
			t.Fatalf("%s by-ref job: %v", name, err)
		}
	}
}

// TestUploadStatusHTTPShape pins the §7 wire shape: ranges, next_missing,
// and the early fingerprint on a partially-uploaded DMGB session.
func TestUploadStatusHTTPShape(t *testing.T) {
	g, _ := testGraph(t)
	_, cl := startServer(t, service.Config{Workers: 1}, true)
	ctx := context.Background()
	enc := encodeDMGB(t, g)
	st, err := cl.UploadOpen(ctx, uploadChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks 0 and 2: a hole at 1.
	for _, idx := range []int{0, 2} {
		if _, _, err := cl.UploadChunk(ctx, st.UploadID, idx, enc[idx*uploadChunkSize:(idx+1)*uploadChunkSize], 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.UploadStatus(ctx, st.UploadID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != ingest.StateUploading {
		t.Fatalf("state %s", got.State)
	}
	if got.NextMissing != 1 {
		t.Fatalf("next_missing %d, want 1", got.NextMissing)
	}
	want := fmt.Sprintf("%v", [][2]int{{0, 1}, {2, 3}})
	if fmt.Sprintf("%v", got.ReceivedRanges) != want {
		t.Fatalf("ranges %v, want %s", got.ReceivedRanges, want)
	}
	if got.Fingerprint != graph.Fingerprint(g) {
		t.Fatal("DMGB session does not expose the declared fingerprint before completion")
	}
}
