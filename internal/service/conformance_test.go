package service_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/dmgm"
	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/service"
)

// TestServiceMatchesCLI is the service↔CLI conformance gate: a job submitted
// over HTTP must produce byte-identical output to what dmgm-match/dmgm-color
// write for the same graph and parameters. The reference below is the CLI
// execution path verbatim — same partitioner dispatch, same dmgm entry
// points on a fresh world, same text serializers — minus flag parsing.
func TestServiceMatchesCLI(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 900, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := graph.WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	gtext := sb.String()

	_, cl := startServer(t, service.Config{QueueLen: 8, Workers: 2}, true)

	const ranks = 4
	const seed = 5
	part, err := partition.Multilevel(g, ranks, partition.MultilevelOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	freshWorld := func() *mpi.World {
		w, err := mpi.NewWorld(ranks, mpi.WithDeadline(10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	t.Run("match", func(t *testing.T) {
		for _, noBundle := range []bool{false, true} {
			resp, err := cl.Submit(context.Background(), &service.Request{
				Algorithm: service.AlgoMatch, Graph: gtext, Ranks: ranks, Seed: seed, NoBundle: noBundle,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := dmgm.MatchParallelOptions{}
			if noBundle {
				opt.BundleBytes = 17
			}
			res, err := dmgm.MatchParallelWorld(freshWorld(), g, part, opt)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if err := matching.WriteMates(&want, res.Mates); err != nil {
				t.Fatal(err)
			}
			if resp.Result != want.String() {
				t.Fatalf("no_bundle=%v: service result diverges from the CLI serialization", noBundle)
			}
			if resp.Weight != res.Weight || resp.Cardinality != res.Mates.Cardinality() {
				t.Fatalf("no_bundle=%v: summary fields diverge: service (%g, %d) vs CLI (%g, %d)",
					noBundle, resp.Weight, resp.Cardinality, res.Weight, res.Mates.Cardinality())
			}
			// Traffic counts are scheduling-dependent (a rank that receives
			// early answers fewer requests), so only their presence is
			// asserted — the result itself is what must agree exactly.
			if resp.Messages == 0 || resp.Bytes == 0 {
				t.Fatalf("no_bundle=%v: service reported no traffic (%d msgs, %d B)", noBundle, resp.Messages, resp.Bytes)
			}
		}
	})

	t.Run("color", func(t *testing.T) {
		for _, distance2 := range []bool{false, true} {
			resp, err := cl.Submit(context.Background(), &service.Request{
				Algorithm: service.AlgoColor, Graph: gtext, Ranks: ranks, Seed: seed,
				Superstep: 100, Distance2: distance2,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := dmgm.ColorParallelOptions{SuperstepSize: 100, Seed: seed, CommMode: dmgm.CommNeighbors}
			var res *dmgm.ColorParallelResult
			if distance2 {
				res, err = dmgm.ColorParallelDistance2World(freshWorld(), g, part, opt)
			} else {
				res, err = dmgm.ColorParallelWorld(freshWorld(), g, part, opt)
			}
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if err := coloring.WriteColors(&want, res.Colors); err != nil {
				t.Fatal(err)
			}
			if resp.Result != want.String() {
				t.Fatalf("distance2=%v: service result diverges from the CLI serialization", distance2)
			}
			if resp.Colors != res.NumColors || resp.Rounds != res.Rounds {
				t.Fatalf("distance2=%v: summary fields diverge: service (%d colors, %d rounds) vs CLI (%d, %d)",
					distance2, resp.Colors, resp.Rounds, res.NumColors, res.Rounds)
			}
		}
	})
}
