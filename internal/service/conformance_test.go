package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/dmgm"
	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/service/ingest"
)

// TestServiceMatchesCLI is the service↔CLI conformance gate: a job submitted
// over HTTP must produce byte-identical output to what dmgm-match/dmgm-color
// write for the same graph and parameters. The reference below is the CLI
// execution path verbatim — same partitioner dispatch, same dmgm entry
// points on a fresh world, same text serializers — minus flag parsing.
func TestServiceMatchesCLI(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 900, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := graph.WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	gtext := sb.String()

	_, cl := startServer(t, service.Config{QueueLen: 8, Workers: 2}, true)

	const ranks = 4
	const seed = 5
	part, err := partition.Multilevel(g, ranks, partition.MultilevelOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	freshWorld := func() *mpi.World {
		w, err := mpi.NewWorld(ranks, mpi.WithDeadline(10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	t.Run("match", func(t *testing.T) {
		for _, noBundle := range []bool{false, true} {
			resp, err := cl.Submit(context.Background(), &service.Request{
				Algorithm: service.AlgoMatch, Graph: gtext, Ranks: ranks, Seed: seed, NoBundle: noBundle,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := dmgm.MatchParallelOptions{}
			if noBundle {
				opt.BundleBytes = 17
			}
			res, err := dmgm.MatchParallelWorld(freshWorld(), g, part, opt)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if err := matching.WriteMates(&want, res.Mates); err != nil {
				t.Fatal(err)
			}
			if resp.Result != want.String() {
				t.Fatalf("no_bundle=%v: service result diverges from the CLI serialization", noBundle)
			}
			if resp.Weight != res.Weight || resp.Cardinality != res.Mates.Cardinality() {
				t.Fatalf("no_bundle=%v: summary fields diverge: service (%g, %d) vs CLI (%g, %d)",
					noBundle, resp.Weight, resp.Cardinality, res.Weight, res.Mates.Cardinality())
			}
			// Traffic counts are scheduling-dependent (a rank that receives
			// early answers fewer requests), so only their presence is
			// asserted — the result itself is what must agree exactly.
			if resp.Messages == 0 || resp.Bytes == 0 {
				t.Fatalf("no_bundle=%v: service reported no traffic (%d msgs, %d B)", noBundle, resp.Messages, resp.Bytes)
			}
		}
	})

	t.Run("color", func(t *testing.T) {
		for _, distance2 := range []bool{false, true} {
			resp, err := cl.Submit(context.Background(), &service.Request{
				Algorithm: service.AlgoColor, Graph: gtext, Ranks: ranks, Seed: seed,
				Superstep: 100, Distance2: distance2,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := dmgm.ColorParallelOptions{SuperstepSize: 100, Seed: seed, CommMode: dmgm.CommNeighbors}
			var res *dmgm.ColorParallelResult
			if distance2 {
				res, err = dmgm.ColorParallelDistance2World(freshWorld(), g, part, opt)
			} else {
				res, err = dmgm.ColorParallelWorld(freshWorld(), g, part, opt)
			}
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if err := coloring.WriteColors(&want, res.Colors); err != nil {
				t.Fatal(err)
			}
			if resp.Result != want.String() {
				t.Fatalf("distance2=%v: service result diverges from the CLI serialization", distance2)
			}
			if resp.Colors != res.NumColors || resp.Rounds != res.Rounds {
				t.Fatalf("distance2=%v: summary fields diverge: service (%d colors, %d rounds) vs CLI (%d, %d)",
					distance2, resp.Colors, resp.Rounds, res.NumColors, res.Rounds)
			}
		}
	})
}

// TestRestartConformance is the persistence gate (docs/PROTOCOL.md §7): a
// graph uploaded in chunks to a daemon with a store directory must remain
// addressable by its graph_ref after the daemon dies and a new one starts on
// the same directory — with byte-identical job results and zero re-uploaded
// chunks. The first daemon is simply abandoned mid-steady-state, never
// drained: deposits are durable at upload completion (temp-file + rename +
// sync), not at shutdown, which is exactly what a SIGKILL exercises.
func TestRestartConformance(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.ErdosRenyi(800, 3200, true, 13)
	if err != nil {
		t.Fatal(err)
	}
	fp := graph.Fingerprint(g)

	_, cl1 := startServer(t, service.Config{Workers: 2, StoreDir: dir}, true)
	ref, stats, err := cl1.UploadGraph(context.Background(), g, client.UploadOptions{ChunkBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if ref != fp {
		t.Fatalf("graph_ref %s, want the fingerprint %s", ref, fp)
	}
	if stats.ChunksSent < 4 {
		t.Fatalf("upload went in %d chunks, want >=4 (grow the graph or shrink the chunks)", stats.ChunksSent)
	}
	req := &service.Request{Algorithm: service.AlgoMatch, GraphRef: ref, Ranks: 2, Seed: 5}
	before, err := cl1.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// The "restarted" daemon: a second server on the same directory, while
	// the first is abandoned un-drained.
	_, cl2 := startServer(t, service.Config{Workers: 2, StoreDir: dir}, true)
	after, err := cl2.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("graph_ref did not survive the restart: %v", err)
	}
	if after.Result != before.Result {
		t.Fatal("restarted daemon produced a different result for the same ref and parameters")
	}
	if after.Weight != before.Weight || after.Cardinality != before.Cardinality {
		t.Fatalf("summary fields diverge across restart: (%g, %d) vs (%g, %d)",
			after.Weight, after.Cardinality, before.Weight, before.Cardinality)
	}
	m, err := cl2.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["ingest.spill_rehydrations"] < 1 {
		t.Fatal("restarted daemon answered the ref without rehydrating from disk — where did the graph come from?")
	}

	// Re-uploading the same graph moves zero payload: chunk 0 alone reveals
	// the fingerprint the disk index already knows.
	_, stats2, err := cl2.UploadGraph(context.Background(), g, client.UploadOptions{ChunkBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.ShortCircuit || stats2.ChunksSent != 1 {
		t.Fatalf("re-upload after restart: short_circuit=%v chunks=%d, want a 1-chunk short circuit",
			stats2.ShortCircuit, stats2.ChunksSent)
	}
}

// TestHealthzStoreSection asserts the operator surface of the spill tier:
// /healthz carries a store section with both tiers' occupancy, present even
// without a store directory (spill fields then omitted).
func TestHealthzStoreSection(t *testing.T) {
	dir := t.TempDir()
	_, cl := startServer(t, service.Config{Workers: 1, StoreDir: dir}, true)
	_, gtext := testGraph(t)
	if _, err := cl.Submit(context.Background(), &service.Request{
		Algorithm: service.AlgoMatch, Graph: gtext, Ranks: 2,
	}); err != nil {
		t.Fatal(err)
	}

	rec := struct {
		Store ingest.StoreStats `json:"store"`
	}{}
	resp, err := http.Get(cl.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Store.Entries != 1 || rec.Store.Bytes <= 0 {
		t.Fatalf("store section: %+v, want the one deposited graph accounted", rec.Store)
	}
	if rec.Store.SpillDir != dir || rec.Store.SpillFiles != 1 || rec.Store.SpillBytes <= 0 {
		t.Fatalf("spill section: %+v, want one spill file under %s", rec.Store, dir)
	}
	if rec.Store.SpillBudget <= 0 {
		t.Fatalf("spill budget %d, want the configured default", rec.Store.SpillBudget)
	}
}
