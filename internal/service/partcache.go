package service

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/partition"
)

// partCache is the warm partition cache: partitions keyed by everything that
// determines them — (graph fingerprint, partitioner, ranks, seed) — held LRU
// by entry count. Partitioning dominates small-job latency (the multilevel
// partitioner costs more than a matching run on the same graph), and with
// the content-addressed store keeping graphs resident across jobs, repeat
// jobs over the same graph at different algorithm parameters would otherwise
// re-partition identically every time.
//
// Cached *partition.Partition values are shared across concurrent jobs
// without copying: every consumer (dgraph.Distribute and the verifiers)
// treats a partition as read-only, building per-rank local structures from
// it rather than mutating it.
type partCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type partEntry struct {
	key  string
	part *partition.Partition
}

// newPartCache builds a cache holding up to cap partitions; cap <= 0
// disables it.
func newPartCache(cap int) *partCache {
	return &partCache{cap: cap, ll: list.New(), m: make(map[string]*list.Element)}
}

// partitionKey identifies a partition by its full derivation.
func partitionKey(fp, partitioner string, ranks int, seed uint64) string {
	return fmt.Sprintf("%s|%s|p%d|s%d", fp, partitioner, ranks, seed)
}

func (c *partCache) get(key string) (*partition.Partition, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*partEntry).part, true
}

// put stores a partition; returns the number of evictions (0 or 1).
func (c *partCache) put(key string, p *partition.Partition) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return 0 // same key ⇒ same derivation ⇒ same partition
	}
	c.m[key] = c.ll.PushFront(&partEntry{key: key, part: p})
	if c.ll.Len() <= c.cap {
		return 0
	}
	last := c.ll.Back()
	c.ll.Remove(last)
	delete(c.m, last.Value.(*partEntry).key)
	return 1
}

func (c *partCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
