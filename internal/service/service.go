package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/dmgm"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/service/ingest"
)

// Config sizes one Server. The zero value is usable: every field has a
// production-sane default.
type Config struct {
	// QueueLen bounds the admission queue; a submission arriving with the
	// queue full is shed with 429 + Retry-After (default 32).
	QueueLen int
	// Workers is the number of jobs executed concurrently (default 2).
	// Each worker drives one mpi world of Request.Ranks goroutine ranks, so
	// the process runs up to Workers×Ranks rank goroutines at peak.
	Workers int
	// DefaultTimeout caps a job's queue wait plus run time; requests may
	// shorten it per job, never extend it (default 2 minutes).
	DefaultTimeout time.Duration
	// WorldDeadline is the watchdog on pooled worlds — the backstop against
	// a wedged algorithm outliving every job deadline (default 10 minutes).
	WorldDeadline time.Duration
	// CacheEntries bounds the LRU result cache (default 128; negative
	// disables caching).
	CacheEntries int
	// MaxRanks bounds Request.Ranks (default 64).
	MaxRanks int
	// MaxBodyBytes bounds a request body, inline graph included
	// (default 256 MiB).
	MaxBodyBytes int64
	// AllowGraphPaths permits graph_path requests, which read daemon-local
	// files. Leave false for anything but a trusted-caller deployment.
	AllowGraphPaths bool
	// StoreBytes bounds the content-addressed graph store (default 512 MiB).
	StoreBytes int64
	// PartitionCacheEntries bounds the warm partition cache (default 64;
	// negative disables it).
	PartitionCacheEntries int
	// UploadTTL expires idle upload sessions (default 2 minutes).
	UploadTTL time.Duration
	// MaxUploadBytes bounds one upload session (default 1 GiB).
	MaxUploadBytes int64
	// MaxUploadSessions bounds concurrently open upload sessions
	// (default 64).
	MaxUploadSessions int
	// Policies carries the per-tenant admission budgets (weights, rate
	// limits, queue/concurrency/upload bounds — docs/PROTOCOL.md §8). nil
	// applies the permissive default policy to every tenant: weight 1, no
	// rate limit, queue bound QueueLen. Replaceable at runtime with
	// SetPolicies.
	Policies *TenantPolicies
	// MaxTenants bounds the distinct tenant queues the scheduler tracks
	// (default 64). Callers beyond the bound share the default tenant's
	// queue and budgets, so an attacker inventing header values cannot grow
	// server state without bound.
	MaxTenants int
	// Observer collects service metrics and per-job spans; nil runs with
	// metrics disabled (every instrument is a nil no-op).
	Observer *obs.Observer
}

func (c *Config) fillDefaults() {
	if c.QueueLen == 0 {
		c.QueueLen = 32
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.WorldDeadline <= 0 {
		c.WorldDeadline = 10 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.MaxRanks == 0 {
		c.MaxRanks = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.StoreBytes == 0 {
		c.StoreBytes = 512 << 20
	}
	if c.PartitionCacheEntries == 0 {
		c.PartitionCacheEntries = 64
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
}

// job is one admitted submission moving through its tenant's queue.
type job struct {
	id     string
	tenant string
	tq     *tenantQueue
	req    *Request
	g      *graph.Graph
	fp     string
	key    string
	ctx    context.Context
	done   chan struct{} // closed exactly once, after resp/status are set

	resp   *Response
	status int
	errMsg string
}

// finish publishes the job's outcome and releases its waiter.
func (j *job) finish(status int, resp *Response, errMsg string) {
	j.status = status
	j.resp = resp
	j.errMsg = errMsg
	close(j.done)
}

// Server is the dmgm job service: per-tenant admission queues dispatched by
// a weighted deficit-round-robin scheduler in front of a fixed worker pool,
// a World pool underneath, and an LRU result cache in front of everything.
// Create with NewServer, expose Handler over HTTP, call Start, and
// Drain+Stop on the way out. All exported methods are safe for concurrent
// use once NewServer returns.
type Server struct {
	cfg    Config
	obsr   *obs.Observer
	pool   *worldPool
	cache  *resultCache
	store  *ingest.Store
	ingest *ingest.Manager
	parts  *partCache
	sched  *tenantSched

	stopOnce sync.Once
	draining atomic.Bool
	admitMu  sync.Mutex     // orders admissions against the drain flag flip
	workers  sync.WaitGroup // worker goroutines
	pending  sync.WaitGroup // admitted, unfinished jobs

	nextID atomic.Int64

	// spanMu serializes per-job span recording: the driver tracer is a
	// single-goroutine structure and the workers are not.
	spanMu sync.Mutex

	// Instruments (nil-safe no-ops without an observer).
	submitted   *obs.Counter
	completed   *obs.Counter
	failed      *obs.Counter
	rejected    *obs.Counter
	drainRejs   *obs.Counter
	timeouts    *obs.Counter
	hits        *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	partHits    *obs.Counter
	partMisses  *obs.Counter
	partEvicts  *obs.Counter
	queueDepth  *obs.Gauge
	inflight    *obs.Gauge
	cacheGauge  *obs.Gauge
	idleWorlds  *obs.Gauge
	drainGauge  *obs.Gauge
	latencyHist *obs.Histogram
}

// NewServer builds a server from cfg. Call Start before serving traffic.
func NewServer(cfg Config) *Server {
	cfg.fillDefaults()
	reg := cfg.Observer.Registry()
	s := &Server{
		cfg:   cfg,
		obsr:  cfg.Observer,
		pool:  newWorldPool(cfg.WorldDeadline, cfg.Workers*2, reg),
		cache: newResultCache(cfg.CacheEntries),
		store: ingest.NewStore(cfg.StoreBytes, reg),
		parts: newPartCache(cfg.PartitionCacheEntries),
		sched: newTenantSched(cfg.Policies, cfg.QueueLen, cfg.MaxTenants, reg),

		submitted:   reg.Counter("service.jobs_submitted"),
		completed:   reg.Counter("service.jobs_completed"),
		failed:      reg.Counter("service.jobs_failed"),
		rejected:    reg.Counter("service.jobs_rejected"),
		drainRejs:   reg.Counter("service.jobs_rejected_draining"),
		timeouts:    reg.Counter("service.jobs_timeout"),
		hits:        reg.Counter("service.cache_hits"),
		misses:      reg.Counter("service.cache_misses"),
		evictions:   reg.Counter("service.cache_evictions"),
		partHits:    reg.Counter("service.partition_cache_hits"),
		partMisses:  reg.Counter("service.partition_cache_misses"),
		partEvicts:  reg.Counter("service.partition_cache_evictions"),
		queueDepth:  reg.Gauge("service.queue_depth"),
		inflight:    reg.Gauge("service.inflight"),
		cacheGauge:  reg.Gauge("service.cache_entries"),
		idleWorlds:  reg.Gauge("service.pool_idle"),
		drainGauge:  reg.Gauge("service.draining"),
		latencyHist: reg.Histogram("service.job_latency_ms", obs.ExpBounds(1, 1<<22)),
	}
	reg.Gauge("service.queue_cap").Set(int64(cfg.QueueLen))
	reg.Gauge("service.workers").Set(int64(cfg.Workers))
	s.ingest = ingest.NewManager(ingest.Config{
		TTL:         cfg.UploadTTL,
		MaxSessions: cfg.MaxUploadSessions,
		MaxBytes:    cfg.MaxUploadBytes,
		Store:       s.store,
		// Fingerprints with a cached result are answerable without the
		// graph bytes, so uploads of them short-circuit too.
		Known: s.cache.hasFingerprint,
		// Uploads pass the same per-tenant admission as jobs: one rate
		// token per session open, counted against the tenant's upload cap.
		Admit:    s.admitUpload,
		Registry: reg,
	})
	return s
}

// SetPolicies replaces the per-tenant admission policies at runtime — the
// dmgm-serve SIGHUP reload path. Existing queues are re-bound in place:
// queued jobs stay queued, token-bucket levels carry over clamped to the
// new burst. Safe to call concurrently with traffic; nil resets every
// tenant to the permissive default policy.
func (s *Server) SetPolicies(p *TenantPolicies) {
	s.sched.setPolicies(p)
}

// admitUpload gates one upload-session open against the caller's tenant
// budgets (docs/PROTOCOL.md §8): draining refuses with 503, the open
// consumes one rate token, and the session occupies one slot of the
// tenant's upload cap until it settles. The returned release func gives the
// slot back; ingest calls it exactly once when the session leaves the
// uploading state.
func (s *Server) admitUpload(r *http.Request) (func(), *ingest.ChunkError) {
	tenant, ok := tenantFrom(r)
	if !ok {
		return nil, &ingest.ChunkError{Code: http.StatusBadRequest,
			Msg: fmt.Sprintf("invalid %s header %q: want %s", TenantHeader, r.Header.Get(TenantHeader), tenantNameRe)}
	}
	if s.draining.Load() {
		s.drainRejs.Inc()
		return nil, &ingest.ChunkError{Code: http.StatusServiceUnavailable,
			RetryAfter: retryAfterSeconds, Msg: "draining: not accepting uploads"}
	}
	tq := s.sched.tenantFor(tenant)
	if secs, ok := s.sched.takeToken(tq); !ok {
		tq.upRejected.Inc()
		return nil, &ingest.ChunkError{Code: http.StatusTooManyRequests, RetryAfter: secs,
			Msg: fmt.Sprintf("tenant %q over its rate limit: retry in %ds", tenant, secs)}
	}
	if !s.sched.addUpload(tq) {
		tq.upRejected.Inc()
		return nil, &ingest.ChunkError{Code: http.StatusTooManyRequests, RetryAfter: retryAfterSeconds,
			Msg: fmt.Sprintf("tenant %q is at its %d-session upload cap: finish or abort one", tenant, tq.pol.MaxUploads)}
	}
	return func() { s.sched.dropUpload(tq) }, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop()
	}
}

// Drain stops admitting new jobs (submissions answer 503, health answers
// draining) and waits for every admitted job — queued or running — to
// finish, or for ctx to expire. It does not stop the workers; call Stop
// afterwards.
func (s *Server) Drain(ctx context.Context) error {
	// The admission lock orders the flag flip after every in-flight
	// admission's pending.Add — Wait never races a late Add.
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	s.drainGauge.Set(1)
	done := make(chan struct{})
	go func() { s.pending.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Stop terminates the worker pool. Safe to call more than once; jobs still
// queued are abandoned (their waiters time out via job deadlines), so
// Drain first for a graceful exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { s.sched.stop() })
	s.workers.Wait()
	s.ingest.Stop()
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP surface:
//
//	POST   /v1/jobs                      submit a job, wait for its result
//	POST   /v1/uploads                   open a chunked upload session
//	PUT    /v1/uploads/{id}/chunks/{n}   send one chunk (idempotent)
//	GET    /v1/uploads/{id}              session status (resume point)
//	POST   /v1/uploads/{id}/complete     finalize, obtain the graph_ref
//	DELETE /v1/uploads/{id}              abort a session
//	GET    /healthz                      liveness ("ok", or 503 "draining")
//	GET    /metrics                      the metrics registry, canonical JSON
//	GET    /snapshot                     obs.LiveSnapshot (metrics only)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleSubmit)
	s.ingest.RegisterRoutes(mux)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// LiveSnapshot adapts the service registry to the obs live-polling shape,
// so `dmgm-trace -watch` and the -http pipeline work against a daemon too.
func (s *Server) LiveSnapshot() *obs.LiveSnapshot {
	s.refreshGauges()
	return &obs.LiveSnapshot{
		CapturedUnixNanos: time.Now().UnixNano(),
		Metrics:           s.obsr.Registry().Snapshot(),
	}
}

// refreshGauges recomputes the sampled gauges a scrape observes.
func (s *Server) refreshGauges() {
	s.queueDepth.Set(int64(s.sched.totalQueued()))
	s.cacheGauge.Set(int64(s.cache.len()))
	s.idleWorlds.Set(int64(s.pool.idle()))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.obsr.Registry().Snapshot().CanonicalJSONIndent()) //nolint:errcheck // best-effort scrape
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.LiveSnapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError answers with the JSON error shape of docs/PROTOCOL.md §6.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)}) //nolint:errcheck // response already committed
}

// retryAfterSeconds is the backpressure hint on queue-full 429 and
// draining 503 answers: queues turn over in job-latency units, so a short
// fixed hint keeps rejected clients closely packed behind the current burst
// without thundering back. Rate-limit 429s derive their hint from the
// tenant's own token bucket instead (tenantSched.takeToken).
const retryAfterSeconds = 1

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		s.drainRejs.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	tenant, ok := tenantFrom(r)
	if !ok {
		writeError(w, http.StatusBadRequest, "invalid %s header %q: want %s",
			TenantHeader, r.Header.Get(TenantHeader), tenantNameRe)
		return
	}
	tq := s.sched.tenantFor(tenant)
	s.submitted.Inc()
	tq.submitted.Inc()
	// The rate bucket gates ingress before any request work — a tenant over
	// its rate is shed before the body is even decoded, and the Retry-After
	// hint is when its own bucket next grants a token.
	if secs, ok := s.sched.takeToken(tq); !ok {
		s.rejected.Inc()
		tq.rejected.Inc()
		tq.rejRate.Inc()
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		writeError(w, http.StatusTooManyRequests, "tenant %q over its rate limit: retry in %ds", tenant, secs)
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if msg := req.normalize(s.cfg.MaxRanks); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	g, fp, status, err := s.loadGraph(&req)
	if err != nil {
		writeError(w, status, "loading graph: %v", err)
		return
	}
	key := req.cacheKey(fp)
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	if !req.NoCache {
		if resp, ok := s.cache.get(key); ok {
			s.hits.Inc()
			resp.JobID = id
			resp.Tenant = tenant
			resp.Cached = true
			s.respond(w, &resp)
			return
		}
	}
	s.misses.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), req.timeout(s.cfg.DefaultTimeout))
	defer cancel()
	j := &job{id: id, tenant: tenant, tq: tq, req: &req, g: g, fp: fp, key: key, ctx: ctx, done: make(chan struct{})}
	// Authoritative drain check: the early one above is a fast path, but a
	// drain beginning mid-request must still see either this job in pending
	// or this request rejected — never neither, for any tenant.
	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		s.drainRejs.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	s.pending.Add(1)
	s.admitMu.Unlock()
	if !s.sched.enqueue(tq, j) {
		s.pending.Done()
		s.rejected.Inc()
		tq.rejected.Inc()
		tq.rejQueue.Inc()
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q queue full (%d jobs queued): retry later", tenant, tq.pol.MaxQueued)
		return
	}
	tq.admitted.Inc()
	<-j.done
	if j.status != http.StatusOK {
		writeError(w, j.status, "%s", j.errMsg)
		return
	}
	s.respond(w, j.resp)
}

func (s *Server) respond(w http.ResponseWriter, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The header is already out; nothing to repair mid-stream.
		return
	}
}

// loadGraph resolves the request's graph — inline, by reference, or
// daemon-local — returning the graph, its fingerprint, and on failure the
// HTTP status to answer with.
func (s *Server) loadGraph(req *Request) (*graph.Graph, string, int, error) {
	switch {
	case req.Graph != "":
		g, err := graph.ReadText(strings.NewReader(req.Graph))
		if err != nil {
			return nil, "", http.StatusBadRequest, err
		}
		fp := graph.Fingerprint(g)
		// Inline graphs land in the store too, so the caller can switch to
		// graph_ref (the response fingerprint) and uploads of the same
		// content short-circuit.
		s.store.Put(fp, g)
		return g, fp, 0, nil
	case req.GraphRef != "":
		g, ok := s.store.Get(req.GraphRef)
		if !ok {
			return nil, "", http.StatusNotFound,
				fmt.Errorf("unknown graph_ref %s (never uploaded, or evicted): upload the graph again", req.GraphRef)
		}
		return g, req.GraphRef, 0, nil
	default:
		if !s.cfg.AllowGraphPaths {
			return nil, "", http.StatusBadRequest,
				fmt.Errorf("graph_path is disabled on this server; send the graph inline or upload it")
		}
		// Daemon-local files stream through the store: decoded at most once
		// per content version, shared across concurrent jobs.
		g, fp, err := s.store.LoadPath(req.GraphPath)
		if err != nil {
			return nil, "", http.StatusBadRequest, err
		}
		return g, fp, 0, nil
	}
}

// workerLoop pulls dispatched jobs until Stop. The scheduler charges the
// job's tenant a running slot on dispatch; the worker releases it when the
// job leaves the worker, finished or shed.
func (s *Server) workerLoop() {
	defer s.workers.Done()
	for {
		j, tq, ok := s.sched.next()
		if !ok {
			return
		}
		if err := j.ctx.Err(); err != nil {
			// Expired while queued: never ran, shed cheaply.
			s.finishTimeout(j)
		} else {
			s.execute(j)
		}
		s.sched.release(tq)
	}
}

// finishTimeout resolves a job whose deadline fired.
func (s *Server) finishTimeout(j *job) {
	s.timeouts.Inc()
	j.finish(http.StatusGatewayTimeout, nil, "job deadline exceeded")
	s.pending.Done()
}

// execResult carries a finished run out of its goroutine.
type execResult struct {
	resp *Response
	err  error
}

// execute runs one job on a pooled world, enforcing the job deadline. On
// timeout the job resolves immediately; the abandoned run keeps the world
// until it finishes (the algorithms terminate in bounded rounds, and the
// pool's watchdog deadline is the backstop), after which the world is reset
// and recycled — or discarded if its ranks are genuinely wedged.
func (s *Server) execute(j *job) {
	start := time.Now()
	w, err := s.pool.get(j.req.Ranks)
	if err != nil {
		s.failed.Inc()
		j.finish(http.StatusInternalServerError, nil, fmt.Sprintf("world: %v", err))
		s.pending.Done()
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	resCh := make(chan execResult, 1)
	go func() {
		resp, err := s.runJob(w, j)
		resCh <- execResult{resp, err}
	}()
	select {
	case r := <-resCh:
		s.pool.put(w)
		elapsed := time.Since(start)
		s.observeJob(j, start, elapsed)
		if r.err != nil {
			s.failed.Inc()
			j.finish(http.StatusInternalServerError, nil, fmt.Sprintf("executing %s: %v", j.req.Algorithm, r.err))
			s.pending.Done()
			return
		}
		r.resp.JobID = j.id
		r.resp.ElapsedSeconds = elapsed.Seconds()
		// The cached copy carries no tenant: a hit may serve any tenant,
		// which stamps its own id on its copy.
		s.evictions.Add(int64(s.cache.put(j.key, *r.resp)))
		r.resp.Tenant = j.tenant
		s.completed.Inc()
		j.tq.completed.Inc()
		s.latencyHist.Observe(elapsed.Milliseconds())
		j.tq.lat.Observe(elapsed.Milliseconds())
		j.finish(http.StatusOK, r.resp, "")
		s.pending.Done()
	case <-j.ctx.Done():
		s.finishTimeout(j)
		// Recycle (or discard) the world once the abandoned run returns.
		go func() {
			<-resCh
			s.pool.put(w)
		}()
	}
}

// observeJob records the per-job span on the driver tracer (serialized: the
// tracer is a single-goroutine structure).
func (s *Server) observeJob(j *job, start time.Time, elapsed time.Duration) {
	if s.obsr == nil {
		return
	}
	s.spanMu.Lock()
	s.obsr.Driver().Observe("job."+j.req.Algorithm, start, int64(j.g.NumVertices()))
	s.spanMu.Unlock()
}

// getPartition resolves the job's partition through the warm partition
// cache; a miss runs the requested partitioner and warms the cache. The key
// covers the full derivation (fingerprint, partitioner, ranks, seed), and
// partitions are read-only downstream, so sharing one instance across
// concurrent jobs is safe.
func (s *Server) getPartition(j *job) (*partition.Partition, error) {
	key := partitionKey(j.fp, j.req.Partition, j.req.Ranks, j.req.Seed)
	if p, ok := s.parts.get(key); ok {
		s.partHits.Inc()
		return p, nil
	}
	s.partMisses.Inc()
	p, err := j.req.buildPartition(j.g)
	if err != nil {
		return nil, err
	}
	s.partEvicts.Add(int64(s.parts.put(key, p)))
	return p, nil
}

// runJob executes the algorithm on the given world — the same dmgm entry
// points the CLIs call, so a service job and a CLI run with equal inputs
// produce byte-identical results (asserted by the conformance tests).
func (s *Server) runJob(w *mpi.World, j *job) (*Response, error) {
	part, err := s.getPartition(j)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Algorithm:   j.req.Algorithm,
		Ranks:       j.req.Ranks,
		Fingerprint: j.fp,
	}
	switch j.req.Algorithm {
	case AlgoMatch:
		opt := dmgm.MatchParallelOptions{}
		if j.req.NoBundle {
			opt.BundleBytes = 17 // one protocol record per message
		}
		res, err := dmgm.MatchParallelWorld(w, j.g, part, opt)
		if err != nil {
			return nil, err
		}
		if err := res.Mates.VerifyMaximal(j.g); err != nil {
			return nil, fmt.Errorf("result verification: %w", err)
		}
		var sb strings.Builder
		if err := matching.WriteMates(&sb, res.Mates); err != nil {
			return nil, err
		}
		resp.Weight = res.Weight
		resp.Cardinality = res.Mates.Cardinality()
		resp.Messages = res.Messages
		resp.Bytes = res.Bytes
		resp.Result = sb.String()
	case AlgoColor:
		opt := dmgm.ColorParallelOptions{
			SuperstepSize: j.req.Superstep,
			Seed:          j.req.Seed,
		}
		switch j.req.Comm {
		case "neighbors":
			opt.CommMode = dmgm.CommNeighbors
		case "customized-all":
			opt.CommMode = dmgm.CommCustomizedAll
		case "broadcast":
			opt.CommMode = dmgm.CommBroadcast
		}
		var res *dmgm.ColorParallelResult
		var err error
		if j.req.Distance2 {
			res, err = dmgm.ColorParallelDistance2World(w, j.g, part, opt)
		} else {
			res, err = dmgm.ColorParallelWorld(w, j.g, part, opt)
		}
		if err != nil {
			return nil, err
		}
		if j.req.Distance2 {
			err = coloring.VerifyDistance2(j.g, res.Colors)
		} else {
			err = res.Colors.Verify(j.g)
		}
		if err != nil {
			return nil, fmt.Errorf("result verification: %w", err)
		}
		var sb strings.Builder
		if err := coloring.WriteColors(&sb, res.Colors); err != nil {
			return nil, err
		}
		resp.Colors = res.NumColors
		resp.Rounds = res.Rounds
		resp.Conflicts = res.Conflicts
		resp.Messages = res.Messages
		resp.Bytes = res.Bytes
		resp.Result = sb.String()
	}
	return resp, nil
}
