package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/dmgm"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/service/ingest"
)

// Config sizes one Server. The zero value is usable: every field has a
// production-sane default.
type Config struct {
	// QueueLen bounds the admission queue; a submission arriving with the
	// queue full is shed with 429 + Retry-After (default 32).
	QueueLen int
	// Workers is the number of jobs executed concurrently (default 2).
	// Each worker drives one mpi world of Request.Ranks goroutine ranks, so
	// the process runs up to Workers×Ranks rank goroutines at peak.
	Workers int
	// DefaultTimeout caps a job's queue wait plus run time; requests may
	// shorten it per job, never extend it (default 2 minutes).
	DefaultTimeout time.Duration
	// WorldDeadline is the watchdog on pooled worlds — the backstop against
	// a wedged algorithm outliving every job deadline (default 10 minutes).
	WorldDeadline time.Duration
	// CacheEntries bounds the LRU result cache (default 128; negative
	// disables caching).
	CacheEntries int
	// MaxRanks bounds Request.Ranks (default 64).
	MaxRanks int
	// MaxBodyBytes bounds a request body, inline graph included
	// (default 256 MiB).
	MaxBodyBytes int64
	// AllowGraphPaths permits graph_path requests, which read daemon-local
	// files. Leave false for anything but a trusted-caller deployment.
	AllowGraphPaths bool
	// StoreBytes bounds the content-addressed graph store (default 512 MiB).
	StoreBytes int64
	// StoreDir, when set, persists every deposited graph's canonical DMGB
	// encoding under this directory (docs/PROTOCOL.md §7): refs survive both
	// memory eviction and daemon restarts, rehydrated lazily on first use.
	// Empty keeps the store memory-only, the pre-persistence behavior.
	StoreDir string
	// StoreDiskBytes bounds the spill directory; least recently used spill
	// files beyond it are deleted (default 4 GiB). Only meaningful with
	// StoreDir set.
	StoreDiskBytes int64
	// PartitionCacheEntries bounds the warm partition cache (default 64;
	// negative disables it).
	PartitionCacheEntries int
	// UploadTTL expires idle upload sessions (default 2 minutes).
	UploadTTL time.Duration
	// MaxUploadBytes bounds one upload session (default 1 GiB).
	MaxUploadBytes int64
	// MaxUploadSessions bounds concurrently open upload sessions
	// (default 64).
	MaxUploadSessions int
	// Policies carries the per-tenant admission budgets (weights, rate
	// limits, queue/concurrency/upload bounds — docs/PROTOCOL.md §8). nil
	// applies the permissive default policy to every tenant: weight 1, no
	// rate limit, queue bound QueueLen. Replaceable at runtime with
	// SetPolicies.
	Policies *TenantPolicies
	// MaxTenants bounds the distinct tenant queues the scheduler tracks
	// (default 64). Callers beyond the bound share the default tenant's
	// queue and budgets, so an attacker inventing header values cannot grow
	// server state without bound.
	MaxTenants int
	// Observer collects service metrics and per-job spans; nil runs with
	// metrics disabled (every instrument is a nil no-op).
	Observer *obs.Observer

	// OTLPEndpoint, when set, wires a continuous OTLP/HTTP pipeline into the
	// daemon (docs/PROTOCOL.md §9): the metrics registry is pushed every
	// OTLPInterval and every finished job's span tree is exported on
	// completion. Stop drains the exporter before returning.
	OTLPEndpoint string
	// OTLPInterval paces the periodic metrics push (default 10s).
	OTLPInterval time.Duration
	// OTLPDrainTimeout bounds how long Stop waits for queued telemetry to
	// flush; batches still pending after it are counted dropped (default 5s).
	OTLPDrainTimeout time.Duration
	// RunID labels the daemon's own telemetry stream (the dmgm.run resource
	// attribute of the periodic metrics push). Jobs do not use it: each job's
	// spans ride its own trace id.
	RunID string
	// DisableTracing turns per-job span recording off entirely: no lifecycle
	// spans, no per-job runtime observers, no trace retention. Trace ids are
	// still minted/propagated so the access log and X-DMGM-Trace header keep
	// working. Results are byte-identical either way (asserted by the
	// conformance tests).
	DisableTracing bool
	// TraceSlowMillis is the tail-capture threshold: a job slower than this
	// (or ending in error) retains its full span tree for
	// GET /v1/jobs/{id}/trace. 0 retains every job; negative disables
	// retention. The default (zero value) retains every job — the ring is
	// bounded, so this is cheap and the friendliest debugging default.
	TraceSlowMillis int64
	// TraceRing bounds the retained-trace ring (default 256; negative
	// disables retention).
	TraceRing int
	// RuntimeSpanCap is the per-rank span-ring capacity of each job's runtime
	// observer (default 2048). A long job keeps the tail of its phase spans.
	RuntimeSpanCap int
	// AccessLog, when set, receives one structured JSON line per job request:
	// trace id, tenant, status, queue wait, run time, cache disposition.
	AccessLog io.Writer
}

func (c *Config) fillDefaults() {
	if c.QueueLen == 0 {
		c.QueueLen = 32
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.WorldDeadline <= 0 {
		c.WorldDeadline = 10 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.MaxRanks == 0 {
		c.MaxRanks = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.StoreBytes == 0 {
		c.StoreBytes = 512 << 20
	}
	if c.StoreDiskBytes == 0 {
		c.StoreDiskBytes = 4 << 30
	}
	if c.PartitionCacheEntries == 0 {
		c.PartitionCacheEntries = 64
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.OTLPInterval <= 0 {
		c.OTLPInterval = 10 * time.Second
	}
	if c.OTLPDrainTimeout <= 0 {
		c.OTLPDrainTimeout = 5 * time.Second
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.RuntimeSpanCap <= 0 {
		c.RuntimeSpanCap = 2048
	}
}

// job is one admitted submission moving through its tenant's queue.
type job struct {
	id     string
	tenant string
	tq     *tenantQueue
	req    *Request
	g      *graph.Graph
	fp     string
	key    string
	ctx    context.Context
	done   chan struct{} // closed exactly once, after resp/status are set

	// jt is the request's trace state. The handler owns it until enqueue,
	// the worker between dequeue and close(done) — see trace.go.
	jt         *jobTrace
	enqueuedAt time.Time

	resp   *Response
	status int
	errMsg string
}

// finish publishes the job's outcome and releases its waiter.
func (j *job) finish(status int, resp *Response, errMsg string) {
	j.status = status
	j.resp = resp
	j.errMsg = errMsg
	close(j.done)
}

// Server is the dmgm job service: per-tenant admission queues dispatched by
// a weighted deficit-round-robin scheduler in front of a fixed worker pool,
// a World pool underneath, and an LRU result cache in front of everything.
// Create with NewServer, expose Handler over HTTP, call Start, and
// Drain+Stop on the way out. All exported methods are safe for concurrent
// use once NewServer returns.
type Server struct {
	cfg    Config
	obsr   *obs.Observer
	pool   *worldPool
	cache  *resultCache
	store  *ingest.Store
	ingest *ingest.Manager
	parts  *partCache
	sched  *tenantSched

	stopOnce sync.Once
	pumpOnce sync.Once // pump shutdown + exporter drain, once
	draining atomic.Bool
	admitMu  sync.Mutex     // orders admissions against the drain flag flip
	workers  sync.WaitGroup // worker goroutines
	pending  sync.WaitGroup // admitted, unfinished jobs

	nextID    atomic.Int64
	inflightN atomic.Int64 // jobs executing right now (healthz; gauge-independent)

	// Tracing pipeline (trace.go). exporter/traces/accessLog are nil when the
	// respective feature is off; every use is nil-safe.
	exporter   *obs.OTLPExporter
	traces     *traceRing
	accessLog  *accessLogger
	startNanos atomic.Int64  // Start time, the cumulative-metrics window start
	pumpStop   chan struct{} // closes to stop the periodic metrics push
	pumpDone   chan struct{}

	// spanMu serializes per-job span recording: the driver tracer is a
	// single-goroutine structure and the workers are not.
	spanMu sync.Mutex

	// Instruments (nil-safe no-ops without an observer).
	submitted   *obs.Counter
	completed   *obs.Counter
	failed      *obs.Counter
	rejected    *obs.Counter
	drainRejs   *obs.Counter
	timeouts    *obs.Counter
	hits        *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	partHits    *obs.Counter
	partMisses  *obs.Counter
	partEvicts  *obs.Counter
	queueDepth  *obs.Gauge
	inflight    *obs.Gauge
	cacheGauge  *obs.Gauge
	idleWorlds  *obs.Gauge
	drainGauge  *obs.Gauge
	tracesGauge *obs.Gauge
	latencyHist *obs.Histogram
	qwaitHist   *obs.Histogram
	runHist     *obs.Histogram
}

// NewServer builds a server from cfg. Call Start before serving traffic.
// The only failure mode is an unusable StoreDir (unreadable, uncreatable);
// without one, NewServer always succeeds.
func NewServer(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	reg := cfg.Observer.Registry()
	s := &Server{
		cfg:   cfg,
		obsr:  cfg.Observer,
		pool:  newWorldPool(cfg.WorldDeadline, cfg.Workers*2, reg),
		cache: newResultCache(cfg.CacheEntries),
		store: ingest.NewStore(cfg.StoreBytes, reg),
		parts: newPartCache(cfg.PartitionCacheEntries),
		sched: newTenantSched(cfg.Policies, cfg.QueueLen, cfg.MaxTenants, reg),

		submitted:   reg.Counter("service.jobs_submitted"),
		completed:   reg.Counter("service.jobs_completed"),
		failed:      reg.Counter("service.jobs_failed"),
		rejected:    reg.Counter("service.jobs_rejected"),
		drainRejs:   reg.Counter("service.jobs_rejected_draining"),
		timeouts:    reg.Counter("service.jobs_timeout"),
		hits:        reg.Counter("service.cache_hits"),
		misses:      reg.Counter("service.cache_misses"),
		evictions:   reg.Counter("service.cache_evictions"),
		partHits:    reg.Counter("service.partition_cache_hits"),
		partMisses:  reg.Counter("service.partition_cache_misses"),
		partEvicts:  reg.Counter("service.partition_cache_evictions"),
		queueDepth:  reg.Gauge("service.queue_depth"),
		inflight:    reg.Gauge("service.inflight"),
		cacheGauge:  reg.Gauge("service.cache_entries"),
		idleWorlds:  reg.Gauge("service.pool_idle"),
		drainGauge:  reg.Gauge("service.draining"),
		tracesGauge: reg.Gauge("service.traces_retained"),
		latencyHist: reg.Histogram("service.job_latency_ms", obs.ExpBounds(1, 1<<22)),
		qwaitHist:   reg.Histogram("service.queue_wait_ms", obs.ExpBounds(1, 1<<22)),
		runHist:     reg.Histogram("service.run_ms", obs.ExpBounds(1, 1<<22)),

		traces:    newTraceRing(cfg.TraceRing),
		accessLog: newAccessLogger(cfg.AccessLog),
	}
	reg.Gauge("service.queue_cap").Set(int64(cfg.QueueLen))
	reg.Gauge("service.workers").Set(int64(cfg.Workers))
	if cfg.StoreDir != "" {
		// Enabled before any deposit can happen: the startup scan indexes
		// what a previous daemon run left behind, so old refs resolve and
		// re-uploads of spilled graphs short-circuit from the first request.
		if err := s.store.EnableSpill(ingest.SpillConfig{Dir: cfg.StoreDir, MaxBytes: cfg.StoreDiskBytes}); err != nil {
			return nil, fmt.Errorf("store dir %s: %w", cfg.StoreDir, err)
		}
	}
	s.ingest = ingest.NewManager(ingest.Config{
		TTL:         cfg.UploadTTL,
		MaxSessions: cfg.MaxUploadSessions,
		MaxBytes:    cfg.MaxUploadBytes,
		Store:       s.store,
		// Fingerprints with a cached result are answerable without the
		// graph bytes, so uploads of them short-circuit too.
		Known: s.cache.hasFingerprint,
		// Uploads pass the same per-tenant admission as jobs: one rate
		// token per session open, counted against the tenant's upload cap.
		Admit:    s.admitUpload,
		Registry: reg,
	})
	return s, nil
}

// SetPolicies replaces the per-tenant admission policies at runtime — the
// dmgm-serve SIGHUP reload path. Existing queues are re-bound in place:
// queued jobs stay queued, token-bucket levels carry over clamped to the
// new burst. Safe to call concurrently with traffic; nil resets every
// tenant to the permissive default policy.
func (s *Server) SetPolicies(p *TenantPolicies) {
	s.sched.setPolicies(p)
}

// admitUpload gates one upload-session open against the caller's tenant
// budgets (docs/PROTOCOL.md §8): draining refuses with 503, the open
// consumes one rate token, and the session occupies one slot of the
// tenant's upload cap until it settles. The returned release func gives the
// slot back; ingest calls it exactly once when the session leaves the
// uploading state.
func (s *Server) admitUpload(r *http.Request) (func(), *ingest.ChunkError) {
	tenant, ok := tenantFrom(r)
	if !ok {
		return nil, &ingest.ChunkError{Code: http.StatusBadRequest,
			Msg: fmt.Sprintf("invalid %s header %q: want %s", TenantHeader, r.Header.Get(TenantHeader), tenantNameRe)}
	}
	if s.draining.Load() {
		s.drainRejs.Inc()
		return nil, &ingest.ChunkError{Code: http.StatusServiceUnavailable,
			RetryAfter: retryAfterSeconds, Msg: "draining: not accepting uploads"}
	}
	tq := s.sched.tenantFor(tenant)
	if secs, ok := s.sched.takeToken(tq); !ok {
		tq.upRejected.Inc()
		return nil, &ingest.ChunkError{Code: http.StatusTooManyRequests, RetryAfter: secs,
			Msg: fmt.Sprintf("tenant %q over its rate limit: retry in %ds", tenant, secs)}
	}
	if !s.sched.addUpload(tq) {
		tq.upRejected.Inc()
		return nil, &ingest.ChunkError{Code: http.StatusTooManyRequests, RetryAfter: retryAfterSeconds,
			Msg: fmt.Sprintf("tenant %q is at its %d-session upload cap: finish or abort one", tenant, tq.pol.MaxUploads)}
	}
	return func() { s.sched.dropUpload(tq) }, nil
}

// otlpServiceName is the service.name resource attribute of every span and
// metric the daemon exports.
const otlpServiceName = "dmgm-serve"

// Start launches the worker pool and, when an OTLP endpoint is configured,
// the continuous telemetry pipeline: a periodic metrics push plus span
// export on every job completion.
func (s *Server) Start() {
	s.startNanos.Store(time.Now().UnixNano())
	if s.cfg.OTLPEndpoint != "" {
		s.exporter = obs.NewOTLPExporter(s.cfg.OTLPEndpoint, obs.OTLPOptions{
			Identity: obs.OTLPIdentity{RunID: s.cfg.RunID, Service: otlpServiceName},
			Registry: s.obsr.Registry(),
		})
		s.pumpStop = make(chan struct{})
		s.pumpDone = make(chan struct{})
		go s.metricsPump()
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop()
	}
}

// metricsPump pushes the registry to the OTLP endpoint every OTLPInterval,
// with one final push on shutdown so the last window is never lost.
func (s *Server) metricsPump() {
	defer close(s.pumpDone)
	t := time.NewTicker(s.cfg.OTLPInterval)
	defer t.Stop()
	push := func() {
		s.refreshGauges()
		s.exporter.ExportMetrics(s.obsr.Registry().Snapshot(), s.startNanos.Load())
	}
	for {
		select {
		case <-s.pumpStop:
			push()
			return
		case <-t.C:
			push()
		}
	}
}

// Drain stops admitting new jobs (submissions answer 503, health answers
// draining) and waits for every admitted job — queued or running — to
// finish, or for ctx to expire. It does not stop the workers; call Stop
// afterwards.
func (s *Server) Drain(ctx context.Context) error {
	// The admission lock orders the flag flip after every in-flight
	// admission's pending.Add — Wait never races a late Add.
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	s.drainGauge.Set(1)
	done := make(chan struct{})
	go func() { s.pending.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Stop terminates the worker pool and drains the telemetry pipeline: the
// final metrics window is pushed and queued span batches get up to
// OTLPDrainTimeout to flush (batches still pending after it are counted
// dropped, never leaked — the obs.otlp_dropped counter reports them). Safe
// to call more than once; jobs still queued are abandoned (their waiters
// time out via job deadlines), so Drain first for a graceful exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { s.sched.stop() })
	s.workers.Wait()
	s.ingest.Stop()
	s.pumpOnce.Do(func() {
		if s.exporter == nil {
			return
		}
		close(s.pumpStop)
		<-s.pumpDone
		s.exporter.Close(s.cfg.OTLPDrainTimeout) //nolint:errcheck // drop accounting covers the timeout case
	})
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP surface:
//
//	POST   /v1/jobs                      submit a job, wait for its result
//	GET    /v1/jobs/{id}/trace           retained span tree of a slow/error job
//	POST   /v1/uploads                   open a chunked upload session
//	PUT    /v1/uploads/{id}/chunks/{n}   send one chunk (idempotent)
//	GET    /v1/uploads/{id}              session status (resume point)
//	POST   /v1/uploads/{id}/complete     finalize, obtain the graph_ref
//	DELETE /v1/uploads/{id}              abort a session
//	GET    /healthz                      liveness JSON (200 ok / 503 draining)
//	GET    /metrics                      the metrics registry, canonical JSON
//	GET    /snapshot                     obs.LiveSnapshot (metrics only)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJobTrace)
	s.ingest.RegisterRoutes(mux)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// handleJobTrace serves GET /v1/jobs/{id}/trace from the retained-trace ring
// (docs/PROTOCOL.md §9). Only slow/error jobs are retained; everything else
// answers 404.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, verb, ok := strings.Cut(rest, "/")
	if !ok || verb != "trace" || id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "unknown path %q: want /v1/jobs/{id}/trace", r.URL.Path)
		return
	}
	t, ok := s.traces.get(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			"no retained trace for job %q: only jobs over the slow threshold or ending in error are kept, bounded by the trace ring", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(t) //nolint:errcheck // response already committed
}

// LiveSnapshot adapts the service registry to the obs live-polling shape,
// so `dmgm-trace -watch` and the -http pipeline work against a daemon too.
func (s *Server) LiveSnapshot() *obs.LiveSnapshot {
	s.refreshGauges()
	return &obs.LiveSnapshot{
		CapturedUnixNanos: time.Now().UnixNano(),
		Metrics:           s.obsr.Registry().Snapshot(),
	}
}

// refreshGauges recomputes the sampled gauges a scrape observes.
func (s *Server) refreshGauges() {
	s.queueDepth.Set(int64(s.sched.totalQueued()))
	s.cacheGauge.Set(int64(s.cache.len()))
	s.idleWorlds.Set(int64(s.pool.idle()))
	s.tracesGauge.Set(int64(s.traces.len()))
}

// healthBody is the GET /healthz answer (docs/PROTOCOL.md §6): the drain
// state plus the load picture an orchestrator or operator triages from. The
// status code keeps the original contract — 200 while serving, 503 once
// draining — so probes that only look at the code are unaffected.
type healthBody struct {
	Status         string         `json:"status"` // "ok" | "draining"
	Workers        int            `json:"workers"`
	Inflight       int64          `json:"inflight"`
	QueueDepth     int            `json:"queue_depth"`
	Queues         map[string]int `json:"queues,omitempty"` // per-tenant queue depths
	IdleWorlds     int            `json:"idle_worlds"`
	TracesRetained int            `json:"traces_retained"`
	// Store snapshots both tiers of the graph store; the spill_* fields are
	// present only when a StoreDir is configured.
	Store ingest.StoreStats `json:"store"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := healthBody{
		Status:         "ok",
		Workers:        s.cfg.Workers,
		Inflight:       s.inflightN.Load(),
		QueueDepth:     s.sched.totalQueued(),
		Queues:         s.sched.depths(),
		IdleWorlds:     s.pool.idle(),
		TracesRetained: s.traces.len(),
		Store:          s.store.Stats(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // response already committed
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.obsr.Registry().Snapshot().CanonicalJSONIndent()) //nolint:errcheck // best-effort scrape
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.LiveSnapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError answers with the JSON error shape of docs/PROTOCOL.md §6.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)}) //nolint:errcheck // response already committed
}

// retryAfterSeconds is the backpressure hint on queue-full 429 and
// draining 503 answers: queues turn over in job-latency units, so a short
// fixed hint keeps rejected clients closely packed behind the current burst
// without thundering back. Rate-limit 429s derive their hint from the
// tenant's own token bucket instead (tenantSched.takeToken).
const retryAfterSeconds = 1

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// The trace identity exists before any decision: the caller's traceparent
	// is honored (or a trace id minted), the X-DMGM-Trace header goes out on
	// every answer including rejects, and every outcome logs one access line.
	jt := newJobTrace(r.Header.Get(TraceparentHeader), !s.cfg.DisableTracing)
	w.Header().Set(TraceHeader, jt.traceID)
	fail := func(status int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		writeError(w, status, "%s", msg)
		s.finishTrace(jt, status, msg)
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		s.drainRejs.Inc()
		fail(http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	tenant, ok := tenantFrom(r)
	if !ok {
		fail(http.StatusBadRequest, "invalid %s header %q: want %s",
			TenantHeader, r.Header.Get(TenantHeader), tenantNameRe)
		return
	}
	jt.tenant = tenant
	tq := s.sched.tenantFor(tenant)
	s.submitted.Inc()
	tq.submitted.Inc()
	// Admission: the rate bucket gates ingress before any request work — a
	// tenant over its rate is shed before the body is even decoded, and the
	// Retry-After hint is when its own bucket next grants a token.
	admitTok := jt.begin(spanAdmit)
	if secs, ok := s.sched.takeToken(tq); !ok {
		jt.end(admitTok, 0)
		s.rejected.Inc()
		tq.rejected.Inc()
		tq.rejRate.Inc()
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		fail(http.StatusTooManyRequests, "tenant %q over its rate limit: retry in %ds", tenant, secs)
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		jt.end(admitTok, 0)
		fail(http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if msg := req.normalize(s.cfg.MaxRanks); msg != "" {
		jt.end(admitTok, 0)
		fail(http.StatusBadRequest, "%s", msg)
		return
	}
	jt.end(admitTok, 0)
	jt.algo, jt.ranks = req.Algorithm, req.Ranks
	// Resolve: inline parse, store lookup, or path load.
	resolveTok := jt.begin(spanResolve)
	g, fp, status, err := s.loadGraph(&req, jt)
	if err != nil {
		jt.end(resolveTok, 0)
		fail(status, "loading graph: %v", err)
		return
	}
	jt.end(resolveTok, int64(g.NumVertices()))
	key := req.cacheKey(fp)
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	jt.jobID = id
	if !req.NoCache {
		lookupStart := time.Now()
		if resp, ok := s.cache.get(key); ok {
			s.hits.Inc()
			jt.cache = cacheHit
			jt.observe(spanCacheHit, lookupStart, 0)
			resp.JobID = id
			resp.Tenant = tenant
			resp.Cached = true
			resp.TraceID = jt.traceID
			s.respondTraced(w, &resp, jt)
			s.finishTrace(jt, http.StatusOK, "")
			return
		}
		jt.cache = cacheMiss
	} else {
		jt.cache = cacheBypass
	}
	s.misses.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), req.timeout(s.cfg.DefaultTimeout))
	defer cancel()
	j := &job{id: id, tenant: tenant, tq: tq, req: &req, g: g, fp: fp, key: key,
		ctx: ctx, done: make(chan struct{}), jt: jt}
	// Authoritative drain check: the early one above is a fast path, but a
	// drain beginning mid-request must still see either this job in pending
	// or this request rejected — never neither, for any tenant.
	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		s.drainRejs.Inc()
		fail(http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	s.pending.Add(1)
	s.admitMu.Unlock()
	j.enqueuedAt = time.Now()
	// From enqueue to <-j.done the worker owns j.jt (see trace.go); the
	// handler records nothing in between.
	if !s.sched.enqueue(tq, j) {
		s.pending.Done()
		s.rejected.Inc()
		tq.rejected.Inc()
		tq.rejQueue.Inc()
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		fail(http.StatusTooManyRequests,
			"tenant %q queue full (%d jobs queued): retry later", tenant, tq.pol.MaxQueued)
		return
	}
	tq.admitted.Inc()
	<-j.done
	if j.status != http.StatusOK {
		fail(j.status, "%s", j.errMsg)
		return
	}
	j.resp.TraceID = jt.traceID
	s.respondTraced(w, j.resp, jt)
	s.finishTrace(jt, http.StatusOK, "")
}

func (s *Server) respond(w http.ResponseWriter, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The header is already out; nothing to repair mid-stream.
		return
	}
}

// respondTraced is respond under a serve.respond span — serialization and
// the first write of a (possibly large) result body.
func (s *Server) respondTraced(w http.ResponseWriter, resp *Response, jt *jobTrace) {
	tok := jt.begin(spanRespond)
	s.respond(w, resp)
	jt.end(tok, int64(len(resp.Result)))
}

// finishTrace closes the request's root span and settles its telemetry: the
// span tree is exported over OTLP, retained in the trace ring when the job
// was slow or failed, and summarized as one access-log line. Runs on the
// handler goroutine, after the worker's last jt write (<-j.done).
func (s *Server) finishTrace(jt *jobTrace, status int, errMsg string) {
	if jt == nil {
		return
	}
	jt.tr.End(jt.root)
	total := time.Since(jt.start)
	retained := false
	if jt.tr != nil && jt.jobID != "" && s.shouldRetain(status, total) {
		s.traces.add(jt.snapshot(status, errMsg, total))
		retained = s.traces != nil
	}
	if e := s.exporter; e != nil && jt.tr != nil {
		svcID := jt.identity(otlpServiceName, jt.parentSpan)
		e.ExportSpansFor(jt.tr.Spans(), svcID, 0)
		if len(jt.runtime) > 0 {
			runID := jt.identity(otlpServiceName, svcID.SpanID(obs.DriverRank, jt.runSeq))
			e.ExportSpansFor(jt.runtime, runID, 0)
		}
	}
	s.accessLog.log(&accessEntry{
		TimeUnixNano:    time.Now().UnixNano(),
		TraceID:         jt.traceID,
		JobID:           jt.jobID,
		Tenant:          jt.tenant,
		Algorithm:       jt.algo,
		Ranks:           jt.ranks,
		Status:          status,
		Error:           errMsg,
		Cache:           jt.cache,
		QueueWaitMillis: durMillis(jt.queueWait),
		RunMillis:       durMillis(jt.runDur),
		TotalMillis:     durMillis(total),
		TraceRetained:   retained,
	})
}

// shouldRetain decides tail-based capture: every error, plus anything over
// the slow threshold (0 = everything; negative disables retention).
func (s *Server) shouldRetain(status int, total time.Duration) bool {
	if s.cfg.TraceSlowMillis < 0 {
		return false
	}
	if status != http.StatusOK {
		return true
	}
	return total.Milliseconds() >= s.cfg.TraceSlowMillis
}

// loadGraph resolves the request's graph — inline, by reference, or
// daemon-local — returning the graph, its fingerprint, and on failure the
// HTTP status to answer with. A graph_ref rehydrated from the spill tier
// records a span under the request's resolve stage.
func (s *Server) loadGraph(req *Request, jt *jobTrace) (*graph.Graph, string, int, error) {
	switch {
	case req.Graph != "":
		g, err := graph.ReadText(strings.NewReader(req.Graph))
		if err != nil {
			return nil, "", http.StatusBadRequest, err
		}
		fp := graph.Fingerprint(g)
		// Inline graphs land in the store too, so the caller can switch to
		// graph_ref (the response fingerprint) and uploads of the same
		// content short-circuit.
		s.store.Put(fp, g)
		return g, fp, 0, nil
	case req.GraphRef != "":
		start := time.Now()
		g, rehydrated, ok := s.store.Resolve(req.GraphRef)
		if !ok {
			return nil, "", http.StatusNotFound,
				fmt.Errorf("unknown graph_ref %s (never uploaded, or evicted): upload the graph again", req.GraphRef)
		}
		if rehydrated {
			jt.observe(spanRehydrate, start, int64(g.NumVertices()))
		}
		return g, req.GraphRef, 0, nil
	default:
		if !s.cfg.AllowGraphPaths {
			return nil, "", http.StatusBadRequest,
				fmt.Errorf("graph_path is disabled on this server; send the graph inline or upload it")
		}
		// Daemon-local files stream through the store: decoded at most once
		// per content version, shared across concurrent jobs.
		g, fp, err := s.store.LoadPath(req.GraphPath)
		if err != nil {
			return nil, "", http.StatusBadRequest, err
		}
		return g, fp, 0, nil
	}
}

// workerLoop pulls dispatched jobs until Stop. The scheduler charges the
// job's tenant a running slot on dispatch; the worker releases it when the
// job leaves the worker, finished or shed.
func (s *Server) workerLoop() {
	defer s.workers.Done()
	for {
		j, tq, ok := s.sched.next()
		if !ok {
			return
		}
		s.noteQueueWait(j)
		if err := j.ctx.Err(); err != nil {
			// Expired while queued: never ran, shed cheaply.
			s.finishTimeout(j)
		} else {
			s.execute(j)
		}
		s.sched.release(tq)
	}
}

// noteQueueWait records the job's tenant-queue wait — the span, the global
// and per-tenant histograms, and the access-log summary field. Runs on the
// worker right after dispatch, before any jt write of the execute path.
func (s *Server) noteQueueWait(j *job) {
	wait := time.Since(j.enqueuedAt)
	j.jt.setQueueWait(wait)
	j.jt.observe(spanQueueWait, j.enqueuedAt, 0)
	s.qwaitHist.Observe(wait.Milliseconds())
	j.tq.qwait.Observe(wait.Milliseconds())
}

// finishTimeout resolves a job whose deadline fired.
func (s *Server) finishTimeout(j *job) {
	s.timeouts.Inc()
	j.finish(http.StatusGatewayTimeout, nil, "job deadline exceeded")
	s.pending.Done()
}

// execResult carries a finished run out of its goroutine, with the partition
// measurement the worker turns into a span (the run goroutine must never
// touch the jobTrace itself — on timeout the worker abandons it mid-flight).
type execResult struct {
	resp *Response
	part partMeasure
	err  error
}

// partMeasure is the partition stage's timing, handed from the run goroutine
// to the worker through the result channel.
type partMeasure struct {
	cached bool
	start  time.Time
	dur    time.Duration
}

// execute runs one job on a pooled world, enforcing the job deadline. On
// timeout the job resolves immediately; the abandoned run keeps the world
// until it finishes (the algorithms terminate in bounded rounds, and the
// pool's watchdog deadline is the backstop), after which the world is reset
// and recycled — or discarded if its ranks are genuinely wedged.
func (s *Server) execute(j *job) {
	start := time.Now()
	jt := j.jt
	poolTok := jt.begin(spanPoolAcquire)
	w, err := s.pool.get(j.req.Ranks)
	jt.end(poolTok, 0)
	if err != nil {
		s.failed.Inc()
		j.finish(http.StatusInternalServerError, nil, fmt.Sprintf("world: %v", err))
		s.pending.Done()
		return
	}
	// The job's own runtime observer: per-rank span rings the algorithms
	// record into, isolated per job so a pooled world never mixes two jobs'
	// spans. A timeout abandons the observer with the run — its spans are
	// simply never collected.
	var runObs *obs.Observer
	if !s.cfg.DisableTracing {
		runObs = obs.NewObserver(j.req.Ranks, s.cfg.RuntimeSpanCap)
		if err := w.SetObserver(runObs); err != nil {
			runObs = nil // not runnable-fresh; run untraced rather than fail
		}
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	defer func() { s.inflight.Add(-1); s.inflightN.Add(-1) }()
	runStart := time.Now()
	resCh := make(chan execResult, 1)
	go func() {
		resp, part, err := s.runJob(w, j)
		resCh <- execResult{resp, part, err}
	}()
	select {
	case r := <-resCh:
		runDur := time.Since(runStart)
		jt.setRunDur(runDur)
		s.runHist.Observe(runDur.Milliseconds())
		j.tq.runh.Observe(runDur.Milliseconds())
		// Collect the run's per-rank spans before the world returns to the
		// pool (put detaches the observer).
		if runObs != nil && jt != nil {
			var spans []obs.Span
			for rank := 0; rank < j.req.Ranks; rank++ {
				spans = append(spans, runObs.Tracer(rank).Spans()...)
			}
			jt.runtime = spans
		}
		s.pool.put(w)
		elapsed := time.Since(start)
		s.observeJob(j, start, elapsed)
		if !r.part.start.IsZero() {
			name := spanPartCompute
			if r.part.cached {
				name = spanPartCached
			}
			jt.observeSpan(name, r.part.start, r.part.dur, int64(j.req.Ranks))
		}
		if jt != nil {
			jt.runSeq = jt.tr.ObserveSpan(spanRun, runStart.UnixNano(), runDur.Nanoseconds(), 0, jt.root)
		}
		if r.err != nil {
			s.failed.Inc()
			j.finish(http.StatusInternalServerError, nil, fmt.Sprintf("executing %s: %v", j.req.Algorithm, r.err))
			s.pending.Done()
			return
		}
		r.resp.JobID = j.id
		r.resp.ElapsedSeconds = elapsed.Seconds()
		depositTok := jt.begin(spanDeposit)
		// The cached copy carries no tenant: a hit may serve any tenant,
		// which stamps its own id on its copy.
		s.evictions.Add(int64(s.cache.put(j.key, *r.resp)))
		jt.end(depositTok, int64(len(r.resp.Result)))
		r.resp.Tenant = j.tenant
		s.completed.Inc()
		j.tq.completed.Inc()
		s.latencyHist.Observe(elapsed.Milliseconds())
		j.tq.lat.Observe(elapsed.Milliseconds())
		j.finish(http.StatusOK, r.resp, "")
		s.pending.Done()
	case <-j.ctx.Done():
		jt.setRunDur(time.Since(runStart))
		jt.observe(spanRunAbandon, runStart, 0)
		s.finishTimeout(j)
		// Recycle (or discard) the world once the abandoned run returns. The
		// abandoned run still holds the per-job observer; put resets and
		// detaches it with the world, and its spans are dropped with it.
		go func() {
			<-resCh
			s.pool.put(w)
		}()
	}
}

// observeJob records the per-job span on the driver tracer (serialized: the
// tracer is a single-goroutine structure).
func (s *Server) observeJob(j *job, start time.Time, elapsed time.Duration) {
	if s.obsr == nil {
		return
	}
	s.spanMu.Lock()
	s.obsr.Driver().Observe("job."+j.req.Algorithm, start, int64(j.g.NumVertices()))
	s.spanMu.Unlock()
}

// getPartition resolves the job's partition through the warm partition
// cache; a miss runs the requested partitioner and warms the cache. The key
// covers the full derivation (fingerprint, partitioner, ranks, seed), and
// partitions are read-only downstream, so sharing one instance across
// concurrent jobs is safe.
func (s *Server) getPartition(j *job) (*partition.Partition, bool, error) {
	key := partitionKey(j.fp, j.req.Partition, j.req.Ranks, j.req.Seed)
	if p, ok := s.parts.get(key); ok {
		s.partHits.Inc()
		return p, true, nil
	}
	s.partMisses.Inc()
	p, err := j.req.buildPartition(j.g)
	if err != nil {
		return nil, false, err
	}
	s.partEvicts.Add(int64(s.parts.put(key, p)))
	return p, false, nil
}

// runJob executes the algorithm on the given world — the same dmgm entry
// points the CLIs call, so a service job and a CLI run with equal inputs
// produce byte-identical results (asserted by the conformance tests).
func (s *Server) runJob(w *mpi.World, j *job) (*Response, partMeasure, error) {
	partStart := time.Now()
	part, partCached, err := s.getPartition(j)
	pm := partMeasure{cached: partCached, start: partStart, dur: time.Since(partStart)}
	if err != nil {
		return nil, pm, err
	}
	resp := &Response{
		Algorithm:   j.req.Algorithm,
		Ranks:       j.req.Ranks,
		Fingerprint: j.fp,
	}
	switch j.req.Algorithm {
	case AlgoMatch:
		opt := dmgm.MatchParallelOptions{}
		if j.req.NoBundle {
			opt.BundleBytes = 17 // one protocol record per message
		}
		res, err := dmgm.MatchParallelWorld(w, j.g, part, opt)
		if err != nil {
			return nil, pm, err
		}
		if err := res.Mates.VerifyMaximal(j.g); err != nil {
			return nil, pm, fmt.Errorf("result verification: %w", err)
		}
		var sb strings.Builder
		if err := matching.WriteMates(&sb, res.Mates); err != nil {
			return nil, pm, err
		}
		resp.Weight = res.Weight
		resp.Cardinality = res.Mates.Cardinality()
		resp.Messages = res.Messages
		resp.Bytes = res.Bytes
		resp.Result = sb.String()
	case AlgoColor:
		opt := dmgm.ColorParallelOptions{
			SuperstepSize: j.req.Superstep,
			Seed:          j.req.Seed,
		}
		switch j.req.Comm {
		case "neighbors":
			opt.CommMode = dmgm.CommNeighbors
		case "customized-all":
			opt.CommMode = dmgm.CommCustomizedAll
		case "broadcast":
			opt.CommMode = dmgm.CommBroadcast
		}
		var res *dmgm.ColorParallelResult
		var err error
		if j.req.Distance2 {
			res, err = dmgm.ColorParallelDistance2World(w, j.g, part, opt)
		} else {
			res, err = dmgm.ColorParallelWorld(w, j.g, part, opt)
		}
		if err != nil {
			return nil, pm, err
		}
		if j.req.Distance2 {
			err = coloring.VerifyDistance2(j.g, res.Colors)
		} else {
			err = res.Colors.Verify(j.g)
		}
		if err != nil {
			return nil, pm, fmt.Errorf("result verification: %w", err)
		}
		var sb strings.Builder
		if err := coloring.WriteColors(&sb, res.Colors); err != nil {
			return nil, pm, err
		}
		resp.Colors = res.NumColors
		resp.Rounds = res.Rounds
		resp.Conflicts = res.Conflicts
		resp.Messages = res.Messages
		resp.Bytes = res.Bytes
		resp.Result = sb.String()
	}
	return resp, pm, nil
}
