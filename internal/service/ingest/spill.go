package ingest

import (
	"bufio"
	"container/list"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
)

// The spill tier is the persistence layer under the content-addressed graph
// store: every deposited graph's canonical DMGB encoding is written to a
// spill directory keyed by fingerprint (`<fp>.dmgb`), so a daemon restart
// does not invalidate the `graph_ref`s clients hold. Writes go through a
// temp file plus rename for crash atomicity — a SIGKILL mid-write leaves
// only a temp file the next startup sweeps, never a half spill file under a
// valid name. Reads re-verify end to end: the streaming decoder recomputes
// the content fingerprint against the embedded header, and the header must
// match the address the file was stored under. Anything that fails — a
// truncated file, a flipped bit, a renamed file, a stray non-DMGB file — is
// quarantined (renamed aside with a `.corrupt` suffix, counted in
// ingest.spill_corrupt, dropped from the index) without failing the daemon.
//
// The tier is LRU-bounded by bytes on disk, like the in-memory store above
// it: depositing past the budget deletes the least recently used spill
// files, whose refs then answer 404 exactly as memory-only eviction did.

// spillExt names spill files; the base name is the 64-hex fingerprint.
const spillExt = ".dmgb"

// quarantineExt marks files set aside by corruption handling; startup scans
// skip them so an operator can inspect or delete at leisure.
const quarantineExt = ".corrupt"

// spillTmpPattern shapes the temp files renames commit from; startup removes
// leftovers (a crash between create and rename).
const spillTmpPattern = ".spill-*.tmp"

var spillNameRe = regexp.MustCompile(`^[0-9a-f]{64}\.dmgb$`)

// SpillConfig configures the persistent tier of a Store.
type SpillConfig struct {
	// Dir is the spill directory, created if missing. Required.
	Dir string
	// MaxBytes bounds the bytes held on disk (clamped to at least 1 MiB).
	// Deposits beyond it evict least recently used spill files.
	MaxBytes int64
}

// spillTier is the disk side of a Store. Its mutex covers only the index;
// file IO happens outside it, relying on rename atomicity and the
// content-addressed naming (two concurrent writers of one fingerprint write
// identical bytes).
type spillTier struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	ll    *list.List               // front = most recently used
	m     map[string]*list.Element // fingerprint → element
	bytes int64

	bytesG       *obs.Gauge
	filesG       *obs.Gauge
	writes       *obs.Counter
	writeErrs    *obs.Counter
	rehydrations *obs.Counter
	corrupt      *obs.Counter
	evictions    *obs.Counter
}

type spillEntry struct {
	fp   string
	size int64
}

// EnableSpill attaches a persistent tier to the store: the directory is
// scanned into an index of known fingerprints (headers only — no graph is
// decoded until a job asks for it), leftover temp files are removed, and
// anything unrecognizable is quarantined. Call once, before serving traffic.
func (s *Store) EnableSpill(cfg SpillConfig) error {
	if s.spill != nil {
		return fmt.Errorf("ingest: spill already enabled on %s", s.spill.dir)
	}
	if cfg.Dir == "" {
		return fmt.Errorf("ingest: SpillConfig.Dir is required")
	}
	if cfg.MaxBytes < 1<<20 {
		cfg.MaxBytes = 1 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("ingest: creating spill dir: %w", err)
	}
	reg := s.reg
	sp := &spillTier{
		dir:          cfg.Dir,
		maxBytes:     cfg.MaxBytes,
		ll:           list.New(),
		m:            make(map[string]*list.Element),
		bytesG:       reg.Gauge("ingest.spill_bytes"),
		filesG:       reg.Gauge("ingest.spill_files"),
		writes:       reg.Counter("ingest.spill_writes"),
		writeErrs:    reg.Counter("ingest.spill_write_errors"),
		rehydrations: reg.Counter("ingest.spill_rehydrations"),
		corrupt:      reg.Counter("ingest.spill_corrupt"),
		evictions:    reg.Counter("ingest.spill_evictions"),
	}
	if err := sp.scan(); err != nil {
		return err
	}
	s.spill = sp
	return nil
}

// scan indexes the spill directory at startup: valid spill files enter the
// LRU ordered by modification time (oldest evicted first), temp files from
// an interrupted write are removed, quarantined files are skipped, and
// everything else is quarantined.
func (sp *spillTier) scan() error {
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		return fmt.Errorf("ingest: scanning spill dir: %w", err)
	}
	type candidate struct {
		fp    string
		size  int64
		mtime int64
	}
	var found []candidate
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, ".spill-"):
			os.Remove(filepath.Join(sp.dir, name)) //nolint:errcheck // crash leftover; best effort
			continue
		case strings.HasSuffix(name, quarantineExt):
			continue // already set aside
		case !spillNameRe.MatchString(name):
			// A stray file: not ours, not trustworthy near content-addressed
			// state. Set it aside and count it.
			sp.corrupt.Inc()
			sp.quarantineFile(name)
			continue
		}
		fp := strings.TrimSuffix(name, spillExt)
		info, err := de.Info()
		if err != nil {
			continue // raced a concurrent delete
		}
		if !sp.headerMatches(name, fp, info.Size()) {
			sp.corrupt.Inc()
			sp.quarantineFile(name)
			continue
		}
		found = append(found, candidate{fp: fp, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	sp.mu.Lock()
	for _, c := range found {
		sp.m[c.fp] = sp.ll.PushFront(&spillEntry{fp: c.fp, size: c.size})
		sp.bytes += c.size
	}
	doomed := sp.evictOverBudgetLocked()
	sp.gaugesLocked()
	sp.mu.Unlock()
	sp.removeFiles(doomed)
	return nil
}

// headerMatches cheaply validates a spill file at scan time: the fixed
// header must parse and its embedded fingerprint must equal the file's name.
// The body is not decoded — full content verification happens on rehydrate.
func (sp *spillTier) headerMatches(name, fp string, size int64) bool {
	if size < graph.DMGBHeaderSize {
		return false
	}
	f, err := os.Open(filepath.Join(sp.dir, name))
	if err != nil {
		return false
	}
	defer f.Close()
	var hb [graph.DMGBHeaderSize]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		return false
	}
	hdr, err := graph.ParseDMGBHeader(hb[:])
	return err == nil && hdr.Fingerprint == fp
}

// contains reports a fingerprint indexed on disk, without touching LRU
// order — the probe behind Store.Contains and the upload short-circuit.
func (sp *spillTier) contains(fp string) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	_, ok := sp.m[fp]
	return ok
}

// write spills one graph, committing via temp file + rename so a crash at
// any instant leaves either the complete file or none. Failures are counted
// and swallowed: persistence is best-effort; the in-memory store already
// holds the graph.
func (sp *spillTier) write(fp string, g *graph.Graph) {
	sp.mu.Lock()
	if el, ok := sp.m[fp]; ok {
		sp.ll.MoveToFront(el)
		sp.mu.Unlock()
		return // content-addressed: the file on disk is this graph
	}
	sp.mu.Unlock()

	f, err := os.CreateTemp(sp.dir, spillTmpPattern)
	if err != nil {
		sp.writeErrs.Inc()
		return
	}
	tmp := f.Name()
	err = graph.WriteDMGB(f, g)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	var size int64
	if err == nil {
		info, serr := os.Stat(tmp)
		if serr != nil {
			err = serr
		} else {
			size = info.Size()
		}
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(sp.dir, fp+spillExt))
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck // best effort
		sp.writeErrs.Inc()
		return
	}
	sp.mu.Lock()
	if _, ok := sp.m[fp]; !ok { // a concurrent writer may have won the rename
		sp.m[fp] = sp.ll.PushFront(&spillEntry{fp: fp, size: size})
		sp.bytes += size
		sp.writes.Inc()
	}
	doomed := sp.evictOverBudgetLocked()
	sp.gaugesLocked()
	sp.mu.Unlock()
	sp.removeFiles(doomed)
}

// load rehydrates one spilled graph, re-verifying it end to end: the
// streaming decoder recomputes the content fingerprint against the embedded
// header, and the header must name the address the file was stored under.
// Any failure quarantines the file and drops the index entry — the caller
// sees a plain miss, never a crash, and the single-flight layer above holds
// no record of the failure (a re-uploaded graph retries cleanly).
func (sp *spillTier) load(fp string) (*graph.Graph, error) {
	path := filepath.Join(sp.dir, fp+spillExt)
	f, err := os.Open(path)
	if err != nil {
		sp.discard(fp, false)
		return nil, fmt.Errorf("ingest: opening spill file: %w", err)
	}
	defer f.Close()
	g, hdr, err := graph.ReadDMGBWithHeader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		sp.discard(fp, true)
		return nil, fmt.Errorf("ingest: rehydrating %s: %w", fp[:12], err)
	}
	if hdr.Fingerprint != fp {
		sp.discard(fp, true)
		return nil, fmt.Errorf("ingest: spill file %s holds graph %s", fp[:12], hdr.Fingerprint[:12])
	}
	sp.mu.Lock()
	if el, ok := sp.m[fp]; ok {
		sp.ll.MoveToFront(el)
	}
	sp.mu.Unlock()
	sp.rehydrations.Inc()
	return g, nil
}

// discard drops a fingerprint from the index after a load failure,
// quarantining the file when one exists to inspect.
func (sp *spillTier) discard(fp string, quarantine bool) {
	sp.corrupt.Inc()
	sp.mu.Lock()
	if el, ok := sp.m[fp]; ok {
		ent := el.Value.(*spillEntry)
		sp.ll.Remove(el)
		delete(sp.m, fp)
		sp.bytes -= ent.size
	}
	sp.gaugesLocked()
	sp.mu.Unlock()
	if quarantine {
		sp.quarantineFile(fp + spillExt)
	}
}

// quarantineFile renames a bad file aside so it stops matching the index
// and an operator can inspect it. Callers account it in ingest.spill_corrupt.
func (sp *spillTier) quarantineFile(name string) {
	from := filepath.Join(sp.dir, name)
	if err := os.Rename(from, from+quarantineExt); err != nil {
		os.Remove(from) //nolint:errcheck // fall back to dropping it
	}
}

// evictOverBudgetLocked trims the LRU tail past the byte budget (always
// keeping the newest entry) and returns the paths to delete once the lock
// is released.
func (sp *spillTier) evictOverBudgetLocked() []string {
	var doomed []string
	for sp.bytes > sp.maxBytes && sp.ll.Len() > 1 {
		last := sp.ll.Back()
		ent := last.Value.(*spillEntry)
		sp.ll.Remove(last)
		delete(sp.m, ent.fp)
		sp.bytes -= ent.size
		sp.evictions.Inc()
		doomed = append(doomed, filepath.Join(sp.dir, ent.fp+spillExt))
	}
	return doomed
}

func (sp *spillTier) removeFiles(paths []string) {
	for _, p := range paths {
		os.Remove(p) //nolint:errcheck // the index entry is already gone
	}
}

func (sp *spillTier) gaugesLocked() {
	sp.bytesG.Set(sp.bytes)
	sp.filesG.Set(int64(sp.ll.Len()))
}

// stats snapshots the tier for /healthz.
func (sp *spillTier) stats() (dir string, bytes int64, files int, budget int64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.dir, sp.bytes, sp.ll.Len(), sp.maxBytes
}
