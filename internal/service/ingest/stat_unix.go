//go:build unix

package ingest

import (
	"os"
	"syscall"
)

// fileIno extracts the inode from a stat result, the third leg of the
// path-cache identity alongside size and modtime.
func fileIno(fi os.FileInfo) uint64 {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino
	}
	return 0
}
