// Package ingest is the streaming graph-ingest subsystem of the serving
// layer: resumable chunked uploads feeding a streaming decoder, with a
// content-addressed graph store underneath (docs/PROTOCOL.md §7).
//
// A client opens a session (POST /v1/uploads), sends the encoded graph as
// fixed-size chunks (PUT /v1/uploads/{id}/chunks/{n}) in any order, each
// idempotently replayable and checksum-guarded, and finalizes (POST
// .../complete). The session feeds the contiguous prefix to a streaming
// decoder as chunks land, so by the time the last chunk arrives the graph is
// already decoded and fingerprinted — and for DMGB streams, whose header
// carries the graph fingerprint, a session over content the daemon already
// holds short-circuits after the first chunk: the client learns the
// graph_ref immediately and aborts the remaining transfer.
//
// Jobs then reference the graph by fingerprint (`graph_ref`), decoupling the
// upload's lifetime from the jobs': one transfer, any number of runs.
package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Session states, as reported in status answers.
const (
	// StateUploading accepts chunks.
	StateUploading = "uploading"
	// StateComplete holds a decoded, stored graph; graph_ref is set.
	StateComplete = "complete"
	// StateShortCircuit is complete-without-transfer: the declared
	// fingerprint matched content the daemon already had.
	StateShortCircuit = "short_circuit"
	// StateFailed is terminal: decode or validation failed; see Error.
	StateFailed = "failed"
)

// Config sizes a Manager. The zero value gets production-sane defaults.
type Config struct {
	// TTL expires sessions idle longer than this (default 2 minutes).
	TTL time.Duration
	// SweepEvery is the expiry scan interval (default TTL/4, clamped).
	SweepEvery time.Duration
	// MaxSessions bounds concurrently open sessions (default 64).
	MaxSessions int
	// MaxBytes bounds one session's received bytes (default 1 GiB).
	MaxBytes int64
	// MaxChunkBytes bounds the declared chunk size (default 16 MiB).
	MaxChunkBytes int64
	// Store receives decoded graphs; required.
	Store *Store
	// Known reports fingerprints the daemon can already answer for (the
	// graph store, the result cache); a DMGB session declaring one
	// short-circuits. nil means only Store.Contains is consulted.
	Known func(fp string) bool
	// Admit gates session opens — the serving layer charges uploads against
	// per-tenant budgets here (docs/PROTOCOL.md §8). Called before the
	// session exists, it returns either a release hook, which the manager
	// runs exactly once when the session leaves the uploading state (or
	// immediately, if opening fails), or a *ChunkError to answer the open
	// with. nil admits every open.
	Admit func(r *http.Request) (release func(), err *ChunkError)
	// Registry carries the ingest metrics; nil disables them.
	Registry *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.TTL <= 0 {
		c.TTL = 2 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.TTL / 4
	}
	if c.SweepEvery < 10*time.Millisecond {
		c.SweepEvery = 10 * time.Millisecond
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 30
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 16 << 20
	}
}

// minChunkBytes guarantees chunk 0 covers the DMGB header, so the
// short-circuit decision never waits on a second chunk.
const minChunkBytes = 1024

// errAborted closes the decode pipe of a session that ended before its
// stream did (short-circuit, expiry, abort).
var errAborted = errors.New("ingest: session ended")

// Manager owns the upload sessions and their TTL sweeper.
type Manager struct {
	cfg      Config
	mu       sync.Mutex
	sessions map[string]*session
	nextID   atomic.Int64
	quit     chan struct{}
	stopOnce sync.Once
	sweeper  sync.WaitGroup

	opened       *obs.Counter
	completed    *obs.Counter
	expired      *obs.Counter
	aborted      *obs.Counter
	failed       *obs.Counter
	shortCircs   *obs.Counter
	bytesIn      *obs.Counter
	chunksIn     *obs.Counter
	replayed     *obs.Counter
	checksumErrs *obs.Counter
	openGauge    *obs.Gauge
}

// NewManager builds a manager and starts its sweeper; Stop it on shutdown.
func NewManager(cfg Config) *Manager {
	cfg.fillDefaults()
	if cfg.Store == nil {
		panic("ingest: Config.Store is required")
	}
	reg := cfg.Registry
	m := &Manager{
		cfg:          cfg,
		sessions:     make(map[string]*session),
		quit:         make(chan struct{}),
		opened:       reg.Counter("ingest.sessions_opened"),
		completed:    reg.Counter("ingest.sessions_completed"),
		expired:      reg.Counter("ingest.sessions_expired"),
		aborted:      reg.Counter("ingest.sessions_aborted"),
		failed:       reg.Counter("ingest.sessions_failed"),
		shortCircs:   reg.Counter("ingest.short_circuits"),
		bytesIn:      reg.Counter("ingest.bytes_in"),
		chunksIn:     reg.Counter("ingest.chunks_in"),
		replayed:     reg.Counter("ingest.chunks_replayed"),
		checksumErrs: reg.Counter("ingest.chunk_checksum_errors"),
		openGauge:    reg.Gauge("ingest.sessions_open"),
	}
	m.sweeper.Add(1)
	go m.sweepLoop()
	return m
}

// Stop halts the sweeper and fails every open session. Safe to call twice.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.quit) })
	m.sweeper.Wait()
	m.mu.Lock()
	open := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.sessions = make(map[string]*session)
	m.mu.Unlock()
	for _, s := range open {
		s.end(StateFailed, "server shutting down")
	}
	m.openGauge.Set(0)
}

// known reports whether the daemon can already answer for a fingerprint.
func (m *Manager) known(fp string) bool {
	if m.cfg.Store.Contains(fp) {
		return true
	}
	return m.cfg.Known != nil && m.cfg.Known(fp)
}

func (m *Manager) sweepLoop() {
	defer m.sweeper.Done()
	tick := time.NewTicker(m.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-tick.C:
			m.sweep(time.Now())
		}
	}
}

// sweep expires idle sessions: mid-upload ones fail (the client finds a
// gone session and reopens), finished ones are silently forgotten.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	var gone []*session
	for id, s := range m.sessions {
		if now.After(s.deadline()) {
			delete(m.sessions, id)
			gone = append(gone, s)
		}
	}
	m.openGauge.Set(int64(len(m.sessions)))
	m.mu.Unlock()
	for _, s := range gone {
		if s.end(StateFailed, "session expired") {
			m.expired.Inc()
		}
	}
}

// chunkMeta records a received chunk for idempotent replays and resume.
type chunkMeta struct {
	size int64
	sum  [sha256.Size]byte
}

// decodeResult carries the streaming decoder's outcome.
type decodeResult struct {
	g   *graph.Graph
	fp  string
	err error
}

// session is one upload in flight. The mutex guards every field; the
// feeder goroutine moves contiguous chunks to the decode pipe so HTTP
// handlers never block on the decoder.
type session struct {
	id         string
	chunkBytes int64
	maxBytes   int64
	ttl        time.Duration

	mu         sync.Mutex
	cond       *sync.Cond
	state      string
	failure    string
	lastActive time.Time
	chunks     map[int]chunkMeta // every received chunk
	pending    map[int][]byte    // received, not yet fed to the decoder
	next       int               // next chunk index the feeder wants
	bytesIn    int64
	shortIdx   int // index of the (provisionally last) short chunk, -1 if none
	finalized  bool
	total      int // declared chunk count, -1 until complete
	prefix     []byte
	sniffed    bool
	fp         string // declared (DMGB header), then verified on completion
	ref        string // graph_ref once complete / short-circuited

	pw        *io.PipeWriter
	decoded   *decodeResult
	decodedCh chan struct{} // closed once decoded is set

	// release is the admission hook from Config.Admit; relOnce guarantees
	// it runs at most once, however many paths observe the terminal state.
	release func()
	relOnce sync.Once
}

func (s *session) deadline() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastActive.Add(s.ttl)
}

// end moves the session to a terminal state (unless already terminal),
// wakes the feeder, and tears down the decode pipe. Reports whether the
// session was still uploading.
func (s *session) end(state, why string) bool {
	s.mu.Lock()
	wasUploading := s.state == StateUploading
	if wasUploading {
		s.state = state
		s.failure = why
		s.pending = nil
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if wasUploading {
		s.pw.CloseWithError(errAborted)
	}
	s.settle()
	return wasUploading
}

// setRelease attaches the admission release hook. If the session already
// ended — possible the instant after Open — the hook runs immediately.
func (s *session) setRelease(rel func()) {
	s.mu.Lock()
	s.release = rel
	terminal := s.state != StateUploading
	s.mu.Unlock()
	if terminal {
		s.relOnce.Do(rel)
	}
}

// settle runs the admission release hook if the session has left the
// uploading state. Idempotent and safe from any goroutine; every terminal
// transition calls it after dropping the session lock.
func (s *session) settle() {
	s.mu.Lock()
	terminal := s.state != StateUploading
	rel := s.release
	s.mu.Unlock()
	if terminal && rel != nil {
		s.relOnce.Do(rel)
	}
}

// Open creates a session. chunkBytes 0 selects the 4 MiB default.
func (m *Manager) Open(chunkBytes int64) (*session, error) {
	if chunkBytes == 0 {
		chunkBytes = 4 << 20
	}
	if chunkBytes < minChunkBytes || chunkBytes > m.cfg.MaxChunkBytes {
		return nil, fmt.Errorf("chunk_bytes %d outside [%d, %d]", chunkBytes, minChunkBytes, m.cfg.MaxChunkBytes)
	}
	m.mu.Lock()
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, errTooManySessions
	}
	id := fmt.Sprintf("up-%d", m.nextID.Add(1))
	pr, pw := io.Pipe()
	s := &session{
		id:         id,
		chunkBytes: chunkBytes,
		maxBytes:   m.cfg.MaxBytes,
		ttl:        m.cfg.TTL,
		state:      StateUploading,
		lastActive: time.Now(),
		chunks:     make(map[int]chunkMeta),
		pending:    make(map[int][]byte),
		shortIdx:   -1,
		total:      -1,
		pw:         pw,
		decodedCh:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	m.sessions[id] = s
	m.openGauge.Set(int64(len(m.sessions)))
	m.mu.Unlock()
	m.opened.Inc()

	go s.feedLoop()
	go s.decodeLoop(pr)
	return s, nil
}

var errTooManySessions = errors.New("too many open upload sessions")

// lookup finds a live session.
func (m *Manager) lookup(id string) (*session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// feedLoop moves contiguous pending chunks into the decode pipe, in index
// order, without holding the session lock across pipe writes. It exits when
// the session leaves the uploading state or every declared chunk is fed.
func (s *session) feedLoop() {
	for {
		s.mu.Lock()
		for s.state == StateUploading && s.pending[s.next] == nil &&
			!(s.finalized && s.next >= s.total) {
			s.cond.Wait()
		}
		if s.state != StateUploading {
			s.mu.Unlock()
			return // end() closed the pipe
		}
		if buf := s.pending[s.next]; buf != nil {
			delete(s.pending, s.next)
			s.next++
			s.mu.Unlock()
			if _, err := s.pw.Write(buf); err != nil {
				// The decoder stopped reading (done, or failed): nothing
				// more to feed; completion reads the decode result.
				return
			}
			continue
		}
		// Finalized and fully fed: EOF tells a text decoder to finish.
		s.mu.Unlock()
		s.pw.Close()
		return
	}
}

// decodeLoop runs the streaming decoder against the fed prefix, computes
// the fingerprint, and publishes the result.
func (s *session) decodeLoop(pr *io.PipeReader) {
	g, err := graph.ReadAuto(pr)
	// Unblock any in-flight feeder write; harmless if the pipe is done.
	pr.CloseWithError(errAborted) //nolint:errcheck // pipe close cannot fail
	res := &decodeResult{g: g, err: err}
	if err == nil {
		res.fp = graph.Fingerprint(g)
	}
	s.mu.Lock()
	s.decoded = res
	if err != nil && s.state == StateUploading && s.finalized {
		// The stream was fully delivered and still did not decode.
		s.state = StateFailed
		s.failure = err.Error()
		s.pending = nil
	}
	s.mu.Unlock()
	s.settle()
	close(s.decodedCh)
}

// Append records one chunk. Replays of an identical chunk are idempotent;
// conflicting replays and shape violations are rejected with a *ChunkError.
// The returned status reflects the session after the append — a client that
// sees a terminal state stops sending.
func (m *Manager) Append(s *session, idx int, data []byte, declaredSum string) (*Status, error) {
	if idx < 0 {
		return nil, &ChunkError{Code: http.StatusBadRequest, Msg: fmt.Sprintf("negative chunk index %d", idx)}
	}
	if int64(len(data)) > s.chunkBytes {
		return nil, &ChunkError{Code: http.StatusBadRequest,
			Msg: fmt.Sprintf("chunk %d carries %d bytes, session chunk_bytes is %d", idx, len(data), s.chunkBytes)}
	}
	if len(data) == 0 {
		return nil, &ChunkError{Code: http.StatusBadRequest, Msg: fmt.Sprintf("chunk %d is empty", idx)}
	}
	sum := sha256.Sum256(data)
	if declaredSum != "" && declaredSum != hex.EncodeToString(sum[:]) {
		m.checksumErrs.Inc()
		return nil, &ChunkError{Code: http.StatusBadRequest,
			Msg: fmt.Sprintf("chunk %d checksum mismatch: body hashes to %s", idx, hex.EncodeToString(sum[:]))}
	}
	m.bytesIn.Add(int64(len(data)))

	s.mu.Lock()
	s.lastActive = time.Now()
	switch s.state {
	case StateComplete, StateShortCircuit:
		// The transfer is already settled; tell the client to stop.
		st := s.statusLocked()
		s.mu.Unlock()
		return st, nil
	case StateFailed:
		msg := s.failure
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict, Msg: "session failed: " + msg}
	}
	if prev, ok := s.chunks[idx]; ok {
		if prev.sum == sum {
			m.replayed.Inc()
			st := s.statusLocked()
			s.mu.Unlock()
			return st, nil
		}
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict,
			Msg: fmt.Sprintf("chunk %d replayed with different content", idx)}
	}
	short := int64(len(data)) < s.chunkBytes
	if short {
		if s.shortIdx >= 0 {
			s.mu.Unlock()
			return nil, &ChunkError{Code: http.StatusConflict,
				Msg: fmt.Sprintf("chunks %d and %d are both short; only the final chunk may be", s.shortIdx, idx)}
		}
		for other := range s.chunks {
			if other > idx {
				s.mu.Unlock()
				return nil, &ChunkError{Code: http.StatusConflict,
					Msg: fmt.Sprintf("short chunk %d below existing chunk %d; only the final chunk may be short", idx, other)}
			}
		}
		s.shortIdx = idx
	} else if s.shortIdx >= 0 && idx > s.shortIdx {
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict,
			Msg: fmt.Sprintf("chunk %d beyond short chunk %d; only the final chunk may be short", idx, s.shortIdx)}
	}
	if s.bytesIn+int64(len(data)) > s.maxBytes {
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusRequestEntityTooLarge,
			Msg: fmt.Sprintf("session exceeds the %d-byte upload bound", s.maxBytes)}
	}
	s.chunks[idx] = chunkMeta{size: int64(len(data)), sum: sum}
	s.bytesIn += int64(len(data))
	owned := append([]byte(nil), data...)
	s.pending[idx] = owned
	// Grow the sniffing prefix while the header may still be incomplete.
	if off := int64(idx) * s.chunkBytes; !s.sniffed && off < graph.DMGBHeaderSize {
		s.growPrefixLocked()
	}
	s.cond.Broadcast()
	m.chunksIn.Inc()
	sc := !s.sniffed && len(s.prefix) >= graph.DMGBHeaderSize
	s.mu.Unlock()

	if sc {
		m.maybeShortCircuit(s)
	}

	s.mu.Lock()
	st := s.statusLocked()
	s.mu.Unlock()
	return st, nil
}

// growPrefixLocked assembles the contiguous byte prefix (up to the DMGB
// header size) from whichever leading chunks have arrived.
func (s *session) growPrefixLocked() {
	for {
		idx := int(int64(len(s.prefix)) / s.chunkBytes)
		buf, ok := s.pending[idx]
		if !ok || len(s.prefix) >= graph.DMGBHeaderSize {
			return
		}
		skip := int64(len(s.prefix)) - int64(idx)*s.chunkBytes
		if skip < 0 || skip >= int64(len(buf)) {
			return
		}
		need := graph.DMGBHeaderSize - len(s.prefix)
		rest := buf[skip:]
		if len(rest) > need {
			rest = rest[:need]
		}
		s.prefix = append(s.prefix, rest...)
	}
}

// maybeShortCircuit parses the declared DMGB header once the prefix covers
// it; a fingerprint the daemon already knows settles the session without
// the rest of the transfer.
func (m *Manager) maybeShortCircuit(s *session) {
	s.mu.Lock()
	if s.sniffed || len(s.prefix) < graph.DMGBHeaderSize || s.state != StateUploading {
		s.mu.Unlock()
		return
	}
	s.sniffed = true
	if !graph.IsDMGB(s.prefix) {
		s.mu.Unlock()
		return // text or legacy binary: fingerprint only known after decode
	}
	hdr, err := graph.ParseDMGBHeader(s.prefix)
	if err != nil {
		s.mu.Unlock()
		// A malformed header fails in the decoder with a precise error.
		return
	}
	s.fp = hdr.Fingerprint
	fp := s.fp
	s.mu.Unlock()

	if !m.known(fp) {
		return
	}
	s.mu.Lock()
	if s.state != StateUploading {
		s.mu.Unlock()
		return
	}
	s.state = StateShortCircuit
	s.ref = fp
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.pw.CloseWithError(errAborted)
	s.settle()
	m.shortCircs.Inc()
}

// Complete finalizes the upload: it validates that every one of the
// declared chunks arrived, waits for the streaming decoder to finish the
// tail, deposits the graph in the store, and returns the settled status.
// cancel aborts the wait (the caller's request context).
func (m *Manager) Complete(s *session, totalChunks int, cancel <-chan struct{}) (*Status, error) {
	s.mu.Lock()
	s.lastActive = time.Now()
	switch s.state {
	case StateComplete, StateShortCircuit:
		st := s.statusLocked()
		s.mu.Unlock()
		return st, nil
	case StateFailed:
		msg := s.failure
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict, Msg: "session failed: " + msg}
	}
	if totalChunks <= 0 {
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusBadRequest, Msg: fmt.Sprintf("chunks must be positive, got %d", totalChunks)}
	}
	var missing []int
	for i := 0; i < totalChunks; i++ {
		if _, ok := s.chunks[i]; !ok {
			missing = append(missing, i)
			if len(missing) >= 8 {
				break
			}
		}
	}
	if len(missing) > 0 {
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict,
			Msg: fmt.Sprintf("cannot complete: %d chunks received of %d declared; first missing %v", len(s.chunks), totalChunks, missing)}
	}
	if len(s.chunks) > totalChunks {
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict,
			Msg: fmt.Sprintf("%d chunks received exceed the %d declared", len(s.chunks), totalChunks)}
	}
	if s.shortIdx >= 0 && s.shortIdx != totalChunks-1 {
		s.mu.Unlock()
		return nil, &ChunkError{Code: http.StatusConflict,
			Msg: fmt.Sprintf("short chunk %d is not the final chunk %d", s.shortIdx, totalChunks-1)}
	}
	s.finalized = true
	s.total = totalChunks
	s.cond.Broadcast()
	s.mu.Unlock()

	select {
	case <-s.decodedCh:
	case <-cancel:
		return nil, &ChunkError{Code: http.StatusGatewayTimeout, Msg: "request cancelled while decoding"}
	}

	s.mu.Lock()
	// Deferred LIFO: unlock first, then settle (settle retakes the lock).
	defer s.settle()
	defer s.mu.Unlock()
	s.lastActive = time.Now()
	if s.state == StateShortCircuit {
		return s.statusLocked(), nil
	}
	res := s.decoded
	if res.err != nil {
		if s.state == StateUploading {
			s.state = StateFailed
			s.failure = res.err.Error()
			s.pending = nil
		}
		m.failed.Inc()
		return nil, &ChunkError{Code: http.StatusUnprocessableEntity, Msg: "decoding upload: " + res.err.Error()}
	}
	if s.state != StateUploading {
		return nil, &ChunkError{Code: http.StatusConflict, Msg: "session failed: " + s.failure}
	}
	m.cfg.Store.Put(res.fp, res.g)
	s.state = StateComplete
	s.fp = res.fp
	s.ref = res.fp
	s.pending = nil
	m.completed.Inc()
	return s.statusLocked(), nil
}

// Abort discards a session.
func (m *Manager) Abort(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.openGauge.Set(int64(len(m.sessions)))
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	if s.end(StateFailed, "aborted by client") {
		m.aborted.Inc()
	}
	return true
}

// Status is the session state a client sees — the body of every chunk,
// status, and completion answer.
type Status struct {
	UploadID   string `json:"upload_id"`
	State      string `json:"state"`
	ChunkBytes int64  `json:"chunk_bytes"`
	// ReceivedChunks and ReceivedBytes count unique chunks (replays
	// excluded).
	ReceivedChunks int   `json:"received_chunks"`
	ReceivedBytes  int64 `json:"received_bytes"`
	// ReceivedRanges lists the received chunk indexes as [start, end)
	// ranges — what a resuming client diffs against its plan.
	ReceivedRanges [][2]int `json:"received_ranges,omitempty"`
	// NextMissing is the lowest chunk index not yet received.
	NextMissing int `json:"next_missing"`
	// Fingerprint is the graph fingerprint as soon as it is known: from
	// the DMGB header once chunk 0 lands, or after decoding otherwise.
	Fingerprint string `json:"fingerprint,omitempty"`
	// GraphRef is the content address jobs can reference, set once the
	// session completes or short-circuits.
	GraphRef string `json:"graph_ref,omitempty"`
	// Error describes a failed session.
	Error string `json:"error,omitempty"`
	// ExpiresUnixMillis is when the session lapses if left idle.
	ExpiresUnixMillis int64 `json:"expires_unix_ms"`
}

// Status reports the session's current status.
func (m *Manager) Status(s *session) *Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *session) statusLocked() *Status {
	st := &Status{
		UploadID:          s.id,
		State:             s.state,
		ChunkBytes:        s.chunkBytes,
		ReceivedChunks:    len(s.chunks),
		ReceivedBytes:     s.bytesIn,
		Fingerprint:       s.fp,
		GraphRef:          s.ref,
		Error:             s.failure,
		ExpiresUnixMillis: s.lastActive.Add(s.ttl).UnixMilli(),
	}
	if s.state == StateUploading {
		idxs := make([]int, 0, len(s.chunks))
		for i := range s.chunks {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if n := len(st.ReceivedRanges); n > 0 && st.ReceivedRanges[n-1][1] == i {
				st.ReceivedRanges[n-1][1] = i + 1
				continue
			}
			st.ReceivedRanges = append(st.ReceivedRanges, [2]int{i, i + 1})
		}
		for _, r := range st.ReceivedRanges {
			if r[0] == st.NextMissing {
				st.NextMissing = r[1]
			}
		}
	}
	return st
}

// ChunkError is a client-visible upload error with its HTTP status.
// RetryAfter, when positive, becomes a Retry-After header (seconds) — rate
// and budget rejections carry the wait the caller's own bucket implies.
type ChunkError struct {
	Code       int
	Msg        string
	RetryAfter int
}

func (e *ChunkError) Error() string { return e.Msg }

// writeChunkError answers with the error's status, message, and (when set)
// Retry-After header.
func writeChunkError(w http.ResponseWriter, ce *ChunkError) {
	if ce.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ce.RetryAfter))
	}
	jsonError(w, ce.Code, "%s", ce.Msg)
}

// ---- HTTP surface -------------------------------------------------------

// openRequest is the body of POST /v1/uploads.
type openRequest struct {
	ChunkBytes int64 `json:"chunk_bytes,omitempty"`
}

// completeRequest is the body of POST /v1/uploads/{id}/complete.
type completeRequest struct {
	Chunks int `json:"chunks"`
}

// RegisterRoutes mounts the upload API (docs/PROTOCOL.md §7) on mux.
func (m *Manager) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/uploads", m.handleOpen)
	mux.HandleFunc("PUT /v1/uploads/{id}/chunks/{chunk}", m.handleChunk)
	mux.HandleFunc("GET /v1/uploads/{id}", m.handleStatus)
	mux.HandleFunc("POST /v1/uploads/{id}/complete", m.handleComplete)
	mux.HandleFunc("DELETE /v1/uploads/{id}", m.handleAbort)
}

// jsonError answers with the service's error shape.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // response committed
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

func jsonStatus(w http.ResponseWriter, st *Status) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st) //nolint:errcheck // response committed
}

func (m *Manager) handleOpen(w http.ResponseWriter, r *http.Request) {
	// Session opens join the caller's W3C trace like job submissions do
	// (docs/PROTOCOL.md §9): accept a valid traceparent or mint a trace id,
	// and echo it so an upload correlates with the jobs that follow it. The
	// header names mirror service.TraceparentHeader / service.TraceHeader
	// (service imports ingest, so the constants cannot live here).
	tid, _, ok := obs.ParseTraceparent(r.Header.Get("Traceparent"))
	if !ok {
		tid = obs.NewTraceID()
	}
	w.Header().Set("X-DMGM-Trace", tid)
	var req openRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			jsonError(w, http.StatusBadRequest, "decoding open request: %v", err)
			return
		}
	}
	var release func()
	if m.cfg.Admit != nil {
		rel, ce := m.cfg.Admit(r)
		if ce != nil {
			writeChunkError(w, ce)
			return
		}
		release = rel
	}
	s, err := m.Open(req.ChunkBytes)
	if err != nil {
		if release != nil {
			release()
		}
		if errors.Is(err, errTooManySessions) {
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "%v: retry later", err)
			return
		}
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if release != nil {
		s.setRelease(release)
	}
	jsonStatus(w, m.Status(s))
}

// sessionFor resolves the {id} path segment; a miss is a 404 the client
// answers by reopening (expired sessions are deleted, not tombstoned).
func (m *Manager) sessionFor(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	s, ok := m.lookup(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown upload session %q (expired or never opened); open a new session", id)
		return nil, false
	}
	return s, true
}

func (m *Manager) handleChunk(w http.ResponseWriter, r *http.Request) {
	s, ok := m.sessionFor(w, r)
	if !ok {
		return
	}
	idx, err := strconv.Atoi(r.PathValue("chunk"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "chunk index: %v", err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.chunkBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "reading chunk body: %v", err)
		return
	}
	st, aerr := m.Append(s, idx, data, r.Header.Get("X-Chunk-SHA256"))
	if aerr != nil {
		var ce *ChunkError
		if errors.As(aerr, &ce) {
			writeChunkError(w, ce)
			return
		}
		jsonError(w, http.StatusInternalServerError, "%v", aerr)
		return
	}
	jsonStatus(w, st)
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s, ok := m.sessionFor(w, r); ok {
		jsonStatus(w, m.Status(s))
	}
}

func (m *Manager) handleComplete(w http.ResponseWriter, r *http.Request) {
	s, ok := m.sessionFor(w, r)
	if !ok {
		return
	}
	var req completeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding complete request: %v", err)
		return
	}
	st, cerr := m.Complete(s, req.Chunks, r.Context().Done())
	if cerr != nil {
		var ce *ChunkError
		if errors.As(cerr, &ce) {
			writeChunkError(w, ce)
			return
		}
		jsonError(w, http.StatusInternalServerError, "%v", cerr)
		return
	}
	jsonStatus(w, st)
}

func (m *Manager) handleAbort(w http.ResponseWriter, r *http.Request) {
	if !m.Abort(r.PathValue("id")) {
		jsonError(w, http.StatusNotFound, "unknown upload session %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
