package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestLoadPathDetectsSameSecondReplace is the regression test for the
// path-cache identity: replacing a daemon-local graph file with an
// equal-sized one carrying the very same modtime (the worst case of a
// 1-second-granularity filesystem) must still invalidate the cached decode.
// Size and modtime are identical by construction here; only the inode
// distinguishes the files.
func TestLoadPathDetectsSameSecondReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	// Same byte length, different weight — different fingerprints.
	a := "g 2 1\ne 0 1 1.0\n"
	b := "g 2 1\ne 0 1 2.0\n"
	if err := os.WriteFile(path, []byte(a), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fileIno(info) == 0 {
		t.Skip("platform exposes no inode identity; size+modtime fallback is untestable here")
	}

	st := NewStore(64<<20, obs.NewRegistry())
	_, fp1, err := st.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-cache sanity: an untouched file is served from the path cache.
	if _, again, err := st.LoadPath(path); err != nil || again != fp1 {
		t.Fatalf("repeat load: fp %s err %v, want cached %s", again, err, fp1)
	}

	// Replace via rename (a new inode) and pin the replacement's stat to the
	// original's exact size and modtime.
	repl := filepath.Join(dir, "g.txt.new")
	if err := os.WriteFile(repl, []byte(b), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(repl, path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, info.ModTime(), info.ModTime()); err != nil {
		t.Fatal(err)
	}
	if ni, err := os.Stat(path); err != nil || ni.Size() != info.Size() || !ni.ModTime().Equal(info.ModTime()) {
		t.Fatalf("fixture broken: replacement must match size and modtime exactly (err %v)", err)
	}

	_, fp2, err := st.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp1 {
		t.Fatal("stale path-cache entry: replaced file decoded to the old fingerprint")
	}
}
