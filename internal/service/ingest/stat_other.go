//go:build !unix

package ingest

import "os"

// fileIno has no inode to report off unix; the path cache falls back to
// size+modtime identity.
func fileIno(os.FileInfo) uint64 { return 0 }
