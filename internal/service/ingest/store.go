package ingest

import (
	"container/list"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// GraphBytes estimates the resident size of a decoded graph — the unit the
// store's byte budget is accounted in.
func GraphBytes(g *graph.Graph) int64 {
	return int64(len(g.Xadj))*8 + int64(len(g.Adj))*4 + int64(len(g.W))*8
}

// Store is the bounded content-addressed graph store: decoded graphs keyed
// by their fingerprint, evicted LRU by resident bytes. It is what decouples
// upload lifetime from job lifetime — an upload session deposits the decoded
// graph here and hands the client a `graph_ref` (the fingerprint); any number
// of later jobs resolve the ref without the bytes ever travelling again.
//
// Graphs are immutable once built, so eviction is safe under concurrent job
// references: a job that resolved its ref keeps its pointer and runs to
// completion even if the entry is evicted mid-run (asserted under -race by
// the store tests).
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List               // front = most recently used
	m        map[string]*list.Element // fingerprint → element
	flight   map[string]*flightCall   // in-progress loads, by caller key
	paths    map[string]pathEntry     // daemon-local file loads, by path

	// spill is the persistent tier (spill.go); nil means memory-only, the
	// pre-persistence behavior. reg is kept so EnableSpill can register its
	// instruments.
	spill *spillTier
	reg   *obs.Registry

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	shared    *obs.Counter // single-flight loads answered by another caller's decode
	bytesG    *obs.Gauge
	entriesG  *obs.Gauge
}

type storeEntry struct {
	fp   string
	g    *graph.Graph
	size int64
}

// flightCall is one in-progress load other callers can wait on.
type flightCall struct {
	done chan struct{}
	g    *graph.Graph
	fp   string
	err  error
}

// pathEntry remembers what a daemon-local file decoded to, keyed by the
// file's stat identity so an overwritten file is re-decoded. Size and
// modtime alone are spoofable on coarse-timestamp filesystems (replace a
// file with an equal-sized one inside the same second), so the inode is
// part of the identity, and all three are captured from the open descriptor
// after the decode finished — the identity of the bytes actually read.
type pathEntry struct {
	fp      string
	size    int64
	modTime time.Time
	ino     uint64 // 0 where the platform exposes no inode
}

// NewStore builds a store holding up to maxBytes of decoded graphs
// (clamped to at least 1 MiB). reg may carry a nil registry; every
// instrument is then a no-op.
func NewStore(maxBytes int64, reg *obs.Registry) *Store {
	if maxBytes < 1<<20 {
		maxBytes = 1 << 20
	}
	return &Store{
		maxBytes:  maxBytes,
		ll:        list.New(),
		m:         make(map[string]*list.Element),
		flight:    make(map[string]*flightCall),
		paths:     make(map[string]pathEntry),
		reg:       reg,
		hits:      reg.Counter("ingest.store_hits"),
		misses:    reg.Counter("ingest.store_misses"),
		evictions: reg.Counter("ingest.store_evictions"),
		shared:    reg.Counter("ingest.store_flight_shared"),
		bytesG:    reg.Gauge("ingest.store_bytes"),
		entriesG:  reg.Gauge("ingest.store_entries"),
	}
}

// Get returns the graph stored under the fingerprint, marking it recently
// used.
func (s *Store) Get(fp string) (*graph.Graph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[fp]
	if !ok {
		s.misses.Inc()
		return nil, false
	}
	s.hits.Inc()
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).g, true
}

// Contains reports presence without touching LRU order or the hit counters —
// the probe an upload session uses to decide a short-circuit. A graph that
// has been evicted from memory but still has its spill file counts as
// present: the next job rehydrates it, so re-uploading the bytes would be
// wasted work.
func (s *Store) Contains(fp string) bool {
	s.mu.Lock()
	_, ok := s.m[fp]
	s.mu.Unlock()
	if ok {
		return true
	}
	return s.spill != nil && s.spill.contains(fp)
}

// Put stores a graph under its fingerprint, evicting least recently used
// entries beyond the byte budget. The newest entry always stays, so one
// oversized graph is held rather than thrashed. With a spill tier enabled
// the canonical encoding is also written to disk (outside the store lock;
// content-addressed names make concurrent duplicate writes harmless), so
// the ref survives both memory eviction and a daemon restart.
func (s *Store) Put(fp string, g *graph.Graph) {
	size := GraphBytes(g)
	s.mu.Lock()
	if el, ok := s.m[fp]; ok {
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		// Content-addressed: an existing entry is the same graph. Still make
		// sure the spill file exists — it may have been evicted by the disk
		// budget or quarantined since the first deposit.
		if s.spill != nil {
			s.spill.write(fp, g)
		}
		return
	}
	s.m[fp] = s.ll.PushFront(&storeEntry{fp: fp, g: g, size: size})
	s.bytes += size
	for s.bytes > s.maxBytes && s.ll.Len() > 1 {
		last := s.ll.Back()
		ent := last.Value.(*storeEntry)
		s.ll.Remove(last)
		delete(s.m, ent.fp)
		s.bytes -= ent.size
		s.evictions.Inc()
	}
	s.bytesG.Set(s.bytes)
	s.entriesG.Set(int64(s.ll.Len()))
	s.mu.Unlock()
	if s.spill != nil {
		s.spill.write(fp, g)
	}
}

// Resolve returns the graph for a fingerprint, rehydrating it from the
// spill tier when it is on disk but not in memory. The second result
// reports whether a disk read happened — the service uses it to emit a
// rehydrate span. Concurrent resolves of the same evicted ref share one
// decode through the single-flight path, and a corrupt spill file is
// quarantined by the loader so the miss is not sticky: the next Resolve is
// a plain miss and the client re-uploads.
func (s *Store) Resolve(fp string) (g *graph.Graph, rehydrated bool, ok bool) {
	if g, ok := s.Get(fp); ok {
		return g, false, true
	}
	if s.spill == nil || !s.spill.contains(fp) {
		return nil, false, false
	}
	g, _, err := s.loadShared("spill:"+fp, false, func() (*graph.Graph, string, error) {
		g, err := s.spill.load(fp)
		if err != nil {
			return nil, "", err
		}
		return g, fp, nil
	})
	if err != nil {
		// The spill file was corrupt or vanished; load() already quarantined
		// and dropped the index entry, so this ref now reads as absent.
		return nil, false, false
	}
	s.Put(fp, g)
	return g, true, true
}

// Len reports the entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes reports the resident byte total.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// LoadPath resolves a daemon-local graph file through the store: the file is
// streamed through the sniffing decoder at most once per content version
// (stat identity), concurrent loads of the same path share one decode
// (single flight), and the decoded graph lands in the store under its
// fingerprint. Returns the graph and its fingerprint.
func (s *Store) LoadPath(path string) (*graph.Graph, string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, "", err
	}
	s.mu.Lock()
	if pe, ok := s.paths[path]; ok &&
		pe.size == info.Size() && pe.modTime.Equal(info.ModTime()) && pe.ino == fileIno(info) {
		if el, ok := s.m[pe.fp]; ok {
			s.hits.Inc()
			s.ll.MoveToFront(el)
			g := el.Value.(*storeEntry).g
			s.mu.Unlock()
			return g, pe.fp, nil
		}
	}
	s.mu.Unlock()
	g, fp, err := s.loadShared("path:"+path, true, func() (*graph.Graph, string, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := graph.ReadAuto(f) // streaming decode; never buffers the file
		if err != nil {
			return nil, "", fmt.Errorf("decoding %s: %w", path, err)
		}
		fp := graph.Fingerprint(g)
		// Record the stat identity from the descriptor we just read, not the
		// pre-open Stat: if the file was replaced between stat and open, the
		// cache entry must describe the bytes that were actually decoded.
		if fi, err := f.Stat(); err == nil {
			s.mu.Lock()
			s.paths[path] = pathEntry{fp: fp, size: fi.Size(), modTime: fi.ModTime(), ino: fileIno(fi)}
			s.mu.Unlock()
		}
		return g, fp, nil
	})
	if err != nil {
		return nil, "", err
	}
	s.Put(fp, g)
	return g, fp, nil
}

// loadShared runs load once per key across concurrent callers. countMiss
// governs whether the losing-the-race path counts as a store miss; Resolve
// passes false because its preceding Get already counted one.
func (s *Store) loadShared(key string, countMiss bool, load func() (*graph.Graph, string, error)) (*graph.Graph, string, error) {
	s.mu.Lock()
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		s.shared.Inc()
		<-c.done
		return c.g, c.fp, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	if countMiss {
		s.misses.Inc()
	}
	s.mu.Unlock()

	c.g, c.fp, c.err = load()
	s.mu.Lock()
	delete(s.flight, key)
	s.mu.Unlock()
	close(c.done)
	return c.g, c.fp, c.err
}

// StoreStats is the /healthz snapshot of both tiers.
type StoreStats struct {
	Entries      int    `json:"entries"`
	Bytes        int64  `json:"bytes"`
	MaxBytes     int64  `json:"max_bytes"`
	SpillDir     string `json:"spill_dir,omitempty"`
	SpillFiles   int64  `json:"spill_files,omitempty"`
	SpillBytes   int64  `json:"spill_bytes,omitempty"`
	SpillBudget  int64  `json:"spill_budget_bytes,omitempty"`
	Rehydrations int64  `json:"rehydrations,omitempty"`
	Corrupt      int64  `json:"corrupt_quarantined,omitempty"`
}

// Stats snapshots the store for the health endpoint.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{Entries: s.ll.Len(), Bytes: s.bytes, MaxBytes: s.maxBytes}
	s.mu.Unlock()
	if s.spill != nil {
		dir, bytes, files, budget := s.spill.stats()
		st.SpillDir = dir
		st.SpillBytes = bytes
		st.SpillFiles = int64(files)
		st.SpillBudget = budget
		st.Rehydrations = s.spill.rehydrations.Load()
		st.Corrupt = s.spill.corrupt.Load()
	}
	return st
}
